module gpa

go 1.24
