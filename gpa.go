// Package gpa is a GPU performance advisor based on instruction
// sampling, reproducing the system of Zhou et al., "GPA: A GPU
// Performance Advisor Based on Instruction Sampling" (CGO 2021), on a
// simulated GPU. The paper evaluates on Volta V100, which remains the
// default model; the pipeline itself is architecture-parametric, and
// Options.GPU (resolved by LookupGPU, enumerated by GPUs) selects any
// registered model (V100, T4, A100, ...).
//
// The pipeline mirrors the paper's Figure 2:
//
//	kernel (SASS text or CUBIN blob)
//	   │ profiler: simulate + PC sampling        (runtime)
//	   ▼
//	profile (per-PC samples, launch statistics)
//	   │ static analyzer: CFG, loops, structure  (offline)
//	   │ instruction blamer: slicing, pruning, apportioning
//	   │ optimizers + estimators: Table 2, Equations 2-10
//	   ▼
//	ranked advice report (Figure 8 format)
//
// # Quick start (v2 API)
//
//	kernel, err := gpa.LoadKernelAsm(src, gpa.Launch{
//		Entry: "mykernel", GridX: 160, BlockX: 256,
//	})
//	report, err := kernel.Advise(ctx, nil)
//	fmt.Print(report)
//
// Every operation that can simulate takes a context.Context as its
// first argument and honors cancellation promptly: a canceled ctx
// returns an error wrapping both ErrCanceled and ctx.Err() within one
// simulator checkpoint interval, and cancellation never alters the
// result of a run that completes. Failures across the whole API wrap
// the typed sentinels in errors.go (ErrUnknownArch, ErrBadKernel,
// ErrAssemble, ErrCanceled, ErrQueueFull, ...), matched with
// errors.Is/As. Report.Result produces the versioned structured result
// (schema gpa.ResultSchemaVersion) that cmd/gpad serves as JSON.
//
// The package wraps the internal building blocks (sass assembler, cubin
// container, cycle-level gpusim simulator, sampling, profiler, blamer,
// advisor); power users can drive those stages separately via the
// exported helpers on Kernel.
//
// For batch and serving workloads, NewEngine builds a shared scheduler
// with a content-addressed result cache and singleflight deduplication
// (Engine.AdviseAll, Engine.DoAll, Engine.Sweep); cmd/gpad serves the
// same engine over HTTP.
package gpa

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"strings"
	"sync"

	"gpa/internal/apierr"
	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/cubin"
	"gpa/internal/gpusim"
	"gpa/internal/profiler"
	"gpa/internal/sass"
	"gpa/internal/structure"

	adv "gpa/internal/advisor"
)

// Launch describes a kernel launch configuration.
type Launch struct {
	// Entry is the kernel (global function) name.
	Entry string
	// Grid and block dimensions; zero components default to 1.
	GridX, GridY, GridZ    int
	BlockX, BlockY, BlockZ int
	// RegsPerThread and SharedMemPerBlock feed occupancy calculation.
	RegsPerThread     int
	SharedMemPerBlock int
}

func (l Launch) config() gpusim.LaunchConfig {
	return gpusim.LaunchConfig{
		Entry:             l.Entry,
		Grid:              gpusim.Dim3{X: l.GridX, Y: l.GridY, Z: l.GridZ},
		Block:             gpusim.Dim3{X: l.BlockX, Y: l.BlockY, Z: l.BlockZ},
		RegsPerThread:     l.RegsPerThread,
		SharedMemPerBlock: l.SharedMemPerBlock,
	}
}

// Options tunes profiling and analysis.
type Options struct {
	// GPU selects the architecture model (nil defaults to the paper's
	// V100; use LookupGPU or arch.Lookup to resolve a model by name).
	GPU *arch.GPU
	// SamplePeriod is the PC sampling period in cycles (0 = 64).
	SamplePeriod int
	// SimSMs bounds detailed SM simulation (0 = 4).
	SimSMs int
	// Parallelism bounds how many SMs are simulated concurrently
	// (0 = GOMAXPROCS). Results are bit-identical at every level; with
	// Parallelism > 1 the Workload must be safe for concurrent use.
	// WorkloadSpec binding is itself read-only, but the callback
	// closures a spec carries (TripFunc, Taken, Latency) are invoked
	// concurrently too and must not mutate shared state — set
	// Parallelism to 1 to keep the old single-goroutine contract.
	Parallelism int
	// Seed perturbs the simulator's deterministic latency jitter.
	Seed uint64
	// Blamer toggles pruning/apportioning heuristics (zero value =
	// everything on, the paper's configuration).
	Blamer blamer.Options
	// Workload supplies branch trip counts and memory behaviour; nil
	// runs every conditional branch not-taken with default latencies.
	Workload Workload
}

// Workload re-exports the simulator's workload model.
type Workload = gpusim.Workload

// WorkloadSpec re-exports the declarative workload builder.
type WorkloadSpec = gpusim.Spec

// Site names an instruction by (function, label) in a workload spec.
type Site = gpusim.Site

// WarpCtx identifies a warp in workload callbacks.
type WarpCtx = gpusim.WarpCtx

// TripFunc yields a per-warp loop trip count in workload specs.
type TripFunc = gpusim.TripFunc

// UniformTrips builds a TripFunc with the same count for all warps.
func UniformTrips(n int) TripFunc { return gpusim.UniformTrips(n) }

// Kernel is a loaded GPU kernel plus its launch configuration.
type Kernel struct {
	Module *sass.Module
	Launch Launch

	// prog caches the flattened program so repeated Measure/Profile
	// calls skip re-loading the module. Guarded by progOnce; the Module
	// must not be mutated after the first simulation.
	prog     *gpusim.Program
	progErr  error
	progOnce sync.Once

	// modHash caches the SHA-256 of the module's canonical cubin
	// encoding, feeding the engine's content-addressed cache key so a
	// warm engine never re-packs the module per job.
	modHash     [32]byte
	modHashErr  error
	modHashOnce sync.Once

	// st caches the recovered program structure (CFG, loop nests, line
	// maps). Structure is architecture-independent, so one analysis
	// serves every Advise call — a cross-architecture sweep shares the
	// whole front-end (module, program, hash, structure) per kernel.
	st     *structure.Structure
	stErr  error
	stOnce sync.Once
}

// program returns the kernel's flattened program, loading it on first
// use.
func (k *Kernel) program() (*gpusim.Program, error) {
	k.progOnce.Do(func() {
		k.prog, k.progErr = gpusim.Load(k.Module)
	})
	return k.prog, k.progErr
}

// moduleHash returns the SHA-256 of the module's canonical cubin
// encoding, computing it on first use.
func (k *Kernel) moduleHash() ([32]byte, error) {
	k.modHashOnce.Do(func() {
		blob, err := cubin.Pack(k.Module)
		if err != nil {
			k.modHashErr = err
			return
		}
		k.modHash = sha256.Sum256(blob)
	})
	return k.modHash, k.modHashErr
}

// LoadKernelAsm assembles SASS text into a kernel. Assembly failures
// wrap ErrAssemble; launch validation failures wrap ErrBadKernel.
func LoadKernelAsm(src string, launch Launch) (*Kernel, error) {
	mod, err := sass.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("gpa: %w: %w", ErrAssemble, err)
	}
	if launch.Entry == "" {
		ks := mod.Kernels()
		if len(ks) != 1 {
			return nil, fmt.Errorf("gpa: %w: specify Launch.Entry (module has %d kernels)",
				ErrBadKernel, len(ks))
		}
		launch.Entry = ks[0].Name
	}
	if mod.Function(launch.Entry) == nil {
		return nil, fmt.Errorf("gpa: %w: no kernel %q in module", ErrBadKernel, launch.Entry)
	}
	return &Kernel{Module: mod, Launch: launch}, nil
}

// LoadKernelBinary unpacks a CUBIN blob produced by SaveBinary.
// Malformed blobs and launch validation failures wrap ErrBadKernel.
func LoadKernelBinary(blob []byte, launch Launch) (*Kernel, error) {
	mod, err := cubin.Unpack(blob)
	if err != nil {
		return nil, fmt.Errorf("gpa: %w: %w", ErrBadKernel, err)
	}
	if mod.Function(launch.Entry) == nil {
		return nil, fmt.Errorf("gpa: %w: no kernel %q in module", ErrBadKernel, launch.Entry)
	}
	return &Kernel{Module: mod, Launch: launch}, nil
}

// SaveBinary packs the kernel's module into the CUBIN container format.
func (k *Kernel) SaveBinary() ([]byte, error) { return cubin.Pack(k.Module) }

// BindWorkload resolves a declarative workload spec against the kernel.
func (k *Kernel) BindWorkload(spec *WorkloadSpec) (Workload, error) {
	prog, err := k.program()
	if err != nil {
		return nil, err
	}
	return spec.Bind(prog)
}

// Profile simulates one launch with PC sampling and returns the
// profile. A canceled ctx aborts the simulation promptly with an error
// wrapping ErrCanceled.
func (k *Kernel) Profile(ctx context.Context, opts *Options) (*profiler.Profile, error) {
	o := normalize(opts)
	prog, err := k.program()
	if err != nil {
		return nil, err
	}
	return profiler.CollectProgram(ctx, prog, k.Launch.config(), o.Workload, profiler.Options{
		GPU:          o.GPU,
		SamplePeriod: o.SamplePeriod,
		SimSMs:       o.SimSMs,
		Seed:         o.Seed,
		Parallelism:  o.Parallelism,
	})
}

// Measure simulates one launch without sampling and returns the kernel
// duration in cycles (used to measure achieved speedups). A canceled
// ctx aborts the simulation promptly with an error wrapping
// ErrCanceled.
func (k *Kernel) Measure(ctx context.Context, opts *Options) (int64, error) {
	o := normalize(opts)
	prog, err := k.program()
	if err != nil {
		return 0, err
	}
	wl := o.Workload
	res, err := gpusim.Run(ctx, prog, k.Launch.config(), wl, gpusim.Config{
		GPU:         o.GPU,
		SimSMs:      o.SimSMs,
		Seed:        o.Seed,
		Parallelism: o.Parallelism,
	})
	if err != nil {
		return 0, err
	}
	cycles := res.Cycles
	prog.Recycle(res)
	return cycles, nil
}

// Report is a ranked advice report.
type Report struct {
	Advice  *adv.Advice
	Profile *profiler.Profile
	Context *adv.Context
}

// String renders the Figure 8-style text report.
func (r *Report) String() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// Render writes the report.
func (r *Report) Render(w io.Writer) { r.Advice.Render(w) }

// Top returns the n highest-ranked advice entries.
func (r *Report) Top(n int) []adv.AdviceEntry { return r.Advice.Top(n) }

// Advise profiles the kernel and runs the full dynamic analysis:
// instruction blaming, optimizer matching, speedup estimation,
// ranking. A canceled ctx aborts the simulation promptly with an error
// wrapping ErrCanceled.
func (k *Kernel) Advise(ctx context.Context, opts *Options, extra ...adv.RankedOptimizer) (*Report, error) {
	prof, err := k.Profile(ctx, opts)
	if err != nil {
		return nil, err
	}
	return k.AdviseFromProfile(ctx, prof, opts, extra...)
}

// AdviseFromProfile analyses an existing profile (the offline half of
// the pipeline). When the caller does not select an architecture, the
// model recorded in the profile wins, so a profile collected on a T4 is
// not silently analyzed with V100 limits. The offline analysis is
// cheap but still checks ctx before starting, so a batch of canceled
// jobs drains immediately.
func (k *Kernel) AdviseFromProfile(ctx context.Context, prof *profiler.Profile, opts *Options,
	extra ...adv.RankedOptimizer) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := apierr.CtxErr(ctx); err != nil {
		return nil, fmt.Errorf("gpa: %w", err)
	}
	o := normalize(opts)
	if (opts == nil || opts.GPU == nil) && prof.GPU != "" {
		g, err := arch.Lookup(prof.GPU)
		if err != nil {
			return nil, fmt.Errorf("gpa: profile was taken on unknown architecture %q: %w", prof.GPU, err)
		}
		o.GPU = g
	}
	st, err := k.Structure()
	if err != nil {
		return nil, err
	}
	actx, err := adv.BuildContextWithStructure(k.Module, st, prof, o.GPU, o.Blamer)
	if err != nil {
		return nil, err
	}
	ros := adv.DefaultOptimizers()
	ros = append(ros, extra...)
	advice := adv.Advise(actx, ros...)
	return &Report{Advice: advice, Profile: prof, Context: actx}, nil
}

// Structure returns the kernel's recovered program structure (functions,
// loop nests, line mappings), analyzing it on first use. The result is
// shared: callers must treat it as read-only.
func (k *Kernel) Structure() (*structure.Structure, error) {
	k.stOnce.Do(func() {
		k.st, k.stErr = structure.Analyze(k.Module)
	})
	return k.st, k.stErr
}

// defaultGPU is the shared default architecture model: one immutable
// instance, so the nil-GPU fast path neither allocates a fresh model
// per call nor defeats the engine's per-model digest memo. Nothing in
// the pipeline mutates an Options.GPU; callers wanting a model to
// tweak get their own copy from V100()/LookupGPU.
var defaultGPU = arch.VoltaV100()

func normalize(opts *Options) Options {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.GPU == nil {
		o.GPU = defaultGPU
	}
	return o
}

// V100 returns the Volta V100 architecture model used in the paper's
// evaluation (the default when Options.GPU is nil).
func V100() *arch.GPU { return arch.VoltaV100() }

// LookupGPU resolves a registered architecture model by name ("v100",
// "t4", "a100", an alias like "ampere" or "sm_80", or a full model
// name).
func LookupGPU(name string) (*arch.GPU, error) { return arch.Lookup(name) }

// GPUs returns every registered architecture model, ordered by SM flag:
// the sweep order of cross-architecture comparisons.
func GPUs() []*arch.GPU { return arch.All() }

// GPUName returns the canonical registry key for a model ("v100",
// "t4", "a100"), the name accepted back by LookupGPU.
func GPUName(g *arch.GPU) string { return arch.KeyOf(g) }
