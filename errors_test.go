package gpa_test

// Typed-error taxonomy tests: every failure across the public surface
// wraps exactly one sentinel, and the identity survives errors.Is/As
// round-trips through the direct API, the engine, and the cache.

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpa"
)

func TestLoadErrorsAreTyped(t *testing.T) {
	if _, err := gpa.LoadKernelAsm("garbage", gpa.Launch{}); !errors.Is(err, gpa.ErrAssemble) {
		t.Errorf("bad asm err = %v, want ErrAssemble", err)
	}
	if _, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{Entry: "missing"}); !errors.Is(err, gpa.ErrBadKernel) {
		t.Errorf("missing entry err = %v, want ErrBadKernel", err)
	}
	if _, err := gpa.LoadKernelBinary([]byte("not a cubin"), gpa.Launch{}); !errors.Is(err, gpa.ErrBadKernel) {
		t.Errorf("bad blob err = %v, want ErrBadKernel", err)
	}
	if _, err := gpa.LookupGPU("sm_999"); !errors.Is(err, gpa.ErrUnknownArch) {
		t.Errorf("unknown arch err = %v, want ErrUnknownArch", err)
	}
}

func TestSimulationErrorsAreTyped(t *testing.T) {
	// A launch shape no SM configuration can host: bad kernel, found at
	// simulation time (loading cannot know the launch is impossible).
	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 1, BlockX: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Measure(context.Background(), nil); !errors.Is(err, gpa.ErrBadKernel) {
		t.Errorf("impossible launch err = %v, want ErrBadKernel", err)
	}
}

func TestAdviseFromProfileUnknownArchIsTyped(t *testing.T) {
	k, opts := apiKernel(t)
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	prof.GPU = "sm_999" // a profile from an unregistered deployment
	if _, err := k.AdviseFromProfile(context.Background(), prof, nil); !errors.Is(err, gpa.ErrUnknownArch) {
		t.Errorf("unknown profile arch err = %v, want ErrUnknownArch", err)
	}
}

func TestCanceledErrorAsExposesCause(t *testing.T) {
	k, opts := slowKernel(t, 50_000, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := k.Measure(ctx, opts)
	var ce *gpa.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As(%v, *CanceledError) = false", err)
	}
	if !errors.Is(ce.Cause, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", ce.Cause)
	}

	// Deadline flavor: the cause distinguishes expiry from cancel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, err = k.Measure(dctx, opts)
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.DeadlineExceeded) {
		t.Errorf("expired deadline err = %v, want CanceledError with DeadlineExceeded cause", err)
	}
}

// TestEngineErrorsRoundTripThroughCache pins that typed identity
// survives the engine's layers and that errors are never cached: the
// same failing job fails identically twice, costing a pipeline run
// each time.
func TestEngineErrorsRoundTripThroughCache(t *testing.T) {
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	res := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobMeasure})
	if !errors.Is(res.Err, gpa.ErrBadKernel) {
		t.Errorf("kernel-less job err = %v, want ErrBadKernel", res.Err)
	}

	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 1, BlockX: 2048, // impossible launch
	})
	if err != nil {
		t.Fatal(err)
	}
	job := gpa.Job{Kind: gpa.JobAdvise, Kernel: k}
	first := eng.Do(context.Background(), job)
	if !errors.Is(first.Err, gpa.ErrBadKernel) {
		t.Fatalf("first err = %v, want ErrBadKernel", first.Err)
	}
	second := eng.Do(context.Background(), job)
	if !errors.Is(second.Err, gpa.ErrBadKernel) {
		t.Fatalf("second err = %v, want ErrBadKernel", second.Err)
	}
	st := eng.Stats()
	if st.Errors != 2 || st.Runs != 2 {
		t.Errorf("errors/runs = %d/%d, want 2/2 (errors are never cached)", st.Errors, st.Runs)
	}
	if st.CacheEntries != 0 {
		t.Errorf("cacheEntries = %d, want 0", st.CacheEntries)
	}

	// A successful job still caches; a cache hit keeps Err nil.
	ok1 := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobAdvise, Kernel: mustKernel(t)})
	if ok1.Err != nil {
		t.Fatal(ok1.Err)
	}
	ok2 := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobAdvise, Kernel: mustKernel(t)})
	if ok2.Err != nil || !ok2.Cached {
		t.Errorf("cache hit = (err %v, cached %v), want (nil, true)", ok2.Err, ok2.Cached)
	}
}

// mustKernel builds the small workload-free API kernel (cacheable: no
// opaque workload callbacks).
func mustKernel(t *testing.T) *gpa.Kernel {
	t.Helper()
	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 4, BlockX: 64, RegsPerThread: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}
