// Cross-architecture advising: the same memory-bound kernel is
// profiled on every registered GPU model (V100, T4, A100, ...), and the
// per-model occupancy, duration, and top advice are compared side by
// side. The pipeline is architecture-parametric — gpa.Options.GPU
// selects the model, gpa.GPUs() enumerates the registry — so one
// kernel becomes a "which GPU should this run on" study.
//
// Run with: go run ./examples/multiarch
package main

import (
	"context"
	"fmt"
	"log"

	"gpa"
)

const kernelSrc = `
.module sm_70
.func saxpy_strided global
.line saxpy.cu 12
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line saxpy.cu 15
	LDG.E.32 R8, [R2] {S:1, W:0}
.line saxpy.cu 16
	F2F.F64.F32 R10, R8 {S:13, Q:0}
	DMUL R10, R10, R4 {S:10}
	F2F.F32.F64 R11, R10 {S:13}
	FADD R12, R11, R12 {S:4}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x60 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R12 {S:1, R:1}
	EXIT {Q:1}
`

func main() {
	// One kernel serves every architecture: the loaded program is
	// architecture-independent (the sm_70 flag records what it was
	// compiled for), and all architectural parameters enter per run via
	// Options.GPU.
	kernel, err := gpa.LoadKernelAsm(kernelSrc, gpa.Launch{
		Entry: "saxpy_strided", GridX: 640, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	wl, err := kernel.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "saxpy_strided", Label: "BR0"}: gpa.UniformTrips(96),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-18s %6s %6s %10s  %s\n",
		"ARCH", "MODEL", "W/SCHED", "LIMIT", "CYCLES", "TOP ADVICE (estimated)")
	for _, g := range gpa.GPUs() {
		report, err := kernel.Advise(context.Background(), &gpa.Options{
			GPU: g, Workload: wl, Seed: 7, SimSMs: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", g.Name, err)
		}
		p := report.Profile
		top := report.Top(1)
		advice := "(none)"
		if len(top) > 0 {
			advice = fmt.Sprintf("%s (%.2fx)", top[0].Optimizer, top[0].Speedup)
		}
		fmt.Printf("%-6s %-18s %6d %6s %10d  %s\n",
			gpa.GPUName(g), g.Name, p.WarpsPerScheduler, p.OccupancyLimiter,
			p.Cycles, advice)
	}
	fmt.Println("\nSame kernel, same seed: per-architecture results are deterministic;")
	fmt.Println("differences between rows come from the architecture models alone.")
}
