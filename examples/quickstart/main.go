// Quickstart: assemble a small kernel, profile it on the simulated V100
// with PC sampling, and print GPA's ranked optimization advice.
//
// The kernel is a memory-bound loop whose load feeds its consumer
// immediately — the classic pattern both the loop-unrolling and
// code-reordering optimizers catch.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"gpa"
)

const kernelSrc = `
.module sm_70
.func stream_add global
.line stream_add.cu 7
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line stream_add.cu 9
	LDG.E.32 R4, [R2] {S:1, W:0}
.line stream_add.cu 10
	FADD R5, R4, R5 {S:4, Q:0}
	IADD R2, R2, 0x4 {S:4}
.line stream_add.cu 8
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x80 {S:4}
BR0:	@P0 BRA LOOP {S:5}
.line stream_add.cu 12
	STG.E.32 [R2], R5 {S:1, R:1}
	EXIT {Q:1}
`

func main() {
	// 1. Load the kernel with its launch configuration.
	kernel, err := gpa.LoadKernelAsm(kernelSrc, gpa.Launch{
		Entry:         "stream_add",
		GridX:         640,
		BlockX:        256,
		RegsPerThread: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the data-dependent behaviour: the loop runs 128
	// iterations per warp.
	workload, err := kernel.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "stream_add", Label: "BR0"}: gpa.UniformTrips(128),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Profile (simulate with PC sampling) and advise in one step.
	report, err := kernel.Advise(context.Background(), &gpa.Options{Workload: workload, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the profile and the ranked advice.
	p := report.Profile
	fmt.Printf("kernel ran %d cycles; %d samples (%.0f%% active), issue ratio %.3f\n\n",
		p.Cycles, p.TotalSamples,
		100*float64(p.ActiveSamples)/float64(p.TotalSamples), p.IssueRatio)
	report.Render(os.Stdout)
}
