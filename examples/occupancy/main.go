// Occupancy tuning with the parallel optimizers: a gaussian-elimination
// style kernel launched with one-warp blocks caps resident warps at the
// blocks-per-SM limit, so each scheduler has too few warps to hide
// memory latency. GPA's thread-increase optimizer detects the limiter
// and estimates the speedup via Equations 6-10; this example verifies
// the estimate by re-running the kernel at the suggested block size.
//
// Run with: go run ./examples/occupancy
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gpa"
)

const kernelSrc = `
.module sm_70
.func fan2 global
.line gaussian.cu 30
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line gaussian.cu 33
	LDG.E.32 R8, [R2] {S:1, W:0}
.line gaussian.cu 34
	FFMA R12, R8, R13, R12 {S:4, Q:0}
	FFMA R16, R16, R24, R16 {S:2}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x30 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R12 {S:1, R:1}
	EXIT {Q:1}
`

func run(blockThreads, gridBlocks int) (int64, *gpa.Report, error) {
	kernel, err := gpa.LoadKernelAsm(kernelSrc, gpa.Launch{
		Entry: "fan2", GridX: gridBlocks, BlockX: blockThreads, RegsPerThread: 32,
	})
	if err != nil {
		return 0, nil, err
	}
	wl, err := kernel.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "fan2", Label: "BR0"}: gpa.UniformTrips(48),
		},
	})
	if err != nil {
		return 0, nil, err
	}
	opts := &gpa.Options{Workload: wl, Seed: 3, SimSMs: 1}
	cycles, err := kernel.Measure(context.Background(), opts)
	if err != nil {
		return 0, nil, err
	}
	report, err := kernel.Advise(context.Background(), opts)
	return cycles, report, err
}

func main() {
	// Baseline: 5120 one-warp blocks (the same 163840 threads as the
	// tuned launch below).
	baseCycles, baseReport, err := run(32, 5120)
	if err != nil {
		log.Fatal(err)
	}
	p := baseReport.Profile
	fmt.Printf("baseline: 32-thread blocks -> %d warps/scheduler (limiter: %s), %d cycles\n",
		p.WarpsPerScheduler, p.OccupancyLimiter, baseCycles)

	var estimated float64
	for _, e := range baseReport.Advice.Entries {
		if e.Optimizer == "GPUThreadIncreaseOptimizer" {
			estimated = e.Speedup
		}
	}
	if estimated == 0 {
		log.Fatal("thread-increase optimizer did not match — unexpected for this launch")
	}
	fmt.Printf("GPA suggests increasing threads per block; estimated speedup %.2fx\n\n", estimated)

	// Apply the suggestion: 256-thread blocks, same total threads.
	optCycles, optReport, err := run(256, 640)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned:    256-thread blocks -> %d warps/scheduler (limiter: %s), %d cycles\n",
		optReport.Profile.WarpsPerScheduler, optReport.Profile.OccupancyLimiter, optCycles)

	achieved := float64(baseCycles) / float64(optCycles)
	fmt.Printf("\nachieved %.2fx vs estimated %.2fx (error %.0f%%)\n",
		achieved, estimated, 100*math.Abs(estimated-achieved)/achieved)
}
