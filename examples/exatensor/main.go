// ExaTENSOR case study (Section 7.1 of the GPA paper): iterative
// optimization of a tensor-transpose kernel guided by GPA's reports.
//
// Step 1: GPA flags the integer division in the index permutation
// arithmetic (strength reduction, the Figure 8 report); replacing it
// with a reciprocal multiplication gives the first speedup.
//
// Step 2: re-analysing the improved kernel surfaces memory throttling
// from the permutation table reads, and the memory-transaction-reduction
// optimizer suggests moving them to constant memory.
//
// Run with: go run ./examples/exatensor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"gpa"
	"gpa/internal/kernels"
)

func main() {
	steps := []struct {
		label string
		app   string
		opt   string
	}{
		{"Step 1: baseline analysis", "ExaTENSOR", "Strength Reduction"},
		{"Step 2: after strength reduction", "ExaTENSOR", "Memory Transaction Reduction"},
	}
	for _, step := range steps {
		var bench *kernels.Benchmark
		for _, b := range kernels.Find(step.app) {
			if b.Optimization == step.opt {
				bench = b
			}
		}
		if bench == nil {
			log.Fatalf("no bundled benchmark for %s / %s", step.app, step.opt)
		}
		fmt.Printf("%s\n%s\n", step.label, strings.Repeat("=", 64))

		baseKernel, baseWL, err := bench.Base.Build()
		if err != nil {
			log.Fatal(err)
		}
		report, err := baseKernel.Advise(context.Background(), &gpa.Options{Workload: baseWL, Seed: 11, SimSMs: 1})
		if err != nil {
			log.Fatal(err)
		}
		report.Render(os.Stdout)

		out, err := bench.Run(context.Background(), kernels.RunOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nApplying %q: %d -> %d cycles, achieved %.2fx (paper: %.2fx), GPA estimated %.2fx (paper: %.2fx)\n\n",
			bench.Optimization, out.BaseCycles, out.OptCycles,
			out.Achieved, bench.PaperAchieved, out.Estimated, bench.PaperEstimated)
	}
}
