// Custom optimizer: the paper notes GPA "is organized in a modular
// fashion. Users can add custom optimizers to match other inefficiency
// patterns (e.g., texture fetch combination)."
//
// This example adds an atomic-contention optimizer: it matches stalls
// blamed on ATOM/RED instructions (which serialize under contention) and
// suggests privatizing the accumulator. The custom optimizer runs next
// to the built-in Table 2 set and is ranked with them.
//
// Run with: go run ./examples/custom-optimizer
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"gpa"
	"gpa/internal/advisor"
	"gpa/internal/blamer"
	"gpa/internal/sass"
)

// atomicContention matches memory-dependency stalls whose blamed source
// is an atomic operation.
type atomicContention struct{}

func (atomicContention) Name() string     { return "GPUAtomicContentionOptimizer" }
func (atomicContention) Category() string { return "stall elimination" }
func (atomicContention) Suggestion() string {
	return `Atomic operations serialize under contention.
1. Privatize the accumulator per block (shared memory) and reduce once at the end.
2. Use warp-aggregated atomics (__reduce_add_sync) before touching global memory.`
}

func (atomicContention) Match(ctx *advisor.Context) *advisor.Match {
	m := &advisor.Match{Applicable: true}
	for name, fc := range ctx.Funcs {
		for _, e := range fc.Blame.SurvivingEdges() {
			def := fc.FS.Fn.Instrs[e.Def]
			if def.Opcode != sass.OpATOM && def.Opcode != sass.OpRED {
				continue
			}
			m.Matched += e.Stalls
			m.MatchedLatency += e.LatencyStalls
			m.Hotspots = append(m.Hotspots, advisor.Hotspot{
				FuncName: name, Def: e.Def, Use: e.Use,
				Stalls: e.Stalls, Distance: e.PathLen, Detail: "atomic_contention",
			})
		}
	}
	return m
}

var _ advisor.Optimizer = atomicContention{}

// histogram: every iteration atomically bumps a bin and immediately
// reads the result back.
const histogramSrc = `
.module sm_70
.func histogram global
.line histogram.cu 12
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line histogram.cu 14
	ATOM.E.32 R8, [R2] {S:1, W:0}
.line histogram.cu 15
	IADD R9, R8, R9 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R9 {S:1, R:1}
	EXIT {Q:1}
`

func main() {
	kernel, err := gpa.LoadKernelAsm(histogramSrc, gpa.Launch{
		Entry: "histogram", GridX: 640, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	wl, err := kernel.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "histogram", Label: "BR0"}: gpa.UniformTrips(64),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Register the custom optimizer alongside the default Table 2 set;
	// stall-elimination speedups use Equation 2 of the paper.
	report, err := kernel.Advise(context.Background(),
		&gpa.Options{Workload: wl, Seed: 5, SimSMs: 1, Blamer: blamer.Options{}},
		advisor.RankedOptimizer{Optimizer: atomicContention{}, Estimator: advisor.StallElimination{}},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Advice with the custom atomic-contention optimizer registered:")
	fmt.Println()
	report.Render(os.Stdout)
}
