// Serving advice at scale: the same kernel is advised through the
// batch engine (gpa.NewEngine) — first as a concurrent burst of
// identical jobs that singleflight collapses into ONE simulation, then
// as a cross-architecture sweep, with the engine's hit/miss/coalesce
// counters printed after each phase. The engine is exactly what
// cmd/gpad serves over HTTP; with -addr the example talks to a running
// gpad instead and demonstrates the same cache behaviour over the
// wire.
//
// Run with:
//
//	go run ./examples/service                      # in-process engine
//	go run ./cmd/gpad &                            # then, against HTTP:
//	go run ./examples/service -addr 127.0.0.1:8377
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"

	"gpa"
)

const kernelSrc = `
.module sm_70
.func blur_tile global
.line blur.cu 9
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line blur.cu 12
	LDG.E.32 R4, [R2] {S:1, W:0}
.line blur.cu 13
	I2F R5, R4 {S:6, Q:0}
	FMUL R6, R5, 2f {S:4}
	F2I R7, R6 {S:6}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R7 {S:1, R:1}
	EXIT {Q:1}
`

func main() {
	addr := flag.String("addr", "", "gpad address (empty = in-process engine)")
	flag.Parse()
	if *addr != "" {
		if err := runHTTP(*addr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runInProcess(); err != nil {
		log.Fatal(err)
	}
}

// runInProcess drives the library batch API.
func runInProcess() error {
	k, err := gpa.LoadKernelAsm(kernelSrc, gpa.Launch{
		Entry: "blur_tile", GridX: 640, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		return err
	}
	// A workload is an opaque callback, so caching it needs a stable
	// name: the WorkloadKey below promises "blur:64trips" always means
	// this binding.
	wl, err := k.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "blur_tile", Label: "BR0"}: gpa.UniformTrips(64),
		},
	})
	if err != nil {
		return err
	}
	opts := &gpa.Options{Workload: wl, Seed: 11, SimSMs: 1}
	eng := gpa.NewEngine(nil)
	job := gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts, WorkloadKey: "blur:64trips"}

	// Phase 1: a burst of identical concurrent requests. The engine's
	// singleflight table collapses them into one simulation.
	const burst = 16
	var wg sync.WaitGroup
	results := make([]gpa.JobResult, burst)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.Do(context.Background(), job)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("burst job %d: %w", i, r.Err)
		}
	}
	fmt.Printf("burst: %d identical concurrent requests\n", burst)
	printStats(eng)

	// Phase 2: a repeat is a pure cache hit, byte-identical by the
	// determinism contract.
	repeat := eng.Do(context.Background(), job)
	if repeat.Err != nil {
		return repeat.Err
	}
	fmt.Printf("\nrepeat: cached=%v, report identical=%v\n",
		repeat.Cached, repeat.Report.String() == results[0].Report.String())

	// Phase 3: sweep the kernel across every registered architecture.
	gpus, sweep := eng.Sweep(context.Background(), job, nil)
	fmt.Println("\nsweep across registered architectures:")
	for i, r := range sweep {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", gpa.GPUName(gpus[i]), r.Err)
		}
		top := "-"
		if es := r.Report.Top(1); len(es) > 0 {
			top = fmt.Sprintf("%s (%.3fx)", es[0].Optimizer, es[0].Speedup)
		}
		fmt.Printf("  %-6s %8d cycles   top advice: %s\n",
			gpa.GPUName(gpus[i]), r.Cycles, top)
	}
	printStats(eng)

	fmt.Println("\ntop advice on the default model:")
	for i, e := range results[0].Report.Top(3) {
		fmt.Printf("  %d. %-40s est %.3fx\n", i+1, e.Optimizer, e.Speedup)
	}
	return nil
}

func printStats(eng *gpa.Engine) {
	st := eng.Stats()
	fmt.Printf("engine stats: runs=%d misses=%d coalesced=%d hits=%d cache=%d entries\n",
		st.Runs, st.Misses, st.Coalesced, st.Hits, st.CacheEntries)
}

// runHTTP demonstrates the same cache behaviour against a running gpad.
func runHTTP(addr string) error {
	base := "http://" + addr
	req, err := json.Marshal(map[string]any{
		"asm": kernelSrc, "gridX": 640, "blockX": 256, "seed": 11,
	})
	if err != nil {
		return err
	}
	post := func() (map[string]any, error) {
		resp, err := http.Post(base+"/v1/advise", "application/json", bytes.NewReader(req))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST /v1/advise: %s: %s", resp.Status, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, err
		}
		return out, nil
	}
	cold, err := post()
	if err != nil {
		return err
	}
	warm, err := post()
	if err != nil {
		return err
	}
	fmt.Printf("cold: cached=%v cycles=%v\nwarm: cached=%v report identical=%v\n",
		cold["cached"], cold["cycles"], warm["cached"], warm["report"] == cold["report"])
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	stats, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("statsz: %s", stats)
	return nil
}
