package gpa

import (
	"encoding/json"

	"gpa/internal/profiler"

	adv "gpa/internal/advisor"
)

// ResultSchemaVersion identifies the structured result schema of the
// v2 API. Bump the trailing version whenever a field is added, removed,
// or changes meaning, so machine clients (dashboards, optimize-measure
// loops, multi-deployment drift checks) can dispatch on it instead of
// sniffing fields. cmd/gpad stamps it on every response body, success
// and error alike.
const ResultSchemaVersion = "gpa-result/2"

// Result is the versioned, machine-readable outcome of one pipeline
// run: the structured form of a Report that the library returns and
// cmd/gpad serves as JSON. The legacy Figure 8 text rendering rides
// along in ReportText, byte-identical to Report.String(), so v1 text
// consumers keep working while structured clients read Advice
// directly.
type Result struct {
	// SchemaVersion is always ResultSchemaVersion.
	SchemaVersion string `json:"schemaVersion"`
	// Kernel is the entry function the run simulated or analyzed.
	Kernel string `json:"kernel"`
	// Arch is the canonical registry key of the GPU model ("v100").
	Arch string `json:"arch"`
	// Kind is the pipeline stage ("measure", "profile", "advise").
	Kind string `json:"kind"`
	// TraceID is the per-request trace identifier echoed back to the
	// client (cmd/gpad stamps it from X-Request-Id or mints one).
	// Transport-level observability only: it is excluded from the cache
	// digest, every stage key, and the determinism contract — two
	// requests with different trace IDs return otherwise byte-identical
	// results. Empty for library-direct results.
	TraceID string `json:"traceId,omitempty"`
	// Key is the content-addressed cache key ("" when uncacheable).
	Key string `json:"key,omitempty"`
	// Cached is true when the result was served without a new
	// simulation (cache hit or coalesced with an in-flight duplicate).
	Cached bool `json:"cached"`
	// Cycles is the simulated kernel duration.
	Cycles int64 `json:"cycles"`
	// ElapsedMS is the wall-clock cost in milliseconds of the pipeline
	// run that produced the result; cached results report the original
	// run's cost (the time the cache avoided).
	ElapsedMS float64 `json:"elapsedMs"`
	// ProfileDigest is the profile's stable content digest: equal
	// requests digest equally across builds and deployments, which is
	// what drift checks compare.
	ProfileDigest string `json:"profileDigest,omitempty"`
	// Advice is the structured ranked advice ("advise" kind): the same
	// entries the Figure 8 text renders, machine-readable.
	Advice []adv.AdviceEntry `json:"advice,omitempty"`
	// ReportText is the legacy Figure 8-style rendering ("advise"
	// kind), byte-identical to Report.String() for the same run.
	ReportText string `json:"report,omitempty"`
	// Profile carries the raw per-PC samples when requested ("profile"
	// kind; omitted from "advise" results to keep them compact).
	Profile *profiler.Profile `json:"profile,omitempty"`
}

// MarshalIndent renders the result as indented JSON (the gpad wire
// encoding).
func (r *Result) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Result converts a direct-API report into the versioned structured
// result. The kernel supplies launch identity, gpu the architecture
// key (nil = the model the report's profile records, else the V100
// default); elapsedMS may be zero when the caller did not time the
// run.
func (r *Report) Result(k *Kernel, gpu string, elapsedMS float64) *Result {
	if gpu == "" {
		gpu = GPUName(V100())
		if r.Profile != nil && r.Profile.GPU != "" {
			gpu = r.Profile.GPU
		}
	}
	res := &Result{
		SchemaVersion: ResultSchemaVersion,
		Kernel:        k.Launch.Entry,
		Arch:          gpu,
		Kind:          JobAdvise.String(),
		ElapsedMS:     elapsedMS,
		ReportText:    r.String(),
	}
	if r.Advice != nil {
		res.Advice = r.Advice.Entries
	}
	if r.Profile != nil {
		res.Cycles = r.Profile.Cycles
		if d, err := r.Profile.Digest(); err == nil {
			res.ProfileDigest = d
		}
	}
	return res
}

// Result converts an engine job outcome into the versioned structured
// result (nil when the job failed; read JobResult.Err instead).
func (j Job) Result(res JobResult) *Result {
	if res.Err != nil {
		return nil
	}
	gpu := V100()
	if j.Options != nil && j.Options.GPU != nil {
		gpu = j.Options.GPU
	}
	out := &Result{
		SchemaVersion: ResultSchemaVersion,
		Kernel:        j.Kernel.Launch.Entry,
		Arch:          GPUName(gpu),
		Kind:          j.Kind.String(),
		Key:           res.Key,
		Cached:        res.Cached,
		Cycles:        res.Cycles,
		ElapsedMS:     res.ElapsedMS,
		ProfileDigest: res.ProfileDigest,
	}
	if res.Report != nil {
		out.Advice = res.Report.Advice.Entries
		out.ReportText = res.Report.String()
	}
	if j.Kind == JobProfile {
		out.Profile = res.Profile
	}
	return out
}
