package gpa

import (
	"context"
	"fmt"
	"time"

	"gpa/internal/arch"
	"gpa/internal/obs"
	"gpa/internal/profiler"
	"gpa/internal/qos"
	"gpa/internal/service"
)

// Engine is the batch/serving front end of the pipeline: a bounded
// worker pool with a content-addressed result cache and singleflight
// deduplication (see internal/service). One engine is meant to be
// shared by everything that fans work out — cmd/gpad serves HTTP
// traffic through one, cmd/gpa-bench routes Table 3 sweeps through
// one, and library callers batch through AdviseAll/DoAll — so a
// machine-wide simulation budget is enforced in exactly one place.
//
// Every method takes a context.Context and honors cancellation
// end-to-end: a caller abandoning a queued job detaches before a
// worker slot is spent, a caller abandoning a coalesced job detaches
// without killing the shared simulation (the remaining waiters still
// get the result), and an in-flight simulation is canceled when its
// last waiter detaches. Per-job deadlines come from Job.Timeout or
// EngineOptions.DefaultTimeout, and EngineOptions.MaxQueue turns the
// engine into a load-shedding server that fails fast with ErrQueueFull
// instead of queueing without bound.
//
// The cache key is a digest of the kernel's canonical module bytes,
// launch configuration, architecture model, and every result-affecting
// option; the simulator is deterministic, so a cache hit returns
// byte-identical report text to a cold sequential run. N identical
// concurrent jobs cost one simulation. Results returned from the cache
// share pointers and must be treated as read-only.
type Engine struct {
	svc *service.Engine
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache (0 = 512, negative
	// disables caching; identical in-flight jobs still coalesce).
	CacheEntries int
	// MaxQueue bounds how many jobs may wait for a worker slot beyond
	// the Workers already running; excess jobs fail fast with
	// ErrQueueFull (0 = unbounded, negative = no queue at all).
	MaxQueue int
	// DefaultTimeout is the per-job deadline applied to every job whose
	// own Timeout is zero (0 = none). Deadline expiry returns an error
	// wrapping both ErrCanceled and context.DeadlineExceeded.
	DefaultTimeout time.Duration
	// StageEntries bounds each per-stage in-memory artifact cache
	// (0 = 512 per stage; negative disables stage caching, leaving only
	// the end-to-end result cache). Stage caches let partial reuse
	// happen — an arch sweep re-analyzes the module zero extra times, a
	// profile job's output feeds a later advise job without
	// re-simulation.
	StageEntries int
	// Store is the persistent artifact store (see OpenStore): stage
	// outputs survive restarts and are shared between engines pointed
	// at the same directory. nil = in-memory only.
	Store *Store
	// QoS configures tenant-fair admission: per-tenant DWRR weights,
	// token-bucket quotas, the interactive-lane reserve, and the
	// brownout controller (nil = every caller shares one equal-weight
	// "default" tenant and nothing is metered). The config must
	// validate; build one with NewQoSConfig or ParseQoSConfig.
	QoS *QoSConfig
}

// EngineStats is a snapshot of the engine's cache and scheduling
// counters (the numbers gpad exposes at /statsz).
type EngineStats = service.Stats

// TenantStats is the per-tenant slice of EngineStats.Tenants: DWRR
// weight plus served/shed/quota/brownout counters and the live queue
// depth for one tenant.
type TenantStats = service.TenantStats

// QoSConfig configures tenant-fair admission (see EngineOptions.QoS).
// The zero value is valid: one equal-weight default tenant, no quotas,
// brownout disabled. Build richer configs fluently with NewQoSConfig
// or parse operator JSON with ParseQoSConfig.
type QoSConfig = qos.Config

// TenantQoSConfig is one tenant's admission policy: DWRR weight and an
// optional token-bucket quota (requests/second + burst).
type TenantQoSConfig = qos.TenantConfig

// BrownoutConfig tunes the overload controller that sheds batch-lane
// work when the queue-delay p99 crosses a threshold.
type BrownoutConfig = qos.BrownoutConfig

// NewQoSConfig starts a fluent, self-validating QoSConfig builder.
func NewQoSConfig() *qos.ConfigBuilder { return qos.NewConfig() }

// NewTenantQoSConfig starts a fluent TenantQoSConfig builder.
func NewTenantQoSConfig() *qos.TenantConfigBuilder { return qos.NewTenantConfig() }

// ParseQoSConfig parses and validates an operator-supplied JSON QoS
// config (unknown fields are rejected). cmd/gpad loads -qos-config
// files through this.
func ParseQoSConfig(data []byte) (QoSConfig, error) { return qos.ParseConfig(data) }

// Lane is a job's admission priority class. The engine schedules the
// interactive lane ahead of batch and sheds batch first under
// overload; lanes never affect what a job computes.
type Lane = qos.Lane

const (
	// LaneInteractive is the latency-sensitive lane (the zero value):
	// single advise/profile requests a person is waiting on.
	LaneInteractive = qos.LaneInteractive
	// LaneBatch is the throughput lane: sweeps and bulk jobs that
	// tolerate queueing and are shed first under overload.
	LaneBatch = qos.LaneBatch
)

// NewEngine builds an engine (nil opts = defaults).
func NewEngine(opts *EngineOptions) *Engine {
	var o EngineOptions
	if opts != nil {
		o = *opts
	}
	svcOpts := service.Options{
		Workers:        o.Workers,
		CacheEntries:   o.CacheEntries,
		MaxQueue:       o.MaxQueue,
		DefaultTimeout: o.DefaultTimeout,
		StageEntries:   o.StageEntries,
		QoS:            o.QoS,
	}
	if o.Store != nil {
		svcOpts.Disk = o.Store.disk
	}
	return &Engine{svc: service.New(svcOpts)}
}

// JobKind selects which pipeline stage a job runs.
type JobKind = service.Kind

const (
	// JobMeasure simulates without sampling and reports cycles only.
	JobMeasure = service.KindMeasure
	// JobProfile runs the sampling profiler.
	JobProfile = service.KindProfile
	// JobAdvise runs the full pipeline and renders the advice report.
	JobAdvise = service.KindAdvise
)

// Job is one unit of work for the engine.
type Job struct {
	Kind   JobKind
	Kernel *Kernel
	// Options tunes the run exactly as for Kernel.Advise (nil =
	// defaults). Unlike the direct API, Options.Parallelism defaults to
	// 1: the engine supplies job-level concurrency, and nesting a
	// GOMAXPROCS-wide SM pool under every worker would oversubscribe
	// the machine. Parallelism never affects results either way.
	Options *Options
	// Timeout is this job's deadline, measured from admission (0 = the
	// engine's DefaultTimeout; negative = none even when a default is
	// set). Never affects a completed result.
	Timeout time.Duration
	// WorkloadKey names Options.Workload stably for caching: workloads
	// are opaque callbacks, so a job carrying one without a key bypasses
	// the cache (it still runs, bounded by the worker pool). Reusing a
	// key promises the workload behaves identically.
	WorkloadKey string
	// TraceID is the per-request trace identifier that request logs
	// carry and the v2 result schema echoes (cmd/gpad accepts it via
	// X-Request-Id or mints one). It never affects results: trace IDs
	// are excluded from the cache digest and every stage key, so jobs
	// differing only in TraceID share one simulation and byte-identical
	// responses.
	TraceID string
	// Tenant names who this job is billed to and scheduled as
	// (cmd/gpad accepts it via X-Tenant-Id; "" = the shared "default"
	// tenant). Like TraceID it never affects results: tenants are
	// excluded from the cache digest and stage keys, so identical jobs
	// from different tenants share one simulation — each tenant is
	// still billed and counted for its own request.
	Tenant string
	// Lane is the job's admission priority (zero = LaneInteractive).
	// Engine.Sweep and gpad's batch/sweep endpoints run on LaneBatch.
	Lane Lane
}

// JobResult is the outcome of one job. Exactly one of Err or the
// kind's payload fields is meaningful.
type JobResult struct {
	// Report is set for JobAdvise (report text, advice, profile,
	// context — as returned by Kernel.Advise).
	Report *Report
	// Profile is set for JobProfile and JobAdvise.
	Profile *profiler.Profile
	// ProfileDigest is the profile's stable content digest.
	ProfileDigest string
	// Cycles is the simulated kernel duration (all kinds).
	Cycles int64
	// ElapsedMS is the wall-clock cost in milliseconds of the pipeline
	// run that produced the result; cache hits report the original
	// run's cost (the time the cache avoided).
	ElapsedMS float64
	// Cached reports whether the result was served without a new
	// simulation (cache hit or coalesced with an identical in-flight
	// job).
	Cached bool
	// Key is the content-addressed cache key ("" when the job was
	// uncacheable).
	Key string
	// Err wraps one of the typed sentinels in errors.go (ErrCanceled,
	// ErrQueueFull, ErrBadKernel, ...); classify with errors.Is.
	Err error
}

// request converts a job to a service request. The request is returned
// by value: on the warm cache-hit path it never escapes the caller's
// stack (the service copies it only when starting a new flight).
func (j Job) request() (service.Request, error) {
	if j.Kernel == nil {
		return service.Request{}, fmt.Errorf("gpa: %w: engine job without kernel", ErrBadKernel)
	}
	// service.Request.normalized owns the engine's option defaults,
	// including the Parallelism-zero-means-1 rule.
	o := normalize(j.Options)
	prog, err := j.Kernel.program()
	if err != nil {
		return service.Request{}, err
	}
	// A module-hash failure is not fatal here: a zero hash makes the
	// service re-pack the module inside Digest and surface the error
	// through the same path it always has.
	modHash, _ := j.Kernel.moduleHash()
	return service.Request{
		Kind:         j.Kind,
		Module:       j.Kernel.Module,
		Prog:         prog,
		ModuleHash:   modHash,
		Launch:       j.Kernel.Launch.config(),
		GPU:          o.GPU,
		SamplePeriod: o.SamplePeriod,
		SimSMs:       o.SimSMs,
		Seed:         o.Seed,
		Parallelism:  o.Parallelism,
		Timeout:      j.Timeout,
		Blamer:       o.Blamer,
		Workload:     o.Workload,
		WorkloadKey:  j.WorkloadKey,
		TraceID:      j.TraceID,
		Tenant:       j.Tenant,
		Lane:         j.Lane,
	}, nil
}

func resultOf(resp *service.Response, err error) JobResult {
	if err != nil {
		return JobResult{Err: err}
	}
	res := JobResult{
		Profile:       resp.Profile,
		ProfileDigest: resp.ProfileDigest,
		Cycles:        resp.Cycles,
		ElapsedMS:     resp.ElapsedMS,
		Cached:        resp.Cached,
		Key:           resp.Key,
	}
	if resp.Advice != nil {
		// The Report wrapper is memoized per underlying response, so a
		// warm cache hit re-serves the same *Report without allocating.
		res.Report = resp.Memo(func() any {
			return &Report{Advice: resp.Advice, Profile: resp.Profile, Context: resp.Context}
		}).(*Report)
	}
	return res
}

// Do resolves one job through the engine's cache and worker pool. A
// canceled ctx detaches this caller promptly (see Engine).
func (e *Engine) Do(ctx context.Context, j Job) JobResult {
	req, err := j.request()
	if err != nil {
		return JobResult{Err: err}
	}
	return resultOf(e.svc.Do(ctx, &req))
}

// DoAll resolves jobs concurrently; the worker pool bounds how many
// simulate at once and identical jobs coalesce into one simulation.
// Results are positionally aligned with jobs. A canceled ctx abandons
// every unfinished job (finished slots keep their results).
func (e *Engine) DoAll(ctx context.Context, jobs []Job) []JobResult {
	results := make([]JobResult, len(jobs))
	var live []*service.Request
	liveIdx := make([]int, 0, len(jobs))
	for i, j := range jobs {
		req, err := j.request()
		if err != nil {
			results[i] = JobResult{Err: err}
			continue
		}
		live = append(live, &req)
		liveIdx = append(liveIdx, i)
	}
	resps, errs := e.svc.DoAll(ctx, live)
	for n, i := range liveIdx {
		results[i] = resultOf(resps[n], errs[n])
	}
	return results
}

// AdviseAll runs the full advise pipeline over every kernel with the
// same options (the Table 3 fan-out shape). For per-kernel options or
// workload keys, build Jobs and call DoAll.
func (e *Engine) AdviseAll(ctx context.Context, kernels []*Kernel, opts *Options) []JobResult {
	jobs := make([]Job, len(kernels))
	for i, k := range kernels {
		jobs[i] = Job{Kind: JobAdvise, Kernel: k, Options: opts}
	}
	return e.DoAll(ctx, jobs)
}

// Sweep runs the job template once per listed architecture model
// concurrently, overriding Options.GPU per run (nil or empty gpus =
// every registered model, in registry order). Results are positionally
// aligned with the returned model list. Sweeps are bulk work by
// definition, so every job runs on LaneBatch regardless of the
// template's Lane; the lane never affects results.
func (e *Engine) Sweep(ctx context.Context, j Job, gpus []*arch.GPU) ([]*arch.GPU, []JobResult) {
	if len(gpus) == 0 {
		gpus = arch.All()
	}
	jobs := make([]Job, len(gpus))
	for i, g := range gpus {
		// Job.request() applies the remaining defaults (including the
		// engine's Parallelism-means-1 rule).
		o := normalize(j.Options)
		o.GPU = g
		jg := j
		jg.Options = &o
		jg.Lane = LaneBatch
		jobs[i] = jg
	}
	return gpus, e.DoAll(ctx, jobs)
}

// Shutdown drains the engine: new jobs are rejected with
// ErrShuttingDown, queued jobs are abandoned immediately, and
// in-flight simulations get until ctx's deadline before being
// canceled. A nil error means every in-flight job finished.
func (e *Engine) Shutdown(ctx context.Context) error { return e.svc.Shutdown(ctx) }

// Stats snapshots the engine's hit/miss/coalesce/run counters.
func (e *Engine) Stats() EngineStats { return e.svc.Stats() }

// StageLatency exposes the engine's per-stage pipeline latency
// histograms (assemble, simulate, blame, advise). It is an
// observability hook for the serving layer — cmd/gpad renders it at
// /metrics and records kernel-construction time into the assemble
// histogram — and returns an internal recorder type on purpose:
// latency histograms are operational surface, not API contract.
func (e *Engine) StageLatency() *obs.StageLatency { return e.svc.StageLatency() }
