// Command drift-check prints a digest of simulator-visible behavior for
// comparing builds: per-row measured cycles and a hash of the full
// profile (sample counters included) for a few representative rows.
package main

import (
	"fmt"

	"gpa"
	"gpa/internal/kernels"
)

func main() {
	for _, b := range kernels.All() {
		k, wl, err := b.Base.Build()
		if err != nil {
			panic(err)
		}
		opts := &gpa.Options{Workload: wl, Seed: 11, SimSMs: 4}
		cycles, err := k.Measure(opts)
		if err != nil {
			panic(err)
		}
		prof, err := k.Profile(opts)
		if err != nil {
			panic(err)
		}
		digest, err := prof.Digest()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-60s cycles=%-10d profile=%s\n", b.ID(), cycles, digest[:16])
	}
}
