// Command drift-check prints a digest of simulator-visible behavior for
// comparing builds: per-row measured cycles and a hash of the full
// profile (sample counters included) for a few representative rows.
// Ctrl-C / SIGTERM cancels the in-flight simulation and exits non-zero.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gpa"
	"gpa/internal/kernels"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, gpa.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "drift-check: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "drift-check:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	for _, b := range kernels.All() {
		k, wl, err := b.Base.Build()
		if err != nil {
			return err
		}
		opts := &gpa.Options{Workload: wl, Seed: 11, SimSMs: 4}
		cycles, err := k.Measure(ctx, opts)
		if err != nil {
			return err
		}
		prof, err := k.Profile(ctx, opts)
		if err != nil {
			return err
		}
		digest, err := prof.Digest()
		if err != nil {
			return err
		}
		fmt.Printf("%-60s cycles=%-10d profile=%s\n", b.ID(), cycles, digest[:16])
	}
	return nil
}
