// Command drift-check prints a digest of simulator-visible behavior for
// comparing builds: per-row measured cycles and a hash of the full
// profile (sample counters included) for a few representative rows.
// Ctrl-C / SIGTERM cancels the in-flight simulation and exits non-zero.
//
// With -store-dir the rows are resolved through a store-backed engine
// instead of the direct library calls, so CI can run the tool twice
// against one directory — cold, then warm from disk — and diff both
// outputs against DRIFT.txt to prove store-served artifacts are
// byte-identical to recomputation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gpa"
	"gpa/internal/kernels"
)

func main() {
	storeDir := flag.String("store-dir", "",
		"resolve rows through a persistent artifact store at this directory "+
			"(empty = direct library calls)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *storeDir); err != nil {
		if errors.Is(err, gpa.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "drift-check: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "drift-check:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, storeDir string) error {
	var eng *gpa.Engine
	if storeDir != "" {
		st, err := gpa.OpenStore(storeDir)
		if err != nil {
			return err
		}
		eng = gpa.NewEngine(&gpa.EngineOptions{Store: st})
	}
	for _, b := range kernels.All() {
		k, wl, err := b.Base.Build()
		if err != nil {
			return err
		}
		opts := &gpa.Options{Workload: wl, Seed: 11, SimSMs: 4}
		var (
			cycles int64
			digest string
		)
		if eng != nil {
			// The store path must print exactly what the direct path
			// prints; the workload key makes the rows cacheable.
			key := b.ID() + "/base"
			m := eng.Do(ctx, gpa.Job{Kind: gpa.JobMeasure, Kernel: k, Options: opts, WorkloadKey: key})
			if m.Err != nil {
				return m.Err
			}
			p := eng.Do(ctx, gpa.Job{Kind: gpa.JobProfile, Kernel: k, Options: opts, WorkloadKey: key})
			if p.Err != nil {
				return p.Err
			}
			cycles, digest = m.Cycles, p.ProfileDigest
		} else {
			if cycles, err = k.Measure(ctx, opts); err != nil {
				return err
			}
			prof, err := k.Profile(ctx, opts)
			if err != nil {
				return err
			}
			if digest, err = prof.Digest(); err != nil {
				return err
			}
		}
		fmt.Printf("%-60s cycles=%-10d profile=%s\n", b.ID(), cycles, digest[:16])
	}
	return nil
}
