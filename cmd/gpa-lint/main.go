// Command gpa-lint runs the repo's invariant analyzer suite
// (internal/lint) over the module: detlint (no clock, randomness,
// environment, or map-order leaks in determinism-critical packages),
// digestfields (every field feeding a content-addressed key is
// digested or explicitly excluded), ctxfirst (context-first
// cancellation), apierrlint (taxonomy-tagged errors at origin),
// poolpair (sync.Pool acquire/release pairing), and pkgdoc (package
// docs state their Figure 2 role). It is the CI gate that fails the
// build the moment a determinism contract is violated, before any
// simulation runs.
//
// Usage:
//
//	gpa-lint [-C dir] [packages]
//
// with go-style package patterns (default ./...). Audited exceptions
// use //gpa:lint-allow <analyzer> <reason> on the offending line;
// every waiver is counted and printed so standing exceptions stay
// visible. Exit status is 1 when any finding survives, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpa/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gpa-lint [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.DefaultSuite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpa-lint: %v\n", err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, lint.DefaultSuite())

	cwd, _ := os.Getwd()
	rel := func(path string) string {
		if cwd == "" {
			return path
		}
		if r, err := filepath.Rel(cwd, path); err == nil && len(r) < len(path) {
			return r
		}
		return path
	}

	for _, d := range res.Diagnostics {
		fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	fmt.Printf("gpa-lint: %d finding(s), %d waiver(s) across %d package(s)\n",
		len(res.Diagnostics), len(res.Waivers), countAnalyzed(pkgs))
	for _, w := range res.Waivers {
		fmt.Printf("  waiver %s:%d: %s: %s\n", rel(w.Pos.Filename), w.Pos.Line, w.Analyzer, w.Reason)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func countAnalyzed(pkgs []*lint.Package) int {
	n := 0
	for _, p := range pkgs {
		if !p.DepOnly {
			n++
		}
	}
	return n
}
