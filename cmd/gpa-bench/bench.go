package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/kernels"
)

// benchSnapshot is the BENCH_*.json trajectory record: wall-clock cost
// of each pipeline stage on this machine, so successive perf PRs can
// track the simulator's speed over time.
type benchSnapshot struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"goVersion"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"goMaxProcs"`

	Kernel string `json:"kernel"`
	// Arch is the registry key of the GPU model the stages ran on.
	Arch         string `json:"arch"`
	SimSMs       int    `json:"simSMs"`
	SamplePeriod int    `json:"samplePeriod"`
	Seed         uint64 `json:"seed"`
	Reps         int    `json:"reps"`

	Stages []stageResult `json:"stages"`

	// Engine records advice-engine throughput over every Table 3
	// baseline kernel (gpa.NewEngine + AdviseAll): cold (every job
	// simulates) vs warm (every job is a cache hit), at worker-pool
	// sizes 1 and 4.
	Engine []engineStageResult `json:"engine,omitempty"`

	// Store records the persistent artifact store's effect: a cold pass
	// into an empty directory, restart-warm passes (fresh engines over
	// the populated directory, simulating daemon restarts — zero
	// simulations), and an arch sweep reusing the module front-end.
	Store []storeStageResult `json:"store,omitempty"`

	// ParallelSpeedup is simulate_seq / simulate_par (concurrent SMs).
	ParallelSpeedup float64 `json:"parallelSpeedup"`
	// BaselineSimulateNs is an externally measured reference for the
	// sequential simulate stage (e.g. the seed commit on the same
	// machine), supplied via -bench-baseline-ns; 0 when not recorded.
	BaselineSimulateNs float64 `json:"baselineSimulateNs,omitempty"`
	// SpeedupVsBaseline is BaselineSimulateNs / simulate_seq ns/op.
	SpeedupVsBaseline float64 `json:"speedupVsBaseline,omitempty"`
}

type stageResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp / BytesPerOp are the mean heap allocation count and
	// volume per operation (runtime.MemStats deltas over the timed
	// reps), tracking the serving path's GC pressure across PRs.
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// FFPeriodsPerOp / FFCyclesPerOp / FFFallbacksPerOp are the
	// steady-state memoization deltas per operation (gpusim.FFStats):
	// loop periods locked and skipped, simulated cycles fast-forwarded
	// analytically, and locked periods abandoned without skipping.
	// Structurally aperiodic kernels (hotspot's barrier-free
	// latency-bound loop) legitimately report zeros.
	FFPeriodsPerOp   float64 `json:"ffPeriodsPerOp"`
	FFCyclesPerOp    float64 `json:"ffCyclesPerOp"`
	FFFallbacksPerOp float64 `json:"ffFallbacksPerOp"`
}

type engineStageResult struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// Cached is true for the warm passes (pure cache, no simulation).
	Cached bool `json:"cached"`
	// Kernels is the batch size (the Table 3 row count).
	Kernels       int     `json:"kernels"`
	Reps          int     `json:"reps"`
	NsPerKernel   float64 `json:"nsPerKernel"`
	KernelsPerSec float64 `json:"kernelsPerSec"`
	// AllocsPerKernel / BytesPerKernel are heap allocation deltas per
	// kernel in the batch (see stageResult).
	AllocsPerKernel float64 `json:"allocsPerKernel"`
	BytesPerKernel  float64 `json:"bytesPerKernel"`
	// FFCyclesPerKernel is the mean number of simulated cycles the
	// steady-state memoizer skipped per kernel in the batch; warm
	// (cached) passes run no simulations and report zero.
	FFCyclesPerKernel float64 `json:"ffCyclesPerKernel"`
}

type storeStageResult struct {
	Name string `json:"name"`
	// Kernels is the batch size (Table 3 rows, or arch models for the
	// sweep row).
	Kernels       int     `json:"kernels"`
	Reps          int     `json:"reps"`
	NsPerKernel   float64 `json:"nsPerKernel"`
	KernelsPerSec float64 `json:"kernelsPerSec"`
	// Runs/Sims are the final engine's pipeline and simulator counters:
	// the restart-warm row must report both as zero (every response came
	// straight off disk).
	Runs int64 `json:"runs"`
	Sims int64 `json:"sims"`
	// StageServed counts responses assembled entirely from stored
	// artifacts without a pipeline run.
	StageServed int64 `json:"stageServed,omitempty"`
	// StructureBuilds counts module front-end analyses: the arch-sweep
	// row must report exactly one for its whole model fan-out.
	StructureBuilds int64 `json:"structureBuilds,omitempty"`
	StoreHits       int64 `json:"storeHits,omitempty"`
	StorePuts       int64 `json:"storePuts,omitempty"`
}

// stageCost is one timed stage's mean per-op wall-clock, allocation,
// and fast-forward cost.
type stageCost struct {
	ns, allocs, bytes                float64
	ffPeriods, ffCycles, ffFallbacks float64
}

// timeStage runs fn reps times and returns the mean per-op cost.
// Allocation and fast-forward numbers are process-wide deltas
// (runtime.MemStats, gpusim.FFStats): exact for the single-goroutine
// stages, a faithful serving-cost measure for the concurrent engine
// passes.
func timeStage(reps int, fn func() error) (stageCost, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	ffP0, ffC0, ffF0 := gpusim.FFStats()
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return stageCost{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	ffP1, ffC1, ffF1 := gpusim.FFStats()
	r := float64(reps)
	return stageCost{
		ns:          float64(elapsed.Nanoseconds()) / r,
		allocs:      float64(m1.Mallocs-m0.Mallocs) / r,
		bytes:       float64(m1.TotalAlloc-m0.TotalAlloc) / r,
		ffPeriods:   float64(ffP1-ffP0) / r,
		ffCycles:    float64(ffC1-ffC0) / r,
		ffFallbacks: float64(ffF1-ffF0) / r,
	}, nil
}

// runBenchSnapshot times the pipeline stages on the representative
// rodinia/hotspot row at SimSMs=4 on the selected GPU model (nil = the
// default V100) and writes the snapshot JSON.
func runBenchSnapshot(ctx context.Context, path string, reps int, seed uint64, baselineNs float64, gpu *arch.GPU, storeDir string) error {
	if reps <= 0 {
		reps = 1
	}
	if gpu == nil {
		gpu = arch.VoltaV100()
	}
	rows := kernels.Find("rodinia/hotspot")
	if len(rows) == 0 {
		return fmt.Errorf("bench: no rodinia/hotspot row")
	}
	row := rows[0]
	k, wl, err := row.Base.Build()
	if err != nil {
		return err
	}
	// The fast-forward demonstration row: nw's barrier-synchronized
	// wavefront loop is periodic at the SM level, so the memoizer must
	// lock on and skip (hotspot's barrier-free latency-bound loop is
	// structurally aperiodic and legitimately never fast-forwards).
	ffRows := kernels.Find("rodinia/nw")
	if len(ffRows) == 0 {
		return fmt.Errorf("bench: no rodinia/nw row")
	}
	ffK, ffWL, err := ffRows[0].Base.Build()
	if err != nil {
		return err
	}
	const simSMs = 4
	seqOpts := &gpa.Options{GPU: gpu, Workload: wl, Seed: seed, SimSMs: simSMs, Parallelism: 1}
	parOpts := &gpa.Options{GPU: gpu, Workload: wl, Seed: seed, SimSMs: simSMs, Parallelism: runtime.GOMAXPROCS(0)}
	ffOpts := &gpa.Options{GPU: gpu, Workload: ffWL, Seed: seed, SimSMs: simSMs, Parallelism: 1}

	snap := &benchSnapshot{
		Schema:       "gpa-bench-snapshot/4",
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Kernel:       row.App + "/" + row.Kernel,
		Arch:         gpa.GPUName(gpu),
		SimSMs:       simSMs,
		SamplePeriod: 64,
		Seed:         seed,
		Reps:         reps,
	}

	prof, err := k.Profile(ctx, seqOpts)
	if err != nil {
		return err
	}
	stages := []struct {
		name string
		fn   func() error
	}{
		{"simulate_seq", func() error { _, err := k.Measure(ctx, seqOpts); return err }},
		{"simulate_par", func() error { _, err := k.Measure(ctx, parOpts); return err }},
		{"simulate_ff", func() error { _, err := ffK.Measure(ctx, ffOpts); return err }},
		{"profile", func() error { _, err := k.Profile(ctx, seqOpts); return err }},
		{"advise", func() error { _, err := k.AdviseFromProfile(ctx, prof, seqOpts); return err }},
		{"row_seq", func() error {
			_, err := row.Run(ctx, kernels.RunOptions{GPU: gpu, Seed: seed, SimSMs: simSMs})
			return err
		}},
		{"row_par", func() error {
			_, err := row.Run(ctx, kernels.RunOptions{GPU: gpu, Seed: seed, SimSMs: simSMs,
				Parallel: true, Parallelism: runtime.GOMAXPROCS(0)})
			return err
		}},
	}
	byName := map[string]float64{}
	for _, st := range stages {
		cost, err := timeStage(reps, st.fn)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", st.name, err)
		}
		byName[st.name] = cost.ns
		snap.Stages = append(snap.Stages, stageResult{
			Name: st.name, NsPerOp: cost.ns,
			AllocsPerOp: cost.allocs, BytesPerOp: cost.bytes,
			FFPeriodsPerOp: cost.ffPeriods, FFCyclesPerOp: cost.ffCycles,
			FFFallbacksPerOp: cost.ffFallbacks,
		})
		fmt.Printf("bench: %-14s %14.0f ns/op %12.0f allocs/op %12.0f B/op %10.0f ffcycles/op\n",
			st.name, cost.ns, cost.allocs, cost.bytes, cost.ffCycles)
	}
	engineStages, err := benchEngine(ctx, reps, seed, gpu)
	if err != nil {
		return fmt.Errorf("bench: engine: %w", err)
	}
	snap.Engine = engineStages
	for _, st := range engineStages {
		fmt.Printf("bench: %-14s %14.0f ns/kernel (%.1f kernels/sec, %d workers, %.1f allocs/kernel)\n",
			st.Name, st.NsPerKernel, st.KernelsPerSec, st.Workers, st.AllocsPerKernel)
	}
	storeStages, err := benchStore(ctx, reps, seed, gpu, storeDir)
	if err != nil {
		return fmt.Errorf("bench: store: %w", err)
	}
	snap.Store = storeStages
	for _, st := range storeStages {
		fmt.Printf("bench: %-18s %14.0f ns/kernel (%.1f kernels/sec, runs=%d sims=%d)\n",
			st.Name, st.NsPerKernel, st.KernelsPerSec, st.Runs, st.Sims)
	}
	if byName["simulate_par"] > 0 {
		snap.ParallelSpeedup = byName["simulate_seq"] / byName["simulate_par"]
	}
	if baselineNs > 0 {
		snap.BaselineSimulateNs = baselineNs
		snap.SpeedupVsBaseline = baselineNs / byName["simulate_seq"]
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchEngine times the advice engine over every Table 3 baseline
// kernel: a cold pass (fresh engine, every job simulates) and a warm
// pass (same engine again, every job a cache hit), at worker-pool
// sizes 1 and 4. Throughput is kernels advised per second of
// wall-clock batch time.
// table3Jobs builds an advise job for every Table 3 baseline kernel
// (the batch both benchEngine and benchStore push through an engine).
func table3Jobs(seed uint64, gpu *arch.GPU) ([]gpa.Job, error) {
	rows := kernels.All()
	jobs := make([]gpa.Job, len(rows))
	for i, b := range rows {
		k, wl, err := b.Base.Build()
		if err != nil {
			return nil, err
		}
		jobs[i] = gpa.Job{
			Kind:   gpa.JobAdvise,
			Kernel: k,
			Options: &gpa.Options{
				GPU: gpu, Workload: wl, Seed: seed, SimSMs: 1, Parallelism: 1,
			},
			WorkloadKey: b.ID() + "/base",
		}
	}
	return jobs, nil
}

func benchEngine(ctx context.Context, reps int, seed uint64, gpu *arch.GPU) ([]engineStageResult, error) {
	jobs, err := table3Jobs(seed, gpu)
	if err != nil {
		return nil, err
	}
	doAll := func(eng *gpa.Engine) error {
		for _, r := range eng.DoAll(ctx, jobs) {
			if r.Err != nil {
				return r.Err
			}
		}
		return nil
	}
	// Cold passes re-simulate everything each rep, so they get a
	// smaller rep count than the cheap warm passes.
	coldReps := max(1, reps/5)
	var out []engineStageResult
	for _, workers := range []int{1, 4} {
		opts := &gpa.EngineOptions{Workers: workers}
		cold, err := timeStage(coldReps, func() error {
			return doAll(gpa.NewEngine(opts)) // fresh engine: all misses
		})
		if err != nil {
			return nil, err
		}
		warm := gpa.NewEngine(opts)
		if err := doAll(warm); err != nil { // prewarm: fill the cache
			return nil, err
		}
		warmCost, err := timeStage(reps, func() error { return doAll(warm) })
		if err != nil {
			return nil, err
		}
		n := float64(len(jobs))
		for _, st := range []engineStageResult{
			{Name: fmt.Sprintf("engine_cold_w%d", workers), Workers: workers,
				Kernels: len(jobs), Reps: coldReps, NsPerKernel: cold.ns / n,
				AllocsPerKernel: cold.allocs / n, BytesPerKernel: cold.bytes / n,
				FFCyclesPerKernel: cold.ffCycles / n},
			{Name: fmt.Sprintf("engine_warm_w%d", workers), Workers: workers, Cached: true,
				Kernels: len(jobs), Reps: reps, NsPerKernel: warmCost.ns / n,
				AllocsPerKernel: warmCost.allocs / n, BytesPerKernel: warmCost.bytes / n,
				FFCyclesPerKernel: warmCost.ffCycles / n},
		} {
			if st.NsPerKernel > 0 {
				st.KernelsPerSec = 1e9 / st.NsPerKernel
			}
			out = append(out, st)
		}
	}
	return out, nil
}

// benchStore times the persistent artifact store over the Table 3
// batch. store_cold fills an empty directory; store_restart_warm
// builds a brand-new engine over the populated directory each rep — a
// simulated daemon restart — and must complete the whole batch with
// zero pipeline runs and zero simulations. store_arch_sweep fans one
// kernel across every registered model through a store-backed engine
// and must analyze the module's structure exactly once. baseDir names
// where the store directories live ("" = a throwaway temp dir).
func benchStore(ctx context.Context, reps int, seed uint64, gpu *arch.GPU, baseDir string) ([]storeStageResult, error) {
	jobs, err := table3Jobs(seed, gpu)
	if err != nil {
		return nil, err
	}
	if baseDir == "" {
		tmp, err := os.MkdirTemp("", "gpa-bench-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		baseDir = tmp
	}
	newEngine := func(dir string) (*gpa.Engine, error) {
		st, err := gpa.OpenStore(dir)
		if err != nil {
			return nil, err
		}
		return gpa.NewEngine(&gpa.EngineOptions{Workers: 4, Store: st}), nil
	}
	doAll := func(eng *gpa.Engine) error {
		for _, r := range eng.DoAll(ctx, jobs) {
			if r.Err != nil {
				return r.Err
			}
		}
		return nil
	}
	row := func(name string, n, repCount int, cost stageCost, st gpa.EngineStats) storeStageResult {
		r := storeStageResult{
			Name: name, Kernels: n, Reps: repCount, NsPerKernel: cost.ns / float64(n),
			Runs: st.Runs, Sims: st.Sims, StageServed: st.StageServed,
			StructureBuilds: st.StructureBuilds,
			StoreHits:       st.StoreHits, StorePuts: st.StorePuts,
		}
		if r.NsPerKernel > 0 {
			r.KernelsPerSec = 1e9 / r.NsPerKernel
		}
		return r
	}
	var out []storeStageResult

	// Cold: a fresh directory per rep so every rep pays the full
	// simulate-and-persist cost.
	coldReps := max(1, reps/5)
	var coldStats gpa.EngineStats
	coldCost, err := timeStage(coldReps, func() error {
		dir, err := os.MkdirTemp(baseDir, "cold-*")
		if err != nil {
			return err
		}
		eng, err := newEngine(dir)
		if err != nil {
			return err
		}
		if err := doAll(eng); err != nil {
			return err
		}
		coldStats = eng.Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, row("store_cold", len(jobs), coldReps, coldCost, coldStats))

	// Restart-warm: populate one directory, then time fresh engines over
	// it — reopening the store is part of the measured restart cost.
	warmDir, err := os.MkdirTemp(baseDir, "warm-*")
	if err != nil {
		return nil, err
	}
	prewarm, err := newEngine(warmDir)
	if err != nil {
		return nil, err
	}
	if err := doAll(prewarm); err != nil {
		return nil, err
	}
	var warmStats gpa.EngineStats
	warmCost, err := timeStage(reps, func() error {
		eng, err := newEngine(warmDir)
		if err != nil {
			return err
		}
		if err := doAll(eng); err != nil {
			return err
		}
		warmStats = eng.Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if warmStats.Sims != 0 || warmStats.Runs != 0 {
		return nil, fmt.Errorf("restart-warm engine simulated: runs=%d sims=%d, want 0/0",
			warmStats.Runs, warmStats.Sims)
	}
	out = append(out, row("store_restart_warm", len(jobs), reps, warmCost, warmStats))

	// Arch sweep: one module over every registered model; the store's
	// frontend stage makes the structure analysis happen exactly once.
	sweepDir, err := os.MkdirTemp(baseDir, "sweep-*")
	if err != nil {
		return nil, err
	}
	sweepEng, err := newEngine(sweepDir)
	if err != nil {
		return nil, err
	}
	var sweepStats gpa.EngineStats
	nGPUs := len(arch.All())
	sweepCost, err := timeStage(1, func() error {
		_, results := sweepEng.Sweep(ctx, jobs[0], nil)
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		sweepStats = sweepEng.Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sweepStats.StructureBuilds != 1 {
		return nil, fmt.Errorf("arch sweep analyzed module structure %d times, want 1",
			sweepStats.StructureBuilds)
	}
	out = append(out, row("store_arch_sweep", nGPUs, 1, sweepCost, sweepStats))
	return out, nil
}

// table3JSON is the -json serialization of a Table 3 sweep.
type table3JSON struct {
	Seed uint64          `json:"seed"`
	Rows []table3RowJSON `json:"rows"`
	// Geomeans over all rows.
	GeomeanAchieved  float64 `json:"geomeanAchieved"`
	GeomeanEstimated float64 `json:"geomeanEstimated"`
	MeanError        float64 `json:"meanError"`
}

type table3RowJSON struct {
	App            string  `json:"app"`
	Kernel         string  `json:"kernel"`
	Optimization   string  `json:"optimization"`
	Achieved       float64 `json:"achieved"`
	PaperAchieved  float64 `json:"paperAchieved"`
	Estimated      float64 `json:"estimated"`
	PaperEstimated float64 `json:"paperEstimated"`
	Error          float64 `json:"error"`
	Rank           int     `json:"rank"`
	BaseCycles     int64   `json:"baseCycles"`
	OptCycles      int64   `json:"optCycles"`
}

func writeTable3JSON(path string, seed uint64, rows []*kernels.Benchmark, outs []*kernels.Outcome) error {
	doc := table3JSON{Seed: seed}
	var achieved, estimated []float64
	var errSum float64
	for i, b := range rows {
		out := outs[i]
		doc.Rows = append(doc.Rows, table3RowJSON{
			App: b.App, Kernel: b.Kernel, Optimization: b.Optimization,
			Achieved: out.Achieved, PaperAchieved: b.PaperAchieved,
			Estimated: out.Estimated, PaperEstimated: b.PaperEstimated,
			Error: out.Error, Rank: out.Rank,
			BaseCycles: out.BaseCycles, OptCycles: out.OptCycles,
		})
		achieved = append(achieved, out.Achieved)
		estimated = append(estimated, out.Estimated)
		errSum += out.Error
	}
	doc.GeomeanAchieved = kernels.GeoMean(achieved)
	doc.GeomeanEstimated = kernels.GeoMean(estimated)
	if len(rows) > 0 {
		doc.MeanError = errSum / float64(len(rows))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
