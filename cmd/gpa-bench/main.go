// Command gpa-bench regenerates the GPA paper's evaluation artifacts on
// the simulated V100:
//
//	gpa-bench -table3          Table 3: achieved vs estimated speedups
//	                           for all 26 (app, kernel, optimization)
//	                           rows, with geometric means and errors.
//	gpa-bench -fig7            Figure 7: single-dependency coverage
//	                           before and after pruning, per Rodinia
//	                           benchmark.
//	gpa-bench -case-studies    Section 7: the ExaTENSOR, Quicksilver,
//	                           PeleC, and Minimod walkthroughs with
//	                           their advice reports.
//	gpa-bench -all             Everything.
//
// Absolute numbers come from the simulator, not the authors' hardware;
// the reproduced claims are the shapes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpa/internal/kernels"
)

func main() {
	table3 := flag.Bool("table3", false, "regenerate Table 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	cases := flag.Bool("case-studies", false, "run the Section 7 case studies")
	all := flag.Bool("all", false, "run everything")
	seed := flag.Uint64("seed", 11, "simulation seed")
	flag.Parse()
	if *all {
		*table3, *fig7, *cases = true, true, true
	}
	if !*table3 && !*fig7 && !*cases {
		flag.Usage()
		os.Exit(2)
	}
	if *table3 {
		if err := runTable3(*seed); err != nil {
			fail(err)
		}
	}
	if *fig7 {
		if err := runFigure7(*seed); err != nil {
			fail(err)
		}
	}
	if *cases {
		if err := runCaseStudies(*seed); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpa-bench:", err)
	os.Exit(1)
}

func runTable3(seed uint64) error {
	fmt.Println("Table 3. Achieved and estimated speedups per benchmark")
	fmt.Println(strings.Repeat("=", 132))
	fmt.Printf("%-24s %-26s %-30s %9s %9s %9s %9s %6s %5s\n",
		"Application", "Kernel", "Optimization",
		"Achieved", "(paper)", "Estimated", "(paper)", "Error", "Rank")
	var achieved, estimated, errors []float64
	for _, b := range kernels.All() {
		out, err := b.Run(kernels.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-26s %-30s %8.2fx %8.2fx %8.2fx %8.2fx %5.0f%% %5d\n",
			b.App, b.Kernel, b.Optimization,
			out.Achieved, b.PaperAchieved,
			out.Estimated, b.PaperEstimated,
			out.Error*100, out.Rank)
		achieved = append(achieved, out.Achieved)
		estimated = append(estimated, out.Estimated)
		errors = append(errors, out.Error)
	}
	fmt.Println(strings.Repeat("-", 132))
	var errSum float64
	for _, e := range errors {
		errSum += e
	}
	fmt.Printf("%-82s %8.2fx %8.2fx %8.2fx %8.2fx %5.1f%%\n",
		"geomean",
		kernels.GeoMean(achieved), 1.22,
		kernels.GeoMean(estimated), 1.26,
		errSum/float64(len(errors))*100)
	fmt.Println()
	return nil
}

func runFigure7(seed uint64) error {
	fmt.Println("Figure 7. Single dependency coverage before and after pruning cold edges")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("%-26s %10s %10s   %s\n", "Benchmark", "Before", "After", "")
	for _, b := range kernels.Rodinia() {
		before, after, err := kernels.Coverage(b, kernels.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		bar := strings.Repeat("#", int(after*20+0.5))
		fmt.Printf("%-26s %10.3f %10.3f   %s\n", b.App, before, after, bar)
	}
	fmt.Println()
	return nil
}

func runCaseStudies(seed uint64) error {
	for _, app := range []string{"ExaTENSOR", "Quicksilver", "PeleC", "Minimod"} {
		fmt.Printf("Case study: %s\n%s\n", app, strings.Repeat("=", 60))
		for _, b := range kernels.Find(app) {
			out, err := b.Run(kernels.RunOptions{Seed: seed})
			if err != nil {
				return err
			}
			fmt.Printf("\n--- %s / %s: applying %q ---\n", b.App, b.Kernel, b.Optimization)
			fmt.Printf("achieved %.2fx (paper %.2fx), estimated %.2fx (paper %.2fx)\n",
				out.Achieved, b.PaperAchieved, out.Estimated, b.PaperEstimated)
			fmt.Println("\nTop advice for the baseline kernel:")
			for i, e := range out.Report.Top(3) {
				fmt.Printf("  %d. %-42s ratio %5.1f%%  est %.3fx\n",
					i+1, e.Optimizer, e.Ratio*100, e.Speedup)
			}
		}
		fmt.Println()
	}
	return nil
}
