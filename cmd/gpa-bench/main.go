// Command gpa-bench regenerates the GPA paper's evaluation artifacts on
// a simulated GPU (the paper's V100 by default; -arch selects any
// registered model):
//
//	gpa-bench -table3          Table 3: achieved vs estimated speedups
//	                           for all 26 (app, kernel, optimization)
//	                           rows, with geometric means and errors.
//	gpa-bench -fig7            Figure 7: single-dependency coverage
//	                           before and after pruning, per Rodinia
//	                           benchmark.
//	gpa-bench -case-studies    Section 7: the ExaTENSOR, Quicksilver,
//	                           PeleC, and Minimod walkthroughs with
//	                           their advice reports.
//	gpa-bench -arch-sweep      Table 3 on every registered architecture
//	                           (v100, t4, a100, ...) concurrently, with a
//	                           per-architecture comparison; -smoke limits
//	                           the sweep to the first 3 rows for CI.
//	gpa-bench -all             Everything (on the selected -arch).
//	gpa-bench -bench FILE      Time the pipeline stages (simulate with
//	                           sequential and parallel SMs, profile,
//	                           advise, full row) and write a BENCH_*.json
//	                           trajectory snapshot.
//
// Cross-cutting flags: -arch NAME runs the single-architecture modes on
// another GPU model, -parallel runs row sweeps and per-row measurements
// concurrently (output is unchanged — the simulator is deterministic at
// every parallelism level), -json FILE writes Table 3 or arch-sweep
// outcomes as JSON, -cpuprofile FILE captures a pprof profile.
//
// Absolute numbers come from the simulator, not the authors' hardware;
// the reproduced claims are the shapes (see EXPERIMENTS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/kernels"
	"gpa/internal/par"
)

// sweepConfig carries the cross-cutting run options.
type sweepConfig struct {
	seed     uint64
	parallel bool
	// gpu is the architecture the single-arch modes run on (nil = the
	// paper's V100).
	gpu *arch.GPU
	// engine is the shared scheduler every -parallel sweep funnels its
	// simulations through: one machine-wide worker pool plus a
	// content-addressed cache, so running -table3 and -arch-sweep in
	// the same invocation re-serves the overlapping (kernel, arch,
	// seed) cells from cache instead of re-simulating them. nil runs
	// rows sequentially in-process.
	engine *gpa.Engine
}

func (c sweepConfig) runOptions() kernels.RunOptions {
	return kernels.RunOptions{GPU: c.gpu, Seed: c.seed, Parallel: c.parallel, Engine: c.engine}
}

// sweepWorkers is how many rows a sweep submits concurrently: with a
// shared engine the rows are just job producers (the engine's pool
// bounds actual simulations), so every row is submitted at once;
// without one, row-level concurrency is the only level there is, and
// GOMAXPROCS bounds it.
func (c sweepConfig) sweepWorkers(rows int) int {
	if !c.parallel {
		return 1
	}
	if c.engine != nil {
		return rows
	}
	return runtime.GOMAXPROCS(0)
}

func main() {
	table3 := flag.Bool("table3", false, "regenerate Table 3")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	cases := flag.Bool("case-studies", false, "run the Section 7 case studies")
	archSweep := flag.Bool("arch-sweep", false,
		"run Table 3 on every registered architecture and print a per-arch comparison")
	smoke := flag.Bool("smoke", false, "limit -arch-sweep to the first 3 rows (CI smoke mode)")
	all := flag.Bool("all", false, "run everything")
	archName := flag.String("arch", "",
		"GPU architecture model for the single-arch modes (see `gpa archs`; default v100)")
	seed := flag.Uint64("seed", 11, "simulation seed")
	parallel := flag.Bool("parallel", false,
		"run benchmark rows and per-row measurements concurrently (same output)")
	jsonOut := flag.String("json", "", "write Table 3 or arch-sweep outcomes as JSON to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	benchOut := flag.String("bench", "", "time the pipeline stages and write a BENCH_*.json snapshot to `file`")
	benchReps := flag.Int("bench-reps", 10, "repetitions per stage for -bench")
	storeDir := flag.String("store-dir", "",
		"persistent artifact store `directory` backing the shared engine and the -bench "+
			"store rows (empty = in-memory only; -bench uses throwaway temp dirs)")
	baselineNs := flag.Float64("bench-baseline-ns", 0,
		"externally measured reference ns/op for the sequential simulate stage (e.g. the seed commit), recorded in the -bench snapshot")
	flag.Parse()
	// Ctrl-C / SIGTERM cancels every in-flight simulation; sweeps print
	// whichever rows completed before the interrupt and exit non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *all {
		*table3, *fig7, *cases = true, true, true
	}
	if *jsonOut != "" && !*table3 && !*archSweep {
		fail(fmt.Errorf("-json records a Table 3 or arch sweep; combine it with -table3, -arch-sweep, or -all"))
	}
	if *table3 && *archSweep && *jsonOut != "" {
		fail(fmt.Errorf("-json with both -table3 and -arch-sweep is ambiguous; pick one"))
	}
	if !*table3 && !*fig7 && !*cases && !*archSweep && *benchOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	cfg := sweepConfig{seed: *seed, parallel: *parallel}
	var store *gpa.Store
	if *storeDir != "" {
		var err error
		if store, err = gpa.OpenStore(*storeDir); err != nil {
			fail(err)
		}
	}
	if *parallel || *archSweep || store != nil {
		cfg.engine = gpa.NewEngine(&gpa.EngineOptions{Store: store})
	}
	if *archName != "" {
		g, err := arch.Lookup(*archName)
		if err != nil {
			fail(err)
		}
		cfg.gpu = g
	}
	if *table3 {
		if err := runTable3(ctx, cfg, *jsonOut); err != nil {
			fail(err)
		}
	}
	if *fig7 {
		if err := runFigure7(ctx, cfg); err != nil {
			fail(err)
		}
	}
	if *cases {
		if err := runCaseStudies(ctx, cfg); err != nil {
			fail(err)
		}
	}
	if *archSweep {
		smokeRows := 0
		if *smoke {
			smokeRows = 3
		}
		sweepJSON := *jsonOut
		if *table3 {
			// -json already consumed by the Table 3 sweep above.
			sweepJSON = ""
		}
		if err := runArchSweep(ctx, cfg, sweepJSON, smokeRows); err != nil {
			fail(err)
		}
	}
	if *benchOut != "" {
		if err := runBenchSnapshot(ctx, *benchOut, *benchReps, *seed, *baselineNs, cfg.gpu, *storeDir); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	// os.Exit skips deferred cleanup; flush any active CPU profile so
	// -cpuprofile output stays usable on error paths.
	pprof.StopCPUProfile()
	if errors.Is(err, gpa.ErrCanceled) {
		fmt.Fprintln(os.Stderr, "gpa-bench: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "gpa-bench:", err)
	os.Exit(1)
}

// sweep runs every benchmark in rows, concurrently when cfg.parallel is
// set (through the shared engine's worker pool when one is configured),
// preserving row order in the returned slice. On cancellation the
// completed rows keep their outcomes (nil marks unfinished ones) and
// the first error is returned alongside them.
func sweep(ctx context.Context, rows []*kernels.Benchmark, cfg sweepConfig) ([]*kernels.Outcome, error) {
	outs := make([]*kernels.Outcome, len(rows))
	errs := make([]error, len(rows))
	par.Do(len(rows), cfg.sweepWorkers(len(rows)), func(i int) {
		outs[i], errs[i] = rows[i].Run(ctx, cfg.runOptions())
	})
	for _, err := range errs {
		if err != nil {
			return outs, err
		}
	}
	return outs, nil
}

func runTable3(ctx context.Context, cfg sweepConfig, jsonOut string) error {
	rows := kernels.All()
	outs, sweepErr := sweep(ctx, rows, cfg)
	if sweepErr != nil && !errors.Is(sweepErr, gpa.ErrCanceled) {
		return sweepErr
	}
	fmt.Println("Table 3. Achieved and estimated speedups per benchmark")
	fmt.Println(strings.Repeat("=", 132))
	fmt.Printf("%-24s %-26s %-30s %9s %9s %9s %9s %6s %5s\n",
		"Application", "Kernel", "Optimization",
		"Achieved", "(paper)", "Estimated", "(paper)", "Error", "Rank")
	var achieved, estimated, estErrors []float64
	done := 0
	for i, b := range rows {
		out := outs[i]
		if out == nil {
			// Canceled before this row finished; completed rows still
			// print below.
			continue
		}
		done++
		fmt.Printf("%-24s %-26s %-30s %8.2fx %8.2fx %8.2fx %8.2fx %5.0f%% %5d\n",
			b.App, b.Kernel, b.Optimization,
			out.Achieved, b.PaperAchieved,
			out.Estimated, b.PaperEstimated,
			out.Error*100, out.Rank)
		achieved = append(achieved, out.Achieved)
		// Rows whose optimizer does not apply on this architecture
		// (Rank 0) carry no estimate; geomean and error cover matched
		// rows. On the default V100 every row matches.
		if out.Rank != 0 {
			estimated = append(estimated, out.Estimated)
			estErrors = append(estErrors, out.Error)
		}
	}
	fmt.Println(strings.Repeat("-", 132))
	var errSum, meanErr float64
	for _, e := range estErrors {
		errSum += e
	}
	if len(estErrors) > 0 {
		meanErr = errSum / float64(len(estErrors))
	}
	fmt.Printf("%-82s %8.2fx %8.2fx %8.2fx %8.2fx %5.1f%%\n",
		"geomean",
		kernels.GeoMean(achieved), 1.22,
		kernels.GeoMean(estimated), 1.26,
		meanErr*100)
	if sweepErr != nil {
		fmt.Printf("(interrupted: %d of %d rows completed)\n\n", done, len(rows))
		return sweepErr
	}
	fmt.Println()
	if jsonOut != "" {
		if err := writeTable3JSON(jsonOut, cfg.seed, rows, outs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

func runFigure7(ctx context.Context, cfg sweepConfig) error {
	fmt.Println("Figure 7. Single dependency coverage before and after pruning cold edges")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("%-26s %10s %10s   %s\n", "Benchmark", "Before", "After", "")
	for _, b := range kernels.Rodinia() {
		before, after, err := kernels.Coverage(ctx, b, cfg.runOptions())
		if err != nil {
			return err
		}
		bar := strings.Repeat("#", int(after*20+0.5))
		fmt.Printf("%-26s %10.3f %10.3f   %s\n", b.App, before, after, bar)
	}
	fmt.Println()
	return nil
}

func runCaseStudies(ctx context.Context, cfg sweepConfig) error {
	for _, app := range []string{"ExaTENSOR", "Quicksilver", "PeleC", "Minimod"} {
		fmt.Printf("Case study: %s\n%s\n", app, strings.Repeat("=", 60))
		rows := kernels.Find(app)
		outs, err := sweep(ctx, rows, cfg)
		if err != nil {
			return err
		}
		for i, b := range rows {
			out := outs[i]
			fmt.Printf("\n--- %s / %s: applying %q ---\n", b.App, b.Kernel, b.Optimization)
			fmt.Printf("achieved %.2fx (paper %.2fx), estimated %.2fx (paper %.2fx)\n",
				out.Achieved, b.PaperAchieved, out.Estimated, b.PaperEstimated)
			fmt.Println("\nTop advice for the baseline kernel:")
			for i, e := range out.Report.Top(3) {
				fmt.Printf("  %d. %-42s ratio %5.1f%%  est %.3fx\n",
					i+1, e.Optimizer, e.Ratio*100, e.Speedup)
			}
		}
		fmt.Println()
	}
	return nil
}
