package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/kernels"
	"gpa/internal/par"
)

// runArchSweep reproduces Table 3 on every registered architecture and
// prints a per-architecture comparison: the same rows, the same seeds,
// N GPU models. With -parallel every (arch, row) cell submits its
// measurements to the shared engine, whose worker pool bounds how many
// simulate at once; the simulator is deterministic per architecture,
// so the report does not depend on scheduling, and cells already
// served by an earlier mode in the same invocation (-table3 on the
// default arch) come back from the engine's cache. smokeRows > 0
// limits the sweep to the first smokeRows rows (the CI smoke mode).
func runArchSweep(ctx context.Context, cfg sweepConfig, jsonOut string, smokeRows int) error {
	gpus := arch.All()
	rows := kernels.All()
	if smokeRows > 0 && smokeRows < len(rows) {
		rows = rows[:smokeRows]
	}

	type cell struct {
		out *kernels.Outcome
		err error
	}
	cells := make([]cell, len(gpus)*len(rows))
	// The arch sweep is inherently a fan-out, so it always runs on a
	// shared engine (main wires one in even without -parallel); the
	// cells are pure job producers and the engine's pool bounds the
	// actual simulations.
	workers := runtime.GOMAXPROCS(0)
	if cfg.engine != nil {
		workers = len(cells)
	}
	par.Do(len(cells), workers, func(i int) {
		g, b := gpus[i/len(rows)], rows[i%len(rows)]
		ro := cfg.runOptions()
		ro.GPU = g
		cells[i].out, cells[i].err = b.Run(ctx, ro)
	})
	for i := range cells {
		if err := cells[i].err; err != nil {
			return fmt.Errorf("%s: %w", gpa.GPUName(gpus[i/len(rows)]), err)
		}
	}

	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = gpa.GPUName(g)
	}
	width := 82 + 22*len(gpus)
	fmt.Printf("Table 3 across %d architectures (achieved / estimated speedups, seed %d)\n",
		len(gpus), cfg.seed)
	fmt.Println(strings.Repeat("=", width))
	fmt.Printf("%-24s %-26s %-30s", "Application", "Kernel", "Optimization")
	for _, n := range names {
		fmt.Printf("  %20s", n+" ach/est")
	}
	fmt.Println()
	for r, b := range rows {
		fmt.Printf("%-24s %-26s %-30s", b.App, b.Kernel, b.Optimization)
		for a := range gpus {
			out := cells[a*len(rows)+r].out
			if out.Rank == 0 {
				// The row's optimizer does not apply on this
				// architecture (e.g. Block Increase when the grid
				// already covers every SM).
				fmt.Printf("  %9.2fx %9s", out.Achieved, "-")
				continue
			}
			fmt.Printf("  %9.2fx %8.2fx", out.Achieved, out.Estimated)
		}
		fmt.Println()
	}
	fmt.Println(strings.Repeat("-", width))
	fmt.Printf("%-82s", "geomean")
	type archSummary struct {
		achieved, estimated, meanErr float64
	}
	sums := make([]archSummary, len(gpus))
	for a := range gpus {
		var ach, est []float64
		var errSum float64
		for r := range rows {
			out := cells[a*len(rows)+r].out
			ach = append(ach, out.Achieved)
			// Rows whose optimizer does not apply on this architecture
			// carry no estimate; the estimate geomean and error cover
			// matched rows only.
			if out.Rank != 0 {
				est = append(est, out.Estimated)
				errSum += out.Error
			}
		}
		sums[a] = archSummary{
			achieved:  kernels.GeoMean(ach),
			estimated: kernels.GeoMean(est),
		}
		if len(est) > 0 {
			sums[a].meanErr = errSum / float64(len(est))
		}
		fmt.Printf("  %9.2fx %8.2fx", sums[a].achieved, sums[a].estimated)
	}
	fmt.Println()
	fmt.Printf("%-82s", "mean estimate error")
	for a := range gpus {
		fmt.Printf("  %19.1f%%", sums[a].meanErr*100)
	}
	fmt.Println()
	fmt.Println()

	if jsonOut != "" {
		doc := archSweepJSON{Seed: cfg.seed}
		for a, g := range gpus {
			entry := archSweepArchJSON{
				Arch:  names[a],
				Model: g.Name,
				SM:    g.SM,
			}
			for r, b := range rows {
				out := cells[a*len(rows)+r].out
				entry.Rows = append(entry.Rows, table3RowJSON{
					App: b.App, Kernel: b.Kernel, Optimization: b.Optimization,
					Achieved: out.Achieved, PaperAchieved: b.PaperAchieved,
					Estimated: out.Estimated, PaperEstimated: b.PaperEstimated,
					Error: out.Error, Rank: out.Rank,
					BaseCycles: out.BaseCycles, OptCycles: out.OptCycles,
				})
			}
			entry.GeomeanAchieved = sums[a].achieved
			entry.GeomeanEstimated = sums[a].estimated
			entry.MeanError = sums[a].meanErr
			doc.Archs = append(doc.Archs, entry)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// archSweepJSON is the -json serialization of an -arch-sweep run.
type archSweepJSON struct {
	Seed  uint64              `json:"seed"`
	Archs []archSweepArchJSON `json:"archs"`
}

type archSweepArchJSON struct {
	Arch             string          `json:"arch"`
	Model            string          `json:"model"`
	SM               int             `json:"sm"`
	Rows             []table3RowJSON `json:"rows"`
	GeomeanAchieved  float64         `json:"geomeanAchieved"`
	GeomeanEstimated float64         `json:"geomeanEstimated"`
	MeanError        float64         `json:"meanError"`
}
