// Command gpa-loadgen is an open-loop load harness for gpad: it fires
// requests at a fixed arrival rate regardless of how slowly the server
// answers, which is the only schedule that measures tail latency
// honestly. A closed loop (send, wait, send) silently slows its
// arrival rate to match a struggling server and hides exactly the
// queueing delay an operator needs to see — the coordinated-omission
// trap. Here every request's latency is measured from its *scheduled*
// send time, so time spent waiting behind a saturated server counts.
//
// The workload mixes the daemon's kernel-submitting endpoints (advise,
// profile, sweep, batch) by integer weights with a deterministic
// interleaving, and -distinct rotates the request seed through N
// variants to control the cache-hit rate: -distinct 1 is a warm
// steady-state (one cold miss, then hits), large -distinct keeps the
// simulator busy (every request a cold miss). -tenants spreads the
// same schedule across weighted tenant identities ("a=9,b=1" sends 90%
// of requests as tenant a via the X-Tenant-Id header), which is how
// the fairness scenarios offer a deliberately imbalanced load to
// gpad's tenant-fair admission control.
//
// The summary is a versioned JSON object ("gpa-loadgen/2"): sent /
// completed / shed counts, error counts by stable error code, latency
// percentiles (p50/p90/p99/p999), per-tenant and per-lane breakdowns
// (each tenant's own sent/ok/error counts and p50/p99), and the
// /statsz counter deltas over the run, so a scenario's client-side
// view and server-side view land in one record. -out writes (or with
// -append, appends to) a JSON array — the format of BENCH_6.json and
// BENCH_7.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// loadKernelSrc is the SASS kernel every generated request submits: a
// small global-load loop with enough stall structure for the advisor
// to rank several optimizers, cheap enough to simulate at double-digit
// RPS on one core.
const loadKernelSrc = `
.module sm_70
.func vecscale global
.line vecscale.cu 5
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line vecscale.cu 7
	LDG.E.32 R4, [R2] {S:1, W:0}
.line vecscale.cu 8
	FMUL R5, R4, 2f {S:4, Q:0}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R5 {S:1, R:1}
	EXIT {Q:1}
`

// summarySchemaVersion versions the summary record shape (v2 added
// tenant/lane tags and the per-tenant breakdown).
const summarySchemaVersion = "gpa-loadgen/2"

// sample is one completed request's outcome.
type sample struct {
	latency time.Duration
	status  int
	code    string // stable error code ("" on success)
	tenant  string // X-Tenant-Id sent ("" = default tenant)
	lane    string // admission lane the endpoint maps to
}

// laneOf maps a mix kind to the admission lane gpad routes it to:
// single advise/profile requests are interactive, batch and sweep ride
// the batch lane.
func laneOf(kind string) string {
	if kind == "batch" || kind == "sweep" {
		return "batch"
	}
	return "interactive"
}

// latencySummary is the percentile block of the summary record.
type latencySummary struct {
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
	MeanMs float64 `json:"meanMs"`
}

// summary is the versioned result record.
type summary struct {
	SchemaVersion string  `json:"schemaVersion"`
	Scenario      string  `json:"scenario,omitempty"`
	Addr          string  `json:"addr"`
	RPS           float64 `json:"rps"`
	DurationSec   float64 `json:"durationSeconds"`
	Mix           string  `json:"mix"`
	Distinct      int     `json:"distinct"`
	Grid          int     `json:"grid"`
	Sent          int     `json:"sent"`
	Completed     int     `json:"completed"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	// Errors counts non-2xx responses and transport failures by stable
	// error code (queue_full appears both here and in Shed).
	Errors  map[string]int `json:"errors,omitempty"`
	Latency latencySummary `json:"latencyMs"`
	// TenantMix echoes -tenants ("" = everything as the default tenant).
	TenantMix string `json:"tenantMix,omitempty"`
	// Tenants breaks the run down by the tenant each request was sent
	// as — the record the fairness scenarios assert on.
	Tenants map[string]*tenantSummary `json:"tenants,omitempty"`
	// Lanes counts sent requests per admission lane.
	Lanes map[string]int `json:"lanes,omitempty"`
	// StatszDelta is the change in every numeric /statsz counter over
	// the run (server-side view of the same interval).
	StatszDelta map[string]float64 `json:"statszDelta,omitempty"`
}

// tenantSummary is one tenant's slice of the run.
type tenantSummary struct {
	Sent   int            `json:"sent"`
	OK     int            `json:"ok"`
	Errors map[string]int `json:"errors,omitempty"`
	P50Ms  float64        `json:"p50Ms"`
	P99Ms  float64        `json:"p99Ms"`
}

// mixEntry is one weighted endpoint kind.
type mixEntry struct {
	kind   string
	weight int
}

// parseMix parses "advise=8,profile=1,sweep=1".
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		kind := strings.TrimSpace(kv[0])
		switch kind {
		case "advise", "profile", "sweep", "batch":
		default:
			return nil, fmt.Errorf("unknown mix kind %q (want advise, profile, sweep, or batch)", kind)
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(kv[1])); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		if w > 0 {
			out = append(out, mixEntry{kind: kind, weight: w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

// parseTenants parses -tenants ("a=9,b=1"; empty = no tenant headers)
// into weighted entries for the same smooth-WRR scheduler the endpoint
// mix uses, so an imbalanced tenant mix interleaves deterministically
// instead of bunching one tenant's requests.
func parseTenants(s string) ([]mixEntry, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		name := strings.TrimSpace(kv[0])
		if name == "" {
			return nil, fmt.Errorf("empty tenant name in %q", part)
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(kv[1])); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		if w > 0 {
			out = append(out, mixEntry{kind: name, weight: w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tenants")
	}
	return out, nil
}

// schedule expands weighted kinds into a deterministic interleaved
// cycle (smooth weighted round-robin), so a 8/1/1 mix sends its rare
// kinds spread through the cycle rather than bunched at the end.
func schedule(mix []mixEntry) []string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	current := make([]int, len(mix))
	out := make([]string, 0, total)
	for len(out) < total {
		best := -1
		for i, m := range mix {
			current[i] += m.weight
			if best < 0 || current[i] > current[best] {
				best = i
			}
		}
		current[best] -= total
		out = append(out, mix[best].kind)
	}
	return out
}

// body builds the request body for one tick. The seed rotates through
// -distinct values so consecutive requests can be forced cold; every
// field that affects results is otherwise constant, keeping the run a
// pure cache-behavior experiment. grid scales per-request simulation
// cost (more blocks = longer runs), which is how overload scenarios
// push a worker pool past saturation at moderate arrival rates.
func body(kind string, seq, distinct, grid int) (path string, payload map[string]any) {
	payload = map[string]any{
		"asm": loadKernelSrc, "gridX": grid, "blockX": 256,
		"seed": 1 + seq%distinct,
	}
	switch kind {
	case "profile":
		return "/v1/profile", payload
	case "sweep":
		payload["archs"] = []string{"v100", "t4"}
		return "/v1/sweep", payload
	case "batch":
		// A one-entry batch: same simulation cost, but routed through
		// the batch lane's admission path.
		return "/v1/batch", map[string]any{"requests": []map[string]any{payload}}
	}
	return "/v1/advise", payload
}

// batchEntryError unwraps the first entry of a one-entry batch
// envelope: the envelope itself is 200 for every admissible batch, so
// shed and failed entries carry their error body inside it.
func batchEntryError(respBody []byte) (code string, status int) {
	var env struct {
		Results []struct {
			Error struct {
				Code   string `json:"code"`
				Status int    `json:"status"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(respBody, &env); err == nil && len(env.Results) > 0 {
		return env.Results[0].Error.Code, env.Results[0].Error.Status
	}
	return "", 0
}

// errorCode extracts the stable error code from a gpad error body.
func errorCode(respBody []byte, status int) string {
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(respBody, &eb); err == nil && eb.Error.Code != "" {
		return eb.Error.Code
	}
	return fmt.Sprintf("http_%d", status)
}

// statszNumbers fetches /statsz as a flat numeric map ("" addr-level
// errors return nil: the harness works against servers without the
// endpoint too).
func statszNumbers(client *http.Client, addr string) map[string]float64 {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8377", "gpad base URL")
	rps := flag.Float64("rps", 20, "open-loop arrival rate (requests/second)")
	duration := flag.Duration("duration", 10*time.Second, "how long to send load")
	mixFlag := flag.String("mix", "advise=8,profile=1,sweep=1",
		"endpoint mix as kind=weight pairs (kinds: advise, profile, sweep, batch)")
	tenantsFlag := flag.String("tenants", "",
		"tenant mix as name=weight pairs sent via X-Tenant-Id "+
			"(\"a=9,b=1\" = 90% tenant a; empty = no tenant header)")
	distinct := flag.Int("distinct", 1,
		"rotate request seeds through N variants: 1 = warm steady state, large = every request cold")
	grid := flag.Int("grid", 160,
		"launch grid size (blocks): bigger grids cost more simulation per cold request")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	scenario := flag.String("scenario", "", "scenario name stamped on the summary record")
	out := flag.String("out", "", "write the summary JSON array to this file (default stdout)")
	appendOut := flag.Bool("append", false,
		"append to -out's existing JSON array instead of overwriting")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpa-loadgen:", err)
		os.Exit(2)
	}
	tenantsMix, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpa-loadgen:", err)
		os.Exit(2)
	}
	if *rps <= 0 || *duration <= 0 || *distinct < 1 {
		fmt.Fprintln(os.Stderr, "gpa-loadgen: -rps, -duration, and -distinct must be positive")
		os.Exit(2)
	}
	kinds := schedule(mix)
	var tenants []string
	if tenantsMix != nil {
		tenants = schedule(tenantsMix)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	before := statszNumbers(client, *addr)

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / *rps)
	n := int(float64(*duration) / float64(interval))
	start := time.Now()
	for i := 0; i < n; i++ {
		// Open loop: sleep until this request's scheduled send time and
		// measure latency from that schedule, not from the actual send.
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			kind := kinds[i%len(kinds)]
			tenant := ""
			if len(tenants) > 0 {
				tenant = tenants[i%len(tenants)]
			}
			path, payload := body(kind, i, *distinct, *grid)
			data, _ := json.Marshal(payload)
			s := sample{tenant: tenant, lane: laneOf(kind)}
			hr, err := http.NewRequest("POST", *addr+path, bytes.NewReader(data))
			if err == nil {
				hr.Header.Set("Content-Type", "application/json")
				if tenant != "" {
					hr.Header.Set("X-Tenant-Id", tenant)
				}
			}
			var resp *http.Response
			if err == nil {
				resp, err = client.Do(hr)
			}
			if err != nil {
				s.latency, s.code = time.Since(sched), "transport_error"
			} else {
				respBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				s.latency, s.status = time.Since(sched), resp.StatusCode
				if resp.StatusCode >= 300 {
					s.code = errorCode(respBody, resp.StatusCode)
				} else if kind == "batch" {
					// Shed batch entries hide inside a 200 envelope.
					if code, status := batchEntryError(respBody); code != "" {
						s.code, s.status = code, status
					}
				}
			}
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}(i, sched)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := statszNumbers(client, *addr)

	sum := summary{
		SchemaVersion: summarySchemaVersion,
		Scenario:      *scenario,
		Addr:          *addr,
		RPS:           *rps,
		DurationSec:   elapsed.Seconds(),
		Mix:           *mixFlag,
		Distinct:      *distinct,
		Grid:          *grid,
		Sent:          n,
		Completed:     len(samples),
		Errors:        map[string]int{},
		TenantMix:     *tenantsFlag,
	}
	lats := make([]time.Duration, 0, len(samples))
	perTenant := make(map[string][]time.Duration)
	var total time.Duration
	for _, s := range samples {
		lats = append(lats, s.latency)
		total += s.latency
		if len(tenants) > 0 {
			if sum.Tenants == nil {
				sum.Tenants = map[string]*tenantSummary{}
			}
			ts := sum.Tenants[s.tenant]
			if ts == nil {
				ts = &tenantSummary{Errors: map[string]int{}}
				sum.Tenants[s.tenant] = ts
			}
			ts.Sent++
			if s.code == "" {
				ts.OK++
			} else {
				ts.Errors[s.code]++
			}
			perTenant[s.tenant] = append(perTenant[s.tenant], s.latency)
		}
		if sum.Lanes == nil {
			sum.Lanes = map[string]int{}
		}
		sum.Lanes[s.lane]++
		switch {
		case s.code == "":
			sum.OK++
		default:
			sum.Errors[s.code]++
			if s.code == "queue_full" {
				sum.Shed++
			}
		}
	}
	for tenant, tl := range perTenant {
		sort.Slice(tl, func(i, j int) bool { return tl[i] < tl[j] })
		sum.Tenants[tenant].P50Ms = percentile(tl, 0.50)
		sum.Tenants[tenant].P99Ms = percentile(tl, 0.99)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		sum.Latency = latencySummary{
			P50Ms:  percentile(lats, 0.50),
			P90Ms:  percentile(lats, 0.90),
			P99Ms:  percentile(lats, 0.99),
			P999Ms: percentile(lats, 0.999),
			MaxMs:  float64(lats[len(lats)-1]) / float64(time.Millisecond),
			MeanMs: float64(total) / float64(len(lats)) / float64(time.Millisecond),
		}
	}
	if before != nil && after != nil {
		delta := make(map[string]float64)
		for k, v := range after {
			if d := v - before[k]; d != 0 {
				delta[k] = d
			}
		}
		sum.StatszDelta = delta
	}

	if err := emit(sum, *out, *appendOut); err != nil {
		fmt.Fprintln(os.Stderr, "gpa-loadgen:", err)
		os.Exit(1)
	}
}

// emit writes the summary as (or into) a JSON array at path, or to
// stdout when path is empty.
func emit(sum summary, path string, appendTo bool) error {
	records := []summary{sum}
	if appendTo && path != "" {
		if raw, err := os.ReadFile(path); err == nil {
			var prior []summary
			if err := json.Unmarshal(raw, &prior); err != nil {
				return fmt.Errorf("-append: %s is not a loadgen summary array: %w", path, err)
			}
			records = append(prior, sum)
		}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
