// Command gpa is the command-line front end of the GPU performance
// advisor: it profiles a kernel on a simulated GPU (PC sampling
// included) and prints ranked optimization advice in the paper's report
// format. The architecture defaults to the paper's V100; -arch selects
// any registered model (see `gpa archs`).
//
// Usage:
//
//	gpa list
//	    List the bundled benchmark kernels (the paper's Table 3 rows).
//
//	gpa archs
//	    List the registered GPU architecture models.
//
//	gpa advise -bench "rodinia/hotspot" [-arch a100]
//	    Profile a bundled benchmark's baseline kernel and print advice.
//
//	gpa advise -asm kernel.sass -entry mykernel -grid 640 -block 256
//	    Assemble a SASS file, profile it, and print advice.
//
//	cat kernel.sass | gpa advise -asm - -entry mykernel
//	    Same, reading the SASS text from stdin ('-asm -'). All commands
//	    exit non-zero on assembly or analysis errors, so the CLI
//	    composes in shell pipelines.
//
//	gpa profile -asm kernel.sass -entry mykernel -o profile.json
//	    Run the profiler only and save the profile for offline analysis.
//
//	gpa analyze -asm kernel.sass -profile profile.json
//	    Offline analysis of a saved profile.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/kernels"
	"gpa/internal/profiler"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the in-flight simulation through the
	// same context every library call takes; the simulator's cancel
	// checkpoints make it return promptly and the CLI exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "archs":
		err = runArchs()
	case "advise":
		err = runAdvise(ctx, os.Args[2:])
	case "profile":
		err = runProfile(ctx, os.Args[2:])
	case "analyze":
		err = runAnalyze(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gpa: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, gpa.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "gpa: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gpa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gpa list
  gpa archs
  gpa advise  -bench NAME | -asm FILE -entry K [-arch NAME] [-grid N] [-block N] [-regs N] [-shared N]
  gpa profile -asm FILE -entry K [-arch NAME] [-grid N] [-block N] -o PROFILE.json
  gpa analyze -asm FILE -profile PROFILE.json

-asm accepts '-' to read the SASS text from stdin; every command exits
non-zero on assembly or analysis errors.`)
}

func runList() error {
	fmt.Printf("%-26s %-28s %-30s %9s %9s\n",
		"APP", "KERNEL", "OPTIMIZATION", "PAPER-ACH", "PAPER-EST")
	for _, b := range kernels.All() {
		fmt.Printf("%-26s %-28s %-30s %8.2fx %8.2fx\n",
			b.App, b.Kernel, b.Optimization, b.PaperAchieved, b.PaperEstimated)
	}
	return nil
}

func runArchs() error {
	fmt.Printf("%-6s %-18s %5s %5s %7s %7s %8s %9s %8s %8s\n",
		"NAME", "MODEL", "SM", "SMs", "WARPS", "BLOCKS", "SHARED", "MSHRS", "GLOBAL", "FP64/ISS")
	for _, g := range gpa.GPUs() {
		fmt.Printf("%-6s %-18s %5d %5d %7d %7d %7dK %9d %8d %8d\n",
			gpa.GPUName(g), g.Name, g.SM, g.NumSMs, g.MaxWarpsPerSM, g.MaxBlocksPerSM,
			g.SharedMemPerSM/1024, g.MSHRsPerSM, g.GlobalLatency, g.FP64IssueCost)
	}
	return nil
}

type launchFlags struct {
	asm    string
	entry  string
	arch   string
	grid   int
	block  int
	regs   int
	shared int
	period int
	seed   uint64
}

func (lf *launchFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&lf.asm, "asm", "", "SASS assembly file")
	fs.StringVar(&lf.entry, "entry", "", "kernel (global function) name")
	fs.StringVar(&lf.arch, "arch", "", "GPU architecture model (see `gpa archs`; default v100)")
	fs.IntVar(&lf.grid, "grid", 640, "grid size (blocks)")
	fs.IntVar(&lf.block, "block", 256, "block size (threads)")
	fs.IntVar(&lf.regs, "regs", 32, "registers per thread")
	fs.IntVar(&lf.shared, "shared", 0, "shared memory per block (bytes)")
	fs.IntVar(&lf.period, "period", 0, "PC sampling period in cycles (0 = default)")
	fs.Uint64Var(&lf.seed, "seed", 11, "simulation seed")
}

// gpu resolves the -arch flag (nil when unset: the V100 default).
func (lf *launchFlags) gpu() (*arch.GPU, error) {
	if lf.arch == "" {
		return nil, nil
	}
	return gpa.LookupGPU(lf.arch)
}

func (lf *launchFlags) kernel() (*gpa.Kernel, *gpa.Options, error) {
	if lf.asm == "" {
		return nil, nil, fmt.Errorf("missing -asm FILE (use '-asm -' to read stdin)")
	}
	gpu, err := lf.gpu()
	if err != nil {
		return nil, nil, err
	}
	var src []byte
	if lf.asm == "-" {
		src, err = io.ReadAll(os.Stdin)
		if err != nil {
			return nil, nil, fmt.Errorf("reading stdin: %w", err)
		}
	} else {
		src, err = os.ReadFile(lf.asm)
		if err != nil {
			return nil, nil, err
		}
	}
	k, err := gpa.LoadKernelAsm(string(src), gpa.Launch{
		Entry: lf.entry, GridX: lf.grid, BlockX: lf.block,
		RegsPerThread: lf.regs, SharedMemPerBlock: lf.shared,
	})
	if err != nil {
		return nil, nil, err
	}
	return k, &gpa.Options{GPU: gpu, SamplePeriod: lf.period, Seed: lf.seed, SimSMs: 1}, nil
}

func runAdvise(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	var lf launchFlags
	lf.register(fs)
	bench := fs.String("bench", "", "bundled benchmark app name (see `gpa list`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench != "" {
		bs := kernels.Find(*bench)
		if len(bs) == 0 {
			return fmt.Errorf("no bundled benchmark %q (try `gpa list`)", *bench)
		}
		gpu, err := lf.gpu()
		if err != nil {
			return err
		}
		b := bs[0]
		k, wl, err := b.Base.Build()
		if err != nil {
			return err
		}
		report, err := k.Advise(ctx, &gpa.Options{GPU: gpu, Workload: wl, Seed: lf.seed, SimSMs: 1})
		if err != nil {
			return err
		}
		report.Render(os.Stdout)
		return nil
	}
	k, opts, err := lf.kernel()
	if err != nil {
		return err
	}
	report, err := k.Advise(ctx, opts)
	if err != nil {
		return err
	}
	report.Render(os.Stdout)
	return nil
}

func runProfile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	var lf launchFlags
	lf.register(fs)
	out := fs.String("o", "profile.json", "output profile path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, opts, err := lf.kernel()
	if err != nil {
		return err
	}
	prof, err := k.Profile(ctx, opts)
	if err != nil {
		return err
	}
	if err := prof.Save(*out); err != nil {
		return err
	}
	fmt.Printf("kernel %s: %d cycles, %d samples (%d active / %d latency), RI %.3f -> %s\n",
		prof.Kernel, prof.Cycles, prof.TotalSamples, prof.ActiveSamples,
		prof.LatencySamples, prof.IssueRatio, *out)
	return nil
}

func runAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var lf launchFlags
	lf.register(fs)
	profPath := fs.String("profile", "", "profile JSON produced by `gpa profile`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profPath == "" {
		return fmt.Errorf("missing -profile FILE")
	}
	k, opts, err := lf.kernel()
	if err != nil {
		return err
	}
	prof, err := profiler.LoadFile(*profPath)
	if err != nil {
		return err
	}
	report, err := k.AdviseFromProfile(ctx, prof, opts)
	if err != nil {
		return err
	}
	report.Render(os.Stdout)
	return nil
}
