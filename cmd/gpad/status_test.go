package main

// The v2 error contract: one HTTP status + stable code per typed
// sentinel (the classify table), pinned both as a unit table and
// end-to-end through the HTTP surface.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpa"
	"gpa/internal/apierr"
)

func TestErrorTaxonomyStatusTable(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"canceled", apierr.Canceled(context.Canceled), statusClientClosed, "canceled"},
		{"deadline expired", apierr.Canceled(context.DeadlineExceeded),
			http.StatusGatewayTimeout, "deadline_exceeded"},
		{"queue full", fmt.Errorf("service: %w (capacity 4)", gpa.ErrQueueFull),
			http.StatusServiceUnavailable, "queue_full"},
		{"shutting down", fmt.Errorf("service: %w", gpa.ErrShuttingDown),
			http.StatusServiceUnavailable, "shutting_down"},
		{"quota exceeded", fmt.Errorf("service: %w",
			&apierr.QuotaError{Tenant: "acme", RetryAfter: 2 * time.Second}),
			http.StatusTooManyRequests, "quota_exceeded"},
		{"overloaded", fmt.Errorf("service: %w: brownout level 2", gpa.ErrOverloaded),
			http.StatusServiceUnavailable, "overloaded"},
		{"unknown arch", fmt.Errorf("arch: %w: %q", gpa.ErrUnknownArch, "sm_999"),
			http.StatusBadRequest, "unknown_arch"},
		{"assemble failed", fmt.Errorf("gpa: %w: line 3: bad opcode", gpa.ErrAssemble),
			http.StatusUnprocessableEntity, "assemble_failed"},
		{"bad kernel", fmt.Errorf("gpa: %w: empty grid", gpa.ErrBadKernel),
			http.StatusUnprocessableEntity, "bad_kernel"},
		{"sim limit", fmt.Errorf("gpusim: %w: SM 0 exceeded 50000000 cycles", gpa.ErrSimLimit),
			http.StatusUnprocessableEntity, "sim_limit"},
		{"untyped", errors.New("disk on fire"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		status, code := classify(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("%s: classify = (%d, %q), want (%d, %q)",
				tc.name, status, code, tc.status, tc.code)
		}
	}
}

func TestDeadlineExceededMapsTo504(t *testing.T) {
	ts := newTestServer(t)
	// A fresh seed forces a real simulation; simSMs 4 with per-cycle
	// sampling makes it long enough (tens of ms) that the deadline
	// timer is always observed, even on a single-CPU runner where a
	// very short CPU-bound run can finish before timers are serviced.
	resp, body := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"bench": "rodinia/hotspot", "seed": 987654, "timeoutMs": 2,
		"simSMs": 4, "samplePeriod": 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	var out errorBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error.Code != "deadline_exceeded" || out.SchemaVersion != gpa.ResultSchemaVersion {
		t.Errorf("error body = %+v", out)
	}
}

func TestQueueFullMapsTo503(t *testing.T) {
	// One worker and no queue: while a job holds the only admission
	// slot, an HTTP request is shed deterministically.
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1, MaxQueue: -1})
	ts := httptest.NewServer(newServer(eng))
	t.Cleanup(ts.Close)

	// Occupy the slot straight through the engine (the test owns it)
	// with a simulation long enough (hundreds of ms) that the HTTP
	// request below always lands while it is running.
	k, err := gpa.LoadKernelAsm(testKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 160, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := k.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "vecscale", Label: "BR0"}: gpa.UniformTrips(50_000),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	job := gpa.Job{
		Kind: gpa.JobMeasure, Kernel: k,
		Options:     &gpa.Options{Workload: wl, Seed: 424242, SimSMs: 1},
		WorkloadKey: "hog",
	}
	hogCtx, stopHog := context.WithCancel(context.Background())
	defer stopHog()
	hogDone := make(chan gpa.JobResult, 1)
	go func() { hogDone <- eng.Do(hogCtx, job) }()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/advise",
		map[string]any{"bench": "rodinia/hotspot", "seed": 777})
	stopHog()
	<-hogDone
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	var out errorBody
	if err := json.Unmarshal(body, &out); err != nil || out.Error.Code != "queue_full" {
		t.Errorf("503 body code = %q (%s)", out.Error.Code, body)
	}
	if st := eng.Stats(); st.Shed != 1 {
		t.Errorf("stats.Shed = %d, want 1 (%+v)", st.Shed, st)
	}
}

// TestStatszPoolCounters pins the serving-efficiency surface: /v1/statsz
// (the /statsz alias included) reports the simulator's state-arena pool
// counters and the engine's allocations-per-job rate, so a production
// gpad can alert on warm-path allocation regressions.
func TestStatszPoolCounters(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"asm": testKernelSrc, "gridX": 4, "blockX": 64}
	for i := 0; i < 2; i++ {
		resp, out := postJSON(t, ts.URL+"/v1/advise", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advise %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
	for _, path := range []string{"/statsz", "/v1/statsz"} {
		var st statszResponse
		getJSON(t, ts.URL+path, &st)
		if st.Hits != 1 || st.Runs != 1 {
			t.Errorf("%s: hits=%d runs=%d after 1 cold + 1 warm advise, want 1/1", path, st.Hits, st.Runs)
		}
		// Pool counters are process-wide; this server's run must have
		// moved them past zero.
		if st.PoolGets <= 0 {
			t.Errorf("%s: poolGets = %d, want > 0", path, st.PoolGets)
		}
		if st.AllocsPerJob <= 0 {
			t.Errorf("%s: allocsPerJob = %v, want > 0 (cold runs allocate)", path, st.AllocsPerJob)
		}
	}
	// The raw JSON must carry the documented field names.
	resp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, field := range []string{`"poolGets"`, `"poolHits"`, `"allocsPerJob"`,
		`"ffPeriodsDetected"`, `"ffCyclesSkipped"`, `"ffFallbacks"`} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("/v1/statsz JSON missing %s: %s", field, raw)
		}
	}
}
