package main

// Observability surface tests: /metrics is well-formed Prometheus text
// whose engine counters agree with /statsz, trace IDs are echoed
// (header and body) or minted, error responses land in the request
// metrics with their stable codes, and concurrent scrapes race
// cleanly against inflight jobs.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gpa"
)

// scrape fetches /metrics and returns the raw exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promSampleLine matches one Prometheus text-format sample.
var promSampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ((\+|-)?(Inf|[0-9.eE+-]+))$`)

// parseMetrics asserts the scrape is well-formed and returns unlabeled
// samples as name -> value.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		if m[2] != "" {
			continue // labeled series are checked by substring
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("bad sample value in %q: %v", line, err)
			continue
		}
		out[m[1]] = v
	}
	return out
}

// TestMetricsMatchesStatsz drives a known request sequence (cold
// advise, warm advise, one taxonomy error) and asserts every numeric
// /statsz counter appears at /metrics with the same value.
func TestMetricsMatchesStatsz(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	if resp, body := postJSON(t, ts.URL+"/v1/advise", req); resp.StatusCode != 200 {
		t.Fatalf("cold advise: %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/advise", req); resp.StatusCode != 200 {
		t.Fatalf("warm advise: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/advise",
		map[string]any{"asm": testKernelSrc, "arch": "no-such-gpu"}); resp.StatusCode != 400 {
		t.Fatalf("unknown arch must 400, got %d", resp.StatusCode)
	}

	// /statsz first, then the scrape: every /statsz counter is already
	// final (no jobs in flight), so the values must agree exactly.
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	metrics := parseMetrics(t, scrape(t, ts.URL))
	if metrics["gpa_engine_runs_total"] != 1 {
		t.Errorf("runs_total = %v, want 1", metrics["gpa_engine_runs_total"])
	}
	if metrics["gpa_engine_hits_total"] != 1 {
		t.Errorf("hits_total = %v, want 1", metrics["gpa_engine_hits_total"])
	}
	for name, raw := range stats {
		v, ok := raw.(float64)
		if !ok || name == "uptimeSeconds" || name == "allocsPerJob" {
			// uptime advances between the two reads; allocsPerJob is a
			// process-wide allocation gauge that moves with every request.
			continue
		}
		metric := "gpa_engine_" + metricSnake(name)
		if !engineGauges[name] {
			metric += "_total"
		}
		got, present := metrics[metric]
		if !present {
			t.Errorf("/statsz field %q has no /metrics series %q", name, metric)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, but /statsz %s = %v", metric, got, name, v)
		}
	}
}

// metricSnake mirrors obs.MetricName for the parity test without
// importing the internal package into every assertion.
func metricSnake(camel string) string {
	var b strings.Builder
	for _, r := range camel {
		if r >= 'A' && r <= 'Z' {
			b.WriteByte('_')
			b.WriteRune(r - 'A' + 'a')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// TestMetricsStageAndRequestSeries pins the labeled series: per-stage
// latency histograms observe a cold run, and error responses are
// counted by route/status/code.
func TestMetricsStageAndRequestSeries(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	postJSON(t, ts.URL+"/v1/advise", req)
	postJSON(t, ts.URL+"/v1/advise", map[string]any{"asm": testKernelSrc, "arch": "no-such-gpu"})
	postJSON(t, ts.URL+"/v1/advise", map[string]any{"asm": "not sass at all"})

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`gpa_stage_duration_seconds_count{stage="assemble"} `,
		`gpa_stage_duration_seconds_count{stage="simulate"} 1`,
		`gpa_stage_duration_seconds_count{stage="blame"} 1`,
		`gpa_stage_duration_seconds_count{stage="advise"} 1`,
		`gpa_http_requests_total{route="/v1/advise",status="200",code=""} 1`,
		`gpa_http_requests_total{route="/v1/advise",status="400",code="unknown_arch"} 1`,
		`gpa_http_requests_total{route="/v1/advise",status="422",code="assemble_failed"} 1`,
		`gpa_http_request_duration_seconds_count{route="/v1/advise"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestTraceIDEchoAndMint pins the trace contract at the HTTP surface:
// a client-supplied X-Request-Id is echoed in the response header and
// result body; absent or unsafe IDs are replaced with a minted one;
// and requests differing only in trace ID still share one cache entry.
func TestTraceIDEchoAndMint(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	data, _ := json.Marshal(req)

	post := func(traceID string) (*http.Response, gpa.Result) {
		hr, err := http.NewRequest("POST", ts.URL+"/v1/advise", strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		if traceID != "" {
			hr.Header.Set("X-Request-Id", traceID)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out gpa.Result
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp, out := post("client-trace-42")
	if got := resp.Header.Get("X-Request-Id"); got != "client-trace-42" {
		t.Errorf("response header trace = %q, want echo", got)
	}
	if out.TraceID != "client-trace-42" {
		t.Errorf("result traceId = %q, want echo", out.TraceID)
	}

	resp2, out2 := post("")
	minted := resp2.Header.Get("X-Request-Id")
	if len(minted) != 16 {
		t.Errorf("minted trace = %q, want 16 hex chars", minted)
	}
	if out2.TraceID != minted {
		t.Errorf("body trace %q != header trace %q", out2.TraceID, minted)
	}
	if !out2.Cached {
		t.Error("different trace IDs must not split the cache")
	}

	// An unsafe ID (spaces could forge log fields) is replaced.
	resp3, _ := post("evil header injection")
	if got := resp3.Header.Get("X-Request-Id"); strings.Contains(got, " ") || got == "" {
		t.Errorf("unsafe trace ID echoed: %q", got)
	}

	// Error responses carry the trace too.
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/advise", strings.NewReader(`{"asm":"bad"`))
	hr.Header.Set("X-Request-Id", "err-trace-1")
	resp4, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp4.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.TraceID != "err-trace-1" {
		t.Errorf("error body traceId = %q, want echo", eb.TraceID)
	}
}

// TestConcurrentScrapesDuringLoad races scrapes against inflight jobs;
// run with -race, any torn counter read or map race fails the build.
func TestConcurrentScrapesDuringLoad(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				postJSON(t, ts.URL+"/v1/advise", map[string]any{
					"asm": testKernelSrc, "gridX": 160, "blockX": 256,
					"seed": 100 + g*10 + i,
				})
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	metrics := parseMetrics(t, scrape(t, ts.URL))
	if metrics["gpa_engine_runs_total"] != 24 {
		t.Errorf("runs_total = %v, want 24", metrics["gpa_engine_runs_total"])
	}
}

// TestHealthzWithStore pins the upgraded health payload over a real
// store directory: dir, writability, corrupt count, and the 200-always
// liveness contract.
func TestHealthzWithStore(t *testing.T) {
	dir := t.TempDir()
	_, ts := newStoreServer(t, dir)
	var health healthzResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("status = %q", health.Status)
	}
	if health.Store == nil {
		t.Fatal("healthz omits store block for a store-backed server")
	}
	if !health.Store.Writable || health.Store.Error != "" {
		t.Errorf("fresh store reported unwritable: %+v", health.Store)
	}
	if !strings.HasPrefix(health.Store.Dir, dir) {
		t.Errorf("store dir %q not under %q", health.Store.Dir, dir)
	}
	if health.Store.CorruptBlobs != 0 {
		t.Errorf("corruptBlobs = %d, want 0", health.Store.CorruptBlobs)
	}
}

// TestBatchEnvelopeCarriesTrace pins that multi-result envelopes carry
// the request's trace once.
func TestBatchEnvelopeCarriesTrace(t *testing.T) {
	ts := newTestServer(t)
	body, _ := json.Marshal(map[string]any{
		"requests": []map[string]any{
			{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9},
		},
	})
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/batch", strings.NewReader(string(body)))
	hr.Header.Set("X-Request-Id", "batch-trace-7")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		TraceID string `json:"traceId"`
		Results []json.RawMessage
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "batch-trace-7" {
		t.Errorf("batch envelope traceId = %q, want echo", out.TraceID)
	}
}
