package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gpa"
)

// newStoreServer starts a gpad test server backed by a persistent
// artifact store at dir, returning the engine so tests can drain it
// with the same semantics SIGTERM triggers in main().
func newStoreServer(t *testing.T, dir string) (*gpa.Engine, *httptest.Server) {
	t.Helper()
	st, err := gpa.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := gpa.NewEngine(&gpa.EngineOptions{Store: st})
	ts := httptest.NewServer(newServerCfg(serverConfig{engine: eng, store: st}))
	t.Cleanup(ts.Close)
	return eng, ts
}

// drain shuts the engine and server down the way a SIGTERM does: stop
// accepting, let in-flight jobs finish, then close the listener.
func drain(t *testing.T, eng *gpa.Engine, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Fatalf("engine drain: %v", err)
	}
	ts.Close()
}

// TestRestartWarmFromStore is the end-to-end restart-warmth
// acceptance test: a gpad populated through its HTTP surface is
// drained and replaced by a fresh process sharing only the store
// directory; the restarted daemon answers every request byte-identical
// to the cold run (modulo the cached flag) without running a single
// simulation.
func TestRestartWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	asmReq := map[string]any{
		"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9,
	}
	requests := []struct {
		name string
		path string
		body map[string]any
	}{
		{"profile", "/v1/profile", asmReq},
		{"advise", "/v1/advise", asmReq},
		{"bench", "/v1/advise", map[string]any{"bench": "rodinia/hotspot"}},
	}

	eng1, ts1 := newStoreServer(t, dir)
	cold := make(map[string][]byte, len(requests))
	for _, r := range requests {
		resp, body := postJSON(t, ts1.URL+r.path, r.body)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", r.name, resp.StatusCode, body)
		}
		cold[r.name] = body
	}
	var st1 statszResponse
	getJSON(t, ts1.URL+"/statsz", &st1)
	// The advise over the asm kernel rides the profile job's stored
	// profile: three runs, but only two simulations.
	if st1.Runs != 3 || st1.Sims != 2 {
		t.Fatalf("cold server: runs=%d sims=%d, want runs=3 sims=2 (profile must feed advise)",
			st1.Runs, st1.Sims)
	}
	drain(t, eng1, ts1)

	// A brand-new engine over the same directory: every response must
	// come from the store, byte-identical, with zero pipeline activity.
	_, ts2 := newStoreServer(t, dir)
	norm := normTransport
	for _, r := range requests {
		resp, warm := postJSON(t, ts2.URL+r.path, r.body)
		if resp.StatusCode != 200 {
			t.Fatalf("restarted %s: status %d: %s", r.name, resp.StatusCode, warm)
		}
		var wr gpa.Result
		if err := json.Unmarshal(warm, &wr); err != nil {
			t.Fatal(err)
		}
		if !wr.Cached {
			t.Errorf("restarted %s: response not marked cached", r.name)
		}
		if norm(warm) != norm(cold[r.name]) {
			t.Errorf("restarted %s: response differs from cold run\ncold: %s\nwarm: %s",
				r.name, cold[r.name], warm)
		}
	}
	var st2 statszResponse
	getJSON(t, ts2.URL+"/statsz", &st2)
	if st2.Runs != 0 || st2.Sims != 0 {
		t.Errorf("restarted server ran the pipeline: runs=%d sims=%d, want 0/0", st2.Runs, st2.Sims)
	}
	if st2.StageServed != int64(len(requests)) {
		t.Errorf("stageServed = %d, want %d", st2.StageServed, len(requests))
	}
	if st2.StoreHits == 0 {
		t.Errorf("restarted server reports no disk-store hits: %+v", st2.EngineStats)
	}
}

// TestStatszReportsStoreCounters pins the observability surface: the
// artifact-store counters are visible at /statsz and progress as the
// store is exercised.
func TestStatszReportsStoreCounters(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir())
	postJSON(t, ts.URL+"/v1/advise", map[string]any{"bench": "rodinia/hotspot"})
	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.StorePuts == 0 {
		t.Errorf("cold advise wrote no store blobs: %+v", st.EngineStats)
	}
	if st.StoreMisses == 0 {
		t.Errorf("cold advise recorded no store misses: %+v", st.EngineStats)
	}
	if st.StructureBuilds != 1 {
		t.Errorf("structureBuilds = %d, want 1", st.StructureBuilds)
	}
}
