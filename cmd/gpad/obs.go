package main

// Operational observability for gpad: the trace-ID middleware, the
// structured request log, the Prometheus /metrics endpoint, and the
// upgraded /healthz. Everything here is transport-level — trace IDs
// and timing never reach the engine's cache digest or any stage key
// (pinned by TestTraceIDExcludedFromDigest), so two requests differing
// only in observability metadata still share one simulation and return
// byte-identical results.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"gpa"
	"gpa/internal/obs"
)

// traceHeader is the request/response header carrying the trace ID.
const traceHeader = "X-Request-Id"

// maxTraceIDLen caps accepted client trace IDs; longer ones are
// replaced, not truncated (a truncated ID correlates with nothing).
const maxTraceIDLen = 64

// clientTraceID returns the client-supplied trace ID when it is safe
// to echo into logs and headers (short, printable, no separators that
// could forge log fields), else mints a fresh one.
func clientTraceID(r *http.Request) string {
	id := r.Header.Get(traceHeader)
	if id == "" || len(id) > maxTraceIDLen {
		return newTraceID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return newTraceID()
		}
	}
	return id
}

// newTraceID mints a 16-hex-char random trace ID. Randomness here is
// fine precisely because trace IDs never feed a digest: they exist to
// correlate one request's log lines, response header, and result body.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than take the serving path down.
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// obsWriter wraps a ResponseWriter to capture what the access log and
// request metrics need: the status actually written, the stable error
// code (stamped by writeJSON when the body is an error), and any
// handler-annotated attributes (arch, cache key, disposition).
type obsWriter struct {
	http.ResponseWriter
	trace  string
	status int
	code   string
	attrs  []slog.Attr
}

func (w *obsWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// note attaches a key=value pair to the request's log line when w is
// the middleware's writer (no-op otherwise, so handlers stay testable
// with a bare ResponseRecorder).
func note(w http.ResponseWriter, key string, value any) {
	if ow, ok := w.(*obsWriter); ok {
		ow.attrs = append(ow.attrs, slog.Any(key, value))
	}
}

// traceIDOf reports the request's trace ID ("" outside the middleware).
func traceIDOf(w http.ResponseWriter) string {
	if ow, ok := w.(*obsWriter); ok {
		return ow.trace
	}
	return ""
}

// quietRoutes are scrape/probe endpoints logged at Debug instead of
// Info so a 10s Prometheus interval does not drown the request log.
var quietRoutes = map[string]bool{
	"/metrics": true, "/healthz": true, "/statsz": true, "/v1/statsz": true,
}

// knownRoutes is the closed label set for the per-route metrics:
// unknown paths collapse into "other" so request-line garbage cannot
// mint unbounded label values.
var knownRoutes = map[string]bool{
	"/v1/advise": true, "/v1/profile": true, "/v1/batch": true,
	"/v1/sweep": true, "/v1/archs": true,
	"/metrics": true, "/healthz": true, "/statsz": true, "/v1/statsz": true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// withObs wraps the whole mux with the per-request observability
// envelope: trace-ID accept/mint + response header, status and error
// code capture, request metrics, and one structured log line per
// request.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ow := &obsWriter{ResponseWriter: w, trace: clientTraceID(r), status: http.StatusOK}
		ow.Header().Set(traceHeader, ow.trace)
		next.ServeHTTP(ow, r)

		elapsed := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.metrics.Record(route, ow.status, ow.code, elapsed)

		level := slog.LevelInfo
		switch {
		case ow.status >= 500:
			level = slog.LevelWarn
		case quietRoutes[r.URL.Path]:
			level = slog.LevelDebug
		}
		attrs := make([]slog.Attr, 0, 8+len(ow.attrs))
		attrs = append(attrs,
			slog.String("trace", ow.trace),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", ow.status),
			slog.Float64("durationMs", float64(elapsed)/float64(time.Millisecond)),
		)
		if ow.code != "" {
			attrs = append(attrs, slog.String("code", ow.code))
		}
		attrs = append(attrs, ow.attrs...)
		s.log.LogAttrs(r.Context(), level, "request", attrs...)
	})
}

// noteResult annotates the log line with the job outcome the operator
// greps for: architecture, truncated cache key, and whether the cache
// (or a coalesced flight) served it.
func noteResult(w http.ResponseWriter, res *gpa.Result) {
	if res.Arch != "" {
		note(w, "arch", res.Arch)
	}
	if len(res.Key) >= 12 {
		note(w, "key", res.Key[:12])
	}
	note(w, "cached", res.Cached)
}

// engineGauges are the Stats fields that are point-in-time gauges;
// every other numeric field is a monotonic counter and gets the
// Prometheus _total suffix.
var engineGauges = map[string]bool{
	"inflight": true, "queued": true, "queueCapacity": true,
	"cacheEntries": true, "workers": true, "allocsPerJob": true,
	"interactiveQueued": true, "batchQueued": true, "brownoutLevel": true,
}

// writeEngineMetrics renders every EngineStats field as
// gpa_engine_<snake_case_name>[_total]. Driving the export off the
// JSON encoding keeps /metrics and /statsz mechanically in sync: a new
// counter added to service.Stats appears in both with no gpad change
// (pinned by TestMetricsMatchesStatsz).
func (s *server) writeEngineMetrics(p *obs.PromWriter) {
	raw, err := json.Marshal(s.eng.Stats())
	if err != nil {
		return
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		return
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		if _, ok := fields[name].(float64); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		v := fields[name].(float64)
		metric := "gpa_engine_" + obs.MetricName(name)
		if engineGauges[name] {
			p.Gauge(metric, "Engine gauge "+name+"; see /statsz.", nil, v)
		} else {
			p.Counter(metric+"_total", "Engine counter "+name+"; see /statsz.", nil, v)
		}
	}
}

// buildVersion reports the module's build version ("(devel)" for plain
// go build) for /healthz and the gpa_build_info metric.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.Gauge("gpa_build_info",
		"Build metadata; the value is always 1.",
		[]obs.Label{{Name: "version", Value: s.version}, {Name: "go", Value: runtime.Version()}}, 1)
	p.Gauge("gpa_uptime_seconds", "Seconds since the server started.",
		nil, time.Since(s.started).Seconds())
	s.writeEngineMetrics(p)
	writeTenantMetrics(p, s.eng.Stats())
	obs.WriteStageLatency(p, s.eng.StageLatency())
	s.metrics.Write(p)
	obs.WriteGoRuntime(p)
}

// storeHealth is the /healthz view of the persistent artifact store.
type storeHealth struct {
	// Dir is the resolved blob root (versioned, schema-keyed).
	Dir string `json:"dir"`
	// Writable reports whether a probe blob could be created just now;
	// false means the store has degraded to read-only pass-through.
	Writable bool `json:"writable"`
	// Error carries the probe failure when Writable is false.
	Error string `json:"error,omitempty"`
	// CorruptBlobs counts checksum/decode failures since start (each
	// was recomputed, never served).
	CorruptBlobs int64 `json:"corruptBlobs"`
}

// healthzResponse is the /healthz payload. The endpoint always answers
// 200 while the process serves — liveness — with Status degrading to
// "degraded" when the artifact store stops accepting writes, so
// dashboards see the difference without probes killing the pod.
type healthzResponse struct {
	Status        string       `json:"status"`
	Version       string       `json:"version"`
	GoVersion     string       `json:"goVersion"`
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Store         *storeHealth `json:"store,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := healthzResponse{
		Status:        "ok",
		Version:       s.version,
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if s.store != nil {
		sh := &storeHealth{
			Dir:          s.store.Dir(),
			Writable:     true,
			CorruptBlobs: s.store.Stats().Corrupt,
		}
		if err := s.store.Check(); err != nil {
			sh.Writable = false
			sh.Error = err.Error()
			out.Status = "degraded"
		}
		out.Store = sh
	}
	writeJSON(w, http.StatusOK, out)
}
