// Command gpad is the GPU performance advisor daemon: a long-running
// HTTP JSON service in front of the Figure 2 pipeline, built on the
// shared batch engine (gpa.NewEngine / internal/service). Every
// request is resolved through a content-addressed result cache and a
// singleflight table before it is allowed to cost a simulation, so N
// identical concurrent requests cost one simulation and repeated
// requests cost none; a bounded worker pool caps concurrent
// simulations machine-wide.
//
// Endpoints:
//
//	POST /v1/advise   Advise one kernel (SASS text, CUBIN blob, or a
//	                  bundled Table 3 benchmark by name). Returns the
//	                  ranked advice, the rendered Figure 8 report text
//	                  (byte-identical between cold runs and cache
//	                  hits), cycles, the cache key, and a stable
//	                  profile digest for drift checks.
//	POST /v1/profile  Run the sampling profiler only; returns the
//	                  profile JSON for offline analysis.
//	POST /v1/batch    Fan a list of requests (mixed kinds: advise,
//	                  profile, measure) through the engine at once.
//	POST /v1/sweep    Advise one kernel on several architecture models
//	                  ("archs": ["v100","t4"]; empty = all).
//	GET  /v1/archs    List the registered GPU architecture models.
//	GET  /healthz     Liveness probe.
//	GET  /statsz      Engine counters: hits, misses, coalesced,
//	                  inflight, runs, evictions, cache size.
//
// The simulator is deterministic, so gpad's responses are a pure
// function of the request: two deployments answering the same request
// must return the same profileDigest, which makes the cache safe and
// the service horizontally scalable behind a dumb load balancer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 0,
		"LRU result cache capacity (0 = 512, negative disables caching)")
	flag.Parse()

	eng := gpa.NewEngine(&gpa.EngineOptions{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}

	cacheDesc := "disabled"
	switch {
	case *cacheEntries == 0:
		cacheDesc = "512 entries"
	case *cacheEntries > 0:
		cacheDesc = fmt.Sprintf("%d entries", *cacheEntries)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpad: serving on http://%s (workers=%d, cache %s)",
		*addr, eng.Stats().Workers, cacheDesc)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "gpad:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("gpad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "gpad: shutdown:", err)
			os.Exit(1)
		}
	}
}
