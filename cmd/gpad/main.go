// Command gpad is the GPU performance advisor daemon: a long-running
// HTTP JSON service in front of the Figure 2 pipeline, built on the
// shared batch engine (gpa.NewEngine / internal/service). Every
// request is resolved through a content-addressed result cache and a
// singleflight table before it is allowed to cost a simulation, so N
// identical concurrent requests cost one simulation and repeated
// requests cost none; a bounded worker pool caps concurrent
// simulations machine-wide, and -max-queue turns the daemon into a
// load-shedding server that answers 503 queue_full instead of queueing
// without bound.
//
// Admission is tenant-fair: every request may carry an X-Tenant-Id
// header (absent or unsafe IDs share the "default" tenant), and
// -qos-config assigns tenants deficit-weighted round-robin weights and
// token-bucket quotas, so one flooding tenant cannot starve the rest.
// Work runs in two priority lanes — interactive (advise/profile) ahead
// of batch (batch/sweep), with -interactive-reserve worker slots batch
// can never occupy — and a brownout controller (-brownout-p99-ms)
// sheds batch-lane work first when queue delay degrades. Over-quota
// requests answer 429 quota_exceeded and brownout sheds answer 503
// overloaded; every shed response carries a computed, jittered
// Retry-After. Tenant IDs never affect results: identical requests
// from different tenants share one cached simulation, each billed to
// its own tenant.
//
// Responses follow the versioned structured result schema
// (gpa.ResultSchemaVersion): schemaVersion, structured advice entries,
// the profile digest, the architecture key, and run timing, with the
// legacy Figure 8 text riding along in "report". Failures map the
// typed error taxonomy (gpa.ErrUnknownArch, ErrBadKernel, ErrAssemble,
// ErrCanceled, ErrQueueFull, ...) to HTTP status codes with stable
// machine-readable "code" fields.
//
// Cancellation runs end-to-end: a client that disconnects cancels its
// queued or in-flight simulation (coalesced duplicates only detach the
// leaving waiter), per-job deadlines come from "timeoutMs" or
// -job-timeout, and SIGTERM drains gracefully — stop accepting, cancel
// queued jobs, give in-flight simulations -drain-timeout to finish,
// then cancel the stragglers.
//
// Endpoints:
//
//	POST /v1/advise   Advise one kernel (SASS text, CUBIN blob, or a
//	                  bundled Table 3 benchmark by name). Returns the
//	                  structured ranked advice, the rendered Figure 8
//	                  report text (byte-identical between cold runs
//	                  and cache hits), cycles, the cache key, and a
//	                  stable profile digest for drift checks.
//	POST /v1/profile  Run the sampling profiler only; returns the
//	                  profile JSON for offline analysis.
//	POST /v1/batch    Fan a list of requests (mixed kinds: advise,
//	                  profile, measure) through the engine at once.
//	POST /v1/sweep    Advise one kernel on several architecture models
//	                  ("archs": ["v100","t4"]; empty = all).
//	GET  /v1/archs    List the registered GPU architecture models.
//	GET  /healthz     Liveness probe: always 200 while serving, with
//	                  build info, uptime, and artifact-store health
//	                  (status "degraded" when -store-dir stops
//	                  accepting writes).
//	GET  /metrics     Prometheus text exposition: every /statsz
//	                  counter (gpa_engine_*), per-stage pipeline
//	                  latency histograms (gpa_stage_duration_seconds),
//	                  per-route request counters keyed by stable error
//	                  code (gpa_http_requests_total), and Go runtime
//	                  gauges.
//	GET  /statsz      Engine counters: hits, misses, coalesced,
//	                  canceled, shed, inflight, runs, evictions, plus
//	                  the serving-efficiency gauges poolGets/poolHits
//	                  (simulator state-arena reuse), allocsPerJob, and
//	                  the steady-state memoization counters
//	                  ffPeriodsDetected/ffCyclesSkipped/ffFallbacks,
//	                  and the artifact-store counters: sims,
//	                  stageServed, structureBuilds, stageHits/Misses
//	                  (in-memory stage LRUs) and storeHits/Misses/
//	                  Puts/Corrupt/Errors (the -store-dir disk store).
//	                  Also served at /v1/statsz.
//
// Every request carries a trace ID: X-Request-Id is accepted (or a
// random one minted), echoed in the response header and the result
// body, and attached to the request's structured log line
// (-log-format text|json). Trace IDs are transport-level only — never
// part of the cache digest or any stage key — so traced requests
// still coalesce and cache normally. -pprof-addr serves
// net/http/pprof on a separate opt-in listener.
//
// The simulator is deterministic, so gpad's responses are a pure
// function of the request: two deployments answering the same request
// must return the same profileDigest, which makes the cache safe and
// the service horizontally scalable behind a dumb load balancer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 0,
		"LRU result cache capacity (0 = 512, negative disables caching)")
	maxQueue := flag.Int("max-queue", 0,
		"max jobs waiting for a worker before shedding with 503 queue_full (0 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0,
		"default per-job deadline (0 = none; requests override with timeoutMs)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long in-flight jobs get to finish on shutdown before being canceled")
	storeDir := flag.String("store-dir", "",
		"persistent per-stage artifact store directory: a restarted gpad starts warm "+
			"from it, and corrupt blobs are recomputed, never served (empty = in-memory only)")
	qosConfig := flag.String("qos-config", "",
		"tenant admission policy JSON file: per-tenant DWRR weights and token-bucket "+
			"quotas, the interactive-lane reserve, and the brownout controller "+
			"(empty = one equal-weight default tenant, nothing metered)")
	interactiveReserve := flag.Int("interactive-reserve", 0,
		"worker slots reserved for the interactive lane (advise/profile); batch and "+
			"sweep jobs never occupy more than workers minus this (overrides -qos-config)")
	brownoutP99 := flag.Float64("brownout-p99-ms", 0,
		"queue-delay p99 threshold in ms above which batch-lane work is shed "+
			"(0 = disabled; overrides -qos-config)")
	logFormat := flag.String("log-format", "text",
		"request/lifecycle log encoding: text (key=value) or json (one object per line)")
	logLevel := flag.String("log-level", "info",
		"minimum log level: debug, info, warn, error (scrape endpoints log at debug)")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address (empty = disabled); keep it loopback-only")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "gpad: bad -log-level:", err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fmt.Fprintln(os.Stderr, "gpad: bad -log-format (want text or json):", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var st *gpa.Store
	if *storeDir != "" {
		var err error
		if st, err = gpa.OpenStore(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "gpad:", err)
			os.Exit(1)
		}
	}
	reserveSet, brownoutSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "interactive-reserve":
			reserveSet = true
		case "brownout-p99-ms":
			brownoutSet = true
		}
	})
	qos, err := loadQoSConfig(*qosConfig, *interactiveReserve, reserveSet, *brownoutP99, brownoutSet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpad: bad qos config:", err)
		os.Exit(2)
	}
	eng := gpa.NewEngine(&gpa.EngineOptions{
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *jobTimeout,
		Store:          st,
		QoS:            qos,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServerCfg(serverConfig{engine: eng, store: st, logger: logger}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof serving", "addr", *pprofAddr)
			// DefaultServeMux carries only the pprof handlers; the API mux
			// above is separate, so profiling exposure is opt-in per address.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof server exited", "err", err)
			}
		}()
	}

	cacheDesc := "disabled"
	switch {
	case *cacheEntries == 0:
		cacheDesc = "512 entries"
	case *cacheEntries > 0:
		cacheDesc = fmt.Sprintf("%d entries", *cacheEntries)
	}
	storeDesc := "none"
	if *storeDir != "" {
		storeDesc = *storeDir
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("gpad: serving", "addr", *addr, "workers", eng.Stats().Workers,
		"cache", cacheDesc, "store", storeDesc)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "gpad:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop accepting, cancel queued jobs, give
		// in-flight simulations drainTimeout to finish, then cancel
		// them too (the simulator's cancel checkpoints make the cancel
		// land promptly). Engine and HTTP server drain concurrently —
		// handlers blocked on queued jobs return as soon as the engine
		// abandons those jobs.
		logger.Info("gpad: draining", "deadline", drainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		engErr := make(chan error, 1)
		go func() { engErr <- eng.Shutdown(drainCtx) }()
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Warn("gpad: http shutdown", "err", err)
		}
		if err := <-engErr; err != nil {
			logger.Warn("gpad: engine shutdown", "err", err)
		}
		logger.Info("gpad: shutdown complete")
	}
}
