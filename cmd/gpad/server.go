package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/kernels"
	"gpa/internal/profiler"
	"gpa/internal/service"

	adv "gpa/internal/advisor"
)

// maxBodyBytes bounds request bodies (SASS text and CUBIN blobs are
// small; anything bigger is abuse).
const maxBodyBytes = 8 << 20

// server is the HTTP front end over one shared engine.
type server struct {
	eng     *gpa.Engine
	started time.Time
}

// newServer builds the gpad handler around a shared engine.
func newServer(eng *gpa.Engine) http.Handler {
	s := &server{eng: eng, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", s.post(s.handleAdvise))
	mux.HandleFunc("/v1/profile", s.post(s.handleProfile))
	mux.HandleFunc("/v1/batch", s.post(s.handleBatch))
	mux.HandleFunc("/v1/sweep", s.post(s.handleSweep))
	mux.HandleFunc("/v1/archs", s.get(s.handleArchs))
	mux.HandleFunc("/healthz", s.get(s.handleHealthz))
	mux.HandleFunc("/statsz", s.get(s.handleStatsz))
	return mux
}

// kernelRequest is the JSON body shared by every kernel-submitting
// endpoint: a kernel (bundled benchmark, SASS text, or CUBIN blob),
// its launch shape, and the result-affecting options. Exactly one of
// Bench, Asm, or Binary must be set.
type kernelRequest struct {
	// Bench names a bundled Table 3 benchmark ("rodinia/hotspot");
	// its baseline kernel, launch, and workload are used.
	Bench string `json:"bench,omitempty"`
	// Asm is SASS assembly text.
	Asm string `json:"asm,omitempty"`
	// Binary is a CUBIN container blob (base64 in JSON).
	Binary []byte `json:"binary,omitempty"`

	// Entry is the kernel name (optional for single-kernel asm).
	Entry string `json:"entry,omitempty"`
	// Launch shape; omitted grid/block/regs fields default to the CLI's
	// 640 blocks x 256 threads x 32 registers for Asm/Binary kernels.
	GridX             int `json:"gridX,omitempty"`
	GridY             int `json:"gridY,omitempty"`
	GridZ             int `json:"gridZ,omitempty"`
	BlockX            int `json:"blockX,omitempty"`
	BlockY            int `json:"blockY,omitempty"`
	BlockZ            int `json:"blockZ,omitempty"`
	RegsPerThread     int `json:"regsPerThread,omitempty"`
	SharedMemPerBlock int `json:"sharedMemPerBlock,omitempty"`

	// Arch selects the GPU model (see /v1/archs; default v100).
	Arch string `json:"arch,omitempty"`
	// Kind selects the pipeline stage for /v1/batch entries ("advise",
	// "profile", "measure"; default advise). Ignored by /v1/advise and
	// /v1/profile, which fix their kind.
	Kind         string  `json:"kind,omitempty"`
	SamplePeriod int     `json:"samplePeriod,omitempty"`
	SimSMs       int     `json:"simSMs,omitempty"`
	Seed         *uint64 `json:"seed,omitempty"` // default 11
}

// job converts the request to an engine job.
func (r *kernelRequest) job() (gpa.Job, error) {
	var job gpa.Job
	kind, err := service.ParseKind(r.Kind)
	if err != nil {
		return job, err
	}
	job.Kind = kind

	opts := &gpa.Options{
		SamplePeriod: r.SamplePeriod,
		SimSMs:       r.SimSMs,
		Seed:         11,
	}
	if r.Seed != nil {
		opts.Seed = *r.Seed
	}
	if opts.SimSMs == 0 {
		opts.SimSMs = 1 // the CLI's default: one detailed SM
	}
	if r.Arch != "" {
		g, err := gpa.LookupGPU(r.Arch)
		if err != nil {
			return job, err
		}
		opts.GPU = g
	}
	job.Options = opts

	sources := 0
	for _, set := range []bool{r.Bench != "", r.Asm != "", len(r.Binary) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return job, fmt.Errorf("exactly one of bench, asm, or binary must be set")
	}

	if r.Bench != "" {
		b := findBench(r.Bench)
		if b == nil {
			return job, fmt.Errorf("no bundled benchmark %q (see `gpa list`)", r.Bench)
		}
		k, wl, err := b.Base.Build()
		if err != nil {
			return job, err
		}
		opts.Workload = wl
		job.Kernel = k
		job.WorkloadKey = "bench:" + b.ID() + "/base"
		return job, nil
	}

	launch := gpa.Launch{
		Entry: r.Entry,
		GridX: r.GridX, GridY: r.GridY, GridZ: r.GridZ,
		BlockX: r.BlockX, BlockY: r.BlockY, BlockZ: r.BlockZ,
		RegsPerThread:     r.RegsPerThread,
		SharedMemPerBlock: r.SharedMemPerBlock,
	}
	// CLI-equivalent defaults for an unspecified launch shape.
	if launch.GridX == 0 && launch.GridY == 0 && launch.GridZ == 0 {
		launch.GridX = 640
	}
	if launch.BlockX == 0 && launch.BlockY == 0 && launch.BlockZ == 0 {
		launch.BlockX = 256
	}
	if launch.RegsPerThread == 0 {
		launch.RegsPerThread = 32
	}
	var k *gpa.Kernel
	if r.Asm != "" {
		k, err = gpa.LoadKernelAsm(r.Asm, launch)
	} else {
		k, err = gpa.LoadKernelBinary(r.Binary, launch)
	}
	if err != nil {
		return job, err
	}
	job.Kernel = k
	return job, nil
}

// findBench resolves a bundled benchmark by app name ("rodinia/hotspot",
// first row wins) or by full row ID ("App Kernel Optimization"), so
// every Table 3 row is addressable.
func findBench(name string) *kernels.Benchmark {
	for _, b := range kernels.All() {
		if b.ID() == name {
			return b
		}
	}
	if bs := kernels.Find(name); len(bs) > 0 {
		return bs[0]
	}
	return nil
}

// kernelResponse is the JSON result of one job.
type kernelResponse struct {
	Kernel string `json:"kernel"`
	// Arch is the canonical key of the model the job ran on.
	Arch string `json:"arch"`
	Kind string `json:"kind"`
	// Key is the content-addressed cache key.
	Key string `json:"key"`
	// Cached is true when no new simulation ran (cache hit or
	// coalesced with an identical in-flight request).
	Cached bool  `json:"cached"`
	Cycles int64 `json:"cycles"`
	// ProfileDigest is the profile's stable content digest (profile
	// and advise kinds) for cross-deployment drift checks.
	ProfileDigest string `json:"profileDigest,omitempty"`
	// Report is the rendered Figure 8-style advice text (advise kind);
	// byte-identical between cold runs and cache hits.
	Report string `json:"report,omitempty"`
	// Advice is the structured ranked advice (advise kind).
	Advice *adv.Advice `json:"advice,omitempty"`
	// Profile is included for the profile kind only (advise responses
	// stay compact; re-request with /v1/profile for the raw samples).
	Profile *profiler.Profile `json:"profile,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// response converts a job + result into the wire shape.
func response(job gpa.Job, res gpa.JobResult) *kernelResponse {
	if res.Err != nil {
		return &kernelResponse{Error: res.Err.Error()}
	}
	o := job.Options
	gpu := gpa.V100()
	if o != nil && o.GPU != nil {
		gpu = o.GPU
	}
	resp := &kernelResponse{
		Kernel:        job.Kernel.Launch.Entry,
		Arch:          gpa.GPUName(gpu),
		Kind:          job.Kind.String(),
		Key:           res.Key,
		Cached:        res.Cached,
		Cycles:        res.Cycles,
		ProfileDigest: res.ProfileDigest,
	}
	if res.Report != nil {
		resp.Report = res.Report.String()
		resp.Advice = res.Report.Advice
	}
	if job.Kind == gpa.JobProfile {
		resp.Profile = res.Profile
	}
	return resp
}

func (s *server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.handleOne(w, r, gpa.JobAdvise)
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.handleOne(w, r, gpa.JobProfile)
}

// handleOne serves the fixed-kind single-kernel endpoints.
func (s *server) handleOne(w http.ResponseWriter, r *http.Request, kind gpa.JobKind) {
	var req kernelRequest
	if !decode(w, r, &req) {
		return
	}
	req.Kind = kind.String()
	job, err := req.job()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := s.eng.Do(job)
	if res.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, response(job, res))
}

// batchRequest fans several kernel requests (mixed kinds allowed)
// through the engine concurrently.
type batchRequest struct {
	Requests []kernelRequest `json:"requests"`
}

type batchResponse struct {
	Results []*kernelResponse `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	out := batchResponse{Results: make([]*kernelResponse, len(req.Requests))}
	live := make([]int, 0, len(req.Requests))
	liveJobs := make([]gpa.Job, 0, len(req.Requests))
	for i := range req.Requests {
		job, err := req.Requests[i].job()
		if err != nil {
			out.Results[i] = &kernelResponse{Error: err.Error()}
			continue
		}
		live = append(live, i)
		liveJobs = append(liveJobs, job)
	}
	results := s.eng.DoAll(liveJobs)
	for n, i := range live {
		out.Results[i] = response(liveJobs[n], results[n])
	}
	writeJSON(w, http.StatusOK, out)
}

// sweepRequest advises one kernel on several architecture models.
type sweepRequest struct {
	kernelRequest
	// Archs lists model names (empty = every registered model).
	Archs []string `json:"archs,omitempty"`
}

type sweepResponse struct {
	Results []*kernelResponse `json:"results"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Arch != "" {
		if len(req.Archs) > 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("set either arch or archs, not both"))
			return
		}
		// A lone arch is a one-model sweep.
		req.Archs = []string{req.Arch}
	}
	var gpus []*arch.GPU
	for _, name := range req.Archs {
		g, err := gpa.LookupGPU(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		gpus = append(gpus, g)
	}
	req.Arch = "" // per-arch options are set by Sweep
	job, err := req.job()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gpus, results := s.eng.Sweep(job, gpus)
	out := sweepResponse{Results: make([]*kernelResponse, len(gpus))}
	for i, g := range gpus {
		jg := job
		o := *job.Options
		o.GPU = g
		jg.Options = &o
		out.Results[i] = response(jg, results[i])
	}
	writeJSON(w, http.StatusOK, out)
}

// archInfo is one /v1/archs entry.
type archInfo struct {
	Name   string `json:"name"` // canonical key, accepted back in "arch"
	Model  string `json:"model"`
	SM     int    `json:"sm"`
	NumSMs int    `json:"numSMs"`
}

func (s *server) handleArchs(w http.ResponseWriter, r *http.Request) {
	var out []archInfo
	for _, g := range gpa.GPUs() {
		out = append(out, archInfo{
			Name: gpa.GPUName(g), Model: g.Name, SM: g.SM, NumSMs: g.NumSMs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszResponse is the /statsz payload: the engine's cache and
// scheduling counters plus server uptime.
type statszResponse struct {
	gpa.EngineStats
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statszResponse{
		EngineStats:   s.eng.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// post/get enforce the endpoint's method.
func (s *server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		h(w, r)
	}
}

func (s *server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		h(w, r)
	}
}

// decode reads a bounded JSON body; on failure it writes the error
// response and returns false.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
