package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/kernels"
	"gpa/internal/obs"
	"gpa/internal/service"
)

// maxBodyBytes bounds request bodies (SASS text and CUBIN blobs are
// small; anything bigger is abuse).
const maxBodyBytes = 8 << 20

// server is the HTTP front end over one shared engine. Every handler
// derives its job context from the request context, so a client that
// disconnects cancels its queued or in-flight work (coalesced
// duplicates only detach the leaving waiter; the shared simulation
// keeps running for the rest).
type server struct {
	eng     *gpa.Engine
	started time.Time
	// store is the persistent artifact store /healthz probes (nil =
	// in-memory only).
	store *gpa.Store
	// log receives one structured line per request (see withObs).
	log *slog.Logger
	// metrics accumulates the per-route request counters and latency
	// histograms /metrics renders.
	metrics *obs.RequestMetrics
	// hints computes the jittered Retry-After values shed responses
	// (429 and 503) advertise.
	hints retryHints
	// version is the build version stamped on /healthz and
	// gpa_build_info.
	version string
	// gpus caches resolved architecture models by request name (see
	// lookupGPU).
	gpus sync.Map // string -> *arch.GPU
}

// serverConfig wires the server's collaborators; zero values get safe
// defaults (discard logger, no store).
type serverConfig struct {
	engine *gpa.Engine
	store  *gpa.Store
	logger *slog.Logger
}

// newServer builds the gpad handler around a shared engine with
// default observability wiring (tests use this; main wires a store and
// a real logger through newServerCfg).
func newServer(eng *gpa.Engine) http.Handler {
	return newServerCfg(serverConfig{engine: eng})
}

// newServerCfg builds the fully wired gpad handler: the API mux inside
// the observability middleware (trace IDs, request log, request
// metrics).
func newServerCfg(cfg serverConfig) http.Handler {
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{
		eng:     cfg.engine,
		started: time.Now(),
		store:   cfg.store,
		log:     logger,
		metrics: obs.NewRequestMetrics(),
		version: buildVersion(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", s.post(s.handleAdvise))
	mux.HandleFunc("/v1/profile", s.post(s.handleProfile))
	mux.HandleFunc("/v1/batch", s.post(s.handleBatch))
	mux.HandleFunc("/v1/sweep", s.post(s.handleSweep))
	mux.HandleFunc("/v1/archs", s.get(s.handleArchs))
	mux.HandleFunc("/healthz", s.get(s.handleHealthz))
	mux.HandleFunc("/statsz", s.get(s.handleStatsz))
	mux.HandleFunc("/v1/statsz", s.get(s.handleStatsz))
	mux.HandleFunc("/metrics", s.get(s.handleMetrics))
	return s.withObs(mux)
}

// lookupGPU resolves an architecture name through a per-server cache,
// so every request naming the same model shares one *arch.GPU instance.
// Sharing the pointer keeps the engine's per-model digest memo hot (a
// fresh model per request would re-hash its constant table every time);
// the resolved models are treated as immutable.
func (s *server) lookupGPU(name string) (*arch.GPU, error) {
	if g, ok := s.gpus.Load(name); ok {
		return g.(*arch.GPU), nil
	}
	g, err := gpa.LookupGPU(name)
	if err != nil {
		return nil, err
	}
	actual, _ := s.gpus.LoadOrStore(name, g)
	return actual.(*arch.GPU), nil
}

// kernelRequest is the JSON body shared by every kernel-submitting
// endpoint: a kernel (bundled benchmark, SASS text, or CUBIN blob),
// its launch shape, and the result-affecting options. Exactly one of
// Bench, Asm, or Binary must be set.
type kernelRequest struct {
	// Bench names a bundled Table 3 benchmark ("rodinia/hotspot");
	// its baseline kernel, launch, and workload are used.
	Bench string `json:"bench,omitempty"`
	// Asm is SASS assembly text.
	Asm string `json:"asm,omitempty"`
	// Binary is a CUBIN container blob (base64 in JSON).
	Binary []byte `json:"binary,omitempty"`

	// Entry is the kernel name (optional for single-kernel asm).
	Entry string `json:"entry,omitempty"`
	// Launch shape; omitted grid/block/regs fields default to the CLI's
	// 640 blocks x 256 threads x 32 registers for Asm/Binary kernels.
	GridX             int `json:"gridX,omitempty"`
	GridY             int `json:"gridY,omitempty"`
	GridZ             int `json:"gridZ,omitempty"`
	BlockX            int `json:"blockX,omitempty"`
	BlockY            int `json:"blockY,omitempty"`
	BlockZ            int `json:"blockZ,omitempty"`
	RegsPerThread     int `json:"regsPerThread,omitempty"`
	SharedMemPerBlock int `json:"sharedMemPerBlock,omitempty"`

	// Arch selects the GPU model (see /v1/archs; default v100).
	Arch string `json:"arch,omitempty"`
	// Kind selects the pipeline stage for /v1/batch entries ("advise",
	// "profile", "measure"; default advise). Ignored by /v1/advise and
	// /v1/profile, which fix their kind.
	Kind         string  `json:"kind,omitempty"`
	SamplePeriod int     `json:"samplePeriod,omitempty"`
	SimSMs       int     `json:"simSMs,omitempty"`
	Seed         *uint64 `json:"seed,omitempty"` // default 11
	// TimeoutMS is this job's deadline in milliseconds, measured from
	// admission (0 = the server's -job-timeout default). Expiry returns
	// 504 with code "deadline_exceeded".
	TimeoutMS int `json:"timeoutMs,omitempty"`
}

// job converts the request to an engine job; s resolves architecture
// names through the server's shared model cache.
func (r *kernelRequest) job(s *server) (gpa.Job, error) {
	var job gpa.Job
	kind, err := service.ParseKind(r.Kind)
	if err != nil {
		return job, err
	}
	job.Kind = kind
	job.Timeout = time.Duration(r.TimeoutMS) * time.Millisecond

	opts := &gpa.Options{
		SamplePeriod: r.SamplePeriod,
		SimSMs:       r.SimSMs,
		Seed:         11,
	}
	if r.Seed != nil {
		opts.Seed = *r.Seed
	}
	if opts.SimSMs == 0 {
		opts.SimSMs = 1 // the CLI's default: one detailed SM
	}
	if r.Arch != "" {
		g, err := s.lookupGPU(r.Arch)
		if err != nil {
			return job, err
		}
		opts.GPU = g
	}
	job.Options = opts

	sources := 0
	for _, set := range []bool{r.Bench != "", r.Asm != "", len(r.Binary) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return job, fmt.Errorf("exactly one of bench, asm, or binary must be set")
	}

	if r.Bench != "" {
		// A bundled benchmark carries its own entry and launch shape;
		// silently ignoring user-supplied ones would return results for
		// a launch the client did not ask about.
		if r.Entry != "" || r.GridX != 0 || r.GridY != 0 || r.GridZ != 0 ||
			r.BlockX != 0 || r.BlockY != 0 || r.BlockZ != 0 ||
			r.RegsPerThread != 0 || r.SharedMemPerBlock != 0 {
			return job, fmt.Errorf("bench requests use the benchmark's own entry and launch; remove entry/grid/block/regs/shared fields")
		}
		b := findBench(r.Bench)
		if b == nil {
			return job, fmt.Errorf("no bundled benchmark %q (see `gpa list`)", r.Bench)
		}
		k, wl, err := b.Base.Build()
		if err != nil {
			return job, err
		}
		opts.Workload = wl
		job.Kernel = k
		job.WorkloadKey = "bench:" + b.ID() + "/base"
		return job, nil
	}

	launch := gpa.Launch{
		Entry: r.Entry,
		GridX: r.GridX, GridY: r.GridY, GridZ: r.GridZ,
		BlockX: r.BlockX, BlockY: r.BlockY, BlockZ: r.BlockZ,
		RegsPerThread:     r.RegsPerThread,
		SharedMemPerBlock: r.SharedMemPerBlock,
	}
	// CLI-equivalent defaults for an unspecified launch shape.
	if launch.GridX == 0 && launch.GridY == 0 && launch.GridZ == 0 {
		launch.GridX = 640
	}
	if launch.BlockX == 0 && launch.BlockY == 0 && launch.BlockZ == 0 {
		launch.BlockX = 256
	}
	if launch.RegsPerThread == 0 {
		launch.RegsPerThread = 32
	}
	var k *gpa.Kernel
	if r.Asm != "" {
		k, err = gpa.LoadKernelAsm(r.Asm, launch)
	} else {
		k, err = gpa.LoadKernelBinary(r.Binary, launch)
	}
	if err != nil {
		return job, err
	}
	job.Kernel = k
	return job, nil
}

// findBench resolves a bundled benchmark by app name ("rodinia/hotspot",
// first row wins) or by full row ID ("App Kernel Optimization"), so
// every Table 3 row is addressable.
func findBench(name string) *kernels.Benchmark {
	for _, b := range kernels.All() {
		if b.ID() == name {
			return b
		}
	}
	if bs := kernels.Find(name); len(bs) > 0 {
		return bs[0]
	}
	return nil
}

// statusClientClosed is the conventional (nginx) status for a request
// abandoned by its client; the response is moot, but batch entries and
// logs still record it.
const statusClientClosed = 499

// classify maps an error from the engine or request construction to
// its HTTP status and stable machine-readable code. This table IS the
// v2 error contract: one row per typed sentinel, pinned by tests.
func classify(err error) (status int, code string) {
	switch {
	// Deadline first: an expired per-job deadline wraps both
	// ErrCanceled and context.DeadlineExceeded.
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, gpa.ErrCanceled):
		return statusClientClosed, "canceled"
	case errors.Is(err, gpa.ErrQueueFull):
		return http.StatusServiceUnavailable, "queue_full"
	case errors.Is(err, gpa.ErrShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, gpa.ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota_exceeded"
	case errors.Is(err, gpa.ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, gpa.ErrUnknownArch):
		return http.StatusBadRequest, "unknown_arch"
	case errors.Is(err, gpa.ErrAssemble):
		return http.StatusUnprocessableEntity, "assemble_failed"
	case errors.Is(err, gpa.ErrBadKernel):
		return http.StatusUnprocessableEntity, "bad_kernel"
	case errors.Is(err, gpa.ErrSimLimit):
		return http.StatusUnprocessableEntity, "sim_limit"
	}
	return http.StatusInternalServerError, "internal"
}

// errInfo is the structured error payload of the v2 schema.
type errInfo struct {
	// Code is the stable machine-readable error class (see classify).
	Code string `json:"code"`
	// Status echoes the HTTP status the code maps to, so batch entries
	// (delivered inside a 200 envelope) stay self-describing.
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// errorBody is the JSON body of every error response.
type errorBody struct {
	SchemaVersion string `json:"schemaVersion"`
	// TraceID echoes the request's trace ID so a failed call is
	// correlatable with its log line (stamped by writeJSON; empty for
	// batch entries, whose envelope carries the ID once).
	TraceID string  `json:"traceId,omitempty"`
	Error   errInfo `json:"error"`
}

func errorBodyOf(err error) (int, *errorBody) {
	status, code := classify(err)
	return status, &errorBody{
		SchemaVersion: gpa.ResultSchemaVersion,
		Error:         errInfo{Code: code, Status: status, Message: err.Error()},
	}
}

// requestErrorBody maps request-construction failures: typed errors go
// through the taxonomy (assemble_failed, unknown_arch, ...); anything
// untyped at this stage is a malformed request, not a server fault.
func requestErrorBody(err error) (int, *errorBody) {
	if status, _ := classify(err); status != http.StatusInternalServerError {
		return errorBodyOf(err)
	}
	return http.StatusBadRequest, &errorBody{
		SchemaVersion: gpa.ResultSchemaVersion,
		Error:         errInfo{Code: "bad_request", Status: http.StatusBadRequest, Message: err.Error()},
	}
}

// writeRequestError writes a requestErrorBody response.
func writeRequestError(w http.ResponseWriter, err error) {
	status, body := requestErrorBody(err)
	writeJSON(w, status, body)
}

func (s *server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.handleOne(w, r, gpa.JobAdvise)
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.handleOne(w, r, gpa.JobProfile)
}

// buildJob converts a kernel request to a job, timing kernel
// construction (parse/assemble/pack) into the engine's assemble-stage
// histogram — gpad pre-builds programs before submission, so the
// service-side assemble timer never sees HTTP traffic's real cost —
// and stamping the request's trace ID and tenant onto the job.
func (s *server) buildJob(w http.ResponseWriter, r *http.Request, req *kernelRequest) (gpa.Job, error) {
	start := time.Now()
	job, err := req.job(s)
	s.eng.StageLatency().Since(obs.StageAssemble, start)
	job.TraceID = traceIDOf(w)
	if job.Tenant = clientTenant(r); job.Tenant != "" {
		note(w, "tenant", job.Tenant)
	}
	return job, err
}

// handleOne serves the fixed-kind single-kernel endpoints.
func (s *server) handleOne(w http.ResponseWriter, r *http.Request, kind gpa.JobKind) {
	var req kernelRequest
	if !decode(w, r, &req) {
		return
	}
	req.Kind = kind.String()
	job, err := s.buildJob(w, r, &req)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	res := s.eng.Do(r.Context(), job)
	if res.Err != nil {
		s.writeTypedError(w, res.Err)
		return
	}
	out := job.Result(res)
	noteResult(w, out)
	writeJSON(w, http.StatusOK, out)
}

// batchRequest fans several kernel requests (mixed kinds allowed)
// through the engine concurrently.
type batchRequest struct {
	Requests []kernelRequest `json:"requests"`
}

// batchResponse carries one v2 Result or one errorBody per entry,
// positionally aligned with the request list; the envelope itself is
// always 200 for an admissible batch.
type batchResponse struct {
	SchemaVersion string `json:"schemaVersion"`
	// TraceID is the request's trace ID; entries share the envelope's.
	TraceID string `json:"traceId,omitempty"`
	Results []any  `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeBadRequest(w, fmt.Errorf("empty batch"))
		return
	}
	out := batchResponse{
		SchemaVersion: gpa.ResultSchemaVersion,
		Results:       make([]any, len(req.Requests)),
	}
	live := make([]int, 0, len(req.Requests))
	liveJobs := make([]gpa.Job, 0, len(req.Requests))
	for i := range req.Requests {
		job, err := s.buildJob(w, r, &req.Requests[i])
		if err != nil {
			_, body := requestErrorBody(err)
			out.Results[i] = body
			continue
		}
		// Batches are bulk work: they ride the batch lane, which queues
		// behind interactive requests and is shed first under overload.
		job.Lane = gpa.LaneBatch
		live = append(live, i)
		liveJobs = append(liveJobs, job)
	}
	results := s.eng.DoAll(r.Context(), liveJobs)
	for n, i := range live {
		if err := results[n].Err; err != nil {
			_, body := errorBodyOf(err)
			out.Results[i] = body
			continue
		}
		out.Results[i] = liveJobs[n].Result(results[n])
	}
	writeJSON(w, http.StatusOK, out)
}

// sweepRequest advises one kernel on several architecture models.
type sweepRequest struct {
	kernelRequest
	// Archs lists model names (empty = every registered model).
	Archs []string `json:"archs,omitempty"`
}

type sweepResponse struct {
	SchemaVersion string `json:"schemaVersion"`
	// TraceID is the request's trace ID; entries share the envelope's.
	TraceID string `json:"traceId,omitempty"`
	Results []any  `json:"results"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Arch != "" {
		if len(req.Archs) > 0 {
			writeBadRequest(w, fmt.Errorf("set either arch or archs, not both"))
			return
		}
		// A lone arch is a one-model sweep.
		req.Archs = []string{req.Arch}
	}
	var gpus []*arch.GPU
	for _, name := range req.Archs {
		g, err := gpa.LookupGPU(name)
		if err != nil {
			writeRequestError(w, err)
			return
		}
		gpus = append(gpus, g)
	}
	req.Arch = "" // per-arch options are set by Sweep
	job, err := s.buildJob(w, r, &req.kernelRequest)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	gpus, results := s.eng.Sweep(r.Context(), job, gpus)
	out := sweepResponse{
		SchemaVersion: gpa.ResultSchemaVersion,
		Results:       make([]any, len(gpus)),
	}
	for i, g := range gpus {
		if err := results[i].Err; err != nil {
			_, body := errorBodyOf(err)
			out.Results[i] = body
			continue
		}
		jg := job
		o := *job.Options
		o.GPU = g
		jg.Options = &o
		out.Results[i] = jg.Result(results[i])
	}
	writeJSON(w, http.StatusOK, out)
}

// archInfo is one /v1/archs entry.
type archInfo struct {
	Name   string `json:"name"` // canonical key, accepted back in "arch"
	Model  string `json:"model"`
	SM     int    `json:"sm"`
	NumSMs int    `json:"numSMs"`
}

func (s *server) handleArchs(w http.ResponseWriter, r *http.Request) {
	var out []archInfo
	for _, g := range gpa.GPUs() {
		out = append(out, archInfo{
			Name: gpa.GPUName(g), Model: g.Name, SM: g.SM, NumSMs: g.NumSMs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// statszSchemaVersion versions the /statsz payload shape so machine
// consumers (dashboards, the loadgen harness) can dispatch on it.
const statszSchemaVersion = "gpa-statsz/1"

// statszResponse is the /statsz payload: the engine's cache and
// scheduling counters plus server uptime.
type statszResponse struct {
	SchemaVersion string `json:"schemaVersion"`
	gpa.EngineStats
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statszResponse{
		SchemaVersion: statszSchemaVersion,
		EngineStats:   s.eng.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// post/get enforce the endpoint's method.
func (s *server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("use POST"))
			return
		}
		h(w, r)
	}
}

func (s *server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("use GET"))
			return
		}
		h(w, r)
	}
}

// decode reads a bounded JSON body; on failure it writes the error
// response and returns false.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeBadRequest(w, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// One choke point stamps the trace ID onto every body shape and
	// captures the stable error code for the request log and metrics.
	// Result structs are freshly allocated per request (cache hits share
	// advice/report pointers, not the Result), so stamping never leaks a
	// trace ID across requests.
	if ow, ok := w.(*obsWriter); ok {
		switch b := v.(type) {
		case *gpa.Result:
			b.TraceID = ow.trace
		case *errorBody:
			b.TraceID = ow.trace
			ow.code = b.Error.Code
		case batchResponse:
			b.TraceID = ow.trace
			v = b
		case sweepResponse:
			b.TraceID = ow.trace
			v = b
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeTypedError maps err through the taxonomy table and writes the
// v2 error body; shed-load responses (429 quota, 503 queue_full /
// overloaded / shutting_down) advertise a computed, jittered
// Retry-After instead of a static constant: quota rejections carry
// their bucket's refill time, overload gets a backlog-drain estimate.
func (s *server) writeTypedError(w http.ResponseWriter, err error) {
	status, body := errorBodyOf(err)
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterFor(err)))
	}
	writeJSON(w, status, body)
}

// writeBadRequest reports malformed envelopes (bodies the taxonomy
// never sees: undecodable JSON, empty batches, conflicting fields).
func writeBadRequest(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, "bad_request", err)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, &errorBody{
		SchemaVersion: gpa.ResultSchemaVersion,
		Error:         errInfo{Code: code, Status: status, Message: err.Error()},
	})
}
