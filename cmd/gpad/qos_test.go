package main

// Tenant admission surface tests at the HTTP boundary: X-Tenant-Id
// validation, the 429 quota contract (code, Retry-After, per-tenant
// /statsz accounting), per-tenant /metrics series, cross-tenant cache
// sharing, and the -qos-config loader.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpa"
)

func TestClientTenant(t *testing.T) {
	cases := []struct {
		header, want string
	}{
		{"", ""},
		{"acme", "acme"},
		{"team-a_b.c:1", "team-a_b.c:1"},
		{"evil header", ""},           // unsafe charset
		{strings.Repeat("x", 65), ""}, // oversize
		{strings.Repeat("x", 64), strings.Repeat("x", 64)},
		{"tab\there", ""},
	}
	for _, tc := range cases {
		r, _ := http.NewRequest("POST", "/v1/advise", nil)
		if tc.header != "" {
			r.Header.Set(tenantHeader, tc.header)
		}
		if got := clientTenant(r); got != tc.want {
			t.Errorf("clientTenant(%q) = %q, want %q", tc.header, got, tc.want)
		}
	}
}

func TestJitterSecondsClamps(t *testing.T) {
	for i := 0; i < 50; i++ {
		if s := jitterSeconds(time.Millisecond); s != 1 {
			t.Fatalf("jitterSeconds(1ms) = %d, want clamp to 1", s)
		}
		if s := jitterSeconds(time.Hour); s != 60 {
			t.Fatalf("jitterSeconds(1h) = %d, want clamp to 60", s)
		}
		if s := jitterSeconds(10 * time.Second); s < 8 || s > 13 {
			t.Fatalf("jitterSeconds(10s) = %d, want within ±25%% (+ceil)", s)
		}
	}
}

func TestLoadQoSConfig(t *testing.T) {
	if cfg, err := loadQoSConfig("", 0, false, 0, false); err != nil || cfg != nil {
		t.Fatalf("no flags must yield nil config: %v %v", cfg, err)
	}

	path := filepath.Join(t.TempDir(), "qos.json")
	if err := os.WriteFile(path, []byte(`{
		"tenants": {"acme": {"weight": 3, "ratePerSec": 10, "burst": 20}},
		"interactiveReserve": 1
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := loadQoSConfig(path, 0, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenants["acme"].Weight != 3 || cfg.InteractiveReserve != 1 {
		t.Fatalf("file config lost fields: %+v", cfg)
	}

	// Explicit flags override the file; unset flags do not.
	cfg, err = loadQoSConfig(path, 2, true, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.InteractiveReserve != 2 || cfg.Brownout.P99ThresholdMs != 150 {
		t.Fatalf("flags did not override file: %+v", cfg)
	}
	if cfg.Tenants["acme"].Weight != 3 {
		t.Fatalf("flag override dropped file tenants: %+v", cfg)
	}

	// A typoed key in the file fails loudly at startup, not at runtime.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"tenant": {}}`), 0o644)
	if _, err := loadQoSConfig(bad, 0, false, 0, false); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// postTenant posts a JSON body with an X-Tenant-Id header.
func postTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hr.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestQuotaMapsTo429 pins the quota contract end-to-end: an over-quota
// tenant gets 429 quota_exceeded with a usable integer Retry-After,
// its shed is billed to it alone at /statsz, and other tenants keep
// being served.
func TestQuotaMapsTo429(t *testing.T) {
	cfg, err := gpa.NewQoSConfig().
		Tenant("metered", gpa.NewTenantQoSConfig().Quota(0.001, 1)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(gpa.NewEngine(&gpa.EngineOptions{QoS: &cfg})))
	t.Cleanup(ts.Close)

	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	if resp, body := postTenant(t, ts.URL+"/v1/advise", "metered", req); resp.StatusCode != 200 {
		t.Fatalf("first metered request (within burst): %d: %s", resp.StatusCode, body)
	}
	resp, body := postTenant(t, ts.URL+"/v1/advise", "metered", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("429 Retry-After = %q, want integer seconds in [1,60]", ra)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != "quota_exceeded" {
		t.Fatalf("429 body code = %q (%s)", eb.Error.Code, body)
	}

	// Another tenant rides the warm cache, unmetered and unshed.
	if resp, body := postTenant(t, ts.URL+"/v1/advise", "free", req); resp.StatusCode != 200 {
		t.Fatalf("free tenant: %d: %s", resp.StatusCode, body)
	}

	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.QuotaShed != 1 || st.Tenants["metered"].QuotaShed != 1 {
		t.Fatalf("quotaShed = %d (metered %d), want 1/1", st.QuotaShed, st.Tenants["metered"].QuotaShed)
	}
	if st.Tenants["free"].Served != 1 || st.Tenants["free"].QuotaShed != 0 {
		t.Fatalf("free tenant stats = %+v", st.Tenants["free"])
	}
}

// TestTenantAccountingAndMetrics: two tenants submitting the same
// kernel share one simulation (the cross-tenant singleflight/cache
// contract at the HTTP surface) while /statsz and /metrics report each
// tenant's own served count.
func TestTenantAccountingAndMetrics(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	if resp, body := postTenant(t, ts.URL+"/v1/advise", "alpha", req); resp.StatusCode != 200 {
		t.Fatalf("alpha: %d: %s", resp.StatusCode, body)
	}
	var out gpa.Result
	resp, body := postTenant(t, ts.URL+"/v1/advise", "beta", req)
	if resp.StatusCode != 200 {
		t.Fatalf("beta: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("different tenants must not split the cache")
	}

	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (tenants share the simulation)", st.Runs)
	}
	if a, b := st.Tenants["alpha"].Served, st.Tenants["beta"].Served; a != 1 || b != 1 {
		t.Fatalf("served alpha=%d beta=%d, want 1/1", a, b)
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`gpa_tenant_served_total{tenant="alpha"} 1`,
		`gpa_tenant_served_total{tenant="beta"} 1`,
		`gpa_tenant_weight{tenant="alpha"} 1`,
		`gpa_engine_brownout_level `,
		`gpa_engine_interactive_queued `,
		`gpa_engine_batch_queued `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestUnsafeTenantSharesDefault: header garbage cannot mint tenant
// state; it lands on the default tenant.
func TestUnsafeTenantSharesDefault(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9}
	if resp, body := postTenant(t, ts.URL+"/v1/advise", "not a tenant!!", req); resp.StatusCode != 200 {
		t.Fatalf("unsafe tenant request: %d: %s", resp.StatusCode, body)
	}
	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Tenants["default"].Served != 1 {
		t.Fatalf("default tenant served = %d, want 1 (unsafe ID must collapse): %+v",
			st.Tenants["default"].Served, st.Tenants)
	}
	if len(st.Tenants) != 1 {
		t.Fatalf("unsafe ID minted tenant state: %+v", st.Tenants)
	}
}
