package main

// Tenant-facing admission surface for gpad: the X-Tenant-Id header,
// the -qos-config loader, computed Retry-After hints for shed
// responses, and the per-tenant /metrics series. Tenant IDs are
// transport-level like trace IDs — never part of the cache digest or
// any stage key (pinned by TestTenantExcludedFromDigest) — so two
// tenants submitting the same kernel still share one simulation while
// each is billed and counted for its own request.

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gpa"
	"gpa/internal/obs"
)

// tenantHeader carries the caller's tenant identity. Absent, oversize,
// or unsafe values collapse into the shared "default" tenant instead
// of being rejected: admission identity is a scheduling hint, and
// garbage must not be able to fail requests or mint tenant state.
const tenantHeader = "X-Tenant-Id"

// maxTenantIDLen caps accepted tenant IDs (same bound as trace IDs).
const maxTenantIDLen = 64

// clientTenant returns the request's tenant ID when it is safe to echo
// into logs and metric labels (the clientTraceID charset), else "" —
// the engine's default tenant.
func clientTenant(r *http.Request) string {
	id := r.Header.Get(tenantHeader)
	if id == "" || len(id) > maxTenantIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// loadQoSConfig builds the engine's QoS config from the -qos-config
// file (strict JSON, unknown fields rejected) with the supplementary
// flags layered on top when explicitly set on the command line.
func loadQoSConfig(path string, reserve int, reserveSet bool, brownoutMs float64, brownoutSet bool) (*gpa.QoSConfig, error) {
	var cfg gpa.QoSConfig
	loaded := false
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if cfg, err = gpa.ParseQoSConfig(data); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		loaded = true
	}
	if reserveSet {
		if reserve < 0 {
			return nil, fmt.Errorf("-interactive-reserve must be >= 0")
		}
		cfg.InteractiveReserve = reserve
		loaded = true
	}
	if brownoutSet {
		if brownoutMs < 0 {
			return nil, fmt.Errorf("-brownout-p99-ms must be >= 0")
		}
		cfg.Brownout.P99ThresholdMs = brownoutMs
		loaded = true
	}
	if !loaded {
		return nil, nil
	}
	return &cfg, nil
}

// retryHints turns engine state into Retry-After values for shed
// responses. The 503 hint is the current queue depth divided by an
// EWMA of the observed completion rate — "when will the backlog have
// drained" — and the 429 hint is the quota bucket's own computed
// refill time; both are jittered so a synchronized client fleet does
// not retry in one thundering herd.
type retryHints struct {
	mu       sync.Mutex
	lastAt   time.Time
	lastDone int64
	rate     float64 // jobs/sec, EWMA
}

// overloadSeconds estimates how long the current backlog needs to
// drain. With no observed rate yet (cold server) it falls back to the
// 1s floor the static header used to advertise.
func (h *retryHints) overloadSeconds(st gpa.EngineStats) int {
	done := st.Runs + st.Hits + st.Coalesced
	now := time.Now()

	h.mu.Lock()
	if h.lastAt.IsZero() {
		h.lastAt, h.lastDone = now, done
	} else if elapsed := now.Sub(h.lastAt).Seconds(); elapsed >= 0.1 {
		sample := float64(done-h.lastDone) / elapsed
		if sample >= 0 {
			const alpha = 0.3
			h.rate = alpha*sample + (1-alpha)*h.rate
		}
		h.lastAt, h.lastDone = now, done
	}
	rate := h.rate
	h.mu.Unlock()

	if rate <= 0 {
		return jitterSeconds(time.Second)
	}
	return jitterSeconds(time.Duration(float64(st.Queued+1) / rate * float64(time.Second)))
}

// jitterSeconds spreads d by ±25% and clamps to [1s, 60s], returning
// whole seconds for the Retry-After header. Randomness here never
// feeds a digest; it exists to de-synchronize retrying clients.
func jitterSeconds(d time.Duration) int {
	var b [1]byte
	factor := 1.0
	if _, err := rand.Read(b[:]); err == nil {
		factor = 0.75 + 0.5*float64(b[0])/255
	}
	s := int(math.Ceil(d.Seconds() * factor))
	if s < 1 {
		return 1
	}
	if s > 60 {
		return 60
	}
	return s
}

// retryAfterFor computes the Retry-After value for one shed response:
// quota rejections carry their bucket's refill time, everything else
// (queue_full, overloaded, shutting_down) gets the backlog estimate.
func (s *server) retryAfterFor(err error) int {
	var qe *gpa.QuotaError
	if errors.As(err, &qe) && qe.RetryAfter > 0 {
		return jitterSeconds(qe.RetryAfter)
	}
	return s.hints.overloadSeconds(s.eng.Stats())
}

// writeTenantMetrics renders the per-tenant admission series. The
// label set is closed by the engine itself: past the configured
// MaxTenants, unknown IDs collapse into the "other" tenant, so scrape
// cardinality is bounded no matter what clients send.
func writeTenantMetrics(p *obs.PromWriter, st gpa.EngineStats) {
	if len(st.Tenants) == 0 {
		return
	}
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)

	type field struct {
		metric, help, typ string
		value             func(gpa.TenantStats) float64
	}
	fields := []field{
		{"gpa_tenant_weight", "Tenant DWRR weight.", "gauge",
			func(t gpa.TenantStats) float64 { return float64(t.Weight) }},
		{"gpa_tenant_queued", "Jobs queued for admission by tenant.", "gauge",
			func(t gpa.TenantStats) float64 { return float64(t.Queued) }},
		{"gpa_tenant_served_total", "Requests served by tenant (cache hits and coalesced followers included).", "counter",
			func(t gpa.TenantStats) float64 { return float64(t.Served) }},
		{"gpa_tenant_shed_total", "Jobs shed at the queue bound by tenant.", "counter",
			func(t gpa.TenantStats) float64 { return float64(t.Shed) }},
		{"gpa_tenant_quota_shed_total", "Jobs shed over quota by tenant.", "counter",
			func(t gpa.TenantStats) float64 { return float64(t.QuotaShed) }},
		{"gpa_tenant_brownout_shed_total", "Jobs shed by the brownout controller by tenant.", "counter",
			func(t gpa.TenantStats) float64 { return float64(t.BrownoutShed) }},
		{"gpa_tenant_dropped_total", "Queued jobs abandoned by their callers by tenant.", "counter",
			func(t gpa.TenantStats) float64 { return float64(t.Dropped) }},
	}
	for _, f := range fields {
		p.Header(f.metric, f.help, f.typ)
		for _, name := range names {
			p.Metric(f.metric, []obs.Label{{Name: "tenant", Value: name}}, f.value(st.Tenants[name]))
		}
	}
}
