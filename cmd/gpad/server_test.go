package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"gpa"
	"gpa/internal/kernels"
)

const testKernelSrc = `
.module sm_70
.func vecscale global
.line vecscale.cu 5
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line vecscale.cu 7
	LDG.E.32 R4, [R2] {S:1, W:0}
.line vecscale.cu 8
	FMUL R5, R4, 2f {S:4, Q:0}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R5 {S:1, R:1}
	EXIT {Q:1}
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(gpa.NewEngine(nil)))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseAsmAndCacheHit(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{
		"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9,
	}
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cold gpa.Result
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first request must be a cache miss")
	}
	if cold.Kernel != "vecscale" || cold.Arch != "v100" || cold.Cycles <= 0 {
		t.Errorf("bad response header fields: %+v", cold)
	}
	if cold.SchemaVersion != gpa.ResultSchemaVersion {
		t.Errorf("schemaVersion = %q, want %q", cold.SchemaVersion, gpa.ResultSchemaVersion)
	}
	if len(cold.Advice) == 0 {
		t.Fatal("no ranked advice entries")
	}
	if !strings.Contains(cold.ReportText, "GPA performance report for kernel vecscale") {
		t.Errorf("report text missing header:\n%s", cold.ReportText)
	}
	if cold.ProfileDigest == "" || cold.Key == "" {
		t.Error("missing profile digest or cache key")
	}

	_, body2 := postJSON(t, ts.URL+"/v1/advise", req)
	var warm gpa.Result
	if err := json.Unmarshal(body2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second identical request must hit the cache")
	}
	// The determinism contract: everything but the transport-level
	// fields (Cached flag, trace ID) is byte-identical.
	if normTransport(body) != normTransport(body2) {
		t.Error("cached response body differs from cold run")
	}
}

// traceIDLine matches the indented traceId field of an encoded result.
var traceIDLine = regexp.MustCompile(`\s*"traceId": "[^"]*",`)

// normTransport strips the per-request transport fields — the trace ID
// (unique per request by design) and the cached flag — so response
// bodies can be byte-compared under the determinism contract.
func normTransport(b []byte) string {
	s := traceIDLine.ReplaceAllString(string(b), "")
	return strings.Replace(s, `"cached": true`, `"cached": false`, 1)
}

func TestAdviseBenchKernel(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/advise", map[string]any{"bench": "rodinia/hotspot"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out gpa.Result
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Advice) == 0 {
		t.Fatal("no advice for bundled benchmark")
	}
	// The bundled row must be cacheable (its workload has a stable key).
	_, body2 := postJSON(t, ts.URL+"/v1/advise", map[string]any{"bench": "rodinia/hotspot"})
	var warm gpa.Result
	if err := json.Unmarshal(body2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("bundled benchmark repeat must hit the cache")
	}
	if warm.ReportText != out.ReportText {
		t.Error("cached bench report differs")
	}
}

// TestConcurrentIdenticalRequestsOneSimulation is the acceptance
// criterion: N identical concurrent requests cost exactly one
// simulation, observable at /statsz.
func TestConcurrentIdenticalRequestsOneSimulation(t *testing.T) {
	ts := newTestServer(t)
	const n = 12
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = postJSON(t, ts.URL+"/v1/advise",
				map[string]any{"bench": "rodinia/hotspot"})
		}(i)
	}
	wg.Wait()
	var first gpa.Result
	if err := json.Unmarshal(bodies[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.SchemaVersion != gpa.ResultSchemaVersion || first.ReportText == "" {
		t.Fatalf("bad first response: %+v", first)
	}
	for i := 1; i < n; i++ {
		var r gpa.Result
		if err := json.Unmarshal(bodies[i], &r); err != nil {
			t.Fatal(err)
		}
		if r.ReportText != first.ReportText || r.ProfileDigest != first.ProfileDigest {
			t.Fatalf("response %d differs", i)
		}
	}
	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Runs != 1 {
		t.Fatalf("/statsz shows %d simulations for %d identical concurrent requests, want 1 (%+v)",
			st.Runs, n, st)
	}
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}

// TestTable3CachedResponsesByteIdentical pins the acceptance criterion
// across every Table 3 kernel: the cached gpad response is
// byte-identical to a cold sequential run through the plain library
// API.
func TestTable3CachedResponsesByteIdentical(t *testing.T) {
	ts := newTestServer(t)
	rows := kernels.All()
	if testing.Short() {
		rows = rows[:3]
	}
	for _, b := range rows {
		k, wl, err := b.Base.Build()
		if err != nil {
			t.Fatal(err)
		}
		report, err := k.Advise(context.Background(), &gpa.Options{
			Workload: wl, Seed: 11, SimSMs: 1, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.ID(), err)
		}
		want := report.String()

		req := map[string]any{"bench": b.ID()} // full row ID: every Table 3 row
		resp, cold := postJSON(t, ts.URL+"/v1/advise", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", b.ID(), resp.StatusCode, cold)
		}
		var coldR gpa.Result
		if err := json.Unmarshal(cold, &coldR); err != nil {
			t.Fatal(err)
		}
		if coldR.ReportText != want {
			t.Errorf("%s: gpad report differs from cold sequential library run", b.ID())
		}
		_, warm := postJSON(t, ts.URL+"/v1/advise", req)
		var warmR gpa.Result
		if err := json.Unmarshal(warm, &warmR); err != nil {
			t.Fatal(err)
		}
		if !warmR.Cached {
			t.Errorf("%s: repeat request missed the cache", b.ID())
		}
		if warmR.ReportText != coldR.ReportText || warmR.ProfileDigest != coldR.ProfileDigest ||
			warmR.Cycles != coldR.Cycles {
			t.Errorf("%s: cached gpad response differs from its cold run", b.ID())
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/profile", map[string]any{
		"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out gpa.Result
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil || out.Profile.TotalSamples == 0 {
		t.Fatal("profile endpoint returned no samples")
	}
	if out.ReportText != "" {
		t.Error("profile response must not carry a report")
	}
	if out.ProfileDigest == "" {
		t.Error("missing profile digest")
	}
}

func TestBatchMixedKinds(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"requests": []map[string]any{
			{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "kind": "measure"},
			{"asm": testKernelSrc, "gridX": 160, "blockX": 256, "kind": "advise"},
			{"bench": "rodinia/hotspot"},
			{"bench": "no-such-bench"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		SchemaVersion string            `json:"schemaVersion"`
		Results       []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != gpa.ResultSchemaVersion {
		t.Errorf("batch schemaVersion = %q", out.SchemaVersion)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	var rs [4]gpa.Result
	for i := 0; i < 3; i++ {
		if err := json.Unmarshal(out.Results[i], &rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if rs[0].Cycles <= 0 || rs[0].ReportText != "" {
		t.Errorf("measure result wrong: %+v", rs[0])
	}
	if len(rs[1].Advice) == 0 {
		t.Error("advise result missing advice")
	}
	if len(rs[2].Advice) == 0 {
		t.Errorf("bench result missing advice: %s", out.Results[2])
	}
	var bad struct {
		Error struct {
			Code   string `json:"code"`
			Status int    `json:"status"`
		} `json:"error"`
	}
	if err := json.Unmarshal(out.Results[3], &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Error.Code != "bad_request" || bad.Error.Status != http.StatusBadRequest {
		t.Errorf("unknown bench error = %+v, want bad_request/400", bad.Error)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"bench": "rodinia/hotspot",
		"archs": []string{"v100", "t4"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []gpa.Result `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(out.Results))
	}
	if out.Results[0].Arch != "v100" || out.Results[1].Arch != "t4" {
		t.Errorf("sweep archs = %s, %s", out.Results[0].Arch, out.Results[1].Arch)
	}
	if out.Results[0].ProfileDigest == out.Results[1].ProfileDigest {
		t.Error("different architectures produced identical profiles")
	}

	// Empty archs = every registered model.
	_, body2 := postJSON(t, ts.URL+"/v1/sweep", map[string]any{"bench": "rodinia/hotspot"})
	var all struct {
		Results []gpa.Result `json:"results"`
	}
	if err := json.Unmarshal(body2, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Results) != len(gpa.GPUs()) {
		t.Errorf("default sweep covered %d archs, want %d", len(all.Results), len(gpa.GPUs()))
	}

	// A lone "arch" field is a one-model sweep, not silently ignored.
	_, body3 := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"bench": "rodinia/hotspot", "arch": "t4",
	})
	var one struct {
		Results []gpa.Result `json:"results"`
	}
	if err := json.Unmarshal(body3, &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Results) != 1 || one.Results[0].Arch != "t4" {
		t.Errorf("lone arch sweep = %d results (first arch %q), want 1 t4 result",
			len(one.Results), one.Results[0].Arch)
	}

	// arch and archs together are ambiguous.
	resp4, _ := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"bench": "rodinia/hotspot", "arch": "t4", "archs": []string{"v100"},
	})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("arch+archs = status %d, want 400", resp4.StatusCode)
	}
}

func TestArchsHealthzStatsz(t *testing.T) {
	ts := newTestServer(t)
	var archs []archInfo
	getJSON(t, ts.URL+"/v1/archs", &archs)
	if len(archs) != len(gpa.GPUs()) {
		t.Errorf("archs = %d, want %d", len(archs), len(gpa.GPUs()))
	}
	var health healthzResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("healthz = %+v", health)
	}
	if health.GoVersion == "" || health.Version == "" {
		t.Errorf("healthz missing build info: %+v", health)
	}
	if health.Store != nil {
		t.Errorf("healthz reports a store for a storeless server: %+v", health.Store)
	}
	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Workers <= 0 {
		t.Errorf("statsz workers = %d", st.Workers)
	}
	if st.SchemaVersion != statszSchemaVersion {
		t.Errorf("statsz schemaVersion = %q, want %q", st.SchemaVersion, statszSchemaVersion)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name   string
		body   any
		status int
	}{
		{"no kernel source", map[string]any{}, http.StatusBadRequest},
		{"two sources", map[string]any{"asm": testKernelSrc, "bench": "rodinia/hotspot"},
			http.StatusBadRequest},
		{"bench with launch shape", map[string]any{"bench": "rodinia/hotspot", "gridX": 4},
			http.StatusBadRequest},
		{"bench with entry", map[string]any{"bench": "rodinia/hotspot", "entry": "k"},
			http.StatusBadRequest},
		{"bad asm", map[string]any{"asm": "garbage"}, http.StatusUnprocessableEntity},
		{"unknown arch", map[string]any{"asm": testKernelSrc, "arch": "sm_999"},
			http.StatusBadRequest},
		{"unknown field", map[string]any{"asm": testKernelSrc, "bogus": 1},
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/advise", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var out errorBody
		if err := json.Unmarshal(body, &out); err != nil {
			t.Errorf("%s: non-JSON error body: %s", tc.name, body)
		} else if out.Error.Code == "" || out.Error.Message == "" ||
			out.SchemaVersion != gpa.ResultSchemaVersion {
			t.Errorf("%s: malformed error body: %s", tc.name, body)
		}
	}
	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/advise = %d, want 405", resp.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/statsz", map[string]any{})
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /statsz = %d, want 405", resp2.StatusCode)
	}
}

func TestAnalysisErrorIsUnprocessable(t *testing.T) {
	ts := newTestServer(t)
	// Assembles fine but the entry does not exist at launch time: a
	// bad_kernel, not a malformed request.
	resp, body := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"asm": testKernelSrc, "entry": "missing",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d for missing entry, want 422: %s", resp.StatusCode, body)
	}
	var out errorBody
	if err := json.Unmarshal(body, &out); err != nil || out.Error.Code != "bad_kernel" {
		t.Errorf("missing entry error code = %q, want bad_kernel (%s)", out.Error.Code, body)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	k, err := gpa.LoadKernelAsm(testKernelSrc, gpa.Launch{GridX: 160, BlockX: 256})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := k.SaveBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"binary": blob, "entry": "vecscale", "gridX": 160, "blockX": 256, "seed": 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var bin gpa.Result
	if err := json.Unmarshal(body, &bin); err != nil {
		t.Fatal(err)
	}
	// A binary upload of the same module content must share the cache
	// entry with the equivalent asm upload: the key is content-addressed.
	_, body2 := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"asm": testKernelSrc, "gridX": 160, "blockX": 256, "seed": 9,
	})
	var asm gpa.Result
	if err := json.Unmarshal(body2, &asm); err != nil {
		t.Fatal(err)
	}
	if asm.Key != bin.Key {
		t.Errorf("asm and binary uploads of the same module digest differently:\n%s\n%s",
			asm.Key, bin.Key)
	}
	if !asm.Cached {
		t.Error("asm upload after identical binary upload must hit the cache")
	}
	if asm.ReportText != bin.ReportText {
		t.Error("asm and binary reports differ")
	}
}

func TestStatszCountersProgress(t *testing.T) {
	ts := newTestServer(t)
	var st0 statszResponse
	getJSON(t, ts.URL+"/statsz", &st0)
	postJSON(t, ts.URL+"/v1/advise", map[string]any{"bench": "rodinia/hotspot"})
	postJSON(t, ts.URL+"/v1/advise", map[string]any{"bench": "rodinia/hotspot"})
	var st statszResponse
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Misses != st0.Misses+1 || st.Hits != st0.Hits+1 {
		t.Errorf("stats did not progress: %+v -> %+v", st0, st)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cacheEntries = %d, want 1", st.CacheEntries)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d at rest", st.Inflight)
	}
}
