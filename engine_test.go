package gpa_test

import (
	"context"
	"sync"
	"testing"

	"gpa"
	"gpa/internal/kernels"
)

func TestEngineAdviseMatchesDirectAPI(t *testing.T) {
	k, opts := apiKernel(t)
	direct, err := k.Advise(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := gpa.NewEngine(nil)
	res := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts, WorkloadKey: "api"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.String() != direct.String() {
		t.Error("engine advise report differs from Kernel.Advise")
	}
	if res.Cached {
		t.Error("first engine run must not be cached")
	}
	warm := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts, WorkloadKey: "api"})
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.Cached {
		t.Error("second engine run must hit the cache")
	}
	if warm.Report.String() != direct.String() {
		t.Error("cached engine report differs from Kernel.Advise")
	}
}

func TestEngineMeasureAndProfile(t *testing.T) {
	k, opts := apiKernel(t)
	eng := gpa.NewEngine(nil)
	res := eng.DoAll(context.Background(), []gpa.Job{
		{Kind: gpa.JobMeasure, Kernel: k, Options: opts, WorkloadKey: "api"},
		{Kind: gpa.JobProfile, Kernel: k, Options: opts, WorkloadKey: "api"},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	cycles, err := k.Measure(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Cycles != cycles {
		t.Errorf("engine measure %d cycles, direct %d", res[0].Cycles, cycles)
	}
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prof.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if res[1].ProfileDigest != want {
		t.Error("engine profile digest differs from direct Kernel.Profile")
	}
}

func TestEngineWorkloadWithoutKeyBypasses(t *testing.T) {
	k, opts := apiKernel(t) // opts carries a workload
	eng := gpa.NewEngine(nil)
	res := eng.Do(context.Background(), gpa.Job{Kind: gpa.JobMeasure, Kernel: k, Options: opts})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Key != "" || res.Cached {
		t.Errorf("workload without key must bypass the cache (key %q, cached %v)",
			res.Key, res.Cached)
	}
	if st := eng.Stats(); st.Bypass != 1 {
		t.Errorf("stats = %+v, want 1 bypass", st)
	}
}

func TestEngineSweep(t *testing.T) {
	k, opts := apiKernel(t)
	eng := gpa.NewEngine(nil)
	gpus, res := eng.Sweep(context.Background(), gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts,
		WorkloadKey: "api"}, nil)
	if len(gpus) != len(gpa.GPUs()) || len(res) != len(gpus) {
		t.Fatalf("sweep covered %d archs, want %d", len(res), len(gpa.GPUs()))
	}
	seen := map[string]bool{}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", gpa.GPUName(gpus[i]), r.Err)
		}
		if r.Report == nil || len(r.Report.Advice.Entries) == 0 {
			t.Fatalf("%s: no advice", gpa.GPUName(gpus[i]))
		}
		if seen[r.Key] {
			t.Fatalf("%s: duplicate cache key across architectures", gpa.GPUName(gpus[i]))
		}
		seen[r.Key] = true
	}
}

// TestEngineTable3CacheByteIdentical is the PR's cache-correctness
// acceptance test: for every Table 3 kernel, a cached engine response
// is byte-identical to a cold sequential run through the plain API,
// and N identical concurrent jobs cost exactly one simulation.
func TestEngineTable3CacheByteIdentical(t *testing.T) {
	rows := kernels.All()
	if testing.Short() {
		rows = rows[:3]
	}
	for _, b := range rows {
		k, wl, err := b.Base.Build()
		if err != nil {
			t.Fatal(err)
		}
		opts := &gpa.Options{Workload: wl, Seed: 11, SimSMs: 1, Parallelism: 1}
		cold, err := k.Advise(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", b.ID(), err)
		}
		want := cold.String()

		eng := gpa.NewEngine(nil)
		job := gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts,
			WorkloadKey: b.ID() + "/base"}

		// N identical concurrent jobs...
		const n = 8
		var wg sync.WaitGroup
		res := make([]gpa.JobResult, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res[i] = eng.Do(context.Background(), job)
			}(i)
		}
		wg.Wait()
		// ...cost exactly one simulation...
		if st := eng.Stats(); st.Runs != 1 {
			t.Errorf("%s: %d concurrent identical jobs ran %d simulations, want 1",
				b.ID(), n, st.Runs)
		}
		for i := 0; i < n; i++ {
			if res[i].Err != nil {
				t.Fatalf("%s: job %d: %v", b.ID(), i, res[i].Err)
			}
			if got := res[i].Report.String(); got != want {
				t.Fatalf("%s: concurrent engine report differs from cold sequential run", b.ID())
			}
		}
		// ...and a later cache hit is still byte-identical.
		hit := eng.Do(context.Background(), job)
		if hit.Err != nil {
			t.Fatal(hit.Err)
		}
		if !hit.Cached {
			t.Errorf("%s: repeat job missed the cache", b.ID())
		}
		if hit.Report.String() != want {
			t.Errorf("%s: cached report differs from cold sequential run", b.ID())
		}
	}
}

func TestRunOptionsEngineMatchesSequential(t *testing.T) {
	rows := kernels.All()[:3]
	eng := gpa.NewEngine(nil)
	for _, b := range rows {
		seq, err := b.Run(context.Background(), kernels.RunOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		routed, err := b.Run(context.Background(), kernels.RunOptions{Seed: 11, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if seq.BaseCycles != routed.BaseCycles || seq.OptCycles != routed.OptCycles {
			t.Errorf("%s: engine-routed cycles (%d/%d) differ from sequential (%d/%d)",
				b.ID(), routed.BaseCycles, routed.OptCycles, seq.BaseCycles, seq.OptCycles)
		}
		if seq.Report.String() != routed.Report.String() {
			t.Errorf("%s: engine-routed report differs from sequential", b.ID())
		}
		if seq.Estimated != routed.Estimated || seq.Rank != routed.Rank {
			t.Errorf("%s: engine-routed outcome differs", b.ID())
		}
	}
	// Re-running the same rows through the same engine is pure cache.
	before := eng.Stats().Runs
	for _, b := range rows {
		if _, err := b.Run(context.Background(), kernels.RunOptions{Seed: 11, Engine: eng}); err != nil {
			t.Fatal(err)
		}
	}
	if after := eng.Stats().Runs; after != before {
		t.Errorf("repeat engine-routed rows re-simulated (%d -> %d runs)", before, after)
	}
}
