package gpa_test

// Cancellation contract tests (run under -race in CI): a canceled
// context aborts an in-flight simulation promptly without leaking
// goroutines, a canceled coalesced waiter detaches without killing the
// shared run, an expired deadline fails a queued job, and a bounded
// queue sheds load with ErrQueueFull.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpa"
)

// slowKernel builds a kernel whose simulation runs for hundreds of
// milliseconds (trips controls the loop length; 50_000 ≈ 25M cycles,
// safely under the runaway bound), so tests can cancel mid-flight.
func slowKernel(t *testing.T, trips int, seed uint64) (*gpa.Kernel, *gpa.Options) {
	t.Helper()
	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 160, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := k.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "vecscale", Label: "BR0"}: gpa.UniformTrips(trips),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, &gpa.Options{Workload: wl, Seed: seed, SimSMs: 1}
}

// waitForGoroutines polls until the goroutine count settles back to
// (or below) want, failing the test after the deadline — the
// goroutine-leak check for detached runs.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine count stuck at %d, want <= %d (leaked simulation?)",
		runtime.NumGoroutine(), want)
}

func TestCancelMidSimulationPrompt(t *testing.T) {
	k, opts := slowKernel(t, 50_000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := k.Measure(ctx, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the simulation get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, gpa.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cancel not honored after %s", time.Since(start))
	}
	// The full run takes hundreds of milliseconds; a prompt cancel
	// returns well before it could have finished.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %s, want well under the full-run time", elapsed)
	}
}

func TestCancelPreemptsSimulation(t *testing.T) {
	// A context canceled before the call returns immediately without
	// simulating at all.
	k, opts := slowKernel(t, 50_000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := k.Measure(ctx, opts); !errors.Is(err, gpa.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-canceled Measure took %s", elapsed)
	}
	if _, err := k.Profile(ctx, opts); !errors.Is(err, gpa.ErrCanceled) {
		t.Fatalf("Profile err = %v, want ErrCanceled", err)
	}
	if _, err := k.Advise(ctx, opts); !errors.Is(err, gpa.ErrCanceled) {
		t.Fatalf("Advise err = %v, want ErrCanceled", err)
	}
}

func TestEngineCancelDetachesWithoutGoroutineLeak(t *testing.T) {
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	k, opts := slowKernel(t, 50_000, 3)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan gpa.JobResult, 1)
	go func() {
		done <- eng.Do(ctx, gpa.Job{
			Kind: gpa.JobMeasure, Kernel: k, Options: opts, WorkloadKey: "leak",
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	res := <-done
	if !errors.Is(res.Err, gpa.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", res.Err)
	}
	// The caller was the flight's only waiter, so detaching cancels the
	// shared run; its goroutine must unwind.
	waitForGoroutines(t, before)
	if st := eng.Stats(); st.Canceled == 0 {
		t.Errorf("stats.Canceled = 0 after a canceled job (%+v)", st)
	}
	// The global goroutine count can dip to the baseline while the
	// detached flight is still unwinding (unrelated goroutines from
	// other tests exiting), so poll the engine's own accounting rather
	// than reading it once; a genuinely stuck flight still fails here.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Inflight != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := eng.Stats(); st.Inflight != 0 {
		t.Errorf("stats.Inflight = %d after drain", st.Inflight)
	}
}

func TestCancelOneOfNCoalescedWaiters(t *testing.T) {
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	k, opts := slowKernel(t, 20_000, 4)
	job := gpa.Job{Kind: gpa.JobAdvise, Kernel: k, Options: opts, WorkloadKey: "coalesce"}

	const n = 4
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		defer cancels[i]()
	}
	results := make([]gpa.JobResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.Do(ctxs[i], job)
		}(i)
	}
	// Give all four time to pile onto one flight, then cancel one.
	time.Sleep(50 * time.Millisecond)
	cancels[0]()
	wg.Wait()

	if !errors.Is(results[0].Err, gpa.ErrCanceled) {
		t.Fatalf("canceled waiter err = %v, want ErrCanceled", results[0].Err)
	}
	var report string
	for i := 1; i < n; i++ {
		if results[i].Err != nil {
			t.Fatalf("waiter %d: %v (detaching one waiter must not kill the shared run)",
				i, results[i].Err)
		}
		text := results[i].Report.String()
		if report == "" {
			report = text
		} else if text != report {
			t.Errorf("waiter %d report differs", i)
		}
	}
	st := eng.Stats()
	if st.Runs != 1 {
		t.Errorf("runs = %d, want 1 (one shared simulation)", st.Runs)
	}
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("misses/coalesced = %d/%d, want 1/%d", st.Misses, st.Coalesced, n-1)
	}
	if st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
}

// TestRejoinAfterLastWaiterDetached pins the abandoned-flight fix: a
// fresh caller arriving while a fully-detached flight's run is still
// unwinding must start a new run, not inherit the cancellation error.
func TestRejoinAfterLastWaiterDetached(t *testing.T) {
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	k, opts := slowKernel(t, 20_000, 11)
	job := gpa.Job{Kind: gpa.JobMeasure, Kernel: k, Options: opts, WorkloadKey: "rejoin"}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan gpa.JobResult, 1)
	go func() { done <- eng.Do(ctx, job) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if res := <-done; !errors.Is(res.Err, gpa.ErrCanceled) {
		t.Fatalf("first caller err = %v, want ErrCanceled", res.Err)
	}
	// Immediately re-request with a live context: the abandoned run may
	// still be unwinding toward its cancel checkpoint, but this caller
	// must get a fresh, successful run.
	res := eng.Do(context.Background(), job)
	if res.Err != nil {
		t.Fatalf("rejoin err = %v, want a fresh successful run", res.Err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("rejoin cycles = %d", res.Cycles)
	}
}

func TestQueuedJobDeadlineExpires(t *testing.T) {
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	blockK, blockOpts := slowKernel(t, 50_000, 5)
	quickK, quickOpts := slowKernel(t, 64, 6)

	// Occupy the only worker...
	blockCtx, stopBlock := context.WithCancel(context.Background())
	defer stopBlock()
	blocked := make(chan gpa.JobResult, 1)
	go func() {
		blocked <- eng.Do(blockCtx, gpa.Job{
			Kind: gpa.JobMeasure, Kernel: blockK, Options: blockOpts, WorkloadKey: "block",
		})
	}()
	time.Sleep(50 * time.Millisecond)

	// ...then submit a job that cannot start before its deadline.
	res := eng.Do(context.Background(), gpa.Job{
		Kind: gpa.JobMeasure, Kernel: quickK, Options: quickOpts,
		WorkloadKey: "starved", Timeout: 30 * time.Millisecond,
	})
	if !errors.Is(res.Err, gpa.ErrCanceled) || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("queued job err = %v, want ErrCanceled wrapping context.DeadlineExceeded", res.Err)
	}
	stopBlock()
	<-blocked
	if st := eng.Stats(); st.Canceled == 0 {
		t.Errorf("stats.Canceled = 0, want > 0 (%+v)", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	// One worker, no queue: a second concurrent job is shed immediately.
	eng := gpa.NewEngine(&gpa.EngineOptions{Workers: 1, MaxQueue: -1})
	blockK, blockOpts := slowKernel(t, 50_000, 7)
	quickK, quickOpts := slowKernel(t, 64, 8)

	blockCtx, stopBlock := context.WithCancel(context.Background())
	defer stopBlock()
	blocked := make(chan gpa.JobResult, 1)
	go func() {
		blocked <- eng.Do(blockCtx, gpa.Job{
			Kind: gpa.JobMeasure, Kernel: blockK, Options: blockOpts, WorkloadKey: "hog",
		})
	}()
	// Wait until the hog actually holds the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	res := eng.Do(context.Background(), gpa.Job{
		Kind: gpa.JobMeasure, Kernel: quickK, Options: quickOpts, WorkloadKey: "shed",
	})
	if !errors.Is(res.Err, gpa.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", res.Err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %s, want fail-fast", elapsed)
	}
	stopBlock()
	<-blocked
	if st := eng.Stats(); st.Shed != 1 {
		t.Errorf("stats.Shed = %d, want 1", st.Shed)
	}
}

func TestEngineShutdown(t *testing.T) {
	// Graceful path: an idle engine drains immediately and rejects new
	// jobs afterwards.
	idle := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	if err := idle.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	k, opts := slowKernel(t, 64, 9)
	res := idle.Do(context.Background(), gpa.Job{Kind: gpa.JobMeasure, Kernel: k, Options: opts})
	if !errors.Is(res.Err, gpa.ErrShuttingDown) {
		t.Fatalf("post-shutdown err = %v, want ErrShuttingDown", res.Err)
	}

	// Hard-stop path: an expired drain deadline cancels the in-flight
	// simulation instead of waiting for it.
	busy := gpa.NewEngine(&gpa.EngineOptions{Workers: 1})
	slowK, slowOpts := slowKernel(t, 50_000, 10)
	done := make(chan gpa.JobResult, 1)
	go func() {
		done <- busy.Do(context.Background(), gpa.Job{
			Kind: gpa.JobMeasure, Kernel: slowK, Options: slowOpts, WorkloadKey: "drain",
		})
	}()
	time.Sleep(50 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := busy.Shutdown(drainCtx); !errors.Is(err, gpa.ErrCanceled) {
		t.Fatalf("hard-stop shutdown err = %v, want ErrCanceled", err)
	}
	r := <-done
	// The server aborted the work, not the caller: the in-flight job
	// fails as shutdown (503 shutting_down through gpad), never as a
	// client-side cancel.
	if !errors.Is(r.Err, gpa.ErrShuttingDown) {
		t.Fatalf("in-flight job err = %v, want ErrShuttingDown after hard stop", r.Err)
	}
	if st := busy.Stats(); st.Inflight != 0 {
		t.Errorf("inflight = %d after shutdown", st.Inflight)
	}
}
