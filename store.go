package gpa

import (
	"fmt"

	"gpa/internal/service"
	"gpa/internal/store"
)

// Store is a persistent per-stage artifact store: every pipeline stage
// the engine runs — simulation cycles, sampled profiles, ranked advice
// — is written as a digest-named, checksum-framed blob under one
// directory, so a restarted daemon (or a second engine pointed at the
// same directory) starts warm instead of re-paying every cold miss.
//
// The store is a cache with a strict corruption contract: blobs that
// are truncated, bit-flipped, written by a build with a different
// payload schema, or simply unreadable are treated as misses (counted
// as StoreCorrupt in EngineStats), recomputed, and rewritten — never
// surfaced as errors and never served as wrong bytes. Results served
// through a store are byte-identical to cold runs.
//
// A Store is safe for concurrent use by any number of engines and
// processes (writes are atomic renames). It holds no open file
// handles, so it needs no Close.
type Store struct {
	disk *store.Disk
}

// OpenStore opens (creating if needed) an artifact store rooted at
// dir. Blobs are laid out under a versioned subdirectory keyed by the
// engine's stage schema; opening a directory written by an
// incompatible build simply starts cold.
func OpenStore(dir string) (*Store, error) {
	d, err := service.OpenDisk(dir)
	if err != nil {
		return nil, fmt.Errorf("gpa: %w", err)
	}
	return &Store{disk: d}, nil
}

// Stats snapshots the store's hit/miss/put/corrupt counters.
func (s *Store) Stats() store.Stats { return s.disk.Stats() }

// Dir reports the store's resolved blob root directory.
func (s *Store) Dir() string { return s.disk.Dir() }

// Check probes whether the store directory is still writable (the
// signal gpad's /healthz surfaces: Put failures are deliberately
// silent, so an unwritable store otherwise just degrades to
// pass-through).
func (s *Store) Check() error { return s.disk.CheckWritable() }
