#!/usr/bin/env sh
# CI smoke test for the gpad advice service: build and start the
# server, POST a bundled kernel, assert a ranked advice response, POST
# it again and assert a cache hit with a byte-identical report, and
# check /statsz accounted one simulation. Run from the repo root.
set -eu

ADDR=${GPAD_ADDR:-127.0.0.1:8377}
BIN=$(mktemp -d)/gpad
go build -o "$BIN" ./cmd/gpad

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT INT TERM

# Wait for the health endpoint.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "gpad-smoke: server did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

REQ='{"bench":"rodinia/hotspot"}'
R1=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$REQ" "http://$ADDR/v1/advise")
R2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$REQ" "http://$ADDR/v1/advise")

echo "$R1" | grep -q '"cached": false' || {
    echo "gpad-smoke: first response was not a cache miss" >&2
    echo "$R1" >&2
    exit 1
}
# A ranked advice response: the Figure 8 report header plus at least
# one ranked entry.
echo "$R1" | grep -q 'GPA performance report for kernel' || {
    echo "gpad-smoke: no advice report in response" >&2
    exit 1
}
echo "$R1" | grep -q '"optimizer":' || {
    echo "gpad-smoke: no ranked advice entries in response" >&2
    exit 1
}
echo "$R2" | grep -q '"cached": true' || {
    echo "gpad-smoke: second response was not a cache hit" >&2
    echo "$R2" >&2
    exit 1
}

# The determinism contract: modulo the cached flag, the cold and cached
# response bodies are byte-identical.
N1=$(echo "$R1" | sed 's/"cached": false/"cached": X/')
N2=$(echo "$R2" | sed 's/"cached": true/"cached": X/')
if [ "$N1" != "$N2" ]; then
    echo "gpad-smoke: cached response differs from cold response" >&2
    exit 1
fi

# /statsz: one simulation, one hit.
STATS=$(curl -sf "http://$ADDR/statsz")
echo "$STATS" | grep -q '"runs": 1' || {
    echo "gpad-smoke: expected exactly one simulation, got: $STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"hits": 1' || {
    echo "gpad-smoke: expected one cache hit, got: $STATS" >&2
    exit 1
}

echo "gpad-smoke: OK (one simulation, cache hit byte-identical)"
