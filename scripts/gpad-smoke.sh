#!/usr/bin/env sh
# CI smoke test for the gpad advice service: build and start the
# server, POST a bundled kernel, assert a ranked advice response, POST
# it again and assert a cache hit with a byte-identical report, check
# /statsz accounted one simulation, then send SIGTERM and assert the
# daemon drains and exits cleanly. Run from the repo root.
set -eu

ADDR=${GPAD_ADDR:-127.0.0.1:8377}
TMP=$(mktemp -d)
BIN=$TMP/gpad
LOADGEN=$TMP/gpa-loadgen
LOG=$TMP/gpad.log
go build -o "$BIN" ./cmd/gpad
go build -o "$LOADGEN" ./cmd/gpa-loadgen

"$BIN" -addr "$ADDR" -log-format json >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT INT TERM

# Wait for the health endpoint.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "gpad-smoke: server did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

REQ='{"bench":"rodinia/hotspot"}'
R1=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$REQ" "http://$ADDR/v1/advise")
R2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$REQ" "http://$ADDR/v1/advise")

echo "$R1" | grep -q '"schemaVersion": "gpa-result/2"' || {
    echo "gpad-smoke: response is not a v2 structured result" >&2
    echo "$R1" >&2
    exit 1
}
echo "$R1" | grep -q '"cached": false' || {
    echo "gpad-smoke: first response was not a cache miss" >&2
    echo "$R1" >&2
    exit 1
}
# A ranked advice response: the Figure 8 report header plus at least
# one ranked entry.
echo "$R1" | grep -q 'GPA performance report for kernel' || {
    echo "gpad-smoke: no advice report in response" >&2
    exit 1
}
echo "$R1" | grep -q '"optimizer":' || {
    echo "gpad-smoke: no ranked advice entries in response" >&2
    exit 1
}
echo "$R2" | grep -q '"cached": true' || {
    echo "gpad-smoke: second response was not a cache hit" >&2
    echo "$R2" >&2
    exit 1
}

# The determinism contract: modulo the transport-level fields (cached
# flag, per-request trace ID), the cold and cached response bodies are
# byte-identical (a cache hit reports the original run's elapsedMs, so
# even the timing field matches).
N1=$(echo "$R1" | sed -e 's/"cached": false/"cached": X/' -e '/"traceId":/d')
N2=$(echo "$R2" | sed -e 's/"cached": true/"cached": X/' -e '/"traceId":/d')
if [ "$N1" != "$N2" ]; then
    echo "gpad-smoke: cached response differs from cold response" >&2
    exit 1
fi

# Typed errors map to status codes: an unknown architecture is a 400
# with a stable machine-readable code.
EC=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"bench":"rodinia/hotspot","arch":"sm_999"}' "http://$ADDR/v1/advise")
if [ "$EC" != "400" ]; then
    echo "gpad-smoke: unknown arch returned status $EC, want 400" >&2
    exit 1
fi
curl -s -X POST -H 'Content-Type: application/json' \
    -d '{"bench":"rodinia/hotspot","arch":"sm_999"}' "http://$ADDR/v1/advise" \
    | grep -q '"code": "unknown_arch"' || {
    echo "gpad-smoke: unknown arch error body missing code" >&2
    exit 1
}

# /statsz: one simulation, one hit.
STATS=$(curl -sf "http://$ADDR/statsz")
echo "$STATS" | grep -q '"runs": 1' || {
    echo "gpad-smoke: expected exactly one simulation, got: $STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"hits": 1' || {
    echo "gpad-smoke: expected one cache hit, got: $STATS" >&2
    exit 1
}

# Trace IDs: a client-supplied X-Request-Id is echoed in the response
# header and the result body.
TRACE=$(curl -sf -X POST -H 'Content-Type: application/json' -H 'X-Request-Id: smoke-trace-1' \
    -d "$REQ" -D - "http://$ADDR/v1/advise")
echo "$TRACE" | grep -qi '^X-Request-Id: smoke-trace-1' || {
    echo "gpad-smoke: trace ID not echoed in response header" >&2
    exit 1
}
echo "$TRACE" | grep -q '"traceId": "smoke-trace-1"' || {
    echo "gpad-smoke: trace ID not echoed in result body" >&2
    exit 1
}

# /metrics: a well-formed Prometheus scrape whose engine counters agree
# with /statsz, including the per-stage latency histograms and the
# per-route request counters (the unknown-arch 400 above must be
# counted under its stable code).
METRICS=$(curl -sf "http://$ADDR/metrics")
for SERIES in \
    'gpa_engine_runs_total 1' \
    'gpa_stage_duration_seconds_count{stage="simulate"} 1' \
    'gpa_stage_duration_seconds_count{stage="advise"} 1' \
    'gpa_http_requests_total{route="/v1/advise",status="400",code="unknown_arch"}' \
    'gpa_build_info' \
    'go_goroutines'; do
    echo "$METRICS" | grep -qF "$SERIES" || {
        echo "gpad-smoke: /metrics missing series: $SERIES" >&2
        echo "$METRICS" | head -50 >&2
        exit 1
    }
done

# Request logs are structured JSON with the trace ID attached.
grep -q '"trace":"smoke-trace-1"' "$LOG" || {
    echo "gpad-smoke: no structured log line for the traced request" >&2
    cat "$LOG" >&2
    exit 1
}

# Load harness: a short warm open-loop run must complete with zero
# errors and report sane percentiles.
LOADOUT=$TMP/loadgen.json
"$LOADGEN" -addr "http://$ADDR" -rps 20 -duration 2s -mix advise=1 -distinct 1 -out "$LOADOUT"
grep -q '"schemaVersion": "gpa-loadgen/2"' "$LOADOUT" || {
    echo "gpad-smoke: loadgen summary missing schema version" >&2
    cat "$LOADOUT" >&2
    exit 1
}
grep -q '"ok": 40' "$LOADOUT" || {
    echo "gpad-smoke: loadgen run did not complete 40/40 requests" >&2
    cat "$LOADOUT" >&2
    exit 1
}

# Tenant-fair admission: a second gpad with one worker and a QoS
# config. The over-quota tenant answers 429 quota_exceeded with a
# computed integer Retry-After, and a two-tenant loadgen run is
# accounted per tenant at /statsz. (The strict fairness ratio — a 10:1
# offered load completing ~1:1 — is pinned deterministically by the
# -race Go tests; the smoke asserts the serving surface end to end.)
QADDR=${GPAD_QOS_ADDR:-127.0.0.1:8378}
QLOG=$TMP/gpad-qos.log
QOSCFG=$TMP/qos.json
cat >"$QOSCFG" <<'EOF'
{
  "tenants": {
    "smoke-limited": {"ratePerSec": 0.001, "burst": 1},
    "smoke-a": {"weight": 1},
    "smoke-b": {"weight": 1}
  }
}
EOF
"$BIN" -addr "$QADDR" -workers 1 -qos-config "$QOSCFG" -log-format json >"$QLOG" 2>&1 &
QPID=$!
trap 'kill $PID $QPID 2>/dev/null || true' EXIT INT TERM
i=0
until curl -sf "http://$QADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "gpad-smoke: qos server did not become healthy" >&2
        cat "$QLOG" >&2
        exit 1
    fi
    sleep 0.2
done

# Burst 1 at a negligible refill rate: the first request is admitted,
# the second is shed before touching the cache or a worker.
curl -sf -X POST -H 'Content-Type: application/json' -H 'X-Tenant-Id: smoke-limited' \
    -d "$REQ" "http://$QADDR/v1/advise" >/dev/null || {
    echo "gpad-smoke: in-burst request for the metered tenant failed" >&2
    exit 1
}
R429=$(curl -s -D - -o "$TMP/429.json" -X POST -H 'Content-Type: application/json' \
    -H 'X-Tenant-Id: smoke-limited' -d "$REQ" "http://$QADDR/v1/advise")
echo "$R429" | grep -q ' 429' || {
    echo "gpad-smoke: over-quota request did not answer 429" >&2
    echo "$R429" >&2
    exit 1
}
RETRY=$(echo "$R429" | tr -d '\r' | grep -i '^Retry-After:' | awk '{print $2}')
case "$RETRY" in
'' | *[!0-9]*)
    echo "gpad-smoke: 429 Retry-After is not an integer: '$RETRY'" >&2
    exit 1
    ;;
esac
grep -q '"code": "quota_exceeded"' "$TMP/429.json" || {
    echo "gpad-smoke: 429 body missing quota_exceeded code" >&2
    cat "$TMP/429.json" >&2
    exit 1
}

# A 10:1 two-tenant mix: both tenants must be served and accounted
# under their own names at /statsz and in the loadgen summary.
FAIROUT=$TMP/fairness.json
"$LOADGEN" -addr "http://$QADDR" -rps 20 -duration 2s -mix advise=1 -distinct 50 \
    -tenants 'smoke-a=10,smoke-b=1' -scenario fairness-smoke -out "$FAIROUT"
grep -q '"tenantMix": "smoke-a=10,smoke-b=1"' "$FAIROUT" || {
    echo "gpad-smoke: loadgen summary missing the tenant mix" >&2
    cat "$FAIROUT" >&2
    exit 1
}
QSTATS=$(curl -sf "http://$QADDR/statsz")
for TENANT in smoke-a smoke-b; do
    SERVED=$(echo "$QSTATS" | sed -n "/\"$TENANT\"/,/}/p" | grep '"served"' | tr -dc '0-9')
    if [ -z "$SERVED" ] || [ "$SERVED" -eq 0 ]; then
        echo "gpad-smoke: tenant $TENANT has no served count at /statsz: $QSTATS" >&2
        exit 1
    fi
done
kill -TERM $QPID 2>/dev/null || true
wait $QPID || true
trap 'kill $PID 2>/dev/null || true' EXIT INT TERM

# Graceful shutdown: SIGTERM drains and exits 0 within the drain
# deadline, logging the completed drain.
kill -TERM $PID
STATUS=0
wait $PID || STATUS=$?
trap - EXIT INT TERM
if [ "$STATUS" -ne 0 ]; then
    echo "gpad-smoke: SIGTERM exit status $STATUS, want 0" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'shutdown complete' "$LOG" || {
    echo "gpad-smoke: no clean shutdown log line" >&2
    cat "$LOG" >&2
    exit 1
}

echo "gpad-smoke: OK (one simulation, byte-identical cache hit, typed errors, metrics, traced logs, loadgen, tenant quotas and fairness accounting, clean shutdown)"
