#!/usr/bin/env sh
# Fails when any Go package in the module is missing a package-level doc
# comment (a "// Package <name> ..." paragraph directly above its
# package clause in at least one file). Commands (package main) must
# carry a "// Command <name> ..." comment instead. This is the docs
# gate for the contributor documentation pass; run it from the repo
# root. go vet (run separately in CI) catches malformed comments; this
# catches absent ones.
set -eu

fail=0
for dir in . ./internal/* ./cmd/* ./examples/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    pkg=$(basename "$dir")
    [ "$dir" = "." ] && pkg=gpa
    ok=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        # Accept "// Package <pkg>" for libraries and "// Command <pkg>"
        # for mains; examples are mains documented by a leading comment
        # of any form.
        if grep -q "^// Package $pkg" "$f" || grep -q "^// Command $pkg" "$f"; then
            ok=1
            break
        fi
        case "$dir" in
        ./examples/*)
            if head -1 "$f" | grep -q '^//'; then
                ok=1
                break
            fi
            ;;
        esac
    done
    if [ "$ok" -eq 0 ]; then
        echo "missing package doc comment: $dir (want '// Package $pkg ...' or '// Command $pkg ...')" >&2
        fail=1
    fi
done
exit $fail
