// Benchmark harness regenerating the paper's evaluation artifacts (run
// with `go test -bench=. -benchmem`):
//
//   - BenchmarkTable3/<row> measures the full reproduction pipeline for
//     each Table 3 row (baseline measure + optimized measure + profile +
//     advise) and reports achieved/estimated speedups as custom metrics.
//   - BenchmarkFigure7/<app> measures the blame-graph construction and
//     reports the before/after pruning coverage of Figure 7.
//   - BenchmarkPruningAblation toggles the blamer's three pruning rules
//     individually (the design-choice ablation DESIGN.md calls out).
//   - BenchmarkApportionAblation toggles Equation 1's two weighting
//     heuristics.
//   - BenchmarkPipeline* measure the stages in isolation (simulator,
//     profiler, blamer, advisor).
package gpa_test

import (
	"context"
	"runtime"
	"testing"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/kernels"

	adv "gpa/internal/advisor"
)

func BenchmarkTable3(b *testing.B) {
	for _, row := range kernels.All() {
		row := row
		b.Run(row.App+"/"+row.Optimization, func(b *testing.B) {
			var out *kernels.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = row.Run(context.Background(), kernels.RunOptions{Seed: 11})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.Achieved, "achieved-x")
			b.ReportMetric(out.Estimated, "estimated-x")
			b.ReportMetric(out.Error*100, "error-%")
		})
	}
}

func BenchmarkFigure7(b *testing.B) {
	for _, row := range kernels.Rodinia() {
		row := row
		b.Run(row.App, func(b *testing.B) {
			var before, after float64
			var err error
			for i := 0; i < b.N; i++ {
				before, after, err = kernels.Coverage(context.Background(), row, kernels.RunOptions{Seed: 11})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(before, "coverage-before")
			b.ReportMetric(after, "coverage-after")
		})
	}
}

// pipelineFixture profiles one representative kernel once for the
// stage benchmarks.
func pipelineFixture(b *testing.B) (*gpa.Kernel, *gpa.Options) {
	b.Helper()
	row := kernels.Find("rodinia/hotspot")[0]
	k, wl, err := row.Base.Build()
	if err != nil {
		b.Fatal(err)
	}
	return k, &gpa.Options{Workload: wl, Seed: 11, SimSMs: 1}
}

// BenchmarkPipelineSimulate measures the raw simulator: the historical
// single-SM configuration plus the 4-SM configuration sequentially and
// with concurrent SM execution (results are identical; only wall-clock
// differs). SM4-seq vs SM4-par quantifies the worker-pool speedup
// tracked in BENCH_*.json.
func BenchmarkPipelineSimulate(b *testing.B) {
	cases := []struct {
		name                string
		simSMs, parallelism int
	}{
		{"SM1", 1, 1},
		{"SM4-seq", 4, 1},
		{"SM4-par", 4, runtime.GOMAXPROCS(0)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			k, opts := pipelineFixture(b)
			opts.SimSMs = tc.simSMs
			opts.Parallelism = tc.parallelism
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Measure(context.Background(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineProfile(b *testing.B) {
	k, opts := pipelineFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Profile(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAdvise(b *testing.B) {
	k, opts := pipelineFixture(b)
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.AdviseFromProfile(context.Background(), prof, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPruningAblation(b *testing.B) {
	k, opts := pipelineFixture(b)
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		o    blamer.Options
	}{
		{"all-rules", blamer.Options{}},
		{"no-opcode", blamer.Options{DisableOpcodePrune: true}},
		{"no-dominator", blamer.Options{DisableDominatorPrune: true}},
		{"no-latency", blamer.Options{DisableLatencyPrune: true}},
		{"no-pruning", blamer.Options{
			DisableOpcodePrune: true, DisableDominatorPrune: true, DisableLatencyPrune: true,
		}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var coverage float64
			for i := 0; i < b.N; i++ {
				ctx, err := adv.BuildContext(k.Module, prof, arch.VoltaV100(), tc.o)
				if err != nil {
					b.Fatal(err)
				}
				var weight, sum float64
				for _, fc := range ctx.Funcs {
					w := float64(len(fc.Blame.UseNodes)) + 1
					weight += w
					sum += fc.Blame.SingleDependencyCoverage(true) * w
				}
				coverage = sum / weight
			}
			b.ReportMetric(coverage, "coverage")
		})
	}
}

func BenchmarkApportionAblation(b *testing.B) {
	k, opts := pipelineFixture(b)
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		o    blamer.Options
	}{
		{"issue-and-path", blamer.Options{}},
		{"issue-only", blamer.Options{DisablePathWeight: true}},
		{"path-only", blamer.Options{DisableIssueWeight: true}},
		{"uniform", blamer.Options{DisableIssueWeight: true, DisablePathWeight: true}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := adv.BuildContext(k.Module, prof, arch.VoltaV100(), tc.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimatorAccuracy aggregates Table 3's bottom line: geomean
// achieved/estimated speedups and mean estimate error across all rows.
func BenchmarkEstimatorAccuracy(b *testing.B) {
	var geoA, geoE, meanErr float64
	for i := 0; i < b.N; i++ {
		var achieved, estimated []float64
		var errSum float64
		for _, row := range kernels.All() {
			out, err := row.Run(context.Background(), kernels.RunOptions{Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			achieved = append(achieved, out.Achieved)
			estimated = append(estimated, out.Estimated)
			errSum += out.Error
		}
		geoA = kernels.GeoMean(achieved)
		geoE = kernels.GeoMean(estimated)
		meanErr = errSum / float64(len(kernels.All()))
	}
	b.ReportMetric(geoA, "geomean-achieved-x")
	b.ReportMetric(geoE, "geomean-estimated-x")
	b.ReportMetric(meanErr*100, "mean-error-%")
}
