package gpa

import "gpa/internal/apierr"

// The typed error taxonomy of the v2 API. Every error returned across
// the public surface — Kernel loading and simulation, Engine jobs, and
// the gpad HTTP service — wraps exactly one of these sentinels, so
// callers classify failures with errors.Is/errors.As instead of string
// matching:
//
//	_, err := k.Advise(ctx, nil)
//	switch {
//	case errors.Is(err, gpa.ErrCanceled):     // ctx canceled or deadline hit
//	case errors.Is(err, gpa.ErrUnknownArch):  // bad -arch / profile arch
//	case errors.Is(err, gpa.ErrQueueFull):    // engine shed the job; retry
//	}
//
// Cancellation errors additionally retain the original context error,
// so errors.Is(err, context.DeadlineExceeded) distinguishes an expired
// deadline from an explicit cancel. cmd/gpad maps this same taxonomy
// to HTTP status codes.
var (
	// ErrUnknownArch: a GPU architecture name, alias, or CUBIN SM flag
	// that no registered model serves.
	ErrUnknownArch = apierr.ErrUnknownArch
	// ErrBadKernel: an invalid kernel or launch (missing entry function,
	// malformed CUBIN, empty grid, launch shape no SM can host).
	ErrBadKernel = apierr.ErrBadKernel
	// ErrAssemble: SASS assembly failed.
	ErrAssemble = apierr.ErrAssemble
	// ErrCanceled: the operation's context was canceled or its deadline
	// expired before the result was produced.
	ErrCanceled = apierr.ErrCanceled
	// ErrQueueFull: the engine's admission queue was at capacity and the
	// job was shed without running.
	ErrQueueFull = apierr.ErrQueueFull
	// ErrShuttingDown: the engine is draining and no longer admits jobs.
	ErrShuttingDown = apierr.ErrShuttingDown
	// ErrSimLimit: the simulation exceeded its runaway-cycle bound.
	ErrSimLimit = apierr.ErrSimLimit
	// ErrQuotaExceeded: the job's tenant is over its admission quota and
	// the job was shed before touching the cache or a worker. The error
	// carries a computed backoff; see QuotaError.
	ErrQuotaExceeded = apierr.ErrQuotaExceeded
	// ErrOverloaded: the engine's brownout controller is shedding this
	// job's lane to protect queue latency; retry later or on the
	// interactive lane.
	ErrOverloaded = apierr.ErrOverloaded
)

// CanceledError is the concrete type cancellation errors carry;
// errors.As(err, &ce) exposes the original context error as ce.Cause
// (context.Canceled for an explicit cancel, context.DeadlineExceeded
// for an expired deadline).
type CanceledError = apierr.CanceledError

// QuotaError is the concrete type quota rejections carry;
// errors.As(err, &qe) exposes the billed tenant and a computed
// RetryAfter hint (cmd/gpad forwards it as the Retry-After header on
// 429 responses).
type QuotaError = apierr.QuotaError
