package arch

// Bundled GPU models. Geometry comes from vendor whitepapers; latencies
// and throughputs follow published microbenchmarking studies (Jia et
// al., "Dissecting the NVIDIA Volta GPU Architecture via
// Microbenchmarking" and the Turing T4 sequel; Luo et al. for Ampere).
// Where a study reports a range, the values below pick the steady-state
// point the paper's stall model needs, not the best case.

// VoltaV100 returns the V100 (SM 70) model used throughout the paper's
// evaluation. This model is the repository's reference point: the
// bundled Table 3 artifacts are byte-stable on it.
func VoltaV100() *GPU {
	return &GPU{
		Name:               "Tesla V100-SXM2",
		SM:                 70,
		NumSMs:             80,
		SchedulersPerSM:    4,
		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     32,
		RegistersPerSM:     65536,
		SharedMemPerSM:     96 * 1024,
		MSHRsPerSM:         64,
		ICacheInstrs:       768, // 12 KiB of 128-bit words
		GlobalLatency:      420,
		GlobalLatencyTLB:   1100,
		SharedLatency:      24,
		ConstLatency:       8,
		ConstMissLatency:   120,
		LocalLatency:       84,
		AtomicLatency:      480,
		IFetchMissLatency:  32,
		BarrierCheckCycles: 4,

		ALULatency:      4,
		IMADWideLatency: 5,
		FP64Latency:     8,
		// Conversions run on the FP64/XU path on Volta: long latency.
		ConvertLatency:    14,
		ControlLatency:    2,
		MUFULatency:       24,
		IDIVLatency:       52,
		S2RLatency:        20,
		VarLatencyDefault: 16,
		MUFULatencyBound:  64,
		S2RLatencyBound:   32,
		// FP64 runs at half rate on V100, MUFU at quarter rate.
		FP64IssueCost:    2,
		MUFUIssueCost:    4,
		ConvertIssueCost: 2,
		GlobalIssueCost:  2,
		SharedIssueCost:  1,

		ICacheLineInstrs:     32,
		FetchSerializeCycles: 24,
		BlockLaunchOverhead:  25,
		UncoalescedPenalty:   28,
	}
}

// TuringT4 returns a Tesla T4 (SM 75) model. Turing keeps Volta's
// 4-scheduler SM and fixed 4-cycle ALU latency but halves the resident
// warp and block limits (32 warps, 16 blocks per SM), shrinks shared
// memory to 64 KiB, and ships only two FP64 units per SM (1/32 of FP32
// rate), which shows up as a long dispatch occupancy and dependent
// latency for FP64 work.
func TuringT4() *GPU {
	return &GPU{
		Name:               "Tesla T4",
		SM:                 75,
		NumSMs:             40,
		SchedulersPerSM:    4,
		WarpSize:           32,
		MaxWarpsPerSM:      32,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     16,
		RegistersPerSM:     65536,
		SharedMemPerSM:     64 * 1024,
		MSHRsPerSM:         32,
		ICacheInstrs:       1024, // 16 KiB L0/L1 instruction window
		GlobalLatency:      440,
		GlobalLatencyTLB:   1200,
		SharedLatency:      19,
		ConstLatency:       8,
		ConstMissLatency:   96,
		LocalLatency:       88,
		AtomicLatency:      500,
		IFetchMissLatency:  36,
		BarrierCheckCycles: 4,

		ALULatency:        4,
		IMADWideLatency:   5,
		FP64Latency:       40, // two FP64 units per SM
		ConvertLatency:    14,
		ControlLatency:    2,
		MUFULatency:       22,
		IDIVLatency:       48,
		S2RLatency:        20,
		VarLatencyDefault: 16,
		MUFULatencyBound:  64,
		S2RLatencyBound:   32,
		FP64IssueCost:     16, // 1/32 of FP32 rate
		MUFUIssueCost:     4,
		ConvertIssueCost:  2,
		GlobalIssueCost:   2,
		SharedIssueCost:   1,

		ICacheLineInstrs:     32,
		FetchSerializeCycles: 24,
		BlockLaunchOverhead:  25,
		UncoalescedPenalty:   28,
	}
}

// AmpereA100 returns an A100-SXM4 (SM 80) model. Ampere restores
// Volta's occupancy limits (64 warps, 32 blocks per SM), grows shared
// memory to 164 KiB and the SM count to 108, shortens global and
// conversion latencies, and keeps FP64 at half of FP32 rate.
func AmpereA100() *GPU {
	return &GPU{
		Name:               "A100-SXM4",
		SM:                 80,
		NumSMs:             108,
		SchedulersPerSM:    4,
		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     32,
		RegistersPerSM:     65536,
		SharedMemPerSM:     164 * 1024,
		MSHRsPerSM:         96,
		ICacheInstrs:       2048, // 32 KiB instruction window
		GlobalLatency:      340,
		GlobalLatencyTLB:   1000,
		SharedLatency:      22,
		ConstLatency:       8,
		ConstMissLatency:   110,
		LocalLatency:       70,
		AtomicLatency:      440,
		IFetchMissLatency:  28,
		BarrierCheckCycles: 4,

		ALULatency:        4,
		IMADWideLatency:   5,
		FP64Latency:       8,
		ConvertLatency:    10, // conversions leave the XU path on Ampere
		ControlLatency:    2,
		MUFULatency:       24,
		IDIVLatency:       52,
		S2RLatency:        20,
		VarLatencyDefault: 16,
		MUFULatencyBound:  64,
		S2RLatencyBound:   32,
		FP64IssueCost:     2,
		MUFUIssueCost:     4,
		ConvertIssueCost:  2,
		GlobalIssueCost:   2,
		SharedIssueCost:   1,

		ICacheLineInstrs:     32,
		FetchSerializeCycles: 24,
		BlockLaunchOverhead:  25,
		UncoalescedPenalty:   28,
	}
}
