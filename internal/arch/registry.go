package arch

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gpa/internal/apierr"
)

// Model is one registry entry: a GPU constructor keyed by a short
// canonical name, lookup aliases, and the CUBIN architecture flags it
// serves.
type Model struct {
	// Key is the canonical short name ("v100").
	Key string
	// Aliases are additional Lookup keys ("volta", "sm_70").
	Aliases []string
	// SMFlags are the CUBIN architecture flags resolved to this model.
	SMFlags []int
	// Build constructs a fresh GPU value.
	Build func() *GPU
}

var (
	regMu sync.RWMutex
	// registry holds the bundled models in presentation order (by SM
	// flag), followed by externally registered ones in registration
	// order.
	registry = []Model{
		{
			Key:     "v100",
			Aliases: []string{"volta", "volta-v100", "sm_70", "sm_72"},
			SMFlags: []int{70, 72},
			Build:   VoltaV100,
		},
		{
			Key:     "t4",
			Aliases: []string{"turing", "turing-t4", "sm_75"},
			SMFlags: []int{75},
			Build:   TuringT4,
		},
		{
			Key:     "a100",
			Aliases: []string{"ampere", "ampere-a100", "sm_80"},
			SMFlags: []int{80},
			Build:   AmpereA100,
		},
	}
)

// normalize canonicalizes a lookup key: lower case, surrounding space
// stripped.
func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a GPU model to the registry so Lookup, All, and
// ByArchFlag can resolve it. It returns an error when the key, an
// alias, or an SM flag collides with an existing entry, or when the
// entry is incomplete.
func Register(m Model) error {
	if m.Key == "" || m.Build == nil {
		//gpa:lint-allow apierrlint Register is a build-time configuration API; its errors reach developers, never the serving boundary
		return fmt.Errorf("arch: Register needs a key and a Build function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	keys := map[string]bool{}
	flags := map[int]bool{}
	for _, e := range registry {
		keys[normalize(e.Key)] = true
		keys[normalize(e.Build().Name)] = true
		for _, a := range e.Aliases {
			keys[normalize(a)] = true
		}
		for _, sm := range e.SMFlags {
			flags[sm] = true
		}
	}
	newKeys := append([]string{m.Key, m.Build().Name}, m.Aliases...)
	for _, k := range newKeys {
		if keys[normalize(k)] {
			//gpa:lint-allow apierrlint Register is a build-time configuration API; its errors reach developers, never the serving boundary
			return fmt.Errorf("arch: model key %q already registered", k)
		}
	}
	for _, sm := range m.SMFlags {
		if flags[sm] {
			//gpa:lint-allow apierrlint Register is a build-time configuration API; its errors reach developers, never the serving boundary
			return fmt.Errorf("arch: architecture flag sm_%d already registered", sm)
		}
	}
	registry = append(registry, m)
	return nil
}

// Lookup resolves an architecture by name: the canonical key ("a100"),
// an alias ("ampere", "sm_80"), or the model's full Name
// ("A100-SXM4"), case-insensitively. It returns a fresh GPU value.
func Lookup(name string) (*GPU, error) {
	want := normalize(name)
	regMu.RLock()
	defer regMu.RUnlock()
	if want == "" {
		return nil, fmt.Errorf("arch: %w: empty architecture name (known: %s)",
			apierr.ErrUnknownArch, knownNames())
	}
	for _, e := range registry {
		if normalize(e.Key) == want {
			return e.Build(), nil
		}
		for _, a := range e.Aliases {
			if normalize(a) == want {
				return e.Build(), nil
			}
		}
		if g := e.Build(); normalize(g.Name) == want {
			return g, nil
		}
	}
	return nil, fmt.Errorf("arch: %w: %q (known: %s)", apierr.ErrUnknownArch, name, knownNames())
}

// All returns a fresh GPU value for every registered model, ordered by
// SM flag then name, so sweeps across architectures are deterministic.
func All() []*GPU {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*GPU, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.Build())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SM != out[j].SM {
			return out[i].SM < out[j].SM
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the canonical short names of every registered model, in
// All() order.
func Names() []string {
	regMu.RLock()
	byKey := map[int]string{}
	for _, e := range registry {
		if len(e.SMFlags) > 0 {
			byKey[e.SMFlags[0]] = e.Key
		}
	}
	regMu.RUnlock()
	var names []string
	for _, g := range All() {
		if k, ok := byKey[g.SM]; ok {
			names = append(names, k)
		} else {
			names = append(names, normalize(g.Name))
		}
	}
	return names
}

// KeyOf returns the canonical registry key for a GPU model (matching by
// SM flag, falling back to the normalized model name).
func KeyOf(g *GPU) string {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, e := range registry {
		for _, sm := range e.SMFlags {
			if sm == g.SM {
				return e.Key
			}
		}
	}
	return normalize(g.Name)
}

// knownNames renders the lookup keys for error messages; callers hold
// regMu.
func knownNames() string {
	keys := make([]string, 0, len(registry))
	for _, e := range registry {
		keys = append(keys, e.Key)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// ByArchFlag resolves an architecture flag from a CUBIN to a GPU model.
func ByArchFlag(sm int) (*GPU, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, e := range registry {
		for _, f := range e.SMFlags {
			if f == sm {
				return e.Build(), nil
			}
		}
	}
	return nil, fmt.Errorf("arch: %w: unsupported flag sm_%d", apierr.ErrUnknownArch, sm)
}
