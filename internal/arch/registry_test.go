package arch

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	cases := []struct {
		name string
		sm   int
	}{
		{"v100", 70}, {"V100", 70}, {"volta", 70}, {"sm_70", 70},
		{"Tesla V100-SXM2", 70},
		{"t4", 75}, {"turing", 75}, {"sm_75", 75},
		{"a100", 80}, {"ampere", 80}, {"sm_80", 80}, {" A100 ", 80},
	}
	for _, tc := range cases {
		g, err := Lookup(tc.name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", tc.name, err)
			continue
		}
		if g.SM != tc.sm {
			t.Errorf("Lookup(%q).SM = %d, want %d", tc.name, g.SM, tc.sm)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	for _, name := range []string{"", "h100", "kepler", "sm_35"} {
		_, err := Lookup(name)
		if err == nil {
			t.Errorf("Lookup(%q) should fail", name)
			continue
		}
		if !strings.Contains(err.Error(), "a100") {
			t.Errorf("Lookup(%q) error should list known models, got: %v", name, err)
		}
	}
}

func TestAllCompleteness(t *testing.T) {
	gpus := All()
	if len(gpus) < 3 {
		t.Fatalf("All() returned %d models, want >= 3", len(gpus))
	}
	seenSM := map[int]bool{}
	for i, g := range gpus {
		if seenSM[g.SM] {
			t.Errorf("duplicate SM flag %d in All()", g.SM)
		}
		seenSM[g.SM] = true
		if i > 0 && gpus[i-1].SM > g.SM {
			t.Errorf("All() not ordered by SM flag: %d before %d", gpus[i-1].SM, g.SM)
		}
		// Every listed model must round-trip through the registry keys.
		key := KeyOf(g)
		back, err := Lookup(key)
		if err != nil {
			t.Errorf("Lookup(KeyOf(%s)=%q): %v", g.Name, key, err)
		} else if back.SM != g.SM {
			t.Errorf("Lookup(%q) resolves SM %d, want %d", key, back.SM, g.SM)
		}
		// And through its architecture flag.
		byFlag, err := ByArchFlag(g.SM)
		if err != nil {
			t.Errorf("ByArchFlag(%d): %v", g.SM, err)
		} else if byFlag.Name != g.Name {
			t.Errorf("ByArchFlag(%d) = %q, want %q", g.SM, byFlag.Name, g.Name)
		}
		// Models must be fully populated: a zero in any of these fields
		// would silently distort the simulator or the estimators.
		for field, v := range map[string]int{
			"NumSMs": g.NumSMs, "SchedulersPerSM": g.SchedulersPerSM,
			"WarpSize": g.WarpSize, "MaxWarpsPerSM": g.MaxWarpsPerSM,
			"MaxThreadsPerBlock": g.MaxThreadsPerBlock, "MaxBlocksPerSM": g.MaxBlocksPerSM,
			"RegistersPerSM": g.RegistersPerSM, "SharedMemPerSM": g.SharedMemPerSM,
			"MSHRsPerSM": g.MSHRsPerSM, "ICacheInstrs": g.ICacheInstrs,
			"GlobalLatency": g.GlobalLatency, "GlobalLatencyTLB": g.GlobalLatencyTLB,
			"SharedLatency": g.SharedLatency, "ConstLatency": g.ConstLatency,
			"ConstMissLatency": g.ConstMissLatency, "LocalLatency": g.LocalLatency,
			"AtomicLatency": g.AtomicLatency, "IFetchMissLatency": g.IFetchMissLatency,
			"BarrierCheckCycles": g.BarrierCheckCycles,
			"ALULatency":         g.ALULatency, "IMADWideLatency": g.IMADWideLatency,
			"FP64Latency": g.FP64Latency, "ConvertLatency": g.ConvertLatency,
			"ControlLatency": g.ControlLatency, "MUFULatency": g.MUFULatency,
			"IDIVLatency": g.IDIVLatency, "S2RLatency": g.S2RLatency,
			"VarLatencyDefault": g.VarLatencyDefault, "MUFULatencyBound": g.MUFULatencyBound,
			"S2RLatencyBound": g.S2RLatencyBound, "FP64IssueCost": g.FP64IssueCost,
			"MUFUIssueCost": g.MUFUIssueCost, "ConvertIssueCost": g.ConvertIssueCost,
			"GlobalIssueCost": g.GlobalIssueCost, "SharedIssueCost": g.SharedIssueCost,
			"ICacheLineInstrs":     g.ICacheLineInstrs,
			"FetchSerializeCycles": g.FetchSerializeCycles,
			"BlockLaunchOverhead":  g.BlockLaunchOverhead,
			"UncoalescedPenalty":   g.UncoalescedPenalty,
		} {
			if v <= 0 {
				t.Errorf("%s: field %s is %d, must be positive", g.Name, field, v)
			}
		}
	}
	if names := Names(); len(names) != len(gpus) {
		t.Errorf("Names() has %d entries, want %d", len(names), len(gpus))
	}
}

func TestRegisterCollisions(t *testing.T) {
	if err := Register(Model{}); err == nil {
		t.Error("empty Model must be rejected")
	}
	if err := Register(Model{Key: "v100", Build: VoltaV100}); err == nil {
		t.Error("duplicate key must be rejected")
	}
	if err := Register(Model{Key: "volta", Build: VoltaV100}); err == nil {
		t.Error("key colliding with an alias must be rejected")
	}
	if err := Register(Model{Key: "x100", Build: VoltaV100, SMFlags: []int{75}}); err == nil {
		t.Error("duplicate SM flag must be rejected")
	}
}

func TestRegisterNewModel(t *testing.T) {
	// A contributor-style model: registered, then resolvable by name,
	// alias, and flag, and listed by All().
	build := func() *GPU {
		g := VoltaV100()
		g.Name = "Hypothet H1"
		g.SM = 99
		return g
	}
	if err := Register(Model{
		Key: "h1", Aliases: []string{"hypothet"}, SMFlags: []int{99}, Build: build,
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// The registry is package-global; restore it so other tests see only
	// the bundled models.
	defer func() {
		regMu.Lock()
		registry = registry[:len(registry)-1]
		regMu.Unlock()
	}()
	for _, name := range []string{"h1", "hypothet", "Hypothet H1"} {
		if g, err := Lookup(name); err != nil || g.SM != 99 {
			t.Errorf("Lookup(%q) = %v, %v; want SM 99", name, g, err)
		}
	}
	if g, err := ByArchFlag(99); err != nil || g.Name != "Hypothet H1" {
		t.Errorf("ByArchFlag(99) = %v, %v", g, err)
	}
	found := false
	for _, g := range All() {
		if g.SM == 99 {
			found = true
		}
	}
	if !found {
		t.Error("registered model missing from All()")
	}
}

// TestPerArchOccupancyLimits pins the occupancy differences between the
// bundled models: the same launch saturates a T4 at half the resident
// warps of a V100/A100, and A100's larger shared memory admits more
// blocks per SM for shared-heavy kernels.
func TestPerArchOccupancyLimits(t *testing.T) {
	v100, _ := Lookup("v100")
	t4, _ := Lookup("t4")
	a100, _ := Lookup("a100")

	// 256 threads/block, light registers.
	ov, err := v100.ComputeOccupancy(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	ot, err := t4.ComputeOccupancy(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	oa, err := a100.ComputeOccupancy(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ov.WarpsPerSM != 64 || oa.WarpsPerSM != 64 {
		t.Errorf("V100/A100 warps = %d/%d, want 64", ov.WarpsPerSM, oa.WarpsPerSM)
	}
	if ot.WarpsPerSM != 32 || ot.BlocksPerSM != 4 {
		t.Errorf("T4 occupancy = %+v, want 32 warps in 4 blocks", ot)
	}

	// 48 KiB shared per block: 2 blocks on V100, 1 on T4, 3 on A100.
	for _, tc := range []struct {
		g      *GPU
		blocks int
	}{{v100, 2}, {t4, 1}, {a100, 3}} {
		occ, err := tc.g.ComputeOccupancy(64, 16, 48*1024)
		if err != nil {
			t.Fatal(err)
		}
		if occ.BlocksPerSM != tc.blocks || occ.Limiter != "shared" {
			t.Errorf("%s 48K shared occupancy = %+v, want %d shared-limited blocks",
				tc.g.Name, occ, tc.blocks)
		}
	}

	// 96 KiB shared per block fits a V100 and an A100 but not a T4.
	if _, err := t4.ComputeOccupancy(64, 16, 96*1024); err == nil {
		t.Error("96 KiB shared block must not fit a T4 SM")
	}
	if _, err := a100.ComputeOccupancy(64, 16, 96*1024); err != nil {
		t.Errorf("96 KiB shared block must fit an A100 SM: %v", err)
	}
}

// TestPerArchLatencyTables pins the model-vs-model latency shape the
// advisor depends on: T4's FP64 crawl, A100's faster conversions and
// global memory.
func TestPerArchLatencyTables(t *testing.T) {
	v100, _ := Lookup("v100")
	t4, _ := Lookup("t4")
	a100, _ := Lookup("a100")
	if t4.FP64IssueCost <= v100.FP64IssueCost {
		t.Error("T4 FP64 throughput must be far below V100")
	}
	if t4.FP64Latency <= v100.FP64Latency {
		t.Error("T4 FP64 latency must exceed V100")
	}
	if a100.ConvertLatency >= v100.ConvertLatency {
		t.Error("A100 conversions must be faster than V100")
	}
	if a100.GlobalLatency >= v100.GlobalLatency {
		t.Error("A100 global memory must be faster than V100")
	}
}
