package arch

import (
	"testing"

	"gpa/internal/sass"
)

func TestByArchFlag(t *testing.T) {
	g, err := ByArchFlag(70)
	if err != nil {
		t.Fatalf("ByArchFlag(70): %v", err)
	}
	if g.SM != 70 || g.SchedulersPerSM != 4 || g.WarpSize != 32 {
		t.Errorf("V100 geometry wrong: %+v", g)
	}
	if _, err := ByArchFlag(35); err == nil {
		t.Error("ByArchFlag(35) should fail: Kepler has 64-bit encoding")
	}
}

func TestFixedLatency(t *testing.T) {
	g := VoltaV100()
	cases := []struct {
		op   sass.Opcode
		mods sass.ModMask
		want int
	}{
		{sass.OpIADD, 0, 4},
		{sass.OpFFMA, 0, 4},
		{sass.OpDFMA, 0, 8},
		{sass.OpF2F, 0, 14}, // conversions are long-latency on Volta
		{sass.OpMOV, 0, 4},
		{sass.OpIMAD, sass.ModMask(0).With(sass.ModWide), 5},
	}
	for _, tc := range cases {
		if got := g.FixedLatency(tc.op, tc.mods); got != tc.want {
			t.Errorf("FixedLatency(%v) = %d, want %d", tc.op, got, tc.want)
		}
	}
}

func TestVariableLatencyBounds(t *testing.T) {
	g := VoltaV100()
	if got := g.VariableLatencyBound(sass.OpLDG); got != g.GlobalLatencyTLB {
		t.Errorf("LDG bound = %d, want TLB miss latency %d", got, g.GlobalLatencyTLB)
	}
	if g.VariableLatencyBound(sass.OpLDS) >= g.VariableLatencyBound(sass.OpLDG) {
		t.Error("shared memory bound must be far below global bound")
	}
	if g.LatencyBound(sass.OpLDG, 0) != g.GlobalLatencyTLB {
		t.Error("LatencyBound must dispatch to the variable bound for LDG")
	}
	if g.LatencyBound(sass.OpIADD, 0) != 4 {
		t.Error("LatencyBound must dispatch to the fixed latency for IADD")
	}
}

func TestIssueCost(t *testing.T) {
	g := VoltaV100()
	if g.IssueCost(sass.OpDFMA) <= g.IssueCost(sass.OpFFMA) {
		t.Error("FP64 must be lower throughput than FP32")
	}
	if g.IssueCost(sass.OpMUFU) <= g.IssueCost(sass.OpIADD) {
		t.Error("MUFU must be lower throughput than the integer pipe")
	}
}

func TestComputeOccupancy(t *testing.T) {
	g := VoltaV100()

	// 256 threads, light registers: limited by warps (64/8 = 8 blocks).
	occ, err := g.ComputeOccupancy(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 8 || occ.WarpsPerSM != 64 || occ.Limiter != "threads" {
		t.Errorf("256t occupancy = %+v", occ)
	}
	if occ.WarpsPerScheduler != 16 {
		t.Errorf("warps/scheduler = %d, want 16", occ.WarpsPerScheduler)
	}

	// 1024 threads using all the registers: register-limited.
	occ, err = g.ComputeOccupancy(1024, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Limiter != "registers" {
		t.Errorf("heavy-register kernel limiter = %q, want registers", occ.Limiter)
	}
	if occ.WarpsPerSM >= 64 {
		t.Errorf("register pressure must reduce warps, got %d", occ.WarpsPerSM)
	}

	// Shared-memory bound: 48 KiB per block allows only 2 blocks.
	occ, err = g.ComputeOccupancy(64, 16, 48*1024)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.Limiter != "shared" {
		t.Errorf("shared-bound occupancy = %+v", occ)
	}

	// Tiny blocks: block-count limited.
	occ, err = g.ComputeOccupancy(32, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 32 || occ.Limiter != "blocks" {
		t.Errorf("tiny-block occupancy = %+v", occ)
	}

	// Errors.
	if _, err := g.ComputeOccupancy(0, 0, 0); err == nil {
		t.Error("block size 0 must error")
	}
	if _, err := g.ComputeOccupancy(2048, 0, 0); err == nil {
		t.Error("block size 2048 must error")
	}
	if _, err := g.ComputeOccupancy(1024, 0, 200*1024); err == nil {
		t.Error("oversized shared memory must error")
	}
}
