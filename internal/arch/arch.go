// Package arch captures GPU architectural features: per-opcode
// instruction latencies (the fixed-latency values microbenchmarking
// studies report, and upper bounds for variable-latency instructions
// used by GPA's latency-based pruning rule), warp and scheduler geometry,
// and occupancy limits. The GPA static analyzer selects one of these
// tables from the architecture flag recorded in a CUBIN.
package arch

import (
	"fmt"

	"gpa/internal/sass"
)

// GPU describes one GPU model.
type GPU struct {
	Name string
	// SM is the architecture flag (70 = Volta).
	SM int
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SchedulersPerSM is the number of warp schedulers per SM (4 on
	// Volta).
	SchedulersPerSM int
	WarpSize        int
	// MaxWarpsPerSM bounds resident warps (64 on Volta).
	MaxWarpsPerSM int
	// MaxThreadsPerBlock is the launch limit (1024).
	MaxThreadsPerBlock int
	// MaxBlocksPerSM bounds resident blocks (32 on Volta).
	MaxBlocksPerSM int
	// RegistersPerSM is the register file size in 32-bit registers.
	RegistersPerSM int
	// SharedMemPerSM is shared memory per SM in bytes.
	SharedMemPerSM int
	// MSHRsPerSM bounds outstanding global memory transactions per SM;
	// when exhausted, further memory instructions stall with a memory
	// throttle reason.
	MSHRsPerSM int
	// ICacheInstrs is the per-SM instruction cache capacity in
	// instructions; jumps outside the cached window incur instruction
	// fetch stalls.
	ICacheInstrs int

	// Memory latencies in cycles.
	GlobalLatency      int // L2 hit-ish steady state
	GlobalLatencyTLB   int // TLB-miss upper bound (pruning bound)
	SharedLatency      int
	ConstLatency       int // constant cache hit
	ConstMissLatency   int
	LocalLatency       int // local = global space
	AtomicLatency      int
	IFetchMissLatency  int
	BarrierCheckCycles int // re-check interval at BAR.SYNC
}

// VoltaV100 returns the V100 (SM 70) model used throughout the paper's
// evaluation.
func VoltaV100() *GPU {
	return &GPU{
		Name:               "Tesla V100-SXM2",
		SM:                 70,
		NumSMs:             80,
		SchedulersPerSM:    4,
		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MaxThreadsPerBlock: 1024,
		MaxBlocksPerSM:     32,
		RegistersPerSM:     65536,
		SharedMemPerSM:     96 * 1024,
		MSHRsPerSM:         64,
		ICacheInstrs:       768, // 12 KiB of 128-bit words
		GlobalLatency:      420,
		GlobalLatencyTLB:   1100,
		SharedLatency:      24,
		ConstLatency:       8,
		ConstMissLatency:   120,
		LocalLatency:       84,
		AtomicLatency:      480,
		IFetchMissLatency:  32,
		BarrierCheckCycles: 4,
	}
}

// ByArchFlag resolves an architecture flag from a CUBIN to a GPU model.
func ByArchFlag(sm int) (*GPU, error) {
	switch sm {
	case 70, 72:
		return VoltaV100(), nil
	}
	return nil, fmt.Errorf("arch: unsupported architecture sm_%d", sm)
}

// FixedLatency returns the result latency in cycles of a fixed-latency
// instruction: the number of cycles before a dependent instruction may
// issue. Values follow published Volta microbenchmarking (Jia et al.).
func (g *GPU) FixedLatency(op sass.Opcode, mods sass.ModMask) int {
	switch op.Info().Class {
	case sass.ClassIntFixed:
		if op == sass.OpIMAD && mods.Has(sass.ModWide) {
			return 5
		}
		return 4
	case sass.ClassFP32Fixed:
		return 4
	case sass.ClassFP64:
		return 8
	case sass.ClassConvert:
		// Conversions run on the FP64/XU path on Volta: long latency.
		return 14
	case sass.ClassMisc:
		return 4
	case sass.ClassControl:
		return 2
	}
	// Variable-latency classes have no fixed latency; callers should
	// use VariableLatencyBound for pruning.
	return 0
}

// VariableLatencyBound returns the upper-bound latency for a
// variable-latency instruction, used by the latency-based pruning rule
// ("we use the TLB miss latency as the upper bound latency of global
// memory instructions").
func (g *GPU) VariableLatencyBound(op sass.Opcode) int {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemGeneric:
		return g.GlobalLatencyTLB
	case sass.ClassMemLocal:
		return g.GlobalLatencyTLB
	case sass.ClassMemShared:
		return g.SharedLatency * 3
	case sass.ClassMemConst:
		return g.ConstMissLatency
	case sass.ClassMUFU:
		return 64
	}
	if op == sass.OpS2R {
		return 32
	}
	return 0
}

// LatencyBound returns the pruning bound for any opcode: the fixed
// latency for fixed-latency instructions, the upper bound otherwise.
func (g *GPU) LatencyBound(op sass.Opcode, mods sass.ModMask) int {
	if op.Info().VariableLatency {
		return g.VariableLatencyBound(op)
	}
	return g.FixedLatency(op, mods)
}

// IssueCost returns the scheduler dispatch occupancy in cycles for one
// instruction: how long the issuing pipe is busy before another
// instruction of the same class can issue from this scheduler. It models
// throughput, not latency (e.g. FP64 on V100 runs at half rate, MUFU at
// quarter rate).
func (g *GPU) IssueCost(op sass.Opcode) int {
	switch op.Info().Class {
	case sass.ClassFP64:
		return 2
	case sass.ClassMUFU:
		return 4
	case sass.ClassConvert:
		return 2
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemGeneric:
		return 2
	case sass.ClassMemShared, sass.ClassMemConst:
		return 1
	}
	return 1
}

// Occupancy describes the resident-warp situation of a kernel launch on
// one SM.
type Occupancy struct {
	BlocksPerSM       int
	WarpsPerSM        int
	WarpsPerScheduler int
	// Limiter names the resource that bounds occupancy: "blocks",
	// "threads", "registers", or "shared".
	Limiter string
}

// ComputeOccupancy calculates resident blocks and warps per SM for a
// launch of blockThreads threads per block using regsPerThread registers
// and sharedPerBlock bytes of shared memory.
func (g *GPU) ComputeOccupancy(blockThreads, regsPerThread, sharedPerBlock int) (Occupancy, error) {
	if blockThreads <= 0 || blockThreads > g.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("arch: block size %d out of range (1-%d)",
			blockThreads, g.MaxThreadsPerBlock)
	}
	warpsPerBlock := (blockThreads + g.WarpSize - 1) / g.WarpSize
	limit := g.MaxBlocksPerSM
	limiter := "blocks"
	if byWarps := g.MaxWarpsPerSM / warpsPerBlock; byWarps < limit {
		limit, limiter = byWarps, "threads"
	}
	if regsPerThread > 0 {
		regsPerBlock := regsPerThread * warpsPerBlock * g.WarpSize
		if byRegs := g.RegistersPerSM / regsPerBlock; byRegs < limit {
			limit, limiter = byRegs, "registers"
		}
	}
	if sharedPerBlock > 0 {
		if byShared := g.SharedMemPerSM / sharedPerBlock; byShared < limit {
			limit, limiter = byShared, "shared"
		}
	}
	if limit == 0 {
		return Occupancy{}, fmt.Errorf("arch: kernel cannot fit a single block per SM")
	}
	warps := limit * warpsPerBlock
	return Occupancy{
		BlocksPerSM:       limit,
		WarpsPerSM:        warps,
		WarpsPerScheduler: (warps + g.SchedulersPerSM - 1) / g.SchedulersPerSM,
		Limiter:           limiter,
	}, nil
}
