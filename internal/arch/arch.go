// Package arch captures GPU architectural features as pure parameter
// tables: per-opcode instruction latencies (the fixed-latency values
// microbenchmarking studies report, and upper bounds for
// variable-latency instructions used by GPA's latency-based pruning
// rule), warp and scheduler geometry, occupancy limits, and the
// front-end costs the simulator charges (i-cache lines, fetch
// serialization, block launch overhead).
//
// In the Figure 2 pipeline the package sits under everything: the
// simulator (gpusim) reads geometry and latency tables to execute a
// kernel, the blamer reads latency bounds for its pruning rule
// (Section 4.3), and the advisor's estimators read occupancy limits for
// the parallel optimizers (Equations 6-10). Input is a model name or a
// CUBIN architecture flag; output is a *GPU value.
//
// The paper evaluates on Volta V100 only, but every consumer reads
// these tables through a *GPU value, so the pipeline is
// architecture-parametric. A registry (Lookup, All, Register, keyed by
// model name and SM flag) provides the bundled models — VoltaV100,
// TuringT4, AmpereA100 — and accepts external ones.
package arch

import (
	"fmt"

	"gpa/internal/apierr"
	"gpa/internal/sass"
)

// GPU describes one GPU model. All simulator- and estimator-visible
// architectural behaviour is a function of these fields; code outside
// this package must not hardcode per-architecture constants.
type GPU struct {
	Name string
	// SM is the architecture flag (70 = Volta, 75 = Turing,
	// 80 = Ampere).
	SM int
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SchedulersPerSM is the number of warp schedulers per SM (4 on
	// every bundled model).
	SchedulersPerSM int
	WarpSize        int
	// MaxWarpsPerSM bounds resident warps (64 on Volta/Ampere, 32 on
	// Turing).
	MaxWarpsPerSM int
	// MaxThreadsPerBlock is the launch limit (1024).
	MaxThreadsPerBlock int
	// MaxBlocksPerSM bounds resident blocks (32 on Volta/Ampere, 16 on
	// Turing).
	MaxBlocksPerSM int
	// RegistersPerSM is the register file size in 32-bit registers.
	RegistersPerSM int
	// SharedMemPerSM is shared memory per SM in bytes.
	SharedMemPerSM int
	// MSHRsPerSM bounds outstanding global memory transactions per SM;
	// when exhausted, further memory instructions stall with a memory
	// throttle reason.
	MSHRsPerSM int
	// ICacheInstrs is the per-SM instruction cache capacity in
	// instructions; jumps outside the cached window incur instruction
	// fetch stalls.
	ICacheInstrs int

	// Memory latencies in cycles.
	GlobalLatency      int // L2 hit-ish steady state
	GlobalLatencyTLB   int // TLB-miss upper bound (pruning bound)
	SharedLatency      int
	ConstLatency       int // constant cache hit
	ConstMissLatency   int
	LocalLatency       int // local = global space
	AtomicLatency      int
	IFetchMissLatency  int
	BarrierCheckCycles int // re-check interval at BAR.SYNC

	// Fixed-latency pipeline table: cycles before a dependent
	// instruction may issue.
	ALULatency      int // INT/FP32/misc fixed-latency ops
	IMADWideLatency int // IMAD.WIDE (64-bit result)
	FP64Latency     int
	ConvertLatency  int // F2F/F2I/I2F conversions
	ControlLatency  int // branches, EXIT, BAR

	// Steady-state latencies of variable-latency execution units (the
	// simulator's default completion latencies).
	MUFULatency int
	IDIVLatency int
	S2RLatency  int
	// VarLatencyDefault covers remaining variable-latency ops (SHFL,
	// ...).
	VarLatencyDefault int

	// Pruning upper bounds for variable-latency units (the blamer's
	// latency-based rule).
	MUFULatencyBound int
	S2RLatencyBound  int

	// Issue (dispatch) costs in cycles: how long the issuing pipe is
	// busy per instruction. These model throughput, not latency (e.g.
	// FP64 runs at half rate on V100/A100, 1/32 rate on T4).
	FP64IssueCost    int
	MUFUIssueCost    int
	ConvertIssueCost int
	GlobalIssueCost  int // global/local/generic memory
	SharedIssueCost  int // shared/constant memory

	// Front-end and block-machinery costs charged by the simulator.
	ICacheLineInstrs     int // i-cache line size in instructions
	FetchSerializeCycles int // shared fetch unit occupancy per miss
	BlockLaunchOverhead  int // cycles to rotate a fresh block in
	// UncoalescedPenalty is the serialization cost per extra memory
	// transaction of an uncoalesced access.
	UncoalescedPenalty int
}

// FixedLatency returns the result latency in cycles of a fixed-latency
// instruction: the number of cycles before a dependent instruction may
// issue. Values follow published microbenchmarking (Jia et al. for
// Volta and Turing, Luo et al. for Ampere).
func (g *GPU) FixedLatency(op sass.Opcode, mods sass.ModMask) int {
	switch op.Info().Class {
	case sass.ClassIntFixed:
		if op == sass.OpIMAD && mods.Has(sass.ModWide) {
			return g.IMADWideLatency
		}
		return g.ALULatency
	case sass.ClassFP32Fixed:
		return g.ALULatency
	case sass.ClassFP64:
		return g.FP64Latency
	case sass.ClassConvert:
		return g.ConvertLatency
	case sass.ClassMisc:
		return g.ALULatency
	case sass.ClassControl:
		return g.ControlLatency
	}
	// Variable-latency classes have no fixed latency; callers should
	// use VariableLatencyBound for pruning.
	return 0
}

// VariableLatencyBound returns the upper-bound latency for a
// variable-latency instruction, used by the latency-based pruning rule
// ("we use the TLB miss latency as the upper bound latency of global
// memory instructions").
func (g *GPU) VariableLatencyBound(op sass.Opcode) int {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemGeneric:
		return g.GlobalLatencyTLB
	case sass.ClassMemLocal:
		return g.GlobalLatencyTLB
	case sass.ClassMemShared:
		return g.SharedLatency * 3
	case sass.ClassMemConst:
		return g.ConstMissLatency
	case sass.ClassMUFU:
		return g.MUFULatencyBound
	}
	if op == sass.OpS2R {
		return g.S2RLatencyBound
	}
	return 0
}

// LatencyBound returns the pruning bound for any opcode: the fixed
// latency for fixed-latency instructions, the upper bound otherwise.
func (g *GPU) LatencyBound(op sass.Opcode, mods sass.ModMask) int {
	if op.Info().VariableLatency {
		return g.VariableLatencyBound(op)
	}
	return g.FixedLatency(op, mods)
}

// IssueCost returns the scheduler dispatch occupancy in cycles for one
// instruction: how long the issuing pipe is busy before another
// instruction of the same class can issue from this scheduler.
func (g *GPU) IssueCost(op sass.Opcode) int {
	switch op.Info().Class {
	case sass.ClassFP64:
		return g.FP64IssueCost
	case sass.ClassMUFU:
		return g.MUFUIssueCost
	case sass.ClassConvert:
		return g.ConvertIssueCost
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemGeneric:
		return g.GlobalIssueCost
	case sass.ClassMemShared, sass.ClassMemConst:
		return g.SharedIssueCost
	}
	return 1
}

// VariableBaseLatency returns the simulator's default completion
// latency for a variable-latency instruction (workloads can override it
// per site).
func (g *GPU) VariableBaseLatency(op sass.Opcode) int {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemGeneric:
		if op == sass.OpATOM || op == sass.OpRED {
			return g.AtomicLatency
		}
		return g.GlobalLatency
	case sass.ClassMemLocal:
		return g.LocalLatency
	case sass.ClassMemShared:
		return g.SharedLatency
	case sass.ClassMemConst:
		return g.ConstLatency
	case sass.ClassMUFU:
		if op == sass.OpIDIV {
			return g.IDIVLatency
		}
		return g.MUFULatency
	}
	if op == sass.OpS2R {
		return g.S2RLatency
	}
	return g.VarLatencyDefault
}

// Occupancy describes the resident-warp situation of a kernel launch on
// one SM.
type Occupancy struct {
	BlocksPerSM       int
	WarpsPerSM        int
	WarpsPerScheduler int
	// Limiter names the resource that bounds occupancy: "blocks",
	// "threads", "registers", or "shared".
	Limiter string
}

// ComputeOccupancy calculates resident blocks and warps per SM for a
// launch of blockThreads threads per block using regsPerThread registers
// and sharedPerBlock bytes of shared memory.
func (g *GPU) ComputeOccupancy(blockThreads, regsPerThread, sharedPerBlock int) (Occupancy, error) {
	if blockThreads <= 0 || blockThreads > g.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("arch: %w: block size %d out of range (1-%d)",
			apierr.ErrBadKernel, blockThreads, g.MaxThreadsPerBlock)
	}
	warpsPerBlock := (blockThreads + g.WarpSize - 1) / g.WarpSize
	limit := g.MaxBlocksPerSM
	limiter := "blocks"
	if byWarps := g.MaxWarpsPerSM / warpsPerBlock; byWarps < limit {
		limit, limiter = byWarps, "threads"
	}
	if regsPerThread > 0 {
		regsPerBlock := regsPerThread * warpsPerBlock * g.WarpSize
		if byRegs := g.RegistersPerSM / regsPerBlock; byRegs < limit {
			limit, limiter = byRegs, "registers"
		}
	}
	if sharedPerBlock > 0 {
		if byShared := g.SharedMemPerSM / sharedPerBlock; byShared < limit {
			limit, limiter = byShared, "shared"
		}
	}
	if limit == 0 {
		return Occupancy{}, fmt.Errorf("arch: %w: kernel cannot fit a single block per SM", apierr.ErrBadKernel)
	}
	warps := limit * warpsPerBlock
	return Occupancy{
		BlocksPerSM:       limit,
		WarpsPerSM:        warps,
		WarpsPerScheduler: (warps + g.SchedulersPerSM - 1) / g.SchedulersPerSM,
		Limiter:           limiter,
	}, nil
}
