// Package ctxbad seeds the ctxfirst violation classes: a trailing
// context parameter, and an exported context-less function that
// synthesizes its own context.
package ctxbad

import "context"

// Lookup takes its context second.
func Lookup(name string, ctx context.Context) error {
	return ctx.Err()
}

// Run is exported, blocking, and mints its own context.
func Run() error {
	ctx := context.Background()
	return ctx.Err()
}

// helper is unexported, so its synthesized context is legal.
func helper() error {
	return context.TODO().Err()
}

// trailing exercises the FuncLit path.
var trailing = func(n int, ctx context.Context) error {
	return ctx.Err()
}

// Good is the contract-conforming shape.
func Good(ctx context.Context, n int) error {
	return ctx.Err()
}
