module ctx.example

go 1.24
