// Package detbad seeds every detlint violation class plus the legal
// idioms the analyzer must stay quiet about.
package detbad

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Salt reads process-seeded randomness through a banned import.
func Salt() int { return rand.Int() }

// Home reads the environment.
func Home() string { return os.Getenv("HOME") }

// Keys leaks map iteration order: the appended slice is returned
// without a downstream ordering call.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the legal collect-then-sort idiom: ordering
// responsibility is handed to sort.Strings after the loop.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump streams map iteration order into a Write-family sink.
func Dump(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k)
	}
}

// Show prints in map iteration order.
func Show(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// Total aggregates over a map, which is order-independent and legal.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
