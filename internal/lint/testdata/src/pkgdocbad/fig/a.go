// Package fig documents itself correctly but never states where it
// sits in the paper's pipeline figure.
package fig

// F exists so the package is non-empty.
func F() {}
