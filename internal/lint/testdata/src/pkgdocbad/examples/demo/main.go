// This free-form comment is enough for an example main.
package main

func main() {}
