module pkgdoc.example

go 1.24
