// Package something documents the wrong name.
package wrongname

// F exists so the package is non-empty.
func F() {}
