// Package tool uses the library form on a command.
package main

func main() {}
