package pkgdocbad

// Root has code but the package has no doc comment.
func Root() {}
