module apierr.example

go 1.24
