// Package apierrbad seeds the apierrlint violation classes: bare
// errors.New and unwrapped fmt.Errorf escaping through returns.
package apierrbad

import (
	"errors"
	"fmt"
)

// errBase at package level is legal: sentinels are declared with
// errors.New, the rule bites only at return statements.
var errBase = errors.New("base")

// Bare returns an unclassifiable error.
func Bare() error {
	return errors.New("boom")
}

// Unwrapped formats without %w.
func Unwrapped(n int) error {
	return fmt.Errorf("bad value %d", n)
}

// Wrapped keeps the taxonomy tag and is legal.
func Wrapped(err error) error {
	return fmt.Errorf("wrapped: %w", err)
}

// Sentinel returns a pre-tagged value, which is legal.
func Sentinel() error {
	return errBase
}
