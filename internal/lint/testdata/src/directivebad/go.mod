module directive.example

go 1.24
