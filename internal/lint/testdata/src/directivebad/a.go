// Package directivebad exercises the gpa:lint-allow machinery: a
// directive that suppresses a finding (counted as a waiver), one
// naming an unknown analyzer (malformed), one with no reason
// (malformed), and one with nothing to suppress (unused).
package directivebad

import "time"

// Waived reads the clock under an audited exception; the directive on
// the declaration covers the whole function.
//
//gpa:lint-allow detlint fixture waiver: this timestamp never reaches a digest
func Waived() int64 { return time.Now().UnixNano() }

// Unknown names an analyzer that does not exist, so the finding below
// it survives and the directive is diagnosed as malformed.
func Unknown() int64 {
	//gpa:lint-allow nosuchlint bogus reason
	return time.Now().UnixNano()
}

// NoReason omits the required reason.
func NoReason() int64 {
	//gpa:lint-allow detlint
	return time.Now().UnixNano()
}

// Clean has nothing to suppress, so its directive is flagged as
// unused.
//
//gpa:lint-allow detlint stale waiver kept after the violation was fixed
func Clean() {}
