// Package digestbad seeds every digestfields violation class: an
// unclassified field, an exclusion contradicted by a read, a stale
// exclusion, and config entries that no longer resolve.
package digestbad

import (
	"encoding/json"
	"fmt"
)

// Request mimics a key-feeding request struct.
type Request struct {
	Kind  string // digested
	Seed  int64  // digested
	Trace string // excluded, never read: legal
	Skew  int    // excluded but read inside digest: contradiction
	Extra int    // neither digested nor excluded: violation
}

// Model is digested wholesale through json.Marshal.
type Model struct {
	Name string
	SM   int
}

func (r *Request) digest() string {
	return fmt.Sprintf("%s|%d|%d", r.Kind, r.Seed, r.Skew)
}

func modelHash(m Model) []byte {
	b, _ := json.Marshal(m)
	return b
}
