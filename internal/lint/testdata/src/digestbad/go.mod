module digest.example

go 1.24
