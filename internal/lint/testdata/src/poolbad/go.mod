module pool.example

go 1.24
