// Package poolbad seeds the poolpair violation classes: a pool that
// is never refilled, a dropped Get result, and a drawn value that
// stays local without a Put — next to the legal pairing and
// ownership-transfer shapes.
package poolbad

import "sync"

type buf struct{ n int }

// orphan is drawn from but never refilled anywhere in the package.
var orphan = sync.Pool{New: func() any { return new(buf) }}

// paired has Puts, so only per-function misuse is flagged.
var paired = sync.Pool{New: func() any { return new(buf) }}

// Drop discards the drawn value outright.
func Drop() {
	_ = orphan.Get()
}

// Leak binds the drawn value but neither Puts nor transfers it.
func Leak() int {
	b := paired.Get().(*buf)
	return b.n
}

// Good pairs the Get with a deferred Put.
func Good() {
	b := paired.Get().(*buf)
	defer paired.Put(b)
	b.n++
}

// Transfer hands ownership to the caller, who releases it.
func Transfer() *buf {
	return paired.Get().(*buf)
}

// Release is the caller-side Put of a transferred value.
func Release(b *buf) {
	b.n = 0
	paired.Put(b)
}
