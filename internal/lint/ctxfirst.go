package lint

import (
	"go/ast"
)

// CtxConfig scopes the ctxfirst analyzer.
type CtxConfig struct {
	// NoSyntheticCtx lists the packages whose exported API simulates or
	// blocks: an exported function there that takes no context but
	// synthesizes one (context.Background/TODO) inside is hiding a
	// cancellation boundary from its caller and must take ctx as its
	// first parameter instead.
	NoSyntheticCtx []string
}

// CtxFirst builds the ctxfirst analyzer, the static form of the v2
// cancellation contract: a context parameter is always first (so every
// call site reads uniformly and no API grows a trailing, optional-
// looking context), and exported simulating/blocking API does not mint
// its own background context.
func CtxFirst(cfg CtxConfig) *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context is the first parameter; exported blocking API never synthesizes its own context",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		noSynth := hasPath(cfg.NoSyntheticCtx, pass.Pkg.Path)
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var params *ast.FieldList
				var body *ast.BlockStmt
				exported := false
				switch n := n.(type) {
				case *ast.FuncDecl:
					params, body = n.Type.Params, n.Body
					exported = n.Name.IsExported()
				case *ast.FuncLit:
					params, body = n.Type.Params, n.Body
				default:
					return true
				}
				pos := 0
				hasCtx := false
				for _, field := range params.List {
					width := len(field.Names)
					if width == 0 {
						width = 1
					}
					tv, ok := info.Types[field.Type]
					if ok && isContext(tv.Type) {
						hasCtx = true
						if pos != 0 {
							pass.Reportf(field.Pos(), "context.Context must be the first parameter")
						}
					}
					pos += width
				}
				if noSynth && exported && !hasCtx && body != nil {
					reportSyntheticCtx(pass, body)
				}
				return true
			})
		}
	}
	return a
}

// reportSyntheticCtx flags context.Background/TODO calls inside an
// exported context-less function of a blocking package.
func reportSyntheticCtx(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFunc(info, call); ok && path == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "exported blocking API synthesizes context.%s; take ctx as the first parameter instead", name)
		}
		return true
	})
}
