package lint

import (
	"go/ast"
	"strings"
)

// APIErrConfig scopes the apierrlint analyzer.
type APIErrConfig struct {
	// Packages lists the taxonomy-origin packages: the places the error
	// taxonomy says failures are tagged at the point of origin, so
	// everything they return is classifiable with errors.Is at the
	// service/HTTP boundary.
	Packages []string
}

// APIErrLint builds the apierrlint analyzer: inside taxonomy-origin
// packages, no bare errors.New and no fmt.Errorf without a %w verb may
// escape through a return statement. A bare constructor there mints an
// unclassifiable error — the HTTP layer would fall through to its
// generic 500 mapping — while a %w wrap keeps whatever taxonomy tag
// the chain already carries.
func APIErrLint(cfg APIErrConfig) *Analyzer {
	a := &Analyzer{
		Name: "apierrlint",
		Doc:  "taxonomy-origin packages return only apierr-classifiable errors",
	}
	a.Run = func(pass *Pass) {
		if !hasPath(cfg.Packages, pass.Pkg.Path) {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					call, ok := ast.Unparen(res).(*ast.CallExpr)
					if !ok {
						continue
					}
					path, name, ok := pkgFunc(info, call)
					if !ok {
						continue
					}
					switch {
					case path == "errors" && name == "New":
						pass.Reportf(call.Pos(), "bare errors.New escapes a taxonomy-origin package; wrap an apierr sentinel with fmt.Errorf(\"...: %%w\", ...) instead")
					case path == "fmt" && name == "Errorf" && len(call.Args) > 0:
						if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
							pass.Reportf(call.Pos(), "fmt.Errorf without %%w escapes a taxonomy-origin package; wrap an apierr sentinel so the boundary can classify it")
						}
					}
				}
				return true
			})
		}
	}
	return a
}
