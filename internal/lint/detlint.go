package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// DetConfig scopes the determinism analyzer.
type DetConfig struct {
	// Critical maps determinism-critical import paths to the file base
	// names in scope; a nil or empty slice puts the whole package in
	// scope. Everything the simulator's bit-identical-output oracle and
	// the digest goldens depend on belongs here.
	Critical map[string][]string
}

// forbidden sources of nondeterminism inside critical code. Imports
// are banned wholesale (any use of a process-random or entropy source
// poisons reproducibility); time and environment reads are banned per
// call so unrelated uses of those packages (durations, file modes)
// stay legal.
var (
	detBannedImports = map[string]string{
		"math/rand":    "process-seeded randomness",
		"math/rand/v2": "process-seeded randomness",
		"crypto/rand":  "entropy source",
	}
	detBannedCalls = map[string]map[string]string{
		"time": {"Now": "wall clock", "Since": "wall clock", "Until": "wall clock"},
		"os":   {"Getenv": "environment read", "LookupEnv": "environment read", "Environ": "environment read"},
	}
)

// DetLint builds the detlint analyzer: determinism-critical packages
// must not read the clock, randomness, or the environment, and must
// not let map iteration order reach ordered output (appends that
// escape the loop, Write-style sinks, printed output). This is the
// static form of the runtime determinism oracle: simulator results and
// digests must be bit-identical across runs, parallelism levels, and
// machines.
func DetLint(cfg DetConfig) *Analyzer {
	a := &Analyzer{
		Name: "detlint",
		Doc:  "no clock, randomness, environment, or map-order leaks in determinism-critical packages",
	}
	a.Run = func(pass *Pass) {
		files, ok := cfg.Critical[pass.Pkg.Path]
		if !ok {
			return
		}
		for _, f := range pass.Pkg.Files {
			if len(files) > 0 && !hasPath(files, filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)) {
				continue
			}
			detFile(pass, f)
		}
	}
	return a
}

func detFile(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if why, banned := detBannedImports[path]; banned {
			pass.Reportf(imp.Pos(), "import of %s (%s) in determinism-critical package", path, why)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if path, name, ok := pkgFunc(info, call); ok {
				if why, banned := detBannedCalls[path][name]; banned {
					pass.Reportf(call.Pos(), "call to %s.%s (%s) in determinism-critical package", path, name, why)
				}
			}
		}
		return true
	})
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			detRanges(pass, fd.Body)
		}
	}
}

// detRanges flags map iterations inside body that feed ordered output.
func detRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := orderedSink(pass, rng, body); sink != "" {
			pass.Reportf(rng.Pos(), "map iteration feeds ordered output via %s; iterate a sorted key slice instead", sink)
		}
		return true
	})
}

// orderedSink scans a map-range body for order-sensitive sinks: an
// append whose destination outlives the loop, a Write-family method
// call (io.Writer, hash.Hash, strings.Builder, bytes.Buffer all spell
// their order-sensitive entry point Write*), or printed output. Pure
// aggregation over a map (sums, maxima, building another map) is
// order-independent and stays legal, and so is the collect-then-sort
// idiom: an append whose destination is later handed to a call after
// the loop (sort.Slice(keys, ...), or a helper that sorts) has its
// ordering fixed downstream, so responsibility moves there.
func orderedSink(pass *Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) string {
	info := pass.Pkg.Info
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
				dst := rootIdent(call.Args[0])
				if (dst == nil || declaredOutside(info, dst, rng)) && !handedOff(info, dst, rng, enclosing) {
					sink = "append to " + exprString(call.Args[0])
					return false
				}
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				// Only method calls count; pkg.Write package functions
				// resolve to a PkgName root and are skipped.
				if _, isPkg := info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
					sink = fmt.Sprintf("%s.%s", exprString(sel.X), sel.Sel.Name)
					return false
				}
			}
		}
		if path, name, ok := pkgFunc(info, call); ok && path == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				sink = "fmt." + name
				return false
			}
		}
		return true
	})
	return sink
}

// handedOff reports whether the append destination rooted at dst is
// passed to some call after the range loop ends (the collect-then-sort
// idiom; the callee owns the ordering from there).
func handedOff(info *types.Info, dst *ast.Ident, rng *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	if dst == nil {
		return false
	}
	obj := info.Uses[dst]
	if obj == nil {
		obj = info.Defs[dst]
	}
	if obj == nil {
		return false
	}
	off := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if off {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		for _, arg := range call.Args {
			if r := rootIdent(arg); r != nil && (info.Uses[r] == obj || info.Defs[r] == obj) {
				off = true
			}
		}
		return true
	})
	return off
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x[i].g → x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object is declared outside the
// node's source span (so writes to it survive the loop).
func declaredOutside(info *types.Info, id *ast.Ident, n ast.Node) bool {
	if id == nil {
		return true
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

// exprString renders a short source form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "expr"
}
