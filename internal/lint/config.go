package lint

// This file is the repo's contract table: the concrete configuration
// binding each analyzer to the runtime invariant it mechanizes. When a
// contract widens (a new determinism-critical package, a new field on
// service.Request, a new taxonomy-origin package), this is the one
// place to extend — and digestfields/detlint diagnostics will demand
// it, because an unclassified addition is a build failure.

// DefaultSuite returns the analyzer suite for this repository, the
// set cmd/gpa-lint runs in CI.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{
		DetLint(DetConfig{
			// The packages whose outputs the determinism oracle
			// (TestParallelMatchesSequential, drift-check goldens) pins
			// bit-identical: everything from SASS bytes to ranked advice.
			// service is critical only on its key-derivation files; its
			// engine legitimately reads the clock for ElapsedMS and stage
			// latency histograms, which are recorded outside every digest.
			Critical: map[string][]string{
				"gpa/internal/gpusim":    nil,
				"gpa/internal/profiler":  nil,
				"gpa/internal/blamer":    nil,
				"gpa/internal/advisor":   nil,
				"gpa/internal/structure": nil,
				"gpa/internal/sampling":  nil,
				"gpa/internal/arch":      nil,
				"gpa/internal/store":     nil,
				"gpa/internal/cfg":       nil,
				"gpa/internal/cubin":     nil,
				"gpa/internal/sass":      nil,
				"gpa/internal/service":   {"digest.go", "stages.go"},
			},
		}),
		DigestFields(DigestConfig{
			Pkg: "gpa/internal/service",
			// A field read anywhere in the result-digest or stage-key
			// derivation counts as digested; gpuModelHash canonically
			// JSON-encodes the whole arch.GPU table, covering its fields
			// wholesale.
			Funcs: []string{"Request.digest", "Request.stageKeys", "gpuModelHash"},
			Structs: []TrackedStruct{
				{
					Type: "gpa/internal/service.Request",
					Exclude: map[string]string{
						// Transport- and execution-only state. Each entry is
						// a proof obligation: adding a field here asserts it
						// can never change result bytes.
						"Prog":        "derived cache of Module; the digest covers the module content it derives from",
						"Parallelism": "simulator results are bit-identical at every parallelism level (TestParallelMatchesSequential)",
						"Timeout":     "deadlines abort work; they never alter a completed result",
						"TraceID":     "transport-only observability; pinned by TestTraceIDExcludedFromDigest",
						"Tenant":      "admission metadata: decides who runs next and who is billed, never what a run computes; two tenants share one cache entry and one flight — pinned by TestTenantExcludedFromDigest",
						"Lane":        "admission priority; scheduling order cannot change a completed result — pinned by TestTenantExcludedFromDigest",
					},
				},
				{Type: "gpa/internal/blamer.Options"},
				{Type: "gpa/internal/gpusim.LaunchConfig"},
				{Type: "gpa/internal/gpusim.Dim3"},
				{Type: "gpa/internal/arch.GPU"},
			},
		}),
		CtxFirst(CtxConfig{
			// The packages whose exported API simulates or blocks; the v2
			// cancellation contract (ctx-first, checkpointed simulator)
			// lives here.
			NoSyntheticCtx: []string{
				"gpa",
				"gpa/internal/gpusim",
				"gpa/internal/profiler",
				"gpa/internal/service",
				"gpa/internal/kernels",
			},
		}),
		APIErrLint(APIErrConfig{
			// Where the taxonomy says errors are tagged at origin: arch
			// lookup, simulator validation/livelock, the serving engine,
			// and the root package (assembly and kernel loading).
			Packages: []string{
				"gpa",
				"gpa/internal/arch",
				"gpa/internal/gpusim",
				"gpa/internal/service",
			},
		}),
		PoolPair(),
		PkgDoc(PkgDocConfig{
			Figure2Prefixes: []string{"gpa/internal/"},
			ExamplePrefixes: []string{"gpa/examples/"},
		}),
	}
}
