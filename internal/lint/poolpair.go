package lint

import (
	"go/ast"
	"go/types"
)

// PoolPair builds the poolpair analyzer, the static form of the
// pooling ownership contract: every sync.Pool that is drawn from must
// also be refilled somewhere in the same package (a Get with no Put
// anywhere is a pool in name only — pure allocation with bookkeeping
// overhead), and a value drawn from a pool must either be released in
// the same function or escape it (returned, stored, or passed on, i.e.
// ownership transferred to a caller who releases it, the pattern
// Program.Recycle and profiler.Recycle follow). A drawn value that
// provably stays local without a Put is a leak on every path.
func PoolPair() *Analyzer {
	a := &Analyzer{
		Name: "poolpair",
		Doc:  "every sync.Pool Get is paired with a Put or an ownership transfer",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info

		// Package-level pairing: collect the pool objects (the field or
		// variable a Get/Put selector roots at) used by each verb.
		gets := map[types.Object][]ast.Node{}
		puts := map[types.Object]bool{}
		var funcs []*ast.FuncDecl
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					funcs = append(funcs, fd)
				}
			}
		}
		for _, fd := range funcs {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj, verb := poolCall(info, call)
				if obj == nil {
					return true
				}
				if verb == "Get" {
					gets[obj] = append(gets[obj], call)
				} else {
					puts[obj] = true
				}
				return true
			})
		}
		for obj, sites := range gets {
			if !puts[obj] {
				pass.Reportf(sites[0].Pos(), "sync.Pool %s has a Get but no Put anywhere in package %s; a never-refilled pool leaks its contract", obj.Name(), pass.Pkg.Path)
			}
		}

		// Function-level pairing: a drawn value must be Put in the same
		// function or escape it.
		for _, fd := range funcs {
			checkPoolGets(pass, fd)
		}
	}
	return a
}

// poolCall resolves a call to (*sync.Pool).Get or Put, returning the
// object the pool expression roots at (a field or variable) so Gets
// and Puts on the same pool can be matched.
func poolCall(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, ""
	}
	recv := namedOf(tv.Type)
	if recv == nil || typeKey(recv) != "sync.Pool" {
		return nil, ""
	}
	// Root object: p.arenaPool.Get → field arenaPool; scratchPool.Get →
	// var scratchPool.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x], sel.Sel.Name
	case *ast.SelectorExpr:
		return info.Uses[x.Sel], sel.Sel.Name
	}
	return nil, ""
}

// checkPoolGets flags Gets whose value is dropped or provably stays
// local without a matching Put in the function.
func checkPoolGets(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pools released anywhere in this function (including defers).
	released := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, verb := poolCall(info, call); obj != nil && verb == "Put" {
				released[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, verb := poolCall(info, call)
		if obj == nil || verb != "Get" || released[obj] {
			return true
		}
		if usedDirectly(fd.Body, call) {
			return true
		}
		v := boundIdent(fd.Body, call)
		if v == nil {
			pass.Reportf(call.Pos(), "value drawn from sync.Pool %s is dropped; pair the Get with a Put", obj.Name())
			return true
		}
		if !escapes(info, fd.Body, v) {
			pass.Reportf(call.Pos(), "value drawn from sync.Pool %s stays local and is never Put back; pair the Get with a Put or transfer ownership", obj.Name())
		}
		return true
	})
}

// usedDirectly reports whether the Get result is consumed in place —
// returned or passed straight to another call (possibly through a type
// assertion) — which transfers ownership without binding a name.
func usedDirectly(body *ast.BlockStmt, get *ast.CallExpr) bool {
	strip := func(e ast.Expr) ast.Expr {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		return e
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if strip(r) == get {
					used = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if strip(arg) == get {
					used = true
				}
			}
		}
		return !used
	})
	return used
}

// boundIdent finds the identifier the Get result is bound to,
// unwrapping one type assertion (`v, _ := pool.Get().(*T)` and
// `v := pool.Get().(*T)` both bind v); nil means dropped.
func boundIdent(body *ast.BlockStmt, get *ast.CallExpr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || found != nil {
			return true
		}
		for i, rhs := range assign.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if e != get {
				continue
			}
			// Multi-value forms (v, ok := ...) bind the value first.
			idx := 0
			if len(assign.Rhs) == len(assign.Lhs) {
				idx = i
			}
			if id, ok := assign.Lhs[idx].(*ast.Ident); ok && id.Name != "_" {
				found = id
			}
			return false
		}
		return true
	})
	return found
}

// escapes reports whether v's value leaves the function: returned,
// passed as a call argument, stored through a selector/index/deref or
// into a composite literal, sent on a channel, or captured by address.
// Receiver-position method calls (v.reset()) and field reads stay
// local.
func escapes(info *types.Info, body *ast.BlockStmt, v *ast.Ident) bool {
	obj := info.Defs[v]
	if obj == nil {
		obj = info.Uses[v]
	}
	if obj == nil {
		return true // unresolvable: stay quiet
	}
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isV(r) {
					esc = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isV(arg) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isV(rhs) {
					continue
				}
				// Assigning v into anything but a fresh local transfers it.
				if i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && n.Tok.String() == ":=" && id.Name != "_" {
						continue
					}
				}
				esc = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isV(el) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if isV(n.Value) {
				esc = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" && isV(n.X) {
				esc = true
			}
		case *ast.IndexExpr:
			// v stored as a map/slice element value is handled by
			// AssignStmt; v used as an index stays local.
		}
		return true
	})
	return esc
}
