// Package lint is the repo's invariant analyzer suite: a stdlib-only
// static-analysis driver (go/parser + go/types + go/importer, no
// golang.org/x/tools) that mechanizes the contracts the test suite
// otherwise pins at runtime. It sits beside the Figure 2 pipeline
// rather than inside it: every analyzer guards a property the pipeline
// depends on — determinism of the simulator packages (detlint), the
// digest-exclusion contract of the serving layer's content-addressed
// keys (digestfields), context-first cancellation (ctxfirst), the
// apierr error taxonomy at its origin packages (apierrlint), pooled
// arena pairing (poolpair), and the package documentation contract
// (pkgdoc). cmd/gpa-lint wires the suite into CI so a violation fails
// the build before any simulation runs.
//
// Audited exceptions are written in the source as
//
//	//gpa:lint-allow <analyzer> <reason>
//
// on (or attached to) the offending line. The driver suppresses the
// matching diagnostic, counts the waiver, and reports it in the run
// result so every standing exception stays visible; a directive that
// suppresses nothing is itself a diagnostic, so waivers can never go
// stale silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant check. Analyzers are pure functions of the
// loaded packages: they inspect syntax and types and report
// diagnostics, and must not depend on process state (environment,
// clock, iteration order) — the suite lints determinism, so its own
// output is sorted and reproducible.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// gpa:lint-allow directives.
	Name string
	// Doc is a one-line description of the guarded contract.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass is one analyzer's view of one package plus the full load set
// (digestfields resolves tracked struct types across package
// boundaries).
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Pkgs indexes every loaded package by import path.
	Pkgs map[string]*Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced
// it, and the violated contract.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Waiver is one used gpa:lint-allow directive: an audited exception
// the driver counted instead of failing.
type Waiver struct {
	Analyzer string
	Pos      token.Position
	Reason   string
}

func (w Waiver) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", w.Pos.Filename, w.Pos.Line, w.Analyzer, w.Reason)
}

// Result is the outcome of one driver run.
type Result struct {
	// Diagnostics holds the unsuppressed findings, sorted by position.
	Diagnostics []Diagnostic
	// Waivers holds the directives that suppressed a finding, sorted by
	// position. The driver prints these so every standing exception is
	// visible in CI output.
	Waivers []Waiver
}

// allowPrefix is the directive marker. The comment form is
// //gpa:lint-allow <analyzer> <reason...>, following the compiler's
// //go: directive convention (no space after //).
const allowPrefix = "gpa:lint-allow"

// directive is one parsed gpa:lint-allow comment with the source span
// it covers: the comment's own lines, the line below the comment, and
// the AST node the comment group is attached to (so a directive above
// a declaration covers the whole declaration).
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	file     string
	fromLine int // first covered line
	toLine   int // last covered line
	used     bool
	bad      string // non-empty: malformed, diagnosed by the driver
}

// covers reports whether the directive suppresses d.
func (dir *directive) covers(d *Diagnostic) bool {
	return dir.bad == "" &&
		dir.analyzer == d.Analyzer &&
		dir.file == d.Pos.Filename &&
		d.Pos.Line >= dir.fromLine && d.Pos.Line <= dir.toLine
}

// parseDirectives extracts every gpa:lint-allow directive in the
// package, with scopes derived from the comment-to-node association.
func parseDirectives(pkg *Package, known map[string]bool) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		// Map each comment group to the node it documents, so a
		// directive above a func or field covers that whole node.
		span := map[*ast.CommentGroup][2]int{}
		cmap := ast.NewCommentMap(pkg.Fset, f, f.Comments)
		for node, groups := range cmap {
			from := pkg.Fset.Position(node.Pos()).Line
			to := pkg.Fset.Position(node.End()).Line
			for _, g := range groups {
				span[g] = [2]int{from, to}
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{pos: pos, file: pos.Filename}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case len(fields) == 1:
					d.bad = fmt.Sprintf("missing reason (want //%s %s <reason>)", allowPrefix, fields[0])
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("unknown analyzer %q", fields[0])
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				// Own line and the line below always count; widen to the
				// attached node when the comment documents one.
				d.fromLine, d.toLine = pos.Line, pos.Line+1
				if s, ok := span[g]; ok {
					d.fromLine = min(d.fromLine, s[0])
					d.toLine = max(d.toLine, s[1])
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// Run executes every analyzer over every package, applies the
// gpa:lint-allow directives, and returns the surviving diagnostics
// plus the waivers that suppressed the rest. Unused or malformed
// directives are diagnosed by the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}

	var raw []Diagnostic
	var dirs []*directive
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		dirs = append(dirs, parseDirectives(pkg, known)...)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Pkgs: byPath, analyzer: a, diags: &raw}
			a.Run(pass)
		}
	}

	res := &Result{}
	for i := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.covers(&raw[i]) {
				if !dir.used {
					dir.used = true
					res.Waivers = append(res.Waivers, Waiver{
						Analyzer: dir.analyzer, Pos: dir.pos, Reason: dir.reason,
					})
				}
				suppressed = true
			}
		}
		if !suppressed {
			res.Diagnostics = append(res.Diagnostics, raw[i])
		}
	}
	for _, dir := range dirs {
		switch {
		case dir.bad != "":
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: "directive", Pos: dir.pos,
				Message: fmt.Sprintf("malformed //%s directive: %s", allowPrefix, dir.bad),
			})
		case !dir.used:
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: "directive", Pos: dir.pos,
				Message: fmt.Sprintf("unused //%s %s directive (nothing to suppress here; delete it)", allowPrefix, dir.analyzer),
			})
		}
	}

	sortDiags(res.Diagnostics)
	sort.Slice(res.Waivers, func(i, j int) bool {
		a, b := res.Waivers[i].Pos, res.Waivers[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
