package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TrackedStruct is one struct whose fields feed content-addressed
// keys. Every field must either be read inside the digest functions
// (written into the key material) or be named in Exclude with the
// reason it is transport-only. A field in neither set — the usual fate
// of a freshly added field — is a build failure, which is the point:
// the Parallelism/traceId exclusion contract becomes mechanical
// instead of a hand-written proof in a PR description.
type TrackedStruct struct {
	// Type names the struct as "importpath.Name"
	// ("gpa/internal/service.Request").
	Type string
	// Exclude maps deliberately undigested field names to the audited
	// reason they cannot affect results.
	Exclude map[string]string
}

// DigestConfig scopes the digestfields analyzer.
type DigestConfig struct {
	// Pkg is the package whose digest functions are scanned.
	Pkg string
	// Funcs names the digest functions, as "Recv.name" for methods and
	// "name" for plain functions. A field read anywhere inside any of
	// them counts as digested. A call to encoding/json's Marshal on a
	// tracked struct digests every field wholesale (the canonical-JSON
	// hashing path).
	Funcs []string
	// Structs lists the tracked key-feeding structs.
	Structs []TrackedStruct
}

// DigestFields builds the digestfields analyzer: every field of every
// struct feeding stage keys must be classified — digested or
// explicitly excluded. It also rejects contradictions (an excluded
// field that is in fact read inside a digest function) and rots
// loudly: a configured function or struct that no longer resolves is
// itself a diagnostic, so a rename cannot silently disable the check.
func DigestFields(cfg DigestConfig) *Analyzer {
	a := &Analyzer{
		Name: "digestfields",
		Doc:  "every field of the structs feeding stage keys is digested or explicitly excluded",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Path != cfg.Pkg {
			return
		}
		pkgPos := pass.Pkg.Files[0].Name.Pos()

		// Resolve the digest functions.
		bodies := map[string]*ast.FuncDecl{}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				bodies[funcKey(fd)] = fd
			}
		}
		var scan []*ast.FuncDecl
		for _, name := range cfg.Funcs {
			fd, ok := bodies[name]
			if !ok || fd.Body == nil {
				pass.Reportf(pkgPos, "configured digest function %s.%s not found; update the digestfields config", cfg.Pkg, name)
				continue
			}
			scan = append(scan, fd)
		}

		// Resolve the tracked struct types.
		type tracked struct {
			cfg *TrackedStruct
			st  *types.Struct
			// read collects fields seen inside digest functions;
			// wholesale marks a canonical-encoding of the whole value.
			read      map[string]bool
			wholesale bool
		}
		byKey := map[string]*tracked{}
		var order []*tracked
		for i := range cfg.Structs {
			ts := &cfg.Structs[i]
			st := lookupStruct(pass.Pkgs, ts.Type)
			if st == nil {
				pass.Reportf(pkgPos, "tracked struct %s not found; update the digestfields config", ts.Type)
				continue
			}
			t := &tracked{cfg: ts, st: st, read: map[string]bool{}}
			byKey[ts.Type] = t
			order = append(order, t)
		}

		// Collect field reads and wholesale encodings inside the digest
		// functions.
		info := pass.Pkg.Info
		for _, fd := range scan {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					selInfo, ok := info.Selections[n]
					if !ok || selInfo.Kind() != types.FieldVal {
						return true
					}
					recv := namedOf(selInfo.Recv())
					if recv == nil {
						return true
					}
					if t, ok := byKey[typeKey(recv)]; ok {
						t.read[n.Sel.Name] = true
					}
				case *ast.CallExpr:
					path, name, ok := pkgFunc(info, n)
					if !ok || path != "encoding/json" || name != "Marshal" || len(n.Args) != 1 {
						return true
					}
					tv, ok := info.Types[n.Args[0]]
					if !ok {
						return true
					}
					if arg := namedOf(tv.Type); arg != nil {
						if t, ok := byKey[typeKey(arg)]; ok {
							t.wholesale = true
						}
					}
				}
				return true
			})
		}

		funcs := strings.Join(cfg.Funcs, ", ")
		for _, t := range order {
			var missing []string
			for i := 0; i < t.st.NumFields(); i++ {
				field := t.st.Field(i).Name()
				_, excluded := t.cfg.Exclude[field]
				digested := t.wholesale || t.read[field]
				switch {
				case excluded && t.read[field]:
					pass.Reportf(pkgPos, "field %s.%s is listed as digest-excluded but is read inside %s; pick one classification", t.cfg.Type, field, funcs)
				case !excluded && !digested:
					missing = append(missing, field)
				}
			}
			sort.Strings(missing)
			for _, field := range missing {
				pass.Reportf(pkgPos, "field %s.%s is neither written into the digest (%s) nor named in the exclusion table; classify it", t.cfg.Type, field, funcs)
			}
			for field := range t.cfg.Exclude {
				if !fieldExists(t.st, field) {
					pass.Reportf(pkgPos, "digest exclusion names %s.%s, which no longer exists; prune the exclusion table", t.cfg.Type, field)
				}
			}
		}
	}
	return a
}

// funcKey renders a FuncDecl name as the config form: "Recv.name" for
// methods, "name" otherwise.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// lookupStruct resolves "importpath.Name" to its struct type across
// the loaded packages (including dependency-only ones).
func lookupStruct(pkgs map[string]*Package, key string) *types.Struct {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return nil
	}
	pkg, name := key[:i], key[i+1:]
	p, ok := pkgs[pkg]
	if !ok {
		return nil
	}
	obj := p.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, _ := obj.Type().Underlying().(*types.Struct)
	return st
}

func fieldExists(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
