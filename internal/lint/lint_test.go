package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the fixture goldens when the test runs with
// GPA_LINT_UPDATE=1. Goldens are reviewed by hand after regeneration;
// the committed files are the contract.
var update = os.Getenv("GPA_LINT_UPDATE") == "1"

// renderResult formats a driver result the way the goldens store it:
// one "file:line:col: analyzer: message" line per diagnostic followed
// by one "waiver file:line: analyzer: reason" line per waiver, with
// filenames relative to the fixture root.
func renderResult(t *testing.T, dir string, res *Result) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range res.Diagnostics {
		rel, err := filepath.Rel(abs, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	for _, w := range res.Waivers {
		rel, err := filepath.Rel(abs, w.Pos.Filename)
		if err != nil {
			rel = w.Pos.Filename
		}
		fmt.Fprintf(&b, "waiver %s:%d: %s: %s\n", filepath.ToSlash(rel), w.Pos.Line, w.Analyzer, w.Reason)
	}
	return b.String()
}

// checkFixture loads the mini-module under testdata/src/<name>, runs
// the given analyzers, and compares the rendered result against the
// fixture's expected.txt golden.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	got := renderResult(t, dir, Run(pkgs, analyzers))

	golden := filepath.Join(dir, "expected.txt")
	if update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with GPA_LINT_UPDATE=1 to create): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestDetLintFixture(t *testing.T) {
	checkFixture(t, "detbad", []*Analyzer{
		DetLint(DetConfig{Critical: map[string][]string{"det.example": nil}}),
	})
}

// TestDetLintFileScope pins the file-scoped form used for the service
// package: with only a non-existent file in scope, the same fixture
// produces no findings.
func TestDetLintFileScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "detbad")
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	res := Run(pkgs, []*Analyzer{
		DetLint(DetConfig{Critical: map[string][]string{"det.example": {"other.go"}}}),
	})
	if len(res.Diagnostics) != 0 {
		t.Errorf("file-scoped detlint over out-of-scope files reported %d findings:\n%s",
			len(res.Diagnostics), renderResult(t, dir, res))
	}
}

func TestDigestFieldsFixture(t *testing.T) {
	checkFixture(t, "digestbad", []*Analyzer{
		DigestFields(DigestConfig{
			Pkg:   "digest.example",
			Funcs: []string{"Request.digest", "modelHash", "vanishedFunc"},
			Structs: []TrackedStruct{
				{
					Type: "digest.example.Request",
					Exclude: map[string]string{
						"Trace": "transport-only",
						"Skew":  "claimed excluded, but digest reads it",
						"Gone":  "names a field that no longer exists",
					},
				},
				{Type: "digest.example.Model"},
				{Type: "digest.example.Vanished"},
			},
		}),
	})
}

func TestCtxFirstFixture(t *testing.T) {
	checkFixture(t, "ctxbad", []*Analyzer{
		CtxFirst(CtxConfig{NoSyntheticCtx: []string{"ctx.example"}}),
	})
}

func TestAPIErrLintFixture(t *testing.T) {
	checkFixture(t, "apierrbad", []*Analyzer{
		APIErrLint(APIErrConfig{Packages: []string{"apierr.example"}}),
	})
}

func TestPoolPairFixture(t *testing.T) {
	checkFixture(t, "poolbad", []*Analyzer{PoolPair()})
}

func TestPkgDocFixture(t *testing.T) {
	checkFixture(t, "pkgdocbad", []*Analyzer{
		PkgDoc(PkgDocConfig{
			Figure2Prefixes: []string{"pkgdoc.example/fig"},
			ExamplePrefixes: []string{"pkgdoc.example/examples/"},
		}),
	})
}

func TestDirectiveFixture(t *testing.T) {
	checkFixture(t, "directivebad", []*Analyzer{
		DetLint(DetConfig{Critical: map[string][]string{"directive.example": nil}}),
	})
}

// TestRepoIsClean runs the full default suite over the real module and
// demands zero findings: the repository must always lint clean, with
// every standing exception spelled as an audited waiver.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("Load(module root): %v", err)
	}
	res := Run(pkgs, DefaultSuite())
	for _, d := range res.Diagnostics {
		t.Errorf("finding: %s", d)
	}
	for _, w := range res.Waivers {
		if strings.TrimSpace(w.Reason) == "" {
			t.Errorf("waiver without a reason: %s", w)
		}
	}
}
