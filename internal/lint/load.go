package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("gpa/internal/gpusim").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Main reports a command (package main).
	Main bool
	// DepOnly reports a package loaded only as a dependency of the
	// requested patterns; analyzers still see it (for type resolution)
	// but the driver does not run them over it.
	DepOnly bool
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load builds the analyzer input for the Go module rooted at dir: it
// resolves patterns with `go list -json -export -deps`, parses every
// non-standard package from source, and type-checks them in dependency
// order. Standard-library imports are resolved through their compiler
// export data (go/importer with a lookup into the build cache), so the
// loader needs no third-party machinery and the module stays
// dependency-free. The returned slice is in dependency order;
// dependency-only packages are marked DepOnly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %v: %v\n%s", args, err, stderr.Bytes())
	}

	pkgs := map[string]*listPackage{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	fset := token.NewFileSet()

	// Standard-library imports resolve from export data; the lookup
	// hands the gc importer the build-cache export file go list forced
	// into existence with -export.
	exportImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p := pkgs[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(p.Export)
	})
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		tp, err := exportImp.Import(path)
		if err == nil {
			checked[path] = tp
		}
		return tp, err
	})

	// Type-check the non-standard packages from source in dependency
	// order (DFS postorder over the import graph).
	var topo []string
	seen := map[string]bool{}
	var visit func(string)
	visit = func(ip string) {
		if seen[ip] || pkgs[ip].Standard {
			return
		}
		seen[ip] = true
		for _, im := range pkgs[ip].Imports {
			if _, ok := pkgs[im]; ok {
				visit(im)
			}
		}
		topo = append(topo, ip)
	}
	for _, ip := range order {
		visit(ip)
	}

	var loaded []*Package
	for _, ip := range topo {
		lp := pkgs[ip]
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo (unsupported)", ip)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(ip, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", ip, err)
		}
		checked[ip] = tp
		loaded = append(loaded, &Package{
			Path:    ip,
			Dir:     lp.Dir,
			Main:    lp.Name == "main",
			DepOnly: lp.DepOnly,
			Fset:    fset,
			Files:   files,
			Types:   tp,
			Info:    info,
		})
	}
	return loaded, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
