package lint

import (
	"go/ast"
	"strings"
)

// PkgDocConfig scopes the pkgdoc analyzer.
type PkgDocConfig struct {
	// Figure2Prefixes lists import-path prefixes (the internal pipeline
	// packages) whose package doc must state the package's Figure 2
	// role — the documentation contract the contributor walkthrough in
	// docs/ARCHITECTURE.md builds on.
	Figure2Prefixes []string
	// ExamplePrefixes lists import-path prefixes holding example mains,
	// which only need some leading doc comment.
	ExamplePrefixes []string
}

// PkgDoc builds the pkgdoc analyzer, the in-process port of the old
// scripts/check-pkg-docs.sh gate: every package carries a package doc
// comment ("Package <name> ..." for libraries, "Command <name> ..."
// for mains), and the internal pipeline packages state where they sit
// in the paper's Figure 2.
func PkgDoc(cfg PkgDocConfig) *Analyzer {
	a := &Analyzer{
		Name: "pkgdoc",
		Doc:  "package doc comments exist and pipeline packages state their Figure 2 role",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		example := hasPrefix(cfg.ExamplePrefixes, pkg.Path)

		var doc *ast.CommentGroup
		for _, f := range pkg.Files {
			if f.Doc != nil {
				doc = f.Doc
				break
			}
		}
		pos := pkg.Files[0].Name.Pos()
		name := pkg.Types.Name()
		if name == "main" {
			name = pkg.Path[strings.LastIndex(pkg.Path, "/")+1:]
		}

		if doc == nil {
			want := "// Package " + name
			if pkg.Main {
				want = "// Command " + name
			}
			pass.Reportf(pos, "package %s has no package doc comment (want %q on one file)", pkg.Path, want+" ...")
			return
		}
		text := doc.Text()
		switch {
		case example:
			// Any leading comment documents an example.
		case pkg.Main:
			if !strings.HasPrefix(text, "Command "+name) {
				pass.Reportf(doc.Pos(), "package doc for command %s must start %q", pkg.Path, "Command "+name)
			}
		default:
			if !strings.HasPrefix(text, "Package "+name) {
				pass.Reportf(doc.Pos(), "package doc for %s must start %q", pkg.Path, "Package "+name)
			}
		}
		if hasPrefix(cfg.Figure2Prefixes, pkg.Path) && !strings.Contains(text, "Figure 2") {
			pass.Reportf(doc.Pos(), "package doc for %s does not state its Figure 2 role (mention where it sits relative to the paper's Figure 2 pipeline)", pkg.Path)
		}
	}
	return a
}

func hasPrefix(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}
