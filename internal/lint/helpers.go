package lint

import (
	"go/ast"
	"go/types"
)

// pkgFunc resolves a call to a package-level function of an imported
// package: for `rand.Intn(3)` it returns ("math/rand", "Intn"). The
// import path comes from the type-checker, so renamed imports cannot
// hide a call. ok is false for method calls, local calls, builtins,
// and conversions.
func pkgFunc(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedOf unwraps pointers and aliases down to the defined type of t,
// or nil when t does not resolve to one.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeKey names a defined type as "importpath.Name" (the form analyzer
// configs use).
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n := namedOf(t)
	return n != nil && typeKey(n) == "context.Context"
}

// hasPath reports whether list contains path.
func hasPath(list []string, path string) bool {
	for _, p := range list {
		if p == path {
			return true
		}
	}
	return false
}
