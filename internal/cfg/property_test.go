package cfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpa/internal/sass"
)

// randomFunction generates a structured random kernel: a sequence of
// straight-line segments, diamonds, and loops, always ending in EXIT.
func randomFunction(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(".func rnd global\n")
	label := 0
	newLabel := func() string {
		label++
		return fmt.Sprintf("L%d", label)
	}
	segments := 1 + r.Intn(5)
	for s := 0; s < segments; s++ {
		switch r.Intn(3) {
		case 0: // straight line
			for i, n := 0, 1+r.Intn(4); i < n; i++ {
				fmt.Fprintf(&sb, "\tIADD R%d, R%d, 0x1 {S:4}\n", r.Intn(8), r.Intn(8))
			}
		case 1: // diamond
			el, join := newLabel(), newLabel()
			fmt.Fprintf(&sb, "\tISETP P0, R%d, 0x0 {S:4}\n", r.Intn(8))
			fmt.Fprintf(&sb, "\t@P0 BRA %s {S:5}\n", el)
			fmt.Fprintf(&sb, "\tIADD R1, R1, 0x1 {S:4}\n")
			fmt.Fprintf(&sb, "\tBRA %s {S:5}\n", join)
			fmt.Fprintf(&sb, "%s:\n\tIADD R1, R1, 0x2 {S:4}\n", el)
			fmt.Fprintf(&sb, "%s:\n\tIADD R2, R1, 0x3 {S:4}\n", join)
		default: // loop
			head := newLabel()
			fmt.Fprintf(&sb, "%s:\n", head)
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				fmt.Fprintf(&sb, "\tFFMA R%d, R%d, R4, R5 {S:2}\n", r.Intn(8), r.Intn(8))
			}
			fmt.Fprintf(&sb, "\tISETP P1, R0, 0x10 {S:4}\n")
			fmt.Fprintf(&sb, "\t@P1 BRA %s {S:5}\n", head)
		}
	}
	sb.WriteString("\tEXIT\n")
	return sb.String()
}

func buildRandom(t testing.TB, r *rand.Rand) *Graph {
	src := randomFunction(r)
	mod, err := sass.Assemble(src)
	if err != nil {
		t.Fatalf("random function does not assemble:\n%s\n%v", src, err)
	}
	g, err := Build(mod.Functions[0])
	if err != nil {
		t.Fatalf("Build: %v\n%s", err, src)
	}
	return g
}

// TestPropertyBlocksPartitionInstructions: every instruction belongs to
// exactly one block, blocks are contiguous and ordered.
func TestPropertyBlocksPartitionInstructions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		g := buildRandom(t, r)
		covered := 0
		for i, b := range g.Blocks {
			if b.ID != i || b.Start != covered || b.End <= b.Start {
				return false
			}
			covered = b.End
			for j := b.Start; j < b.End; j++ {
				if g.BlockOf(j) != b {
					return false
				}
			}
		}
		return covered == g.NumInstrs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEdgesAreSymmetric: succ/pred lists agree.
func TestPropertyEdgesAreSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		g := buildRandom(t, r)
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				if !containsInt(g.Blocks[s].Preds, b.ID) {
					return false
				}
			}
			for _, p := range b.Preds {
				if !containsInt(g.Blocks[p].Succs, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDominatorBasics: the entry dominates every reachable
// block; every block dominates itself; idom is a strict dominator.
func TestPropertyDominatorBasics(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		g := buildRandom(t, r)
		for _, b := range g.Blocks {
			if !g.Dominates(b.ID, b.ID) {
				return false
			}
			reachable := b.ID == 0 || g.Idom(b.ID) != -1
			if reachable && !g.Dominates(0, b.ID) {
				return false
			}
			if id := g.Idom(b.ID); id != -1 {
				if id == b.ID || !g.Dominates(id, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLoopsAreWellFormed: loop heads dominate their members;
// nested loops are proper subsets of their parents.
func TestPropertyLoopsAreWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := func() bool {
		g := buildRandom(t, r)
		for _, l := range g.Loops() {
			if !l.Blocks[l.Head] {
				return false
			}
			for b := range l.Blocks {
				if !g.Dominates(l.Head, b) {
					return false
				}
			}
			if l.Parent != nil {
				if len(l.Blocks) >= len(l.Parent.Blocks) {
					return false
				}
				for b := range l.Blocks {
					if !l.Parent.Blocks[b] {
						return false
					}
				}
				if l.Depth != l.Parent.Depth+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShortestNotLongerThanLongest: for any reachable pair,
// 0 < ShortestDist <= LongestDist.
func TestPropertyShortestNotLongerThanLongest(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		g := buildRandom(t, r)
		n := g.NumInstrs()
		for trial := 0; trial < 10; trial++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			short := g.ShortestDist(i, j)
			long := g.LongestDist(i, j)
			if short < 0 {
				// Unreachable: the block-simple longest path must agree
				// (it may also be -1; a cyclic reachable case cannot be
				// unreachable for shortest).
				if long > 0 {
					return false
				}
				continue
			}
			if short == 0 || long < short {
				// Longest is block-simple so it can be shorter than a
				// cyclic shortest path only when the only route repeats
				// a block; allow long == -1 in that case.
				if long == -1 {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOnEveryPathSanity: an instruction on every path must be
// reachable from i and reach j.
func TestPropertyOnEveryPathSanity(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		g := buildRandom(t, r)
		n := g.NumInstrs()
		for trial := 0; trial < 10; trial++ {
			i, k, j := r.Intn(n), r.Intn(n), r.Intn(n)
			if i == k || k == j || i == j {
				continue
			}
			if g.OnEveryPath(i, k, j) {
				if g.ShortestDist(i, k) < 0 || g.ShortestDist(k, j) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
