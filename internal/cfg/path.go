package cfg

import "gpa/internal/sass"

// Instruction-level path queries. The blamer's pruning and apportioning
// rules reason about paths between a def instruction i and a use
// instruction j in the control flow graph:
//
//   - latency-based pruning removes the edge when the number of
//     instructions on EVERY path from i to j exceeds i's latency, i.e.
//     when the shortest path is longer than the latency;
//   - dominator-based pruning asks whether an intervening instruction k
//     lies on every path from i to j;
//   - apportioning weighs each dependency source by its LONGEST path to
//     the use ("If an instruction i has multiple paths to instruction j
//     ... we use the longest one").
//
// All three operate on the instruction-level successor relation: a
// non-control instruction flows to the next instruction (predication
// does not divert control), a predicated branch flows to both its target
// and the fall-through, and EXIT/RET end the walk.

// InstrSuccs appends the instruction-level successors of instruction i
// to dst and returns it.
func (g *Graph) InstrSuccs(dst []int, i int) []int {
	in := &g.Fn.Instrs[i]
	if in.IsExit() {
		return dst
	}
	b := g.BlockOf(i)
	if i+1 < b.End {
		return append(dst, i+1)
	}
	// Last instruction of its block: follow block edges.
	for _, s := range b.Succs {
		dst = append(dst, g.Blocks[s].Start)
	}
	return dst
}

// ShortestDist returns the minimum number of instruction issue slots on
// a path from i to j (counting j, not i): adjacent instructions have
// distance 1. It returns -1 when j is unreachable from i. i == j
// returns the shortest cycle length through i (relevant for loop-carried
// self dependencies), or -1 if i is not in a cycle.
func (g *Graph) ShortestDist(i, j int) int {
	n := g.NumInstrs()
	dist := make([]int, n)
	for k := range dist {
		dist[k] = -1
	}
	queue := make([]int, 0, n)
	var scratch []int
	for _, s := range g.InstrSuccs(scratch, i) {
		if s == j {
			return 1
		}
		if dist[s] == -1 {
			dist[s] = 1
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		scratch = g.InstrSuccs(scratch[:0], cur)
		for _, s := range scratch {
			if s == j {
				return dist[cur] + 1
			}
			if dist[s] == -1 {
				dist[s] = dist[cur] + 1
				queue = append(queue, s)
			}
		}
	}
	return -1
}

// LongestDist returns the maximum number of instruction issue slots on a
// path from i to j that visits no basic block twice (a block-simple
// path; unrestricted longest paths are unbounded in cyclic graphs). It
// returns -1 when j is unreachable from i.
func (g *Graph) LongestDist(i, j int) int {
	bi, bj := g.blockOf[i], g.blockOf[j]
	if bi == bj && i < j {
		return j - i
	}
	// DFS over blocks with a visited set. Kernels are small (tens of
	// blocks), so the exponential worst case is not a concern; a depth
	// cap guards pathological inputs.
	visited := make([]bool, len(g.Blocks))
	const maxDepth = 64
	var dfs func(b, depth int, acc int) int
	dfs = func(b, depth, acc int) int {
		if depth > maxDepth {
			return -1
		}
		best := -1
		for _, s := range g.Blocks[b].Succs {
			sb := g.Blocks[s]
			if s == bj {
				// Instructions from block start to j inclusive.
				cand := acc + (j - sb.Start) + 1
				if cand > best {
					best = cand
				}
				// Do not also traverse through bj; paths revisiting j's
				// block would not be block-simple.
				continue
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			cand := dfs(s, depth+1, acc+sb.Len())
			visited[s] = false
			if cand > best {
				best = cand
			}
		}
		return best
	}
	// Instructions remaining in i's block after i.
	b := g.Blocks[bi]
	tail := b.End - i - 1
	visited[bi] = true
	return dfs(bi, 0, tail)
}

// OnEveryPath reports whether instruction k lies on every path from
// instruction i to instruction j. It returns false when j is not
// reachable from i at all. k must differ from both endpoints.
func (g *Graph) OnEveryPath(i, k, j int) bool {
	if k == i || k == j {
		return false
	}
	reach := g.reaches(i, j, -1)
	if !reach {
		return false
	}
	return !g.reaches(i, j, k)
}

// reaches reports whether j is reachable from i (following instruction
// successors, not counting i itself) while never stepping on instruction
// "avoid" (pass -1 to disable).
func (g *Graph) reaches(i, j, avoid int) bool {
	n := g.NumInstrs()
	seen := make([]bool, n)
	var scratch []int
	queue := make([]int, 0, n)
	for _, s := range g.InstrSuccs(scratch, i) {
		if s == avoid {
			continue
		}
		if s == j {
			return true
		}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		scratch = g.InstrSuccs(scratch[:0], cur)
		for _, s := range scratch {
			if s == avoid {
				continue
			}
			if s == j {
				return true
			}
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// ReachesWithoutRedefine reports whether instruction j is reachable from
// instruction i along some path on which no instruction (other than the
// endpoints) writes register r. This is the def-use reachability test of
// backward slicing, run forward.
func (g *Graph) ReachesWithoutRedefine(i, j int, r sass.Reg) bool {
	n := g.NumInstrs()
	seen := make([]bool, n)
	var scratch []int
	defines := func(idx int) bool {
		for _, d := range g.Fn.Instrs[idx].Defs() {
			if d == r {
				return true
			}
		}
		return false
	}
	queue := make([]int, 0, n)
	push := func(s int) bool {
		if s == j {
			return true
		}
		if !seen[s] && !defines(s) {
			seen[s] = true
			queue = append(queue, s)
		}
		return false
	}
	for _, s := range g.InstrSuccs(scratch, i) {
		if push(s) {
			return true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		scratch = g.InstrSuccs(scratch[:0], cur)
		for _, s := range scratch {
			if push(s) {
				return true
			}
		}
	}
	return false
}
