// Package cfg builds control flow graphs over SASS functions and derives
// the structural facts GPA's analyses consume: basic blocks, dominators,
// natural loop nests, and instruction-level path queries (used by the
// blamer's dominator- and latency-based pruning rules, Section 4.3, and
// by its stall apportioning heuristics, Section 4.4).
//
// In the Figure 2 pipeline this is the static analyzer's first half:
// input is one *sass.Function, output a *CFG whose loop nests feed both
// the structure package (program structure file) and the advisor's
// Equation 5 scope analysis. Mirroring the paper's static analyzer,
// construction happens in two steps: a disassembler-style pass first
// yields "super blocks" (runs of instructions terminated only by
// control transfers, as nvdisasm emits), which are then split at branch
// targets into proper basic blocks.
package cfg

import (
	"fmt"
	"sort"

	"gpa/internal/sass"
)

// Block is a basic block: instructions [Start, End) of the function.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past last instruction index
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the control flow graph of one function.
type Graph struct {
	Fn     *sass.Function
	Blocks []*Block
	// blockOf[i] is the block ID containing instruction i.
	blockOf []int
	// idom[b] is the immediate dominator of block b (-1 for entry).
	idom []int
	// loops, outermost first within each nest.
	loops []*Loop
}

// BuildSuperBlocks performs the first construction step: blocks end only
// at control transfers (branch, exit, return), not at branch targets, so
// a block may be entered mid-way — the "super blocks" shape that raw
// nvdisasm control flow output has.
func BuildSuperBlocks(f *sass.Function) []*Block {
	var blocks []*Block
	n := len(f.Instrs)
	start := 0
	for i := 0; i < n; i++ {
		in := &f.Instrs[i]
		ends := in.IsExit() || isBranch(in.Opcode)
		if ends || i == n-1 {
			blocks = append(blocks, &Block{ID: len(blocks), Start: start, End: i + 1})
			start = i + 1
		}
	}
	return blocks
}

func isBranch(op sass.Opcode) bool {
	switch op {
	case sass.OpBRA, sass.OpBRX, sass.OpJMP:
		return true
	}
	return false
}

// Build constructs the basic-block CFG for f: super blocks split at
// branch targets, edges wired, dominators and loops computed.
func Build(f *sass.Function) (*Graph, error) {
	n := len(f.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty function %q", f.Name)
	}
	// Leaders: block starts. Start from super blocks, then split at
	// branch targets.
	leader := make([]bool, n)
	leader[0] = true
	for _, b := range BuildSuperBlocks(f) {
		leader[b.Start] = true
	}
	for i := 0; i < n; i++ {
		in := &f.Instrs[i]
		if tgt, ok := in.BranchTarget(); ok && in.Opcode != sass.OpCAL {
			idx := int(tgt.PC) / sass.InstrBytes
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("cfg: %s+0x%x: branch target 0x%x out of range",
					f.Name, in.PC, tgt.PC)
			}
			leader[idx] = true
		}
	}
	g := &Graph{Fn: f, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			start = i
		}
	}
	// Edges.
	for _, b := range g.Blocks {
		last := &f.Instrs[b.End-1]
		addEdge := func(to int) {
			b.Succs = append(b.Succs, to)
			g.Blocks[to].Preds = append(g.Blocks[to].Preds, b.ID)
		}
		switch {
		case last.IsExit():
			// no successors
		case isBranch(last.Opcode):
			if tgt, ok := last.BranchTarget(); ok {
				addEdge(g.blockOf[int(tgt.PC)/sass.InstrBytes])
			}
			// Predicated branches fall through as well.
			if !last.Unconditional() && b.End < n {
				addEdge(g.blockOf[b.End])
			}
		default:
			if b.End < n {
				addEdge(g.blockOf[b.End])
			}
		}
	}
	g.computeDominators()
	g.findLoops()
	return g, nil
}

// BlockOf returns the block containing instruction index i.
func (g *Graph) BlockOf(i int) *Block { return g.Blocks[g.blockOf[i]] }

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// NumInstrs returns the instruction count of the underlying function.
func (g *Graph) NumInstrs() int { return len(g.blockOf) }

// computeDominators runs the iterative dataflow algorithm (Cooper,
// Harvey & Kennedy) over a reverse postorder.
func (g *Graph) computeDominators() {
	nb := len(g.Blocks)
	rpo := g.reversePostorder()
	rpoIndex := make([]int, nb)
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	g.idom = make([]int, nb)
	for i := range g.idom {
		g.idom[i] = -1
	}
	g.idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if g.idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
					continue
				}
				// intersect
				x, y := p, newIdom
				for x != y {
					for rpoIndex[x] > rpoIndex[y] {
						x = g.idom[x]
					}
					for rpoIndex[y] > rpoIndex[x] {
						y = g.idom[y]
					}
				}
				newIdom = x
			}
			if newIdom != -1 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom[0] = -1
}

func (g *Graph) reversePostorder() []int {
	visited := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	// reverse
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether block a dominates block b.
func (g *Graph) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = g.idom[b]
	}
	return false
}

// Idom returns the immediate dominator of block b (-1 for the entry or
// unreachable blocks).
func (g *Graph) Idom(b int) int { return g.idom[b] }

// String renders a compact textual form for debugging.
func (g *Graph) String() string {
	s := ""
	for _, b := range g.Blocks {
		s += fmt.Sprintf("B%d [%d,%d) ->%v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return s
}

// Loop is a natural loop: a header block plus its body.
type Loop struct {
	// Head is the header block ID.
	Head int
	// Blocks is the set of member block IDs (including the header).
	Blocks map[int]bool
	Parent *Loop
	// Children are the immediately nested loops.
	Children []*Loop
	// Depth is 1 for outermost loops.
	Depth int
	// HeadLine is the source line of the loop header's first
	// instruction, for reporting.
	HeadLine sass.LineInfo
}

// Contains reports whether instruction index i belongs to the loop.
func (l *Loop) Contains(g *Graph, i int) bool {
	return l.Blocks[g.blockOf[i]]
}

// findLoops detects back edges (tail -> header where the header
// dominates the tail), builds natural loops, merges loops sharing a
// header, and nests them.
func (g *Graph) findLoops() {
	byHead := map[int]*Loop{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !g.Dominates(s, b.ID) {
				continue
			}
			l := byHead[s]
			if l == nil {
				l = &Loop{Head: s, Blocks: map[int]bool{s: true}}
				byHead[s] = l
			}
			// Natural loop: all nodes reaching the tail without
			// passing the header.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range g.Blocks[x].Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	if len(byHead) == 0 {
		return
	}
	var loops []*Loop
	for _, l := range byHead {
		l.HeadLine = g.Fn.Lines[g.Blocks[l.Head].Start]
		loops = append(loops, l)
	}
	// Smaller loops nest inside larger ones.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return loops[i].Head < loops[j].Head
	})
	for i, inner := range loops {
		for _, outer := range loops[i+1:] {
			if outer.Blocks[inner.Head] && containsAll(outer.Blocks, inner.Blocks) {
				inner.Parent = outer
				outer.Children = append(outer.Children, inner)
				break
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head < loops[j].Head })
	g.loops = loops
}

func containsAll(outer, inner map[int]bool) bool {
	for b := range inner {
		if !outer[b] {
			return false
		}
	}
	return true
}

// Loops returns all natural loops of the function, ordered by header.
func (g *Graph) Loops() []*Loop { return g.loops }

// InnermostLoop returns the innermost loop containing instruction i, or
// nil.
func (g *Graph) InnermostLoop(i int) *Loop {
	var best *Loop
	for _, l := range g.loops {
		if l.Contains(g, i) && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}

// SameLoop reports whether instructions i and j share a loop (the
// innermost loop of either contains both).
func (g *Graph) SameLoop(i, j int) bool {
	li := g.InnermostLoop(i)
	if li != nil && li.Contains(g, j) {
		return true
	}
	lj := g.InnermostLoop(j)
	return lj != nil && lj.Contains(g, i)
}
