package cfg

import (
	"testing"

	"gpa/internal/sass"
)

// diamond: entry branches to two arms that rejoin and loop.
const diamondSrc = `
.func diamond global
.line d.cu 1
	ISETP P0, R0, 0x0 {S:4}
	@P0 BRA ELSE {S:5}
	IADD R1, R1, 0x1 {S:4}
	BRA JOIN {S:5}
ELSE:
	IADD R1, R1, 0x2 {S:4}
JOIN:
	IADD R2, R1, 0x3 {S:4}
	EXIT
`

const loopSrc = `
.func loopnest global
.line l.cu 1
	MOV R0, 0x0 {S:2}
OUTER:
	MOV R1, 0x0 {S:2}
INNER:
	IADD R1, R1, 0x1 {S:4}
	ISETP P0, R1, 0x8 {S:4}
	@P0 BRA INNER {S:5}
	IADD R0, R0, 0x1 {S:4}
	ISETP P1, R0, 0x4 {S:4}
	@P1 BRA OUTER {S:5}
	EXIT
`

func build(t *testing.T, src, fn string) *Graph {
	t.Helper()
	m, err := sass.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	g, err := Build(m.Function(fn))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildDiamond(t *testing.T) {
	g := build(t, diamondSrc, "diamond")
	// Blocks: [0,2) entry, [2,4) then-arm, [4,5) else, [5,7) join+exit.
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4:\n%s", len(g.Blocks), g)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v, want 2", entry.Succs)
	}
	join := g.BlockOf(5)
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v, want 2", join.Preds)
	}
	if !g.Dominates(0, join.ID) {
		t.Error("entry must dominate join")
	}
	if g.Dominates(g.blockOf[2], join.ID) {
		t.Error("then-arm must not dominate join")
	}
	if g.Idom(join.ID) != 0 {
		t.Errorf("idom(join) = %d, want 0", g.Idom(join.ID))
	}
	if len(g.Loops()) != 0 {
		t.Errorf("diamond has %d loops, want 0", len(g.Loops()))
	}
}

func TestSuperBlockSplitting(t *testing.T) {
	m, err := sass.Assemble(diamondSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Function("diamond")
	super := BuildSuperBlocks(f)
	// Super blocks end only at branches/exits: [0,2) [2,4) [4,7)?? The
	// ELSE label at 4 and JOIN at 5 do not split; blocks end at BRA(1),
	// BRA(3), EXIT(6).
	if len(super) != 3 {
		t.Fatalf("got %d super blocks, want 3", len(super))
	}
	if super[2].Start != 4 || super[2].End != 7 {
		t.Errorf("super block 2 = [%d,%d), want [4,7)", super[2].Start, super[2].End)
	}
	// Full build splits the last super block at the JOIN target.
	g := build(t, diamondSrc, "diamond")
	if len(g.Blocks) != 4 {
		t.Errorf("split blocks = %d, want 4", len(g.Blocks))
	}
}

func TestLoopNesting(t *testing.T) {
	g := build(t, loopSrc, "loopnest")
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2:\n%s", len(loops), g)
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Depth == 2 {
			inner = l
		} else if l.Depth == 1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("depths wrong: %+v", loops)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent must be the outer loop")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Error("outer loop must have the inner loop as its only child")
	}
	// Instruction 2 (IADD R1) is in both loops; innermost must win.
	l := g.InnermostLoop(2)
	if l != inner {
		t.Errorf("InnermostLoop(2) = depth %d, want the inner loop", l.Depth)
	}
	// Instruction 5 (IADD R0) is only in the outer loop.
	if l := g.InnermostLoop(5); l != outer {
		t.Errorf("InnermostLoop(5) should be the outer loop, got %+v", l)
	}
	if !g.SameLoop(2, 3) {
		t.Error("instructions 2 and 3 share the inner loop")
	}
	if !g.SameLoop(2, 5) {
		t.Error("instructions 2 and 5 share the outer loop")
	}
}

func TestShortestDist(t *testing.T) {
	g := build(t, diamondSrc, "diamond")
	// 0:ISETP 1:BRA 2:IADD 3:BRA 4:IADD(ELSE) 5:IADD(JOIN) 6:EXIT
	cases := []struct{ i, j, want int }{
		{0, 1, 1},
		{0, 5, 3},  // ISETP -> BRA -> ELSE IADD -> JOIN (shortest arm)
		{2, 5, 2},  // IADD -> BRA -> JOIN
		{5, 0, -1}, // no path backwards
		{0, 6, 4},
	}
	for _, tc := range cases {
		if got := g.ShortestDist(tc.i, tc.j); got != tc.want {
			t.Errorf("ShortestDist(%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestLongestDist(t *testing.T) {
	g := build(t, diamondSrc, "diamond")
	// Longest path 0 -> 5 goes through the then-arm: 1(BRA) 2(IADD)
	// 3(BRA) 5(JOIN) = 4... then-arm blocks: entry[0,2) then[2,4)
	// join[5..]: from 0: tail=1 (BRA), then block adds 2, join reaches
	// j at offset 0: +1 => 4.
	if got := g.LongestDist(0, 5); got != 4 {
		t.Errorf("LongestDist(0,5) = %d, want 4", got)
	}
	if got := g.ShortestDist(0, 5); got != 3 {
		t.Errorf("ShortestDist(0,5) = %d, want 3", got)
	}
	// Same-block straight line.
	if got := g.LongestDist(5, 6); got != 1 {
		t.Errorf("LongestDist(5,6) = %d, want 1", got)
	}
	if got := g.LongestDist(5, 2); got != -1 {
		t.Errorf("LongestDist(5,2) = %d, want -1", got)
	}
}

func TestLoopCarriedDistance(t *testing.T) {
	g := build(t, loopSrc, "loopnest")
	// 2:IADD R1 (inner body) ... 4:@P0 BRA INNER. Loop-carried distance
	// from the ISETP at 3 back to IADD at 2: 3->4(BRA)->2: 2 steps.
	if got := g.ShortestDist(3, 2); got != 2 {
		t.Errorf("loop-carried ShortestDist(3,2) = %d, want 2", got)
	}
	// Self-cycle through the inner loop: 2 -> 3 -> 4 -> 2.
	if got := g.ShortestDist(2, 2); got != 3 {
		t.Errorf("ShortestDist(2,2) = %d, want 3", got)
	}
}

func TestOnEveryPath(t *testing.T) {
	g := build(t, diamondSrc, "diamond")
	// From entry ISETP(0) to JOIN(5): neither arm instruction is on
	// every path.
	if g.OnEveryPath(0, 2, 5) {
		t.Error("then-arm IADD is not on every path")
	}
	if g.OnEveryPath(0, 4, 5) {
		t.Error("else-arm IADD is not on every path")
	}
	// The BRA at 1 is on every path from 0 to 5.
	if !g.OnEveryPath(0, 1, 5) {
		t.Error("the conditional BRA is on every path 0->5")
	}
	// JOIN IADD(5) is on every path from 0 to EXIT(6).
	if !g.OnEveryPath(0, 5, 6) {
		t.Error("join instruction is on every path to EXIT")
	}
	if g.OnEveryPath(5, 2, 0) {
		t.Error("unreachable endpoints must report false")
	}
}

func TestReachesWithoutRedefine(t *testing.T) {
	src := `
.func rdef global
.line r.cu 1
	MOV R1, 0x1 {S:2}
	ISETP P0, R0, 0x0 {S:4}
	@P0 BRA SKIP {S:5}
	MOV R1, 0x2 {S:2}
SKIP:
	IADD R2, R1, 0x3 {S:4}
	EXIT
`
	g := build(t, src, "rdef")
	r1 := sass.R(1)
	// MOV at 0 reaches the IADD at 4 via the taken arm (skipping the
	// redefinition at 3).
	if !g.ReachesWithoutRedefine(0, 4, r1) {
		t.Error("def at 0 must reach use at 4 via the branch-taken path")
	}
	// The redefining MOV at 3 also reaches it.
	if !g.ReachesWithoutRedefine(3, 4, r1) {
		t.Error("def at 3 must reach use at 4")
	}
	// But from 0, going through 3, R1 is redefined: the only clean path
	// is the taken arm. Kill that arm by making it the avoided def:
	// from instruction 1 every fallthrough path redefines R1 at 3, and
	// the taken path skips 3. Now ask about a register defined on both
	// arms.
	src2 := `
.func rdef2 global
	MOV R1, 0x1 {S:2}
	MOV R1, 0x2 {S:2}
	IADD R2, R1, 0x3 {S:4}
	EXIT
`
	m, _ := sass.Assemble(src2)
	g2, _ := Build(m.Function("rdef2"))
	if g2.ReachesWithoutRedefine(0, 2, r1) {
		t.Error("def at 0 is killed by the redefinition at 1")
	}
}

func TestIrreducibleAndUnreachable(t *testing.T) {
	// A function with an unreachable block after an unconditional
	// branch must still build.
	src := `
.func dead global
	BRA END {S:5}
	IADD R0, R0, 0x1 {S:4}
END:
	EXIT
`
	g := build(t, src, "dead")
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(g.Blocks))
	}
	if g.ShortestDist(0, 1) != -1 {
		t.Error("dead block should be unreachable from entry")
	}
	if g.ShortestDist(0, 2) != 1 {
		t.Error("END reachable in one step")
	}
}
