package advisor

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAdviceJSONRoundTrip(t *testing.T) {
	ctx := memLoopCtx(t)
	adv := Advise(ctx)
	data, err := json.MarshalIndent(adv, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Advice
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Kernel != adv.Kernel || len(got.Entries) != len(adv.Entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got.Entries), len(adv.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i].Optimizer != adv.Entries[i].Optimizer {
			t.Errorf("entry %d optimizer %q vs %q", i, got.Entries[i].Optimizer, adv.Entries[i].Optimizer)
		}
		if got.Entries[i].Speedup != adv.Entries[i].Speedup {
			t.Errorf("entry %d speedup drifted", i)
		}
	}
}

func TestRenderEmptyAdvice(t *testing.T) {
	a := &Advice{Kernel: "k"}
	out := a.String()
	if !strings.Contains(out, "No optimization opportunities matched") {
		t.Errorf("empty advice rendering: %q", out)
	}
}

func TestAdviceDeterministic(t *testing.T) {
	ctx := memLoopCtx(t)
	a := Advise(ctx).String()
	b := Advise(ctx).String()
	if a != b {
		t.Error("Advise is not deterministic for a fixed context")
	}
}

func TestHotspotDistanceRendered(t *testing.T) {
	ctx := memLoopCtx(t)
	adv := Advise(ctx)
	out := adv.String()
	// At least one hotspot must render with a def->use distance, the
	// quantity the paper's Figure 8 shows per hotspot.
	if !strings.Contains(out, ", distance ") {
		t.Errorf("no hotspot distance in report:\n%s", out)
	}
	// Hotspot ratios are percentages of T; the top entry's ratio must
	// be <= 100%.
	for _, e := range adv.Entries {
		if e.Ratio < 0 || e.Ratio > 1.0001 {
			t.Errorf("entry %s ratio %v out of range", e.Optimizer, e.Ratio)
		}
		for _, h := range e.Hotspots {
			if h.Ratio < 0 || h.Ratio > e.Ratio+1e-9 {
				t.Errorf("hotspot ratio %v exceeds entry ratio %v (%s)", h.Ratio, e.Ratio, e.Optimizer)
			}
		}
	}
}
