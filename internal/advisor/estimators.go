package advisor

import "math"

// StallElimination implements Equation 2: assuming a code change can at
// best eliminate all matched stalls M out of T total samples,
//
//	Se = T / (T - M).
type StallElimination struct{}

// Estimate applies Equation 2.
func (StallElimination) Estimate(ctx *Context, m *Match) float64 {
	t := float64(ctx.T)
	if t <= 0 {
		return 1
	}
	matched := math.Min(m.Matched, t-1)
	if matched <= 0 {
		return 1
	}
	return t / (t - matched)
}

// LatencyHiding implements Equation 4: rearranged code can at best fill
// latency slots with the kernel's active samples A, so
//
//	Sh = T / (T - min(A, ML)).
//
// Theorem 5.1 of the paper bounds this at 2x, which Estimate preserves
// by construction. When the match carries per-scope information
// (Equation 5), each scope's speedup is bounded by the active samples
// available inside that scope, and the best scope wins:
//
//	Shl = T / (T - min(Σ_{l'∈nested(l)} A_{l'}, ML_l)).
type LatencyHiding struct{}

// Estimate applies Equation 5 when scopes are present, Equation 4
// otherwise.
func (LatencyHiding) Estimate(ctx *Context, m *Match) float64 {
	t := float64(ctx.T)
	if t <= 0 {
		return 1
	}
	kernelLevel := speedupFrom(t, float64(ctx.A), m.MatchedLatency)
	if len(m.Scopes) == 0 {
		return kernelLevel
	}
	best := 1.0
	for _, sc := range m.Scopes {
		s := speedupFrom(t, float64(sc.Actives), sc.MatchedLatency)
		if s > best {
			best = s
		}
	}
	// A scope can never beat the kernel-level bound.
	return math.Min(best, kernelLevel)
}

func speedupFrom(t, actives, matchedLatency float64) float64 {
	hidden := math.Min(actives, matchedLatency)
	if hidden <= 0 {
		return 1
	}
	if hidden >= t {
		hidden = t - 1
	}
	return t / (t - hidden)
}

// Parallel implements Equations 6-10: adjusting blocks or threads
// changes each scheduler's resident warps from W to Wnew (CW = Wnew/W,
// Equation 6) and its issue rate from I to Inew (CI = Inew/I, Equation
// 7), where a scheduler issues when at least one of its W warps is
// ready:
//
//	I    = 1 - (1 - RI)^W        (Equation 8)
//	Inew = 1 - (1 - RI)^Wnew     (Equation 9)
//	Sp   = (1 / CW) × CI × f     (Equation 10)
//
// f is an optimizer-specific factor (Section 5.2.2).
type Parallel struct {
	// WNew computes the new warps-per-scheduler count.
	WNew func(ctx *Context) float64
	// F computes the optimizer-specific factor f (nil = 1).
	F func(ctx *Context, w, wNew float64) float64
}

// Estimate applies Equation 10.
func (p Parallel) Estimate(ctx *Context, m *Match) float64 {
	w := float64(ctx.Profile.WarpsPerScheduler)
	if w <= 0 {
		return 1
	}
	wNew := p.WNew(ctx)
	if wNew <= 0 {
		return 1
	}
	// RI is the per-warp issue probability: samples observe individual
	// warps round-robin, so the issued-sample ratio estimates how often
	// any one warp is ready to issue.
	ri := clamp01(ctx.Profile.IssueRatio)
	i := 1 - math.Pow(1-ri, w)
	iNew := 1 - math.Pow(1-ri, wNew)
	if i <= 0 {
		return 1
	}
	cw := wNew / w
	ci := iNew / i
	f := 1.0
	if p.F != nil {
		f = p.F(ctx, w, wNew)
	}
	sp := (1 / cw) * ci * f
	if sp < 1 {
		return 1
	}
	return sp
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.999 {
		return 0.999
	}
	return v
}
