package advisor

import (
	"fmt"
	"math"
	"sort"

	"gpa/internal/blamer"
	"gpa/internal/gpusim"
	"gpa/internal/sass"
)

// Categories.
const (
	CatStallElimination = "stall elimination"
	CatLatencyHiding    = "latency hiding"
	CatParallel         = "parallel"
)

// DefaultOptimizers returns the Table 2 optimizer set paired with its
// estimators, in a deterministic order.
func DefaultOptimizers() []RankedOptimizer {
	return []RankedOptimizer{
		{RegisterReuse{}, StallElimination{}},
		{StrengthReduction{}, StallElimination{}},
		{FunctionSplit{}, StallElimination{}},
		{FastMath{}, StallElimination{}},
		{WarpBalance{}, StallElimination{}},
		{MemoryTransactionReduction{}, StallElimination{}},
		{LoopUnrolling{}, LatencyHiding{}},
		{CodeReordering{}, LatencyHiding{}},
		{FunctionInlining{}, LatencyHiding{}},
		{BlockIncrease{}, Parallel{WNew: blockIncreaseWNew, F: blockIncreaseF}},
		{ThreadIncrease{}, Parallel{WNew: threadIncreaseWNew, F: threadIncreaseF}},
	}
}

// RankedOptimizer pairs an optimizer with its estimator.
type RankedOptimizer struct {
	Optimizer Optimizer
	Estimator Estimator
}

// collectEdges walks every function's surviving blame edges, calling
// keep to decide membership, and accumulates matched stalls, matched
// latency stalls, and hotspots.
func collectEdges(ctx *Context, keep func(fc *FuncContext, e *blamer.Edge) bool) *Match {
	m := &Match{Applicable: true}
	for name, fc := range ctx.Funcs {
		for _, e := range fc.Blame.SurvivingEdges() {
			if !keep(fc, e) {
				continue
			}
			m.Matched += e.Stalls
			m.MatchedLatency += e.LatencyStalls
			m.Hotspots = append(m.Hotspots, Hotspot{
				FuncName: name,
				Def:      e.Def,
				Use:      e.Use,
				Stalls:   e.Stalls,
				Distance: e.PathLen,
				Detail:   e.Detail.String(),
			})
		}
	}
	finishHotspots(m)
	return m
}

// collectSelf gathers self-attributed stalls of one reason.
func collectSelf(ctx *Context, reason gpusim.StallReason) *Match {
	m := &Match{Applicable: true}
	for name, fc := range ctx.Funcs {
		for pc, reasons := range fc.Blame.Self {
			n := reasons[reason]
			if n == 0 {
				continue
			}
			m.Matched += float64(n)
			m.MatchedLatency += float64(fc.Blame.SelfLatency[pc][reason])
			m.Hotspots = append(m.Hotspots, Hotspot{
				FuncName: name,
				Def:      pc,
				Use:      -1,
				Stalls:   float64(n),
				Detail:   reason.String(),
			})
		}
	}
	finishHotspots(m)
	return m
}

// maxHotspots bounds the hotspot list per optimizer (the paper's report
// shows the top five).
const maxHotspots = 5

func finishHotspots(m *Match) {
	sort.Slice(m.Hotspots, func(i, j int) bool {
		if m.Hotspots[i].Stalls != m.Hotspots[j].Stalls {
			return m.Hotspots[i].Stalls > m.Hotspots[j].Stalls
		}
		if m.Hotspots[i].FuncName != m.Hotspots[j].FuncName {
			return m.Hotspots[i].FuncName < m.Hotspots[j].FuncName
		}
		return m.Hotspots[i].Def < m.Hotspots[j].Def
	})
	if len(m.Hotspots) > maxHotspots {
		m.Hotspots = m.Hotspots[:maxHotspots]
	}
}

// RegisterReuse matches memory dependency stalls of local memory
// read/write instructions — local traffic signals register spills.
type RegisterReuse struct{}

func (RegisterReuse) Name() string     { return "GPURegisterReuseOptimizer" }
func (RegisterReuse) Category() string { return CatStallElimination }
func (RegisterReuse) Suggestion() string {
	return `Local memory traffic indicates register spilling.
1. Split large loops or functions so fewer values are live at once.
2. Recompute cheap expressions instead of keeping them in registers.
3. Restructure data so per-thread arrays become registers or shared memory.`
}
func (RegisterReuse) Match(ctx *Context) *Match {
	return collectEdges(ctx, func(fc *FuncContext, e *blamer.Edge) bool {
		return e.Detail == blamer.DetailLocalMem
	})
}

// StrengthReduction matches execution dependency stalls whose source is
// a long-latency arithmetic instruction.
type StrengthReduction struct{}

func (StrengthReduction) Name() string     { return "GPUStrengthReductionOptimizer" }
func (StrengthReduction) Category() string { return CatStallElimination }
func (StrengthReduction) Suggestion() string {
	return `Long latency non-memory instructions are used. Look for improvements that are mathematically equivalent, but the compiler is not intelligent to do so.
1. Avoid integer division. Integer division requires using a special function unit to perform floating point transformations. One can use multiplication by a reciprocal instead.
2. Avoid conversion. If the float constant is multiplied by a 32-bit float value, the compiler might transform the 32-bit value to a 64-bit value first.`
}
func (StrengthReduction) Match(ctx *Context) *Match {
	return collectEdges(ctx, func(fc *FuncContext, e *blamer.Edge) bool {
		if e.Detail != blamer.DetailArith {
			return false
		}
		def := &fc.FS.Fn.Instrs[e.Def]
		return isLongLatencyArith(ctx, def)
	})
}

func isLongLatencyArith(ctx *Context, in *sass.Instruction) bool {
	switch in.Opcode.Info().Class {
	case sass.ClassMUFU, sass.ClassConvert, sass.ClassFP64:
		return true
	}
	if in.Opcode == sass.OpIMAD && in.Mods.Has(sass.ModWide) {
		return true
	}
	return ctx.GPU.FixedLatency(in.Opcode, in.Mods) >= 8
}

// FunctionSplit matches instruction fetch stalls: code too large for the
// instruction cache.
type FunctionSplit struct{}

func (FunctionSplit) Name() string     { return "GPUFunctionSplitOptimizer" }
func (FunctionSplit) Category() string { return CatStallElimination }
func (FunctionSplit) Suggestion() string {
	return `Instruction fetch stalls indicate the kernel's working set exceeds the instruction cache.
1. Split rarely-taken cold paths into separate device functions.
2. Reduce loop unrolling factors and forced inlining for cold code.`
}
func (FunctionSplit) Match(ctx *Context) *Match {
	return collectSelf(ctx, gpusim.ReasonInstructionFetch)
}

// FastMath matches stalls attributed to CUDA math-library functions.
type FastMath struct{}

func (FastMath) Name() string     { return "GPUFastMathOptimizer" }
func (FastMath) Category() string { return CatStallElimination }
func (FastMath) Suggestion() string {
	return `High-precision math functions dominate the stalls.
1. Compile with --use_fast_math if precision requirements allow.
2. Replace double-precision math calls with single-precision variants (sinf, expf, __expf).`
}
func (FastMath) Match(ctx *Context) *Match {
	// Positional matching: ALL stall samples observed at instructions
	// inside math-library code count — the whole routine disappears
	// when the fast variant replaces it.
	m := &Match{Applicable: true}
	for name, fc := range ctx.Funcs {
		for i, st := range fc.Stats {
			if !fc.FS.InMathFunction(i) {
				continue
			}
			// Scheduler competition (not_selected) persists after the
			// routine shrinks; everything else at math PCs goes away.
			var stalls, lat float64
			for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
				if r == gpusim.ReasonNotSelected {
					continue
				}
				stalls += float64(st.Stalls[r])
				lat += float64(st.LatencyStalls[r])
			}
			if stalls == 0 {
				continue
			}
			m.Matched += stalls
			m.MatchedLatency += lat
			m.Hotspots = append(m.Hotspots, Hotspot{
				FuncName: name, Def: i, Use: -1,
				Stalls: stalls, Detail: "math_function",
			})
		}
	}
	finishHotspots(m)
	return m
}

// WarpBalance matches warp synchronization stalls.
type WarpBalance struct{}

func (WarpBalance) Name() string     { return "GPUWarpBalanceOptimizer" }
func (WarpBalance) Category() string { return CatStallElimination }
func (WarpBalance) Suggestion() string {
	return `Warps wait long at synchronization points because work is imbalanced.
1. Distribute work evenly across warps before the barrier.
2. Use warp-level primitives (__shfl_sync, __reduce_sync) to avoid full-block barriers.
3. Move barriers out of divergent or variable-trip-count code.`
}
func (WarpBalance) Match(ctx *Context) *Match {
	return collectEdges(ctx, func(fc *FuncContext, e *blamer.Edge) bool {
		return e.Detail == blamer.DetailSync
	})
}

// MemoryTransactionReduction matches global memory throttling stalls.
type MemoryTransactionReduction struct{}

func (MemoryTransactionReduction) Name() string     { return "GPUMemoryTransactionReductionOptimizer" }
func (MemoryTransactionReduction) Category() string { return CatStallElimination }
func (MemoryTransactionReduction) Suggestion() string {
	return `The memory queue is saturated: each request splits into too many transactions.
1. Coalesce accesses: have consecutive threads touch consecutive addresses.
2. Replace repeated global reads shared across threads with constant or shared memory.
3. Use vectorized (64/128-bit) accesses to cut transaction counts.`
}
func (MemoryTransactionReduction) Match(ctx *Context) *Match {
	return collectSelf(ctx, gpusim.ReasonMemoryThrottle)
}

// LoopUnrolling matches global memory and execution dependency latency
// samples whose def and use sit in the same loop; unrolling gives the
// scheduler independent work to hide those latencies, bounded per loop
// by the loop's own active samples (Equation 5).
type LoopUnrolling struct{}

func (LoopUnrolling) Name() string     { return "GPULoopUnrollOptimizer" }
func (LoopUnrolling) Category() string { return CatLatencyHiding }
func (LoopUnrolling) Suggestion() string {
	return `Dependent instruction pairs inside loops leave latency unhidden.
1. Annotate the loop with #pragma unroll (pick an explicit factor if the compiler declines).
2. Unroll manually when trip counts are data dependent, processing several elements per iteration.`
}
func (LoopUnrolling) Match(ctx *Context) *Match {
	return collectScopedEdges(ctx, func(fc *FuncContext, e *blamer.Edge) bool {
		if e.Reason != gpusim.ReasonMemoryDependency && e.Reason != gpusim.ReasonExecutionDependency {
			return false
		}
		if e.Detail == blamer.DetailLocalMem || e.Detail == blamer.DetailConstMem {
			return false
		}
		// Unrolling only helps dependencies carried within one loop.
		return fc.FS.CFG.SameLoop(e.Def, e.Use)
	})
}

// collectScopedEdges is collectEdges plus Equation 5 scope analysis:
// each matched edge's latency stalls accrue to the innermost loop
// containing its use (falling back to the def's loop, then to a
// function-wide scope), and each scope records the active samples
// available inside it.
func collectScopedEdges(ctx *Context, keep func(fc *FuncContext, e *blamer.Edge) bool) *Match {
	m := &Match{Applicable: true}
	type scopeKey struct {
		fn   string
		head int // loop head block, or -1 for the function scope
	}
	scopes := map[scopeKey]*Scope{}
	for name, fc := range ctx.Funcs {
		for _, e := range fc.Blame.SurvivingEdges() {
			if !keep(fc, e) {
				continue
			}
			l := fc.FS.CFG.InnermostLoop(e.Use)
			if l == nil {
				l = fc.FS.CFG.InnermostLoop(e.Def)
			}
			key := scopeKey{name, -1}
			if l != nil {
				key.head = l.Head
			}
			sc := scopes[key]
			if sc == nil {
				sc = &Scope{}
				if l != nil {
					sc.Label = fmt.Sprintf("%s loop at line %d", name, l.HeadLine.Line)
					sc.Actives = activeSamplesInLoop(fc, l)
				} else {
					sc.Label = fmt.Sprintf("%s function scope", name)
					for _, st := range fc.Stats {
						sc.Actives += st.Active
					}
				}
				scopes[key] = sc
			}
			sc.MatchedLatency += e.LatencyStalls
			m.Matched += e.Stalls
			m.MatchedLatency += e.LatencyStalls
			m.Hotspots = append(m.Hotspots, Hotspot{
				FuncName: name, Def: e.Def, Use: e.Use,
				Stalls: e.Stalls, Distance: e.PathLen, Detail: e.Detail.String(),
			})
		}
	}
	keys := make([]scopeKey, 0, len(scopes))
	for k := range scopes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].head < keys[j].head
	})
	for _, k := range keys {
		m.Scopes = append(m.Scopes, *scopes[k])
	}
	finishHotspots(m)
	return m
}

// CodeReordering matches global memory and execution dependency stalls
// with short def-use distances: separating defs from uses hides latency.
type CodeReordering struct{}

func (CodeReordering) Name() string     { return "GPUCodeReorderOptimizer" }
func (CodeReordering) Category() string { return CatLatencyHiding }
func (CodeReordering) Suggestion() string {
	return `Loads sit too close to their first use.
1. Read subscripted or pointer-chased values well before they are consumed (e.g. fetch the next iteration's data before a synchronization).
2. Interleave independent computation between a load and its use.`
}
func (CodeReordering) Match(ctx *Context) *Match {
	// Reordering only rearranges code within its scope, so Equation 5
	// bounds each loop's gain by the loop's own active samples.
	return collectScopedEdges(ctx, func(fc *FuncContext, e *blamer.Edge) bool {
		if e.Reason != gpusim.ReasonMemoryDependency && e.Reason != gpusim.ReasonExecutionDependency {
			return false
		}
		return e.Detail == blamer.DetailGlobalMem || e.Detail == blamer.DetailArith ||
			e.Detail == blamer.DetailShared
	})
}

// FunctionInlining matches stalls inside device functions and at their
// call sites: call overhead and lost scheduling freedom.
type FunctionInlining struct{}

func (FunctionInlining) Name() string     { return "GPUFunctionInlineOptimizer" }
func (FunctionInlining) Category() string { return CatLatencyHiding }
func (FunctionInlining) Suggestion() string {
	return `Device function calls block instruction scheduling across the call boundary.
1. Mark small hot functions __forceinline__ (size and register limits can defeat always_inline; inline manually then).
2. Integrate tiny helper bodies into their callers.`
}
func (FunctionInlining) Match(ctx *Context) *Match {
	m := &Match{Applicable: true}
	for name, fc := range ctx.Funcs {
		isDevice := fc.FS.Fn.Visibility == sass.VisDevice
		for i, st := range fc.Stats {
			in := &fc.FS.Fn.Instrs[i]
			atCall := in.Opcode == sass.OpCAL || in.Opcode == sass.OpRET
			if !isDevice && !atCall {
				continue
			}
			// Pipe pressure and scheduler competition survive inlining;
			// only dependency/fetch/other stalls at the boundary go away.
			var stalls, lat float64
			for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
				if r == gpusim.ReasonNotSelected || r == gpusim.ReasonPipeBusy {
					continue
				}
				stalls += float64(st.Stalls[r])
				lat += float64(st.LatencyStalls[r])
			}
			if stalls == 0 {
				continue
			}
			m.Matched += stalls
			m.MatchedLatency += lat
			m.Hotspots = append(m.Hotspots, Hotspot{
				FuncName: name, Def: i, Use: -1,
				Stalls: stalls, Detail: "device_function",
			})
		}
	}
	finishHotspots(m)
	return m
}

// BlockIncrease matches kernels that launch fewer blocks than the GPU
// has SMs: most of the chip idles.
type BlockIncrease struct{}

func (BlockIncrease) Name() string     { return "GPUBlockIncreaseOptimizer" }
func (BlockIncrease) Category() string { return CatParallel }
func (BlockIncrease) Suggestion() string {
	return `The launch uses fewer blocks than the GPU has SMs, leaving SMs idle.
1. Reduce the number of threads per block while increasing the number of blocks.
2. Split per-block work so the grid covers every SM.`
}
func (BlockIncrease) Match(ctx *Context) *Match {
	if ctx.Profile.Blocks >= ctx.GPU.NumSMs {
		return &Match{Applicable: false}
	}
	// The whole kernel is affected.
	return &Match{Applicable: true, Matched: float64(ctx.T), MatchedLatency: float64(ctx.L)}
}

// blockIncreaseWNew: doubling the block count spreads the same threads
// over twice as many SMs, halving each scheduler's resident warps
// (CW = 1/2); Equation 10's 1/CW term then credits the extra SMs.
func blockIncreaseWNew(ctx *Context) float64 {
	blocks := ctx.Profile.Blocks
	newBlocks := blocks * 2
	if newBlocks > ctx.GPU.NumSMs {
		newBlocks = ctx.GPU.NumSMs
	}
	if newBlocks <= blocks {
		return float64(ctx.Profile.WarpsPerScheduler)
	}
	return float64(ctx.Profile.WarpsPerScheduler) * float64(blocks) / float64(newBlocks)
}

// blockIncreaseF implements the optimizer-specific factor f of Equation
// 10 (Section 5.2.2): with fewer resident warps per scheduler, the
// pipeline, memory-throttle, and selection stalls largely disappear, so
// f credits their removal — capped so the total never exceeds the SM
// scaling 1/CW.
func blockIncreaseF(ctx *Context, w, wNew float64) float64 {
	t := float64(ctx.T)
	if t <= 0 {
		return 1
	}
	removable := float64(ctx.Stalls[gpusim.ReasonPipeBusy] +
		ctx.Stalls[gpusim.ReasonMemoryThrottle] +
		ctx.Stalls[gpusim.ReasonNotSelected])
	if removable >= t {
		removable = t - 1
	}
	f := t / (t - removable)
	// Cap: Sp = (1/CW)*CI*f must not exceed 1/CW, i.e. f <= 1/CI.
	ri := clamp01(ctx.Profile.IssueRatio)
	i := 1 - math.Pow(1-ri, w)
	iNew := 1 - math.Pow(1-ri, wNew)
	if i > 0 && iNew > 0 {
		if maxF := i / iNew; f > maxF {
			f = maxF
		}
	}
	return f
}

// ThreadIncrease matches kernels whose occupancy is limited by the
// number of threads per block.
type ThreadIncrease struct{}

func (ThreadIncrease) Name() string     { return "GPUThreadIncreaseOptimizer" }
func (ThreadIncrease) Category() string { return CatParallel }
func (ThreadIncrease) Suggestion() string {
	return `Occupancy is limited by the threads-per-block count: each SM hosts too few warps to hide latency.
1. Increase the block size (threads per block).
2. Keep register and shared-memory use per block low enough to stay at full occupancy.`
}
func (ThreadIncrease) Match(ctx *Context) *Match {
	if ctx.Profile.OccupancyLimiter != "blocks" && ctx.Profile.OccupancyLimiter != "threads" {
		return &Match{Applicable: false}
	}
	maxW := ctx.GPU.MaxWarpsPerSM / ctx.GPU.SchedulersPerSM
	if ctx.Profile.WarpsPerScheduler >= maxW {
		return &Match{Applicable: false}
	}
	return &Match{Applicable: true, Matched: float64(ctx.T), MatchedLatency: float64(ctx.L)}
}

// threadIncreaseWNew: growing the block toward the occupancy limit
// raises resident warps per scheduler to the architectural maximum
// reachable by block-size tuning (4x at most per step).
func threadIncreaseWNew(ctx *Context) float64 {
	w := float64(ctx.Profile.WarpsPerScheduler)
	maxW := float64(ctx.GPU.MaxWarpsPerSM / ctx.GPU.SchedulersPerSM)
	wNew := w * 4
	if wNew > maxW {
		wNew = maxW
	}
	if wNew < w {
		wNew = w
	}
	return wNew
}

// threadIncreaseF compensates Equation 10's 1/CW term for thread
// increase: total work is conserved and the grid shrinks as blocks grow,
// so block waves fold entirely into the issue-rate change and the
// speedup is CI alone (f = CW).
func threadIncreaseF(ctx *Context, w, wNew float64) float64 {
	return wNew / w
}
