package advisor

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// HotspotReport is one rendered hotspot of an advice entry.
type HotspotReport struct {
	Detail   string  `json:"detail"`
	Ratio    float64 `json:"ratio"`   // hotspot stalls / T
	Speedup  float64 `json:"speedup"` // Equation 2 applied to this hotspot alone
	Distance int     `json:"distance,omitempty"`
	From     string  `json:"from"`
	To       string  `json:"to,omitempty"`
}

// AdviceEntry is one optimizer's ranked advice.
type AdviceEntry struct {
	Optimizer  string          `json:"optimizer"`
	Category   string          `json:"category"`
	Ratio      float64         `json:"ratio"` // M / T
	Speedup    float64         `json:"estimatedSpeedup"`
	Suggestion string          `json:"suggestion"`
	Hotspots   []HotspotReport `json:"hotspots,omitempty"`
}

// Advice is the full report for one kernel.
type Advice struct {
	Kernel  string        `json:"kernel"`
	Entries []AdviceEntry `json:"entries"`
}

// Advise runs optimizers over the context and ranks their advice by
// estimated speedup. With no explicit optimizers the Table 2 default
// set runs; custom optimizers can be appended (the paper: "Users can
// add custom optimizers to match other inefficiency patterns").
func Advise(ctx *Context, optimizers ...RankedOptimizer) *Advice {
	if len(optimizers) == 0 {
		optimizers = DefaultOptimizers()
	}
	adv := &Advice{Kernel: ctx.Profile.Kernel}
	for _, ro := range optimizers {
		m := ro.Optimizer.Match(ctx)
		if m == nil || !m.Applicable {
			continue
		}
		speedup := ro.Estimator.Estimate(ctx, m)
		entry := AdviceEntry{
			Optimizer:  ro.Optimizer.Name(),
			Category:   ro.Optimizer.Category(),
			Ratio:      ratio(m.Matched, ctx.T),
			Speedup:    speedup,
			Suggestion: ro.Optimizer.Suggestion(),
		}
		for _, h := range m.Hotspots {
			fc := ctx.Funcs[h.FuncName]
			hr := HotspotReport{
				Detail:   h.Detail,
				Ratio:    ratio(h.Stalls, ctx.T),
				Speedup:  StallElimination{}.Estimate(ctx, &Match{Matched: h.Stalls, Applicable: true}),
				Distance: h.Distance,
				From:     hotspotLocation(fc, h.Def),
			}
			if h.Use >= 0 {
				hr.To = hotspotLocation(fc, h.Use)
			}
			entry.Hotspots = append(entry.Hotspots, hr)
		}
		adv.Entries = append(adv.Entries, entry)
	}
	sort.SliceStable(adv.Entries, func(i, j int) bool {
		if adv.Entries[i].Speedup != adv.Entries[j].Speedup {
			return adv.Entries[i].Speedup > adv.Entries[j].Speedup
		}
		return adv.Entries[i].Ratio > adv.Entries[j].Ratio
	})
	return adv
}

func ratio(part float64, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return part / float64(total)
}

func hotspotLocation(fc *FuncContext, instr int) string {
	if fc == nil {
		return "<unknown>"
	}
	return fc.FS.SourceContext(instr) + "\n      " + fc.FS.Location(instr)
}

// Top returns the first n entries (fewer if the report is shorter).
func (a *Advice) Top(n int) []AdviceEntry {
	if n > len(a.Entries) {
		n = len(a.Entries)
	}
	return a.Entries[:n]
}

// Render writes the report in the paper's Figure 8 style.
func (a *Advice) Render(w io.Writer) {
	fmt.Fprintf(w, "GPA performance report for kernel %s\n", a.Kernel)
	fmt.Fprintf(w, "%s\n", strings.Repeat("=", 60))
	if len(a.Entries) == 0 {
		fmt.Fprintln(w, "No optimization opportunities matched.")
		return
	}
	for _, e := range a.Entries {
		fmt.Fprintf(w, "\nApply %s optimization, ratio %.3f%%, estimate speedup %.3fx\n",
			e.Optimizer, e.Ratio*100, e.Speedup)
		for _, line := range strings.Split(e.Suggestion, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
		for i, h := range e.Hotspots {
			fmt.Fprintf(w, "\n  %d. Hot BLAME GINS:LAT_%s code, ratio %.3f%%, speedup %.3fx",
				i+1, strings.ToUpper(h.Detail), h.Ratio*100, h.Speedup)
			if h.Distance > 0 {
				fmt.Fprintf(w, ", distance %d", h.Distance)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "    From %s\n", h.From)
			if h.To != "" {
				fmt.Fprintf(w, "    To %s\n", h.To)
			}
		}
	}
}

// String renders to a string.
func (a *Advice) String() string {
	var sb strings.Builder
	a.Render(&sb)
	return sb.String()
}
