// Package advisor implements GPA's performance optimizers and
// estimators (Section 5 of the paper). Optimizers encode pattern rules
// that match apportioned stalls against program structure and
// architectural features; estimators model the GPU's execution to
// predict each optimizer's speedup (Equations 2-10); the advisor ranks
// the optimizers by estimated speedup and renders a Figure 8-style
// advice report.
//
// The optimizer set is the paper's Table 2 — six stall-elimination
// optimizers (register reuse, strength reduction, function split, fast
// math, warp balance, memory transaction reduction), three
// latency-hiding optimizers (loop unrolling, code reordering, function
// inlining), and two parallel optimizers (block increase, thread
// increase) — and is extensible: Advise accepts custom optimizers.
//
// This is the last stage of the Figure 2 pipeline: input is the module,
// its profile, and the arch.GPU model the profile was taken on (the
// parallel estimators read the model's SM count and occupancy limits,
// so the same profile yields different advice on a 40-SM T4 than on a
// 108-SM A100); output is a ranked *Advice report. BuildContext runs
// the blamer over every profiled function first, so Context carries
// both the raw sample quantities (T, A, L) and the apportioned blame
// edges.
package advisor

import (
	"fmt"

	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/cfg"
	"gpa/internal/gpusim"
	"gpa/internal/profiler"
	"gpa/internal/sampling"
	"gpa/internal/sass"
	"gpa/internal/structure"
)

// FuncContext is the per-function analysis state.
type FuncContext struct {
	FS     *structure.FuncStructure
	Stats  []sampling.PCStats
	Issued []int64
	Blame  *blamer.Result
}

// Context bundles everything optimizers and estimators consume.
type Context struct {
	GPU       *arch.GPU
	Module    *sass.Module
	Structure *structure.Structure
	Profile   *profiler.Profile
	Funcs     map[string]*FuncContext

	// T, A, L are the total, active, and latency sample counts of the
	// kernel (the quantities of Equations 2-5).
	T, A, L int64
	// Stalls[r] totals stall samples per reason across all functions.
	Stalls [gpusim.NumReasons]int64
}

// BuildContext joins a module with its profile: program structure is
// recovered, per-function sample views are built, and the instruction
// blamer runs over every profiled function.
func BuildContext(mod *sass.Module, prof *profiler.Profile, gpu *arch.GPU,
	opts blamer.Options) (*Context, error) {
	st, err := structure.Analyze(mod)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	return BuildContextWithStructure(mod, st, prof, gpu, opts)
}

// BuildContextWithStructure is BuildContext with the program structure
// supplied by the caller. The structure is the arch-independent half of
// the front-end; gpa.Kernel memoizes it, so a cross-architecture sweep
// analyzes the CFG and loop nests once and shares them across every
// per-model advice run. st must have been analyzed from mod and is only
// read.
func BuildContextWithStructure(mod *sass.Module, st *structure.Structure, prof *profiler.Profile,
	gpu *arch.GPU, opts blamer.Options) (*Context, error) {
	if gpu == nil {
		g, err := arch.ByArchFlag(mod.Arch)
		if err != nil {
			return nil, fmt.Errorf("advisor: %w", err)
		}
		gpu = g
	}
	views, err := prof.FuncViews(mod)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	ctx := &Context{
		GPU:       gpu,
		Module:    mod,
		Structure: st,
		Profile:   prof,
		Funcs:     map[string]*FuncContext{},
		T:         prof.TotalSamples,
		A:         prof.ActiveSamples,
		L:         prof.LatencySamples,
	}
	for name, v := range views {
		fs := st.Func(name)
		if fs == nil {
			return nil, fmt.Errorf("advisor: profile names unknown function %q", name)
		}
		bl, err := blamer.Analyze(fs, v.Stats, v.Issued, gpu, opts)
		if err != nil {
			return nil, fmt.Errorf("advisor: %w", err)
		}
		ctx.Funcs[name] = &FuncContext{FS: fs, Stats: v.Stats, Issued: v.Issued, Blame: bl}
		for i := range v.Stats {
			for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
				ctx.Stalls[r] += v.Stats[i].Stalls[r]
			}
		}
	}
	return ctx, nil
}

// Hotspot is one ranked def/use pair (or single site) contributing
// matched stalls.
type Hotspot struct {
	FuncName string
	// Def and Use are instruction indices; Use is -1 for self-attributed
	// hotspots (throttle, fetch).
	Def, Use int
	// Stalls is the matched stall mass at this hotspot.
	Stalls float64
	// Distance is the def->use path length in issue slots.
	Distance int
	// Detail labels the dependency class.
	Detail string
}

// Match is an optimizer's result: the stall mass it matched and where.
type Match struct {
	// Matched is M of Equation 2 (stall samples matched).
	Matched float64
	// MatchedLatency is ML of Equations 3-5 (latency samples matched).
	MatchedLatency float64
	// ScopeActives, for scope-limited latency hiding (Equation 5), maps
	// a scope label to (active samples in scope, matched latency in
	// scope).
	Scopes []Scope
	// Hotspots ranked by stalls, descending.
	Hotspots []Hotspot
	// Applicable is false when the optimizer's precondition failed
	// entirely (no advice entry is emitted).
	Applicable bool
}

// Scope is one optimization scope (a loop or function) for Equation 5.
type Scope struct {
	Label string
	// Actives is Σ active samples within the scope (the paper's
	// Σ_{l' ∈ nested(l)} A_{l'}).
	Actives int64
	// MatchedLatency is ML_l.
	MatchedLatency float64
}

// Optimizer matches an inefficiency pattern.
type Optimizer interface {
	Name() string
	// Category is "stall elimination", "latency hiding", or "parallel".
	Category() string
	// Suggestion is the human-readable optimization guidance.
	Suggestion() string
	Match(ctx *Context) *Match
}

// Estimator predicts an optimizer's speedup from its match.
type Estimator interface {
	Estimate(ctx *Context, m *Match) float64
}

// activeSamplesInLoop sums active samples over a loop's blocks. Nested
// loops' blocks are subsets of the outer loop's block set, so this is
// exactly Σ_{l' ∈ nested(l)} A_{l'} of Equation 5.
func activeSamplesInLoop(fc *FuncContext, l *cfg.Loop) int64 {
	var total int64
	for b := range l.Blocks {
		blk := fc.FS.CFG.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			total += fc.Stats[i].Active
		}
	}
	return total
}
