package advisor

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRenderGoldenFigure8 pins the Figure 8-style report rendering
// byte-for-byte against testdata/figure8.golden, so any drift in the
// format the CLI prints and gpad serves (and caches) is a deliberate,
// reviewed change. Regenerate with `go test ./internal/advisor -run
// Golden -update`.
func TestRenderGoldenFigure8(t *testing.T) {
	advice := &Advice{
		Kernel: "calculate_temp",
		Entries: []AdviceEntry{
			{
				Optimizer:  "GPUStrengthReductionOptimizer",
				Category:   "stall elimination",
				Ratio:      0.31525,
				Speedup:    1.28437,
				Suggestion: "Reduce expensive operations\nReplace div/mod by shifts where possible",
				Hotspots: []HotspotReport{
					{
						Detail:   "exc_dep",
						Ratio:    0.21034,
						Speedup:  1.17205,
						Distance: 3,
						From: "I2F R5, R4" + "\n      " +
							"calculate_temp at hotspot.cu:188",
						To: "F2I R6, R5" + "\n      " +
							"calculate_temp at hotspot.cu:189",
					},
					{
						Detail:  "exc_dep",
						Ratio:   0.08111,
						Speedup: 1.06241,
						From: "FMUL R7, R6, R2" + "\n      " +
							"calculate_temp at hotspot.cu:204",
					},
				},
			},
			{
				Optimizer:  "GPULoopUnrollingOptimizer",
				Category:   "latency hiding",
				Ratio:      0.12006,
				Speedup:    1.04119,
				Suggestion: "Unroll hot loops to expose instruction-level parallelism",
			},
		},
	}
	got := advice.String()
	compareGolden(t, "figure8.golden", got)

	empty := &Advice{Kernel: "noop"}
	compareGolden(t, "figure8_empty.golden", empty.String())
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: rendering drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(diff context: first divergence at byte %d)",
			name, got, want, firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestRenderMatchesString guards the two render entry points against
// diverging.
func TestRenderMatchesString(t *testing.T) {
	a := &Advice{Kernel: "k", Entries: []AdviceEntry{{Optimizer: "X", Suggestion: "s"}}}
	var sb strings.Builder
	a.Render(&sb)
	if sb.String() != a.String() {
		t.Error("Render and String disagree")
	}
}
