package advisor

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/gpusim"
	"gpa/internal/profiler"
	"gpa/internal/sass"
)

func TestStallEliminationEquation2(t *testing.T) {
	ctx := &Context{T: 100}
	cases := []struct {
		m    float64
		want float64
	}{
		{0, 1},
		{20, 1.25},
		{50, 2},
		{90, 10},
	}
	for _, tc := range cases {
		got := StallElimination{}.Estimate(ctx, &Match{Matched: tc.m})
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Se(M=%v) = %v, want %v", tc.m, got, tc.want)
		}
	}
	// M approaching T must not blow up to infinity.
	if got := (StallElimination{}).Estimate(ctx, &Match{Matched: 100}); math.IsInf(got, 1) {
		t.Error("Se(M=T) must stay finite")
	}
}

func TestLatencyHidingEquation4(t *testing.T) {
	// T=100, A=30, ML=50: min(A,ML)=30 -> 100/70.
	ctx := &Context{T: 100, A: 30, L: 70}
	got := LatencyHiding{}.Estimate(ctx, &Match{MatchedLatency: 50})
	want := 100.0 / 70.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Sh = %v, want %v", got, want)
	}
	// ML < A: bounded by ML.
	got = LatencyHiding{}.Estimate(ctx, &Match{MatchedLatency: 10})
	want = 100.0 / 90.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Sh = %v, want %v", got, want)
	}
}

// TestTheorem51 property-checks the paper's Theorem 5.1: the latency
// hiding speedup never exceeds 2x, for any sample mix with A+L=T and
// ML <= L.
func TestTheorem51(t *testing.T) {
	f := func(a, l, ml uint16) bool {
		A := int64(a)%5000 + 1
		L := int64(l)%5000 + 1
		ML := int64(ml) % (L + 1)
		ctx := &Context{T: A + L, A: A, L: L}
		s := LatencyHiding{}.Estimate(ctx, &Match{MatchedLatency: float64(ML)})
		return s >= 1 && s <= 2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestScopeAnalysisEquation5(t *testing.T) {
	// Kernel: T=100, A=40. A loop scope holds only 5 active samples but
	// 30 matched latency samples: the scope bound (5) applies, not the
	// kernel bound (min(40,30)=30).
	ctx := &Context{T: 100, A: 40, L: 60}
	m := &Match{
		MatchedLatency: 30,
		Scopes:         []Scope{{Label: "loop", Actives: 5, MatchedLatency: 30}},
	}
	got := LatencyHiding{}.Estimate(ctx, m)
	want := 100.0 / 95.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Shl = %v, want %v (scope-limited)", got, want)
	}
	// A scope with plenty of actives converges to the kernel-level
	// estimate.
	m.Scopes[0].Actives = 1000
	got = LatencyHiding{}.Estimate(ctx, m)
	want = 100.0 / 70.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Shl = %v, want %v", got, want)
	}
}

func TestParallelEquations(t *testing.T) {
	// Block increase: W=8 -> 4 over twice the SMs. RI=0.3.
	prof := &profiler.Profile{WarpsPerScheduler: 8, IssueRatio: 0.3, Blocks: 16}
	ctx := &Context{GPU: arch.VoltaV100(), Profile: prof, T: 1000}
	est := Parallel{WNew: func(*Context) float64 { return 4 }}
	got := est.Estimate(ctx, &Match{})
	i := 1 - math.Pow(0.7, 8)
	iNew := 1 - math.Pow(0.7, 4)
	want := 2 * (iNew / i)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Sp = %v, want %v", got, want)
	}
	if got <= 1 || got >= 2 {
		t.Errorf("block-increase speedup %v should land in (1,2) at RI=0.3", got)
	}
	// Thread increase with f=CW collapses to CI.
	estT := Parallel{
		WNew: func(*Context) float64 { return 16 },
		F:    func(_ *Context, w, wNew float64) float64 { return wNew / w },
	}
	prof.IssueRatio = 0.05
	got = estT.Estimate(ctx, &Match{})
	i = 1 - math.Pow(0.95, 8)
	iNew = 1 - math.Pow(0.95, 16)
	want = iNew / i
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("thread-increase Sp = %v, want CI = %v", got, want)
	}
	if want <= 1.3 {
		t.Fatalf("test premise broken: CI should be large at low RI, got %v", want)
	}
}

// buildTestContext profiles a kernel and builds the advisor context.
func buildTestContext(t *testing.T, src, entry string, launch gpusim.LaunchConfig,
	spec *gpusim.Spec) *Context {
	t.Helper()
	mod := sass.MustAssemble(src)
	prog, err := gpusim.Load(mod)
	if err != nil {
		t.Fatal(err)
	}
	var wl gpusim.Workload = gpusim.NopWorkload{}
	if spec != nil {
		wl, err = spec.Bind(prog)
		if err != nil {
			t.Fatal(err)
		}
	}
	prof, err := profiler.Collect(context.Background(), mod, launch, wl, profiler.Options{
		GPU: arch.VoltaV100(), SimSMs: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := BuildContext(mod, prof, arch.VoltaV100(), blamer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

const memLoopSrc = `
.func memloop global
.line ml.cu 10
	MOV R0, 0x0 {S:2}
LOOP:
.line ml.cu 12
	LDG.E.32 R4, [R2] {S:1, W:0}
.line ml.cu 13
	FADD R5, R4, R5 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`

func memLoopCtx(t *testing.T) *Context {
	return buildTestContext(t, memLoopSrc, "memloop",
		gpusim.LaunchConfig{Entry: "memloop", Grid: gpusim.Dim(2560), Block: gpusim.Dim(256), RegsPerThread: 32},
		&gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
			{Func: "memloop", Label: "BR0"}: gpusim.UniformTrips(120),
		}})
}

func TestAdviseMemoryBoundLoop(t *testing.T) {
	ctx := memLoopCtx(t)
	adv := Advise(ctx)
	if len(adv.Entries) == 0 {
		t.Fatal("no advice entries")
	}
	byName := map[string]AdviceEntry{}
	for _, e := range adv.Entries {
		byName[e.Optimizer] = e
	}
	lu, ok := byName["GPULoopUnrollOptimizer"]
	if !ok {
		t.Fatalf("loop unrolling absent: %+v", adv.Entries)
	}
	if lu.Ratio <= 0.3 {
		t.Errorf("loop unrolling matched ratio %v; memory-dependency stalls should dominate", lu.Ratio)
	}
	if lu.Speedup <= 1 || lu.Speedup > 2 {
		t.Errorf("loop unrolling speedup %v out of (1,2]", lu.Speedup)
	}
	cr, ok := byName["GPUCodeReorderOptimizer"]
	if !ok {
		t.Fatal("code reordering absent")
	}
	if len(cr.Hotspots) == 0 {
		t.Fatal("code reordering has no hotspots")
	}
	h := cr.Hotspots[0]
	if h.Distance <= 0 {
		t.Errorf("hotspot distance = %d", h.Distance)
	}
	if !strings.Contains(h.From, "ml.cu:12") {
		t.Errorf("hotspot From = %q, want the LDG line ml.cu:12", h.From)
	}
	if !strings.Contains(h.To, "ml.cu:13") {
		t.Errorf("hotspot To = %q, want the FADD line ml.cu:13", h.To)
	}
	if !strings.Contains(h.From, "in Loop at Line 10") && !strings.Contains(h.From, "in Loop at Line 12") {
		t.Errorf("hotspot From lacks loop context: %q", h.From)
	}
}

func TestRenderFigure8Shape(t *testing.T) {
	ctx := memLoopCtx(t)
	adv := Advise(ctx)
	out := adv.String()
	for _, want := range []string{
		"GPA performance report for kernel memloop",
		"estimate speedup",
		"Hot BLAME GINS:LAT_",
		"distance",
		"From memloop at ml.cu:12",
		"ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Entries must be sorted by speedup, descending.
	for i := 1; i < len(adv.Entries); i++ {
		if adv.Entries[i].Speedup > adv.Entries[i-1].Speedup+1e-9 {
			t.Errorf("entries not sorted: %v after %v",
				adv.Entries[i].Speedup, adv.Entries[i-1].Speedup)
		}
	}
}

const barImbalanceSrc = `
.func barky global
.line bk.cu 5
	MOV R0, 0x0 {S:2}
LOOP:
	FFMA R1, R1, R2, R3 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x20 {S:4}
BR0:	@P0 BRA LOOP {S:5}
.line bk.cu 9
	BAR.SYNC {S:2}
	FFMA R1, R1, R2, R3 {S:4}
	EXIT
`

func TestAdviseWarpBalance(t *testing.T) {
	ctx := buildTestContext(t, barImbalanceSrc, "barky",
		gpusim.LaunchConfig{Entry: "barky", Grid: gpusim.Dim(2560), Block: gpusim.Dim(256), RegsPerThread: 32},
		&gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
			{Func: "barky", Label: "BR0"}: func(w gpusim.WarpCtx) int {
				if w.WarpInBlock == 0 {
					return 600
				}
				return 30
			},
		}})
	adv := Advise(ctx)
	var wb *AdviceEntry
	for i := range adv.Entries {
		if adv.Entries[i].Optimizer == "GPUWarpBalanceOptimizer" {
			wb = &adv.Entries[i]
		}
	}
	if wb == nil {
		t.Fatalf("warp balance absent: %+v", adv.Entries)
	}
	if wb.Ratio < 0.2 {
		t.Errorf("warp balance ratio %v; sync stalls should be heavy", wb.Ratio)
	}
	if len(wb.Hotspots) == 0 || !strings.Contains(wb.Hotspots[0].From, "bk.cu:9") {
		t.Errorf("warp balance hotspot should point at the BAR line: %+v", wb.Hotspots)
	}
	// Top-ranked entry overall should be warp balance for this kernel.
	if adv.Entries[0].Optimizer != "GPUWarpBalanceOptimizer" {
		t.Errorf("top advice = %s, want warp balance", adv.Entries[0].Optimizer)
	}
}

func TestBlockIncreaseApplicability(t *testing.T) {
	// 8 blocks on an 80-SM GPU: applicable.
	ctx := buildTestContext(t, memLoopSrc, "memloop",
		gpusim.LaunchConfig{Entry: "memloop", Grid: gpusim.Dim(8), Block: gpusim.Dim(256), RegsPerThread: 32},
		&gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
			{Func: "memloop", Label: "BR0"}: gpusim.UniformTrips(60),
		}})
	m := (BlockIncrease{}).Match(ctx)
	if !m.Applicable {
		t.Fatal("8 blocks < 80 SMs must match block increase")
	}
	sp := (Parallel{WNew: blockIncreaseWNew}).Estimate(ctx, m)
	if sp <= 1 {
		t.Errorf("block increase speedup = %v, want > 1", sp)
	}
	// 160 blocks: not applicable.
	ctx2 := memLoopCtx(t)
	if (BlockIncrease{}).Match(ctx2).Applicable {
		t.Error("160 blocks >= 80 SMs must not match block increase")
	}
}

func TestThreadIncreaseApplicability(t *testing.T) {
	// Tiny blocks (32 threads) hit the blocks-per-SM ceiling: few warps
	// per scheduler.
	ctx := buildTestContext(t, memLoopSrc, "memloop",
		gpusim.LaunchConfig{Entry: "memloop", Grid: gpusim.Dim(4000), Block: gpusim.Dim(32), RegsPerThread: 32},
		&gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
			{Func: "memloop", Label: "BR0"}: gpusim.UniformTrips(60),
		}})
	m := (ThreadIncrease{}).Match(ctx)
	if !m.Applicable {
		t.Fatalf("32-thread blocks must match thread increase (limiter=%s, w=%d)",
			ctx.Profile.OccupancyLimiter, ctx.Profile.WarpsPerScheduler)
	}
	sp := (Parallel{WNew: threadIncreaseWNew, F: threadIncreaseF}).Estimate(ctx, m)
	if sp <= 1 {
		t.Errorf("thread increase speedup = %v, want > 1", sp)
	}
	// Full-occupancy launches must not match.
	ctx2 := memLoopCtx(t)
	if (ThreadIncrease{}).Match(ctx2).Applicable {
		t.Errorf("full occupancy must not match thread increase (w=%d)",
			ctx2.Profile.WarpsPerScheduler)
	}
}

// customOptimizer exercises the extension point the paper mentions
// (texture fetch combination etc.).
type customOptimizer struct{ hits *int }

func (c customOptimizer) Name() string       { return "CustomTextureOptimizer" }
func (c customOptimizer) Category() string   { return CatStallElimination }
func (c customOptimizer) Suggestion() string { return "combine texture fetches" }
func (c customOptimizer) Match(ctx *Context) *Match {
	*c.hits++
	return &Match{Applicable: true, Matched: float64(ctx.T) / 10}
}

func TestCustomOptimizerExtension(t *testing.T) {
	ctx := memLoopCtx(t)
	hits := 0
	adv := Advise(ctx, RankedOptimizer{customOptimizer{&hits}, StallElimination{}})
	if hits != 1 {
		t.Fatalf("custom optimizer ran %d times", hits)
	}
	if len(adv.Entries) != 1 || adv.Entries[0].Optimizer != "CustomTextureOptimizer" {
		t.Fatalf("entries = %+v", adv.Entries)
	}
	want := float64(ctx.T) / (float64(ctx.T) - float64(ctx.T)/10)
	if math.Abs(adv.Entries[0].Speedup-want) > 1e-9 {
		t.Errorf("custom speedup = %v, want %v", adv.Entries[0].Speedup, want)
	}
}

func TestStrengthReductionMatchesConversions(t *testing.T) {
	// A loop dominated by F2F conversions feeding FFMA (the hotspot
	// pattern of the paper's Listing 1).
	src := `
.func convloop global
.line cv.cu 2
	MOV R0, 0x0 {S:2}
LOOP:
.line cv.cu 3
	F2F.F64.F32 R4, R5 {S:13}
	DMUL R6, R4, R8 {S:8}
	F2F.F32.F64 R7, R6 {S:13}
	FADD R9, R7, R9 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	ctx := buildTestContext(t, src, "convloop",
		gpusim.LaunchConfig{Entry: "convloop", Grid: gpusim.Dim(2560), Block: gpusim.Dim(256), RegsPerThread: 32},
		&gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
			{Func: "convloop", Label: "BR0"}: gpusim.UniformTrips(100),
		}})
	m := StrengthReduction{}.Match(ctx)
	if m.Matched <= 0 {
		t.Fatal("strength reduction matched nothing in a conversion-bound loop")
	}
	adv := Advise(ctx)
	if adv.Entries[0].Optimizer != "GPUStrengthReductionOptimizer" {
		t.Errorf("top advice = %s, want strength reduction", adv.Entries[0].Optimizer)
	}
}
