package blamer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sampling"
	"gpa/internal/sass"
	"gpa/internal/structure"
)

// TestPropertyApportioningConservesStalls: for any distribution of
// stalls and issue counts over the Figure 4 kernel, the apportioned
// stalls across a use's surviving edges sum to the stalls observed at
// that use (Equation 1 is a partition).
func TestPropertyApportioningConservesStalls(t *testing.T) {
	mod, err := sass.Assemble(figure4Src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := structure.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Func("fig4")
	n := len(fs.Fn.Instrs)
	gpu := arch.VoltaV100()
	r := rand.New(rand.NewSource(21))

	f := func() bool {
		stats := make([]sampling.PCStats, n)
		issued := make([]int64, n)
		stallCount := int64(1 + r.Intn(1000))
		stats[f4IADD].Stalls[gpusim.ReasonMemoryDependency] = stallCount
		stats[f4IADD].Total = stallCount
		issued[f4LDC] = int64(r.Intn(50))
		issued[f4LDG] = int64(r.Intn(50))
		issued[f4IMAD] = int64(r.Intn(50))
		res, err := Analyze(fs, stats, issued, gpu, Options{
			DisableIssueWeight: r.Intn(2) == 1,
			DisablePathWeight:  r.Intn(2) == 1,
		})
		if err != nil {
			return false
		}
		var sum float64
		for _, e := range res.SurvivingEdges() {
			if e.Use == f4IADD && e.Reason == gpusim.ReasonMemoryDependency {
				if e.Stalls < 0 {
					return false
				}
				sum += e.Stalls
			}
		}
		return math.Abs(sum-float64(stallCount)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPruningOnlyRemoves: enabling pruning rules never creates
// edges that a rule-free analysis lacks, and coverage never decreases.
func TestPropertyPruningOnlyRemoves(t *testing.T) {
	mod, err := sass.Assemble(figure4Src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := structure.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Func("fig4")
	n := len(fs.Fn.Instrs)
	gpu := arch.VoltaV100()
	r := rand.New(rand.NewSource(22))

	f := func() bool {
		stats := make([]sampling.PCStats, n)
		issued := make([]int64, n)
		// Sprinkle stalls on random instructions.
		for k := 0; k < 3; k++ {
			idx := r.Intn(n)
			reason := []gpusim.StallReason{
				gpusim.ReasonMemoryDependency,
				gpusim.ReasonExecutionDependency,
			}[r.Intn(2)]
			c := int64(1 + r.Intn(40))
			stats[idx].Stalls[reason] += c
			stats[idx].Total += c
		}
		for i := range issued {
			issued[i] = int64(r.Intn(10))
		}
		pruned, err := Analyze(fs, stats, issued, gpu, Options{})
		if err != nil {
			return false
		}
		free, err := Analyze(fs, stats, issued, gpu, Options{
			DisableOpcodePrune: true, DisableDominatorPrune: true, DisableLatencyPrune: true,
		})
		if err != nil {
			return false
		}
		// Same constructed edge multiset (pruning marks, not deletes).
		if len(pruned.Edges) != len(free.Edges) {
			return false
		}
		// Surviving set is a subset.
		if len(pruned.SurvivingEdges()) > len(free.SurvivingEdges()) {
			return false
		}
		// Every pruned edge names the rule that removed it.
		for _, e := range pruned.Edges {
			switch e.PrunedBy() {
			case "", PruneOpcode, PruneDominator, PruneLatency:
			default:
				return false
			}
		}
		// Coverage values stay in [0, 1]. (Monotonicity under pruning is
		// an empirical Figure 7 observation, not an invariant: pruning
		// can shrink the node set; TestFigure7Shape checks it per
		// benchmark.)
		for _, c := range []float64{
			pruned.SingleDependencyCoverage(true),
			pruned.SingleDependencyCoverage(false),
		} {
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlamedMassNeverExceedsObserved: summing ByDef over all
// defs never exceeds the total dependency-class stalls fed in.
func TestPropertyBlamedMassNeverExceedsObserved(t *testing.T) {
	mod, err := sass.Assemble(figure4Src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := structure.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Func("fig4")
	n := len(fs.Fn.Instrs)
	gpu := arch.VoltaV100()
	r := rand.New(rand.NewSource(23))

	f := func() bool {
		stats := make([]sampling.PCStats, n)
		issued := make([]int64, n)
		var fed int64
		for k := 0; k < 4; k++ {
			idx := r.Intn(n)
			c := int64(1 + r.Intn(100))
			stats[idx].Stalls[gpusim.ReasonMemoryDependency] += c
			stats[idx].Total += c
			fed += c
		}
		res, err := Analyze(fs, stats, issued, gpu, Options{})
		if err != nil {
			return false
		}
		var blamed float64
		for _, m := range res.ByDef {
			for _, v := range m {
				blamed += v
			}
		}
		return blamed <= float64(fed)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
