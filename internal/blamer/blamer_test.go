package blamer

import (
	"math"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sampling"
	"gpa/internal/sass"
	"gpa/internal/structure"
)

// analyzeSrc assembles src, fabricates stats via the stall/issued maps
// (instruction index -> count), and runs the blamer.
func analyzeSrc(t *testing.T, src, fn string, stalls map[int]map[gpusim.StallReason]int64,
	issued map[int]int64, opts Options) *Result {
	t.Helper()
	mod, err := sass.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st, err := structure.Analyze(mod)
	if err != nil {
		t.Fatalf("structure: %v", err)
	}
	fs := st.Func(fn)
	n := len(fs.Fn.Instrs)
	stats := make([]sampling.PCStats, n)
	iss := make([]int64, n)
	for idx, m := range stalls {
		for r, c := range m {
			stats[idx].Stalls[r] = c
			stats[idx].LatencyStalls[r] = c // treat all as latency samples
			stats[idx].Total += c
			stats[idx].Latency += c
		}
	}
	for idx, c := range issued {
		iss[idx] = c
		stats[idx].Total += c
		stats[idx].Active += c
	}
	res, err := Analyze(fs, stats, iss, arch.VoltaV100(), opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// figure4Src encodes the Figure 4 example: three defs of R0 on separate
// paths (predicated LDG, complementary-predicated LDC, unconditional
// IMAD), all reaching an IADD that observes memory dependency stalls.
// The LDC path is twice as long as the LDG path.
const figure4Src = `
.func fig4 global
.line f4.cu 1
	ISETP P0, R9, 0x0 {S:4}
	@P0 BRA LGPATH {S:5}
	ISETP P1, R10, 0x0 {S:4}
	@P1 BRA IMADPATH {S:5}
	@!P0 LDC.32 R0, c[0x0][0x40] {S:1, W:1}
	NOP
	NOP
	NOP
	NOP
	NOP
	NOP
	NOP
	NOP
	BRA JOIN {S:5}
LGPATH:
	@P0 LDG.E.32 R0, [R2] {S:1, W:0}
	NOP
	NOP
	NOP
	BRA JOIN {S:5}
IMADPATH:
	IMAD R0, R4, R5, RZ {S:4}
JOIN:
	IADD R8, R0, R7 {S:4, Q:0|1}
	EXIT
`

// Instruction indices in figure4Src: the LDC path spans 10 issue slots
// to the IADD, the LDG path 5 (the Figure 4d numbers).
const (
	f4LDC  = 4
	f4LDG  = 14
	f4IMAD = 19
	f4IADD = 20
)

func TestFigure4SlicingFindsAllThreeDefs(t *testing.T) {
	res := analyzeSrc(t, figure4Src, "fig4",
		map[int]map[gpusim.StallReason]int64{
			f4IADD: {gpusim.ReasonMemoryDependency: 4},
		},
		map[int]int64{f4LDC: 2, f4LDG: 1},
		Options{DisableOpcodePrune: true, DisableDominatorPrune: true, DisableLatencyPrune: true})
	defs := map[int]bool{}
	for _, e := range res.Edges {
		defs[e.Def] = true
	}
	for _, want := range []int{f4LDC, f4LDG, f4IMAD} {
		if !defs[want] {
			t.Errorf("slicing missed def at %d; edges: %+v", want, res.Edges)
		}
	}
}

func TestFigure4OpcodePruneRemovesIMAD(t *testing.T) {
	res := analyzeSrc(t, figure4Src, "fig4",
		map[int]map[gpusim.StallReason]int64{
			f4IADD: {gpusim.ReasonMemoryDependency: 4},
		},
		map[int]int64{f4LDC: 2, f4LDG: 1},
		Options{})
	var imadEdge *Edge
	surviving := map[int]bool{}
	for _, e := range res.Edges {
		if e.Def == f4IMAD {
			imadEdge = e
		}
		if e.PrunedBy() == "" {
			surviving[e.Def] = true
		}
	}
	if imadEdge == nil {
		t.Fatal("no IMAD edge constructed")
	}
	if imadEdge.PrunedBy() != PruneOpcode {
		t.Errorf("IMAD edge pruned by %q, want opcode rule", imadEdge.PrunedBy())
	}
	if !surviving[f4LDC] || !surviving[f4LDG] {
		t.Errorf("memory defs should survive: %v", surviving)
	}
}

func TestFigure4Apportioning(t *testing.T) {
	// LDG: issue 1, path 5; LDC: issue 2, path 10 -> equal 2/2 split of
	// the 4 observed stalls (Figure 4d).
	res := analyzeSrc(t, figure4Src, "fig4",
		map[int]map[gpusim.StallReason]int64{
			f4IADD: {gpusim.ReasonMemoryDependency: 4},
		},
		map[int]int64{f4LDC: 2, f4LDG: 1},
		Options{})
	var ldg, ldc *Edge
	for _, e := range res.SurvivingEdges() {
		switch e.Def {
		case f4LDG:
			ldg = e
		case f4LDC:
			ldc = e
		}
	}
	if ldg == nil || ldc == nil {
		t.Fatalf("missing surviving edges: %+v", res.SurvivingEdges())
	}
	if ldc.PathLen != 2*ldg.PathLen {
		t.Errorf("path lengths %d vs %d, want 2x ratio", ldc.PathLen, ldg.PathLen)
	}
	if math.Abs(ldg.Stalls-2) > 1e-9 || math.Abs(ldc.Stalls-2) > 1e-9 {
		t.Errorf("apportioned stalls = %v / %v, want 2 / 2", ldg.Stalls, ldc.Stalls)
	}
	// Detail classes follow Figure 5.
	if ldg.Detail != DetailGlobalMem {
		t.Errorf("LDG detail = %v, want global", ldg.Detail)
	}
	if ldc.Detail != DetailConstMem {
		t.Errorf("LDC detail = %v, want constant", ldc.Detail)
	}
}

func TestFigure3BarrierDependency(t *testing.T) {
	// LDG writes B0; the BRA waits on B0 without touching R0. Memory
	// stalls at the BRA must blame the LDG via the virtual barrier
	// register.
	src := `
.func fig3 global
	LDG.E.32 R0, [R2] {S:1, W:0}
	IADD R5, R5, 0x1 {S:4}
BR:	BRA DONE {S:5, Q:0}
DONE:
	EXIT
`
	res := analyzeSrc(t, src, "fig3",
		map[int]map[gpusim.StallReason]int64{
			2: {gpusim.ReasonMemoryDependency: 7},
		},
		map[int]int64{0: 1},
		Options{})
	edges := res.SurvivingEdges()
	if len(edges) != 1 {
		t.Fatalf("got %d surviving edges, want 1: %+v", len(edges), edges)
	}
	e := edges[0]
	if e.Def != 0 || e.Reg.Class != sass.RegBarrier {
		t.Errorf("edge = %+v, want def 0 via barrier register", e)
	}
	if math.Abs(e.Stalls-7) > 1e-9 {
		t.Errorf("stalls = %v, want 7", e.Stalls)
	}
	if res.ByDef[0][DetailGlobalMem] != 7 {
		t.Errorf("ByDef = %+v", res.ByDef)
	}
}

func TestDominatorPrune(t *testing.T) {
	// R1 defined at 0, used unconditionally at 1 (k) and at 2 (j): the
	// edge 0->2 prunes because stalls would surface at 1.
	src := `
.func dom global
	LDG.E.32 R1, [R2] {S:1, W:0}
	IADD R3, R1, 0x1 {S:4, Q:0}
	IADD R4, R1, 0x2 {S:4}
	EXIT
`
	res := analyzeSrc(t, src, "dom",
		map[int]map[gpusim.StallReason]int64{
			2: {gpusim.ReasonMemoryDependency: 5},
			1: {gpusim.ReasonMemoryDependency: 9},
		},
		map[int]int64{0: 1},
		Options{})
	for _, e := range res.Edges {
		if e.Use == 2 && e.Def == 0 && e.Reg.Class == sass.RegGPR {
			if e.PrunedBy() != PruneDominator {
				t.Errorf("edge 0->2 pruned by %q, want dominator", e.PrunedBy())
			}
		}
		if e.Use == 1 && e.Def == 0 && e.PrunedBy() != "" {
			t.Errorf("edge 0->1 should survive, pruned by %q", e.PrunedBy())
		}
	}
	// With the rule disabled the edge survives.
	res2 := analyzeSrc(t, src, "dom",
		map[int]map[gpusim.StallReason]int64{2: {gpusim.ReasonMemoryDependency: 5}},
		map[int]int64{0: 1},
		Options{DisableDominatorPrune: true})
	found := false
	for _, e := range res2.SurvivingEdges() {
		if e.Use == 2 && e.Def == 0 && e.Reg.Class == sass.RegGPR {
			found = true
		}
	}
	if !found {
		t.Error("disabling the dominator rule should keep the 0->2 edge")
	}
}

func TestLatencyPrune(t *testing.T) {
	// A 4-cycle IADD def more than 4 issue slots before its use cannot
	// cause the stalls.
	src := `
.func lat global
	IADD R1, R9, 0x1 {S:4}
	NOP
	NOP
	NOP
	NOP
	NOP
	IADD R4, R1, 0x2 {S:4}
	EXIT
`
	res := analyzeSrc(t, src, "lat",
		map[int]map[gpusim.StallReason]int64{
			6: {gpusim.ReasonExecutionDependency: 3},
		},
		map[int]int64{0: 1},
		Options{})
	if len(res.Edges) == 0 {
		t.Fatal("no edges constructed")
	}
	for _, e := range res.Edges {
		if e.Def == 0 && e.Use == 6 {
			if e.PrunedBy() != PruneLatency {
				t.Errorf("distant fixed-latency edge pruned by %q, want latency", e.PrunedBy())
			}
		}
	}
	// An LDG def at the same distance survives: its bound is the TLB
	// miss latency.
	src2 := `
.func lat2 global
	LDG.E.32 R1, [R2] {S:1, W:0}
	NOP
	NOP
	NOP
	NOP
	NOP
	IADD R4, R1, 0x2 {S:4, Q:0}
	EXIT
`
	res2 := analyzeSrc(t, src2, "lat2",
		map[int]map[gpusim.StallReason]int64{
			6: {gpusim.ReasonMemoryDependency: 3},
		},
		map[int]int64{0: 1},
		Options{})
	kept := false
	for _, e := range res2.SurvivingEdges() {
		if e.Def == 0 && e.Use == 6 {
			kept = true
		}
	}
	if !kept {
		t.Error("global-memory edge within the TLB bound should survive")
	}
}

func TestSyncBlame(t *testing.T) {
	src := `
.func sync global
	FFMA R1, R1, R2, R3 {S:4}
	BAR.SYNC {S:2}
	IADD R4, R4, 0x1 {S:4}
	EXIT
`
	res := analyzeSrc(t, src, "sync",
		map[int]map[gpusim.StallReason]int64{
			2: {gpusim.ReasonSync: 11},
		},
		map[int]int64{1: 1},
		Options{})
	edges := res.SurvivingEdges()
	if len(edges) != 1 || edges[0].Def != 1 || edges[0].Detail != DetailSync {
		t.Fatalf("sync stalls should blame the BAR: %+v", edges)
	}
	if res.ByDef[1][DetailSync] != 11 {
		t.Errorf("ByDef = %+v", res.ByDef)
	}
}

func TestWARDependency(t *testing.T) {
	// STG reads R6 under read barrier B4; the MOV rewriting R6 waits on
	// B4: execution dependency stalls classify as WAR and blame the STG.
	src := `
.func war global
	STG.E.32 [R2], R6 {S:1, R:4}
	MOV R6, 0x7 {S:2, Q:4}
	EXIT
`
	res := analyzeSrc(t, src, "war",
		map[int]map[gpusim.StallReason]int64{
			1: {gpusim.ReasonExecutionDependency: 6},
		},
		map[int]int64{0: 1},
		Options{})
	edges := res.SurvivingEdges()
	if len(edges) != 1 {
		t.Fatalf("edges = %+v", edges)
	}
	if edges[0].Def != 0 || edges[0].Detail != DetailWAR {
		t.Errorf("WAR edge = %+v", edges[0])
	}
}

func TestSharedAndLocalDetails(t *testing.T) {
	src := `
.func details global
	LDS.32 R1, [R8] {S:1, W:0}
	LDL.32 R2, [R9] {S:1, W:1}
	MUFU.RCP R3, R3 {S:1, W:2}
	IADD R4, R1, R2 {S:4, Q:0|1}
	FFMA R5, R3, R5, R5 {S:4, Q:2}
	EXIT
`
	res := analyzeSrc(t, src, "details",
		map[int]map[gpusim.StallReason]int64{
			3: {gpusim.ReasonExecutionDependency: 4, gpusim.ReasonMemoryDependency: 4},
			4: {gpusim.ReasonExecutionDependency: 2},
		},
		map[int]int64{0: 1, 1: 1, 2: 1},
		Options{})
	if res.ByDef[0][DetailShared] == 0 {
		t.Errorf("LDS should collect shared-memory execution dependency: %+v", res.ByDef)
	}
	if res.ByDef[1][DetailLocalMem] == 0 {
		t.Errorf("LDL should collect local-memory dependency: %+v", res.ByDef)
	}
	if res.ByDef[2][DetailArith] == 0 {
		t.Errorf("MUFU should collect arithmetic dependency: %+v", res.ByDef)
	}
}

func TestSelfStallsPassThrough(t *testing.T) {
	src := `
.func selfy global
	LDG.E.32 R1, [R2] {S:1, W:0}
	IADD R3, R1, 0x1 {S:4, Q:0}
	EXIT
`
	res := analyzeSrc(t, src, "selfy",
		map[int]map[gpusim.StallReason]int64{
			0: {gpusim.ReasonMemoryThrottle: 13, gpusim.ReasonInstructionFetch: 2},
		},
		map[int]int64{0: 1},
		Options{})
	if res.Self[0][gpusim.ReasonMemoryThrottle] != 13 {
		t.Errorf("Self = %+v", res.Self)
	}
	if res.Self[0][gpusim.ReasonInstructionFetch] != 2 {
		t.Errorf("Self = %+v", res.Self)
	}
}

func TestSingleDependencyCoverageImprovesWithPruning(t *testing.T) {
	res := analyzeSrc(t, figure4Src, "fig4",
		map[int]map[gpusim.StallReason]int64{
			f4IADD: {gpusim.ReasonMemoryDependency: 4},
		},
		map[int]int64{f4LDC: 2, f4LDG: 1},
		Options{})
	before := res.SingleDependencyCoverage(false)
	after := res.SingleDependencyCoverage(true)
	if after < before {
		t.Errorf("coverage after pruning (%v) below before (%v)", after, before)
	}
	// The IADD keeps two global... one global + one constant edge:
	// distinct details, so it is single-dependency after pruning.
	if after != 1 {
		t.Errorf("after-pruning coverage = %v, want 1 (distinct detail classes)", after)
	}
}

func TestPredicateCoverageStopsSlicing(t *testing.T) {
	// An unconditional def between the use and an older def kills the
	// older candidate.
	src := `
.func stopslice global
	LDG.E.32 R1, [R2] {S:1, W:0}
	MOV R1, 0x0 {S:2}
	IADD R3, R1, 0x1 {S:4}
	EXIT
`
	res := analyzeSrc(t, src, "stopslice",
		map[int]map[gpusim.StallReason]int64{
			2: {gpusim.ReasonExecutionDependency: 3},
		},
		map[int]int64{0: 1, 1: 1},
		Options{})
	for _, e := range res.Edges {
		if e.Def == 0 && e.Reg == sass.R(1) {
			t.Errorf("slicing walked past an unconditional def: %+v", e)
		}
	}
}

func TestAnalyzeValidatesLengths(t *testing.T) {
	mod := sass.MustAssemble(".func f global\n\tEXIT\n")
	st, err := structure.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(st.Func("f"), make([]sampling.PCStats, 5), make([]int64, 1), arch.VoltaV100(), Options{})
	if err == nil {
		t.Error("mismatched stats length must error")
	}
}

func TestTopDefsOrdering(t *testing.T) {
	res := analyzeSrc(t, figure4Src, "fig4",
		map[int]map[gpusim.StallReason]int64{
			f4IADD: {gpusim.ReasonMemoryDependency: 9},
		},
		map[int]int64{f4LDC: 10, f4LDG: 1},
		Options{})
	defs := res.TopDefs()
	if len(defs) < 2 {
		t.Fatalf("TopDefs = %v", defs)
	}
	// LDC carries 10x the issue weight on a 2x path: it must rank
	// first.
	if defs[0] != f4LDC {
		t.Errorf("TopDefs[0] = %d, want LDC (%d)", defs[0], f4LDC)
	}
}
