package blamer

// apportion distributes the stalls (and latency stalls) observed at one
// use over its surviving incoming edges using Equation 1 of the paper:
//
//	S_i = (Rpath_i × Rissue_i) / Σ_k (Rpath_k × Rissue_k) × S_j
//
// where Rissue_i grows with the def's issued count (heuristic 1: the
// more issued samples, the more stalls blamed) and Rpath_i shrinks with
// the path length (heuristic 2: the longer the path, the fewer stalls
// blamed; with multiple paths the longest is used). The normalization
// denominators cancel, so the raw weight issued/pathLen suffices and
// reproduces Figure 4d: LDG (issue 1, path 5) and LDC (issue 2, path 10)
// split four stalls 2/2.
func apportion(edges []*Edge, stalls, latencyStalls int64, opts Options) {
	var kept []*Edge
	for _, e := range edges {
		if e.prunedBy == "" {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 || stalls == 0 && latencyStalls == 0 {
		return
	}
	weights := make([]float64, len(kept))
	var total float64
	for i, e := range kept {
		w := 1.0
		if !opts.DisableIssueWeight {
			issued := float64(e.Issued)
			if issued <= 0 {
				issued = 1
			}
			w *= issued
		}
		if !opts.DisablePathWeight {
			path := float64(e.PathLen)
			if path <= 0 {
				path = 1
			}
			w /= path
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		// Degenerate: split evenly.
		for i := range weights {
			weights[i] = 1
		}
		total = float64(len(weights))
	}
	for i, e := range kept {
		share := weights[i] / total
		e.Stalls = share * float64(stalls)
		e.LatencyStalls = share * float64(latencyStalls)
	}
}
