// Package blamer implements GPA's instruction blamer (Section 4 of the
// paper): memory-dependency, execution-dependency, and synchronization
// stalls are observed at the instruction that suffers them, but caused
// by a source instruction. The blamer
//
//  1. backward-slices every stalled instruction's def-use chains,
//     treating the six scoreboard barrier indices as virtual barrier
//     registers B0-B5 and extending the search past predicated defs
//     until the predicates on the path cover the use,
//  2. builds an instruction dependency graph annotated with stalls,
//  3. prunes cold edges with three heuristics (opcode-, dominator-, and
//     latency-based), and
//  4. apportions the observed stalls over the surviving incoming edges
//     by issue counts and path lengths (Equation 1), finally
//     reclassifying dependencies into the detailed taxonomy of Figure 5
//     (local/constant/global memory; shared/WAR/arithmetic execution).
//
// In the Figure 2 pipeline the blamer is the middle of the offline
// analyzer: input is one function's structure (structure.FuncStructure),
// its per-PC sample statistics and issue counts from the profiler, and
// the arch.GPU model whose latency bounds drive the latency-based
// pruning rule (Section 4.3); output is a Result — the surviving blame
// edges with apportioned stall mass — that the advisor's optimizers
// match against.
package blamer

import (
	"fmt"
	"sort"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sampling"
	"gpa/internal/sass"
	"gpa/internal/structure"
)

// Detail is the fine-grained dependency class of Figure 5.
type Detail uint8

// Detailed stall classes.
const (
	DetailNone Detail = iota
	// Memory dependency splits by source opcode.
	DetailGlobalMem
	DetailLocalMem
	DetailConstMem
	// Execution dependency splits by source opcode.
	DetailShared
	DetailWAR
	DetailArith
	// Synchronization.
	DetailSync
	NumDetails
)

var detailNames = [NumDetails]string{
	DetailNone:      "none",
	DetailGlobalMem: "global_memory_dep",
	DetailLocalMem:  "local_memory_dep",
	DetailConstMem:  "constant_memory_dep",
	DetailShared:    "shared_memory_dep",
	DetailWAR:       "war_dep",
	DetailArith:     "arithmetic_dep",
	DetailSync:      "sync_dep",
}

// String names the detail class.
func (d Detail) String() string {
	if d < NumDetails {
		return detailNames[d]
	}
	return "unknown"
}

// classify maps a dependency edge to its Figure 5 detail class given the
// def instruction and the coarse stall reason observed at the use.
func classify(def *sass.Instruction, reason gpusim.StallReason, war bool) Detail {
	switch reason {
	case gpusim.ReasonSync:
		return DetailSync
	case gpusim.ReasonMemoryDependency:
		switch def.Opcode {
		case sass.OpLDC:
			return DetailConstMem
		case sass.OpLDL, sass.OpSTL:
			return DetailLocalMem
		default:
			return DetailGlobalMem
		}
	case gpusim.ReasonExecutionDependency:
		if war {
			return DetailWAR
		}
		switch def.Opcode {
		case sass.OpLDS, sass.OpSHFL:
			return DetailShared
		case sass.OpSTS, sass.OpSTG, sass.OpSTL, sass.OpST, sass.OpRED:
			return DetailWAR
		default:
			return DetailArith
		}
	}
	return DetailNone
}

// Edge is one def-use dependency carrying apportioned stalls.
type Edge struct {
	Def, Use int
	// Reg is the register (possibly a virtual barrier register) that
	// mediates the dependency.
	Reg sass.Reg
	// Reason is the coarse stall class observed at Use.
	Reason gpusim.StallReason
	// Detail is the Figure 5 reclassification.
	Detail Detail
	// PathLen is the longest-path instruction distance Def -> Use.
	PathLen int
	// Issued is the def's dynamic issue count (Rissue numerator).
	Issued int64
	// Stalls is the apportioned share of Use's stall samples.
	Stalls float64
	// LatencyStalls restricts to latency samples (for latency-hiding
	// estimators).
	LatencyStalls float64
	// prunedBy is empty for surviving edges, otherwise the rule name.
	prunedBy string
}

// PrunedBy reports which rule removed the edge ("" = kept).
func (e *Edge) PrunedBy() string { return e.prunedBy }

// Options toggles blamer heuristics; the zero value enables everything
// (the paper's configuration).
type Options struct {
	// DisableOpcodePrune, DisableDominatorPrune, DisableLatencyPrune
	// switch off individual pruning rules (Figure 7 compares coverage
	// with and without pruning).
	DisableOpcodePrune    bool
	DisableDominatorPrune bool
	DisableLatencyPrune   bool
	// DisableIssueWeight / DisablePathWeight turn off the two
	// apportioning heuristics of Equation 1.
	DisableIssueWeight bool
	DisablePathWeight  bool
	// MaxSliceSteps caps the backward-slicing walk per use (0 = 4096).
	MaxSliceSteps int
}

// Result is the blame analysis of one function.
type Result struct {
	FS    *structure.FuncStructure
	Edges []*Edge
	// ByDef[def][detail] sums apportioned stall samples per source
	// instruction.
	ByDef map[int]map[Detail]float64
	// LatencyByDef restricts to latency samples.
	LatencyByDef map[int]map[Detail]float64
	// Self[pc][reason] carries the non-dependency stalls (instruction
	// fetch, memory throttle, pipe busy, ...), which stay at the
	// instruction that reported them.
	Self map[int]map[gpusim.StallReason]int64
	// SelfLatency restricts Self to latency samples.
	SelfLatency map[int]map[gpusim.StallReason]int64
	// UseNodes lists the instructions whose stalls were attributed.
	UseNodes []int
}

// Analyze blames one function's stalls. stats and issued are aligned
// with the function's instruction array.
func Analyze(fs *structure.FuncStructure, stats []sampling.PCStats, issued []int64,
	gpu *arch.GPU, opts Options) (*Result, error) {
	n := len(fs.Fn.Instrs)
	if len(stats) != n || len(issued) != n {
		return nil, fmt.Errorf("blamer: stats/issued length mismatch (%d/%d vs %d instrs)",
			len(stats), len(issued), n)
	}
	b := &blamer{
		fs: fs, stats: stats, issued: issued, gpu: gpu, opts: opts,
		preds: buildPreds(fs),
	}
	res := &Result{
		FS:           fs,
		ByDef:        map[int]map[Detail]float64{},
		LatencyByDef: map[int]map[Detail]float64{},
		Self:         map[int]map[gpusim.StallReason]int64{},
		SelfLatency:  map[int]map[gpusim.StallReason]int64{},
	}
	depReasons := []gpusim.StallReason{
		gpusim.ReasonMemoryDependency,
		gpusim.ReasonExecutionDependency,
		gpusim.ReasonSync,
	}
	for j := 0; j < n; j++ {
		st := &stats[j]
		if st.Total == 0 {
			continue
		}
		// Self-attributed reasons pass through.
		for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
			if r.IsDependency() || st.Stalls[r] == 0 {
				continue
			}
			if res.Self[j] == nil {
				res.Self[j] = map[gpusim.StallReason]int64{}
				res.SelfLatency[j] = map[gpusim.StallReason]int64{}
			}
			res.Self[j][r] += st.Stalls[r]
			res.SelfLatency[j][r] += st.LatencyStalls[r]
		}
		// Dependency reasons get blamed backwards.
		hasDep := false
		for _, r := range depReasons {
			if st.Stalls[r] == 0 {
				continue
			}
			hasDep = true
			edges := b.edgesFor(j, r)
			apportion(edges, st.Stalls[r], st.LatencyStalls[r], opts)
			res.Edges = append(res.Edges, edges...)
		}
		if hasDep {
			res.UseNodes = append(res.UseNodes, j)
		}
	}
	// Aggregate surviving edges per def.
	for _, e := range res.Edges {
		if e.prunedBy != "" {
			continue
		}
		if res.ByDef[e.Def] == nil {
			res.ByDef[e.Def] = map[Detail]float64{}
			res.LatencyByDef[e.Def] = map[Detail]float64{}
		}
		res.ByDef[e.Def][e.Detail] += e.Stalls
		res.LatencyByDef[e.Def][e.Detail] += e.LatencyStalls
	}
	return res, nil
}

// SurvivingEdges lists edges that passed pruning.
func (r *Result) SurvivingEdges() []*Edge {
	var out []*Edge
	for _, e := range r.Edges {
		if e.prunedBy == "" {
			out = append(out, e)
		}
	}
	return out
}

// SingleDependencyCoverage is the Figure 7 metric: the fraction of graph
// nodes that either have no incoming edge or whose incoming edges all
// represent different dependencies (distinct detail classes), so stalls
// attribute without apportioning. When pruned is true only surviving
// edges count; otherwise all constructed edges count (the "before
// pruning" bars).
func (r *Result) SingleDependencyCoverage(pruned bool) float64 {
	nodes := map[int]bool{}
	incoming := map[int]map[Detail]int{}
	for _, e := range r.Edges {
		if pruned && e.prunedBy != "" {
			continue
		}
		nodes[e.Def] = true
		nodes[e.Use] = true
		if incoming[e.Use] == nil {
			incoming[e.Use] = map[Detail]int{}
		}
		incoming[e.Use][e.Detail]++
	}
	for _, j := range r.UseNodes {
		nodes[j] = true
	}
	if len(nodes) == 0 {
		return 1
	}
	single := 0
	for n := range nodes {
		ok := true
		for _, cnt := range incoming[n] {
			if cnt > 1 {
				ok = false
				break
			}
		}
		if ok {
			single++
		}
	}
	return float64(single) / float64(len(nodes))
}

// TopDefs returns the def instructions ranked by total apportioned
// stalls, descending.
func (r *Result) TopDefs() []int {
	var defs []int
	for d := range r.ByDef {
		defs = append(defs, d)
	}
	sort.Slice(defs, func(a, b int) bool {
		return sumDetail(r.ByDef[defs[a]]) > sumDetail(r.ByDef[defs[b]])
	})
	return defs
}

func sumDetail(m map[Detail]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

type blamer struct {
	fs     *structure.FuncStructure
	stats  []sampling.PCStats
	issued []int64
	gpu    *arch.GPU
	opts   Options
	preds  [][]int
}

// buildPreds inverts the instruction-level successor relation.
func buildPreds(fs *structure.FuncStructure) [][]int {
	n := len(fs.Fn.Instrs)
	preds := make([][]int, n)
	var scratch []int
	for i := 0; i < n; i++ {
		scratch = fs.CFG.InstrSuccs(scratch[:0], i)
		for _, s := range scratch {
			preds[s] = append(preds[s], i)
		}
	}
	return preds
}

// edgesFor builds (and prunes) the candidate dependency edges for the
// stalls of reason r observed at instruction j.
func (b *blamer) edgesFor(j int, reason gpusim.StallReason) []*Edge {
	var cands []candidate
	if reason == gpusim.ReasonSync {
		cands = b.sliceSync(j)
	} else {
		cands = b.slice(j)
	}
	edges := make([]*Edge, 0, len(cands))
	seen := map[int]bool{}
	for _, c := range cands {
		if seen[c.def] {
			continue // one edge per (def, use, reason)
		}
		seen[c.def] = true
		def := &b.fs.Fn.Instrs[c.def]
		e := &Edge{
			Def:    c.def,
			Use:    j,
			Reg:    c.reg,
			Reason: reason,
			Detail: classify(def, reason, c.war),
			Issued: b.issued[c.def],
		}
		e.PathLen = b.pathLen(c.def, j)
		b.prune(e)
		edges = append(edges, e)
	}
	return edges
}

func (b *blamer) pathLen(def, use int) int {
	if l := b.fs.CFG.LongestDist(def, use); l > 0 {
		return l
	}
	if l := b.fs.CFG.ShortestDist(def, use); l > 0 {
		return l
	}
	return 1
}
