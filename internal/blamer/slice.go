package blamer

import (
	"gpa/internal/sass"
)

// candidate is one immediate dependency source discovered by backward
// slicing.
type candidate struct {
	def int
	reg sass.Reg
	// war marks dependencies mediated by a read barrier (write-after-
	// read hazards).
	war bool
}

const defaultMaxSliceSteps = 4096

// slice finds the immediate dependency sources of instruction j: for
// every register j reads (regular registers, the guard predicate
// register, and the virtual barrier registers named by the wait mask),
// walk the control flow graph backwards collecting defs. The walk past a
// def continues while the defs' predicates seen on the path do not yet
// cover j's own predicate (Section 4, "Predicated instructions"):
// a def guarded by @P0 may not execute, so an earlier def under @!P0
// (or unconditional) can still be the source.
func (b *blamer) slice(j int) []candidate {
	use := &b.fs.Fn.Instrs[j]
	var out []candidate
	budget := b.opts.MaxSliceSteps
	if budget <= 0 {
		budget = defaultMaxSliceSteps
	}
	for _, r := range use.Uses() {
		if r.IsZero() || r.Class == sass.RegSpecial {
			continue
		}
		out = b.sliceReg(out, j, r, use.Pred, &budget)
	}
	return out
}

// pathState is a DFS node: an instruction plus the predicate coverage
// accumulated from defs already passed on this path.
type pathState struct {
	instr int
	preds sass.PredicateSet
}

// sliceReg walks backwards from j looking for defs of r.
func (b *blamer) sliceReg(out []candidate, j int, r sass.Reg, usePred sass.Predicate, budget *int) []candidate {
	visited := map[pathState]bool{}
	var stack []pathState
	push := func(ps pathState) {
		if !visited[ps] {
			visited[ps] = true
			stack = append(stack, ps)
		}
	}
	for _, p := range b.preds[j] {
		push(pathState{instr: p})
	}
	for len(stack) > 0 && *budget > 0 {
		*budget--
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := &b.fs.Fn.Instrs[ps.instr]
		if defines(in, r) {
			war := r.Class == sass.RegBarrier &&
				in.Ctrl.ReadBar != sass.NoBarrier &&
				int(in.Ctrl.ReadBar) == int(r.Index) &&
				(in.Ctrl.WriteBar == sass.NoBarrier || int(in.Ctrl.WriteBar) != int(r.Index))
			out = append(out, candidate{def: ps.instr, reg: r, war: war})
			next := ps.preds
			next.Add(in.Pred)
			if next.Contains(usePred) {
				// The defs on this path now cover every condition under
				// which the use executes: stop here.
				continue
			}
			ps.preds = next
		}
		for _, p := range b.preds[ps.instr] {
			push(pathState{instr: p, preds: ps.preds})
		}
	}
	return out
}

func defines(in *sass.Instruction, r sass.Reg) bool {
	for _, d := range in.Defs() {
		if d == r {
			return true
		}
	}
	return false
}

// sliceSync finds the synchronization instructions responsible for sync
// stalls at j: the nearest BAR/MEMBAR/DEPBAR on each backward path.
func (b *blamer) sliceSync(j int) []candidate {
	var out []candidate
	budget := b.opts.MaxSliceSteps
	if budget <= 0 {
		budget = defaultMaxSliceSteps
	}
	visited := make([]bool, len(b.fs.Fn.Instrs))
	var stack []int
	push := func(i int) {
		if !visited[i] {
			visited[i] = true
			stack = append(stack, i)
		}
	}
	for _, p := range b.preds[j] {
		push(p)
	}
	for len(stack) > 0 && budget > 0 {
		budget--
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := &b.fs.Fn.Instrs[i]
		if in.Opcode.IsSync() {
			out = append(out, candidate{def: i, reg: sass.Reg{}})
			continue // nearest barrier per path
		}
		for _, p := range b.preds[i] {
			push(p)
		}
	}
	return out
}
