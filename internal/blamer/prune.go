package blamer

import (
	"gpa/internal/gpusim"
	"gpa/internal/sass"
)

// Pruning rule names recorded on pruned edges.
const (
	PruneOpcode    = "opcode"
	PruneDominator = "dominator"
	PruneLatency   = "latency"
)

// prune applies the three cold-edge rules of Section 4 in order; the
// first rule that fires marks the edge.
func (b *blamer) prune(e *Edge) {
	if !b.opts.DisableOpcodePrune && b.opcodePrunes(e) {
		e.prunedBy = PruneOpcode
		return
	}
	if !b.opts.DisableDominatorPrune && b.dominatorPrunes(e) {
		e.prunedBy = PruneDominator
		return
	}
	if !b.opts.DisableLatencyPrune && b.latencyPrunes(e) {
		e.prunedBy = PruneLatency
		return
	}
}

// opcodePrunes: memory dependency stalls are attributed to memory
// instructions only; synchronization stalls to synchronization
// instructions only.
func (b *blamer) opcodePrunes(e *Edge) bool {
	def := &b.fs.Fn.Instrs[e.Def]
	switch e.Reason {
	case gpusim.ReasonMemoryDependency:
		return !def.Opcode.IsMemory()
	case gpusim.ReasonSync:
		return !def.Opcode.IsSync()
	}
	return false
}

// dominatorPrunes: remove the edge i->j when a non-predicated
// instruction k (other than the endpoints) uses the same register that i
// defines and j uses, and k lies on every path from i to j: had i caused
// stalls, they would have been observed at k instead.
func (b *blamer) dominatorPrunes(e *Edge) bool {
	if e.Reg == (sass.Reg{}) {
		return false
	}
	g := b.fs.CFG
	for k := range b.fs.Fn.Instrs {
		if k == e.Def || k == e.Use {
			continue
		}
		in := &b.fs.Fn.Instrs[k]
		if !in.Pred.IsAlways() {
			continue
		}
		if !uses(in, e.Reg) {
			continue
		}
		if g.OnEveryPath(e.Def, k, e.Use) {
			return true
		}
	}
	return false
}

func uses(in *sass.Instruction, r sass.Reg) bool {
	for _, u := range in.Uses() {
		if u == r {
			return true
		}
	}
	return false
}

// latencyPrunes: remove the edge when the number of instructions on
// every path from def to use exceeds the def's latency bound — by then
// the result must have landed. Fixed-latency instructions use their
// microbenchmarked latency; variable-latency instructions use an upper
// bound (TLB-miss latency for global memory).
func (b *blamer) latencyPrunes(e *Edge) bool {
	def := &b.fs.Fn.Instrs[e.Def]
	bound := b.gpu.LatencyBound(def.Opcode, def.Mods)
	if bound <= 0 {
		return false
	}
	shortest := b.fs.CFG.ShortestDist(e.Def, e.Use)
	if shortest < 0 {
		return false
	}
	// Issue slots approximate cycles one-to-one at best; if even the
	// shortest path exceeds the bound, every path does.
	return shortest > bound
}
