// Package gpusim simulates the execution of SASS kernels on a modeled
// GPU at cycle granularity: streaming multiprocessors with per-model
// warp scheduler counts, scoreboard barriers for variable-latency
// dependencies, per-opcode fixed latencies and pipe throughputs, an MSHR
// pool that produces memory-throttle stalls, an instruction cache that
// produces fetch stalls on far control transfers, and named-barrier
// (BAR.SYNC) synchronization. Every architectural parameter — geometry,
// latency tables, issue costs, front-end costs — comes from the
// arch.GPU model in Config (the paper's V100 by default; Turing and
// Ampere models are registered alongside it).
//
// This package substitutes for the GPU hardware in the GPA paper
// (Section 2) — the measurement half of Figure 2, feeding the PC
// sampler everything downstream consumes: it executes the same
// fixed-length ISA and exposes the
// same PC-sampling surface (periodic per-scheduler samples carrying a
// PC, an active/latency flag, and a CUPTI-style stall reason), so
// everything downstream — profiler, instruction blamer, optimizers,
// estimators — exercises the code paths the paper describes. Input is a
// flattened Program, a LaunchConfig, an optional Workload (trip counts,
// memory behaviour), and a Config carrying the arch.GPU model; output
// is a Result (cycles, issue counts, occupancy) plus the ordered sample
// stream delivered to Config.Sink. Runs are deterministic for a fixed
// seed at every Parallelism level: concurrent SMs buffer their samples
// and drain in SM order.
package gpusim

import (
	"fmt"

	"gpa/internal/apierr"
	"gpa/internal/sass"
)

// Program is a module laid out in a flat instruction array, the way code
// resides in device memory: functions concatenated in module order, call
// and branch targets resolved to flat instruction indices.
type Program struct {
	Module *sass.Module
	// Instrs is the flattened instruction stream.
	Instrs []sass.Instruction
	// FuncOf[i] is the index (into Module.Functions) of the function
	// containing flat instruction i.
	FuncOf []int
	// Base[f] is the flat index of function f's first instruction.
	Base []int
	// target[i] is the flat target index of a control transfer at i
	// (-1 when not a transfer or target unresolved).
	target []int
	// meta[i] is the hot-path metadata of instruction i, precomputed so
	// the per-cycle scheduler loops never re-decode opcodes or control
	// bits (see instrMeta).
	meta []instrMeta

	// poolsOf recycles per-run simulator state between Run calls on
	// this program (see pool.go). A Program must not be copied by value
	// after first use.
	poolsOf
}

// instrMeta flattens the per-instruction facts the simulator's issue and
// readiness paths consult every cycle: opcode class, control-code fields,
// and the stall-reason classifications that otherwise require Opcode.Info
// calls and switch chains per access.
type instrMeta struct {
	waitMask uint8
	stall    uint8
	writeBar int8
	readBar  int8
	class    sass.ExecClass
	flags    uint8
	// barReason is the stall reason consumers waiting on this
	// instruction's write barrier report (barrierReasonFor).
	barReason StallReason
	// issueStall is the reason reported while the post-issue stall-count
	// window is pending.
	issueStall StallReason
}

// instrMeta flag bits.
const (
	metaVarLat   = 1 << iota // variable latency (barrier-signalled)
	metaNeedMSHR             // memory op consuming MSHR slots
	metaMemory               // any memory-space access
	metaControl              // control transfer
)

func buildMeta(in *sass.Instruction) instrMeta {
	info := in.Opcode.Info()
	m := instrMeta{
		waitMask: in.Ctrl.WaitMask,
		stall:    in.Ctrl.Stall,
		writeBar: int8(in.Ctrl.WriteBar),
		readBar:  int8(in.Ctrl.ReadBar),
		class:    info.Class,
	}
	if info.VariableLatency {
		m.flags |= metaVarLat
	}
	if in.Opcode.IsMemory() {
		m.flags |= metaMemory
	}
	if spaceNeedsMSHR(in.Opcode) {
		m.flags |= metaNeedMSHR
	}
	if in.Opcode.IsControl() {
		m.flags |= metaControl
	}
	m.barReason = barrierReasonFor(in.Opcode)
	if in.Ctrl.Stall > 2 && !in.Opcode.IsControl() {
		m.issueStall = ReasonExecutionDependency
	} else {
		m.issueStall = ReasonOther
	}
	return m
}

// Load flattens a module. Call targets must name functions present in
// the module.
func Load(m *sass.Module) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("gpusim: %w", err)
	}
	p := &Program{Module: m}
	for fi, f := range m.Functions {
		p.Base = append(p.Base, len(p.Instrs))
		for i := range f.Instrs {
			p.Instrs = append(p.Instrs, f.Instrs[i])
			p.FuncOf = append(p.FuncOf, fi)
		}
	}
	p.target = make([]int, len(p.Instrs))
	for i := range p.Instrs {
		p.target[i] = -1
		in := &p.Instrs[i]
		tgt, ok := in.BranchTarget()
		if !ok {
			continue
		}
		if in.Opcode == sass.OpCAL {
			found := false
			for fi, f := range m.Functions {
				if f.Name == tgt.Sym {
					p.target[i] = p.Base[fi]
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("gpusim: %w: CAL to unknown function %q", apierr.ErrBadKernel, tgt.Sym)
			}
			continue
		}
		fi := p.FuncOf[i]
		local := int(tgt.PC) / sass.InstrBytes
		f := m.Functions[fi]
		if local < 0 || local >= len(f.Instrs) {
			return nil, fmt.Errorf("gpusim: %w: %s: branch target out of function", apierr.ErrBadKernel, f.Name)
		}
		p.target[i] = p.Base[fi] + local
	}
	p.meta = make([]instrMeta, len(p.Instrs))
	for i := range p.Instrs {
		p.meta[i] = buildMeta(&p.Instrs[i])
	}
	return p, nil
}

// EntryOf returns the flat index of the named function's first
// instruction.
func (p *Program) EntryOf(name string) (int, error) {
	for fi, f := range p.Module.Functions {
		if f.Name == name {
			return p.Base[fi], nil
		}
	}
	return 0, fmt.Errorf("gpusim: %w: no function %q", apierr.ErrBadKernel, name)
}

// Target returns the flat target index of the control transfer at flat
// index i, or -1.
func (p *Program) Target(i int) int { return p.target[i] }

// FuncName returns the name of the function containing flat index i.
func (p *Program) FuncName(i int) string {
	return p.Module.Functions[p.FuncOf[i]].Name
}

// LocalIndex converts a flat index to an instruction index within its
// function.
func (p *Program) LocalIndex(i int) int { return i - p.Base[p.FuncOf[i]] }

// LocalPC converts a flat index to a byte PC within its function.
func (p *Program) LocalPC(i int) uint32 {
	return uint32(p.LocalIndex(i) * sass.InstrBytes)
}

// FlatIndex converts (function name, label) to a flat instruction index
// using the module's label table (available for freshly assembled
// modules; label tables do not survive cubin packing).
func (p *Program) FlatIndex(fn, label string) (int, error) {
	for fi, f := range p.Module.Functions {
		if f.Name != fn {
			continue
		}
		idx, ok := f.Labels[label]
		if !ok {
			return 0, fmt.Errorf("gpusim: %w: function %q has no label %q", apierr.ErrBadKernel, fn, label)
		}
		return p.Base[fi] + idx, nil
	}
	return 0, fmt.Errorf("gpusim: %w: no function %q", apierr.ErrBadKernel, fn)
}

// LineAt returns the source mapping of flat index i.
func (p *Program) LineAt(i int) sass.LineInfo {
	fi := p.FuncOf[i]
	return p.Module.Functions[fi].Lines[p.LocalIndex(i)]
}
