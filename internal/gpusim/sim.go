package gpusim

import (
	"fmt"

	"gpa/internal/arch"
)

// Dim3 is a CUDA-style launch dimension.
type Dim3 struct{ X, Y, Z int }

// Count returns the total element count (zero components count as one).
func (d Dim3) Count() int {
	c := 1
	for _, v := range []int{d.X, d.Y, d.Z} {
		if v > 1 {
			c *= v
		}
	}
	return c
}

// Dim returns a 1-D Dim3.
func Dim(x int) Dim3 { return Dim3{X: x} }

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	Entry string
	Grid  Dim3
	Block Dim3
	// RegsPerThread and SharedMemPerBlock feed the occupancy calculator.
	RegsPerThread     int
	SharedMemPerBlock int
}

// Config controls a simulation run.
type Config struct {
	GPU *arch.GPU
	// SimSMs bounds how many SMs are simulated in detail; the remaining
	// SMs are assumed to behave like the simulated ones (the paper makes
	// the same homogeneity assumption when extrapolating per-SM samples
	// to the kernel). 0 means 4.
	SimSMs int
	// SamplePeriod is the PC sampling period in cycles (0 disables
	// sampling).
	SamplePeriod int
	// Sink receives samples when sampling is enabled.
	Sink SampleSink
	// Seed perturbs the deterministic memory-latency jitter.
	Seed uint64
	// MaxCycles aborts runaway simulations (0 means 50M).
	MaxCycles int64
}

// Result summarizes one simulated launch.
type Result struct {
	// Cycles is the kernel duration: the completion cycle of the
	// busiest simulated SM.
	Cycles int64
	// IssuedPerPC counts issued instructions per flat PC across
	// simulated SMs.
	IssuedPerPC []int64
	// TotalIssued is the sum of IssuedPerPC.
	TotalIssued int64
	// Occupancy echoes the launch occupancy.
	Occupancy arch.Occupancy
	// WarpsPerScheduler is the EFFECTIVE resident warp count per
	// scheduler: the occupancy capacity capped by what the grid
	// actually supplies per SM. This is the W of the paper's Equations
	// 6-9.
	WarpsPerScheduler int
	// ActiveSMs is how many SMs had at least one block.
	ActiveSMs int
	// SimulatedSMs is how many SMs were simulated in detail.
	SimulatedSMs int
	// BlocksLaunched is the grid block count.
	BlocksLaunched int
	// ThreadsPerBlock echoes the launch config.
	ThreadsPerBlock int
}

// Run simulates a kernel launch to completion.
func Run(p *Program, launch LaunchConfig, wl Workload, cfg Config) (*Result, error) {
	if cfg.GPU == nil {
		return nil, fmt.Errorf("gpusim: nil GPU config")
	}
	if wl == nil {
		wl = NopWorkload{}
	}
	entry, err := p.EntryOf(launch.Entry)
	if err != nil {
		return nil, err
	}
	threads := launch.Block.Count()
	occ, err := cfg.GPU.ComputeOccupancy(threads, launch.RegsPerThread, launch.SharedMemPerBlock)
	if err != nil {
		return nil, fmt.Errorf("gpusim: %w", err)
	}
	blocks := launch.Grid.Count()
	if blocks <= 0 {
		return nil, fmt.Errorf("gpusim: empty grid")
	}
	activeSMs := cfg.GPU.NumSMs
	if blocks < activeSMs {
		activeSMs = blocks
	}
	simSMs := cfg.SimSMs
	if simSMs <= 0 {
		simSMs = 4
	}
	if simSMs > activeSMs {
		simSMs = activeSMs
	}
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 50_000_000
	}

	res := &Result{
		IssuedPerPC:     make([]int64, len(p.Instrs)),
		Occupancy:       occ,
		ActiveSMs:       activeSMs,
		SimulatedSMs:    simSMs,
		BlocksLaunched:  blocks,
		ThreadsPerBlock: threads,
	}
	warpsPerBlock := (threads + cfg.GPU.WarpSize - 1) / cfg.GPU.WarpSize
	residentBlocks := (blocks + cfg.GPU.NumSMs - 1) / cfg.GPU.NumSMs
	if residentBlocks > occ.BlocksPerSM {
		residentBlocks = occ.BlocksPerSM
	}
	res.WarpsPerScheduler = (residentBlocks*warpsPerBlock + cfg.GPU.SchedulersPerSM - 1) /
		cfg.GPU.SchedulersPerSM
	if res.WarpsPerScheduler < 1 {
		res.WarpsPerScheduler = 1
	}
	for smID := 0; smID < simSMs; smID++ {
		// SM k runs grid blocks k, k+NumSMs, k+2*NumSMs, ...
		var myBlocks []int
		for b := smID; b < blocks; b += cfg.GPU.NumSMs {
			myBlocks = append(myBlocks, b)
		}
		if len(myBlocks) == 0 {
			continue
		}
		sm := newSM(smID, p, wl, cfg, launch, occ, entry, myBlocks, warpsPerBlock)
		cycles, err := sm.run(maxCycles)
		if err != nil {
			return nil, err
		}
		if cycles > res.Cycles {
			res.Cycles = cycles
		}
		for pc, n := range sm.issuedPerPC {
			res.IssuedPerPC[pc] += n
			res.TotalIssued += n
		}
	}
	return res, nil
}
