package gpusim

import (
	"context"
	"fmt"
	"runtime"

	"gpa/internal/apierr"
	"gpa/internal/arch"
	"gpa/internal/par"
)

// Dim3 is a CUDA-style launch dimension.
type Dim3 struct{ X, Y, Z int }

// Count returns the total element count (zero components count as one,
// as CUDA's dim3 does). Negative components are invalid; Run rejects
// them with ErrBadKernel before Count is consulted.
func (d Dim3) Count() int {
	c := 1
	for _, v := range []int{d.X, d.Y, d.Z} {
		if v > 1 {
			c *= v
		}
	}
	return c
}

// valid reports whether every component is non-negative.
func (d Dim3) valid() bool { return d.X >= 0 && d.Y >= 0 && d.Z >= 0 }

// Dim returns a 1-D Dim3.
func Dim(x int) Dim3 { return Dim3{X: x} }

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	Entry string
	Grid  Dim3
	Block Dim3
	// RegsPerThread and SharedMemPerBlock feed the occupancy calculator.
	RegsPerThread     int
	SharedMemPerBlock int
}

// Config controls a simulation run.
type Config struct {
	GPU *arch.GPU
	// SimSMs bounds how many SMs are simulated in detail; the remaining
	// SMs are assumed to behave like the simulated ones (the paper makes
	// the same homogeneity assumption when extrapolating per-SM samples
	// to the kernel). 0 means 4.
	SimSMs int
	// SamplePeriod is the PC sampling period in cycles (0 disables
	// sampling).
	SamplePeriod int
	// Sink receives samples when sampling is enabled.
	Sink SampleSink
	// Seed perturbs the deterministic memory-latency jitter.
	Seed uint64
	// MaxCycles aborts runaway simulations (0 means 50M).
	MaxCycles int64
	// Parallelism bounds how many SMs are simulated concurrently
	// (0 means GOMAXPROCS; values above GOMAXPROCS are capped to it —
	// spawning more SM goroutines than cores only adds scheduling and
	// buffering overhead). Each SM is independent, so results and the
	// ordered sample stream delivered to Sink are identical for every
	// parallelism level. With Parallelism > 1 the Workload must be safe
	// for concurrent use: Spec binding is read-only, but the callback
	// closures a spec carries are invoked concurrently too and must not
	// mutate shared state. Set 1 for the single-goroutine contract.
	Parallelism int

	// stepEveryCycle is a test hook: it disables the event-driven cycle
	// skip and the warp-bound cache, advancing one cycle at a time and
	// re-evaluating every warp each cycle. It exists as the oracle the
	// event-skip loop is checked against (results must be bit-identical)
	// and is deliberately unexported.
	stepEveryCycle bool
}

// Result summarizes one simulated launch.
type Result struct {
	// Cycles is the kernel duration: the completion cycle of the
	// busiest simulated SM.
	Cycles int64
	// IssuedPerPC counts issued instructions per flat PC across
	// simulated SMs.
	IssuedPerPC []int64
	// TotalIssued is the sum of IssuedPerPC.
	TotalIssued int64
	// Occupancy echoes the launch occupancy.
	Occupancy arch.Occupancy
	// WarpsPerScheduler is the EFFECTIVE resident warp count per
	// scheduler: the occupancy capacity capped by what the grid
	// actually supplies per SM. This is the W of the paper's Equations
	// 6-9.
	WarpsPerScheduler int
	// ActiveSMs is how many SMs had at least one block.
	ActiveSMs int
	// SimulatedSMs is how many SMs were simulated in detail.
	SimulatedSMs int
	// BlocksLaunched is the grid block count.
	BlocksLaunched int
	// ThreadsPerBlock echoes the launch config.
	ThreadsPerBlock int

	// PeriodsDetected counts steady-state period templates the loop
	// memoizer locked onto across simulated SMs (see steady.go).
	// The memoizer never changes results: Cycles, IssuedPerPC, and the
	// sample stream are bit-identical with or without fast-forwarding.
	PeriodsDetected int64
	// CyclesFastForwarded counts SM-cycles skipped analytically instead
	// of stepped (summed over simulated SMs).
	CyclesFastForwarded int64
	// FastForwardFallbacks counts abandoned period candidates and
	// zero-length fast-forward attempts that fell back to normal
	// event-skipped stepping.
	FastForwardFallbacks int64
}

// Run simulates a kernel launch to completion. The context is honored
// promptly: the run loop polls it at an amortized checkpoint (every
// cancelCheckInterval loop iterations), so a canceled ctx returns an
// error wrapping both ErrCanceled and ctx.Err() within one checkpoint
// interval. Cancellation never alters results: a non-canceled run is
// byte-identical whether or not a cancelable context was supplied.
func Run(ctx context.Context, p *Program, launch LaunchConfig, wl Workload, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.GPU == nil {
		return nil, fmt.Errorf("gpusim: %w: nil GPU config", apierr.ErrBadKernel)
	}
	if wl == nil {
		wl = NopWorkload{}
	}
	entry, err := p.EntryOf(launch.Entry)
	if err != nil {
		return nil, err // tagged ErrBadKernel at origin
	}
	if !launch.Grid.valid() || !launch.Block.valid() {
		return nil, fmt.Errorf("gpusim: %w: negative launch dimension (grid %+v, block %+v)",
			apierr.ErrBadKernel, launch.Grid, launch.Block)
	}
	threads := launch.Block.Count()
	occ, err := cfg.GPU.ComputeOccupancy(threads, launch.RegsPerThread, launch.SharedMemPerBlock)
	if err != nil {
		return nil, fmt.Errorf("gpusim: %w: %w", apierr.ErrBadKernel, err)
	}
	blocks := launch.Grid.Count()
	if blocks <= 0 {
		return nil, fmt.Errorf("gpusim: %w: empty grid", apierr.ErrBadKernel)
	}
	if err := apierr.CtxErr(ctx); err != nil {
		return nil, fmt.Errorf("gpusim: %w", err)
	}
	activeSMs := cfg.GPU.NumSMs
	if blocks < activeSMs {
		activeSMs = blocks
	}
	simSMs := cfg.SimSMs
	if simSMs <= 0 {
		simSMs = 4
	}
	if simSMs > activeSMs {
		simSMs = activeSMs
	}
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 50_000_000
	}

	res := p.getResult()
	res.Occupancy = occ
	res.ActiveSMs = activeSMs
	res.SimulatedSMs = simSMs
	res.BlocksLaunched = blocks
	res.ThreadsPerBlock = threads
	warpsPerBlock := (threads + cfg.GPU.WarpSize - 1) / cfg.GPU.WarpSize
	residentBlocks := (blocks + cfg.GPU.NumSMs - 1) / cfg.GPU.NumSMs
	if residentBlocks > occ.BlocksPerSM {
		residentBlocks = occ.BlocksPerSM
	}
	res.WarpsPerScheduler = (residentBlocks*warpsPerBlock + cfg.GPU.SchedulersPerSM - 1) /
		cfg.GPU.SchedulersPerSM
	if res.WarpsPerScheduler < 1 {
		res.WarpsPerScheduler = 1
	}
	// The arena holds every piece of per-run mutable state (see
	// pool.go); it is recycled when Run returns, on success and error
	// alike — nothing that escapes Run aliases it.
	ar := p.getArena()
	defer p.putArena(ar)
	rt := ar.buildRunTables(p, wl, cfg.GPU)
	parallelism := effectiveParallelism(cfg.Parallelism, simSMs)

	if parallelism <= 1 {
		// Sequential mode: SMs run in order and record straight into the
		// configured sink, all reusing one SM shell.
		ar.grow(1)
		for smID := 0; smID < simSMs; smID++ {
			ar.blocks[0] = blocksForSM(ar.blocks[0], smID, blocks, cfg.GPU.NumSMs)
			if len(ar.blocks[0]) == 0 {
				continue
			}
			sm := newSM(ar.sms[0], smID, p, rt, wl, cfg, launch, occ, entry, ar.blocks[0], warpsPerBlock, cfg.Sink)
			cycles, err := sm.run(ctx, maxCycles)
			if err != nil {
				return nil, err
			}
			mergeSM(res, cycles, sm.issuedPerPC, &sm.steady)
		}
		return res, nil
	}

	// Parallel mode: fan SMs out over a bounded worker pool. Each SM
	// records into a private buffered sink; after the join the buffers
	// are drained in SM order, so the stream delivered to cfg.Sink is
	// byte-identical to sequential mode.
	ar.grow(simSMs)
	par.Do(simSMs, parallelism, func(smID int) {
		ar.blocks[smID] = blocksForSM(ar.blocks[smID], smID, blocks, cfg.GPU.NumSMs)
		myBlocks := ar.blocks[smID]
		if len(myBlocks) == 0 {
			return
		}
		out := &ar.outcomes[smID]
		var sink SampleSink
		var buf *sliceSink
		if cfg.Sink != nil {
			buf = &ar.sinks[smID]
			sink = buf
		}
		sm := newSM(ar.sms[smID], smID, p, rt, wl, cfg, launch, occ, entry, myBlocks, warpsPerBlock, sink)
		out.cycles, out.err = sm.run(ctx, maxCycles)
		out.issued = sm.issuedPerPC
		out.detected = sm.steady.detected
		out.ffCycles = sm.steady.ffCycles
		out.fallbacks = sm.steady.fallbacks
		if buf != nil {
			out.samples = buf.samples
		}
	})
	for smID := 0; smID < simSMs; smID++ {
		out := &ar.outcomes[smID]
		// Replay the SM's stream before checking its error: a failing
		// SM records its partial stream in sequential mode too, and SMs
		// after the first failure are dropped entirely, exactly as if
		// they had never run.
		if cfg.Sink != nil {
			for _, s := range out.samples {
				cfg.Sink.Record(s)
			}
		}
		if out.err != nil {
			// Matches sequential mode, which fails on the first SM in
			// order that errors.
			return nil, out.err
		}
		if out.issued != nil {
			mergeSM(res, out.cycles, out.issued, &steadyState{
				detected: out.detected, ffCycles: out.ffCycles, fallbacks: out.fallbacks,
			})
		}
	}
	return res, nil
}

// effectiveParallelism resolves Config.Parallelism: 0 means GOMAXPROCS,
// anything above GOMAXPROCS is capped to it (more SM goroutines than
// cores pay fan-out and buffering overhead for no concurrency — BENCH_1
// and BENCH_2 measured parallel mode slower than sequential on one
// CPU), and the SM count bounds it from above. Results are identical at
// every level, so the cap never changes output.
func effectiveParallelism(requested, simSMs int) int {
	p := requested
	if mp := runtime.GOMAXPROCS(0); p <= 0 || p > mp {
		p = mp
	}
	if p > simSMs {
		p = simSMs
	}
	return p
}

// blocksForSM lists the grid blocks SM smID executes — blocks smID,
// smID+NumSMs, smID+2*NumSMs, ... — appending into buf's backing
// storage.
func blocksForSM(buf []int, smID, blocks, numSMs int) []int {
	out := buf[:0]
	for b := smID; b < blocks; b += numSMs {
		out = append(out, b)
	}
	return out
}

// mergeSM folds one SM's completion cycle, issue counts, and
// fast-forward counters into the kernel result (order-independent:
// sums and a max).
func mergeSM(res *Result, cycles int64, issuedPerPC []int64, st *steadyState) {
	if cycles > res.Cycles {
		res.Cycles = cycles
	}
	for pc, n := range issuedPerPC {
		res.IssuedPerPC[pc] += n
		res.TotalIssued += n
	}
	res.PeriodsDetected += st.detected
	res.CyclesFastForwarded += st.ffCycles
	res.FastForwardFallbacks += st.fallbacks
	ffPeriods.Add(st.detected)
	ffCycles.Add(st.ffCycles)
	ffFallbacks.Add(st.fallbacks)
}

// sliceSink buffers one SM's samples for in-order replay after a
// parallel run joins.
type sliceSink struct{ samples []Sample }

func (b *sliceSink) Record(s Sample) { b.samples = append(b.samples, s) }
