package gpusim

// StallReason is the CUPTI-style reason attached to a PC sample: why the
// sampled warp could not issue at the sample instant. The taxonomy
// follows the reasons GPA consumes (Sections 2.1 and 4 of the paper).
type StallReason uint8

// Stall reasons.
const (
	// ReasonNone: the sampled warp issued an instruction ("selected").
	ReasonNone StallReason = iota
	// ReasonInstructionFetch: the next instruction has not arrived from
	// the instruction cache.
	ReasonInstructionFetch
	// ReasonExecutionDependency: waiting on a register produced by a
	// fixed-latency instruction, a shared-memory load, or a WAR hazard
	// tracked through a read barrier.
	ReasonExecutionDependency
	// ReasonMemoryDependency: waiting on a value loaded from global,
	// local, or constant memory.
	ReasonMemoryDependency
	// ReasonSync: waiting at a BAR.SYNC (or other synchronization).
	ReasonSync
	// ReasonMemoryThrottle: a memory instruction cannot issue because
	// the memory queue (MSHRs) is full.
	ReasonMemoryThrottle
	// ReasonPipeBusy: the target functional unit is still busy with a
	// previous instruction.
	ReasonPipeBusy
	// ReasonNotSelected: the warp was ready but the scheduler issued
	// another warp.
	ReasonNotSelected
	// ReasonOther: miscellaneous (e.g. branch resolution).
	ReasonOther
	// ReasonIdle: the scheduler had no resident warp to sample.
	ReasonIdle

	NumReasons
)

var reasonNames = [NumReasons]string{
	ReasonNone:                "selected",
	ReasonInstructionFetch:    "instruction_fetch",
	ReasonExecutionDependency: "execution_dependency",
	ReasonMemoryDependency:    "memory_dependency",
	ReasonSync:                "synchronization",
	ReasonMemoryThrottle:      "memory_throttle",
	ReasonPipeBusy:            "pipe_busy",
	ReasonNotSelected:         "not_selected",
	ReasonOther:               "other",
	ReasonIdle:                "idle",
}

// String names the reason in CUPTI-report style.
func (r StallReason) String() string {
	if r < NumReasons {
		return reasonNames[r]
	}
	return "unknown"
}

// IsDependency reports whether the reason is one of the three classes
// whose stalls are caused by a source instruction rather than the
// stalled instruction itself (memory dependency, execution dependency,
// synchronization) — the classes GPA's instruction blamer attributes
// backwards (Section 4).
func (r StallReason) IsDependency() bool {
	switch r {
	case ReasonMemoryDependency, ReasonExecutionDependency, ReasonSync:
		return true
	}
	return false
}

// Sample is one PC sample as the hardware records it: which SM, warp
// scheduler, and warp were sampled, the sampled warp's current PC (flat
// instruction index), whether the scheduler issued an instruction that
// cycle (active vs latency sample), and the sampled warp's stall reason
// (ReasonNone if it was the warp that issued).
type Sample struct {
	SM        int
	Scheduler int
	Warp      int
	Cycle     int64
	PC        int
	Active    bool
	Reason    StallReason
}

// SampleSink receives samples as SMs record them; the sampling package
// provides buffered implementations that mimic CUPTI's per-SM buffers.
//
// Contract: Record is always invoked from a single goroutine, with
// samples in SM order (all of SM 0's stream, then SM 1's, ...). When
// Run simulates SMs concurrently it buffers each SM's stream privately
// and replays the buffers in SM order after the join, so sinks observe
// the same call sequence at every parallelism level and need no
// locking.
type SampleSink interface {
	Record(Sample)
}
