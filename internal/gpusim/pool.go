package gpusim

import (
	"sync"
	"sync/atomic"

	"gpa/internal/arch"
)

// Per-run state recycling. Every piece of mutable state a Run call
// needs — SM shells with their warp/scheduler/icache slices, the
// per-PC run tables, per-SM block lists, and the parallel-mode outcome
// and sample buffers — lives in an arena recycled through a sync.Pool
// hung off the Program. A Program is the natural pool key: every
// per-PC slice is sized by len(p.Instrs), so an arena recycled under
// the same program re-slices its backing arrays without allocating,
// and gpa.Kernel (which caches one Program per kernel) makes a warm
// serving engine reuse the same arenas run after run.
//
// Ownership contract: everything inside an arena is owned by exactly
// one Run call and is recycled when Run returns, so nothing that
// escapes a Run (the Result, recorded Samples) may alias arena memory.
// Results come from a second per-program pool instead: Run hands
// ownership of the returned *Result to the caller, and the caller MAY
// hand it back with Program.Recycle once it has copied what it needs.
// After Recycle the Result must not be touched; callers that retain
// results simply never recycle them.

// arena is one Run call's worth of reusable simulator state.
type arena struct {
	rt       runTables
	sms      []*sm
	blocks   [][]int
	outcomes []smOutcome
	sinks    []sliceSink
}

// smOutcome collects one SM's results in parallel mode for in-order
// merging after the join.
type smOutcome struct {
	cycles    int64
	issued    []int64
	samples   []Sample
	err       error
	detected  int64
	ffCycles  int64
	fallbacks int64
}

// poolGets/poolHits count arena acquisitions and how many were served
// from a pool instead of freshly allocated; gpad surfaces them in
// /statsz so warm-path reuse is observable in production.
var (
	poolGets atomic.Int64
	poolHits atomic.Int64
)

// PoolStats reports how many per-run state arenas have been acquired
// process-wide and how many of those were recycled pool hits.
func PoolStats() (gets, hits int64) {
	return poolGets.Load(), poolHits.Load()
}

// ffPeriods/ffCycles/ffFallbacks accumulate the steady-state memoizer's
// counters process-wide (see steady.go); gpad surfaces them in /statsz
// alongside the pool counters.
var (
	ffPeriods   atomic.Int64
	ffCycles    atomic.Int64
	ffFallbacks atomic.Int64
)

// FFStats reports process-wide steady-state fast-forward activity:
// period templates locked in, SM-cycles skipped analytically, and
// candidates abandoned to the normal stepping fallback.
func FFStats() (periods, cycles, fallbacks int64) {
	return ffPeriods.Load(), ffCycles.Load(), ffFallbacks.Load()
}

func (p *Program) getArena() *arena {
	poolGets.Add(1)
	if a, _ := p.arenaPool.Get().(*arena); a != nil {
		poolHits.Add(1)
		return a
	}
	return &arena{}
}

func (p *Program) putArena(a *arena) { p.arenaPool.Put(a) }

// grow makes the arena's per-SM tables at least n entries long before
// concurrent SM goroutines index into them.
func (a *arena) grow(n int) {
	for len(a.sms) < n {
		a.sms = append(a.sms, &sm{})
	}
	for len(a.blocks) < n {
		a.blocks = append(a.blocks, nil)
	}
	if cap(a.outcomes) < n {
		a.outcomes = make([]smOutcome, n)
	}
	a.outcomes = a.outcomes[:n]
	for i := range a.outcomes {
		// Full reset: the merge loop treats a nil issued slice as "this
		// SM never ran", so a recycled outcome must not retain the
		// prior run's pointer (the worker overwrites it when the SM
		// does run, so keeping it would buy nothing anyway).
		a.outcomes[i] = smOutcome{}
	}
	for len(a.sinks) < n {
		a.sinks = append(a.sinks, sliceSink{})
	}
	for i := 0; i < n; i++ {
		a.sinks[i].samples = a.sinks[i].samples[:0]
	}
}

// buildRunTables fills the arena's per-PC tables for this run (see
// runTables); the backing slices are reused across runs.
func (a *arena) buildRunTables(p *Program, wl Workload, g *arch.GPU) *runTables {
	n := len(p.Instrs)
	rt := &a.rt
	rt.issueCost = resizeInt64(rt.issueCost, n)
	rt.baseLat = resizeInt64(rt.baseLat, n)
	rt.tx = resizeInt32(rt.tx, n)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		rt.issueCost[i] = int64(g.IssueCost(in.Opcode))
		rt.tx[i] = 1
		// Transactions is only defined for memory instructions; the
		// simulator also consults it for other variable-latency ops
		// (their issue path always has).
		if p.meta[i].flags&(metaMemory|metaVarLat) != 0 {
			rt.tx[i] = int32(max(1, wl.Transactions(i)))
		}
		if p.meta[i].flags&metaVarLat == 0 {
			continue
		}
		rt.baseLat[i] = int64(g.VariableBaseLatency(in.Opcode))
	}
	return rt
}

// getResult takes a Result from the program's pool (or allocates one)
// with IssuedPerPC sized and cleared; all other fields are zero.
func (p *Program) getResult() *Result {
	r, _ := p.resultPool.Get().(*Result)
	if r == nil {
		r = &Result{}
	}
	*r = Result{IssuedPerPC: resizeInt64(r.IssuedPerPC, len(p.Instrs))}
	return r
}

// Recycle returns a Result produced by Run on this program to the
// per-program pool so the next Run reuses its storage. It is optional:
// callers that retain the Result just let the GC have it. After
// Recycle the Result (including its IssuedPerPC slice) must not be
// used.
func (p *Program) Recycle(res *Result) {
	if res == nil {
		return
	}
	p.resultPool.Put(res)
}

// resizeInt64 returns s resized to n entries, reusing its backing
// array when it is large enough, with every entry zeroed.
func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeInt32 is resizeInt64 for int32 slices.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resetICache returns use resized to n lines with every line marked
// not-resident.
func resetICache(use []int64, n int) []int64 {
	if cap(use) < n {
		use = make([]int64, n)
	}
	use = use[:n]
	for i := range use {
		use[i] = -1
	}
	return use
}

// resetScheds returns sch resized to n schedulers, each zeroed but
// keeping its warp-list backing.
func resetScheds(sch []scheduler, n int) []scheduler {
	if cap(sch) < n {
		sch = append(sch[:cap(sch)], make([]scheduler, n-cap(sch))...)
	}
	sch = sch[:n]
	for i := range sch {
		sch[i] = scheduler{warps: sch[i].warps[:0], bounds: sch[i].bounds[:0]}
	}
	return sch
}

// growSlot extends slots by one entry, reusing a recycled entry's
// warp-list backing when spare capacity exists.
func growSlot(slots []blockSlot) []blockSlot {
	if n := len(slots); n < cap(slots) {
		slots = slots[:n+1]
		slots[n] = blockSlot{warps: slots[n].warps[:0]}
		return slots
	}
	return append(slots, blockSlot{})
}

// poolsOf is the set of sync.Pools a Program carries; split into its
// own struct so Program's exported surface stays data-only.
type poolsOf struct {
	arenaPool  sync.Pool // *arena
	resultPool sync.Pool // *Result
}
