package gpusim

import (
	"testing"

	"gpa/internal/arch"
	"gpa/internal/sass"
)

// TestWARBarrierStalls: a store's read barrier delays the rewrite of its
// data register (execution dependency).
func TestWARBarrierStalls(t *testing.T) {
	src := `
.func war global
	MOV R0, 0x0 {S:2}
LOOP:
	STG.E.32 [R2], R6 {S:1, R:4}
	MOV R6, 0x7 {S:2, Q:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	launch := LaunchConfig{Entry: "war", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"war", "BR0"}: UniformTrips(100)}}
	_, sink := runKernel(t, src, "war", launch, spec, testConfig(nil))
	execDeps := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonExecutionDependency && s.PC == 2 {
			execDeps++
		}
	}
	if execDeps == 0 {
		t.Error("WAR hazard via read barrier produced no execution dependency stalls at the MOV")
	}
}

// TestInstructionFetchStalls: a loop body larger than the instruction
// cache misses on line crossings when few warps run (no drafting).
func TestInstructionFetchStalls(t *testing.T) {
	var sb []byte
	sb = append(sb, ".func big global\n\tMOV R0, 0x0 {S:2}\nLOOP:\n"...)
	for i := 0; i < 850; i++ {
		sb = append(sb, "\tFFMA R8, R8, R16, R8 {S:2}\n"...)
	}
	sb = append(sb, "\tIADD R0, R0, 0x1 {S:4}\n\tISETP P0, R0, 0x7fffff {S:4}\nBR0:\t@P0 BRA LOOP {S:5}\n\tEXIT\n"...)
	launch := LaunchConfig{Entry: "big", Grid: Dim(80), Block: Dim(256), RegsPerThread: 32}
	spec := &Spec{Trips: map[Site]TripFunc{{"big", "BR0"}: UniformTrips(8)}}
	_, sink := runKernel(t, string(sb), "big", launch, spec, testConfig(nil))
	fetch := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonInstructionFetch {
			fetch++
		}
	}
	if fetch == 0 {
		t.Error("an 850-instruction loop body should overflow the 768-instruction cache")
	}
	// A small loop body must not produce steady fetch stalls.
	small := `
.func small global
	MOV R0, 0x0 {S:2}
LOOP:
	FFMA R8, R8, R16, R8 {S:2}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x7fffff {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	spec2 := &Spec{Trips: map[Site]TripFunc{{"small", "BR0"}: UniformTrips(800)}}
	launch2 := LaunchConfig{Entry: "small", Grid: Dim(80), Block: Dim(256), RegsPerThread: 32}
	_, sink2 := runKernel(t, small, "small", launch2, spec2, testConfig(nil))
	fetch2 := 0
	for _, s := range sink2.samples {
		if s.Reason == ReasonInstructionFetch {
			fetch2++
		}
	}
	if fetch2 > len(sink2.samples)/50 {
		t.Errorf("small loop shows %d/%d fetch stalls; cache should hold it", fetch2, len(sink2.samples))
	}
}

// TestPipeBusyFP64: a pure FP64 stream saturates the half-rate pipe.
func TestPipeBusyFP64(t *testing.T) {
	src := `
.func dbl global
	MOV R0, 0x0 {S:2}
LOOP:
	DFMA R8, R8, R16, R8 {S:1}
	DFMA R10, R10, R18, R10 {S:1}
	DFMA R12, R12, R20, R12 {S:1}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x7fffff {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	launch := LaunchConfig{Entry: "dbl", Grid: Dim(80), Block: Dim(512), RegsPerThread: 32}
	spec := &Spec{Trips: map[Site]TripFunc{{"dbl", "BR0"}: UniformTrips(200)}}
	_, sink := runKernel(t, src, "dbl", launch, spec, testConfig(nil))
	pipe := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonPipeBusy {
			pipe++
		}
	}
	if pipe == 0 {
		t.Error("saturated FP64 pipe produced no pipe-busy stalls")
	}
}

// TestDivergentBranchPattern: an explicit Taken pattern steers a
// conditional branch per warp and per visit.
func TestDivergentBranchPattern(t *testing.T) {
	src := `
.func div global
	MOV R0, 0x0 {S:2}
	ISETP P0, R1, 0x0 {S:4}
BR0:	@P0 BRA SKIP {S:5}
	FFMA R8, R8, R16, R8 {S:2}
SKIP:
	EXIT
`
	launch := LaunchConfig{Entry: "div", Grid: Dim(1), Block: Dim(128), RegsPerThread: 16}
	spec := &Spec{Taken: map[Site]func(WarpCtx, int) bool{
		{"div", "BR0"}: func(w WarpCtx, visit int) bool { return w.WarpInBlock%2 == 0 },
	}}
	res, _ := runKernel(t, src, "div", launch, spec, testConfig(nil))
	// 4 warps: 2 take the branch and skip the FFMA at flat index 3.
	if got := res.IssuedPerPC[3]; got != 2 {
		t.Errorf("FFMA issued %d times, want 2 (half the warps skip)", got)
	}
}

// TestLatencyOverride: a workload latency override stretches a load.
func TestLatencyOverride(t *testing.T) {
	src := `
.func lat global
LD:	LDG.E.32 R4, [R2] {S:1, W:0}
	IADD R5, R4, 0x1 {S:4, Q:0}
	EXIT
`
	launch := LaunchConfig{Entry: "lat", Grid: Dim(1), Block: Dim(32), RegsPerThread: 16}
	slow := &Spec{Latency: map[Site]func(WarpCtx, int) int{
		{"lat", "LD"}: func(WarpCtx, int) int { return 5000 },
	}}
	g := arch.VoltaV100()
	resSlow, _ := runKernel(t, src, "lat", launch, slow, Config{GPU: g, SimSMs: 1, Seed: 1})
	resFast, _ := runKernel(t, src, "lat", launch, nil, Config{GPU: g, SimSMs: 1, Seed: 1})
	if resSlow.Cycles <= resFast.Cycles+3000 {
		t.Errorf("latency override had no effect: %d vs %d", resSlow.Cycles, resFast.Cycles)
	}
}

// TestMSHRAccounting: transactions are released; the kernel completes
// even under heavy throttling (no MSHR leak).
func TestMSHRAccounting(t *testing.T) {
	src := `
.func thr global
	MOV R0, 0x0 {S:2}
LOOP:
LD:	LDG.E.32 R4, [R2] {S:1, W:0}
	IADD R5, R4, 0x1 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x7fffff {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	launch := LaunchConfig{Entry: "thr", Grid: Dim(2), Block: Dim(1024), RegsPerThread: 16}
	spec := &Spec{
		Trips:        map[Site]TripFunc{{"thr", "BR0"}: UniformTrips(30)},
		Transactions: map[Site]int{{"thr", "LD"}: 32},
	}
	res, sink := runKernel(t, src, "thr", launch, spec, testConfig(nil))
	if res.Cycles <= 0 {
		t.Fatal("kernel did not complete under throttling")
	}
	throttle := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonMemoryThrottle {
			throttle++
		}
	}
	if throttle == 0 {
		t.Error("32-transaction loads from 32 warps must throttle 64 MSHRs")
	}
}

// TestSamplePeriodRobustness: halving the sampling period roughly
// doubles the samples but leaves the stall-reason distribution stable.
func TestSamplePeriodRobustness(t *testing.T) {
	launch := LaunchConfig{Entry: "membound", Grid: Dim(80), Block: Dim(256), RegsPerThread: 32}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(150)}}
	shares := map[int]float64{}
	counts := map[int]int{}
	for _, period := range []int{32, 64, 128} {
		sink := &captureSink{}
		cfg := Config{GPU: arch.VoltaV100(), SimSMs: 1, SamplePeriod: period, Sink: sink, Seed: 5}
		_, _ = runKernel(t, memBoundSrc, "membound", launch, spec, cfg)
		mem := 0
		for _, s := range sink.samples {
			if s.Reason == ReasonMemoryDependency {
				mem++
			}
		}
		counts[period] = len(sink.samples)
		shares[period] = float64(mem) / float64(len(sink.samples))
	}
	if counts[32] < counts[64] || counts[64] < counts[128] {
		t.Errorf("sample counts not monotone in rate: %v", counts)
	}
	for _, p := range []int{64, 128} {
		diff := shares[p] - shares[32]
		if diff < -0.15 || diff > 0.15 {
			t.Errorf("memory-dependency share unstable across periods: %v", shares)
		}
	}
}

// TestSharedMemoryDependency: LDS consumers report execution
// dependencies (shared class), not memory dependencies.
func TestSharedMemoryDependency(t *testing.T) {
	src := `
.func sh global
	MOV R0, 0x0 {S:2}
LOOP:
	LDS.32 R4, [R1] {S:1, W:0}
	FFMA R5, R4, R6, R5 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x7fffff {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	launch := LaunchConfig{Entry: "sh", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"sh", "BR0"}: UniformTrips(300)}}
	_, sink := runKernel(t, src, "sh", launch, spec, testConfig(nil))
	exec, mem := 0, 0
	for _, s := range sink.samples {
		switch s.Reason {
		case ReasonExecutionDependency:
			exec++
		case ReasonMemoryDependency:
			mem++
		}
	}
	if exec == 0 {
		t.Error("shared-memory consumer produced no execution dependency stalls")
	}
	if mem > exec {
		t.Errorf("LDS consumers misclassified: %d memory vs %d execution", mem, exec)
	}
}

func TestSpecBindErrors(t *testing.T) {
	m := sass.MustAssemble(memBoundSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Spec{Trips: map[Site]TripFunc{{"membound", "NOPE"}: UniformTrips(1)}}
	if _, err := bad.Bind(p); err == nil {
		t.Error("unknown label must fail to bind")
	}
	bad2 := &Spec{Trips: map[Site]TripFunc{{"ghost", "LOOP"}: UniformTrips(1)}}
	if _, err := bad2.Bind(p); err == nil {
		t.Error("unknown function must fail to bind")
	}
}
