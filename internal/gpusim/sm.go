package gpusim

import (
	"context"
	"fmt"
	"math/bits"

	"gpa/internal/apierr"
	"gpa/internal/arch"
	"gpa/internal/sass"
)

// farFuture is the sentinel "no event scheduled" cycle: the warp (or
// SM) cannot make progress until an explicit wake — barrier release or
// block rotation — resets it.
const farFuture = int64(1<<62 - 1)

// boundMSHR is the sentinel bound of a warp stalled on a full MSHR
// pool (ReasonMemoryThrottle). It is distinct from farFuture because
// the wake source differs: an MSHR release (tracked by sm.mshrGen)
// can make such a warp ready, while every other cached bound is a pure
// time bound no release can move. Both sentinels compare above any
// reachable cycle.
const boundMSHR = farFuture - 1

type warpState struct {
	ctx        WarpCtx
	slot       int // block slot index
	pc         int
	callStack  []int
	exited     bool
	barWait    bool
	nextIssue  int64
	issueStall StallReason // reason reported while nextIssue is pending
	fetchReady int64
	barReady   [sass.NumBarriers]int64
	barReason  [sass.NumBarriers]StallReason
	// visits[pc] counts dynamic executions of branch/variable-latency
	// instructions, indexed by flat PC (flattened from a map: the
	// per-issue lookup is on the hot path).
	visits []int32
	// lastIssuedPC / lastIssueCycle feed active "selected" samples.
	lastIssuedPC   int
	lastIssueCycle int64
}

// Warp bounds cache a lower bound on each warp's earliest possible
// issue cycle. A warp's time gates (fetchReady, nextIssue, barReady)
// change only through its own issue, which refreshes the cache, so a
// time bound stays valid until it expires; shared gates (unitBusy)
// only grow, which keeps the cached value a lower bound. The sentinels
// need an external wake instead: boundMSHR entries are valid while the
// scheduler's mshrSeen generation matches sm.mshrGen (MSHR releases
// expire the whole scheduler's throttle bounds at once), and farFuture
// is reset to 0 directly by the event that wakes the warp (barrier
// release, block rotation). Bounds live in a dense int64 array parallel
// to sm.warps (not in warpState) so the scheduler scan's cache-valid
// fast path touches 8 bytes per warp instead of the whole warp record.

type blockSlot struct {
	warps      []int // indices into sm.warps
	arrived    int   // warps waiting at BAR.SYNC
	aliveCount int
	done       bool
}

type scheduler struct {
	warps []int // indices into sm.warps
	// bounds[i] is warps[i]'s cached issue-cycle lower bound:
	// contiguous per scheduler so the scan's cache-valid fast path is a
	// sequential walk. For warp index w the entry lives at scheduler
	// w%NumScheds, slot w/NumScheds (warps are dealt round-robin in
	// index order).
	bounds []int64
	// mshrSeen is the sm.mshrGen value this scheduler's boundMSHR
	// entries were computed under; a mismatch means a release has freed
	// slots since, so every throttle bound must be re-probed.
	mshrSeen  uint64
	rotate    int  // LRR issue pointer
	samplePtr int  // round-robin sampled-warp pointer
	issuedNow bool // issued at the current cycle
	// nextReady is a lower bound on the next cycle any resident warp
	// could issue, letting the run loop skip fruitless full-warp scans
	// and feed the whole-SM cycle skip. 0 forces a scan; events that
	// can wake this scheduler's warps asynchronously (MSHR release when
	// throttled, barrier release, block rotation) reset it.
	nextReady int64
	// throttled records whether the last scan saw a warp stalled on the
	// MSHR pool; only such schedulers need a rescan when a release
	// frees slots.
	throttled bool
	// unitBusy models per-partition execution-unit throughput: on
	// Volta-family SMs (Volta, Turing, Ampere) each scheduler owns its
	// FP32/INT/FP64/SFU pipes; the per-class costs come from
	// arch.GPU.IssueCost.
	unitBusy [16]int64 // per exec class
}

type mshrRelease struct {
	cycle int64
	count int
}

// runTables holds per-run, per-PC tables shared read-only by every SM of
// one Run call: GPU-dependent issue costs and default memory latencies,
// and workload-dependent transaction counts. Precomputing them once per
// run keeps Opcode.Info, latency switches, and Workload.Transactions
// calls off the per-cycle path.
type runTables struct {
	issueCost []int64 // per PC: scheduler dispatch occupancy
	baseLat   []int64 // per PC: default variable-latency base (0 = fixed)
	tx        []int32 // per PC: max(1, workload transactions)
}

type sm struct {
	id     int
	p      *Program
	meta   []instrMeta
	rt     *runTables
	wl     Workload
	gpu    *arch.GPU
	cfg    Config
	launch LaunchConfig
	entry  int

	scheds []scheduler
	warps  []warpState
	slots  []blockSlot

	blockQueue []int // global block IDs still to run
	nextBlock  int
	// doneSlots counts block slots that have drained with the queue
	// empty; allDone is O(1) against it instead of walking the slots.
	doneSlots int

	mshrFree int
	releases []mshrRelease
	// minRelease caches the earliest pending MSHR release cycle so the
	// run loop only compacts the release list when one is actually due.
	minRelease int64

	// icacheUse[line] is the line's last-use cycle (-1 = not resident);
	// flattened from a map since lines are dense and few.
	icacheUse      []int64
	icacheResident int
	icacheCap      int
	// icacheLine caches GPU.ICacheLineInstrs: line membership is checked
	// on every sequential-flow issue.
	icacheLine int
	// fetchBusy serializes instruction-cache miss handling: the fetch
	// unit services one miss at a time.
	fetchBusy int64

	issuedPerPC []int64
	warpsPerBlk int
	tick        int64 // sampling tick counter
	sink        SampleSink
	// wakeSeq increments on every explicit wake (barrier release, block
	// rotation), letting the scheduler scan detect that an issue's side
	// effects invalidated the nextReady bound it was accumulating.
	wakeSeq uint64
	// mshrGen increments whenever processReleases frees MSHR slots;
	// cached boundMSHR warp bounds are valid only for the generation
	// they were computed in.
	mshrGen uint64
	// lastProgress is the cycle of the most recent issue, reported by
	// the livelock guard.
	lastProgress int64
	// steady is the steady-state loop memoizer (see steady.go): period
	// detection, the recorded period template, and the fast-forward
	// counters.
	steady steadyState
}

// newSM (re)initializes an SM shell for one run. The shell comes from
// the program's run-state arena: every slice it carries is resized in
// place and reused, so a warm shell initializes without heap
// allocations (see pool.go for the recycling contract).
func newSM(shell *sm, id int, p *Program, rt *runTables, wl Workload, cfg Config, launch LaunchConfig,
	occ arch.Occupancy, entry int, blocks []int, warpsPerBlock int, sink SampleSink) *sm {
	s := shell
	lines := (len(p.Instrs) + cfg.GPU.ICacheLineInstrs - 1) / cfg.GPU.ICacheLineInstrs
	*s = sm{
		id: id, p: p, meta: p.meta, rt: rt, wl: wl, gpu: cfg.GPU, cfg: cfg, launch: launch,
		entry:       entry,
		scheds:      resetScheds(s.scheds, cfg.GPU.SchedulersPerSM),
		warps:       s.warps[:0],
		slots:       s.slots[:0],
		blockQueue:  blocks,
		mshrFree:    cfg.GPU.MSHRsPerSM,
		releases:    s.releases[:0],
		minRelease:  farFuture,
		icacheLine:  cfg.GPU.ICacheLineInstrs,
		icacheUse:   resetICache(s.icacheUse, lines),
		icacheCap:   max(1, cfg.GPU.ICacheInstrs/cfg.GPU.ICacheLineInstrs),
		issuedPerPC: resizeInt64(s.issuedPerPC, len(p.Instrs)),
		warpsPerBlk: warpsPerBlock,
		sink:        sink,
		steady:      resetSteady(s.steady, wl, cfg.stepEveryCycle),
	}
	resident := occ.BlocksPerSM
	if resident > len(blocks) {
		resident = len(blocks)
	}
	for slot := 0; slot < resident; slot++ {
		s.slots = growSlot(s.slots)
		s.startBlock(slot, 0)
	}
	return s
}

// wakeAll forces every scheduler to rescan its warps; block rotation
// uses it because a rotated-in block's fresh warps are spread over all
// schedulers.
func (s *sm) wakeAll() {
	s.wakeSeq++
	for i := range s.scheds {
		s.scheds[i].nextReady = 0
	}
}

// startBlock (re)fills a block slot with the next queued block at the
// given cycle; it returns false when the queue is empty.
func (s *sm) startBlock(slot int, now int64) bool {
	if s.nextBlock >= len(s.blockQueue) {
		if !s.slots[slot].done {
			s.slots[slot].done = true
			s.doneSlots++
		}
		return false
	}
	blockID := s.blockQueue[s.nextBlock]
	s.nextBlock++
	bs := &s.slots[slot]
	bs.arrived = 0
	bs.aliveCount = s.warpsPerBlk
	bs.done = false
	if len(bs.warps) == 0 {
		for wi := 0; wi < s.warpsPerBlk; wi++ {
			widx := len(s.warps)
			bs.warps = append(bs.warps, widx)
			s.warps = growWarp(s.warps)
			// Warps are distributed round-robin over schedulers.
			sc := widx % len(s.scheds)
			s.scheds[sc].warps = append(s.scheds[sc].warps, widx)
			s.scheds[sc].bounds = append(s.scheds[sc].bounds, 0)
		}
	}
	for wi, widx := range bs.warps {
		*s.boundOf(widx) = 0
		w := &s.warps[widx]
		visits := w.visits
		if visits == nil {
			visits = make([]int32, len(s.p.Instrs))
		} else {
			clear(visits)
		}
		*w = warpState{
			slot: slot,
			ctx: WarpCtx{
				SM:          s.id,
				Block:       blockID,
				WarpInBlock: wi,
				GlobalWarp:  blockID*s.warpsPerBlk + wi,
			},
			pc:        s.entry,
			nextIssue: now + int64(s.gpu.BlockLaunchOverhead),
			visits:    visits,
			callStack: w.callStack[:0],
		}
	}
	s.wakeAll()
	return true
}

// growWarp extends warps by one entry, reusing a recycled entry's
// visits and callStack backing when spare capacity exists.
func growWarp(warps []warpState) []warpState {
	if n := len(warps); n < cap(warps) {
		return warps[:n+1]
	}
	return append(warps, warpState{})
}

// boundOf locates warp widx's cached bound inside its scheduler's
// dense bound array (round-robin deal: scheduler widx%N, slot widx/N).
func (s *sm) boundOf(widx int) *int64 {
	n := len(s.scheds)
	return &s.scheds[widx%n].bounds[widx/n]
}

func (s *sm) allDone() bool {
	return s.nextBlock >= len(s.blockQueue) && s.doneSlots == len(s.slots)
}

// ready reports whether warp w can issue at cycle now, the stall reason
// when it cannot, and a lower bound on the first cycle it could become
// ready absent asynchronous wake events (farFuture when only such an
// event can wake it). The returned reason for a ready warp is
// ReasonNotSelected (callers override to ReasonNone for the issuer).
func (s *sm) ready(sc *scheduler, w *warpState, now int64) (bool, StallReason, int64) {
	if w.exited {
		return false, ReasonIdle, farFuture
	}
	if w.barWait {
		return false, ReasonSync, farFuture
	}
	m := &s.meta[w.pc]
	bound := w.fetchReady
	if w.nextIssue > bound {
		bound = w.nextIssue
	}
	if busy := sc.unitBusy[m.class]; busy > bound {
		bound = busy
	}
	// Scoreboard wait mask: the slowest pending barrier gates issue.
	var worst int64
	reason := ReasonNone
	for wm := m.waitMask; wm != 0; wm &= wm - 1 {
		b := bits.TrailingZeros8(wm)
		if r := w.barReady[b]; r > now && r > worst {
			worst = r
			reason = w.barReason[b]
		}
	}
	if worst > bound {
		bound = worst
	}
	if w.fetchReady > now {
		return false, ReasonInstructionFetch, bound
	}
	if worst > 0 {
		return false, reason, bound
	}
	if w.nextIssue > now {
		return false, w.issueStall, bound
	}
	if m.flags&metaNeedMSHR != 0 && s.mshrFree < int(s.rt.tx[w.pc]) {
		return false, ReasonMemoryThrottle, boundMSHR
	}
	if sc.unitBusy[m.class] > now {
		return false, ReasonPipeBusy, bound
	}
	return true, ReasonNotSelected, now
}

// readiness is the two-result form of ready used by the sampling path.
func (s *sm) readiness(sc *scheduler, w *warpState, now int64) (bool, StallReason) {
	ok, reason, _ := s.ready(sc, w, now)
	return ok, reason
}

func spaceNeedsMSHR(op sass.Opcode) bool {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemGeneric:
		return true
	}
	return false
}

// memLatency models the completion latency of a variable-latency
// instruction.
func (s *sm) memLatency(w *warpState, pc int, tx int) int64 {
	visit := int(w.visits[pc])
	if lat := s.wl.Latency(w.ctx, pc, visit); lat > 0 {
		return int64(lat)
	}
	base := s.rt.baseLat[pc]
	// Deterministic jitter: ±12% keyed by (seed, warp, pc, visit).
	h := splitmix(s.cfg.Seed ^ uint64(w.ctx.GlobalWarp)<<32 ^ uint64(pc)<<8 ^ uint64(visit))
	jitter := int64(h%uint64(max(1, base/4))) - base/8
	// Uncoalesced accesses serialize their extra transactions.
	extra := int64(0)
	if tx > 1 && s.meta[pc].flags&metaNeedMSHR != 0 {
		extra = int64(tx-1) * int64(s.gpu.UncoalescedPenalty)
	}
	lat := base + jitter + extra
	if lat < 2 {
		lat = 2
	}
	return lat
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// barrierReasonFor maps a variable-latency producer to the stall reason
// a consumer waiting on its barrier reports.
func barrierReasonFor(op sass.Opcode) StallReason {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemConst, sass.ClassMemGeneric:
		return ReasonMemoryDependency
	case sass.ClassMemShared:
		return ReasonExecutionDependency
	}
	// MUFU, IDIV, S2R, SHFL and read-barrier (WAR) waits are execution
	// dependencies.
	return ReasonExecutionDependency
}

// icacheCheck models the instruction cache at a control transfer to
// target; sequential flow never misses (hardware prefetches linearly).
func (s *sm) icacheCheck(w *warpState, target int, now int64) {
	line := target / s.icacheLine
	if s.icacheUse[line] >= 0 {
		s.icacheUse[line] = now
		return
	}
	// Miss: evict LRU if full, install, stall the warp. Misses are
	// serviced through a shared fetch unit, so concurrent misses
	// serialize (GPU.FetchSerializeCycles each).
	s.steady.missCount++
	if s.icacheResident >= s.icacheCap {
		lruLine := -1
		lruCycle := farFuture
		for l, c := range s.icacheUse {
			if c >= 0 && c < lruCycle {
				lruCycle, lruLine = c, l
			}
		}
		s.icacheUse[lruLine] = -1
		s.icacheResident--
	}
	s.icacheUse[line] = now
	s.icacheResident++
	start := now
	if s.fetchBusy > start {
		start = s.fetchBusy
	}
	w.fetchReady = start + int64(s.gpu.IFetchMissLatency)
	s.fetchBusy = start + int64(s.gpu.FetchSerializeCycles)
}

// issue executes one instruction for warp w at cycle now.
func (s *sm) issue(sc *scheduler, widx int, now int64) {
	w := &s.warps[widx]
	pc := w.pc
	in := &s.p.Instrs[pc]
	m := &s.meta[pc]
	s.issuedPerPC[pc]++
	w.lastIssuedPC = pc
	w.lastIssueCycle = now

	stall := int64(m.stall)
	if stall < 1 {
		stall = 1
	}
	w.nextIssue = now + stall
	w.issueStall = m.issueStall
	sc.unitBusy[m.class] = now + s.rt.issueCost[pc]

	if m.flags&metaVarLat != 0 {
		tx := int(s.rt.tx[pc])
		lat := s.memLatency(w, pc, tx)
		if m.flags&metaNeedMSHR != 0 {
			s.mshrFree -= tx
			s.pushRelease(mshrRelease{cycle: now + lat, count: tx})
		}
		if wb := m.writeBar; wb != int8(sass.NoBarrier) {
			w.barReady[wb] = now + lat
			w.barReason[wb] = m.barReason
		}
		if rb := m.readBar; rb != int8(sass.NoBarrier) {
			// Source operands are consumed well before the result
			// lands; WAR hazards clear earlier.
			readDone := now + min(lat, 20)
			if w.barReady[rb] < readDone {
				w.barReady[rb] = readDone
				w.barReason[rb] = ReasonExecutionDependency
			}
		}
	}

	// Control flow.
	switch in.Opcode {
	case sass.OpBRA, sass.OpJMP, sass.OpBRX:
		visit := int(w.visits[pc])
		w.visits[pc]++
		taken := in.Unconditional() || s.wl.Taken(w.ctx, pc, visit)
		if st := &s.steady; st.enabled {
			if st.recording {
				st.execs = append(st.execs, steadyExec{
					widx: int32(widx), pc: int32(pc),
					outcome: taken, probe: !in.Unconditional(),
				})
			}
			if taken && s.p.Target(pc) <= pc {
				// A taken backward branch is a loop back-edge: the
				// anchor warp's back-edges are where fingerprints are
				// compared. If the anchor warp parked (exited or
				// barrier-blocked), the first other warp to take a
				// back-edge inherits the anchor.
				if widx == st.anchorWarp {
					st.anchorHit = true
				} else if aw := &s.warps[st.anchorWarp]; aw.exited || aw.barWait {
					st.reelect(widx)
					st.anchorHit = true
				}
			}
		}
		if taken {
			w.pc = s.p.Target(pc)
			s.icacheCheck(w, w.pc, now)
		} else {
			w.pc = pc + 1
			if w.pc/s.icacheLine != pc/s.icacheLine {
				s.icacheCheck(w, w.pc, now)
			}
		}
	case sass.OpCAL:
		w.callStack = append(w.callStack, pc+1)
		w.pc = s.p.Target(pc)
		s.icacheCheck(w, w.pc, now)
	case sass.OpRET:
		if len(w.callStack) == 0 {
			s.exitWarp(w)
			return
		}
		w.pc = w.callStack[len(w.callStack)-1]
		w.callStack = w.callStack[:len(w.callStack)-1]
		s.icacheCheck(w, w.pc, now)
	case sass.OpEXIT:
		s.exitWarp(w)
	case sass.OpBAR:
		w.barWait = true
		w.pc = pc + 1
		slot := &s.slots[w.slot]
		slot.arrived++
		s.maybeReleaseBarrier(slot)
	default:
		w.pc = pc + 1
		// Sequential flow fetches new lines as well: bodies larger than
		// the cache evict their own head and pay misses continuously.
		if w.pc/s.icacheLine != pc/s.icacheLine {
			s.icacheCheck(w, w.pc, now)
		}
	}
}

func (s *sm) exitWarp(w *warpState) {
	w.exited = true
	slot := &s.slots[w.slot]
	slot.aliveCount--
	s.maybeReleaseBarrier(slot)
	if slot.aliveCount == 0 {
		s.startBlock(w.slot, w.lastIssueCycle)
	}
}

// maybeReleaseBarrier wakes only the block's own warps: a barrier
// release cannot change any other warp's readiness, so their cached
// bounds stay valid.
func (s *sm) maybeReleaseBarrier(slot *blockSlot) {
	if slot.aliveCount > 0 && slot.arrived >= slot.aliveCount {
		for _, widx := range slot.warps {
			s.warps[widx].barWait = false
			*s.boundOf(widx) = 0
			s.scheds[widx%len(s.scheds)].nextReady = 0
		}
		slot.arrived = 0
		s.wakeSeq++
	}
}

// processReleases returns MSHR slots whose transactions completed.
// Freed slots can only wake warps stalled on ReasonMemoryThrottle:
// their cached boundMSHR entries expire (mshrGen) and their throttled
// schedulers rescan. Every other cached bound is a pure time bound a
// release cannot move, so it survives. The pending releases form a
// binary min-heap on cycle, so a call pops only the due entries
// instead of compacting the whole list.
func (s *sm) processReleases(now int64) {
	released := false
	for len(s.releases) > 0 && s.releases[0].cycle <= now {
		s.mshrFree += s.releases[0].count
		released = true
		s.popRelease()
	}
	if len(s.releases) > 0 {
		s.minRelease = s.releases[0].cycle
	} else {
		s.minRelease = farFuture
	}
	if released {
		s.mshrGen++
		for si := range s.scheds {
			if s.scheds[si].throttled {
				s.scheds[si].nextReady = 0
			}
		}
	}
}

// pushRelease adds a pending MSHR release to the min-heap and keeps
// minRelease at the root.
func (s *sm) pushRelease(r mshrRelease) {
	h := append(s.releases, r)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].cycle <= h[i].cycle {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	s.releases = h
	if h[0].cycle < s.minRelease {
		s.minRelease = h[0].cycle
	}
}

// popRelease removes the heap root (the earliest pending release).
func (s *sm) popRelease() {
	h := s.releases
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		if r := l + 1; r < last && h[r].cycle < h[l].cycle {
			l = r
		}
		if h[i].cycle <= h[l].cycle {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	s.releases = h
}

// sampleTick records one PC sample: the sampling unit cycles round-robin
// over the warp schedulers (one scheduler per period, per Figure 1 of
// the paper) and rotates over the scheduler's resident warps.
func (s *sm) sampleTick(now int64) {
	sink := s.sink
	if sink == nil {
		return
	}
	schedIdx := int(s.tick) % len(s.scheds)
	s.tick++
	sc := &s.scheds[schedIdx]
	// Pick the next non-exited warp in rotation.
	n := len(sc.warps)
	if n == 0 {
		return
	}
	var w *warpState
	widx := -1
	for i := 0; i < n; i++ {
		cand := sc.warps[(sc.samplePtr+i)%n]
		if !s.warps[cand].exited {
			widx = cand
			sc.samplePtr = (sc.samplePtr + i + 1) % n
			break
		}
	}
	if widx < 0 {
		return
	}
	w = &s.warps[widx]
	smp := Sample{
		SM:        s.id,
		Scheduler: schedIdx,
		Warp:      widx,
		Cycle:     now,
		Active:    sc.issuedNow,
	}
	if w.lastIssueCycle == now && w.lastIssueCycle > 0 {
		smp.PC = w.lastIssuedPC
		smp.Reason = ReasonNone
	} else {
		smp.PC = w.pc
		_, reason := s.readiness(sc, w, now)
		smp.Reason = reason
	}
	sink.Record(smp)
	if st := &s.steady; st.recording {
		rel := smp
		rel.Cycle -= st.baseNow
		st.samples = append(st.samples, rel)
	}
}

// run drives the SM to completion and returns the final cycle.
// cancelCheckInterval is how many run-loop iterations pass between
// context polls. Each iteration advances at least one cycle (often
// many, via the event-driven skip), so cancellation lands within a
// bounded, small slice of simulated work while the per-iteration cost
// stays one counter decrement on the hot path.
const cancelCheckInterval = 4096

// run's loop is event-driven: after scanning the schedulers whose
// nextReady cursors are due, it jumps straight to the next interesting
// cycle — the minimum over the per-scheduler cursors and the earliest
// pending MSHR release. Fetch completions, scoreboard-barrier expiries,
// and pipe drains are folded into the cursors (a warp's cached bound is
// the max of its gates); barrier releases and block rotations reset the
// affected cursors at the issue that causes them, so they can never be
// skipped over. Sample ticks fire on the way through a jump: the
// skipped span contains no issue and no state change, so each tick
// observes exactly the state a cycle-by-cycle walk would have seen
// (Config.stepEveryCycle retains that naive walk as a test oracle).
func (s *sm) run(ctx context.Context, maxCycles int64) (int64, error) {
	now := int64(0)
	period := int64(s.cfg.SamplePeriod)
	nextTick := period
	step := s.cfg.stepEveryCycle
	s.lastProgress = 0
	checkIn := cancelCheckInterval
	for !s.allDone() {
		if checkIn--; checkIn <= 0 {
			checkIn = cancelCheckInterval
			if err := apierr.CtxErr(ctx); err != nil {
				return 0, fmt.Errorf("gpusim: SM %d: %w", s.id, err)
			}
		}
		if now > maxCycles {
			return 0, fmt.Errorf("gpusim: %w: SM %d exceeded %d cycles (possible livelock; last progress at %d)",
				apierr.ErrSimLimit, s.id, maxCycles, s.lastProgress)
		}
		if s.minRelease <= now {
			s.processReleases(now)
		}
		for si := range s.scheds {
			sc := &s.scheds[si]
			sc.issuedNow = false
			if !step && sc.nextReady > now {
				continue
			}
			s.scan(sc, now, step)
		}
		if period > 0 && now >= nextTick {
			s.sampleTick(now)
			nextTick += period
		}
		if s.steady.anchorHit {
			// The anchor warp took a loop back-edge this cycle: run the
			// steady-state detector on the post-scan, post-tick state —
			// it may fast-forward whole periods (see steady.go).
			s.steady.anchorHit = false
			now, nextTick = s.steadyAnchor(now, nextTick, period, maxCycles)
		}
		if step || s.allDone() {
			// Stepper mode walks cycle by cycle; a completed SM (the
			// pass above issued its last EXIT) finishes one cycle after
			// its final issue — never at a later stale event such as an
			// exited warp's still-pending MSHR release.
			now++
			continue
		}
		// Whole-SM skip: the next cycle anything can happen is the
		// earliest scheduler cursor or MSHR release.
		next := s.minRelease
		for si := range s.scheds {
			if nr := s.scheds[si].nextReady; nr < next {
				next = nr
			}
		}
		if next >= boundMSHR {
			// No future event can wake this SM (deadlock or a throttle
			// no release will clear): jump straight to the livelock
			// guard instead of grinding one cycle at a time.
			next = maxCycles + 1
		}
		if next <= now {
			next = now + 1
		}
		if period > 0 && nextTick < next {
			// Fire the sample ticks inside the skipped span; they all
			// observe the same stalled state.
			for si := range s.scheds {
				s.scheds[si].issuedNow = false
			}
			for nextTick < next {
				s.sampleTick(nextTick)
				nextTick += period
			}
		}
		now = next
	}
	return now, nil
}

// scan walks one scheduler's warps in LRR order: issue the first ready
// one, then keep scanning for bounds only, so the refreshed nextReady
// cursor covers a whole issue epoch instead of forcing a rescan every
// cycle. step disables the warp-bound cache (the cycle-stepper oracle
// re-evaluates every warp every cycle).
func (s *sm) scan(sc *scheduler, now int64, step bool) {
	warps := sc.warps
	n := len(warps)
	bound := farFuture
	seq := s.wakeSeq
	mshrStale := sc.mshrSeen != s.mshrGen
	sc.throttled = false
	throttled := false
	complete := true
	// Walk [start, n) then [0, start): two contiguous ranges instead of
	// a modular index on every iteration. start is captured up front —
	// an issue moves sc.rotate mid-scan, but the scan must still cover
	// every warp exactly once in the original rotation order.
	start := sc.rotate
scanLoop:
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, n
		if pass == 1 {
			lo, hi = 0, start
		}
		bounds := sc.bounds[lo:hi:hi]
		for i, wb := range bounds {
			slot := lo + i
			if step || wb <= now || (wb == boundMSHR && mshrStale) {
				widx := warps[slot]
				w := &s.warps[widx]
				ok, _, b := s.ready(sc, w, now)
				if ok && !sc.issuedNow {
					s.issue(sc, widx, now)
					sc.issuedNow = true
					s.lastProgress = now
					// The LRR pointer restarts after the issuer.
					sc.rotate = slot + 1
					if sc.rotate >= n {
						sc.rotate = 0
					}
					// Post-issue the warp is stalled at least one
					// cycle; its refreshed gates bound its next issue.
					_, _, b = s.ready(sc, w, now)
				}
				bounds[i] = b
				wb = b
			}
			if wb == boundMSHR {
				throttled = true
			}
			if wb < bound {
				bound = wb
			}
			if !step && sc.issuedNow && bound <= now+1 {
				// Early out: this scheduler has issued and its cursor is
				// already pinned at (or below) the next cycle, so it
				// rescans then no matter what the remaining warps'
				// bounds are. Stopping here skips the bound gathering
				// for the rest of the list; the unscanned warps keep
				// their caches (still valid lower bounds), and the
				// throttled flag only matters for schedulers whose
				// cursor lets them sleep — which an early-out cursor
				// never does.
				complete = false
				break scanLoop
			}
		}
	}
	if complete {
		// Every boundMSHR entry was re-probed under the current MSHR
		// generation; an early-out scan leaves mshrSeen stale so the
		// skipped entries are re-probed next time.
		sc.mshrSeen = s.mshrGen
	}
	sc.throttled = throttled
	if s.wakeSeq != seq {
		// An issue released a barrier or rotated a block; bounds
		// gathered before that are stale. Rescan next cycle.
		sc.nextReady = 0
	} else {
		sc.nextReady = bound
	}
}
