package gpusim

import (
	"fmt"

	"gpa/internal/arch"
	"gpa/internal/sass"
)

// icacheLineInstrs is the instruction-cache line size in instructions.
const icacheLineInstrs = 32

// blockLaunchOverhead is the cycle cost of rotating a finished block
// slot to a fresh block.
const blockLaunchOverhead = 25

// fetchSerializeCycles is the shared fetch unit's occupancy per
// instruction-cache miss.
const fetchSerializeCycles = 24

type warpState struct {
	ctx        WarpCtx
	slot       int // block slot index
	pc         int
	callStack  []int
	exited     bool
	barWait    bool
	nextIssue  int64
	issueStall StallReason // reason reported while nextIssue is pending
	fetchReady int64
	barReady   [sass.NumBarriers]int64
	barReason  [sass.NumBarriers]StallReason
	visits     map[int]int
	// lastIssuedPC / lastIssueCycle feed active "selected" samples.
	lastIssuedPC   int
	lastIssueCycle int64
}

type blockSlot struct {
	warps      []int // indices into sm.warps
	arrived    int   // warps waiting at BAR.SYNC
	aliveCount int
	done       bool
}

type scheduler struct {
	warps     []int // indices into sm.warps
	rotate    int   // LRR issue pointer
	samplePtr int   // round-robin sampled-warp pointer
	issuedNow bool  // issued at the current cycle
	// unitBusy models per-partition execution-unit throughput: each
	// scheduler owns its FP32/INT/FP64/SFU pipes on Volta.
	unitBusy [16]int64 // per exec class
}

type mshrRelease struct {
	cycle int64
	count int
}

type sm struct {
	id     int
	p      *Program
	wl     Workload
	gpu    *arch.GPU
	cfg    Config
	launch LaunchConfig
	entry  int

	scheds []scheduler
	warps  []warpState
	slots  []blockSlot

	blockQueue []int // global block IDs still to run
	nextBlock  int

	mshrFree int
	releases []mshrRelease

	icache    map[int]int64 // line -> last use cycle
	icacheCap int
	// fetchBusy serializes instruction-cache miss handling: the fetch
	// unit services one miss at a time.
	fetchBusy int64

	issuedPerPC []int64
	warpsPerBlk int
	tick        int64 // sampling tick counter
}

func newSM(id int, p *Program, wl Workload, cfg Config, launch LaunchConfig,
	occ arch.Occupancy, entry int, blocks []int, warpsPerBlock int) *sm {
	s := &sm{
		id: id, p: p, wl: wl, gpu: cfg.GPU, cfg: cfg, launch: launch,
		entry:       entry,
		blockQueue:  blocks,
		mshrFree:    cfg.GPU.MSHRsPerSM,
		icache:      map[int]int64{},
		icacheCap:   max(1, cfg.GPU.ICacheInstrs/icacheLineInstrs),
		issuedPerPC: make([]int64, len(p.Instrs)),
		warpsPerBlk: warpsPerBlock,
	}
	s.scheds = make([]scheduler, cfg.GPU.SchedulersPerSM)
	resident := occ.BlocksPerSM
	if resident > len(blocks) {
		resident = len(blocks)
	}
	for slot := 0; slot < resident; slot++ {
		s.slots = append(s.slots, blockSlot{})
		s.startBlock(slot, 0)
	}
	return s
}

// startBlock (re)fills a block slot with the next queued block at the
// given cycle; it returns false when the queue is empty.
func (s *sm) startBlock(slot int, now int64) bool {
	if s.nextBlock >= len(s.blockQueue) {
		s.slots[slot].done = true
		return false
	}
	blockID := s.blockQueue[s.nextBlock]
	s.nextBlock++
	bs := &s.slots[slot]
	bs.arrived = 0
	bs.aliveCount = s.warpsPerBlk
	bs.done = false
	if bs.warps == nil {
		for wi := 0; wi < s.warpsPerBlk; wi++ {
			widx := len(s.warps)
			bs.warps = append(bs.warps, widx)
			s.warps = append(s.warps, warpState{slot: slot})
			// Warps are distributed round-robin over schedulers.
			sc := widx % len(s.scheds)
			s.scheds[sc].warps = append(s.scheds[sc].warps, widx)
		}
	}
	for wi, widx := range bs.warps {
		w := &s.warps[widx]
		*w = warpState{
			slot: slot,
			ctx: WarpCtx{
				SM:          s.id,
				Block:       blockID,
				WarpInBlock: wi,
				GlobalWarp:  blockID*s.warpsPerBlk + wi,
			},
			pc:        s.entry,
			nextIssue: now + blockLaunchOverhead,
			visits:    map[int]int{},
		}
	}
	return true
}

func (s *sm) allDone() bool {
	if s.nextBlock < len(s.blockQueue) {
		return false
	}
	for i := range s.slots {
		if !s.slots[i].done {
			return false
		}
	}
	return true
}

// readiness reports whether warp w can issue at cycle now, with the
// stall reason when it cannot. The returned reason for a ready warp is
// ReasonNotSelected (callers override to ReasonNone for the issuer).
func (s *sm) readiness(sc *scheduler, w *warpState, now int64) (bool, StallReason) {
	if w.exited {
		return false, ReasonIdle
	}
	if w.barWait {
		return false, ReasonSync
	}
	if w.fetchReady > now {
		return false, ReasonInstructionFetch
	}
	in := &s.p.Instrs[w.pc]
	// Scoreboard wait mask: report the slowest pending barrier.
	var worst int64
	reason := ReasonNone
	for b := 0; b < sass.NumBarriers; b++ {
		if in.Ctrl.Waits(b) && w.barReady[b] > now && w.barReady[b] > worst {
			worst = w.barReady[b]
			reason = w.barReason[b]
		}
	}
	if worst > 0 {
		return false, reason
	}
	if w.nextIssue > now {
		return false, w.issueStall
	}
	info := in.Opcode.Info()
	if in.Opcode.IsMemory() {
		tx := max(1, s.wl.Transactions(w.pc))
		if spaceNeedsMSHR(in.Opcode) && s.mshrFree < tx {
			return false, ReasonMemoryThrottle
		}
	}
	if sc.unitBusy[info.Class] > now {
		return false, ReasonPipeBusy
	}
	return true, ReasonNotSelected
}

func spaceNeedsMSHR(op sass.Opcode) bool {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemGeneric:
		return true
	}
	return false
}

// memLatency models the completion latency of a variable-latency
// instruction.
func (s *sm) memLatency(w *warpState, in *sass.Instruction, tx int) int64 {
	visit := w.visits[w.pc]
	if lat := s.wl.Latency(w.ctx, w.pc, visit); lat > 0 {
		return int64(lat)
	}
	g := s.gpu
	var base int
	switch in.Opcode.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemGeneric:
		base = g.GlobalLatency
		if in.Opcode == sass.OpATOM || in.Opcode == sass.OpRED {
			base = g.AtomicLatency
		}
	case sass.ClassMemLocal:
		base = g.LocalLatency
	case sass.ClassMemShared:
		base = g.SharedLatency
	case sass.ClassMemConst:
		base = g.ConstLatency
	case sass.ClassMUFU:
		base = 24
		if in.Opcode == sass.OpIDIV {
			base = 52
		}
	default:
		if in.Opcode == sass.OpS2R {
			base = 20
		} else {
			base = 16
		}
	}
	// Deterministic jitter: ±12% keyed by (seed, warp, pc, visit).
	h := splitmix(s.cfg.Seed ^ uint64(w.ctx.GlobalWarp)<<32 ^ uint64(w.pc)<<8 ^ uint64(visit))
	jitter := int64(h%uint64(max(1, base/4))) - int64(base/8)
	// Uncoalesced accesses serialize their extra transactions.
	extra := int64(0)
	if tx > 1 && spaceNeedsMSHR(in.Opcode) {
		extra = int64(tx-1) * 28
	}
	lat := int64(base) + jitter + extra
	if lat < 2 {
		lat = 2
	}
	return lat
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// barrierReasonFor maps a variable-latency producer to the stall reason
// a consumer waiting on its barrier reports.
func barrierReasonFor(op sass.Opcode) StallReason {
	switch op.Info().Class {
	case sass.ClassMemGlobal, sass.ClassMemLocal, sass.ClassMemConst, sass.ClassMemGeneric:
		return ReasonMemoryDependency
	case sass.ClassMemShared:
		return ReasonExecutionDependency
	}
	// MUFU, IDIV, S2R, SHFL and read-barrier (WAR) waits are execution
	// dependencies.
	return ReasonExecutionDependency
}

// icacheCheck models the instruction cache at a control transfer to
// target; sequential flow never misses (hardware prefetches linearly).
func (s *sm) icacheCheck(w *warpState, target int, now int64) {
	line := target / icacheLineInstrs
	if _, ok := s.icache[line]; ok {
		s.icache[line] = now
		return
	}
	// Miss: evict LRU if full, install, stall the warp. Misses are
	// serviced through a shared fetch unit, so concurrent misses
	// serialize (fetchSerializeCycles each).
	if len(s.icache) >= s.icacheCap {
		var lruLine int
		lruCycle := int64(1<<62 - 1)
		for l, c := range s.icache {
			if c < lruCycle {
				lruCycle, lruLine = c, l
			}
		}
		delete(s.icache, lruLine)
	}
	s.icache[line] = now
	start := now
	if s.fetchBusy > start {
		start = s.fetchBusy
	}
	w.fetchReady = start + int64(s.gpu.IFetchMissLatency)
	s.fetchBusy = start + fetchSerializeCycles
}

// issue executes one instruction for warp w at cycle now.
func (s *sm) issue(sc *scheduler, widx int, now int64) {
	w := &s.warps[widx]
	pc := w.pc
	in := &s.p.Instrs[pc]
	info := in.Opcode.Info()
	s.issuedPerPC[pc]++
	w.lastIssuedPC = pc
	w.lastIssueCycle = now

	stall := int64(in.Ctrl.Stall)
	if stall < 1 {
		stall = 1
	}
	w.nextIssue = now + stall
	if stall > 2 && !in.Opcode.IsControl() {
		w.issueStall = ReasonExecutionDependency
	} else {
		w.issueStall = ReasonOther
	}
	sc.unitBusy[info.Class] = now + int64(s.gpu.IssueCost(in.Opcode))

	if info.VariableLatency {
		tx := max(1, s.wl.Transactions(pc))
		lat := s.memLatency(w, in, tx)
		if spaceNeedsMSHR(in.Opcode) {
			s.mshrFree -= tx
			s.releases = append(s.releases, mshrRelease{cycle: now + lat, count: tx})
		}
		reason := barrierReasonFor(in.Opcode)
		if wb := in.Ctrl.WriteBar; wb != sass.NoBarrier {
			w.barReady[wb] = now + lat
			w.barReason[wb] = reason
		}
		if rb := in.Ctrl.ReadBar; rb != sass.NoBarrier {
			// Source operands are consumed well before the result
			// lands; WAR hazards clear earlier.
			readDone := now + min64(lat, 20)
			if w.barReady[rb] < readDone {
				w.barReady[rb] = readDone
				w.barReason[rb] = ReasonExecutionDependency
			}
		}
	}

	// Control flow.
	switch in.Opcode {
	case sass.OpBRA, sass.OpJMP, sass.OpBRX:
		visit := w.visits[pc]
		w.visits[pc] = visit + 1
		taken := in.Unconditional() || s.wl.Taken(w.ctx, pc, visit)
		if taken {
			w.pc = s.p.Target(pc)
			s.icacheCheck(w, w.pc, now)
		} else {
			w.pc = pc + 1
			if w.pc/icacheLineInstrs != pc/icacheLineInstrs {
				s.icacheCheck(w, w.pc, now)
			}
		}
	case sass.OpCAL:
		w.callStack = append(w.callStack, pc+1)
		w.pc = s.p.Target(pc)
		s.icacheCheck(w, w.pc, now)
	case sass.OpRET:
		if len(w.callStack) == 0 {
			s.exitWarp(w)
			return
		}
		w.pc = w.callStack[len(w.callStack)-1]
		w.callStack = w.callStack[:len(w.callStack)-1]
		s.icacheCheck(w, w.pc, now)
	case sass.OpEXIT:
		s.exitWarp(w)
	case sass.OpBAR:
		w.barWait = true
		w.pc = pc + 1
		slot := &s.slots[w.slot]
		slot.arrived++
		s.maybeReleaseBarrier(slot)
	default:
		w.pc = pc + 1
		// Sequential flow fetches new lines as well: bodies larger than
		// the cache evict their own head and pay misses continuously.
		if w.pc/icacheLineInstrs != pc/icacheLineInstrs {
			s.icacheCheck(w, w.pc, now)
		}
	}
}

func (s *sm) exitWarp(w *warpState) {
	w.exited = true
	slot := &s.slots[w.slot]
	slot.aliveCount--
	s.maybeReleaseBarrier(slot)
	if slot.aliveCount == 0 {
		s.startBlock(w.slot, w.lastIssueCycle)
	}
}

func (s *sm) maybeReleaseBarrier(slot *blockSlot) {
	if slot.aliveCount > 0 && slot.arrived >= slot.aliveCount {
		for _, widx := range slot.warps {
			s.warps[widx].barWait = false
		}
		slot.arrived = 0
	}
}

// processReleases returns MSHR slots whose transactions completed.
func (s *sm) processReleases(now int64) {
	kept := s.releases[:0]
	for _, r := range s.releases {
		if r.cycle <= now {
			s.mshrFree += r.count
		} else {
			kept = append(kept, r)
		}
	}
	s.releases = kept
}

// nextEvent returns the earliest future cycle at which any warp might
// become ready (or an MSHR frees), for idle-cycle skipping.
func (s *sm) nextEvent(now int64) int64 {
	next := int64(1<<62 - 1)
	consider := func(c int64) {
		if c > now && c < next {
			next = c
		}
	}
	for i := range s.warps {
		w := &s.warps[i]
		if w.exited {
			continue
		}
		consider(w.nextIssue)
		consider(w.fetchReady)
		if !w.barWait {
			in := &s.p.Instrs[w.pc]
			for b := 0; b < sass.NumBarriers; b++ {
				if in.Ctrl.Waits(b) {
					consider(w.barReady[b])
				}
			}
		}
	}
	for _, r := range s.releases {
		consider(r.cycle)
	}
	for si := range s.scheds {
		for c := range s.scheds[si].unitBusy {
			consider(s.scheds[si].unitBusy[c])
		}
	}
	if next == 1<<62-1 {
		return now + 1
	}
	return next
}

// sampleTick records one PC sample: the sampling unit cycles round-robin
// over the warp schedulers (one scheduler per period, per Figure 1 of
// the paper) and rotates over the scheduler's resident warps.
func (s *sm) sampleTick(now int64) {
	sink := s.cfg.Sink
	if sink == nil {
		return
	}
	schedIdx := int(s.tick) % len(s.scheds)
	s.tick++
	sc := &s.scheds[schedIdx]
	// Pick the next non-exited warp in rotation.
	n := len(sc.warps)
	if n == 0 {
		return
	}
	var w *warpState
	widx := -1
	for i := 0; i < n; i++ {
		cand := sc.warps[(sc.samplePtr+i)%n]
		if !s.warps[cand].exited {
			widx = cand
			sc.samplePtr = (sc.samplePtr + i + 1) % n
			break
		}
	}
	if widx < 0 {
		return
	}
	w = &s.warps[widx]
	smp := Sample{
		SM:        s.id,
		Scheduler: schedIdx,
		Warp:      widx,
		Cycle:     now,
		Active:    sc.issuedNow,
	}
	if w.lastIssueCycle == now && w.lastIssueCycle > 0 {
		smp.PC = w.lastIssuedPC
		smp.Reason = ReasonNone
	} else {
		smp.PC = w.pc
		_, reason := s.readiness(sc, w, now)
		smp.Reason = reason
	}
	sink.Record(smp)
}

// run drives the SM to completion and returns the final cycle.
func (s *sm) run(maxCycles int64) (int64, error) {
	now := int64(0)
	period := int64(s.cfg.SamplePeriod)
	nextTick := period
	lastProgress := int64(0)
	for !s.allDone() {
		if now > maxCycles {
			return 0, fmt.Errorf("gpusim: SM %d exceeded %d cycles (possible livelock; last progress at %d)",
				s.id, maxCycles, lastProgress)
		}
		s.processReleases(now)
		anyIssued := false
		for si := range s.scheds {
			sc := &s.scheds[si]
			sc.issuedNow = false
			n := len(sc.warps)
			for i := 0; i < n; i++ {
				widx := sc.warps[(sc.rotate+i)%n]
				w := &s.warps[widx]
				if ok, _ := s.readiness(sc, w, now); ok {
					s.issue(sc, widx, now)
					sc.rotate = (sc.rotate + i + 1) % n
					sc.issuedNow = true
					anyIssued = true
					lastProgress = now
					break
				}
			}
		}
		if period > 0 && now >= nextTick {
			s.sampleTick(now)
			nextTick += period
		}
		if anyIssued {
			now++
			continue
		}
		// Idle: skip to the next event, firing sample ticks on the way
		// (they all observe the same stalled state).
		next := s.nextEvent(now)
		if period > 0 {
			for si := range s.scheds {
				s.scheds[si].issuedNow = false
			}
			for nextTick < next {
				s.sampleTick(nextTick)
				nextTick += period
			}
		}
		if next <= now {
			next = now + 1
		}
		now = next
	}
	return now, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
