package gpusim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"

	"gpa/internal/apierr"
	"gpa/internal/arch"
	"gpa/internal/sass"
)

// tailLoadSrc issues a final load whose result is never consumed before
// EXIT, so warps exit with MSHR releases still pending. This is the
// shape that distinguishes the event-skip loop from a cycle stepper: a
// completed SM must finish one cycle after its final issue, never at a
// stale release event.
const tailLoadSrc = `
.func tailload global
	MOV R0, 0x0 {S:2}
LOOP:
	LDG.E.32 R4, [R2] {S:1, W:0}
	IADD R5, R4, 0x1 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x8 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	LDG.E.32 R6, [R3] {S:1, W:1}
	EXIT
`

// eventOracleCases are the kernel shapes the skip-vs-stepper oracle
// runs: memory pressure, barrier imbalance, multi-wave block rotation,
// and exit-with-pending-loads.
func eventOracleCases() []struct {
	name   string
	src    string
	launch LaunchConfig
	spec   *Spec
} {
	return []struct {
		name   string
		src    string
		launch LaunchConfig
		spec   *Spec
	}{
		{
			name:   "membound",
			src:    memBoundSrc,
			launch: LaunchConfig{Entry: "membound", Grid: Dim(16), Block: Dim(256), RegsPerThread: 16},
			spec:   &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(40)}},
		},
		{
			name:   "syncy",
			src:    syncSrc,
			launch: LaunchConfig{Entry: "syncy", Grid: Dim(8), Block: Dim(256), RegsPerThread: 16},
			spec: &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: func(w WarpCtx) int {
				if w.WarpInBlock%2 == 1 {
					return 90
				}
				return 30
			}}},
		},
		{
			name: "waves",
			src:  memBoundSrc,
			launch: LaunchConfig{Entry: "membound", Grid: Dim(24), Block: Dim(512),
				RegsPerThread: 16, SharedMemPerBlock: 32 * 1024},
			spec: &Spec{
				Trips:        map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(20)},
				Transactions: map[Site]int{{"membound", "LOOP"}: 8},
			},
		},
		{
			name:   "tailload",
			src:    tailLoadSrc,
			launch: LaunchConfig{Entry: "tailload", Grid: Dim(12), Block: Dim(256), RegsPerThread: 16},
			spec: &Spec{
				Trips:        map[Site]TripFunc{{"tailload", "BR0"}: UniformTrips(7)},
				Transactions: map[Site]int{{"tailload", "LOOP"}: 16},
			},
		},
	}
}

// TestEventSkipMatchesCycleStepper pins the determinism contract of the
// event-driven run loop: on every registered architecture, at
// sequential and concurrent SM parallelism, the skip loop must produce
// bit-identical results and sample streams to the retained naive
// cycle-by-cycle stepper (Config.stepEveryCycle).
func TestEventSkipMatchesCycleStepper(t *testing.T) {
	for _, g := range arch.All() {
		for _, tc := range eventOracleCases() {
			t.Run(arch.KeyOf(g)+"/"+tc.name, func(t *testing.T) {
				m := sass.MustAssemble(tc.src)
				p, err := Load(m)
				if err != nil {
					t.Fatal(err)
				}
				wl, err := tc.spec.Bind(p)
				if err != nil {
					t.Fatal(err)
				}
				run := func(step bool, parallelism int) (*Result, []Sample) {
					t.Helper()
					sink := &captureSink{}
					gc := *g
					gc.NumSMs = 4 // spread blocks over all simulated SMs
					res, err := Run(context.Background(), p, tc.launch, wl, Config{
						GPU: &gc, SimSMs: 4, SamplePeriod: 32, Sink: sink,
						Seed: 7, Parallelism: parallelism, stepEveryCycle: step,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, sink.samples
				}
				stepRes, stepSamples := run(true, 1)
				for _, par := range []int{1, 4} {
					skipRes, skipSamples := run(false, par)
					if !reflect.DeepEqual(stepRes, skipRes) {
						t.Errorf("parallelism %d: result differs from cycle stepper:\nstep: %+v\nskip: %+v",
							par, stepRes, skipRes)
					}
					if len(stepSamples) != len(skipSamples) {
						t.Fatalf("parallelism %d: sample counts differ: step=%d skip=%d",
							par, len(stepSamples), len(skipSamples))
					}
					for i := range stepSamples {
						if stepSamples[i] != skipSamples[i] {
							t.Fatalf("parallelism %d: sample %d differs:\nstep: %+v\nskip: %+v",
								par, i, stepSamples[i], skipSamples[i])
						}
					}
				}
			})
		}
	}
}

// TestRunReusesPooledState pins the per-program arena: once a program
// has run (and its Result was recycled), further runs must not allocate
// on the hot path.
func TestRunReusesPooledState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector (its runtime allocates inside the measured window)")
	}
	m := sass.MustAssemble(memBoundSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(30)}}
	wl, err := spec.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	launch := LaunchConfig{Entry: "membound", Grid: Dim(4), Block: Dim(256), RegsPerThread: 16}
	cfg := Config{GPU: arch.VoltaV100(), SimSMs: 2, Seed: 3, Parallelism: 1}
	ctx := context.Background()
	do := func() {
		res, err := Run(ctx, p, launch, wl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Recycle(res)
	}
	do() // warm the arena and result pools
	// A GC between runs would drop the sync.Pool contents and make the
	// measurement flaky; disable it for the measured window.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(10, do)
	if avg > 0.5 {
		t.Errorf("warm gpusim.Run allocates %.1f objects/op, want ~0", avg)
	}
}

// TestPoolStatsCount sanity-checks the arena counters gpad surfaces.
func TestPoolStatsCount(t *testing.T) {
	gets0, hits0 := PoolStats()
	m := sass.MustAssemble(memBoundSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	launch := LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	cfg := Config{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 1, Parallelism: 1}
	for i := 0; i < 3; i++ {
		res, err := Run(context.Background(), p, launch, NopWorkload{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Recycle(res)
	}
	gets, hits := PoolStats()
	if gets-gets0 != 3 {
		t.Errorf("PoolStats gets grew by %d, want 3", gets-gets0)
	}
	if hits-hits0 < 1 {
		t.Errorf("PoolStats hits grew by %d, want >= 1 (second run must reuse the arena)", hits-hits0)
	}
}

// TestNegativeLaunchDimensions pins the Dim3 validation: negative grid
// or block components must fail with ErrBadKernel instead of being
// silently treated as 1.
func TestNegativeLaunchDimensions(t *testing.T) {
	m := sass.MustAssemble(memBoundSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 1}
	for _, launch := range []LaunchConfig{
		{Entry: "membound", Grid: Dim3{X: -1}, Block: Dim(32)},
		{Entry: "membound", Grid: Dim(1), Block: Dim3{X: 32, Y: -2}},
		{Entry: "membound", Grid: Dim3{X: 2, Z: -7}, Block: Dim(32)},
	} {
		_, err := Run(context.Background(), p, launch, nil, cfg)
		if !errors.Is(err, apierr.ErrBadKernel) {
			t.Errorf("Run(grid %+v, block %+v) = %v, want ErrBadKernel", launch.Grid, launch.Block, err)
		}
	}
}

// TestEffectiveParallelism pins the GOMAXPROCS cap.
func TestEffectiveParallelism(t *testing.T) {
	mp := runtime.GOMAXPROCS(0)
	cases := []struct{ req, simSMs, want int }{
		{0, 64, min(mp, 64)},
		{1, 64, 1},
		{mp + 7, 64, min(mp, 64)}, // capped: more goroutines than cores is pure overhead
		{2, 1, 1},                 // bounded by the SM count
	}
	for _, c := range cases {
		if got := effectiveParallelism(c.req, c.simSMs); got != c.want {
			t.Errorf("effectiveParallelism(%d, %d) = %d, want %d", c.req, c.simSMs, got, c.want)
		}
	}
}
