//go:build !race

package gpusim

// raceEnabled: see race_on_test.go.
const raceEnabled = false
