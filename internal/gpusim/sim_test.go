package gpusim

import (
	"context"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/sass"
)

// memBound: a pointer-chase-like loop where every iteration waits on a
// global load immediately.
const memBoundSrc = `
.func membound global
.line mb.cu 1
	MOV R0, 0x0 {S:2}
LOOP:
.line mb.cu 2
	LDG.E.32 R4, [R2] {S:1, W:0}
.line mb.cu 3
	IADD R5, R4, 0x1 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x10 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`

// syncy: half the warps spin longer before a barrier.
const syncSrc = `
.func syncy global
.line s.cu 1
	MOV R0, 0x0 {S:2}
LOOP:
	FFMA R1, R1, R2, R3 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x20 {S:4}
BR0:	@P0 BRA LOOP {S:5}
.line s.cu 5
	BAR.SYNC {S:2}
	FFMA R1, R1, R2, R3 {S:4}
	EXIT
`

type captureSink struct {
	samples []Sample
}

func (c *captureSink) Record(s Sample) { c.samples = append(c.samples, s) }

func testConfig(sink SampleSink) Config {
	g := arch.VoltaV100()
	return Config{GPU: g, SimSMs: 1, SamplePeriod: 32, Sink: sink, Seed: 1}
}

func runKernel(t *testing.T, src, entry string, launch LaunchConfig, spec *Spec, cfg Config) (*Result, *captureSink) {
	t.Helper()
	m := sass.MustAssemble(src)
	p, err := Load(m)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var wl Workload = NopWorkload{}
	if spec != nil {
		wl, err = spec.Bind(p)
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	sink := &captureSink{}
	if cfg.Sink == nil {
		cfg.Sink = sink
	} else if cs, ok := cfg.Sink.(*captureSink); ok {
		sink = cs
	}
	res, err := Run(context.Background(), p, launch, wl, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, sink
}

func TestProgramLayout(t *testing.T) {
	src := `
.func helper device
	IADD R0, R0, 0x1 {S:4}
	RET
.func main global
	CAL helper {S:2}
	EXIT
`
	m := sass.MustAssemble(src)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 4 {
		t.Fatalf("flat size = %d, want 4", len(p.Instrs))
	}
	entry, err := p.EntryOf("main")
	if err != nil || entry != 2 {
		t.Errorf("EntryOf(main) = %d, %v; want 2", entry, err)
	}
	if p.Target(2) != 0 {
		t.Errorf("CAL target = %d, want 0", p.Target(2))
	}
	if p.FuncName(0) != "helper" || p.FuncName(3) != "main" {
		t.Errorf("FuncName mapping wrong")
	}
	if p.LocalIndex(3) != 1 {
		t.Errorf("LocalIndex(3) = %d, want 1", p.LocalIndex(3))
	}
}

func TestRunCompletesAndCountsIssues(t *testing.T) {
	launch := LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(15)}}
	res, _ := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	if res.Cycles <= 0 {
		t.Fatal("kernel reported zero cycles")
	}
	// 2 warps; loop body runs 16 times (15 taken + final fall-through).
	// LDG at flat index 1 issues 2*16 = 32 times.
	if got := res.IssuedPerPC[1]; got != 32 {
		t.Errorf("LDG issued %d times, want 32", got)
	}
	// MOV once per warp.
	if got := res.IssuedPerPC[0]; got != 2 {
		t.Errorf("MOV issued %d times, want 2", got)
	}
	// EXIT once per warp.
	if got := res.IssuedPerPC[6]; got != 2 {
		t.Errorf("EXIT issued %d times, want 2", got)
	}
}

func TestMemoryDependencyStallsDominate(t *testing.T) {
	launch := LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(200)}}
	_, sink := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	if len(sink.samples) == 0 {
		t.Fatal("no samples recorded")
	}
	counts := map[StallReason]int{}
	latency := 0
	for _, s := range sink.samples {
		counts[s.Reason]++
		if !s.Active {
			latency++
		}
	}
	if counts[ReasonMemoryDependency] == 0 {
		t.Fatalf("no memory dependency stalls in a memory-bound loop: %v", counts)
	}
	// With only 2 warps waiting on a 400-cycle load, memory dependency
	// must dominate every other reason.
	for r, n := range counts {
		if r != ReasonMemoryDependency && r != ReasonNone && n > counts[ReasonMemoryDependency] {
			t.Errorf("reason %v (%d) exceeds memory dependency (%d)", r, n, counts[ReasonMemoryDependency])
		}
	}
	if latency == 0 {
		t.Error("expected latency samples in a memory-bound kernel")
	}
	// Stalled samples in the loop wait at the IADD consumer (flat 2).
	stallAtConsumer := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonMemoryDependency && s.PC == 2 {
			stallAtConsumer++
		}
	}
	if stallAtConsumer == 0 {
		t.Error("memory dependency stalls should be observed at the consumer IADD")
	}
}

func TestSyncStalls(t *testing.T) {
	launch := LaunchConfig{Entry: "syncy", Grid: Dim(2), Block: Dim(256), RegsPerThread: 16}
	// Odd warps iterate 10x longer: heavy barrier imbalance.
	spec := &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: func(w WarpCtx) int {
		if w.WarpInBlock%2 == 1 {
			return 300
		}
		return 30
	}}}
	res, sink := runKernel(t, syncSrc, "syncy", launch, spec, testConfig(nil))
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	syncs := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonSync {
			syncs++
		}
	}
	if syncs == 0 {
		t.Fatal("imbalanced barrier kernel produced no synchronization stalls")
	}
	// Balanced version: far fewer sync stalls.
	specBal := &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: UniformTrips(165)}}
	sinkBal := &captureSink{}
	cfgBal := testConfig(sinkBal)
	_, _ = runKernel(t, syncSrc, "syncy", launch, specBal, cfgBal)
	syncsBal := 0
	for _, s := range sinkBal.samples {
		if s.Reason == ReasonSync {
			syncsBal++
		}
	}
	if syncsBal*4 >= syncs {
		t.Errorf("balanced kernel sync stalls (%d) should be well under imbalanced (%d)", syncsBal, syncs)
	}
}

func TestMemoryThrottle(t *testing.T) {
	// Uncoalesced loads: 32 transactions per access exhaust the MSHRs.
	launch := LaunchConfig{Entry: "membound", Grid: Dim(4), Block: Dim(512), RegsPerThread: 16}
	spec := &Spec{
		Trips:        map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(60)},
		Transactions: map[Site]int{{"membound", "LOOP"}: 32},
	}
	_, sink := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	throttle := 0
	for _, s := range sink.samples {
		if s.Reason == ReasonMemoryThrottle {
			throttle++
		}
	}
	if throttle == 0 {
		t.Error("32-transaction accesses from 16 warps should throttle the MSHRs")
	}
}

func TestOccupancyLatencyHiding(t *testing.T) {
	// The same total work with more resident warps should finish sooner
	// (latency hiding), using a memory-bound kernel: 8 blocks of 32
	// threads on one SM vs 1 block of 256 threads.
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(50)}}
	g := arch.VoltaV100()
	g.NumSMs = 1 // force all blocks onto the simulated SM
	cfgA := Config{GPU: g, SimSMs: 1, Seed: 1}
	// Few warps resident: 1 block of 32 threads, 8 blocks sequentially
	// (shared memory forces one block at a time).
	launchA := LaunchConfig{Entry: "membound", Grid: Dim(8), Block: Dim(32),
		RegsPerThread: 16, SharedMemPerBlock: 64 * 1024}
	resA, _ := runKernel(t, memBoundSrc, "membound", launchA, spec, cfgA)
	// Same work in one 256-thread block: 8 warps hide latency together.
	cfgB := Config{GPU: g, SimSMs: 1, Seed: 1}
	launchB := LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(256), RegsPerThread: 16}
	resB, _ := runKernel(t, memBoundSrc, "membound", launchB, spec, cfgB)
	if resB.Cycles >= resA.Cycles {
		t.Errorf("8 co-resident warps (%d cycles) should beat 8 serialized blocks (%d cycles)",
			resB.Cycles, resA.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	launch := LaunchConfig{Entry: "membound", Grid: Dim(2), Block: Dim(128), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(40)}}
	resA, sinkA := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	resB, sinkB := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	if resA.Cycles != resB.Cycles {
		t.Errorf("cycles differ across identical runs: %d vs %d", resA.Cycles, resB.Cycles)
	}
	if len(sinkA.samples) != len(sinkB.samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(sinkA.samples), len(sinkB.samples))
	}
	for i := range sinkA.samples {
		if sinkA.samples[i] != sinkB.samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sinkA.samples[i], sinkB.samples[i])
		}
	}
}

func TestCallAndReturn(t *testing.T) {
	src := `
.func twiddle device
.line t.cu 9
	FFMA R1, R1, R2, R3 {S:4}
	RET {S:2}
.func main global
.line m.cu 1
	MOV R0, 0x0 {S:2}
LOOP:
	CAL twiddle {S:2}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x4 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`
	launch := LaunchConfig{Entry: "main", Grid: Dim(1), Block: Dim(32), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"main", "BR0"}: UniformTrips(3)}}
	res, _ := runKernel(t, src, "main", launch, spec, testConfig(nil))
	// twiddle body (flat 0) runs 4 times (4 loop iterations).
	if got := res.IssuedPerPC[0]; got != 4 {
		t.Errorf("device function body issued %d, want 4", got)
	}
	if got := res.IssuedPerPC[1]; got != 4 {
		t.Errorf("RET issued %d, want 4", got)
	}
}

func TestBlockWaves(t *testing.T) {
	// More blocks than one SM can host: slots refill across waves.
	g := arch.VoltaV100()
	g.NumSMs = 1
	launch := LaunchConfig{Entry: "membound", Grid: Dim(6), Block: Dim(512),
		RegsPerThread: 16, SharedMemPerBlock: 32 * 1024} // 3 blocks/SM resident
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(10)}}
	cfg := Config{GPU: g, SimSMs: 1, Seed: 1}
	res, _ := runKernel(t, memBoundSrc, "membound", launch, spec, cfg)
	// All 6 blocks execute: MOV (flat 0) issues once per warp: 6*16.
	if got := res.IssuedPerPC[0]; got != 96 {
		t.Errorf("MOV issued %d, want 96 (6 blocks x 16 warps)", got)
	}
}

func TestRunErrors(t *testing.T) {
	m := sass.MustAssemble(memBoundSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), p, LaunchConfig{Entry: "nothere", Grid: Dim(1), Block: Dim(32)}, nil, testConfig(nil)); err == nil {
		t.Error("unknown entry must fail")
	}
	// Zero dimensions default to 1, as CUDA's dim3 does.
	if got := (Dim3{}).Count(); got != 1 {
		t.Errorf("Dim3{}.Count() = %d, want 1", got)
	}
	if got := (Dim3{X: 4, Y: 3}).Count(); got != 12 {
		t.Errorf("Count = %d, want 12", got)
	}
	if _, err := Run(context.Background(), p, LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(2048)}, nil, testConfig(nil)); err == nil {
		t.Error("oversized block must fail")
	}
	bad := Config{}
	if _, err := Run(context.Background(), p, LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(32)}, nil, bad); err == nil {
		t.Error("nil GPU must fail")
	}
}

func TestSamplesCarryPCsWithinProgram(t *testing.T) {
	launch := LaunchConfig{Entry: "membound", Grid: Dim(1), Block: Dim(64), RegsPerThread: 16}
	spec := &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(30)}}
	_, sink := runKernel(t, memBoundSrc, "membound", launch, spec, testConfig(nil))
	m := sass.MustAssemble(memBoundSrc)
	n := len(m.Function("membound").Instrs)
	active, withReason := 0, 0
	for _, s := range sink.samples {
		if s.PC < 0 || s.PC >= n {
			t.Fatalf("sample PC %d out of range", s.PC)
		}
		if s.Active {
			active++
		}
		if s.Reason != ReasonNone {
			withReason++
		}
	}
	if active == 0 {
		t.Error("expected some active samples")
	}
	if withReason == 0 {
		t.Error("expected some stall samples")
	}
}
