package gpusim

import "fmt"

// WarpCtx identifies a warp executing under a workload: which SM hosts
// it, which grid block it belongs to, and its position within the block.
type WarpCtx struct {
	SM          int
	Block       int // global block index within the grid
	WarpInBlock int
	GlobalWarp  int // Block*warpsPerBlock + WarpInBlock
}

// Workload supplies the data-dependent behaviour the simulator cannot
// derive from the binary alone: branch outcomes (loop trip counts,
// divergent conditionals), memory latency variation, and per-access
// transaction counts (coalescing).
type Workload interface {
	// Taken reports the direction of the conditional branch at flat
	// instruction index pc on its visit-th dynamic execution by a warp.
	Taken(w WarpCtx, pc int, visit int) bool
	// Latency returns a latency override in cycles for the
	// variable-latency instruction at pc (0 means "use the default
	// model").
	Latency(w WarpCtx, pc int, visit int) int
	// Transactions returns how many memory transactions the memory
	// instruction at pc issues per warp (0 means 1, i.e. fully
	// coalesced).
	Transactions(pc int) int
}

// TripFunc yields a loop trip count for a warp.
type TripFunc func(w WarpCtx) int

// UniformTrips returns a TripFunc with the same trip count for every
// warp.
func UniformTrips(n int) TripFunc { return func(WarpCtx) int { return n } }

// Site names an instruction by function and label, the form kernel
// definitions use before label tables are erased by binary packing.
type Site struct {
	Func  string
	Label string
}

// Spec is a declarative workload: trip counts for backward branches,
// boolean patterns for forward conditionals, latency overrides and
// transaction counts for memory instructions, all keyed by labelled
// sites. Bind resolves it against a loaded program.
type Spec struct {
	// Trips: the labelled conditional branch loops; a warp takes the
	// branch Trips(w) times per loop entry, then falls through.
	Trips map[Site]TripFunc
	// Taken: explicit direction patterns for labelled conditional
	// branches (checked before Trips).
	Taken map[Site]func(w WarpCtx, visit int) bool
	// Latency: overrides for labelled variable-latency instructions.
	Latency map[Site]func(w WarpCtx, visit int) int
	// Transactions: per-site transaction counts (coalescing model).
	Transactions map[Site]int
	// DefaultTaken is used for conditional branches with no entry: taken
	// on the first visit of each cycle of length 2 when true... it is
	// simply returned as-is. Unlisted branches default to not taken.
	DefaultTaken bool
}

// Bind resolves the spec's labelled sites to flat instruction indices.
func (s *Spec) Bind(p *Program) (Workload, error) {
	b := &boundWorkload{
		trips:   map[int]TripFunc{},
		taken:   map[int]func(WarpCtx, int) bool{},
		latency: map[int]func(WarpCtx, int) int{},
		trans:   map[int]int{},
		def:     s.DefaultTaken,
	}
	resolve := func(site Site) (int, error) {
		idx, err := p.FlatIndex(site.Func, site.Label)
		if err != nil {
			return 0, fmt.Errorf("gpusim: workload site %v: %w", site, err)
		}
		return idx, nil
	}
	for site, fn := range s.Trips {
		idx, err := resolve(site)
		if err != nil {
			return nil, err
		}
		b.trips[idx] = fn
	}
	for site, fn := range s.Taken {
		idx, err := resolve(site)
		if err != nil {
			return nil, err
		}
		b.taken[idx] = fn
	}
	for site, fn := range s.Latency {
		idx, err := resolve(site)
		if err != nil {
			return nil, err
		}
		b.latency[idx] = fn
	}
	for site, n := range s.Transactions {
		idx, err := resolve(site)
		if err != nil {
			return nil, err
		}
		b.trans[idx] = n
	}
	return b, nil
}

type boundWorkload struct {
	trips   map[int]TripFunc
	taken   map[int]func(WarpCtx, int) bool
	latency map[int]func(WarpCtx, int) int
	trans   map[int]int
	def     bool
}

func (b *boundWorkload) Taken(w WarpCtx, pc, visit int) bool {
	if fn, ok := b.taken[pc]; ok {
		return fn(w, visit)
	}
	if fn, ok := b.trips[pc]; ok {
		n := fn(w)
		if n <= 0 {
			return false
		}
		// Cycle of n taken visits followed by one fall-through, so
		// re-entered loops (nests) iterate again.
		return visit%(n+1) != n
	}
	return b.def
}

// TakenRun implements TakenStability. Explicit taken-pattern closures
// are opaque (possibly stateful at Parallelism 1), so sites bound
// through Spec.Taken report unknown; trip-count sites are the pure
// cycle visit%(n+1) != n and admit a closed-form answer; unlisted
// sites are the constant DefaultTaken.
func (b *boundWorkload) TakenRun(w WarpCtx, pc, visit, stride int, want bool, limit int64) int64 {
	if limit <= 0 {
		return 0
	}
	if _, ok := b.taken[pc]; ok {
		return -1
	}
	if fn, ok := b.trips[pc]; ok {
		n := fn(w)
		if n <= 0 {
			// Never taken: every visit yields false.
			if !want {
				return limit
			}
			return 0
		}
		// Outcome of visit v is (v mod m != n) with m = n+1; successive
		// probes sit at v = visit + j·stride. Count leading j with the
		// wanted outcome.
		m := int64(n) + 1
		a := ((int64(visit) % m) + m) % m
		s := ((int64(stride) % m) + m) % m
		if !want {
			// want the single residue a == n.
			if a != int64(n) {
				return 0
			}
			if s == 0 {
				return limit
			}
			return 1
		}
		// want any residue != n: find the first j with a + j·s ≡ n (mod m).
		d := ((int64(n)-a)%m + m) % m
		if d == 0 {
			return 0
		}
		if s == 0 {
			return limit
		}
		g := gcd64(s, m)
		if d%g != 0 {
			return limit
		}
		mg := m / g
		j0 := (d / g % mg) * modInv64(s/g%mg, mg) % mg
		return min(j0, limit)
	}
	if want == b.def {
		return limit
	}
	return 0
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInv64 returns the multiplicative inverse of a modulo m; the caller
// guarantees gcd(a, m) == 1.
func modInv64(a, m int64) int64 {
	if m == 1 {
		return 0
	}
	// Extended Euclid.
	r0, r1 := m, ((a%m)+m)%m
	t0, t1 := int64(0), int64(1)
	for r1 != 0 {
		q := r0 / r1
		r0, r1 = r1, r0-q*r1
		t0, t1 = t1, t0-q*t1
	}
	return ((t0 % m) + m) % m
}

func (b *boundWorkload) Latency(w WarpCtx, pc, visit int) int {
	if fn, ok := b.latency[pc]; ok {
		return fn(w, visit)
	}
	return 0
}

func (b *boundWorkload) Transactions(pc int) int {
	if n, ok := b.trans[pc]; ok {
		return n
	}
	return 0
}

// NopWorkload is the zero workload: no branch taken, default latencies,
// coalesced accesses.
type NopWorkload struct{}

// Taken always reports false.
func (NopWorkload) Taken(WarpCtx, int, int) bool { return false }

// TakenRun implements TakenStability: every outcome is false.
func (NopWorkload) TakenRun(_ WarpCtx, _, _, _ int, want bool, limit int64) int64 {
	if want {
		return 0
	}
	return max(limit, 0)
}

// Latency always defers to the default model.
func (NopWorkload) Latency(WarpCtx, int, int) int { return 0 }

// Transactions always reports fully coalesced accesses.
func (NopWorkload) Transactions(int) int { return 0 }
