package gpusim

import (
	"context"
	"reflect"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/sass"
)

// steadyOracleCases are the kernel shapes the fast-forward oracle runs.
// The periodic cases are barrier-synchronized loops: the BAR.SYNC
// re-aligns every warp once per iteration, so the whole SM revisits the
// same relative state each period and the memoizer must lock on and
// skip. The aperiodic cases are barrier-free latency-bound loops: each
// warp free-runs with its own (constant, per-warp distinct) memory
// latency, warp phases drift apart forever, and the detector must give
// up and fall back to plain event stepping without perturbing results.
func steadyOracleCases() []struct {
	name         string
	src          string
	launch       LaunchConfig
	spec         *Spec
	samplePeriod int
	wantFF       bool
} {
	return []struct {
		name         string
		src          string
		launch       LaunchConfig
		spec         *Spec
		samplePeriod int
		wantFF       bool
	}{
		{
			// Lockstep barrier loop with sampling on: the sample period
			// divides the loop period, so the synthesized sample stream
			// inside fast-forwarded spans is exercised and must be
			// byte-identical to stepping.
			name:         "lockstep-sampled",
			src:          syncSrc,
			launch:       LaunchConfig{Entry: "syncy", Grid: Dim(4), Block: Dim(256), RegsPerThread: 16},
			spec:         &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: UniformTrips(400)}},
			samplePeriod: 1,
			wantFF:       true,
		},
		{
			// Same shape at full-width launch: more blocks per SM, still
			// periodic, bigger skips.
			name:         "lockstep-wide",
			src:          syncSrc,
			launch:       LaunchConfig{Entry: "syncy", Grid: Dim(16), Block: Dim(256), RegsPerThread: 16},
			spec:         &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: UniformTrips(400)}},
			samplePeriod: 1,
			wantFF:       true,
		},
		{
			// Divergent trip counts, sampling off: the run has two steady
			// phases (all warps looping, then only the long-trip warps)
			// with a re-detection in between.
			name:   "divergent-phases",
			src:    syncSrc,
			launch: LaunchConfig{Entry: "syncy", Grid: Dim(8), Block: Dim(256), RegsPerThread: 16},
			spec: &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: func(w WarpCtx) int {
				if w.WarpInBlock%2 == 1 {
					return 900
				}
				return 300
			}}},
			samplePeriod: 0,
			wantFF:       true,
		},
		{
			// Barrier-free memory-bound loop: per-warp latency jitter is
			// constant per warp but distinct across warps, so warp phases
			// drift and no SM-level period exists. The detector must not
			// fire (and must not distort the result trying).
			name:         "membound-aperiodic",
			src:          memBoundSrc,
			launch:       LaunchConfig{Entry: "membound", Grid: Dim(16), Block: Dim(256), RegsPerThread: 16},
			spec:         &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(120)}},
			samplePeriod: 32,
			wantFF:       false,
		},
		{
			// Exit-with-pending-loads shape, also barrier-free.
			name:   "tailload-aperiodic",
			src:    tailLoadSrc,
			launch: LaunchConfig{Entry: "tailload", Grid: Dim(12), Block: Dim(256), RegsPerThread: 16},
			spec: &Spec{
				Trips:        map[Site]TripFunc{{"tailload", "BR0"}: UniformTrips(40)},
				Transactions: map[Site]int{{"tailload", "LOOP"}: 16},
			},
			samplePeriod: 32,
			wantFF:       false,
		},
	}
}

// zeroFFCounters returns a copy of res with the fast-forward activity
// counters cleared. The cycle stepper never fast-forwards, so these are
// the only Result fields allowed to differ between the stepper oracle
// and a memoized run.
func zeroFFCounters(res *Result) *Result {
	c := *res
	c.PeriodsDetected = 0
	c.CyclesFastForwarded = 0
	c.FastForwardFallbacks = 0
	return &c
}

// TestSteadyFastForwardMatchesOracle pins the memoizer's correctness
// contract on every registered architecture: with fast-forward firing
// (periodic cases) or armed but never firing (aperiodic cases), results
// and sample streams must be byte-identical to the retained
// cycle-by-cycle stepper, at sequential and concurrent SM parallelism.
func TestSteadyFastForwardMatchesOracle(t *testing.T) {
	for _, g := range arch.All() {
		for _, tc := range steadyOracleCases() {
			t.Run(arch.KeyOf(g)+"/"+tc.name, func(t *testing.T) {
				m := sass.MustAssemble(tc.src)
				p, err := Load(m)
				if err != nil {
					t.Fatal(err)
				}
				wl, err := tc.spec.Bind(p)
				if err != nil {
					t.Fatal(err)
				}
				run := func(step bool, parallelism int) (*Result, []Sample) {
					t.Helper()
					gc := *g
					gc.NumSMs = 4
					cfg := Config{
						GPU: &gc, SimSMs: 4, Seed: 7,
						Parallelism: parallelism, stepEveryCycle: step,
					}
					var sink *captureSink
					if tc.samplePeriod > 0 {
						sink = &captureSink{}
						cfg.SamplePeriod = tc.samplePeriod
						cfg.Sink = sink
					}
					res, err := Run(context.Background(), p, tc.launch, wl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if sink == nil {
						return res, nil
					}
					return res, sink.samples
				}
				stepRes, stepSamples := run(true, 1)
				if stepRes.PeriodsDetected != 0 || stepRes.CyclesFastForwarded != 0 {
					t.Fatalf("cycle stepper fast-forwarded: %+v", stepRes)
				}
				var first *Result
				for _, par := range []int{1, 4} {
					skipRes, skipSamples := run(false, par)
					if tc.wantFF {
						if skipRes.PeriodsDetected == 0 || skipRes.CyclesFastForwarded == 0 {
							t.Errorf("parallelism %d: fast-forward did not fire: detected=%d ffCycles=%d",
								par, skipRes.PeriodsDetected, skipRes.CyclesFastForwarded)
						}
					} else if skipRes.PeriodsDetected != 0 {
						t.Errorf("parallelism %d: aperiodic kernel locked a period: detected=%d ffCycles=%d",
							par, skipRes.PeriodsDetected, skipRes.CyclesFastForwarded)
					}
					// The FF counters themselves must be deterministic
					// across parallelism modes.
					if first == nil {
						first = skipRes
					} else if !reflect.DeepEqual(first, skipRes) {
						t.Errorf("parallelism %d: result differs from parallelism 1:\npar1: %+v\npar%d: %+v",
							par, first, par, skipRes)
					}
					if !reflect.DeepEqual(stepRes, zeroFFCounters(skipRes)) {
						t.Errorf("parallelism %d: result differs from cycle stepper:\nstep: %+v\nskip: %+v",
							par, stepRes, skipRes)
					}
					if len(stepSamples) != len(skipSamples) {
						t.Fatalf("parallelism %d: sample counts differ: step=%d skip=%d",
							par, len(stepSamples), len(skipSamples))
					}
					for i := range stepSamples {
						if stepSamples[i] != skipSamples[i] {
							t.Fatalf("parallelism %d: sample %d differs:\nstep: %+v\nskip: %+v",
								par, i, stepSamples[i], skipSamples[i])
						}
					}
				}
			})
		}
	}
}

// TestSteadyStatefulWorkloadNeverFastForwards pins the capability gate:
// a Workload that does not implement TakenStability (here: a stateful
// Taken closure wrapped to hide the interface) must run entirely on the
// normal path — identical results, zero detector activity.
func TestSteadyStatefulWorkloadNeverFastForwards(t *testing.T) {
	m := sass.MustAssemble(syncSrc)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: UniformTrips(400)}}
	wl, err := spec.Bind(p)
	if err != nil {
		t.Fatal(err)
	}
	launch := LaunchConfig{Entry: "syncy", Grid: Dim(4), Block: Dim(256), RegsPerThread: 16}
	run := func(w Workload) *Result {
		gc := *arch.VoltaV100()
		gc.NumSMs = 4
		res, err := Run(context.Background(), p, launch, w, Config{
			GPU: &gc, SimSMs: 4, Seed: 7, Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ffRes := run(wl)
	if ffRes.PeriodsDetected == 0 {
		t.Fatal("periodic control run did not fast-forward; the gate test would be vacuous")
	}
	plainRes := run(opaqueWorkload{wl})
	if plainRes.PeriodsDetected != 0 || plainRes.CyclesFastForwarded != 0 {
		t.Errorf("opaque workload fast-forwarded: %+v", plainRes)
	}
	if !reflect.DeepEqual(zeroFFCounters(ffRes), plainRes) {
		t.Errorf("fast-forwarded result differs from plain run:\nff:    %+v\nplain: %+v", ffRes, plainRes)
	}
}

// opaqueWorkload forwards the Workload methods but hides any optional
// capability interfaces of the wrapped value.
type opaqueWorkload struct{ wl Workload }

func (o opaqueWorkload) Taken(w WarpCtx, pc, visit int) bool  { return o.wl.Taken(w, pc, visit) }
func (o opaqueWorkload) Latency(w WarpCtx, pc, visit int) int { return o.wl.Latency(w, pc, visit) }
func (o opaqueWorkload) Transactions(pc int) int              { return o.wl.Transactions(pc) }

// TestTakenRunClosedForm pins the modular arithmetic behind
// boundWorkload.TakenRun against brute force over the actual Taken
// outcomes.
func TestTakenRunClosedForm(t *testing.T) {
	for _, trips := range []int{0, 1, 2, 3, 7, 90} {
		b := &boundWorkload{trips: map[int]TripFunc{4: UniformTrips(trips)}}
		w := WarpCtx{}
		for visit := 0; visit < 2*(trips+2); visit++ {
			for _, stride := range []int{1, 2, 3, trips, trips + 1} {
				for _, want := range []bool{false, true} {
					const limit = 50
					got := b.TakenRun(w, 4, visit, stride, want, limit)
					brute := int64(0)
					for brute < limit && b.Taken(w, 4, visit+int(brute)*stride) == want {
						brute++
					}
					if got != brute {
						t.Fatalf("TakenRun(trips=%d, visit=%d, stride=%d, want=%v) = %d, brute force = %d",
							trips, visit, stride, want, got, brute)
					}
				}
			}
		}
	}
	// Explicit Taken patterns are opaque: unknown.
	b := &boundWorkload{taken: map[int]func(WarpCtx, int) bool{4: func(WarpCtx, int) bool { return true }}}
	if got := b.TakenRun(WarpCtx{}, 4, 0, 1, true, 10); got != -1 {
		t.Errorf("TakenRun on an explicit pattern = %d, want -1 (unknown)", got)
	}
}
