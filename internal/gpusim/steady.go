package gpusim

// Steady-state loop memoization. Most kernels spend the bulk of their
// cycles in a periodic steady state inside their hot loops: every
// scheduler revisits the same relative state once per loop iteration,
// so simulating iteration i+1 re-derives exactly the state of
// iteration i shifted by a constant number of cycles. The memoizer
// detects that recurrence and fast-forwards whole periods analytically:
//
//  1. DETECT. Every time the anchor warp (warp 0, re-elected if it
//     parks) issues a taken backward branch, the run loop snapshots a
//     fingerprint of the SM's behaviorally visible state, encoded
//     RELATIVE to the current cycle (see (*sm).fingerprint). A
//     fingerprint matching the previous anchor's (or, for periods
//     spanning several back-edges, a retained power-of-two anchor à la
//     Brent's algorithm) makes the span a period candidate.
//  2. RECORD. The next candidate period is simulated normally while
//     recording a template: every branch execution (with its Taken
//     outcome), every emitted sample (cycle kept relative to the
//     period start), the sparse per-PC issue delta, and the
//     instruction-cache lines touched. The recording is valid only if
//     the fingerprint at the end matches the start exactly and the
//     period was instruction-cache-miss free (then the untouched LRU
//     stamps are never read in-period and stay out of the fingerprint
//     soundly).
//  3. FAST-FORWARD. At an anchor whose fingerprint matches the
//     template's, k whole periods are skipped at once: the workload is
//     asked (through the TakenStability capability) for how many
//     periods the recorded branch outcomes stay valid, k is capped by
//     MaxCycles, every pending absolute cycle field is shifted by k·P
//     (sentinels and expired gates preserved), visits and issue
//     counters advance by k times the recorded deltas, and the sample
//     ticks inside the span are synthesized from the template —
//     byte-identical to what stepping would have emitted, because the
//     span's state is byte-equivalent by construction.
//
// Fall back to normal event-skipped stepping whenever no period is
// found, a recording is invalidated (fingerprint drift, icache miss,
// block rotation or barrier phase change — all of which perturb the
// fingerprint), the workload cannot promise future branch outcomes, or
// zero whole periods fit before the next outcome change. The retained
// cycle stepper (Config.stepEveryCycle) stays the oracle: results and
// sample streams must be bit-identical with memoization on.

// TakenStability is an optional Workload capability that enables
// steady-state fast-forward. Implementations promise that Taken is a
// pure function of (warp, pc, visit) and report how far ahead its
// outcomes are known. Workloads bound from a Spec and the NopWorkload
// implement it; a Workload without it never fast-forwards (stateful
// Taken callbacks stay observably untouched).
type TakenStability interface {
	// TakenRun reports for how many consecutive steps j = 0, 1, 2, ...
	// (up to limit) Taken(w, pc, visit+j*stride) equals want. A
	// negative result means "unknown": the simulator must not assume
	// anything about future outcomes.
	TakenRun(w WarpCtx, pc, visit, stride int, want bool, limit int64) int64
}

// snapshot is one fingerprint: the encoded relative state. Comparison
// is a plain word walk — non-periodic states diverge within the first
// few words (MSHR occupancy, release phases), so an early-exit compare
// beats maintaining a hash on every capture.
type snapshot struct {
	words []int64
}

func (s *snapshot) equal(o *snapshot) bool {
	if len(s.words) != len(o.words) {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

func (s *snapshot) copyFrom(o *snapshot) {
	s.words = append(s.words[:0], o.words...)
}

// steadyExec records one dynamic branch execution inside the template
// period. relVisit is the execution's visit counter relative to the
// period start for its (warp, pc) site; stride is how many times that
// site executes per period. probe marks conditional branches whose
// outcome must be re-validated before a fast-forward (unconditional
// branches advance the visit counter but have no outcome to check).
type steadyExec struct {
	widx, pc         int32
	relVisit, stride int32
	outcome, probe   bool
}

// steadyIssued is one entry of the sparse per-period issue-count delta.
type steadyIssued struct {
	pc    int32
	count int32
}

// steadyTouch records an icache line the period touches; relStamp is
// its end-of-period LRU stamp relative to the period-end cycle (≤ 0).
type steadyTouch struct {
	line     int32
	relStamp int64
}

// steadyState is the per-SM detector. It lives on the sm struct and is
// recycled with it: resetSteady keeps every backing array, so a warm
// run detects and fast-forwards without allocating.
type steadyState struct {
	stab    TakenStability // nil disables the memoizer
	enabled bool

	anchorWarp int
	anchorHit  bool // set by issue() on the anchor warp's taken back-edge
	anchorIdx  int64

	// Detection snapshots: the current anchor, the previous anchor
	// (period = 1 back-edge), and a retained power-of-two anchor for
	// longer periods (Brent's cycle-finding: the stored snapshot moves
	// to the current anchor at anchor indices 1, 2, 4, 8, ...).
	cur, prev, brent   snapshot
	prevValid, brentOK bool
	brentIdx, brentPow int64

	// Recording state.
	recording  bool
	recordLeft int64 // anchors until the candidate period closes
	baseNow    int64
	baseTick   int64
	baseMiss   int64
	base       snapshot // fingerprint at the period start
	issuedBase []int64  // issuedPerPC copy at the period start
	icacheBase []int64  // icacheUse copy at the period start
	strideMap  map[int64]int32

	// Template (valid only while valid is set).
	valid       bool
	period      int64 // cycles per period
	tickDelta   int64 // sample ticks per period
	execs       []steadyExec
	samples     []Sample // Cycle relative to the period start, in (0, period]
	touches     []steadyTouch
	issuedDelta []steadyIssued

	missCount int64 // icache misses this run (recording validity check)

	// dry counts consecutive anchors with no fingerprint match at all;
	// past steadyGiveUp the detector disables itself for the run —
	// aperiodic kernels (per-warp latency spread keeps warp phases
	// drifting) should not pay the capture cost forever.
	dry int64

	// Counters surfaced through Result and FFStats.
	detected  int64
	ffCycles  int64
	fallbacks int64
}

// resetSteady reinitializes the detector for a run, keeping every
// backing array so a recycled SM shell detects without allocating.
func resetSteady(st steadyState, wl Workload, step bool) steadyState {
	stab, _ := wl.(TakenStability)
	out := steadyState{
		stab:     stab,
		enabled:  stab != nil && !step,
		brentPow: 1,
		cur:      snapshot{words: st.cur.words[:0]},
		prev:     snapshot{words: st.prev.words[:0]},
		brent:    snapshot{words: st.brent.words[:0]},
		base:     snapshot{words: st.base.words[:0]},

		issuedBase:  st.issuedBase[:0],
		icacheBase:  st.icacheBase[:0],
		strideMap:   st.strideMap,
		execs:       st.execs[:0],
		samples:     st.samples[:0],
		touches:     st.touches[:0],
		issuedDelta: st.issuedDelta[:0],
	}
	return out
}

// reelect moves the anchor to a warp that still takes back-edges after
// the previous anchor warp parked (exited or barrier-blocked), and
// restarts detection from scratch: fingerprints keyed to the old
// anchor's phase are meaningless for the new one.
func (st *steadyState) reelect(widx int) {
	st.anchorWarp = widx
	st.anchorIdx = 0
	st.prevValid, st.brentOK, st.valid, st.recording = false, false, false, false
	st.brentIdx, st.brentPow = 0, 1
}

// Fingerprint encodings for cycle-valued fields. Values at or below
// the current cycle are behaviorally spent — every consumer compares
// them against "now" with > — so they all encode as 0; pending values
// encode as their distance from now; the two wake-sentinels keep
// distinct codes (whether a scheduler's boundMSHR entries are still
// current is per-scheduler state, carried in its flags word).
const (
	encFar      = int64(-2)
	encMSHRLive = int64(-3)
	encIdle     = int64(-1) // absent / expired marker for paired fields
)

// steadyGiveUp is how many consecutive matchless anchors the detector
// tolerates before disabling itself for the run.
const steadyGiveUp = 128

func encTime(v, now int64) int64 {
	switch {
	case v == farFuture:
		return encFar
	case v == boundMSHR:
		return encMSHRLive
	case v <= now:
		return 0
	}
	return v - now
}

// fingerprint encodes the SM's behaviorally visible state relative to
// cycle now into snap. Two cycles with equal fingerprints are
// behaviorally equivalent: every future scheduling decision, sample,
// and issue depends only on the encoded quantities (plus the visit
// counters, which are deliberately excluded — they advance monotonically
// and are validated separately through TakenStability — and the icache
// LRU stamps, which recordings prove unread by requiring miss-free
// periods).
func (s *sm) fingerprint(snap *snapshot, now, nextTick, period int64) {
	w := snap.words[:0]

	// SM-globals.
	w = append(w,
		int64(s.nextBlock),
		int64(len(s.warps)),
		int64(s.mshrFree),
		encTime(s.minRelease, now),
		encTime(s.fetchBusy, now),
		int64(s.icacheResident),
		int64(len(s.releases)),
	)
	for _, r := range s.releases {
		w = append(w, r.cycle-now, int64(r.count))
	}
	for i := range s.slots {
		bs := &s.slots[i]
		flags := int64(bs.arrived)<<2 | int64(bs.aliveCount)<<10
		if bs.done {
			flags |= 1
		}
		w = append(w, flags)
	}
	// Instruction-cache residency bitvector (stamps excluded; see the
	// miss-free recording rule).
	var bitsAcc int64
	for line, use := range s.icacheUse {
		if use >= 0 {
			bitsAcc |= 1 << (line & 63)
		}
		if line&63 == 63 {
			w = append(w, bitsAcc)
			bitsAcc = 0
		}
	}
	w = append(w, bitsAcc)
	// Sampling phase: matching anchors must agree on where the next
	// tick lands and which scheduler it samples, so a fast-forwarded
	// span's synthesized ticks align exactly.
	if period > 0 {
		w = append(w, nextTick-now, s.tick%int64(len(s.scheds)))
	}

	for si := range s.scheds {
		sc := &s.scheds[si]
		flags := int64(sc.rotate)<<2 | int64(sc.samplePtr)<<18
		if sc.throttled {
			flags |= 1
		}
		if sc.mshrSeen != s.mshrGen {
			// Stale throttle bounds: the next scan re-probes every
			// boundMSHR entry, so staleness is behaviorally visible.
			flags |= 2
		}
		w = append(w, flags, encTime(sc.nextReady, now))
		for _, busy := range sc.unitBusy {
			w = append(w, encTime(busy, now))
		}
		for _, b := range sc.bounds {
			w = append(w, encTime(b, now))
		}
	}

	for i := range s.warps {
		wp := &s.warps[i]
		if wp.exited {
			w = append(w, encIdle)
			continue
		}
		flags := int64(wp.pc)<<2 | int64(wp.slot)<<32
		if wp.barWait {
			flags |= 1
		}
		w = append(w, flags, int64(wp.ctx.Block), int64(len(wp.callStack)))
		for _, ret := range wp.callStack {
			w = append(w, int64(ret))
		}
		if wp.nextIssue > now {
			w = append(w, wp.nextIssue-now, int64(wp.issueStall))
		} else {
			w = append(w, 0, encIdle)
		}
		w = append(w, encTime(wp.fetchReady, now))
		for b := range wp.barReady {
			if r := wp.barReady[b]; r > now {
				w = append(w, r-now, int64(wp.barReason[b]))
			} else {
				w = append(w, 0, encIdle)
			}
		}
		if wp.lastIssueCycle == now && now > 0 {
			w = append(w, int64(wp.lastIssuedPC))
		} else {
			w = append(w, encIdle)
		}
	}

	snap.words = w
}

// steadyAnchor runs the detector at a loop back-edge of the anchor
// warp: it advances detection, closes recordings, and applies a
// fast-forward when the template matches. It returns the (possibly
// advanced) current cycle and next sample tick.
func (s *sm) steadyAnchor(now, nextTick, period, maxCycles int64) (int64, int64) {
	st := &s.steady
	st.anchorIdx++
	s.fingerprint(&st.cur, now, nextTick, period)

	closing := false
	if st.recording {
		if st.recordLeft--; st.recordLeft <= 0 {
			st.recording = false
			closing = true
			if st.cur.equal(&st.base) && st.missCount == st.baseMiss {
				s.finalizeTemplate(now)
			} else {
				st.fallbacks++
			}
		}
	}

	if !st.recording {
		if st.valid && st.cur.equal(&st.base) {
			st.dry = 0
			if k := s.steadyK(now, maxCycles); k >= 1 {
				now, nextTick = s.fastForward(now, nextTick, k)
			} else {
				st.fallbacks++
			}
		} else if !closing && st.prevValid && st.cur.equal(&st.prev) {
			st.dry = 0
			s.startRecord(now, 1)
		} else if !closing && st.brentOK && st.anchorIdx > st.brentIdx && st.cur.equal(&st.brent) {
			st.dry = 0
			s.startRecord(now, st.anchorIdx-st.brentIdx)
		} else if st.dry++; st.dry > steadyGiveUp && !st.valid {
			// Nothing has ever matched: this SM's state is drifting, not
			// cycling (typical for latency-bound loops whose per-warp
			// constant latencies differ). Stop paying the capture cost.
			st.enabled = false
		}
	} else {
		st.dry = 0
	}

	// Rotate the detection snapshots. A fast-forward leaves the
	// relative state (hence cur) unchanged, so cur stays the correct
	// previous-anchor snapshot either way.
	st.prev.copyFrom(&st.cur)
	st.prevValid = true
	if st.anchorIdx >= st.brentPow {
		st.brent.copyFrom(&st.cur)
		st.brentIdx = st.anchorIdx
		st.brentOK = true
		st.brentPow *= 2
	}
	return now, nextTick
}

// startRecord begins recording a candidate period of the given length
// in anchor back-edges.
func (s *sm) startRecord(now, anchors int64) {
	st := &s.steady
	st.recording = true
	st.valid = false
	st.recordLeft = anchors
	st.baseNow = now
	st.baseTick = s.tick
	st.baseMiss = st.missCount
	st.base.copyFrom(&st.cur)
	st.execs = st.execs[:0]
	st.samples = st.samples[:0]
	st.issuedBase = append(st.issuedBase[:0], s.issuedPerPC...)
	st.icacheBase = append(st.icacheBase[:0], s.icacheUse...)
}

// finalizeTemplate turns a validated recording into an applicable
// template: per-site visit strides, the sparse issue delta, and the
// touched icache lines with their end-of-period stamps.
func (s *sm) finalizeTemplate(now int64) {
	st := &s.steady
	if st.strideMap == nil {
		st.strideMap = make(map[int64]int32, 16)
	}
	clear(st.strideMap)
	for i := range st.execs {
		e := &st.execs[i]
		key := int64(e.widx)<<32 | int64(e.pc)
		e.relVisit = st.strideMap[key]
		st.strideMap[key] = e.relVisit + 1
	}
	for i := range st.execs {
		e := &st.execs[i]
		e.stride = st.strideMap[int64(e.widx)<<32|int64(e.pc)]
	}
	st.issuedDelta = st.issuedDelta[:0]
	for pc, n := range s.issuedPerPC {
		if d := n - st.issuedBase[pc]; d != 0 {
			st.issuedDelta = append(st.issuedDelta, steadyIssued{pc: int32(pc), count: int32(d)})
		}
	}
	st.touches = st.touches[:0]
	for line, use := range s.icacheUse {
		if use != st.icacheBase[line] {
			st.touches = append(st.touches, steadyTouch{line: int32(line), relStamp: use - now})
		}
	}
	st.period = now - st.baseNow
	st.tickDelta = s.tick - st.baseTick
	st.valid = true
	st.detected++
}

// steadyK computes how many whole periods can be skipped from the
// current anchor: the minimum over every conditional branch in the
// template of how long the workload promises its recorded outcome,
// capped so the run never overshoots MaxCycles.
func (s *sm) steadyK(now, maxCycles int64) int64 {
	st := &s.steady
	k := (maxCycles - now) / st.period
	if k <= 0 {
		return 0
	}
	for i := range st.execs {
		e := &st.execs[i]
		if !e.probe {
			continue
		}
		w := &s.warps[e.widx]
		visit := int(w.visits[e.pc]) + int(e.relVisit)
		n := st.stab.TakenRun(w.ctx, int(e.pc), visit, int(e.stride), e.outcome, k)
		if n <= 0 {
			return 0
		}
		if n < k {
			k = n
		}
	}
	return k
}

// fastForward skips k whole periods: cycles advance by k·P, pending
// time gates shift with them (expired gates and wake-sentinels are
// preserved — both compare identically at every future cycle), visit
// and issue counters advance by k times the recorded deltas, touched
// icache stamps land where the final period left them, and the
// sampling ticks inside the span are synthesized from the template.
func (s *sm) fastForward(now, nextTick, k int64) (int64, int64) {
	st := &s.steady
	shift := k * st.period
	newNow := now + shift

	if s.sink != nil && len(st.samples) > 0 {
		for j := int64(0); j < k; j++ {
			base := now + j*st.period
			for _, smp := range st.samples {
				smp.Cycle += base
				s.sink.Record(smp)
			}
		}
	}
	s.tick += k * st.tickDelta
	nextTick += shift

	for i := range s.warps {
		w := &s.warps[i]
		if w.exited {
			continue
		}
		if w.nextIssue > now {
			w.nextIssue += shift
		}
		if w.fetchReady > now {
			w.fetchReady += shift
		}
		for b := range w.barReady {
			if w.barReady[b] > now {
				w.barReady[b] += shift
			}
		}
		if w.lastIssueCycle == now {
			w.lastIssueCycle = newNow
		}
	}
	for si := range s.scheds {
		sc := &s.scheds[si]
		sc.nextReady = shiftTime(sc.nextReady, now, shift)
		for c := range sc.unitBusy {
			if sc.unitBusy[c] > now {
				sc.unitBusy[c] += shift
			}
		}
		for i := range sc.bounds {
			sc.bounds[i] = shiftTime(sc.bounds[i], now, shift)
		}
	}
	for i := range s.releases {
		s.releases[i].cycle += shift
	}
	if s.minRelease < boundMSHR {
		s.minRelease += shift
	}
	s.fetchBusy = shiftTime(s.fetchBusy, now, shift)
	s.lastProgress = newNow
	for _, t := range st.touches {
		s.icacheUse[t.line] = newNow + t.relStamp
	}
	for i := range st.execs {
		e := &st.execs[i]
		if e.relVisit == 0 {
			s.warps[e.widx].visits[e.pc] += int32(k * int64(e.stride))
		}
	}
	for _, d := range st.issuedDelta {
		s.issuedPerPC[d.pc] += k * int64(d.count)
	}
	st.ffCycles += shift
	return newNow, nextTick
}

// shiftTime shifts a pending cycle value by a fast-forwarded span,
// preserving the wake-sentinels (they compare above any cycle either
// way) and expired values (spent gates stay spent).
func shiftTime(v, now, shift int64) int64 {
	if v >= boundMSHR || v <= now {
		return v
	}
	return v + shift
}
