package gpusim

import (
	"context"
	"reflect"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/sass"
)

// TestParallelMatchesSequential: Run with Parallelism 1 and N must
// produce identical Result fields and identical ordered sample streams
// for the same seed, across kernels exercising memory, synchronization,
// and multi-wave block rotation.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		launch LaunchConfig
		spec   *Spec
	}{
		{
			name:   "membound",
			src:    memBoundSrc,
			launch: LaunchConfig{Entry: "membound", Grid: Dim(16), Block: Dim(256), RegsPerThread: 16},
			spec:   &Spec{Trips: map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(40)}},
		},
		{
			name:   "syncy",
			src:    syncSrc,
			launch: LaunchConfig{Entry: "syncy", Grid: Dim(8), Block: Dim(256), RegsPerThread: 16},
			spec: &Spec{Trips: map[Site]TripFunc{{"syncy", "BR0"}: func(w WarpCtx) int {
				if w.WarpInBlock%2 == 1 {
					return 90
				}
				return 30
			}}},
		},
		{
			name: "waves",
			src:  memBoundSrc,
			launch: LaunchConfig{Entry: "membound", Grid: Dim(24), Block: Dim(512),
				RegsPerThread: 16, SharedMemPerBlock: 32 * 1024},
			spec: &Spec{
				Trips:        map[Site]TripFunc{{"membound", "BR0"}: UniformTrips(20)},
				Transactions: map[Site]int{{"membound", "LOOP"}: 8},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := sass.MustAssemble(tc.src)
			p, err := Load(m)
			if err != nil {
				t.Fatal(err)
			}
			wl, err := tc.spec.Bind(p)
			if err != nil {
				t.Fatal(err)
			}
			run := func(parallelism int) (*Result, []Sample) {
				t.Helper()
				sink := &captureSink{}
				g := arch.VoltaV100()
				g.NumSMs = 4 // spread blocks over all simulated SMs
				res, err := Run(context.Background(), p, tc.launch, wl, Config{
					GPU: g, SimSMs: 4, SamplePeriod: 32, Sink: sink,
					Seed: 7, Parallelism: parallelism,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res, sink.samples
			}
			seqRes, seqSamples := run(1)
			for _, par := range []int{2, 4, 8} {
				parRes, parSamples := run(par)
				if !reflect.DeepEqual(seqRes, parRes) {
					t.Errorf("Parallelism=%d result differs:\nseq: %+v\npar: %+v", par, seqRes, parRes)
				}
				if len(seqSamples) != len(parSamples) {
					t.Fatalf("Parallelism=%d sample counts differ: %d vs %d",
						par, len(seqSamples), len(parSamples))
				}
				for i := range seqSamples {
					if seqSamples[i] != parSamples[i] {
						t.Fatalf("Parallelism=%d sample %d differs: %+v vs %+v",
							par, i, seqSamples[i], parSamples[i])
					}
				}
			}
		})
	}
}

// TestParallelErrorMatchesSequential: an erroring SM must surface the
// same error regardless of parallelism (the first failing SM in order).
func TestParallelErrorMatchesSequential(t *testing.T) {
	// An infinite loop trips the MaxCycles livelock guard.
	src := `
.func spin global
LOOP:
	IADD R0, R0, 0x1 {S:4}
BR0:	BRA LOOP {S:5}
	EXIT
`
	m := sass.MustAssemble(src)
	p, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	launch := LaunchConfig{Entry: "spin", Grid: Dim(8), Block: Dim(64), RegsPerThread: 16}
	run := func(parallelism int) error {
		g := arch.VoltaV100()
		g.NumSMs = 4
		_, err := Run(context.Background(), p, launch, NopWorkload{}, Config{
			GPU: g, SimSMs: 4, MaxCycles: 10_000, Seed: 1, Parallelism: parallelism,
		})
		return err
	}
	seqErr := run(1)
	if seqErr == nil {
		t.Fatal("expected livelock error")
	}
	for _, par := range []int{2, 4} {
		parErr := run(par)
		if parErr == nil || parErr.Error() != seqErr.Error() {
			t.Errorf("Parallelism=%d error = %v, want %v", par, parErr, seqErr)
		}
	}
}
