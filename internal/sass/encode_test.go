package sass

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mustVecadd(t)
	f := m.Function("vecadd")
	code, err := EncodeFunction(m, f)
	if err != nil {
		t.Fatalf("EncodeFunction: %v", err)
	}
	if len(code) != len(f.Instrs)*InstrBytes {
		t.Fatalf("code size = %d, want %d", len(code), len(f.Instrs)*InstrBytes)
	}
	decoded, err := DecodeFunction(code, nil)
	if err != nil {
		t.Fatalf("DecodeFunction: %v", err)
	}
	for i := range f.Instrs {
		want := normalizeForCodec(f.Instrs[i])
		got := decoded[i]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instr %d: decoded %v, want %v", i, got.String(), want.String())
		}
	}
}

func TestEncodeDecodeCallTarget(t *testing.T) {
	src := `
.func helper device
	IADD R0, R0, 0x1 {S:4}
	RET
.func main global
	CAL helper {S:2}
	EXIT
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	f := m.Function("main")
	code, err := EncodeFunction(m, f)
	if err != nil {
		t.Fatalf("EncodeFunction: %v", err)
	}
	names := func(i int) (string, bool) {
		if i < len(m.Functions) {
			return m.Functions[i].Name, true
		}
		return "", false
	}
	decoded, err := DecodeFunction(code, names)
	if err != nil {
		t.Fatalf("DecodeFunction: %v", err)
	}
	tgt, ok := decoded[0].BranchTarget()
	if !ok || tgt.Sym != "helper" {
		t.Errorf("decoded CAL target = %+v, want helper", tgt)
	}
}

func TestEncodeRejectsOversizedStream(t *testing.T) {
	// Five 32-bit immediates cannot fit the 84-bit operand stream.
	in := &Instruction{
		Opcode: OpIADD3,
		Pred:   Always,
		Ctrl:   DefaultControl(),
		Ops: []Operand{
			ImmOp(0x7fffffff), ImmOp(0x7fffffff), ImmOp(0x7fffffff),
			ImmOp(0x7fffffff), ImmOp(0x7fffffff),
		},
	}
	if _, err := EncodeInstruction(in, nil); err == nil {
		t.Fatal("EncodeInstruction accepted an oversized operand stream")
	}
}

func TestEncodeRejectsHugeMemOffset(t *testing.T) {
	in := &Instruction{
		Opcode: OpLDG,
		Pred:   Always,
		Ctrl:   DefaultControl(),
		Ops:    []Operand{RegOp(R(0)), MemOp(R(2), 1<<20)},
	}
	if _, err := EncodeInstruction(in, nil); err == nil {
		t.Fatal("EncodeInstruction accepted an 18-bit-overflowing offset")
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var w [InstrBytes]byte
	w[0] = 0xff // opcode 255 does not exist
	if _, err := DecodeInstruction(w, 0, nil); err == nil {
		t.Fatal("DecodeInstruction accepted an invalid opcode")
	}
}

func TestDecodeRejectsBadSize(t *testing.T) {
	if _, err := DecodeFunction(make([]byte, 17), nil); err == nil {
		t.Fatal("DecodeFunction accepted a misaligned buffer")
	}
}

// randomInstruction generates an encodable instruction for property
// testing.
func randomInstruction(r *rand.Rand) Instruction {
	ops := []Opcode{OpLDG, OpSTG, OpLDS, OpLDC, OpIADD, OpIMAD, OpFFMA,
		OpFADD, OpMUFU, OpF2F, OpMOV, OpISETP, OpBRA, OpEXIT, OpBAR, OpNOP}
	op := ops[r.Intn(len(ops))]
	in := Instruction{
		Opcode: op,
		Pred:   Always,
		Ctrl: Control{
			Stall:    uint8(r.Intn(16)),
			Yield:    r.Intn(2) == 1,
			WriteBar: int8(r.Intn(NumBarriers+1)) - 1,
			ReadBar:  int8(r.Intn(NumBarriers+1)) - 1,
			WaitMask: uint8(r.Intn(1 << NumBarriers)),
		},
	}
	if r.Intn(3) == 0 {
		in.Pred = Predicate{Reg: P(r.Intn(7)), Negated: r.Intn(2) == 1}
	}
	if r.Intn(2) == 0 {
		in.Mods = in.Mods.With(Modifier(r.Intn(int(numModifiers))))
	}
	info := op.Info()
	switch {
	case info.Load:
		in.Ops = []Operand{RegOp(R(r.Intn(32))), MemOp(R(r.Intn(32)), int32(r.Intn(1<<12)))}
	case info.Store:
		in.Ops = []Operand{MemOp(R(r.Intn(32)), int32(r.Intn(1<<12))), RegOp(R(r.Intn(32)))}
	case info.Branch:
		in.Ops = []Operand{{Kind: KindLabel, PC: uint32(r.Intn(1<<10)) * InstrBytes}}
	case op == OpBAR || op == OpEXIT || op == OpNOP:
		// no operands
	default:
		n := 2 + r.Intn(2)
		in.Ops = append(in.Ops, RegOp(R(r.Intn(32))))
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				in.Ops = append(in.Ops, RegOp(R(r.Intn(32))))
			case 1:
				in.Ops = append(in.Ops, ImmOp(int32(r.Uint32())))
			default:
				in.Ops = append(in.Ops, ConstOp(uint8(r.Intn(8)), uint16(r.Intn(1<<12))))
			}
		}
	}
	return in
}

// normalizeForCodec maps an instruction to the form the codec preserves:
// label symbols inside a function body decode as raw PCs, and the always
// predicate decodes canonically as @PT.
func normalizeForCodec(in Instruction) Instruction {
	out := in
	out.Ops = append([]Operand(nil), in.Ops...)
	for i, o := range out.Ops {
		if o.Kind == KindLabel && o.Sym != "" && in.Opcode != OpCAL {
			o.Sym = ""
			out.Ops[i] = o
		}
	}
	if out.Pred.IsAlways() {
		out.Pred = Always
	}
	if len(out.Ops) == 0 {
		out.Ops = nil
	}
	return out
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	count := 0
	f := func() bool {
		in := randomInstruction(r)
		word, err := EncodeInstruction(&in, nil)
		if err != nil {
			// Oversized random combination: skip, but ensure the error
			// path is deliberate (3+ wide immediates).
			return true
		}
		got, err := DecodeInstruction(word, in.PC, nil)
		if err != nil {
			t.Logf("decode failed for %v: %v", in.String(), err)
			return false
		}
		count++
		want := normalizeForCodec(in)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if count < 1000 {
		t.Errorf("only %d/2000 random instructions were encodable; generator too aggressive", count)
	}
}

func TestModMaskAccessWidth(t *testing.T) {
	cases := []struct {
		mods ModMask
		want int
	}{
		{0, 32},
		{ModMask(0).With(Mod32), 32},
		{ModMask(0).With(Mod64), 64},
		{ModMask(0).With(ModF64), 64},
		{ModMask(0).With(Mod128), 128},
		{ModMask(0).With(ModE).With(Mod32), 32},
	}
	for _, tc := range cases {
		if got := tc.mods.AccessWidth(); got != tc.want {
			t.Errorf("AccessWidth(%v) = %d, want %d", tc.mods, got, tc.want)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{RegOp(R(4)), "R4"},
		{RegOp(RZ), "RZ"},
		{RegOp(PT), "PT"},
		{ImmOp(16), "0x10"},
		{ImmOp(-4), "-0x4"},
		{FImmOp(2.0), "2f"},
		{MemOp(R(2), 0), "[R2]"},
		{MemOp(R(2), 16), "[R2+0x10]"},
		{MemOp(R(2), -16), "[R2-0x10]"},
		{ConstOp(0, 0x160), "c[0x0][0x160]"},
		{LabelOp("L0"), "L0"},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
