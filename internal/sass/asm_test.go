package sass

import (
	"strings"
	"testing"
)

const vecaddSrc = `
.module sm_70
.func vecadd global
.line vecadd.cu 3
	S2R R0, SR_CTAID.X {S:2, W:0}
	S2R R1, SR_TID.X {S:2, W:1}
.line vecadd.cu 4
	IMAD R0, R0, c[0x0][0x0], R1 {S:4, Q:0|1}
	SHL R2, R0, 0x2 {S:4}
	IADD R2, R2, c[0x0][0x160] {S:2}
.line vecadd.cu 5
	@P0 LDG.E.32 R4, [R2] {S:1, W:2}
	LDG.E.32 R5, [R2+0x400] {S:1, W:3}
	FADD R6, R4, R5 {S:4, Q:2|3}
	STG.E.32 [R2+0x800], R6 {S:1, R:4}
	EXIT {Q:4}
`

func mustVecadd(t *testing.T) *Module {
	t.Helper()
	m, err := Assemble(vecaddSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return m
}

func TestAssembleBasic(t *testing.T) {
	m := mustVecadd(t)
	if m.Arch != 70 {
		t.Errorf("Arch = %d, want 70", m.Arch)
	}
	f := m.Function("vecadd")
	if f == nil {
		t.Fatal("function vecadd not found")
	}
	if f.Visibility != VisGlobal {
		t.Errorf("visibility = %v, want global", f.Visibility)
	}
	if len(f.Instrs) != 10 {
		t.Fatalf("got %d instructions, want 10", len(f.Instrs))
	}
	for i, in := range f.Instrs {
		if in.PC != uint32(i*InstrBytes) {
			t.Errorf("instr %d: PC = 0x%x, want 0x%x", i, in.PC, i*InstrBytes)
		}
	}
	if f.Lines[0].File != "vecadd.cu" || f.Lines[0].Line != 3 {
		t.Errorf("line[0] = %+v, want vecadd.cu:3", f.Lines[0])
	}
	if f.Lines[5].Line != 5 {
		t.Errorf("line[5] = %+v, want line 5", f.Lines[5])
	}
}

func TestAssembleInstructionFields(t *testing.T) {
	m := mustVecadd(t)
	f := m.Function("vecadd")

	ldg := f.Instrs[5]
	if ldg.Opcode != OpLDG {
		t.Fatalf("instr 5 opcode = %v, want LDG", ldg.Opcode)
	}
	if ldg.Pred != (Predicate{Reg: P(0)}) {
		t.Errorf("LDG pred = %v, want @P0", ldg.Pred)
	}
	if !ldg.Mods.Has(ModE) || !ldg.Mods.Has(Mod32) {
		t.Errorf("LDG mods = %v, want E and 32", ldg.Mods)
	}
	if ldg.Ctrl.WriteBar != 2 || ldg.Ctrl.Stall != 1 {
		t.Errorf("LDG ctrl = %+v, want W:2 S:1", ldg.Ctrl)
	}
	if len(ldg.Ops) != 2 || ldg.Ops[0] != RegOp(R(4)) {
		t.Errorf("LDG ops = %v", ldg.Ops)
	}
	if ldg.Ops[1].Kind != KindMem || ldg.Ops[1].Reg != R(2) || ldg.Ops[1].Imm != 0 {
		t.Errorf("LDG mem operand = %v", ldg.Ops[1])
	}

	fadd := f.Instrs[7]
	if fadd.Ctrl.WaitMask != 0b1100 {
		t.Errorf("FADD wait mask = %b, want 1100", fadd.Ctrl.WaitMask)
	}

	stg := f.Instrs[8]
	if stg.Ctrl.ReadBar != 4 {
		t.Errorf("STG read barrier = %d, want 4", stg.Ctrl.ReadBar)
	}
}

func TestDefUse(t *testing.T) {
	m := mustVecadd(t)
	f := m.Function("vecadd")

	// @P0 LDG.E.32 R4, [R2] {W:2}: defs R4 and B2; uses R2, R3 (64-bit
	// address pair), P0.
	ldg := &f.Instrs[5]
	defs := ldg.Defs()
	wantDefs := []Reg{R(4), B(2)}
	if !regSetEq(defs, wantDefs) {
		t.Errorf("LDG defs = %v, want %v", defs, wantDefs)
	}
	uses := ldg.Uses()
	wantUses := []Reg{R(2), R(3), P(0)}
	if !regSetEq(uses, wantUses) {
		t.Errorf("LDG uses = %v, want %v", uses, wantUses)
	}

	// FADD R6, R4, R5 {Q:2|3}: defs R6; uses R4, R5, B2, B3.
	fadd := &f.Instrs[7]
	if !regSetEq(fadd.Defs(), []Reg{R(6)}) {
		t.Errorf("FADD defs = %v", fadd.Defs())
	}
	if !regSetEq(fadd.Uses(), []Reg{R(4), R(5), B(2), B(3)}) {
		t.Errorf("FADD uses = %v", fadd.Uses())
	}

	// STG.E.32 [R2+0x800], R6 {R:4}: defs B4 (read barrier); WAR defs
	// cover R2, R3, R6.
	stg := &f.Instrs[8]
	if !regSetEq(stg.Defs(), []Reg{B(4)}) {
		t.Errorf("STG defs = %v", stg.Defs())
	}
	if !regSetEq(stg.WARDefs(), []Reg{R(2), R(3), R(6)}) {
		t.Errorf("STG WAR defs = %v", stg.WARDefs())
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	src := `
.func loopy global
.line k.cu 1
	MOV R0, 0x0 {S:2}
L0:
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x10 {S:4}
	@P0 BRA L0 {S:5}
	EXIT
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	f := m.Function("loopy")
	if got := f.Labels["L0"]; got != 1 {
		t.Errorf("label L0 at %d, want 1", got)
	}
	bra := f.Instrs[3]
	tgt, ok := bra.BranchTarget()
	if !ok {
		t.Fatal("BRA has no target")
	}
	if tgt.PC != InstrBytes {
		t.Errorf("BRA target PC = 0x%x, want 0x%x", tgt.PC, InstrBytes)
	}
}

func TestAssembleCallTargets(t *testing.T) {
	src := `
.func helper device
	IADD R0, R0, 0x1 {S:4}
	RET
.func main global
	CAL helper {S:2}
	EXIT
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	main := m.Function("main")
	tgt, ok := main.Instrs[0].BranchTarget()
	if !ok || tgt.Sym != "helper" {
		t.Fatalf("CAL target = %+v", tgt)
	}
	if m.Function("helper").Visibility != VisDevice {
		t.Error("helper should be a device function")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no function", "IADD R0, R0, 0x1", "outside .func"},
		{"bad opcode", ".func f global\n\tFROB R0\n\tEXIT", "unknown opcode"},
		{"bad register", ".func f global\n\tMOV R999, 0x0\n\tEXIT", "out of range"},
		{"undefined label", ".func f global\n\tBRA NOWHERE\n\tEXIT", "undefined label"},
		{"dup label", ".func f global\nL0:\nL0:\n\tEXIT", "duplicate label"},
		{"bad barrier", ".func f global\n\tLDG.E R0, [R2] {W:9}\n\tEXIT", "bad write barrier"},
		{"unknown call", ".func f global\n\tCAL nothere\n\tEXIT", "unknown function"},
		{"no exit", ".func f global\n\tIADD R0, R0, 0x1 {S:4}", "does not end in"},
		{"bad ctrl", ".func f global\n\tNOP {Z:1}\n\tEXIT", "unknown control field"},
		{"empty module", "", "no functions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatal("Assemble succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestInstructionString(t *testing.T) {
	m := mustVecadd(t)
	f := m.Function("vecadd")
	got := f.Instrs[5].String()
	want := "@P0 LDG.32.E R4, [R2] {W:2}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// Reparse the rendered instruction: it should assemble to itself.
	src := ".func f global\n\t" + got + "\n\tEXIT\n"
	m2, err := Assemble(src)
	if err != nil {
		t.Fatalf("reassemble %q: %v", got, err)
	}
	in := m2.Function("f").Instrs[0]
	if in.Opcode != OpLDG || in.Ctrl.WriteBar != 2 || in.Ops[1].Reg != R(2) {
		t.Errorf("reassembled instruction differs: %v", in.String())
	}
}

func TestPredicateSet(t *testing.T) {
	var s PredicateSet
	p0 := Predicate{Reg: P(0)}
	np0 := Predicate{Reg: P(0), Negated: true}
	p1 := Predicate{Reg: P(1)}

	if s.Contains(p0) {
		t.Error("empty set should not contain @P0")
	}
	s.Add(p0)
	if !s.Contains(p0) {
		t.Error("set should contain @P0 after Add")
	}
	if s.Contains(np0) {
		t.Error("set should not contain @!P0")
	}
	if s.Contains(Always) {
		t.Error("one polarity should not cover the always predicate")
	}
	s.Add(np0)
	if !s.Contains(Always) {
		t.Error("both polarities should cover the always predicate")
	}
	if !s.Contains(p1) {
		t.Error("P0 union !P0 = _ covers any predicate")
	}

	var s2 PredicateSet
	s2.Add(Always)
	if !s2.Contains(p0) || !s2.Contains(np0) || !s2.Contains(Always) {
		t.Error("the always predicate covers everything")
	}
}

func TestPredicateCovers(t *testing.T) {
	p0 := Predicate{Reg: P(0)}
	np0 := Predicate{Reg: P(0), Negated: true}
	if !Always.Covers(p0) || !Always.Covers(np0) {
		t.Error("Always must cover conditional predicates")
	}
	if p0.Covers(Always) {
		t.Error("@P0 must not cover Always")
	}
	if p0.Covers(np0) || np0.Covers(p0) {
		t.Error("opposite polarities must not cover each other")
	}
	if !p0.Covers(p0) {
		t.Error("predicate must cover itself")
	}
	if p0.Complement() != np0 {
		t.Errorf("Complement() = %v", p0.Complement())
	}
}

func regSetEq(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[Reg]int{}
	for _, r := range a {
		seen[r]++
	}
	for _, r := range b {
		seen[r]--
		if seen[r] < 0 {
			return false
		}
	}
	return true
}
