package sass

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding. Every instruction packs into one 128-bit
// word, mirroring the fixed-length encoding of Volta and later
// architectures (Section 2.2). Layout (LSB first):
//
//	bits   0-7   opcode
//	bits   8-10  predicate register
//	bit    11    predicate negated
//	bits  12-15  stall cycles
//	bit   16     yield
//	bits  17-19  write barrier + 1 (0 = none)
//	bits  20-22  read barrier + 1 (0 = none)
//	bits  23-28  wait mask
//	bits  29-40  modifier mask
//	bits  41-43  operand count
//	bits  44-127 operand stream (variable-width, 84 bits)
//
// Operand stream entries: 3-bit kind tag, then
//
//	reg:    2-bit class, 8-bit index                     (13 bits)
//	imm:    32-bit value                                 (35 bits)
//	fimm:   32-bit float bits                            (35 bits)
//	mem:    8-bit base register, 18-bit signed offset    (29 bits)
//	const:  5-bit bank, 16-bit offset                    (24 bits)
//	label:  1-bit "is function": 8-bit function ordinal
//	        or 20-bit pc>>4                              (12 or 24 bits)
//
// An instruction whose operands exceed the 84-bit stream cannot be
// encoded; real assemblers avoid this by spilling wide constants to a
// constant bank, and the textual kernels in this repository respect the
// same budget.

const operandStreamBits = 84

type bitBuf struct {
	w   [2]uint64
	pos int
}

func (b *bitBuf) put(width int, v uint64) {
	if b.pos+width > 128 {
		// Overflow: advance pos so the caller's budget check fails, but
		// do not write out of bounds.
		b.pos += width
		return
	}
	for i := 0; i < width; i++ {
		if v&(1<<uint(i)) != 0 {
			b.w[(b.pos+i)/64] |= 1 << uint((b.pos+i)%64)
		}
	}
	b.pos += width
}

func (b *bitBuf) get(width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if b.w[(b.pos+i)/64]&(1<<uint((b.pos+i)%64)) != 0 {
			v |= 1 << uint(i)
		}
	}
	b.pos += width
	return v
}

// EncodeInstruction packs one instruction into a 16-byte word. fnOrdinal
// resolves function names referenced by CAL to module ordinals; it may be
// nil when the instruction has no symbolic target.
func EncodeInstruction(in *Instruction, fnOrdinal func(string) (int, bool)) ([InstrBytes]byte, error) {
	var out [InstrBytes]byte
	var b bitBuf
	b.put(8, uint64(in.Opcode))
	pred := in.Pred
	if pred.Reg == (Reg{}) {
		pred = Always
	}
	b.put(3, uint64(pred.Reg.Index))
	b.put(1, boolBit(pred.Negated))
	b.put(4, uint64(in.Ctrl.Stall))
	b.put(1, boolBit(in.Ctrl.Yield))
	b.put(3, uint64(in.Ctrl.WriteBar+1))
	b.put(3, uint64(in.Ctrl.ReadBar+1))
	b.put(6, uint64(in.Ctrl.WaitMask))
	b.put(12, uint64(in.Mods))
	if len(in.Ops) > 5 {
		return out, fmt.Errorf("sass: encode %s: %d operands (max 5)", in.Opcode, len(in.Ops))
	}
	b.put(3, uint64(len(in.Ops)))
	for _, o := range in.Ops {
		if err := encodeOperand(&b, o, in, fnOrdinal); err != nil {
			return out, err
		}
	}
	if b.pos > 128 {
		return out, fmt.Errorf("sass: encode %s: operand stream needs %d bits (128-bit budget)",
			in.Opcode, b.pos)
	}
	binary.LittleEndian.PutUint64(out[0:8], b.w[0])
	binary.LittleEndian.PutUint64(out[8:16], b.w[1])
	return out, nil
}

func encodeOperand(b *bitBuf, o Operand, in *Instruction, fnOrdinal func(string) (int, bool)) error {
	b.put(3, uint64(o.Kind))
	switch o.Kind {
	case KindReg:
		b.put(2, uint64(o.Reg.Class))
		b.put(8, uint64(o.Reg.Index))
	case KindImm, KindFImm:
		b.put(32, uint64(uint32(o.Imm)))
	case KindMem:
		if o.Imm < -(1<<17) || o.Imm >= 1<<17 {
			return fmt.Errorf("sass: encode %s: memory offset %d exceeds 18-bit field", in.Opcode, o.Imm)
		}
		b.put(8, uint64(o.Reg.Index))
		b.put(18, uint64(uint32(o.Imm))&(1<<18-1))
	case KindConst:
		b.put(5, uint64(o.Bank))
		b.put(16, uint64(o.Off))
	case KindLabel:
		if o.Sym != "" && fnOrdinal != nil {
			if ord, ok := fnOrdinal(o.Sym); ok {
				b.put(1, 1)
				b.put(8, uint64(ord))
				return nil
			}
		}
		b.put(1, 0)
		b.put(20, uint64(o.PC/InstrBytes))
	default:
		return fmt.Errorf("sass: encode: bad operand kind %d", o.Kind)
	}
	return nil
}

// DecodeInstruction unpacks a 16-byte word. fnName resolves function
// ordinals back to names for symbolic call targets.
func DecodeInstruction(word [InstrBytes]byte, pc uint32, fnName func(int) (string, bool)) (Instruction, error) {
	var b bitBuf
	b.w[0] = binary.LittleEndian.Uint64(word[0:8])
	b.w[1] = binary.LittleEndian.Uint64(word[8:16])
	in := Instruction{PC: pc}
	in.Opcode = Opcode(b.get(8))
	if !in.Opcode.Valid() {
		return in, fmt.Errorf("sass: decode at 0x%x: invalid opcode %d", pc, in.Opcode)
	}
	in.Pred = Predicate{Reg: P(int(b.get(3))), Negated: b.get(1) == 1}
	in.Ctrl.Stall = uint8(b.get(4))
	in.Ctrl.Yield = b.get(1) == 1
	in.Ctrl.WriteBar = int8(b.get(3)) - 1
	in.Ctrl.ReadBar = int8(b.get(3)) - 1
	in.Ctrl.WaitMask = uint8(b.get(6))
	in.Mods = ModMask(b.get(12))
	n := int(b.get(3))
	for i := 0; i < n; i++ {
		o, err := decodeOperand(&b, fnName)
		if err != nil {
			return in, fmt.Errorf("sass: decode at 0x%x: %w", pc, err)
		}
		in.Ops = append(in.Ops, o)
	}
	return in, nil
}

func decodeOperand(b *bitBuf, fnName func(int) (string, bool)) (Operand, error) {
	kind := OperandKind(b.get(3))
	switch kind {
	case KindReg:
		return RegOp(Reg{RegClass(b.get(2)), uint8(b.get(8))}), nil
	case KindImm:
		return ImmOp(int32(uint32(b.get(32)))), nil
	case KindFImm:
		return Operand{Kind: KindFImm, Imm: int32(uint32(b.get(32)))}, nil
	case KindMem:
		base := uint8(b.get(8))
		raw := uint32(b.get(18))
		// Sign-extend the 18-bit offset.
		if raw&(1<<17) != 0 {
			raw |= ^uint32(1<<18 - 1)
		}
		return MemOp(Reg{RegGPR, base}, int32(raw)), nil
	case KindConst:
		bank := uint8(b.get(5))
		off := uint16(b.get(16))
		return ConstOp(bank, off), nil
	case KindLabel:
		if b.get(1) == 1 {
			ord := int(b.get(8))
			name := ""
			if fnName != nil {
				if n, ok := fnName(ord); ok {
					name = n
				}
			}
			if name == "" {
				return Operand{}, fmt.Errorf("unresolvable function ordinal %d", ord)
			}
			return LabelOp(name), nil
		}
		return Operand{Kind: KindLabel, PC: uint32(b.get(20)) * InstrBytes}, nil
	}
	return Operand{}, fmt.Errorf("bad operand kind %d", kind)
}

// EncodeFunction encodes all instructions of a function against the
// module's function table.
func EncodeFunction(m *Module, f *Function) ([]byte, error) {
	ordinal := func(name string) (int, bool) {
		for i, fn := range m.Functions {
			if fn.Name == name {
				return i, true
			}
		}
		return 0, false
	}
	out := make([]byte, 0, len(f.Instrs)*InstrBytes)
	for i := range f.Instrs {
		w, err := EncodeInstruction(&f.Instrs[i], ordinal)
		if err != nil {
			return nil, fmt.Errorf("%s+0x%x: %w", f.Name, f.Instrs[i].PC, err)
		}
		out = append(out, w[:]...)
	}
	return out, nil
}

// DecodeFunction decodes an instruction stream encoded by EncodeFunction.
func DecodeFunction(code []byte, fnName func(int) (string, bool)) ([]Instruction, error) {
	if len(code)%InstrBytes != 0 {
		return nil, fmt.Errorf("sass: code size %d not a multiple of %d", len(code), InstrBytes)
	}
	instrs := make([]Instruction, 0, len(code)/InstrBytes)
	for off := 0; off < len(code); off += InstrBytes {
		var w [InstrBytes]byte
		copy(w[:], code[off:off+InstrBytes])
		in, err := DecodeInstruction(w, uint32(off), fnName)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
	}
	return instrs, nil
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
