package sass

import (
	"fmt"
	"strings"
)

// InstrBytes is the fixed instruction size: Volta and later NVIDIA
// architectures use one 128-bit word per instruction.
const InstrBytes = 16

// Instruction is a single decoded GPU instruction.
type Instruction struct {
	// PC is the byte address of the instruction within its function.
	PC uint32
	// Pred is the guard predicate (Always when the instruction is
	// unconditional).
	Pred   Predicate
	Opcode Opcode
	Mods   ModMask
	// Ops holds destination operands first (Opcode.Info().NumDefs of
	// them), then sources.
	Ops  []Operand
	Ctrl Control
}

// Index converts the byte PC to an instruction index within the function.
func (in *Instruction) Index() int { return int(in.PC) / InstrBytes }

// Dests returns the destination operands.
func (in *Instruction) Dests() []Operand {
	n := in.Opcode.Info().NumDefs
	if n > len(in.Ops) {
		n = len(in.Ops)
	}
	return in.Ops[:n]
}

// Sources returns the source operands.
func (in *Instruction) Sources() []Operand {
	n := in.Opcode.Info().NumDefs
	if n > len(in.Ops) {
		n = len(in.Ops)
	}
	return in.Ops[n:]
}

// is64BitAddress reports whether a memory operand of this instruction
// holds a 64-bit address in a register pair (base, base+1). Global and
// generic memory use a 64-bit address space (Table 1: "the source operand
// is a 64-bit value comprised of two registers"); the .E modifier forces
// extended addressing for any space.
func (in *Instruction) is64BitAddress() bool {
	if in.Mods.Has(ModE) {
		return true
	}
	switch in.Opcode.Info().Class {
	case ClassMemGlobal, ClassMemGeneric, ClassMemLocal:
		return true
	}
	return false
}

// appendRegPair appends r (and r+1 when wide is true and r is a GPR)
// skipping hardwired-zero registers.
func appendRegPair(dst []Reg, r Reg, wide bool) []Reg {
	if r.IsZero() {
		return dst
	}
	dst = append(dst, r)
	if wide && r.Class == RegGPR && int(r.Index)+1 <= MaxGPR {
		dst = append(dst, Reg{RegGPR, r.Index + 1})
	}
	return dst
}

// Defs returns the registers written by the instruction, including the
// virtual barrier registers implied by the control code: a write-barrier
// or read-barrier allocation is modelled as a def of B[i] so that
// barrier-mediated dependencies appear in ordinary def-use chains
// (Section 4, "Virtual barrier registers").
func (in *Instruction) Defs() []Reg {
	var defs []Reg
	wide := in.Mods.AccessWidth() >= 64
	for _, o := range in.Dests() {
		if o.Kind == KindReg {
			defs = appendRegPair(defs, o.Reg, wide && o.Reg.Class == RegGPR)
		}
	}
	if in.Ctrl.WriteBar != NoBarrier {
		defs = append(defs, B(int(in.Ctrl.WriteBar)))
	}
	if in.Ctrl.ReadBar != NoBarrier {
		defs = append(defs, B(int(in.Ctrl.ReadBar)))
	}
	return defs
}

// Uses returns the registers read by the instruction: source register
// operands (with 64-bit values and addresses expanding to register
// pairs), memory base registers, the guard predicate register, and the
// barrier registers named by the wait mask.
func (in *Instruction) Uses() []Reg {
	var uses []Reg
	wideVal := in.Mods.AccessWidth() >= 64
	for _, o := range in.Sources() {
		switch o.Kind {
		case KindReg:
			uses = appendRegPair(uses, o.Reg, wideVal && o.Reg.Class == RegGPR)
		case KindMem:
			uses = appendRegPair(uses, o.Reg, in.is64BitAddress())
		}
	}
	// Stores read the data they write; the data operand is a "dest
	// slot" only syntactically for loads, so for stores all operands are
	// sources already. Predicate guard:
	if !in.Pred.IsAlways() {
		uses = append(uses, in.Pred.Reg)
	}
	for b := 0; b < NumBarriers; b++ {
		if in.Ctrl.Waits(b) {
			uses = append(uses, B(b))
		}
	}
	return uses
}

// WARDefs returns GPR operands that a variable-latency instruction reads
// under a read barrier. A later instruction that writes one of these
// registers has a write-after-read dependency mediated by the read
// barrier (the "WAR dependency" class of Figure 5).
func (in *Instruction) WARDefs() []Reg {
	if in.Ctrl.ReadBar == NoBarrier {
		return nil
	}
	var regs []Reg
	wideVal := in.Mods.AccessWidth() >= 64
	for _, o := range in.Sources() {
		switch o.Kind {
		case KindReg:
			regs = appendRegPair(regs, o.Reg, wideVal && o.Reg.Class == RegGPR)
		case KindMem:
			regs = appendRegPair(regs, o.Reg, in.is64BitAddress())
		}
	}
	return regs
}

// BranchTarget returns the label operand of a control transfer, if any.
func (in *Instruction) BranchTarget() (Operand, bool) {
	if !in.Opcode.Info().Branch {
		return Operand{}, false
	}
	for _, o := range in.Ops {
		if o.Kind == KindLabel {
			return o, true
		}
	}
	return Operand{}, false
}

// IsExit reports whether the instruction ends the thread (EXIT) or
// returns from a device function (RET).
func (in *Instruction) IsExit() bool {
	return in.Opcode == OpEXIT || in.Opcode == OpRET
}

// Unconditional reports whether the instruction always executes
// (predicate @PT).
func (in *Instruction) Unconditional() bool { return in.Pred.IsAlways() }

// String renders the instruction in assembler syntax, control code
// included.
func (in *Instruction) String() string {
	var b strings.Builder
	if p := in.Pred.String(); p != "" {
		b.WriteString(p)
		b.WriteByte(' ')
	}
	b.WriteString(in.Opcode.String())
	for m := Modifier(0); m < numModifiers; m++ {
		if in.Mods.Has(m) {
			b.WriteByte('.')
			b.WriteString(m.String())
		}
	}
	for i, o := range in.Ops {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	if c := in.Ctrl.String(); c != "" {
		b.WriteByte(' ')
		b.WriteString(c)
	}
	return b.String()
}

// Visibility is the linkage of a function symbol.
type Visibility uint8

// Function visibilities (the paper annotates global vs device functions
// from the symbol table's visibility field).
const (
	VisGlobal Visibility = iota // kernel entry (__global__)
	VisDevice                   // device function (__device__)
)

// String names the visibility.
func (v Visibility) String() string {
	if v == VisGlobal {
		return "global"
	}
	return "device"
}

// InlineFrame is one level of an inline stack: the named function was
// inlined at file:line of its caller.
type InlineFrame struct {
	Function string
	File     string
	Line     int
}

// LineInfo maps one instruction to its source position, including the
// inline stack (outermost caller first).
type LineInfo struct {
	File   string
	Line   int
	Inline []InlineFrame
}

// Function is a contiguous run of instructions with a symbol, visibility,
// and per-instruction source mapping.
type Function struct {
	Name       string
	Visibility Visibility
	Instrs     []Instruction
	// Lines[i] is the source mapping of Instrs[i].
	Lines []LineInfo
	// Labels maps label names to instruction indices.
	Labels map[string]int
}

// InstrAt returns the instruction at byte address pc, or nil.
func (f *Function) InstrAt(pc uint32) *Instruction {
	i := int(pc) / InstrBytes
	if i < 0 || i >= len(f.Instrs) {
		return nil
	}
	return &f.Instrs[i]
}

// LineAt returns the source mapping at byte address pc.
func (f *Function) LineAt(pc uint32) LineInfo {
	i := int(pc) / InstrBytes
	if i < 0 || i >= len(f.Lines) {
		return LineInfo{}
	}
	return f.Lines[i]
}

// Module is a set of functions assembled together, analogous to one
// CUBIN: one or more kernels plus the device functions they call.
type Module struct {
	// Arch is the SM architecture flag, e.g. 70 for Volta.
	Arch int
	// Functions in definition order; entry kernels have VisGlobal.
	Functions []*Function
}

// Function looks up a function by name.
func (m *Module) Function(name string) *Function {
	for _, f := range m.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Kernels returns the functions with global visibility.
func (m *Module) Kernels() []*Function {
	var ks []*Function
	for _, f := range m.Functions {
		if f.Visibility == VisGlobal {
			ks = append(ks, f)
		}
	}
	return ks
}

// Validate performs structural checks: non-empty functions, resolvable
// call targets, legal registers and barrier indices.
func (m *Module) Validate() error {
	if len(m.Functions) == 0 {
		return fmt.Errorf("sass: module has no functions")
	}
	for _, f := range m.Functions {
		if len(f.Instrs) == 0 {
			return fmt.Errorf("sass: function %q is empty", f.Name)
		}
		if len(f.Lines) != len(f.Instrs) {
			return fmt.Errorf("sass: function %q: %d line records for %d instructions",
				f.Name, len(f.Lines), len(f.Instrs))
		}
		last := f.Instrs[len(f.Instrs)-1]
		if !last.IsExit() && last.Opcode != OpBRA && last.Opcode != OpJMP {
			return fmt.Errorf("sass: function %q does not end in EXIT/RET/branch", f.Name)
		}
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if !in.Opcode.Valid() {
				return fmt.Errorf("sass: %s+0x%x: invalid opcode", f.Name, in.PC)
			}
			if wb := in.Ctrl.WriteBar; wb != NoBarrier && (wb < 0 || int(wb) >= NumBarriers) {
				return fmt.Errorf("sass: %s+0x%x: write barrier %d out of range", f.Name, in.PC, wb)
			}
			if rb := in.Ctrl.ReadBar; rb != NoBarrier && (rb < 0 || int(rb) >= NumBarriers) {
				return fmt.Errorf("sass: %s+0x%x: read barrier %d out of range", f.Name, in.PC, rb)
			}
			if in.Ctrl.WaitMask >= 1<<NumBarriers {
				return fmt.Errorf("sass: %s+0x%x: wait mask 0x%x out of range", f.Name, in.PC, in.Ctrl.WaitMask)
			}
			if in.Opcode == OpCAL {
				tgt, ok := in.BranchTarget()
				if !ok {
					return fmt.Errorf("sass: %s+0x%x: CAL without target", f.Name, in.PC)
				}
				if m.Function(tgt.Sym) == nil {
					return fmt.Errorf("sass: %s+0x%x: CAL to unknown function %q", f.Name, in.PC, tgt.Sym)
				}
			}
		}
	}
	return nil
}
