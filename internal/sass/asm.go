package sass

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble parses a textual module. The grammar is line oriented:
//
//	.module sm_70                  architecture flag (optional, default 70)
//	.func NAME global|device       begin a function
//	.line FILE LINE                set source position for following instrs
//	.inline FILE LINE FUNC         push an inline frame (FUNC inlined at FILE:LINE)
//	.inlineend                     pop the innermost inline frame
//	LABEL:                         define a code label
//	[@[!]Pn] OP[.MOD]* [op, ...] [{ctrl}]
//
// Operands: Rn, RZ, Pn, PT, integer immediates (0x.. or decimal, with a
// trailing f for float32), memory [Rn], [Rn+0x10], [Rn-0x10], constants
// c[0xB][0xOFF], special registers SR_*, and label/function names for
// branch and call targets.
//
// Control codes in braces: S:n (stall cycles), Y (yield), W:n (write
// barrier), R:n (read barrier), Q:a|b|c (wait mask). Unspecified parts
// default to {S:1}.
//
// Comments run from "//" or "#" to end of line.
func Assemble(src string) (*Module, error) {
	a := &assembler{mod: &Module{Arch: 70}}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("sass: line %d: %w", i+1, err)
		}
	}
	if err := a.finishFunc(); err != nil {
		return nil, err
	}
	if err := a.mod.Validate(); err != nil {
		return nil, err
	}
	return a.mod, nil
}

// MustAssemble is Assemble that panics on error; intended for statically
// known kernel sources (the workload library).
func MustAssemble(src string) *Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

type assembler struct {
	mod    *Module
	fn     *Function
	file   string
	lineNo int
	inline []InlineFrame
	// fixups are label operands to resolve once the function is complete:
	// instruction index -> operand index.
	fixups []fixup
}

type fixup struct {
	instr, op int
}

func (a *assembler) line(raw string) error {
	s := raw
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	// Labels may share a line with an instruction: "L0: IADD ...".
	for {
		i := strings.Index(s, ":")
		if i < 0 || !isIdent(s[:i]) {
			break
		}
		if a.fn == nil {
			return fmt.Errorf("label %q outside function", s[:i])
		}
		name := s[:i]
		if _, dup := a.fn.Labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.fn.Labels[name] = len(a.fn.Instrs)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return a.instruction(s)
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".module":
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "sm_") {
			return fmt.Errorf(".module wants sm_NN")
		}
		n, err := strconv.Atoi(strings.TrimPrefix(fields[1], "sm_"))
		if err != nil {
			return fmt.Errorf(".module: %v", err)
		}
		a.mod.Arch = n
		return nil
	case ".func":
		if len(fields) != 3 {
			return fmt.Errorf(".func wants NAME global|device")
		}
		if err := a.finishFunc(); err != nil {
			return err
		}
		vis := VisGlobal
		switch fields[2] {
		case "global":
		case "device":
			vis = VisDevice
		default:
			return fmt.Errorf("unknown visibility %q", fields[2])
		}
		a.fn = &Function{Name: fields[1], Visibility: vis, Labels: map[string]int{}}
		a.file, a.lineNo, a.inline = "", 0, nil
		return nil
	case ".line":
		if len(fields) != 3 {
			return fmt.Errorf(".line wants FILE LINE")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf(".line: %v", err)
		}
		a.file, a.lineNo = fields[1], n
		return nil
	case ".inline":
		if len(fields) != 4 {
			return fmt.Errorf(".inline wants FILE LINE FUNC")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf(".inline: %v", err)
		}
		a.inline = append(a.inline, InlineFrame{Function: fields[3], File: fields[1], Line: n})
		return nil
	case ".inlineend":
		if len(a.inline) == 0 {
			return fmt.Errorf(".inlineend without .inline")
		}
		a.inline = a.inline[:len(a.inline)-1]
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

func (a *assembler) finishFunc() error {
	if a.fn == nil {
		return nil
	}
	for _, fx := range a.fixups {
		op := &a.fn.Instrs[fx.instr].Ops[fx.op]
		idx, ok := a.fn.Labels[op.Sym]
		if ok {
			op.PC = uint32(idx * InstrBytes)
			continue
		}
		// Call targets may name another function; leave symbolic.
		if a.fn.Instrs[fx.instr].Opcode == OpCAL {
			continue
		}
		return fmt.Errorf("sass: function %q: undefined label %q", a.fn.Name, op.Sym)
	}
	a.fixups = nil
	a.mod.Functions = append(a.mod.Functions, a.fn)
	a.fn = nil
	return nil
}

func (a *assembler) instruction(s string) error {
	if a.fn == nil {
		return fmt.Errorf("instruction outside .func")
	}
	in := Instruction{
		PC:   uint32(len(a.fn.Instrs) * InstrBytes),
		Pred: Always,
		Ctrl: DefaultControl(),
	}
	// Control code suffix.
	if i := strings.Index(s, "{"); i >= 0 {
		j := strings.LastIndex(s, "}")
		if j < i {
			return fmt.Errorf("unterminated control code")
		}
		ctrl, err := parseControl(s[i+1 : j])
		if err != nil {
			return err
		}
		in.Ctrl = ctrl
		s = strings.TrimSpace(s[:i] + s[j+1:])
	}
	// Predicate guard.
	if strings.HasPrefix(s, "@") {
		i := strings.IndexAny(s, " \t")
		if i < 0 {
			return fmt.Errorf("predicate without opcode")
		}
		p, err := parsePred(s[1:i])
		if err != nil {
			return err
		}
		in.Pred = p
		s = strings.TrimSpace(s[i:])
	}
	// Opcode and modifiers.
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i:])
	}
	parts := strings.Split(mn, ".")
	op, ok := OpcodeByName(parts[0])
	if !ok {
		return fmt.Errorf("unknown opcode %q", parts[0])
	}
	in.Opcode = op
	for _, p := range parts[1:] {
		m, ok := ModifierByName(p)
		if !ok {
			return fmt.Errorf("unknown modifier %q on %s", p, parts[0])
		}
		in.Mods = in.Mods.With(m)
	}
	// Operands.
	if rest != "" {
		for _, tok := range splitOperands(rest) {
			o, err := a.parseOperand(tok, op)
			if err != nil {
				return err
			}
			if o.Kind == KindLabel {
				a.fixups = append(a.fixups, fixup{len(a.fn.Instrs), len(in.Ops)})
			}
			in.Ops = append(in.Ops, o)
		}
	}
	// Variable-latency instructions must allocate a barrier so their
	// completion is observable; default to W:0 for loads, R:0 for stores
	// if the author omitted one.
	info := op.Info()
	if info.VariableLatency && in.Ctrl.WriteBar == NoBarrier && in.Ctrl.ReadBar == NoBarrier {
		if info.Store {
			in.Ctrl.ReadBar = 0
		} else {
			in.Ctrl.WriteBar = 0
		}
	}
	a.fn.Instrs = append(a.fn.Instrs, in)
	li := LineInfo{File: a.file, Line: a.lineNo}
	if len(a.inline) > 0 {
		li.Inline = append([]InlineFrame(nil), a.inline...)
		// The instruction's own position is that of the innermost
		// inlined function body; keep the .line value as given.
	}
	a.fn.Lines = append(a.fn.Lines, li)
	return nil
}

// splitOperands splits on top-level commas (commas inside brackets do not
// occur in this grammar, but be permissive).
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *assembler) parseOperand(tok string, op Opcode) (Operand, error) {
	switch {
	case tok == "":
		return Operand{}, fmt.Errorf("empty operand")
	case tok == "RZ":
		return RegOp(RZ), nil
	case tok == "PT":
		return RegOp(PT), nil
	case strings.HasPrefix(tok, "SR_"):
		for i, n := range specialNames {
			if n == tok {
				return RegOp(Reg{RegSpecial, uint8(i)}), nil
			}
		}
		return Operand{}, fmt.Errorf("unknown special register %q", tok)
	case tok[0] == 'R' && len(tok) > 1 && isDigits(tok[1:]):
		n, _ := strconv.Atoi(tok[1:])
		if n > MaxGPR {
			return Operand{}, fmt.Errorf("register %s out of range", tok)
		}
		return RegOp(R(n)), nil
	case tok[0] == 'P' && len(tok) > 1 && isDigits(tok[1:]):
		n, _ := strconv.Atoi(tok[1:])
		if n >= PTIndex {
			return Operand{}, fmt.Errorf("predicate %s out of range", tok)
		}
		return RegOp(P(n)), nil
	case tok == "!PT":
		return RegOp(Reg{RegPred, PTIndex}), nil
	case tok[0] == '[':
		return parseMem(tok)
	case strings.HasPrefix(tok, "c["):
		return parseConst(tok)
	case strings.HasSuffix(tok, "f") && isFloatLit(tok[:len(tok)-1]):
		v, err := strconv.ParseFloat(tok[:len(tok)-1], 32)
		if err != nil {
			return Operand{}, err
		}
		return FImmOp(float32(v)), nil
	case isIntLit(tok):
		v, err := parseInt(tok)
		if err != nil {
			return Operand{}, err
		}
		return ImmOp(v), nil
	case isIdent(tok):
		return LabelOp(tok), nil
	}
	return Operand{}, fmt.Errorf("cannot parse operand %q", tok)
}

func parseMem(tok string) (Operand, error) {
	if !strings.HasSuffix(tok, "]") {
		return Operand{}, fmt.Errorf("unterminated memory operand %q", tok)
	}
	body := tok[1 : len(tok)-1]
	base := body
	off := int32(0)
	for i := 1; i < len(body); i++ {
		if body[i] == '+' || body[i] == '-' {
			base = body[:i]
			v, err := parseInt(body[i+1:])
			if err != nil {
				return Operand{}, fmt.Errorf("memory offset: %v", err)
			}
			if body[i] == '-' {
				v = -v
			}
			off = v
			break
		}
	}
	base = strings.TrimSpace(base)
	var r Reg
	switch {
	case base == "RZ":
		r = RZ
	case base != "" && base[0] == 'R' && isDigits(base[1:]):
		n, _ := strconv.Atoi(base[1:])
		if n > MaxGPR {
			return Operand{}, fmt.Errorf("register %s out of range", base)
		}
		r = R(n)
	default:
		return Operand{}, fmt.Errorf("bad memory base %q", base)
	}
	return MemOp(r, off), nil
}

func parseConst(tok string) (Operand, error) {
	// c[0xB][0xOFF]
	rest := strings.TrimPrefix(tok, "c[")
	i := strings.Index(rest, "]")
	if i < 0 {
		return Operand{}, fmt.Errorf("bad constant operand %q", tok)
	}
	bank, err := parseInt(rest[:i])
	if err != nil {
		return Operand{}, err
	}
	rest = rest[i+1:]
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return Operand{}, fmt.Errorf("bad constant operand %q", tok)
	}
	off, err := parseInt(rest[1 : len(rest)-1])
	if err != nil {
		return Operand{}, err
	}
	if bank < 0 || bank > 31 || off < 0 || off > math.MaxUint16 {
		return Operand{}, fmt.Errorf("constant operand %q out of range", tok)
	}
	return ConstOp(uint8(bank), uint16(off)), nil
}

func parsePred(tok string) (Predicate, error) {
	neg := false
	if strings.HasPrefix(tok, "!") {
		neg = true
		tok = tok[1:]
	}
	if tok == "PT" {
		return Predicate{Reg: PT, Negated: neg}, nil
	}
	if len(tok) > 1 && tok[0] == 'P' && isDigits(tok[1:]) {
		n, _ := strconv.Atoi(tok[1:])
		if n >= PTIndex {
			return Predicate{}, fmt.Errorf("predicate P%d out of range", n)
		}
		return Predicate{Reg: P(n), Negated: neg}, nil
	}
	return Predicate{}, fmt.Errorf("bad predicate %q", tok)
}

func parseControl(s string) (Control, error) {
	c := DefaultControl()
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case part == "Y":
			c.Yield = true
		case strings.HasPrefix(part, "S:"):
			n, err := strconv.Atoi(part[2:])
			if err != nil || n < 0 || n > 15 {
				return c, fmt.Errorf("bad stall %q", part)
			}
			c.Stall = uint8(n)
		case strings.HasPrefix(part, "W:"):
			n, err := strconv.Atoi(part[2:])
			if err != nil || n < 0 || n >= NumBarriers {
				return c, fmt.Errorf("bad write barrier %q", part)
			}
			c.WriteBar = int8(n)
		case strings.HasPrefix(part, "R:"):
			n, err := strconv.Atoi(part[2:])
			if err != nil || n < 0 || n >= NumBarriers {
				return c, fmt.Errorf("bad read barrier %q", part)
			}
			c.ReadBar = int8(n)
		case strings.HasPrefix(part, "Q:"):
			for _, b := range strings.Split(part[2:], "|") {
				n, err := strconv.Atoi(strings.TrimSpace(b))
				if err != nil || n < 0 || n >= NumBarriers {
					return c, fmt.Errorf("bad wait mask entry %q", b)
				}
				c.WaitMask |= 1 << uint(n)
			}
		default:
			return c, fmt.Errorf("unknown control field %q", part)
		}
	}
	return c, nil
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isIntLit(s string) bool {
	if strings.HasPrefix(s, "-") {
		s = s[1:]
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return len(s) > 2
	}
	return isDigits(s)
}

func isFloatLit(s string) bool {
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(s, 32)
	return err == nil
}

func parseInt(s string) (int32, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else {
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return int32(-int64(v)), nil
	}
	return int32(v), nil
}
