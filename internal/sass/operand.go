package sass

import (
	"fmt"
	"math"
)

// OperandKind discriminates the operand encodings.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	// KindReg is a register operand.
	KindReg
	// KindImm is a 32-bit integer immediate (sign-extended at use).
	KindImm
	// KindFImm is a 32-bit float immediate.
	KindFImm
	// KindMem is a register-indirect memory reference "[Rn+0xOFF]"; the
	// memory space comes from the opcode.
	KindMem
	// KindConst is a constant-bank reference "c[bank][offset]".
	KindConst
	// KindLabel is a code label used by branches and calls; the
	// assembler resolves it to a PC.
	KindLabel
)

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg    // KindReg, and base register for KindMem
	Imm  int32  // KindImm; float bits for KindFImm; offset for KindMem
	Bank uint8  // KindConst
	Off  uint16 // KindConst offset
	Sym  string // KindLabel: label or function name
	PC   uint32 // KindLabel: resolved target PC (byte address)
}

// Constructors.

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an integer immediate operand.
func ImmOp(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// FImmOp returns a float immediate operand.
func FImmOp(v float32) Operand {
	return Operand{Kind: KindFImm, Imm: int32(math.Float32bits(v))}
}

// MemOp returns a register-indirect memory operand.
func MemOp(base Reg, off int32) Operand {
	return Operand{Kind: KindMem, Reg: base, Imm: off}
}

// ConstOp returns a constant-bank operand c[bank][off].
func ConstOp(bank uint8, off uint16) Operand {
	return Operand{Kind: KindConst, Bank: bank, Off: off}
}

// LabelOp returns an unresolved label operand.
func LabelOp(sym string) Operand { return Operand{Kind: KindLabel, Sym: sym} }

// Float returns the float32 value of a KindFImm operand.
func (o Operand) Float() float32 { return math.Float32frombits(uint32(o.Imm)) }

// String renders the operand in SASS syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "<none>"
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", uint32(-o.Imm))
		}
		return fmt.Sprintf("0x%x", uint32(o.Imm))
	case KindFImm:
		return fmt.Sprintf("%gf", o.Float())
	case KindMem:
		if o.Imm == 0 {
			return fmt.Sprintf("[%s]", o.Reg)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("[%s-0x%x]", o.Reg, uint32(-o.Imm))
		}
		return fmt.Sprintf("[%s+0x%x]", o.Reg, uint32(o.Imm))
	case KindConst:
		return fmt.Sprintf("c[0x%x][0x%x]", o.Bank, o.Off)
	case KindLabel:
		if o.Sym != "" {
			return o.Sym
		}
		return fmt.Sprintf("0x%x", o.PC)
	}
	return "<bad>"
}

// Control is the per-instruction scheduling control code (Section 2.2 of
// the paper): stall cycles for fixed-latency producers, a yield hint, the
// write/read barrier indices allocated by variable-latency instructions,
// and the wait mask naming the barriers this instruction must wait on.
type Control struct {
	Stall uint8 // cycles the scheduler holds the warp after issue (0-15)
	Yield bool
	// WriteBar and ReadBar are barrier indices 0-5, or NoBarrier.
	WriteBar int8
	ReadBar  int8
	// WaitMask bit i set means "wait until Bi is signalled before issue".
	WaitMask uint8
}

// NoBarrier marks an unused barrier slot.
const NoBarrier int8 = -1

// DefaultControl is a neutral control code (1-cycle stall, no barriers).
func DefaultControl() Control {
	return Control{Stall: 1, WriteBar: NoBarrier, ReadBar: NoBarrier}
}

// Waits reports whether the wait mask includes barrier b.
func (c Control) Waits(b int) bool { return c.WaitMask&(1<<uint(b)) != 0 }

// String renders the control code in the assembler's brace syntax; a
// neutral control code renders as the empty string.
func (c Control) String() string {
	s := ""
	sep := func() {
		if s != "" {
			s += ", "
		}
	}
	if c.Stall != 1 {
		s += fmt.Sprintf("S:%d", c.Stall)
	}
	if c.Yield {
		sep()
		s += "Y"
	}
	if c.WriteBar != NoBarrier {
		sep()
		s += fmt.Sprintf("W:%d", c.WriteBar)
	}
	if c.ReadBar != NoBarrier {
		sep()
		s += fmt.Sprintf("R:%d", c.ReadBar)
	}
	if c.WaitMask != 0 {
		sep()
		s += "Q:"
		first := true
		for b := 0; b < NumBarriers; b++ {
			if c.Waits(b) {
				if !first {
					s += "|"
				}
				s += fmt.Sprintf("%d", b)
				first = false
			}
		}
	}
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}
