package sass

import "fmt"

// Opcode identifies an instruction mnemonic.
type Opcode uint8

// The supported Volta-style opcode set. The selection covers every
// instruction class the GPA analyses distinguish: global/local/shared/
// constant memory, fixed- and variable-latency arithmetic, transcendental
// (MUFU), conversions, control flow, and synchronization.
const (
	OpInvalid Opcode = iota

	// Global memory.
	OpLDG // load global
	OpSTG // store global
	// Local memory (register spills).
	OpLDL
	OpSTL
	// Shared memory.
	OpLDS
	OpSTS
	// Constant memory.
	OpLDC
	// Generic.
	OpLD
	OpST
	// Atomics.
	OpATOM
	OpRED

	// Integer arithmetic.
	OpIADD
	OpIADD3
	OpIMAD
	OpIMUL
	OpISETP
	OpIMNMX
	OpIABS
	OpSHF
	OpSHL
	OpSHR
	OpLOP
	OpLOP3
	OpPOPC
	OpFLO
	OpIDIV // integer division (expanded by real compilers; kept as a long-latency pseudo-op)

	// Single-precision float.
	OpFADD
	OpFMUL
	OpFFMA
	OpFSETP
	OpFMNMX
	OpFSEL

	// Double-precision float.
	OpDADD
	OpDMUL
	OpDFMA
	OpDSETP

	// Transcendental / special function unit.
	OpMUFU

	// Conversions.
	OpF2F
	OpF2I
	OpI2F
	OpI2I

	// Data movement.
	OpMOV
	OpSEL
	OpSHFL
	OpPRMT
	OpS2R // special register read
	OpCS2R

	// Predicate logic.
	OpPSETP
	OpPLOP3

	// Control flow.
	OpBRA
	OpBRX
	OpJMP
	OpCAL
	OpRET
	OpEXIT
	OpBSSY
	OpBSYNC
	OpBREAK

	// Synchronization.
	OpBAR
	OpMEMBAR
	OpDEPBAR

	OpNOP

	numOpcodes
)

// ExecClass groups opcodes by the analysis-relevant behaviour of their
// execution: which pipeline they occupy and how their latency is resolved.
type ExecClass uint8

const (
	// ClassMemGlobal: variable latency through the LSU to global memory.
	ClassMemGlobal ExecClass = iota
	// ClassMemLocal: variable latency; local memory traffic indicates
	// register spills.
	ClassMemLocal
	// ClassMemShared: variable (short) latency through shared memory.
	ClassMemShared
	// ClassMemConst: constant-bank load.
	ClassMemConst
	// ClassMemGeneric: generic-address load/store.
	ClassMemGeneric
	// ClassIntFixed: fixed-latency integer ALU.
	ClassIntFixed
	// ClassFP32Fixed: fixed-latency FP32 FMA pipe.
	ClassFP32Fixed
	// ClassFP64: fixed-latency but low-throughput FP64 pipe.
	ClassFP64
	// ClassMUFU: variable-latency special function unit.
	ClassMUFU
	// ClassConvert: fixed-latency conversion pipe (runs on the FP64/XU
	// path on Volta, hence long latency).
	ClassConvert
	// ClassControl: branches, calls, returns.
	ClassControl
	// ClassSync: named-barrier and memory-barrier synchronization.
	ClassSync
	// ClassMisc: moves, predicate ops, NOP.
	ClassMisc
)

// OpInfo describes static properties of an opcode.
type OpInfo struct {
	Name  string
	Class ExecClass
	// VariableLatency marks instructions whose completion is signalled
	// through a write/read barrier rather than fixed stall cycles.
	VariableLatency bool
	// Store marks instructions that write memory (no GPR destination).
	Store bool
	// Load marks instructions that read memory into a GPR.
	Load bool
	// NumDefs is the number of leading operands that are destinations.
	NumDefs int
	// Branch marks control transfers with a code target operand.
	Branch bool
}

var opTable = [numOpcodes]OpInfo{
	OpInvalid: {Name: "INVALID", Class: ClassMisc},

	OpLDG: {Name: "LDG", Class: ClassMemGlobal, VariableLatency: true, Load: true, NumDefs: 1},
	OpSTG: {Name: "STG", Class: ClassMemGlobal, VariableLatency: true, Store: true},
	OpLDL: {Name: "LDL", Class: ClassMemLocal, VariableLatency: true, Load: true, NumDefs: 1},
	OpSTL: {Name: "STL", Class: ClassMemLocal, VariableLatency: true, Store: true},
	OpLDS: {Name: "LDS", Class: ClassMemShared, VariableLatency: true, Load: true, NumDefs: 1},
	OpSTS: {Name: "STS", Class: ClassMemShared, VariableLatency: true, Store: true},
	OpLDC: {Name: "LDC", Class: ClassMemConst, VariableLatency: true, Load: true, NumDefs: 1},
	OpLD:  {Name: "LD", Class: ClassMemGeneric, VariableLatency: true, Load: true, NumDefs: 1},
	OpST:  {Name: "ST", Class: ClassMemGeneric, VariableLatency: true, Store: true},

	OpATOM: {Name: "ATOM", Class: ClassMemGlobal, VariableLatency: true, Load: true, Store: true, NumDefs: 1},
	OpRED:  {Name: "RED", Class: ClassMemGlobal, VariableLatency: true, Store: true},

	OpIADD:  {Name: "IADD", Class: ClassIntFixed, NumDefs: 1},
	OpIADD3: {Name: "IADD3", Class: ClassIntFixed, NumDefs: 1},
	OpIMAD:  {Name: "IMAD", Class: ClassIntFixed, NumDefs: 1},
	OpIMUL:  {Name: "IMUL", Class: ClassIntFixed, NumDefs: 1},
	OpISETP: {Name: "ISETP", Class: ClassIntFixed, NumDefs: 1},
	OpIMNMX: {Name: "IMNMX", Class: ClassIntFixed, NumDefs: 1},
	OpIABS:  {Name: "IABS", Class: ClassIntFixed, NumDefs: 1},
	OpSHF:   {Name: "SHF", Class: ClassIntFixed, NumDefs: 1},
	OpSHL:   {Name: "SHL", Class: ClassIntFixed, NumDefs: 1},
	OpSHR:   {Name: "SHR", Class: ClassIntFixed, NumDefs: 1},
	OpLOP:   {Name: "LOP", Class: ClassIntFixed, NumDefs: 1},
	OpLOP3:  {Name: "LOP3", Class: ClassIntFixed, NumDefs: 1},
	OpPOPC:  {Name: "POPC", Class: ClassIntFixed, NumDefs: 1},
	OpFLO:   {Name: "FLO", Class: ClassIntFixed, NumDefs: 1},
	OpIDIV:  {Name: "IDIV", Class: ClassMUFU, VariableLatency: true, NumDefs: 1},

	OpFADD:  {Name: "FADD", Class: ClassFP32Fixed, NumDefs: 1},
	OpFMUL:  {Name: "FMUL", Class: ClassFP32Fixed, NumDefs: 1},
	OpFFMA:  {Name: "FFMA", Class: ClassFP32Fixed, NumDefs: 1},
	OpFSETP: {Name: "FSETP", Class: ClassFP32Fixed, NumDefs: 1},
	OpFMNMX: {Name: "FMNMX", Class: ClassFP32Fixed, NumDefs: 1},
	OpFSEL:  {Name: "FSEL", Class: ClassFP32Fixed, NumDefs: 1},

	OpDADD:  {Name: "DADD", Class: ClassFP64, NumDefs: 1},
	OpDMUL:  {Name: "DMUL", Class: ClassFP64, NumDefs: 1},
	OpDFMA:  {Name: "DFMA", Class: ClassFP64, NumDefs: 1},
	OpDSETP: {Name: "DSETP", Class: ClassFP64, NumDefs: 1},

	OpMUFU: {Name: "MUFU", Class: ClassMUFU, VariableLatency: true, NumDefs: 1},

	OpF2F: {Name: "F2F", Class: ClassConvert, NumDefs: 1},
	OpF2I: {Name: "F2I", Class: ClassConvert, NumDefs: 1},
	OpI2F: {Name: "I2F", Class: ClassConvert, NumDefs: 1},
	OpI2I: {Name: "I2I", Class: ClassConvert, NumDefs: 1},

	OpMOV:  {Name: "MOV", Class: ClassMisc, NumDefs: 1},
	OpSEL:  {Name: "SEL", Class: ClassMisc, NumDefs: 1},
	OpSHFL: {Name: "SHFL", Class: ClassMemShared, VariableLatency: true, NumDefs: 1},
	OpPRMT: {Name: "PRMT", Class: ClassIntFixed, NumDefs: 1},
	OpS2R:  {Name: "S2R", Class: ClassMisc, VariableLatency: true, NumDefs: 1},
	OpCS2R: {Name: "CS2R", Class: ClassMisc, NumDefs: 1},

	OpPSETP: {Name: "PSETP", Class: ClassMisc, NumDefs: 1},
	OpPLOP3: {Name: "PLOP3", Class: ClassMisc, NumDefs: 1},

	OpBRA:   {Name: "BRA", Class: ClassControl, Branch: true},
	OpBRX:   {Name: "BRX", Class: ClassControl, Branch: true},
	OpJMP:   {Name: "JMP", Class: ClassControl, Branch: true},
	OpCAL:   {Name: "CAL", Class: ClassControl, Branch: true},
	OpRET:   {Name: "RET", Class: ClassControl},
	OpEXIT:  {Name: "EXIT", Class: ClassControl},
	OpBSSY:  {Name: "BSSY", Class: ClassControl, Branch: true},
	OpBSYNC: {Name: "BSYNC", Class: ClassControl},
	OpBREAK: {Name: "BREAK", Class: ClassControl},

	OpBAR:    {Name: "BAR", Class: ClassSync},
	OpMEMBAR: {Name: "MEMBAR", Class: ClassSync},
	OpDEPBAR: {Name: "DEPBAR", Class: ClassSync},

	OpNOP: {Name: "NOP", Class: ClassMisc},
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(1); op < numOpcodes; op++ {
		m[opTable[op].Name] = op
	}
	return m
}()

// OpcodeByName resolves a mnemonic; ok is false for unknown names.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Info returns the static properties of the opcode.
func (op Opcode) Info() OpInfo {
	if op >= numOpcodes {
		return opTable[OpInvalid]
	}
	return opTable[op]
}

// String returns the mnemonic.
func (op Opcode) String() string { return op.Info().Name }

// Valid reports whether op is a known opcode.
func (op Opcode) Valid() bool { return op > OpInvalid && op < numOpcodes }

// IsMemory reports whether the opcode accesses a memory space.
func (op Opcode) IsMemory() bool {
	switch op.Info().Class {
	case ClassMemGlobal, ClassMemLocal, ClassMemShared, ClassMemConst, ClassMemGeneric:
		return true
	}
	return false
}

// IsGlobalMemory reports whether the opcode accesses global memory
// (including generic loads, which may resolve to global space, and
// atomics).
func (op Opcode) IsGlobalMemory() bool {
	c := op.Info().Class
	return c == ClassMemGlobal || c == ClassMemGeneric
}

// IsSync reports whether the opcode is a synchronization instruction.
func (op Opcode) IsSync() bool { return op.Info().Class == ClassSync }

// IsControl reports whether the opcode transfers control.
func (op Opcode) IsControl() bool { return op.Info().Class == ClassControl }

// MemSpace names the memory space of a memory opcode; it returns
// SpaceNone for non-memory opcodes.
func (op Opcode) MemSpace() MemSpace {
	switch op.Info().Class {
	case ClassMemGlobal:
		return SpaceGlobal
	case ClassMemLocal:
		return SpaceLocal
	case ClassMemShared:
		return SpaceShared
	case ClassMemConst:
		return SpaceConst
	case ClassMemGeneric:
		return SpaceGeneric
	}
	return SpaceNone
}

// MemSpace identifies a GPU memory space.
type MemSpace uint8

// Memory spaces.
const (
	SpaceNone MemSpace = iota
	SpaceGlobal
	SpaceLocal
	SpaceShared
	SpaceConst
	SpaceGeneric
)

// String names the space.
func (s MemSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceLocal:
		return "local"
	case SpaceShared:
		return "shared"
	case SpaceConst:
		return "constant"
	case SpaceGeneric:
		return "generic"
	}
	return "none"
}

// Modifier is an opcode suffix such as ".32" or ".WIDE". Modifiers are
// drawn from a fixed dictionary so they can be encoded as a bitmask in
// the 128-bit instruction word.
type Modifier uint8

// The modifier dictionary. At most 12 modifiers fit the encoding budget.
const (
	Mod32 Modifier = iota // 32-bit access/operand
	Mod64                 // 64-bit access/operand
	Mod128
	ModE    // extended (64-bit) address
	ModWide // widening multiply
	ModU32
	ModS32
	ModF32
	ModF64
	ModRcp  // MUFU.RCP
	ModSin  // MUFU.SIN and friends (transcendental group)
	ModSync // BAR.SYNC, warp-synchronizing variants
	numModifiers
)

var modNames = [numModifiers]string{
	Mod32: "32", Mod64: "64", Mod128: "128", ModE: "E", ModWide: "WIDE",
	ModU32: "U32", ModS32: "S32", ModF32: "F32", ModF64: "F64",
	ModRcp: "RCP", ModSin: "SIN", ModSync: "SYNC",
}

var modByName = func() map[string]Modifier {
	m := make(map[string]Modifier, numModifiers)
	for i := Modifier(0); i < numModifiers; i++ {
		m[modNames[i]] = i
	}
	return m
}()

// ModifierByName resolves a modifier name (without the leading dot).
func ModifierByName(name string) (Modifier, bool) {
	mod, ok := modByName[name]
	return mod, ok
}

// String returns the modifier name without the leading dot.
func (m Modifier) String() string {
	if m < numModifiers {
		return modNames[m]
	}
	return fmt.Sprintf("?mod%d", uint8(m))
}

// ModMask is a set of modifiers encoded as a bitmask.
type ModMask uint16

// With returns the mask with m added.
func (mm ModMask) With(m Modifier) ModMask { return mm | 1<<m }

// Has reports whether m is in the mask.
func (mm ModMask) Has(m Modifier) bool { return mm&(1<<m) != 0 }

// AccessWidth returns the access width in bits implied by the modifiers
// (default 32).
func (mm ModMask) AccessWidth() int {
	switch {
	case mm.Has(Mod128):
		return 128
	case mm.Has(Mod64) || mm.Has(ModF64):
		return 64
	default:
		return 32
	}
}
