// Package sass models the GPU instruction set architecture the
// pipeline's kernels are written in: fixed-length 128-bit instructions
// carrying an opcode, modifiers, a guard predicate,
// register/memory/immediate operands, and a control code with stall
// cycles, a yield flag, write/read barrier indices and a wait mask (see
// Table 1 of the GPA paper). This encoding was introduced with Volta
// and is shared by Turing and Ampere; which architecture model a module
// targets is recorded as an SM flag (.module sm_70) and resolved by
// internal/arch, not here.
//
// In the Figure 2 pipeline this package is the front door: kernel
// source (SASS text) or a CUBIN payload comes in, a *Module of typed
// instructions comes out, consumed by the simulator, the CFG builder,
// and the blamer's def/use slicing. The package provides:
//
//   - typed registers (general purpose, predicate, virtual barrier,
//     special),
//   - an opcode table with dependency-relevant properties (memory space,
//     fixed vs variable latency, execution pipeline),
//   - def/use extraction including the virtual barrier registers B0-B5
//     that the GPA instruction blamer slices over (Section 4.1),
//   - a textual assembler/disassembler for writing kernels by hand, and
//   - a binary codec packing each instruction into a 128-bit word.
package sass

import "fmt"

// RegClass discriminates the register files visible to instructions.
type RegClass uint8

const (
	// RegGPR is a 32-bit general purpose register R0-R254; R255 is RZ,
	// the constant-zero register.
	RegGPR RegClass = iota
	// RegPred is a 1-bit predicate register P0-P6; P7 is PT (always
	// true).
	RegPred
	// RegBarrier is one of the six virtual barrier registers B0-B5 used
	// to track variable-latency dependencies. Barrier registers never
	// appear as textual operands; they are implied by the control code.
	RegBarrier
	// RegSpecial is a read-only special register such as SR_TID.X.
	RegSpecial
)

// Indices of distinguished registers.
const (
	RZIndex = 255 // constant zero GPR
	PTIndex = 7   // constant true predicate
	// NumBarriers is the number of virtual barrier registers (B0-B5).
	NumBarriers = 6
	// MaxGPR is the highest allocatable general purpose register index.
	MaxGPR = 254
)

// Special register indices.
const (
	SRTidX uint8 = iota
	SRTidY
	SRTidZ
	SRCtaX
	SRCtaY
	SRCtaZ
	SRLaneID
	SRClock
	numSpecial
)

var specialNames = [...]string{
	SRTidX:   "SR_TID.X",
	SRTidY:   "SR_TID.Y",
	SRTidZ:   "SR_TID.Z",
	SRCtaX:   "SR_CTAID.X",
	SRCtaY:   "SR_CTAID.Y",
	SRCtaZ:   "SR_CTAID.Z",
	SRLaneID: "SR_LANEID",
	SRClock:  "SR_CLOCK",
}

// Reg identifies a single architectural register.
type Reg struct {
	Class RegClass
	Index uint8
}

// Convenience constructors.

// R returns the general purpose register Rn.
func R(n int) Reg { return Reg{RegGPR, uint8(n)} }

// P returns the predicate register Pn.
func P(n int) Reg { return Reg{RegPred, uint8(n)} }

// B returns the virtual barrier register Bn.
func B(n int) Reg { return Reg{RegBarrier, uint8(n)} }

// RZ is the constant-zero general purpose register.
var RZ = Reg{RegGPR, RZIndex}

// PT is the constant-true predicate register.
var PT = Reg{RegPred, PTIndex}

// IsZero reports whether the register reads as a hardwired constant
// (RZ or PT) and therefore carries no dependency.
func (r Reg) IsZero() bool {
	return (r.Class == RegGPR && r.Index == RZIndex) ||
		(r.Class == RegPred && r.Index == PTIndex)
}

// Valid reports whether the register index is legal for its class.
func (r Reg) Valid() bool {
	switch r.Class {
	case RegGPR:
		return true // 0-254 plus RZ=255
	case RegPred:
		return r.Index <= PTIndex
	case RegBarrier:
		return r.Index < NumBarriers
	case RegSpecial:
		return r.Index < numSpecial
	}
	return false
}

// String renders the register in SASS syntax.
func (r Reg) String() string {
	switch r.Class {
	case RegGPR:
		if r.Index == RZIndex {
			return "RZ"
		}
		return fmt.Sprintf("R%d", r.Index)
	case RegPred:
		if r.Index == PTIndex {
			return "PT"
		}
		return fmt.Sprintf("P%d", r.Index)
	case RegBarrier:
		return fmt.Sprintf("B%d", r.Index)
	case RegSpecial:
		if int(r.Index) < len(specialNames) {
			return specialNames[r.Index]
		}
	}
	return fmt.Sprintf("?reg(%d,%d)", r.Class, r.Index)
}

// Predicate is an instruction guard: the instruction executes only when
// the predicate register evaluates to the required truth value. The zero
// value (PT, not negated) means "always execute".
type Predicate struct {
	Reg     Reg // must be RegPred
	Negated bool
}

// Always is the unconditional predicate @PT.
var Always = Predicate{Reg: PT}

// IsAlways reports whether the predicate is the trivial @PT guard.
func (p Predicate) IsAlways() bool {
	return (p.Reg == Reg{} && !p.Negated) || (p.Reg == PT && !p.Negated)
}

// Covers reports whether executing under p guarantees at least one of the
// conditions under which q executes is met; it implements the containment
// relation of Section 4 of the paper: the special predicate "_" (Always)
// contains everything, and a predicate contains itself.
func (p Predicate) Covers(q Predicate) bool {
	if p.IsAlways() {
		return true
	}
	if q.IsAlways() {
		return false
	}
	return p.Reg == q.Reg && p.Negated == q.Negated
}

// Complement returns the predicate guarding the opposite condition.
func (p Predicate) Complement() Predicate {
	if p.IsAlways() {
		return p
	}
	return Predicate{Reg: p.Reg, Negated: !p.Negated}
}

// String renders the guard in SASS syntax ("@P0", "@!P3"); the always
// predicate renders as the empty string.
func (p Predicate) String() string {
	if p.IsAlways() {
		return ""
	}
	if p.Negated {
		return "@!" + p.Reg.String()
	}
	return "@" + p.Reg.String()
}

// PredicateSet tracks the union of predicates seen on a backward-slicing
// search path (Section 4: "Let P be the union of def instructions'
// predicates on the path"). The set contains a predicate p' iff p' was
// added, both polarities of its register were added, or Always was added.
type PredicateSet struct {
	always bool
	pos    uint8 // bit i: Pi seen
	neg    uint8 // bit i: !Pi seen
}

// Add inserts a predicate into the set.
func (s *PredicateSet) Add(p Predicate) {
	if p.IsAlways() {
		s.always = true
		return
	}
	bit := uint8(1) << p.Reg.Index
	if p.Negated {
		s.neg |= bit
	} else {
		s.pos |= bit
	}
}

// Contains reports whether the set covers predicate p per the paper's
// containment rule: p ∈ P, or _ ∈ P, or both polarities of p's register
// are in P (their union is "_").
func (s *PredicateSet) Contains(p Predicate) bool {
	if s.always {
		return true
	}
	// Both polarities of any register union to "_", which covers every
	// predicate.
	if s.pos&s.neg != 0 {
		return true
	}
	if p.IsAlways() {
		return false
	}
	bit := uint8(1) << p.Reg.Index
	if p.Negated {
		return s.neg&bit != 0
	}
	return s.pos&bit != 0
}
