// Package store is the per-stage content-addressed artifact store
// behind the service engine. Each Figure 2 pipeline stage — measure,
// profile, blame/advise — caches its output independently under a
// SHA-256 stage key, so later requests (or a restarted daemon, or the
// arch-dependent half of a sweep) reuse everything upstream of the
// first stage whose inputs actually changed.
//
// Two backends share one contract:
//
//   - Memory: a bounded per-stage LRU of decoded artifacts. Cheap,
//     process-local, and the only backend for artifacts that cannot be
//     serialized (the module front-end's Program/Structure memo).
//   - Disk: digest-named blobs under a versioned directory layout.
//     Writes are atomic (temp file + rename in the same directory), so
//     concurrent writers and a crash mid-write can never publish a
//     torn blob; reads verify a framed, schema-versioned envelope with
//     a SHA-256 checksum trailer before a single payload byte is
//     believed.
//
// Corruption contract: the disk store is a cache, not a database. A
// blob that is truncated, bit-flipped, framed under the wrong schema
// or stage, checksum-mismatched, or simply unreadable is reported as a
// miss (and counted in Stats.Corrupt), never as an error and never as
// wrong bytes; the caller recomputes and rewrites it. Callers that
// decode payloads further must uphold the same rule and call
// Disk.NoteCorrupt when a payload fails their own validation.
package store

// Key is a content-addressed artifact key: a raw SHA-256 of the
// stage's inputs. The producing layer (internal/service) derives it
// with the same labeled length-prefixed field encoding as the result-
// cache digest, so keys from different layouts can never alias.
type Key [32]byte

// Stage names for the Figure 2 pipeline artifacts. Stage names are
// part of both the on-disk layout and the blob framing, so a blob can
// never be replayed as a different stage's artifact.
const (
	// StageFrontend is the arch-independent module front-end (flattened
	// Program + CFG/loop Structure). Memory-only: the artifacts are
	// pointer graphs into the module and are rebuilt, not deserialized.
	StageFrontend = "frontend"
	// StageMeasure is a cycles-only simulation result.
	StageMeasure = "measure"
	// StageProfile is a sampled profile (canonical JSON payload).
	StageProfile = "profile"
	// StageAdvice is the blame/advise output: ranked advice entries
	// plus the rendered Figure 8 report text.
	StageAdvice = "advice"
)

// Stats is a point-in-time snapshot of a backend's counters.
type Stats struct {
	// Hits counts artifact lookups that returned a value.
	Hits int64 `json:"hits"`
	// Misses counts lookups that found nothing (including corrupt
	// blobs, which are also counted in Corrupt).
	Misses int64 `json:"misses"`
	// Puts counts artifacts written.
	Puts int64 `json:"puts"`
	// Corrupt counts blobs rejected by verification — truncated,
	// bit-flipped, wrong schema, wrong stage or key, unreadable — and
	// degraded to misses. (Memory backend: always 0.)
	Corrupt int64 `json:"corrupt"`
	// Errors counts write-side failures (a full disk loses cache
	// entries, never correctness).
	Errors int64 `json:"errors"`
	// Evictions counts memory-backend LRU evictions. (Disk: always 0.)
	Evictions int64 `json:"evictions"`
}
