package store

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// Blob framing. Every on-disk artifact is a self-describing envelope:
//
//	magic   [8]byte  "GPASTOR1" (framing version; bump on layout change)
//	schema  u16 len + bytes     (caller's payload-schema string)
//	stage   u16 len + bytes     (pipeline stage name)
//	key     [32]byte            (the content-addressed stage key)
//	payload u64 len + bytes
//	sum     [32]byte            (SHA-256 over everything above)
//
// The schema, stage, and key ride inside the checksummed region, so a
// blob renamed to another key, served for another stage, or written by
// a build with a different payload schema fails verification exactly
// like a bit flip: decode returns an error and the store reports a
// miss. Lengths are bounded before any allocation, so a hostile or
// truncated file can never make decode panic or balloon.

var blobMagic = [8]byte{'G', 'P', 'A', 'S', 'T', 'O', 'R', '1'}

const (
	// maxNameLen bounds the schema and stage strings in the framing.
	maxNameLen = 1 << 10
	// maxPayloadLen bounds a payload decode will allocate for. Profiles
	// for the bundled corpus are a few hundred KB; 1 GiB is far above
	// any legitimate artifact while still refusing a forged length that
	// would attempt an absurd allocation.
	maxPayloadLen = 1 << 30
)

// errCorrupt tags every verification failure; decodeBlob wraps it with
// the specific cause for logs and tests.
var errCorrupt = errors.New("store: corrupt blob")

// EncodeBlob frames a payload exactly as Put writes it. Exposed for
// offline tooling and for fault-injection tests that need to plant
// checksum-valid blobs with hostile identities or payloads; normal
// callers go through Put.
func EncodeBlob(schema, stage string, key Key, payload []byte) []byte {
	return encodeBlob(schema, stage, key, payload)
}

// encodeBlob frames a payload. The returned slice is freshly allocated.
// Schema and stage names are caller-owned constants; exceeding the
// framing bound is a programming error, not a runtime condition.
func encodeBlob(schema, stage string, key Key, payload []byte) []byte {
	if len(schema) > maxNameLen || len(stage) > maxNameLen {
		panic("store: schema/stage name exceeds framing bound")
	}
	n := len(blobMagic) + 2 + len(schema) + 2 + len(stage) + len(key) + 8 + len(payload) + sha256.Size
	b := make([]byte, 0, n)
	b = append(b, blobMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(schema)))
	b = append(b, schema...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(stage)))
	b = append(b, stage...)
	b = append(b, key[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// decodeBlob verifies a framed blob against the expected schema, stage,
// and key and returns its payload (aliasing data). Any mismatch —
// framing, lengths, identity, or checksum — returns an error wrapping
// errCorrupt; decode never panics on arbitrary input.
func decodeBlob(data []byte, schema, stage string, key Key) ([]byte, error) {
	r := blobReader{data: data}
	magic, ok := r.take(len(blobMagic))
	if !ok || !bytes.Equal(magic, blobMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	gotSchema, ok := r.name()
	if !ok {
		return nil, fmt.Errorf("%w: truncated schema", errCorrupt)
	}
	gotStage, ok := r.name()
	if !ok {
		return nil, fmt.Errorf("%w: truncated stage", errCorrupt)
	}
	gotKey, ok := r.take(len(key))
	if !ok {
		return nil, fmt.Errorf("%w: truncated key", errCorrupt)
	}
	plen, ok := r.u64()
	if !ok || plen > maxPayloadLen {
		return nil, fmt.Errorf("%w: bad payload length", errCorrupt)
	}
	payload, ok := r.take(int(plen))
	if !ok {
		return nil, fmt.Errorf("%w: truncated payload", errCorrupt)
	}
	body := data[:r.off]
	sum, ok := r.take(sha256.Size)
	if !ok || r.off != len(data) {
		return nil, fmt.Errorf("%w: truncated checksum", errCorrupt)
	}
	want := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum, want[:]) != 1 {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	// Identity checks come after the checksum so the error names the
	// real cause: a checksum-valid blob under the wrong identity is a
	// misfiled blob, not a damaged one.
	if string(gotSchema) != schema {
		return nil, fmt.Errorf("%w: schema %q, want %q", errCorrupt, gotSchema, schema)
	}
	if string(gotStage) != stage {
		return nil, fmt.Errorf("%w: stage %q, want %q", errCorrupt, gotStage, stage)
	}
	if !bytes.Equal(gotKey, key[:]) {
		return nil, fmt.Errorf("%w: key mismatch", errCorrupt)
	}
	return payload, nil
}

// blobReader is a bounds-checked cursor over a blob.
type blobReader struct {
	data []byte
	off  int
}

func (r *blobReader) take(n int) ([]byte, bool) {
	if n < 0 || len(r.data)-r.off < n {
		return nil, false
	}
	v := r.data[r.off : r.off+n]
	r.off += n
	return v, true
}

func (r *blobReader) u64() (uint64, bool) {
	v, ok := r.take(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v), true
}

// name reads a u16-length-prefixed string field.
func (r *blobReader) name() ([]byte, bool) {
	v, ok := r.take(2)
	if !ok {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint16(v))
	if n > maxNameLen {
		return nil, false
	}
	return r.take(n)
}
