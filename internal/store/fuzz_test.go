package store

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzBlobDecode throws arbitrary bytes at the blob verifier. The
// contract under fuzzing: decode never panics, never over-allocates
// from a forged length, and accepts a blob only when it is the exact
// framing of some payload under the expected identity — in which case
// the returned payload must round-trip byte-identically.
func FuzzBlobDecode(f *testing.F) {
	key := sha256.Sum256([]byte("fuzz-key"))
	// Seed with a valid blob, near-miss mutations, and framing edges.
	valid := encodeBlob("fuzz-schema/1", StageProfile, key, []byte(`{"elapsedMs":1.5,"profile":{}}`))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("GPASTOR1"))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	f.Add(encodeBlob("fuzz-schema/2", StageProfile, key, []byte("wrong schema")))
	f.Add(encodeBlob("fuzz-schema/1", StageMeasure, key, []byte("wrong stage")))
	f.Add(encodeBlob("fuzz-schema/1", StageProfile, Key{}, []byte("wrong key")))
	f.Add(encodeBlob("fuzz-schema/1", StageProfile, key, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeBlob(data, "fuzz-schema/1", StageProfile, key)
		if err != nil {
			return
		}
		// Anything decode accepts must be the canonical encoding of its
		// own payload: re-encoding reproduces the input bytes exactly.
		if !bytes.Equal(encodeBlob("fuzz-schema/1", StageProfile, key, payload), data) {
			t.Fatalf("accepted blob is not canonical for its payload (%d bytes)", len(data))
		}
	})
}

// FuzzBlobRoundTrip drives the encoder with arbitrary identities and
// payloads: encode must frame anything, and decode must verify its own
// output and return the payload bytes unchanged.
func FuzzBlobRoundTrip(f *testing.F) {
	f.Add("schema/1", StageMeasure, []byte("k"), []byte(`{"cycles":1}`))
	f.Add("", "", []byte{}, []byte{})
	f.Add("gpa-stage/1+gpa-service-key/2", StageAdvice, []byte("another key seed"),
		[]byte(`{"elapsedMs":0.5,"report":"r","advice":{"kernel":"k","entries":null}}`))

	f.Fuzz(func(t *testing.T, schema, stage string, keySeed, payload []byte) {
		if len(schema) > maxNameLen || len(stage) > maxNameLen {
			return // encoder rejects these by panic: programmer error, not input
		}
		key := Key(sha256.Sum256(keySeed))
		blob := encodeBlob(schema, stage, key, payload)
		got, err := decodeBlob(blob, schema, stage, key)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mutated in round trip: %q -> %q", payload, got)
		}
		// A foreign identity must never verify.
		if schema != "other" {
			if _, err := decodeBlob(blob, "other", stage, key); err == nil {
				t.Fatal("blob verified under a different schema")
			}
		}
	})
}
