package store

import (
	"container/list"
	"sync"
)

// Memory is the in-process artifact backend: one bounded LRU per
// stage, holding decoded artifacts (any). It fronts the Disk backend —
// a disk hit is decoded once and re-added here — and is the only home
// for stage artifacts that cannot be serialized. Safe for concurrent
// use.
type Memory struct {
	cap int
	mu  sync.Mutex
	// stages lazily creates one LRU per stage name; the engine uses a
	// small fixed set of stages, so this stays tiny.
	stages map[string]*memLRU

	hits, misses, puts, evictions int64
}

type memLRU struct {
	order *list.List // front = most recent; values are *memEntry
	byKey map[Key]*list.Element
}

type memEntry struct {
	key Key
	v   any
}

// NewMemory builds a memory backend holding up to entriesPerStage
// artifacts per stage (0 = 512); a negative bound disables the backend
// entirely and NewMemory returns nil (nil *Memory is a valid no-op
// receiver for Get/Add/Stats).
func NewMemory(entriesPerStage int) *Memory {
	if entriesPerStage < 0 {
		return nil
	}
	if entriesPerStage == 0 {
		entriesPerStage = 512
	}
	return &Memory{cap: entriesPerStage, stages: map[string]*memLRU{}}
}

// Get returns the artifact for (stage, key) and marks it most recently
// used.
func (m *Memory) Get(stage string, key Key) (any, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.stages[stage]
	if l == nil {
		m.misses++
		return nil, false
	}
	el, ok := l.byKey[key]
	if !ok {
		m.misses++
		return nil, false
	}
	l.order.MoveToFront(el)
	m.hits++
	return el.Value.(*memEntry).v, true
}

// Add stores the artifact for (stage, key) unless one is already
// present, and returns the artifact actually under the key (the
// existing one on a race) — LoadOrStore semantics, so concurrent
// producers of one key converge on a single shared artifact.
func (m *Memory) Add(stage string, key Key, v any) any {
	if m == nil {
		return v
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.stages[stage]
	if l == nil {
		l = &memLRU{order: list.New(), byKey: map[Key]*list.Element{}}
		m.stages[stage] = l
	}
	if el, ok := l.byKey[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*memEntry).v
	}
	l.byKey[key] = l.order.PushFront(&memEntry{key: key, v: v})
	m.puts++
	if l.order.Len() > m.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.byKey, oldest.Value.(*memEntry).key)
		m.evictions++
	}
	return v
}

// Stats snapshots the memory counters (zero for a nil receiver).
func (m *Memory) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.misses, Puts: m.puts, Evictions: m.evictions}
}
