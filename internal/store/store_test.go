package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

const testSchema = "store-test/1"

func testKey(s string) Key { return sha256.Sum256([]byte(s)) }

func openTestDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := Open(t.TempDir(), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openTestDisk(t)
	key := testKey("k1")
	payload := []byte(`{"cycles":12345}`)

	if _, ok := d.Get(StageMeasure, key); ok {
		t.Fatal("empty store returned a hit")
	}
	d.Put(StageMeasure, key, payload)
	got, ok := d.Get(StageMeasure, key)
	if !ok {
		t.Fatal("stored blob missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q, want %q", got, payload)
	}
	st := d.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 1 put, 1 hit, 1 miss", st)
	}
}

func TestDiskStagesAndKeysAreDisjoint(t *testing.T) {
	d := openTestDisk(t)
	key := testKey("k1")
	d.Put(StageMeasure, key, []byte("measure-bytes"))
	if _, ok := d.Get(StageProfile, key); ok {
		t.Error("measure blob served for the profile stage")
	}
	if _, ok := d.Get(StageMeasure, testKey("k2")); ok {
		t.Error("blob served for a different key")
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	key := testKey("k1")
	payload := []byte("persist me")
	d1, err := Open(dir, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(StageAdvice, key, payload)

	d2, err := Open(dir, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(StageAdvice, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store: got %q, %v; want %q, true", got, ok, payload)
	}
}

func TestDiskSchemaBumpStartsCold(t *testing.T) {
	dir := t.TempDir()
	key := testKey("k1")
	d1, err := Open(dir, "schema/1")
	if err != nil {
		t.Fatal(err)
	}
	d1.Put(StageMeasure, key, []byte("old-schema"))

	d2, err := Open(dir, "schema/2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(StageMeasure, key); ok {
		t.Fatal("new-schema store served an old-schema blob")
	}
	// Different schemas live under different slugs, so this is a plain
	// miss, not corruption.
	if st := d2.Stats(); st.Corrupt != 0 {
		t.Errorf("schema bump counted corruption: %+v", st)
	}
}

// corruptThenGet applies a mutation to the stored blob file, asserts
// the store degrades it to a miss with a Corrupt count, and that a
// re-Put + Get recovers the original payload bytes exactly.
func corruptThenGet(t *testing.T, name string, mutate func(t *testing.T, path string)) {
	t.Run(name, func(t *testing.T) {
		d := openTestDisk(t)
		key := testKey("victim/" + name)
		payload := []byte(`{"cycles":98765,"elapsedMs":1.25}`)
		d.Put(StageProfile, key, payload)
		mutate(t, d.Path(StageProfile, key))

		if got, ok := d.Get(StageProfile, key); ok {
			t.Fatalf("corrupted blob (%s) served as a hit: %q", name, got)
		}
		st := d.Stats()
		if st.Corrupt == 0 {
			t.Errorf("%s: corruption not counted: %+v", name, st)
		}
		if st.Misses == 0 {
			t.Errorf("%s: corruption must degrade to a miss: %+v", name, st)
		}
		// The recomputed artifact replaces the damaged blob and round-
		// trips byte-identically.
		d.Put(StageProfile, key, payload)
		got, ok := d.Get(StageProfile, key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("%s: recovery Put/Get = %q, %v; want original payload", name, got, ok)
		}
	})
}

func TestDiskFaultInjection(t *testing.T) {
	corruptThenGet(t, "truncated", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o666); err != nil {
			t.Fatal(err)
		}
	})
	corruptThenGet(t, "flipped-byte", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	})
	corruptThenGet(t, "wrong-schema-version", func(t *testing.T, path string) {
		// A blob framed under another payload schema dropped where this
		// store's blob lives (e.g. by a restore from the wrong backup)
		// must be rejected by the framing, not decoded.
		key := testKey("victim/wrong-schema-version")
		blob := encodeBlob("other-schema/9", StageProfile, key, []byte("imposter"))
		if err := os.WriteFile(path, blob, 0o666); err != nil {
			t.Fatal(err)
		}
	})
	corruptThenGet(t, "misfiled-stage", func(t *testing.T, path string) {
		// A checksum-valid blob for another stage under this path must
		// fail the stage identity check.
		key := testKey("victim/misfiled-stage")
		blob := encodeBlob(testSchema, StageAdvice, key, []byte("advice bytes"))
		if err := os.WriteFile(path, blob, 0o666); err != nil {
			t.Fatal(err)
		}
	})
	corruptThenGet(t, "unreadable", func(t *testing.T, path string) {
		// Tests may run as root, where permission bits don't bite, so
		// force the read error structurally: a directory where the blob
		// file should be.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(path, 0o777); err != nil {
			t.Fatal(err)
		}
	})
	corruptThenGet(t, "zero-length", func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o666); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskConcurrentWriters(t *testing.T) {
	d := openTestDisk(t)
	key := testKey("contended")
	payload := []byte("identical bytes from every writer")

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				d.Put(StageMeasure, key, payload)
				if got, ok := d.Get(StageMeasure, key); ok && !bytes.Equal(got, payload) {
					t.Errorf("reader observed torn blob: %q", got)
				}
			}
		}()
	}
	wg.Wait()
	got, ok := d.Get(StageMeasure, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("final Get = %q, %v; want payload, true", got, ok)
	}
	if st := d.Stats(); st.Corrupt != 0 || st.Errors != 0 {
		t.Errorf("concurrent writers produced corruption/errors: %+v", st)
	}
	// Atomic writes must not leak temp files into the stage directory.
	dir := filepath.Dir(d.Path(StageMeasure, key))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(d.Path(StageMeasure, key)) {
			t.Errorf("leftover file in blob dir: %s", e.Name())
		}
	}
}

func TestDiskConcurrentDistinctKeys(t *testing.T) {
	d := openTestDisk(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				key := testKey(fmt.Sprintf("k-%d-%d", i, j))
				payload := []byte(fmt.Sprintf("payload-%d-%d", i, j))
				d.Put(StageAdvice, key, payload)
				got, ok := d.Get(StageAdvice, key)
				if !ok || !bytes.Equal(got, payload) {
					t.Errorf("k-%d-%d: got %q, %v", i, j, got, ok)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestMemoryLRU(t *testing.T) {
	m := NewMemory(2)
	k1, k2, k3 := testKey("1"), testKey("2"), testKey("3")
	m.Add(StageMeasure, k1, "one")
	m.Add(StageMeasure, k2, "two")
	if v, ok := m.Get(StageMeasure, k1); !ok || v != "one" {
		t.Fatalf("Get(k1) = %v, %v", v, ok)
	}
	m.Add(StageMeasure, k3, "three") // evicts k2 (least recently used)
	if _, ok := m.Get(StageMeasure, k2); ok {
		t.Error("k2 survived eviction")
	}
	if _, ok := m.Get(StageMeasure, k1); !ok {
		t.Error("recently-used k1 was evicted")
	}
	if st := m.Stats(); st.Evictions != 1 || st.Puts != 3 {
		t.Errorf("stats = %+v, want 3 puts, 1 eviction", st)
	}
}

func TestMemoryLoadOrStore(t *testing.T) {
	m := NewMemory(8)
	k := testKey("k")
	first := &struct{ n int }{1}
	second := &struct{ n int }{2}
	if got := m.Add(StageFrontend, k, first); got != first {
		t.Fatal("first Add did not store its value")
	}
	if got := m.Add(StageFrontend, k, second); got != first {
		t.Error("second Add replaced the existing artifact")
	}
}

func TestMemoryStagesAreIndependent(t *testing.T) {
	m := NewMemory(1)
	k := testKey("k")
	m.Add(StageMeasure, k, "m")
	m.Add(StageProfile, k, "p")
	if v, ok := m.Get(StageMeasure, k); !ok || v != "m" {
		t.Errorf("measure stage = %v, %v", v, ok)
	}
	if v, ok := m.Get(StageProfile, k); !ok || v != "p" {
		t.Errorf("profile stage = %v, %v", v, ok)
	}
}

func TestMemoryNilReceiver(t *testing.T) {
	var m *Memory = NewMemory(-1)
	if m != nil {
		t.Fatal("negative bound must disable the backend")
	}
	if _, ok := m.Get(StageMeasure, testKey("k")); ok {
		t.Error("nil Memory returned a hit")
	}
	if got := m.Add(StageMeasure, testKey("k"), "v"); got != "v" {
		t.Error("nil Memory Add must pass the value through")
	}
	if st := m.Stats(); st != (Stats{}) {
		t.Errorf("nil Memory stats = %+v, want zero", st)
	}
}

func TestBlobDecodeRejectsGarbage(t *testing.T) {
	key := testKey("k")
	valid := encodeBlob(testSchema, StageMeasure, key, []byte("payload"))
	cases := map[string][]byte{
		"empty":         nil,
		"short":         valid[:4],
		"no-checksum":   valid[:len(valid)-1],
		"bad-magic":     append([]byte("NOTMAGIC"), valid[8:]...),
		"trailing-junk": append(append([]byte{}, valid...), 0xFF),
	}
	for name, data := range cases {
		if _, err := decodeBlob(data, testSchema, StageMeasure, key); err == nil {
			t.Errorf("%s: decode accepted malformed blob", name)
		}
	}
	if got, err := decodeBlob(valid, testSchema, StageMeasure, key); err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("valid blob failed: %q, %v", got, err)
	}
}
