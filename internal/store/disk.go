package store

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// layoutVersion names the on-disk directory layout. It versions the
// directory shape only; payload compatibility is the schema string's
// job (it rides inside every blob and in the layout path, so a build
// with a different payload schema sees an empty store, not garbage).
const layoutVersion = "v1"

// Disk is the persistent artifact backend: one file per artifact at
//
//	<dir>/v1/<schema-slug>/<stage>/<hex[:2]>/<hex>
//
// where hex is the stage key. Safe for concurrent use by any number of
// processes: writes go through a temp file + rename in the destination
// directory (atomic on POSIX), so readers see either the complete blob
// or nothing, and the last concurrent writer of a key wins with both
// having written identical bytes (keys are content addresses).
type Disk struct {
	root   string // <dir>/v1/<schema-slug>
	schema string

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	corrupt atomic.Int64
	errors  atomic.Int64
}

// Open creates (if needed) and opens an on-disk store rooted at dir.
// The schema string versions the payload encoding: blobs written under
// any other schema are invisible (they live under another slug and
// would fail framing verification anyway), so bumping the schema
// starts cold instead of misreading old artifacts.
func Open(dir, schema string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty store directory")
	}
	if schema == "" {
		return nil, fmt.Errorf("store: empty schema")
	}
	root := filepath.Join(dir, layoutVersion, schemaSlug(schema))
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Disk{root: root, schema: schema}, nil
}

// schemaSlug renders a schema string as a single path component.
func schemaSlug(schema string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		}
		return '_'
	}, schema)
}

// Path returns where the artifact for (stage, key) lives. Exposed for
// tests and offline tooling; the file may not exist.
func (d *Disk) Path(stage string, key Key) string {
	hexKey := hex.EncodeToString(key[:])
	return filepath.Join(d.root, stage, hexKey[:2], hexKey)
}

// Get returns the verified payload for (stage, key), or ok=false on a
// miss. Every failure mode other than "file does not exist" — read
// errors, truncation, bit flips, wrong schema/stage/key, checksum
// mismatch — counts as Corrupt, is degraded to a miss, and the
// offending file is best-effort removed so the recomputed artifact can
// replace it.
func (d *Disk) Get(stage string, key Key) ([]byte, bool) {
	path := d.Path(stage, key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		if !os.IsNotExist(err) {
			d.corrupt.Add(1)
			os.Remove(path)
		}
		return nil, false
	}
	payload, err := decodeBlob(data, d.schema, stage, key)
	if err != nil {
		d.misses.Add(1)
		d.corrupt.Add(1)
		os.Remove(path)
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// Put writes the payload for (stage, key) atomically. Failures are
// counted and swallowed: the store is a cache, so a full or read-only
// disk costs future misses, never correctness. Concurrent Puts of the
// same key are safe — each writes its own temp file and the renames
// land whole, identical blobs.
func (d *Disk) Put(stage string, key Key, payload []byte) {
	path := d.Path(stage, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		d.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*.tmp")
	if err != nil {
		d.errors.Add(1)
		return
	}
	blob := encodeBlob(d.schema, stage, key, payload)
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	// No fsync: cache semantics. A crash may lose recent artifacts (a
	// future miss) but rename atomicity still prevents torn blobs.
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	d.puts.Add(1)
}

// NoteCorrupt records a payload-level corruption discovered by a
// caller whose own decoding rejected a checksum-valid blob (the
// framing proves the bytes, not that they decode to a well-formed
// artifact), and removes the blob so it is recomputed rather than
// rejected on every future read.
func (d *Disk) NoteCorrupt(stage string, key Key) {
	d.corrupt.Add(1)
	os.Remove(d.Path(stage, key))
}

// Stats snapshots the disk counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Puts:    d.puts.Load(),
		Corrupt: d.corrupt.Load(),
		Errors:  d.errors.Load(),
	}
}

// Dir reports the store's root directory (the versioned, schema-keyed
// blob root, not the directory the store was opened with).
func (d *Disk) Dir() string { return d.root }

// CheckWritable probes whether the store can still accept blobs by
// creating and removing a uniquely named file under the root. It is a
// health-endpoint hook: a full disk or revoked permissions turn the
// store into a silent pass-through (Put failures only bump Errors), so
// liveness probes need an explicit signal.
func (d *Disk) CheckWritable() error {
	f, err := os.CreateTemp(d.root, ".healthz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}
