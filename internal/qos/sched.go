package qos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gpa/internal/apierr"
)

// waiter is one queued admission request. ready is closed exactly once
// — either as a grant (granted=true, the waiter now owns a worker
// slot) or as a refusal (err set, nothing held). canceled marks a
// waiter whose caller gave up while queued; the rotor discards it
// cost-free when it reaches the queue head.
type waiter struct {
	ready    chan struct{}
	err      error
	granted  bool
	canceled bool
	t        *tenantState
	lane     Lane
	enq      time.Time
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	name    string
	weight  int
	bucket  *bucket // nil = no quota
	deficit [numLanes]int
	queues  [numLanes][]*waiter
	inRing  [numLanes]bool
	queued  int64 // live queued waiters, both lanes

	served, shed, quotaShed, brownoutShed, dropped int64
}

// rotor is one lane's deficit-weighted round-robin state: the ring of
// tenants with live queued work in this lane and the rotor position.
// Each time the rotor arrives at a tenant its deficit grows by its
// weight; each grant costs one unit; the rotor moves on when the
// deficit is spent or the queue drains (deficit is zeroed then, so an
// idle tenant banks nothing).
type rotor struct {
	lane    Lane
	ring    []*tenantState
	idx     int
	arrived bool // deficit already credited at the current rotor stop
}

func (r *rotor) add(t *tenantState) {
	if !t.inRing[r.lane] {
		t.inRing[r.lane] = true
		r.ring = append(r.ring, t)
	}
}

func (r *rotor) removeAt(i int) {
	r.ring[i].inRing[r.lane] = false
	r.ring = append(r.ring[:i], r.ring[i+1:]...)
	if r.idx > i {
		r.idx--
	}
	r.arrived = false
}

// pick pops the next waiter this lane should grant, or nil when the
// lane has no live queued work.
func (r *rotor) pick() *waiter {
	for len(r.ring) > 0 {
		if r.idx >= len(r.ring) {
			r.idx = 0
			r.arrived = false
		}
		t := r.ring[r.idx]
		q := &t.queues[r.lane]
		for len(*q) > 0 && (*q)[0].canceled {
			(*q)[0] = nil
			*q = (*q)[1:]
		}
		if len(*q) == 0 {
			t.deficit[r.lane] = 0
			r.removeAt(r.idx)
			continue
		}
		if !r.arrived {
			t.deficit[r.lane] += t.weight
			r.arrived = true
		}
		if t.deficit[r.lane] < 1 {
			r.idx++
			r.arrived = false
			continue
		}
		t.deficit[r.lane]--
		w := (*q)[0]
		(*q)[0] = nil
		*q = (*q)[1:]
		if len(*q) == 0 {
			t.deficit[r.lane] = 0
			r.removeAt(r.idx)
		}
		return w
	}
	return nil
}

// TenantStats is one tenant's accounting snapshot, rendered into
// /statsz (and the per-tenant /metrics series) by cmd/gpad.
type TenantStats struct {
	// Weight is the tenant's configured DWRR share.
	Weight int `json:"weight"`
	// Served counts successfully completed requests (cache hits,
	// coalesced followers, and executed runs alike — whoever asked).
	Served int64 `json:"served"`
	// Shed counts this tenant's queue-full rejections.
	Shed int64 `json:"shed"`
	// QuotaShed counts requests rejected over quota (HTTP 429).
	QuotaShed int64 `json:"quotaShed"`
	// BrownoutShed counts requests shed by the overload controller.
	BrownoutShed int64 `json:"brownoutShed"`
	// Dropped counts waiters that left the queue ungranted (caller
	// canceled, or batch work abandoned by a drain).
	Dropped int64 `json:"dropped"`
	// Queued is the tenant's current live queue depth (both lanes).
	Queued int64 `json:"queued"`
}

// Snapshot is a point-in-time view of the scheduler for Stats.
type Snapshot struct {
	Queued            int64
	InteractiveQueued int64
	BatchQueued       int64
	Dropped           int64
	QuotaShed         int64
	BrownoutShed      int64
	BrownoutLevel     int
	Tenants           map[string]TenantStats
}

// Scheduler is the tenant-aware admission gate: it owns the worker
// accounting that used to live in the engine's flat semaphore and
// decides, slot by slot, which queued request runs next. Safe for
// concurrent use.
type Scheduler struct {
	cfg      Config // defaults resolved
	workers  int
	batchCap int // worker slots batch may occupy (workers - reserve)
	maxQueue int // <0 no queue, 0 unbounded, >0 bound on live waiters

	now func() time.Time // injectable for deterministic tests

	mu           sync.Mutex
	running      int
	runningBatch int
	queued       int64
	queuedLane   [numLanes]int64
	rotors       [numLanes]rotor
	tenants      map[string]*tenantState
	draining     bool
	brown        brownout

	dropped, quotaShed, brownoutShed int64
}

// NewScheduler builds a scheduler over workers slots with the engine's
// MaxQueue semantics (0 = unbounded queue, negative = no queue at
// all). cfg must already be Validate-clean; its zero value is a valid
// single-class configuration (one default tenant, no quotas, no
// reserve, brownout off) that reproduces the old flat semaphore
// behaviour plus FIFO fairness.
func NewScheduler(workers, maxQueue int, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	reserve := cfg.InteractiveReserve
	if reserve >= workers {
		reserve = workers - 1 // batch must keep at least one slot
	}
	s := &Scheduler{
		cfg:      cfg,
		workers:  workers,
		batchCap: workers - reserve,
		maxQueue: maxQueue,
		now:      time.Now,
		tenants:  make(map[string]*tenantState),
		brown:    newBrownout(cfg.Brownout),
	}
	for l := Lane(0); l < numLanes; l++ {
		s.rotors[l].lane = l
	}
	// Pre-create the default tenant so the warm serving path (Charge +
	// Served on every request) allocates nothing in steady state.
	s.tenantFor(DefaultTenantName)
	return s
}

// Workers is the worker-slot bound.
func (s *Scheduler) Workers() int { return s.workers }

// QueueCapacity is the admission bound beyond the worker pool
// (0 = unbounded, matching the old Stats semantics).
func (s *Scheduler) QueueCapacity() int64 {
	if s.maxQueue > 0 {
		return int64(s.maxQueue)
	}
	return 0
}

// tenantFor resolves (creating on first sight) a tenant's state; the
// caller must hold mu except during construction. Unknown IDs past the
// MaxTenants bound collapse into the shared overflow class so a client
// minting fresh IDs cannot grow scheduler state or metric label
// cardinality without bound.
func (s *Scheduler) tenantFor(name string) *tenantState {
	if name == "" {
		name = DefaultTenantName
	}
	if t, ok := s.tenants[name]; ok {
		return t
	}
	tc, explicit := s.cfg.Tenants[name]
	if !explicit {
		tc = s.cfg.DefaultTenant
		if len(s.tenants) >= s.cfg.MaxTenants {
			name = OverflowTenantName
			if t, ok := s.tenants[name]; ok {
				return t
			}
		}
	}
	t := &tenantState{name: name, weight: tc.Weight}
	if tc.RatePerSec > 0 {
		t.bucket = newBucket(tc.RatePerSec, tc.Burst, s.now())
	}
	s.tenants[name] = t
	return t
}

// Charge bills one request to the tenant's token bucket, returning a
// *apierr.QuotaError when the bucket is empty. The engine calls it at
// Do entry — before the cache and singleflight tiers — so quota
// accounting charges cache hits and coalesced followers to whoever
// requested them, and over-quota work is shed before costing anything.
func (s *Scheduler) Charge(tenant string) error {
	s.mu.Lock()
	t := s.tenantFor(tenant)
	if t.bucket == nil {
		s.mu.Unlock()
		return nil
	}
	ok, retry := t.bucket.take(s.now())
	if ok {
		s.mu.Unlock()
		return nil
	}
	t.quotaShed++
	s.quotaShed++
	name := t.name
	s.mu.Unlock()
	return &apierr.QuotaError{Tenant: name, RetryAfter: retry}
}

// Served records one successfully completed request for the tenant.
func (s *Scheduler) Served(tenant string) {
	s.mu.Lock()
	s.tenantFor(tenant).served++
	s.mu.Unlock()
}

// canRunLocked reports whether one more job on lane may start now.
func (s *Scheduler) canRunLocked(lane Lane) bool {
	if s.running >= s.workers {
		return false
	}
	return lane != LaneBatch || s.runningBatch < s.batchCap
}

// grantStartLocked accounts one job starting on lane.
func (s *Scheduler) grantStartLocked(lane Lane) {
	s.running++
	if lane == LaneBatch {
		s.runningBatch++
	}
}

// Acquire admits one request: it either grants a worker slot (release
// must be called exactly once when the run finishes) or refuses with a
// typed error — ErrQueueFull past the queue bound, ErrOverloaded from
// the brownout controller, ErrShuttingDown for batch work during a
// drain, or ErrCanceled when ctx dies while queued.
func (s *Scheduler) Acquire(ctx context.Context, tenant string, lane Lane) (release func(), err error) {
	s.mu.Lock()
	t := s.tenantFor(tenant)
	if s.draining && lane == LaneBatch {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: batch lane abandoned by drain", apierr.ErrShuttingDown)
	}
	if s.brown.shed(lane, int(s.queuedLane[LaneInteractive])) {
		t.brownoutShed++
		s.brownoutShed++
		level := s.brown.level
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: brownout level %d shed %s-lane arrival", apierr.ErrOverloaded, level, lane)
	}
	if s.queuedLane[lane] == 0 && s.canRunLocked(lane) {
		s.grantStartLocked(lane)
		s.brown.observe(0)
		s.mu.Unlock()
		return func() { s.release(lane) }, nil
	}
	if s.maxQueue < 0 || (s.maxQueue > 0 && s.queued >= int64(s.maxQueue)) {
		t.shed++
		capacity := s.workers
		if s.maxQueue > 0 {
			capacity += s.maxQueue
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (capacity %d)", apierr.ErrQueueFull, capacity)
	}
	w := &waiter{ready: make(chan struct{}), t: t, lane: lane, enq: s.now()}
	t.queues[lane] = append(t.queues[lane], w)
	t.queued++
	s.queued++
	s.queuedLane[lane]++
	s.rotors[lane].add(t)
	s.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return func() { s.release(lane) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		switch {
		case w.granted:
			// Raced with a grant: the slot is ours, hand it back.
			s.releaseLocked(lane)
			s.mu.Unlock()
		case w.err != nil:
			// Raced with a refusal (drain): nothing held; report the
			// cancellation, which is what this caller observed.
			s.mu.Unlock()
		default:
			w.canceled = true
			t.queued--
			t.dropped++
			s.queued--
			s.queuedLane[lane]--
			s.dropped++
			s.mu.Unlock()
		}
		return nil, apierr.Canceled(ctx.Err())
	}
}

func (s *Scheduler) release(lane Lane) {
	s.mu.Lock()
	s.releaseLocked(lane)
	s.mu.Unlock()
}

// releaseLocked returns one lane's slot and hands freed capacity to
// queued waiters: interactive first, then batch under its cap — the
// lane-priority half of the admission policy. DWRR across tenants
// happens inside each lane's rotor.
func (s *Scheduler) releaseLocked(lane Lane) {
	s.running--
	if lane == LaneBatch {
		s.runningBatch--
	}
	s.dispatchLocked()
}

func (s *Scheduler) dispatchLocked() {
	for s.running < s.workers {
		var w *waiter
		var lane Lane
		switch {
		case s.queuedLane[LaneInteractive] > 0:
			lane = LaneInteractive
			w = s.rotors[LaneInteractive].pick()
		case s.queuedLane[LaneBatch] > 0 && s.runningBatch < s.batchCap && !s.draining:
			lane = LaneBatch
			w = s.rotors[LaneBatch].pick()
		}
		if w == nil {
			return
		}
		w.t.queued--
		s.queued--
		s.queuedLane[lane]--
		s.brown.observe(float64(s.now().Sub(w.enq)) / float64(time.Millisecond))
		w.granted = true
		s.grantStartLocked(lane)
		close(w.ready)
	}
}

// Drain abandons all queued batch-lane work with ErrShuttingDown and
// stops admitting new batch work; queued interactive work keeps being
// scheduled so a graceful shutdown finishes the latency-sensitive
// queue before the engine's hard stop fires. Idempotent.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.abandonLaneLocked(LaneBatch)
}

// Halt abandons every still-queued waiter in both lanes — the engine's
// hard stop, fired when the drain deadline expires with interactive
// work still queued. Idempotent.
func (s *Scheduler) Halt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.abandonLaneLocked(LaneBatch)
	s.abandonLaneLocked(LaneInteractive)
}

// abandonLaneLocked fails every live queued waiter on lane with
// ErrShuttingDown and resets the lane's rotor.
func (s *Scheduler) abandonLaneLocked(lane Lane) {
	r := &s.rotors[lane]
	for _, t := range r.ring {
		for _, w := range t.queues[lane] {
			if w == nil || w.canceled {
				continue
			}
			w.err = fmt.Errorf("%w: abandoned in queue", apierr.ErrShuttingDown)
			t.queued--
			t.dropped++
			s.queued--
			s.queuedLane[lane]--
			s.dropped++
			close(w.ready)
		}
		t.queues[lane] = nil
		t.deficit[lane] = 0
		t.inRing[lane] = false
	}
	r.ring = nil
	r.idx = 0
	r.arrived = false
}

// Snapshot renders the scheduler's counters for Stats.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Queued:            s.queued,
		InteractiveQueued: s.queuedLane[LaneInteractive],
		BatchQueued:       s.queuedLane[LaneBatch],
		Dropped:           s.dropped,
		QuotaShed:         s.quotaShed,
		BrownoutShed:      s.brownoutShed,
		BrownoutLevel:     s.brown.level,
		Tenants:           make(map[string]TenantStats, len(s.tenants)),
	}
	for name, t := range s.tenants {
		snap.Tenants[name] = TenantStats{
			Weight:       t.weight,
			Served:       t.served,
			Shed:         t.shed,
			QuotaShed:    t.quotaShed,
			BrownoutShed: t.brownoutShed,
			Dropped:      t.dropped,
			Queued:       t.queued,
		}
	}
	return snap
}
