package qos

import (
	"strings"
	"testing"
)

func TestParseConfigStrict(t *testing.T) {
	good := []byte(`{
		"tenants": {
			"a": {"weight": 2, "ratePerSec": 50, "burst": 10},
			"b": {"weight": 1}
		},
		"defaultTenant": {"weight": 1},
		"interactiveReserve": 1,
		"brownout": {"p99ThresholdMs": 250}
	}`)
	cfg, err := ParseConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenants["a"].Weight != 2 || cfg.Tenants["a"].RatePerSec != 50 {
		t.Fatalf("parsed config lost tenant a: %+v", cfg.Tenants["a"])
	}
	if cfg.InteractiveReserve != 1 || cfg.Brownout.P99ThresholdMs != 250 {
		t.Fatalf("parsed config lost top-level fields: %+v", cfg)
	}

	// A typoed key must fail loudly, not run with silent defaults.
	if _, err := ParseConfig([]byte(`{"tenant": {}}`)); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []struct {
		name string
		json string
	}{
		{"negative weight", `{"tenants": {"a": {"weight": -1}}}`},
		{"negative rate", `{"tenants": {"a": {"ratePerSec": -5}}}`},
		{"burst without rate", `{"tenants": {"a": {"burst": 10}}}`},
		{"empty tenant id", `{"tenants": {"": {"weight": 1}}}`},
		{"negative reserve", `{"interactiveReserve": -1}`},
		{"negative brownout threshold", `{"brownout": {"p99ThresholdMs": -1}}`},
	}
	for _, tc := range bad {
		if _, err := ParseConfig([]byte(tc.json)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBuilderValidates(t *testing.T) {
	if _, err := NewTenantConfig().Weight(-1).Build(); err == nil {
		t.Fatal("builder accepted a negative weight")
	}
	if _, err := NewConfig().Tenant("a", NewTenantConfig().Quota(0, 5)).Build(); err == nil {
		t.Fatal("builder accepted burst without rate")
	}
	cfg, err := NewConfig().
		Tenant("a", NewTenantConfig().Weight(3).Quota(100, 200)).
		DefaultTenant(NewTenantConfig().Weight(1)).
		InteractiveReserve(2).
		Brownout(BrownoutConfig{P99ThresholdMs: 100}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenants["a"].Weight != 3 || cfg.Tenants["a"].Burst != 200 {
		t.Fatalf("builder lost fields: %+v", cfg.Tenants["a"])
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{Tenants: map[string]TenantConfig{"a": {RatePerSec: 10}}}.withDefaults()
	if cfg.DefaultTenant.Weight != 1 || cfg.MaxTenants != 64 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if a := cfg.Tenants["a"]; a.Weight != 1 || a.Burst != 10 {
		t.Fatalf("tenant defaults not applied (burst should be one second of rate): %+v", a)
	}
	if b := cfg.Brownout; b.Window != 256 || b.ReevalEvery != 64 || b.MaxLevel != 8 || b.InteractiveShedDepth != 64 {
		t.Fatalf("brownout defaults not applied: %+v", b)
	}
}

func TestLaneString(t *testing.T) {
	if LaneInteractive.String() != "interactive" || LaneBatch.String() != "batch" {
		t.Fatal("lane names changed; gpad metric labels and loadgen summaries depend on them")
	}
}
