package qos

// Scheduler contract tests. The scheduler is deterministic given a
// grant sequence (DWRR has no randomness and with one worker grants
// serialize through release), so these tests pin exact grant orders
// rather than asserting on probabilities.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gpa/internal/apierr"
)

// acquireN enqueues n Acquire calls for tenant on lane against s; each
// granted waiter reports its tenant on order and releases immediately,
// so with one worker the recorded sequence is exactly the grant order.
func acquireN(t *testing.T, s *Scheduler, wg *sync.WaitGroup, order chan<- string, tenant string, lane Lane, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := s.Acquire(context.Background(), tenant, lane)
			if err != nil {
				t.Errorf("Acquire(%s): %v", tenant, err)
				return
			}
			order <- tenant
			release()
		}()
	}
}

// waitQueued polls until the scheduler reports depth queued waiters.
func waitQueued(t *testing.T, s *Scheduler, depth int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Snapshot().Queued == depth {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", depth, s.Snapshot().Queued)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// hog occupies one worker slot until the returned func is called.
func hog(t *testing.T, s *Scheduler, tenant string, lane Lane) func() {
	t.Helper()
	release, err := s.Acquire(context.Background(), tenant, lane)
	if err != nil {
		t.Fatalf("hog acquire: %v", err)
	}
	return release
}

// TestDWRRFairnessUnderImbalance is the scheduler half of the ISSUE's
// fairness pin: two equal-weight tenants with a 10:1 queued backlog
// imbalance are granted slots alternately while both stay backlogged —
// tenant b's entire backlog completes within a 1.5:1 tolerance of
// tenant a's completions, instead of waiting behind a's flood.
func TestDWRRFairnessUnderImbalance(t *testing.T) {
	s := NewScheduler(1, 0, Config{})
	done := hog(t, s, "a", LaneInteractive)

	const aJobs, bJobs = 30, 3
	order := make(chan string, aJobs+bJobs)
	var wg sync.WaitGroup
	acquireN(t, s, &wg, order, "a", LaneInteractive, aJobs)
	waitQueued(t, s, aJobs)
	acquireN(t, s, &wg, order, "b", LaneInteractive, bJobs)
	waitQueued(t, s, aJobs+bJobs)

	done()
	wg.Wait()
	close(order)

	var seq []string
	for tenant := range order {
		seq = append(seq, tenant)
	}
	if len(seq) != aJobs+bJobs {
		t.Fatalf("granted %d jobs, want %d", len(seq), aJobs+bJobs)
	}
	aBeforeLastB := 0
	bSeen := 0
	for _, tenant := range seq {
		if tenant == "b" {
			bSeen++
			if bSeen == bJobs {
				break
			}
		} else {
			aBeforeLastB++
		}
	}
	if bSeen != bJobs {
		t.Fatalf("only %d of %d b-grants happened", bSeen, bJobs)
	}
	// Strict alternation puts exactly bJobs a-grants before b's last
	// grant (the hog's tenant gets the first rotor stop); 1.5:1 is the
	// ISSUE tolerance.
	tolerance := 1.5
	if max := int(tolerance*bJobs) + 1; aBeforeLastB > max {
		t.Fatalf("tenant a completed %d jobs before tenant b's backlog of %d drained (want ≤ %d): 10:1 offered load leaked into completions: %v",
			aBeforeLastB, bJobs, max, seq[:bJobs+aBeforeLastB])
	}
}

// TestDWRRWeightedShare pins the weighted grant pattern: weight 3 vs
// weight 1, both backlogged, grants 3:1 per round.
func TestDWRRWeightedShare(t *testing.T) {
	cfg, err := NewConfig().
		Tenant("heavy", NewTenantConfig().Weight(3)).
		Tenant("light", NewTenantConfig().Weight(1)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(1, 0, cfg)
	done := hog(t, s, "heavy", LaneInteractive)

	order := make(chan string, 16)
	var wg sync.WaitGroup
	acquireN(t, s, &wg, order, "heavy", LaneInteractive, 12)
	waitQueued(t, s, 12)
	acquireN(t, s, &wg, order, "light", LaneInteractive, 4)
	waitQueued(t, s, 16)

	done()
	wg.Wait()
	close(order)

	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	i := 0
	for tenant := range order {
		if i < len(want) && tenant != want[i] {
			t.Fatalf("grant %d went to %s, want %s", i, tenant, want[i])
		}
		i++
	}
}

// TestInteractivePreemptsQueuedBatch: when a slot frees with both
// lanes queued, interactive work gets it regardless of queue order.
func TestInteractivePreemptsQueuedBatch(t *testing.T) {
	s := NewScheduler(1, 0, Config{})
	done := hog(t, s, "a", LaneInteractive)

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		release, err := s.Acquire(context.Background(), "a", LaneBatch)
		if err != nil {
			t.Errorf("batch acquire: %v", err)
			return
		}
		order <- "batch"
		release()
	}()
	waitQueued(t, s, 1)
	go func() {
		defer wg.Done()
		release, err := s.Acquire(context.Background(), "a", LaneInteractive)
		if err != nil {
			t.Errorf("interactive acquire: %v", err)
			return
		}
		order <- "interactive"
		release()
	}()
	waitQueued(t, s, 2)

	done()
	wg.Wait()
	close(order)
	if first := <-order; first != "interactive" {
		t.Fatalf("first freed slot went to %s; the batch waiter was queued first but interactive has priority", first)
	}
}

// TestInteractiveReserve: with workers=2 and reserve=1, batch may
// occupy at most one slot even when the second sits idle.
func TestInteractiveReserve(t *testing.T) {
	cfg, err := NewConfig().InteractiveReserve(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(2, 0, cfg)

	releaseB1 := hog(t, s, "a", LaneBatch)
	// Second batch job must queue: the reserve keeps one slot
	// interactive-only.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(ctx, "a", LaneBatch); !errors.Is(err, apierr.ErrCanceled) {
		t.Fatalf("second batch job got a slot past the interactive reserve (err=%v)", err)
	}
	// Interactive work takes the reserved slot immediately.
	releaseI := hog(t, s, "a", LaneInteractive)
	releaseI()
	releaseB1()
}

// TestQueueBoundSemantics preserves the engine's MaxQueue contract:
// negative = no queue at all, positive = bound, with ErrQueueFull.
func TestQueueBoundSemantics(t *testing.T) {
	s := NewScheduler(1, -1, Config{})
	done := hog(t, s, "a", LaneInteractive)
	if _, err := s.Acquire(context.Background(), "a", LaneInteractive); !errors.Is(err, apierr.ErrQueueFull) {
		t.Fatalf("MaxQueue<0 with a busy worker: err=%v, want ErrQueueFull", err)
	}
	done()

	s = NewScheduler(1, 1, Config{})
	done = hog(t, s, "a", LaneInteractive)
	var wg sync.WaitGroup
	order := make(chan string, 1)
	acquireN(t, s, &wg, order, "a", LaneInteractive, 1)
	waitQueued(t, s, 1)
	if _, err := s.Acquire(context.Background(), "a", LaneInteractive); !errors.Is(err, apierr.ErrQueueFull) {
		t.Fatalf("queue past MaxQueue: err=%v, want ErrQueueFull", err)
	}
	if got := s.Snapshot().Tenants["a"].Shed; got != 1 {
		t.Fatalf("tenant shed count = %d, want 1", got)
	}
	done()
	wg.Wait()
}

// TestCanceledWaiterIsSkipped: a waiter whose ctx dies while queued is
// dropped, and later grants skip it without cost.
func TestCanceledWaiterIsSkipped(t *testing.T) {
	s := NewScheduler(1, 0, Config{})
	done := hog(t, s, "a", LaneInteractive)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "a", LaneInteractive)
		errCh <- err
	}()
	waitQueued(t, s, 1)

	var wg sync.WaitGroup
	order := make(chan string, 1)
	acquireN(t, s, &wg, order, "b", LaneInteractive, 1)
	waitQueued(t, s, 2)

	cancel()
	if err := <-errCh; !errors.Is(err, apierr.ErrCanceled) {
		t.Fatalf("canceled waiter: err=%v, want ErrCanceled", err)
	}
	done()
	wg.Wait()
	if got := <-order; got != "b" {
		t.Fatalf("slot went to %s", got)
	}
	snap := s.Snapshot()
	if snap.Dropped != 1 || snap.Tenants["a"].Dropped != 1 {
		t.Fatalf("dropped = %d / tenant a dropped = %d, want 1/1", snap.Dropped, snap.Tenants["a"].Dropped)
	}
	if snap.Queued != 0 {
		t.Fatalf("queued = %d after drain, want 0", snap.Queued)
	}
}

// TestDrainAbandonsBatchKeepsInteractive is the scheduler half of the
// shutdown-ordering satellite: Drain fails queued batch work with
// ErrShuttingDown immediately, keeps scheduling queued interactive
// work, and Halt abandons the rest.
func TestDrainAbandonsBatchKeepsInteractive(t *testing.T) {
	s := NewScheduler(1, 0, Config{})
	done := hog(t, s, "a", LaneInteractive)

	batchErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(context.Background(), "a", LaneBatch)
		batchErr <- err
	}()
	waitQueued(t, s, 1)
	interactiveOK := make(chan error, 1)
	go func() {
		release, err := s.Acquire(context.Background(), "a", LaneInteractive)
		if err == nil {
			release()
		}
		interactiveOK <- err
	}()
	waitQueued(t, s, 2)

	s.Drain()
	if err := <-batchErr; !errors.Is(err, apierr.ErrShuttingDown) {
		t.Fatalf("queued batch job after Drain: err=%v, want ErrShuttingDown", err)
	}
	select {
	case err := <-interactiveOK:
		t.Fatalf("queued interactive job resolved during drain before the worker freed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// New batch work is refused outright during a drain.
	if _, err := s.Acquire(context.Background(), "a", LaneBatch); !errors.Is(err, apierr.ErrShuttingDown) {
		t.Fatalf("new batch job during drain: err=%v, want ErrShuttingDown", err)
	}
	done()
	if err := <-interactiveOK; err != nil {
		t.Fatalf("queued interactive job was not drained: %v", err)
	}

	// Halt abandons whatever interactive work is still queued.
	done = hog(t, s, "a", LaneInteractive)
	go func() {
		_, err := s.Acquire(context.Background(), "a", LaneInteractive)
		interactiveOK <- err
	}()
	waitQueued(t, s, 1)
	s.Halt()
	if err := <-interactiveOK; !errors.Is(err, apierr.ErrShuttingDown) {
		t.Fatalf("queued interactive job after Halt: err=%v, want ErrShuttingDown", err)
	}
	done()
}

// TestQuotaBilling drives the token bucket through a fake clock: burst
// then exhaustion with a usable Retry-After, refill after waiting, and
// complete isolation of an in-quota tenant.
func TestQuotaBilling(t *testing.T) {
	cfg, err := NewConfig().
		Tenant("metered", NewTenantConfig().Quota(2, 2)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(4, 0, cfg)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if err := s.Charge("metered"); err != nil {
			t.Fatalf("charge %d within burst: %v", i, err)
		}
	}
	err = s.Charge("metered")
	if !errors.Is(err, apierr.ErrQuotaExceeded) {
		t.Fatalf("over-burst charge: err=%v, want ErrQuotaExceeded", err)
	}
	var qe *apierr.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("quota error is %T, not *apierr.QuotaError", err)
	}
	if qe.Tenant != "metered" || qe.RetryAfter <= 0 || qe.RetryAfter > time.Second {
		t.Fatalf("quota error = %+v; want tenant metered and 0 < RetryAfter ≤ 1s at 2 tokens/s", qe)
	}
	// The unmetered default tenant is never shed by someone else's
	// exhausted bucket.
	for i := 0; i < 100; i++ {
		if err := s.Charge(""); err != nil {
			t.Fatalf("in-quota tenant shed by another tenant's quota: %v", err)
		}
	}
	// Tokens accrue while waiting.
	now = now.Add(time.Second)
	if err := s.Charge("metered"); err != nil {
		t.Fatalf("charge after refill: %v", err)
	}
	snap := s.Snapshot()
	if snap.QuotaShed != 1 || snap.Tenants["metered"].QuotaShed != 1 {
		t.Fatalf("quotaShed = %d / tenant = %d, want 1/1", snap.QuotaShed, snap.Tenants["metered"].QuotaShed)
	}
	if got := snap.Tenants[DefaultTenantName].QuotaShed; got != 0 {
		t.Fatalf("default tenant quotaShed = %d, want 0", got)
	}
}

// TestTenantCardinalityBound: past MaxTenants, fresh IDs collapse into
// the shared overflow class instead of growing scheduler state.
func TestTenantCardinalityBound(t *testing.T) {
	cfg, err := NewConfig().MaxTenants(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(1, 0, cfg)
	for _, id := range []string{"t1", "t2", "t3", "t4", "t5", "t6"} {
		s.Served(id)
	}
	snap := s.Snapshot()
	if _, ok := snap.Tenants[OverflowTenantName]; !ok {
		t.Fatalf("no overflow class after %d tenants: %v", len(snap.Tenants), snap.Tenants)
	}
	if len(snap.Tenants) > 4+1 {
		t.Fatalf("tenant cardinality %d exceeded MaxTenants+overflow: %v", len(snap.Tenants), snap.Tenants)
	}
	if got := snap.Tenants[OverflowTenantName].Served; got < 2 {
		t.Fatalf("overflow class served = %d, want ≥ 2", got)
	}
}
