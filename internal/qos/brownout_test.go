package qos

import "testing"

// brownoutFor builds a controller with a tight window for direct
// state-machine tests.
func brownoutFor(t *testing.T) brownout {
	t.Helper()
	cfg := BrownoutConfig{
		P99ThresholdMs:       100,
		Window:               8,
		ReevalEvery:          4,
		MaxLevel:             4,
		InteractiveShedDepth: 10,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return newBrownout(cfg)
}

func observeN(b *brownout, waitMs float64, n int) {
	for i := 0; i < n; i++ {
		b.observe(waitMs)
	}
}

func TestBrownoutLevelStateMachine(t *testing.T) {
	b := brownoutFor(t)
	if b.level != 0 {
		t.Fatalf("initial level %d", b.level)
	}
	// Healthy waits: level stays 0.
	observeN(&b, 1, 8)
	if b.level != 0 {
		t.Fatalf("level %d after healthy waits, want 0", b.level)
	}
	// Saturated waits: one step up per re-evaluation, capped at max.
	observeN(&b, 500, 4)
	if b.level != 1 {
		t.Fatalf("level %d after first saturated window, want 1", b.level)
	}
	observeN(&b, 500, 4*10)
	if b.level != 4 {
		t.Fatalf("level %d after sustained saturation, want cap 4", b.level)
	}
	// Recovery: p99 under half the threshold steps back down.
	observeN(&b, 1, 4*10)
	if b.level != 0 {
		t.Fatalf("level %d after recovery, want 0", b.level)
	}
	// Hysteresis: p99 between threshold/2 and threshold holds steady.
	observeN(&b, 500, 4)
	observeN(&b, 75, 8) // window now all 75ms
	lvl := b.level
	observeN(&b, 75, 4*4)
	if b.level != lvl {
		t.Fatalf("level moved %d→%d inside the hysteresis band", lvl, b.level)
	}
}

// TestBrownoutShedsBatchFirst pins the ISSUE's acceptance criterion:
// below MaxLevel only batch-lane arrivals are shed — deterministically,
// level/MaxLevel of them — and interactive arrivals are shed only at
// MaxLevel once the interactive queue is past the reserve depth.
func TestBrownoutShedsBatchFirst(t *testing.T) {
	b := brownoutFor(t)
	observeN(&b, 500, 4*2) // level 2 of 4: shed half of batch
	if b.level != 2 {
		t.Fatalf("level %d, want 2", b.level)
	}
	shed := 0
	for i := 0; i < 10; i++ {
		if b.shed(LaneBatch, 0) {
			shed++
		}
	}
	if shed != 5 {
		t.Fatalf("level 2/4 shed %d of 10 batch arrivals, want exactly 5 (deterministic accumulator)", shed)
	}
	for i := 0; i < 100; i++ {
		if b.shed(LaneInteractive, 1000) {
			t.Fatal("interactive arrival shed below MaxLevel")
		}
	}

	observeN(&b, 500, 4*2) // level 4 = MaxLevel
	if b.level != 4 {
		t.Fatalf("level %d, want 4", b.level)
	}
	for i := 0; i < 10; i++ {
		if !b.shed(LaneBatch, 0) {
			t.Fatal("MaxLevel passed a batch arrival")
		}
	}
	// Interactive survives MaxLevel while its queue is within depth...
	if b.shed(LaneInteractive, 10) {
		t.Fatal("interactive shed at MaxLevel with queue within InteractiveShedDepth")
	}
	// ...and is shed only once the queue is past it.
	if !b.shed(LaneInteractive, 11) {
		t.Fatal("interactive not shed at MaxLevel past InteractiveShedDepth")
	}
}

func TestBrownoutDisabled(t *testing.T) {
	b := newBrownout(BrownoutConfig{}.withDefaults())
	observeN(&b, 1e6, 1000)
	if b.level != 0 || b.shed(LaneBatch, 0) {
		t.Fatal("disabled controller (threshold 0) shed work")
	}
}
