// Package qos is the tenant-aware admission layer in front of the
// serving engine: per-tenant queues scheduled by deficit-weighted
// round robin, two priority lanes (interactive work preempts queued
// batch work up to a configurable reserve), per-tenant token-bucket
// quotas, and a queue-delay brownout controller that sheds batch-lane
// load before interactive work when the engine saturates. Relative to
// the paper's Figure 2 it sits entirely upstream of the pipeline —
// admission decides who runs the measurement/blame/advise stages next,
// never what any stage computes, so nothing here may feed a digest or
// stage key (tenant and lane are transport-only metadata, excluded
// from every content-addressed key exactly like TraceID).
//
// The configuration surface follows the self-validating config/builder
// idiom: a Config (or TenantConfig) is either built through its
// builder, which validates at Build time, or parsed from JSON and
// validated by ParseConfig, so a Scheduler never observes an invalid
// or half-defaulted configuration.
package qos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Lane is an admission priority lane. The zero value is
// LaneInteractive so plain library callers get the low-latency lane
// without opting in; cmd/gpad routes /v1/batch and /v1/sweep to
// LaneBatch.
type Lane int

const (
	// LaneInteractive is the low-latency lane (advise/profile): it may
	// use every worker slot and is the last lane the brownout
	// controller sheds.
	LaneInteractive Lane = iota
	// LaneBatch is the throughput lane (batch/sweep): its concurrency
	// is capped at workers minus the interactive reserve, queued batch
	// work is abandoned first on shutdown, and the brownout controller
	// sheds it first under overload.
	LaneBatch
	numLanes
)

// String names the lane ("interactive", "batch").
func (l Lane) String() string {
	switch l {
	case LaneInteractive:
		return "interactive"
	case LaneBatch:
		return "batch"
	}
	return fmt.Sprintf("Lane(%d)", int(l))
}

// TenantConfig is one tenant's admission parameters.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin share (≥1; 0 means
	// "use the default of 1"). Under saturation a tenant with weight 3
	// completes three jobs for every one job of a weight-1 tenant.
	Weight int `json:"weight,omitempty"`
	// RatePerSec is the tenant's token-bucket refill rate in requests
	// per second (0 = no quota). Every request — cache hits and
	// coalesced singleflight followers included — costs one token, so
	// quota accounting bills work to whoever asked for it, not to
	// whoever happened to simulate it.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the bucket depth (0 with a nonzero rate = one second's
	// worth of tokens, at least 1).
	Burst float64 `json:"burst,omitempty"`
}

// Validate reports the first invalid field.
func (c TenantConfig) Validate() error {
	if c.Weight < 0 {
		return fmt.Errorf("qos: tenant weight %d is negative", c.Weight)
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("qos: tenant ratePerSec %v is negative", c.RatePerSec)
	}
	if c.Burst < 0 {
		return fmt.Errorf("qos: tenant burst %v is negative", c.Burst)
	}
	if c.Burst > 0 && c.RatePerSec == 0 {
		return errors.New("qos: tenant burst set without ratePerSec (a bucket that never refills)")
	}
	return nil
}

// withDefaults resolves the zero-value conventions.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.RatePerSec > 0 && c.Burst == 0 {
		c.Burst = c.RatePerSec
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// BrownoutConfig tunes the overload self-defense controller. The
// controller watches the p99 of queued-wait over a sliding window of
// grant observations; when it exceeds P99ThresholdMs the brownout
// level steps up and a deterministic fraction level/MaxLevel of
// batch-lane arrivals is shed. Interactive arrivals are shed only at
// MaxLevel and only once the interactive queue itself has grown past
// InteractiveShedDepth — the "reserve exhausted" condition.
type BrownoutConfig struct {
	// P99ThresholdMs is the queued-wait p99 (milliseconds) above which
	// the level steps up; the level steps back down when p99 falls
	// under half the threshold. 0 disables the controller.
	P99ThresholdMs float64 `json:"p99ThresholdMs,omitempty"`
	// Window is how many recent grant waits the p99 is computed over
	// (0 = 256).
	Window int `json:"window,omitempty"`
	// ReevalEvery re-evaluates the level every N observations (0 = 64).
	ReevalEvery int `json:"reevalEvery,omitempty"`
	// MaxLevel is the number of brownout steps (0 = 8). At level L the
	// batch shed fraction is L/MaxLevel.
	MaxLevel int `json:"maxLevel,omitempty"`
	// InteractiveShedDepth is the interactive queue depth beyond which
	// a MaxLevel brownout sheds interactive arrivals too (0 = 64;
	// negative = never shed interactive).
	InteractiveShedDepth int `json:"interactiveShedDepth,omitempty"`
}

// Validate reports the first invalid field.
func (c BrownoutConfig) Validate() error {
	if c.P99ThresholdMs < 0 {
		return fmt.Errorf("qos: brownout p99ThresholdMs %v is negative", c.P99ThresholdMs)
	}
	if c.Window < 0 || c.ReevalEvery < 0 || c.MaxLevel < 0 {
		return errors.New("qos: brownout window/reevalEvery/maxLevel must be non-negative")
	}
	return nil
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Window == 0 {
		c.Window = 256
	}
	if c.ReevalEvery == 0 {
		c.ReevalEvery = 64
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 8
	}
	if c.InteractiveShedDepth == 0 {
		c.InteractiveShedDepth = 64
	}
	return c
}

// DefaultTenantName is the tenant requests without an X-Tenant-Id (or
// an empty Request.Tenant) are accounted under.
const DefaultTenantName = "default"

// OverflowTenantName is the shared accounting class tenants collapse
// into once MaxTenants distinct IDs have been seen — the scheduler's
// self-defense against unbounded label cardinality from adversarial or
// misconfigured clients.
const OverflowTenantName = "other"

// Config is the full admission configuration for one scheduler.
type Config struct {
	// Tenants maps tenant IDs to their explicit config; IDs not listed
	// get DefaultTenant.
	Tenants map[string]TenantConfig `json:"tenants,omitempty"`
	// DefaultTenant applies to every tenant without an explicit entry
	// (zero value: weight 1, no quota).
	DefaultTenant TenantConfig `json:"defaultTenant"`
	// InteractiveReserve is the number of worker slots batch-lane work
	// may never occupy (clamped to workers-1). 0 = no reserve: lanes
	// share all slots and differ only in scheduling priority and
	// shutdown/brownout treatment.
	InteractiveReserve int `json:"interactiveReserve,omitempty"`
	// MaxTenants bounds distinct dynamically-created tenant states
	// (0 = 64); beyond it new IDs share the "other" class.
	MaxTenants int `json:"maxTenants,omitempty"`
	// Brownout tunes overload self-defense (zero value: disabled).
	Brownout BrownoutConfig `json:"brownout"`
}

// Validate reports the first invalid field anywhere in the config.
func (c Config) Validate() error {
	if c.InteractiveReserve < 0 {
		return fmt.Errorf("qos: interactiveReserve %d is negative", c.InteractiveReserve)
	}
	if c.MaxTenants < 0 {
		return fmt.Errorf("qos: maxTenants %d is negative", c.MaxTenants)
	}
	if err := c.DefaultTenant.Validate(); err != nil {
		return fmt.Errorf("defaultTenant: %w", err)
	}
	for name, tc := range c.Tenants {
		if name == "" {
			return errors.New("qos: tenant with empty ID (use defaultTenant instead)")
		}
		if err := tc.Validate(); err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	return c.Brownout.Validate()
}

func (c Config) withDefaults() Config {
	c.DefaultTenant = c.DefaultTenant.withDefaults()
	if c.MaxTenants == 0 {
		c.MaxTenants = 64
	}
	c.Brownout = c.Brownout.withDefaults()
	tenants := make(map[string]TenantConfig, len(c.Tenants))
	for name, tc := range c.Tenants {
		tenants[name] = tc.withDefaults()
	}
	c.Tenants = tenants
	return c
}

// ParseConfig decodes a JSON admission config strictly (unknown fields
// are errors, so a typoed key fails loudly instead of silently running
// with defaults) and validates it.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("qos: parse config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// TenantConfigBuilder builds a validated TenantConfig fluently; Build
// is the single exit and refuses invalid combinations, so callers can
// chain setters without checking each one.
type TenantConfigBuilder struct {
	tc TenantConfig
}

// NewTenantConfig starts a tenant config builder (weight 1, no quota).
func NewTenantConfig() *TenantConfigBuilder { return &TenantConfigBuilder{} }

// Weight sets the DWRR share.
func (b *TenantConfigBuilder) Weight(w int) *TenantConfigBuilder {
	b.tc.Weight = w
	return b
}

// Quota sets the token-bucket rate and burst.
func (b *TenantConfigBuilder) Quota(ratePerSec, burst float64) *TenantConfigBuilder {
	b.tc.RatePerSec = ratePerSec
	b.tc.Burst = burst
	return b
}

// Build validates and returns the config.
func (b *TenantConfigBuilder) Build() (TenantConfig, error) {
	if err := b.tc.Validate(); err != nil {
		return TenantConfig{}, err
	}
	return b.tc, nil
}

// ConfigBuilder builds a validated Config fluently.
type ConfigBuilder struct {
	cfg Config
	err error
}

// NewConfig starts a config builder.
func NewConfig() *ConfigBuilder { return &ConfigBuilder{} }

// Tenant adds one tenant built from its own builder.
func (b *ConfigBuilder) Tenant(name string, tb *TenantConfigBuilder) *ConfigBuilder {
	tc, err := tb.Build()
	if err != nil && b.err == nil {
		b.err = fmt.Errorf("tenant %q: %w", name, err)
	}
	if b.cfg.Tenants == nil {
		b.cfg.Tenants = map[string]TenantConfig{}
	}
	b.cfg.Tenants[name] = tc
	return b
}

// DefaultTenant sets the config applied to unlisted tenants.
func (b *ConfigBuilder) DefaultTenant(tb *TenantConfigBuilder) *ConfigBuilder {
	tc, err := tb.Build()
	if err != nil && b.err == nil {
		b.err = fmt.Errorf("defaultTenant: %w", err)
	}
	b.cfg.DefaultTenant = tc
	return b
}

// InteractiveReserve sets the batch-excluded worker slots.
func (b *ConfigBuilder) InteractiveReserve(n int) *ConfigBuilder {
	b.cfg.InteractiveReserve = n
	return b
}

// MaxTenants bounds dynamic tenant-state cardinality.
func (b *ConfigBuilder) MaxTenants(n int) *ConfigBuilder {
	b.cfg.MaxTenants = n
	return b
}

// Brownout sets the overload controller config.
func (b *ConfigBuilder) Brownout(bc BrownoutConfig) *ConfigBuilder {
	b.cfg.Brownout = bc
	return b
}

// Build validates and returns the config.
func (b *ConfigBuilder) Build() (Config, error) {
	if b.err != nil {
		return Config{}, b.err
	}
	if err := b.cfg.Validate(); err != nil {
		return Config{}, err
	}
	return b.cfg, nil
}
