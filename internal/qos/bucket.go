package qos

import "time"

// bucket is a lazily-refilled token bucket. It is not safe for
// concurrent use; the Scheduler guards every bucket with its own lock.
type bucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth
	tok   float64
	last  time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tok: burst, last: now}
}

// take spends one token if available. When the bucket is empty it
// reports how long until one token accrues at the configured rate —
// the earliest useful retry time, which gpad turns into Retry-After.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if now.After(b.last) {
		b.tok += b.rate * now.Sub(b.last).Seconds()
		if b.tok > b.burst {
			b.tok = b.burst
		}
		b.last = now
	}
	if b.tok >= 1 {
		b.tok--
		return true, 0
	}
	retryAfter = time.Duration((1 - b.tok) / b.rate * float64(time.Second))
	if retryAfter <= 0 {
		retryAfter = time.Millisecond
	}
	return false, retryAfter
}
