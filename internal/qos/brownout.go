package qos

import "sort"

// brownout is the overload self-defense controller: a level stepped up
// and down from the p99 of queued-wait over a sliding window of grant
// observations, and per-lane deterministic fractional shedders driven
// by that level. Everything is deliberately rand-free: at level L out
// of MaxLevel, an error-accumulator sheds exactly ⌈L/MaxLevel·N⌉ of
// every N batch arrivals, so tests can pin the shed pattern instead of
// asserting on probabilities. Not safe for concurrent use; the
// Scheduler guards it with its own lock.
//
// The state machine is a single integer level:
//
//	level 0:         no shedding (healthy)
//	0 < level < max: shed level/max of batch-lane arrivals
//	level == max:    shed all batch arrivals; shed interactive
//	                 arrivals only while the interactive queue is
//	                 deeper than InteractiveShedDepth
//
// Each ReevalEvery observations: p99 > threshold steps the level up
// one; p99 < threshold/2 steps it down one (hysteresis, so the level
// does not oscillate around the threshold).
type brownout struct {
	cfg   BrownoutConfig
	win   []float64 // ring buffer of grant waits, milliseconds
	idx   int
	n     int // observations in win (≤ len(win))
	since int // observations since the last re-evaluation
	level int
	acc   [numLanes]float64 // per-lane shed accumulators
	scr   []float64         // p99 scratch, reused across evals
}

func newBrownout(cfg BrownoutConfig) brownout {
	return brownout{cfg: cfg, win: make([]float64, cfg.Window), scr: make([]float64, 0, cfg.Window)}
}

// enabled reports whether the controller is active at all.
func (b *brownout) enabled() bool { return b.cfg.P99ThresholdMs > 0 }

// observe records one grant's queued wait and periodically re-evaluates
// the level.
func (b *brownout) observe(waitMs float64) {
	if !b.enabled() {
		return
	}
	b.win[b.idx] = waitMs
	b.idx = (b.idx + 1) % len(b.win)
	if b.n < len(b.win) {
		b.n++
	}
	b.since++
	if b.since < b.cfg.ReevalEvery {
		return
	}
	b.since = 0
	p99 := b.p99()
	switch {
	case p99 > b.cfg.P99ThresholdMs:
		if b.level < b.cfg.MaxLevel {
			b.level++
		}
	case p99 < b.cfg.P99ThresholdMs/2:
		if b.level > 0 {
			b.level--
		}
	}
}

// p99 computes the 99th percentile of the current window.
func (b *brownout) p99() float64 {
	if b.n == 0 {
		return 0
	}
	b.scr = append(b.scr[:0], b.win[:b.n]...)
	sort.Float64s(b.scr)
	i := (b.n * 99) / 100
	if i >= b.n {
		i = b.n - 1
	}
	return b.scr[i]
}

// shed decides whether to reject one arriving request on lane.
// interactiveQueued is the current live interactive queue depth (the
// reserve-exhausted signal for the last-resort interactive shed).
func (b *brownout) shed(lane Lane, interactiveQueued int) bool {
	if !b.enabled() || b.level == 0 {
		return false
	}
	if lane == LaneInteractive {
		if b.level < b.cfg.MaxLevel {
			return false
		}
		if b.cfg.InteractiveShedDepth < 0 || interactiveQueued <= b.cfg.InteractiveShedDepth {
			return false
		}
		return true
	}
	b.acc[lane] += float64(b.level) / float64(b.cfg.MaxLevel)
	if b.acc[lane] >= 1 {
		b.acc[lane]--
		return true
	}
	return false
}
