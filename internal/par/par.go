// Package par provides the bounded-worker fan-out primitive shared by
// the simulator (concurrent SMs), the benchmark driver (row and
// cross-architecture sweeps), and the per-row measurement runner. It
// carries no pipeline semantics of its own: callers store results by
// index, so every use preserves the deterministic ordering the
// pipeline's outputs are compared by. In the Figure 2 pipeline it is
// the concurrency substrate under every stage, which is why the
// bit-identical-at-any-parallelism contract reduces to the index
// discipline here.
package par

import "sync"

// Do invokes fn(0..n-1) using at most workers concurrent goroutines
// (workers <= 1 runs inline, in order). fn is responsible for storing
// its own result or error by index; callers that need sequential error
// semantics scan their results in index order after Do returns.
func Do(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
