package structure

import (
	"strings"
	"testing"

	"gpa/internal/sass"
)

const moduleSrc = `
.module sm_70
.func __internal_accurate_pow device
.line mathlib.cu 900
	MUFU.RCP R8, R8 {S:1, W:5}
	RET {Q:5}
.func mainkern global
.line app.cu 10
	MOV R0, 0x0 {S:2}
OUTER:
.line app.cu 12
	MOV R1, 0x0 {S:2}
INNER:
.line app.cu 14
	FFMA R2, R2, R3, R2 {S:2}
.inline app.cu 15 helper
.line helper.cu 3
	FMUL R4, R4, R5 {S:4}
.inlineend
.line app.cu 16
	IADD R1, R1, 0x1 {S:4}
	ISETP P0, R1, 0x8 {S:4}
	@P0 BRA INNER {S:5}
.line app.cu 18
	CAL __internal_accurate_pow {S:2}
	IADD R0, R0, 0x1 {S:4}
	ISETP P1, R0, 0x4 {S:4}
	@P1 BRA OUTER {S:5}
	EXIT
`

func analyze(t *testing.T) *Structure {
	t.Helper()
	mod, err := sass.Assemble(moduleSrc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAnalyzeBuildsAllFunctions(t *testing.T) {
	st := analyze(t)
	if st.Func("mainkern") == nil || st.Func("__internal_accurate_pow") == nil {
		t.Fatal("missing function structures")
	}
	if st.Func("nothere") != nil {
		t.Error("unknown function should be nil")
	}
	devs := st.DeviceFunctions()
	if len(devs) != 1 || devs[0].Fn.Name != "__internal_accurate_pow" {
		t.Errorf("DeviceFunctions = %v", devs)
	}
	fs := st.Func("mainkern")
	if got := len(fs.CFG.Loops()); got != 2 {
		t.Errorf("mainkern loops = %d, want 2", got)
	}
}

func TestIsMathFunctionName(t *testing.T) {
	cases := map[string]bool{
		"__internal_accurate_pow": true,
		"__cuda_sin":              true,
		"__nv_exp":                true,
		"rsqrtf":                  true,
		"mainkern":                false,
		"tensor_transpose":        false,
		"findRangeK":              false,
	}
	for name, want := range cases {
		if got := IsMathFunctionName(name); got != want {
			t.Errorf("IsMathFunctionName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestInMathFunction(t *testing.T) {
	st := analyze(t)
	math := st.Func("__internal_accurate_pow")
	if !math.InMathFunction(0) {
		t.Error("instructions of a math routine must report true")
	}
	main := st.Func("mainkern")
	if main.InMathFunction(0) {
		t.Error("plain kernel instruction misreported as math")
	}
	// Out of range is false, not a panic.
	if main.InMathFunction(-1) || main.InMathFunction(999) {
		t.Error("out-of-range index must be false")
	}
}

func TestInMathFunctionViaInlineStack(t *testing.T) {
	src := `
.func k global
.line a.cu 1
	MOV R0, 0x0 {S:2}
.inline a.cu 2 __internal_accurate_exp
.line mathlib.cu 40
	MUFU.RCP R1, R1 {S:1, W:0}
.inlineend
.line a.cu 3
	EXIT {Q:0}
`
	mod := sass.MustAssemble(src)
	st, err := Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Func("k")
	if fs.InMathFunction(0) {
		t.Error("instruction before the inline frame misreported")
	}
	if !fs.InMathFunction(1) {
		t.Error("inlined math body must report true")
	}
	if fs.InMathFunction(2) {
		t.Error("instruction after .inlineend misreported")
	}
}

func TestLocationRendering(t *testing.T) {
	st := analyze(t)
	fs := st.Func("mainkern")
	// Instruction 2 (FFMA) is inside both loops; location should name
	// the inner loop head line (12).
	loc := fs.Location(2)
	if !strings.Contains(loc, "at Line 14") {
		t.Errorf("Location(2) = %q, want line 14", loc)
	}
	if !strings.Contains(loc, "in Loop at Line") {
		t.Errorf("Location(2) = %q, want loop context", loc)
	}
	// Instruction 0 is outside any loop.
	loc0 := fs.Location(0)
	if strings.Contains(loc0, "in Loop") {
		t.Errorf("Location(0) = %q, should not be in a loop", loc0)
	}
	if fs.Location(-5) != "<unknown>" {
		t.Error("out-of-range Location should be <unknown>")
	}
}

func TestSourceContext(t *testing.T) {
	st := analyze(t)
	fs := st.Func("mainkern")
	if got := fs.SourceContext(0); got != "mainkern at app.cu:10" {
		t.Errorf("SourceContext(0) = %q", got)
	}
	// The inlined FMUL reports the inlined function's name with its own
	// source position.
	got := fs.SourceContext(3)
	if !strings.Contains(got, "helper") || !strings.Contains(got, "helper.cu:3") {
		t.Errorf("SourceContext(3) = %q, want helper at helper.cu:3", got)
	}
	if got := fs.SourceContext(-1); got != "mainkern" {
		t.Errorf("out-of-range SourceContext = %q", got)
	}
}

func TestAnalyzeRejectsBadModule(t *testing.T) {
	mod := &sass.Module{Arch: 70, Functions: []*sass.Function{{
		Name: "broken", Labels: map[string]int{},
	}}}
	if _, err := Analyze(mod); err == nil {
		t.Error("empty function must fail CFG construction")
	}
}
