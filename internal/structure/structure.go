// Package structure recovers GPA's program-structure file from a module
// (Section 3's static analyzer, the offline half of Figure 2): function
// symbols annotated with visibility, loop nests (via control flow
// analysis), inline stacks, and source line mappings. Input is a
// *sass.Module; output a *Structure of per-function FuncStructure
// values joining the CFG with line information. Optimizers use it to
// scope stalls to lines, loops, and functions (Equation 5's loop
// scopes), and the report renderer uses it to print hotspot locations
// the way Figure 8 of the paper does ("0x1620 at Line 34 in Loop at
// Line 30").
package structure

import (
	"fmt"
	"strings"

	"gpa/internal/cfg"
	"gpa/internal/sass"
)

// FuncStructure bundles one function's structural facts.
type FuncStructure struct {
	Fn  *sass.Function
	CFG *cfg.Graph
}

// Structure is the whole-module program structure.
type Structure struct {
	Module *sass.Module
	Funcs  map[string]*FuncStructure
}

// Analyze builds control flow graphs and loop nests for every function.
func Analyze(mod *sass.Module) (*Structure, error) {
	s := &Structure{Module: mod, Funcs: map[string]*FuncStructure{}}
	for _, fn := range mod.Functions {
		g, err := cfg.Build(fn)
		if err != nil {
			return nil, fmt.Errorf("structure: %w", err)
		}
		s.Funcs[fn.Name] = &FuncStructure{Fn: fn, CFG: g}
	}
	return s, nil
}

// Func returns the structure of a named function, or nil.
func (s *Structure) Func(name string) *FuncStructure { return s.Funcs[name] }

// DeviceFunctions lists functions with device visibility.
func (s *Structure) DeviceFunctions() []*FuncStructure {
	var out []*FuncStructure
	for _, fn := range s.Module.Functions {
		if fn.Visibility == sass.VisDevice {
			out = append(out, s.Funcs[fn.Name])
		}
	}
	return out
}

// mathNameFragments identify CUDA math-library functions (the targets of
// the Fast Math optimizer) by symbol or inline-frame name.
var mathNameFragments = []string{
	"__cuda_", "__internal_", "__nv_", "sqrt", "rsqrt", "exp", "log",
	"pow", "sin", "cos", "tan", "erf", "cbrt", "hypot", "fdim",
}

// IsMathFunctionName reports whether a function name looks like a CUDA
// math-library routine.
func IsMathFunctionName(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range mathNameFragments {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// InMathFunction reports whether instruction i of fn executes math
// library code: either the containing function is a math routine or the
// instruction's inline stack passes through one.
func (f *FuncStructure) InMathFunction(i int) bool {
	if IsMathFunctionName(f.Fn.Name) {
		return true
	}
	if i < 0 || i >= len(f.Fn.Lines) {
		return false
	}
	for _, fr := range f.Fn.Lines[i].Inline {
		if IsMathFunctionName(fr.Function) {
			return true
		}
	}
	return false
}

// Location renders the Figure 8 location string for instruction i:
// "0xPC at Line N [in Loop at Line M]".
func (f *FuncStructure) Location(i int) string {
	if i < 0 || i >= len(f.Fn.Instrs) {
		return "<unknown>"
	}
	pc := f.Fn.Instrs[i].PC
	li := f.Fn.Lines[i]
	s := fmt.Sprintf("0x%x at Line %d", pc, li.Line)
	if l := f.CFG.InnermostLoop(i); l != nil {
		s += fmt.Sprintf(" in Loop at Line %d", l.HeadLine.Line)
	}
	return s
}

// SourceContext renders "FUNC at FILE:LINE" with the outermost inline
// caller when present.
func (f *FuncStructure) SourceContext(i int) string {
	if i < 0 || i >= len(f.Fn.Lines) {
		return f.Fn.Name
	}
	li := f.Fn.Lines[i]
	name := f.Fn.Name
	file, line := li.File, li.Line
	if len(li.Inline) > 0 {
		// Present as the inlined function within its caller's frame.
		innermost := li.Inline[len(li.Inline)-1]
		name = innermost.Function
	}
	if file == "" {
		return name
	}
	return fmt.Sprintf("%s at %s:%d", name, file, line)
}

// LoopsOf lists the loops of a function, outermost-first order by
// header.
func (f *FuncStructure) LoopsOf() []*cfg.Loop { return f.CFG.Loops() }
