// Package cubin implements a binary container for GPU modules, playing
// the role NVIDIA CUBIN files play for GPA (Section 3, Figure 2's
// "binaries" input): it stores an architecture flag, function symbols
// with their visibility (global kernels vs device functions),
// fixed-length encoded instruction streams, a line-mapping table, and
// inline stacks. GPA's profiler records these containers at runtime;
// the static analyzer later unpacks them to recover control flow,
// program structure, and architectural features. Input/output is the
// Pack/Unpack pair between *sass.Module and a byte blob; the stored
// architecture flag is what arch.ByArchFlag resolves to a GPU model
// (sm_70 → V100, sm_75 → T4, sm_80 → A100).
package cubin

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"gpa/internal/sass"
)

// Magic identifies the container format.
const Magic = 0x4755_4243 // "CBUG" little-endian spelled GCUB-ish

// Version is the current format version.
const Version = 1

// maxSaneCount bounds table sizes while decoding untrusted input.
const maxSaneCount = 1 << 20

// Pack serializes a module. Instructions are encoded into 128-bit words;
// label names inside function bodies are not preserved (branch operands
// keep their resolved PCs, as in a real binary).
func Pack(m *sass.Module) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cubin: %w", err)
	}
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	strtab := newStringTable()
	// Pre-intern all strings so the table can be written up front.
	for _, f := range m.Functions {
		strtab.intern(f.Name)
		for _, li := range f.Lines {
			strtab.intern(li.File)
			for _, fr := range li.Inline {
				strtab.intern(fr.Function)
				strtab.intern(fr.File)
			}
		}
	}

	w(uint32(Magic))
	w(uint32(Version))
	w(uint32(m.Arch))
	w(uint32(len(m.Functions)))

	w(uint32(len(strtab.list)))
	for _, s := range strtab.list {
		w(uint32(len(s)))
		buf.WriteString(s)
	}

	for _, f := range m.Functions {
		code, err := sass.EncodeFunction(m, f)
		if err != nil {
			return nil, fmt.Errorf("cubin: %w", err)
		}
		w(uint32(strtab.intern(f.Name)))
		w(uint8(f.Visibility))
		w(uint32(len(code)))
		buf.Write(code)
		w(uint32(len(f.Lines)))
		for _, li := range f.Lines {
			w(uint32(strtab.intern(li.File)))
			w(uint32(li.Line))
			w(uint16(len(li.Inline)))
			for _, fr := range li.Inline {
				w(uint32(strtab.intern(fr.Function)))
				w(uint32(strtab.intern(fr.File)))
				w(uint32(fr.Line))
			}
		}
	}
	return buf.Bytes(), nil
}

// Unpack deserializes a module packed by Pack. Function-local label
// names are not recovered; branch targets remain resolved PCs.
func Unpack(data []byte) (*sass.Module, error) {
	r := &reader{data: data}
	if r.u32() != Magic {
		return nil, fmt.Errorf("cubin: bad magic")
	}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("cubin: unsupported version %d", v)
	}
	m := &sass.Module{Arch: int(r.u32())}
	nfuncs := r.u32()
	nstrs := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nfuncs > maxSaneCount || nstrs > maxSaneCount {
		return nil, fmt.Errorf("cubin: implausible table sizes (%d funcs, %d strings)", nfuncs, nstrs)
	}
	strs := make([]string, nstrs)
	for i := range strs {
		n := r.u32()
		strs[i] = string(r.bytes(int(n)))
	}
	str := func(i uint32) (string, error) {
		if int(i) >= len(strs) {
			return "", fmt.Errorf("cubin: string index %d out of range", i)
		}
		return strs[i], nil
	}

	// First pass gathers function names so CAL ordinals can resolve;
	// names appear in order, so decode headers lazily: read all function
	// records first, then decode code.
	type rawFunc struct {
		name  string
		vis   sass.Visibility
		code  []byte
		lines []sass.LineInfo
	}
	raws := make([]rawFunc, 0, nfuncs)
	for fi := uint32(0); fi < nfuncs && r.err == nil; fi++ {
		var rf rawFunc
		name, err := str(r.u32())
		if err != nil {
			return nil, err
		}
		rf.name = name
		rf.vis = sass.Visibility(r.u8())
		codeLen := r.u32()
		if codeLen > maxSaneCount*sass.InstrBytes {
			return nil, fmt.Errorf("cubin: implausible code size %d", codeLen)
		}
		rf.code = r.bytes(int(codeLen))
		nlines := r.u32()
		if nlines > maxSaneCount {
			return nil, fmt.Errorf("cubin: implausible line count %d", nlines)
		}
		for li := uint32(0); li < nlines && r.err == nil; li++ {
			var info sass.LineInfo
			if info.File, err = str(r.u32()); err != nil {
				return nil, err
			}
			info.Line = int(r.u32())
			depth := r.u16()
			for d := uint16(0); d < depth && r.err == nil; d++ {
				var fr sass.InlineFrame
				if fr.Function, err = str(r.u32()); err != nil {
					return nil, err
				}
				if fr.File, err = str(r.u32()); err != nil {
					return nil, err
				}
				fr.Line = int(r.u32())
				info.Inline = append(info.Inline, fr)
			}
			rf.lines = append(rf.lines, info)
		}
		raws = append(raws, rf)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("cubin: %d trailing bytes", len(r.data)-r.pos)
	}
	fnName := func(i int) (string, bool) {
		if i < len(raws) {
			return raws[i].name, true
		}
		return "", false
	}
	for _, rf := range raws {
		instrs, err := sass.DecodeFunction(rf.code, fnName)
		if err != nil {
			return nil, fmt.Errorf("cubin: function %q: %w", rf.name, err)
		}
		m.Functions = append(m.Functions, &sass.Function{
			Name:       rf.name,
			Visibility: rf.vis,
			Instrs:     instrs,
			Lines:      rf.lines,
			Labels:     map[string]int{},
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cubin: unpacked module invalid: %w", err)
	}
	return m, nil
}

type stringTable struct {
	index map[string]uint32
	list  []string
}

func newStringTable() *stringTable {
	return &stringTable{index: map[string]uint32{}}
}

func (t *stringTable) intern(s string) uint32 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint32(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("cubin: truncated input at offset %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}
