package cubin

import (
	"bytes"
	"testing"

	"gpa/internal/sass"
)

const moduleSrc = `
.module sm_70
.func __cuda_sqrt device
.line mathlib.cu 100
	MUFU.RCP R8, R8 {S:1, W:5}
	RET {Q:5}
.func saxpy global
.line saxpy.cu 10
	S2R R0, SR_CTAID.X {S:2, W:0}
	S2R R1, SR_TID.X {S:2, W:1}
.line saxpy.cu 11
	IMAD R0, R0, c[0x0][0x0], R1 {S:4, Q:0|1}
.inline saxpy.cu 12 scale
.line inl.cu 40
	FMUL R2, R2, 2f {S:4}
.inlineend
.line saxpy.cu 13
	CAL __cuda_sqrt {S:2}
	@P0 LDG.E.32 R4, [R2+0x20] {S:1, W:2}
	STG.E.32 [R6], R4 {S:1, R:3, Q:2}
	EXIT {Q:3}
`

func TestPackUnpackRoundTrip(t *testing.T) {
	m, err := sass.Assemble(moduleSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	blob, err := Pack(m)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(blob)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Arch != 70 {
		t.Errorf("arch = %d, want 70", got.Arch)
	}
	if len(got.Functions) != 2 {
		t.Fatalf("got %d functions, want 2", len(got.Functions))
	}
	sq := got.Function("__cuda_sqrt")
	if sq == nil || sq.Visibility != sass.VisDevice {
		t.Fatalf("__cuda_sqrt missing or wrong visibility: %+v", sq)
	}
	sx := got.Function("saxpy")
	if sx == nil || sx.Visibility != sass.VisGlobal {
		t.Fatalf("saxpy missing or wrong visibility: %+v", sx)
	}
	if len(sx.Instrs) != 8 {
		t.Fatalf("saxpy has %d instructions, want 8", len(sx.Instrs))
	}
	// Instruction payloads survive.
	want := m.Function("saxpy")
	for i := range sx.Instrs {
		if sx.Instrs[i].Opcode != want.Instrs[i].Opcode {
			t.Errorf("instr %d opcode = %v, want %v", i, sx.Instrs[i].Opcode, want.Instrs[i].Opcode)
		}
		if sx.Instrs[i].Ctrl != want.Instrs[i].Ctrl {
			t.Errorf("instr %d ctrl = %+v, want %+v", i, sx.Instrs[i].Ctrl, want.Instrs[i].Ctrl)
		}
	}
	// Line mapping survives.
	if sx.Lines[0].File != "saxpy.cu" || sx.Lines[0].Line != 10 {
		t.Errorf("line[0] = %+v", sx.Lines[0])
	}
	// Inline stack survives.
	li := sx.Lines[3]
	if li.File != "inl.cu" || li.Line != 40 || len(li.Inline) != 1 {
		t.Fatalf("inline line = %+v", li)
	}
	if fr := li.Inline[0]; fr.Function != "scale" || fr.File != "saxpy.cu" || fr.Line != 12 {
		t.Errorf("inline frame = %+v", fr)
	}
	// CAL target symbol survives via the function table.
	tgt, ok := sx.Instrs[4].BranchTarget()
	if !ok || tgt.Sym != "__cuda_sqrt" {
		t.Errorf("CAL target = %+v", tgt)
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	m, err := sass.Assemble(moduleSrc)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] ^= 0xff
		if _, err := Unpack(bad); err == nil {
			t.Error("Unpack accepted a bad magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 8, len(blob) / 2, len(blob) - 1} {
			if _, err := Unpack(blob[:cut]); err == nil {
				t.Errorf("Unpack accepted truncation at %d", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), blob...), 0xde, 0xad)
		if _, err := Unpack(bad); err == nil {
			t.Error("Unpack accepted trailing bytes")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Unpack(nil); err == nil {
			t.Error("Unpack accepted empty input")
		}
	})
}

func TestPackDeterministic(t *testing.T) {
	m, err := sass.Assemble(moduleSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Pack is not deterministic")
	}
}

func TestPackRejectsInvalidModule(t *testing.T) {
	m := &sass.Module{Arch: 70}
	if _, err := Pack(m); err == nil {
		t.Error("Pack accepted an empty module")
	}
}
