package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). Errors stick: the first write failure is kept and
// all further output is dropped, so callers check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header writes the # HELP and # TYPE lines for a metric family.
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Metric writes one sample line. An empty label list renders a bare
// metric name.
func (p *PromWriter) Metric(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatFloat(v))
}

// Counter writes a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, labels []Label, v float64) {
	p.Header(name, help, "counter")
	p.Metric(name, labels, v)
}

// Gauge writes a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, labels []Label, v float64) {
	p.Header(name, help, "gauge")
	p.Metric(name, labels, v)
}

// Histogram writes one histogram series (bucket lines with cumulative
// counts, then _sum and _count) under an already-written Header. Use
// HistogramFamily for the common one-series case.
func (p *PromWriter) Histogram(name string, labels []Label, s HistogramSnapshot) {
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		bl := append(append(make([]Label, 0, len(labels)+1), labels...), Label{"le", le})
		p.printf("%s_bucket%s %d\n", name, renderLabels(bl), cum)
	}
	p.printf("%s_sum%s %s\n", name, renderLabels(labels), formatFloat(s.SumSeconds))
	p.printf("%s_count%s %d\n", name, renderLabels(labels), s.Count)
}

// HistogramFamily writes header plus one histogram series.
func (p *PromWriter) HistogramFamily(name, help string, labels []Label, s HistogramSnapshot) {
	p.Header(name, help, "histogram")
	p.Histogram(name, labels, s)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value the way Prometheus parsers expect
// (shortest round-trip representation; integers stay integral).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricName converts a camelCase counter name (the /statsz JSON field
// names) to a Prometheus snake_case name component: "storeCorrupt" →
// "store_corrupt", "ffCyclesSkipped" → "ff_cycles_skipped". Runs of
// capitals collapse into one word ("allocsPerJobMS" would become
// "allocs_per_job_ms"), which keeps acronyms readable.
func MetricName(camel string) string {
	var b strings.Builder
	for i, r := range camel {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && (camel[i-1] < 'A' || camel[i-1] > 'Z') {
				b.WriteByte('_')
			}
			b.WriteByte(byte(r) + ('a' - 'A'))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// RequestMetrics aggregates HTTP serving metrics: a request counter
// labeled by route, status, and stable error code, and a per-route
// latency histogram. Routes come from the fixed mux table (never raw
// URLs), so cardinality is bounded by construction; maxSeries is a
// backstop against a bug violating that.
type RequestMetrics struct {
	mu     sync.Mutex
	counts map[requestKey]int64
	dur    map[string]*Histogram
}

const maxSeries = 4096

type requestKey struct {
	Route  string
	Status int
	Code   string
}

// NewRequestMetrics builds an empty recorder.
func NewRequestMetrics() *RequestMetrics {
	return &RequestMetrics{
		counts: make(map[requestKey]int64),
		dur:    make(map[string]*Histogram),
	}
}

// Record accounts one served request. code is the stable error code
// ("" for success, "queue_full", "deadline_exceeded", ...); failures
// are counted with the same taxonomy the response body carries, so
// metrics, logs, and /statsz aggregates can never disagree about what
// an error was.
func (m *RequestMetrics) Record(route string, status int, code string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if len(m.counts) < maxSeries {
		m.counts[requestKey{route, status, code}]++
	}
	h := m.dur[route]
	if h == nil && len(m.dur) < maxSeries {
		h = NewHistogram(nil)
		m.dur[route] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// Counts snapshots the request counter (for tests and debugging).
func (m *RequestMetrics) Counts() map[requestKey]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[requestKey]int64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// CountFor returns the accumulated count for one (route, status, code)
// series.
func (m *RequestMetrics) CountFor(route string, status int, code string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[requestKey{route, status, code}]
}

// Write renders the request counter and per-route latency histograms.
// Series are sorted so scrapes are stable and diffable.
func (m *RequestMetrics) Write(p *PromWriter) {
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	routes := make([]string, 0, len(m.dur))
	snaps := make(map[string]HistogramSnapshot, len(m.dur))
	for r, h := range m.dur {
		routes = append(routes, r)
		snaps[r] = h.Snapshot()
	}
	counts := make(map[requestKey]int64, len(m.counts))
	for k, v := range m.counts {
		counts[k] = v
	}
	m.mu.Unlock()

	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Route != b.Route {
			return a.Route < b.Route
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		return a.Code < b.Code
	})
	sort.Strings(routes)

	p.Header("gpa_http_requests_total",
		"Requests served, by route, HTTP status, and stable error code (empty code = success).",
		"counter")
	for _, k := range keys {
		p.Metric("gpa_http_requests_total", []Label{
			{"route", k.Route},
			{"status", strconv.Itoa(k.Status)},
			{"code", k.Code},
		}, float64(counts[k]))
	}
	p.Header("gpa_http_request_duration_seconds",
		"End-to-end request latency by route, cache hits and errors included.",
		"histogram")
	for _, r := range routes {
		p.Histogram("gpa_http_request_duration_seconds", []Label{{"route", r}}, snaps[r])
	}
}

// WriteStageLatency renders the per-stage pipeline histograms as one
// gpa_stage_duration_seconds family labeled by stage.
func WriteStageLatency(p *PromWriter, l *StageLatency) {
	p.Header("gpa_stage_duration_seconds",
		"Pipeline stage execution latency (assemble, simulate, blame, advise); recorded only when the stage actually runs.",
		"histogram")
	if l == nil {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		p.Histogram("gpa_stage_duration_seconds",
			[]Label{{"stage", s.String()}}, l.h[s].Snapshot())
	}
}
