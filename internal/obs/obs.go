// Package obs is the observability layer under the serving path:
// allocation-free latency histograms for the Figure 2 pipeline stages,
// labeled HTTP request counters, and a dependency-free Prometheus
// text-format (exposition format 0.0.4) renderer that cmd/gpad serves
// at GET /metrics.
//
// The package is deliberately self-contained — no client_golang, no
// registry indirection — because the container bakes in nothing beyond
// the standard library and the serving hot path must not allocate to
// record an observation. A Histogram is a fixed array of atomic bucket
// counters; Observe is two atomic adds and a branch-free bucket search
// over a couple dozen bounds. Everything here is safe for concurrent
// use; Write* methods render a point-in-time snapshot and never block
// recorders.
//
// Contract with the determinism story: nothing in this package ever
// feeds a digest. Trace IDs, timings, and scrape output are transport-
// level observability; the content-addressed keys and drift-check
// output are computed entirely upstream of it and stay byte-identical
// whether or not anyone scrapes.
package obs

import (
	"sync/atomic"
	"time"
)

// DefaultBuckets are the histogram upper bounds in seconds used by
// NewHistogram(nil): roughly logarithmic from 10µs (a warm engine
// cache hit runs ~4µs) to 30s (a pathological cold sweep), so both
// tails of the serving distribution land in populated buckets.
var DefaultBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
// The zero value is unusable; build with NewHistogram. A nil Histogram
// ignores observations, so optional recorders need no guards.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	sumNS  atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds in seconds (nil = DefaultBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// Linear scan: the bounds list is short and the common case (small
	// latencies) exits early; a binary search would touch more cache
	// lines than it saves comparisons.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Since records the elapsed time from start to now.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); the last entry is the +Inf
// bucket. The snapshot is internally consistent enough for monitoring
// — buckets are read one atomic at a time, so a scrape racing an
// Observe may be off by the in-flight observation, never corrupt.
type HistogramSnapshot struct {
	Bounds     []float64
	Counts     []int64
	Count      int64
	SumSeconds float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Counts:     make([]int64, len(h.counts)),
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNS.Load()) / 1e9,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Stage names one Figure 2 pipeline stage for latency accounting.
type Stage int

const (
	// StageAssemble is the module front-end: SASS/CUBIN decode plus the
	// flattened-program build (wherever it happens — the gpa layer's
	// kernel construction or the engine's on-demand load).
	StageAssemble Stage = iota
	// StageSimulate is a gpusim run or a sampling-profiler collection —
	// the simulator invocations Stats.Sims counts.
	StageSimulate
	// StageBlame is CFG/loop structure analysis plus blame-context
	// construction (pruning, apportioning).
	StageBlame
	// StageAdvise is optimizer matching, estimation, ranking, and
	// report rendering.
	StageAdvise
	// NumStages bounds the Stage enum.
	NumStages
)

// String names the stage as it appears in the "stage" metric label.
func (s Stage) String() string {
	switch s {
	case StageAssemble:
		return "assemble"
	case StageSimulate:
		return "simulate"
	case StageBlame:
		return "blame"
	case StageAdvise:
		return "advise"
	}
	return "unknown"
}

// StageLatency is one histogram per pipeline stage. Stages record only
// when they actually run: cache and store hits skip every stage, so
// the histogram counts correlate with the engine's runs/sims counters
// rather than with request volume.
type StageLatency struct {
	h [NumStages]*Histogram
}

// NewStageLatency builds a stage-latency recorder with default
// buckets.
func NewStageLatency() *StageLatency {
	l := &StageLatency{}
	for i := range l.h {
		l.h[i] = NewHistogram(nil)
	}
	return l
}

// Observe records one stage execution. Safe on a nil recorder.
func (l *StageLatency) Observe(s Stage, d time.Duration) {
	if l == nil || s < 0 || s >= NumStages {
		return
	}
	l.h[s].Observe(d)
}

// Since records the elapsed time from start to now for one stage.
func (l *StageLatency) Since(s Stage, start time.Time) {
	if l == nil {
		return
	}
	l.Observe(s, time.Since(start))
}

// Histogram returns the recorder for one stage (nil on a nil
// recorder).
func (l *StageLatency) Histogram(s Stage) *Histogram {
	if l == nil || s < 0 || s >= NumStages {
		return nil
	}
	return l.h[s]
}
