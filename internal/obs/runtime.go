package obs

import "runtime/metrics"

// runtimeExports is the curated set of Go runtime/metrics samples the
// /metrics endpoint exports. Curated rather than exhaustive: these are
// the gauges a gpad operator alerts on (goroutine leaks, heap growth,
// GC pressure, scheduler width); runtime/metrics histograms and the
// long tail of allocator size classes stay out of the scrape.
var runtimeExports = []struct {
	sample  string // runtime/metrics key
	name    string // exported metric name
	help    string
	counter bool // monotonic counter vs point-in-time gauge
}{
	{"/sched/goroutines:goroutines", "go_goroutines",
		"Number of live goroutines.", false},
	{"/sched/gomaxprocs:threads", "go_gomaxprocs_threads",
		"Current GOMAXPROCS.", false},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes",
		"Bytes of live heap objects.", false},
	{"/memory/classes/total:bytes", "go_memory_total_bytes",
		"Total bytes of memory mapped by the Go runtime.", false},
	{"/gc/heap/allocs:objects", "go_gc_heap_allocs_objects_total",
		"Cumulative heap objects allocated.", true},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes_total",
		"Cumulative heap bytes allocated.", true},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total",
		"Completed GC cycles.", true},
	{"/gc/pauses:seconds", "", "", false}, // histogram: skipped, kept here as documentation
}

// WriteGoRuntime samples the curated runtime metrics in one
// metrics.Read call and renders them.
func WriteGoRuntime(p *PromWriter) {
	samples := make([]metrics.Sample, 0, len(runtimeExports))
	idx := make([]int, 0, len(runtimeExports))
	for i, e := range runtimeExports {
		if e.name == "" {
			continue
		}
		samples = append(samples, metrics.Sample{Name: e.sample})
		idx = append(idx, i)
	}
	metrics.Read(samples)
	for n, s := range samples {
		e := runtimeExports[idx[n]]
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue // unsupported kind on this Go version: drop the sample
		}
		typ := "gauge"
		if e.counter {
			typ = "counter"
		}
		p.Header(e.name, e.help, typ)
		p.Metric(e.name, nil, v)
	}
}
