package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(1 * time.Millisecond)   // bucket 0 (boundary is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(2 * time.Second)        // +Inf bucket

	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestNilHistogramAndStageLatencySafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Millisecond) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil snapshot count = %d", s.Count)
	}
	var l *StageLatency
	l.Observe(StageSimulate, time.Millisecond)
	l.Since(StageAdvise, time.Now())
	if l.Histogram(StageBlame) != nil {
		t.Error("nil StageLatency returned a histogram")
	}
}

func TestStageLatencyRouting(t *testing.T) {
	l := NewStageLatency()
	l.Observe(StageSimulate, 3*time.Millisecond)
	l.Observe(StageSimulate, 4*time.Millisecond)
	l.Observe(StageAdvise, time.Millisecond)
	if n := l.Histogram(StageSimulate).Snapshot().Count; n != 2 {
		t.Errorf("simulate count = %d, want 2", n)
	}
	if n := l.Histogram(StageAdvise).Snapshot().Count; n != 1 {
		t.Errorf("advise count = %d, want 1", n)
	}
	if n := l.Histogram(StageAssemble).Snapshot().Count; n != 0 {
		t.Errorf("assemble count = %d, want 0", n)
	}
	// The enum's label names are the documented metric label values.
	names := map[Stage]string{
		StageAssemble: "assemble", StageSimulate: "simulate",
		StageBlame: "blame", StageAdvise: "advise",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"hits":              "hits",
		"cacheEntries":      "cache_entries",
		"ffCyclesSkipped":   "ff_cycles_skipped",
		"storeCorrupt":      "store_corrupt",
		"allocsPerJob":      "allocs_per_job",
		"uptimeSeconds":     "uptime_seconds",
		"poolGets":          "pool_gets",
		"ffPeriodsDetected": "ff_periods_detected",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// sampleLine matches a Prometheus text-format sample line.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ((\+|-)?(Inf|[0-9.eE+-]+))$`)

// checkExposition asserts every line of a scrape is either a comment
// or a well-formed sample line and returns the sample lines.
func checkExposition(t *testing.T, text string) []string {
	t.Helper()
	var samples []string
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		samples = append(samples, line)
	}
	return samples
}

func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("gpa_engine_hits_total", "Cache hits.", nil, 42)
	p.Gauge("gpa_engine_inflight", "In-flight jobs.", []Label{{"pool", `a"b\c`}}, 3)
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)
	p.HistogramFamily("gpa_stage_duration_seconds", "Stage latency.",
		[]Label{{"stage", "simulate"}}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE gpa_engine_hits_total counter",
		"gpa_engine_hits_total 42",
		`gpa_engine_inflight{pool="a\"b\\c"} 3`,
		`gpa_stage_duration_seconds_bucket{stage="simulate",le="0.001"} 1`,
		`gpa_stage_duration_seconds_bucket{stage="simulate",le="0.01"} 2`,
		`gpa_stage_duration_seconds_bucket{stage="simulate",le="+Inf"} 3`,
		`gpa_stage_duration_seconds_count{stage="simulate"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	checkExposition(t, out)
}

func TestRequestMetrics(t *testing.T) {
	m := NewRequestMetrics()
	m.Record("/v1/advise", 200, "", 2*time.Millisecond)
	m.Record("/v1/advise", 200, "", 3*time.Millisecond)
	m.Record("/v1/advise", 503, "queue_full", 10*time.Microsecond)
	m.Record("/metrics", 200, "", time.Millisecond)

	if n := m.CountFor("/v1/advise", 200, ""); n != 2 {
		t.Errorf("advise 200 count = %d, want 2", n)
	}
	if n := m.CountFor("/v1/advise", 503, "queue_full"); n != 1 {
		t.Errorf("advise queue_full count = %d, want 1", n)
	}

	var b strings.Builder
	p := NewPromWriter(&b)
	m.Write(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`gpa_http_requests_total{route="/v1/advise",status="200",code=""} 2`,
		`gpa_http_requests_total{route="/v1/advise",status="503",code="queue_full"} 1`,
		`gpa_http_request_duration_seconds_count{route="/v1/advise"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("request metrics missing %q:\n%s", want, out)
		}
	}
	checkExposition(t, out)
}

func TestRequestMetricsConcurrent(t *testing.T) {
	m := NewRequestMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Record(fmt.Sprintf("/r%d", g%3), 200, "", time.Microsecond)
				if i%10 == 0 {
					var b strings.Builder
					m.Write(NewPromWriter(&b))
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, v := range m.Counts() {
		total += v
	}
	if total != 8*200 {
		t.Errorf("total recorded = %d, want %d", total, 8*200)
	}
}

func TestWriteGoRuntime(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	WriteGoRuntime(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"go_goroutines ", "go_gomaxprocs_threads ",
		"go_gc_heap_allocs_objects_total "} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q:\n%s", want, out)
		}
	}
	checkExposition(t, out)
}
