package profiler

import (
	"context"
	"runtime/debug"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sass"
)

// TestCollectRecycledAllocationFree pins the warm profile path: once
// the profile pool and the program's arenas are primed, a
// CollectProgram + Recycle cycle must not allocate at all. Callers that
// retain profiles (the service cache) simply never recycle and pay the
// profile's own records; the measured loop is the steady state of a
// caller that does recycle (gpa.Kernel.Measure's sampling mode, batch
// sweeps that reduce profiles on the fly).
func TestCollectRecycledAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector (its runtime allocates inside the measured window)")
	}
	m := sass.MustAssemble(kernelSrc)
	prog, err := gpusim.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := &gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
		{Func: "stencil", Label: "BR0"}: gpusim.UniformTrips(63),
	}}
	wl, err := spec.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	launch := gpusim.LaunchConfig{Entry: "stencil", Grid: gpusim.Dim(4), Block: gpusim.Dim(128), RegsPerThread: 16}
	opts := Options{GPU: arch.VoltaV100(), SimSMs: 2, Seed: 7, SamplePeriod: 32}
	ctx := context.Background()
	do := func() {
		p, err := CollectProgram(ctx, prog, launch, wl, opts)
		if err != nil {
			t.Fatal(err)
		}
		Recycle(p)
	}
	do() // prime the profile pool and the program's arenas
	// A GC between runs would drop the sync.Pool contents and make the
	// measurement flaky; disable it for the measured window.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(10, do); avg > 0 {
		t.Errorf("warm CollectProgram+Recycle allocates %.1f objects/op, want 0", avg)
	}
}
