package profiler

import (
	"context"
	"path/filepath"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sass"
)

const kernelSrc = `
.module sm_70
.func stencil global
.line st.cu 10
	MOV R0, 0x0 {S:2}
LOOP:
.line st.cu 12
	LDG.E.32 R4, [R2] {S:1, W:0}
.line st.cu 13
	FADD R5, R4, R5 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`

func collect(t *testing.T, opts Options) (*sass.Module, *Profile) {
	t.Helper()
	m := sass.MustAssemble(kernelSrc)
	prog, err := gpusim.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := &gpusim.Spec{Trips: map[gpusim.Site]gpusim.TripFunc{
		{Func: "stencil", Label: "BR0"}: gpusim.UniformTrips(63),
	}}
	wl, err := spec.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	launch := gpusim.LaunchConfig{Entry: "stencil", Grid: gpusim.Dim(4), Block: gpusim.Dim(128), RegsPerThread: 16}
	p, err := Collect(context.Background(), m, launch, wl, opts)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return m, p
}

func TestCollectBasics(t *testing.T) {
	_, p := collect(t, Options{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 7})
	if p.Kernel != "stencil" || p.Arch != 70 {
		t.Errorf("kernel/arch = %q/%d", p.Kernel, p.Arch)
	}
	if p.Cycles <= 0 || p.TotalSamples <= 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	if p.TotalSamples != p.ActiveSamples+p.LatencySamples {
		t.Errorf("sample accounting: %d != %d + %d", p.TotalSamples, p.ActiveSamples, p.LatencySamples)
	}
	if p.IssueRatio <= 0 || p.IssueRatio >= 1 {
		t.Errorf("issue ratio = %v", p.IssueRatio)
	}
	if p.Blocks != 4 || p.ThreadsPerBlock != 128 {
		t.Errorf("launch stats: %+v", p)
	}
	if p.WarpsPerScheduler <= 0 {
		t.Errorf("warps per scheduler = %d", p.WarpsPerScheduler)
	}
	if len(p.Records) == 0 {
		t.Fatal("no per-PC records")
	}
	// The FADD consumer (pc 0x20) must carry memory dependency stalls.
	var found bool
	for _, r := range p.Records {
		if r.Func == "stencil" && r.PC == 0x20 {
			found = true
			if r.Stalls["memory_dependency"] == 0 {
				t.Errorf("consumer record has no memory stalls: %+v", r)
			}
			if r.File != "st.cu" || r.Line != 13 {
				t.Errorf("consumer line mapping = %s:%d", r.File, r.Line)
			}
		}
	}
	if !found {
		t.Error("no record for the FADD consumer at 0x20")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, p := collect(t, Options{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 7})
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Kernel != p.Kernel || got.Cycles != p.Cycles || got.TotalSamples != p.TotalSamples {
		t.Errorf("round trip lost data: %+v vs %+v", got, p)
	}
	if len(got.Records) != len(p.Records) {
		t.Errorf("records: %d vs %d", len(got.Records), len(p.Records))
	}
}

func TestFuncViews(t *testing.T) {
	m, p := collect(t, Options{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 7})
	views, err := p.FuncViews(m)
	if err != nil {
		t.Fatalf("FuncViews: %v", err)
	}
	v := views["stencil"]
	if v == nil {
		t.Fatal("no view for stencil")
	}
	if len(v.Stats) != len(m.Function("stencil").Instrs) {
		t.Fatalf("view length %d", len(v.Stats))
	}
	// LDG at index 1 issued 64 times per warp set: 4 blocks x 4 warps x
	// 64 iterations but only simulated SMs count; just require > 0 and
	// consistency with stats.
	if v.Issued[1] == 0 {
		t.Error("LDG has no issue count")
	}
	if v.Stats[2].Stalls[3] == 0 { // ReasonMemoryDependency == 3
		t.Error("consumer FADD has no memory dependency stalls in view")
	}
	var total int64
	for _, st := range v.Stats {
		total += st.Total
	}
	if total != p.TotalSamples {
		t.Errorf("view total %d != profile total %d", total, p.TotalSamples)
	}
}

func TestCollectDefaultsFromArchFlag(t *testing.T) {
	// Without an explicit GPU, Collect resolves the module's arch flag.
	m, _ := collect(t, Options{SimSMs: 1, Seed: 1})
	_ = m
}

func TestFuncViewsRejectsForeignProfile(t *testing.T) {
	_, p := collect(t, Options{GPU: arch.VoltaV100(), SimSMs: 1, Seed: 7})
	other := sass.MustAssemble(`
.func different global
	EXIT
`)
	if _, err := p.FuncViews(other); err == nil {
		t.Error("FuncViews accepted a mismatched module")
	}
}
