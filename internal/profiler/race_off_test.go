//go:build !race

package profiler

// raceEnabled: see race_on_test.go.
const raceEnabled = false
