//go:build race

package profiler

// raceEnabled reports that this build runs under the race detector,
// whose runtime allocates inside measured windows; allocation-count
// pins skip themselves when it is set.
const raceEnabled = true
