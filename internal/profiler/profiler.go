// Package profiler drives a simulated kernel launch with PC sampling
// enabled and condenses the result into a serializable profile, playing
// the role of GPA's runtime profiler (Section 3, the online half of
// Figure 2): it records kernel launch statistics (grid, block,
// occupancy, duration) plus per-PC sample counters, attributed to
// functions by name and function-local PC so the offline analyzers can
// join them with CUBIN-derived structure.
//
// Input is a loaded program, a launch config, a workload, and Options
// selecting the architecture model. When this package is driven
// directly with a nil Options.GPU, the module's recorded SM flag is
// resolved through the arch registry (an sm_75 module profiles on the
// T4 model); note the public gpa API instead defaults a nil
// Options.GPU to the V100 before calling in here. Output is a
// *Profile — including the warps-per-scheduler W and issue ratio RI of
// Equations 6-9, and the non-default architecture model it was taken
// on — that Save/LoadFile round-trip through JSON for offline
// analysis.
package profiler

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/sampling"
	"gpa/internal/sass"
)

// Options configures a profiling run.
type Options struct {
	GPU *arch.GPU
	// SamplePeriod in cycles; 0 uses 64.
	SamplePeriod int
	// BufferCap is the per-SM sample buffer capacity (0 uses the
	// sampling default).
	BufferCap int
	// SimSMs bounds detailed SM simulation (0 uses the gpusim default).
	SimSMs int
	Seed   uint64
	// Parallelism bounds concurrent SM simulation (0 uses GOMAXPROCS);
	// results are identical at every level.
	Parallelism int
}

// StallCounts maps stall reason names to sample counts (JSON-friendly).
type StallCounts map[string]int64

// PCRecord is the per-instruction sample summary.
type PCRecord struct {
	Func string `json:"func"`
	// PC is the function-local byte offset.
	PC   uint32 `json:"pc"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`

	Total   int64 `json:"total"`
	Active  int64 `json:"active"`
	Latency int64 `json:"latency"`
	// Issued is the exact dynamic issue count from the simulator (the
	// inst_executed counter a real profiler reads).
	Issued int64 `json:"issued"`

	Stalls        StallCounts `json:"stalls,omitempty"`
	LatencyStalls StallCounts `json:"latencyStalls,omitempty"`
}

// Profile is one kernel launch's measurement record.
type Profile struct {
	Kernel string `json:"kernel"`
	// Arch is the module's compile-target SM flag.
	Arch int `json:"arch"`
	// GPU is the canonical registry key of the architecture model the
	// profile was taken on, when it differs from the default (the
	// paper's V100). Empty means the default; offline analysis
	// (gpa.AdviseFromProfile) resolves this so a T4 profile is not
	// silently analyzed with V100 limits. Recording only the non-default
	// case keeps default-profile digests (cmd/drift-check) stable across
	// revisions.
	GPU             string `json:"gpu,omitempty"`
	Cycles          int64  `json:"cycles"`
	Blocks          int    `json:"blocks"`
	ThreadsPerBlock int    `json:"threadsPerBlock"`
	ActiveSMs       int    `json:"activeSMs"`
	NumSMs          int    `json:"numSMs"`
	SchedulersPerSM int    `json:"schedulersPerSM"`
	// WarpsPerScheduler is the resident-warp count per scheduler (the W
	// of Equations 6-9).
	WarpsPerScheduler int    `json:"warpsPerScheduler"`
	OccupancyLimiter  string `json:"occupancyLimiter"`
	SamplePeriod      int    `json:"samplePeriod"`
	BufferFlushes     int    `json:"bufferFlushes"`

	TotalSamples   int64 `json:"totalSamples"`
	ActiveSamples  int64 `json:"activeSamples"`
	LatencySamples int64 `json:"latencySamples"`
	// IssueRatio is RI: issued samples / all samples.
	IssueRatio float64 `json:"issueRatio"`

	Records []PCRecord `json:"records"`

	// freeMaps stashes cleared StallCounts maps harvested by Recycle so
	// a recycled profile's records repopulate without allocating.
	freeMaps []StallCounts
}

// Collect profiles one launch of the module's entry kernel. The
// context cancels the underlying simulation (see gpusim.Run).
func Collect(ctx context.Context, mod *sass.Module, launch gpusim.LaunchConfig, wl gpusim.Workload, opts Options) (*Profile, error) {
	prog, err := gpusim.Load(mod)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	return CollectProgram(ctx, prog, launch, wl, opts)
}

// CollectProgram profiles one launch of an already-loaded program,
// letting callers that profile the same kernel repeatedly skip the
// per-run module flattening. The context cancels the underlying
// simulation (see gpusim.Run); cancellation never alters the profile
// of a run that completes.
func CollectProgram(ctx context.Context, prog *gpusim.Program, launch gpusim.LaunchConfig, wl gpusim.Workload, opts Options) (*Profile, error) {
	mod := prog.Module
	if opts.GPU == nil {
		g, err := arch.ByArchFlag(mod.Arch)
		if err != nil {
			return nil, fmt.Errorf("profiler: %w", err)
		}
		opts.GPU = g
	}
	period := opts.SamplePeriod
	if period <= 0 {
		period = 64
	}
	// The sample buffer and per-PC aggregate are pure scratch: nothing
	// in the returned Profile aliases them, so they recycle through a
	// pool alongside the simulator's per-run arenas (Profile itself is
	// retained by callers and caches, and is always fresh).
	sc := getScratch(opts.BufferCap)
	defer scratchPool.Put(sc)
	buf := &sc.buf
	res, err := gpusim.Run(ctx, prog, launch, wl, gpusim.Config{
		GPU:          opts.GPU,
		SimSMs:       opts.SimSMs,
		SamplePeriod: period,
		Sink:         buf,
		Seed:         opts.Seed,
		Parallelism:  opts.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	defer prog.Recycle(res)
	samples := buf.Drain()
	agg := &sc.agg
	sampling.AggregateSamplesInto(agg, samples, len(prog.Instrs))

	gpuKey := arch.KeyOf(opts.GPU)
	if gpuKey == defaultGPUKey {
		gpuKey = "" // default model: omitted for digest stability
	}
	p := getProfile()
	*p = Profile{
		Kernel:            launch.Entry,
		Arch:              mod.Arch,
		GPU:               gpuKey,
		Cycles:            res.Cycles,
		Blocks:            res.BlocksLaunched,
		ThreadsPerBlock:   res.ThreadsPerBlock,
		ActiveSMs:         res.ActiveSMs,
		NumSMs:            opts.GPU.NumSMs,
		SchedulersPerSM:   opts.GPU.SchedulersPerSM,
		WarpsPerScheduler: res.WarpsPerScheduler,
		OccupancyLimiter:  res.Occupancy.Limiter,
		SamplePeriod:      period,
		BufferFlushes:     buf.Flushes,
		TotalSamples:      agg.Total,
		ActiveSamples:     agg.Active,
		LatencySamples:    agg.Latency,
		IssueRatio:        agg.IssueRatio(),

		Records:  p.Records[:0],
		freeMaps: p.freeMaps,
	}
	for flat, st := range agg.PerPC {
		if st.Total == 0 && res.IssuedPerPC[flat] == 0 {
			continue
		}
		li := prog.LineAt(flat)
		rec := PCRecord{
			Func:    prog.FuncName(flat),
			PC:      prog.LocalPC(flat),
			File:    li.File,
			Line:    li.Line,
			Total:   st.Total,
			Active:  st.Active,
			Latency: st.Latency,
			Issued:  res.IssuedPerPC[flat],
		}
		for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
			if st.Stalls[r] > 0 {
				if rec.Stalls == nil {
					rec.Stalls = p.takeMap()
				}
				rec.Stalls[r.String()] = st.Stalls[r]
			}
			if st.LatencyStalls[r] > 0 {
				if rec.LatencyStalls == nil {
					rec.LatencyStalls = p.takeMap()
				}
				rec.LatencyStalls[r.String()] = st.LatencyStalls[r]
			}
		}
		p.Records = append(p.Records, rec)
	}
	return p, nil
}

// defaultGPUKey is the registry key of the default model, resolved once
// (VoltaV100 constructs a fresh model per call; the warm profiling path
// must not allocate).
var defaultGPUKey = arch.KeyOf(arch.VoltaV100())

// collectScratch is the per-collection scratch state (sample buffer and
// per-PC aggregate) recycled between profiling runs.
type collectScratch struct {
	buf sampling.Buffer
	agg sampling.Aggregate
}

var scratchPool sync.Pool // *collectScratch

func getScratch(bufferCap int) *collectScratch {
	sc, _ := scratchPool.Get().(*collectScratch)
	if sc == nil {
		sc = &collectScratch{}
	}
	sc.buf.Reset(bufferCap)
	return sc
}

var profilePool sync.Pool // *Profile

func getProfile() *Profile {
	p, _ := profilePool.Get().(*Profile)
	if p == nil {
		p = &Profile{}
	}
	return p
}

// takeMap hands out a cleared recycled StallCounts map when one is
// stashed, or a fresh one.
func (p *Profile) takeMap() StallCounts {
	if n := len(p.freeMaps); n > 0 {
		m := p.freeMaps[n-1]
		p.freeMaps = p.freeMaps[:n-1]
		return m
	}
	return StallCounts{}
}

// Recycle returns a profile produced by Collect/CollectProgram to the
// package pool so the next collection reuses its record storage and
// stall-count maps. It is optional — callers that retain profiles (the
// advice pipeline keeps them inside Reports) simply never recycle
// them. After Recycle the profile must not be used.
func Recycle(p *Profile) {
	if p == nil {
		return
	}
	for i := range p.Records {
		rec := &p.Records[i]
		if rec.Stalls != nil {
			clear(rec.Stalls)
			p.freeMaps = append(p.freeMaps, rec.Stalls)
		}
		if rec.LatencyStalls != nil {
			clear(rec.LatencyStalls)
			p.freeMaps = append(p.freeMaps, rec.LatencyStalls)
		}
	}
	*p = Profile{Records: p.Records[:0], freeMaps: p.freeMaps}
	profilePool.Put(p)
}

// Save writes the profile as JSON.
func (p *Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Digest returns a stable content digest of the profile: SHA-256 over
// its canonical JSON encoding (map keys sorted by encoding/json), hex
// encoded. Equal profiles — sample counters included — digest equally
// across builds, which is what cmd/drift-check compares between
// revisions and what the advice service reports per response so
// deployments can cross-check determinism.
func (p *Profile) Digest() (string, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("profiler: digest: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// LoadFile reads a profile written by Save.
func LoadFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profiler: %s: %w", path, err)
	}
	return &p, nil
}

// reasonByName resolves a stall reason name back to its enum value.
var reasonByName = func() map[string]gpusim.StallReason {
	m := map[string]gpusim.StallReason{}
	for r := gpusim.StallReason(0); r < gpusim.NumReasons; r++ {
		m[r.String()] = r
	}
	return m
}()

// FuncView is a dense per-function view of a profile, instruction index
// aligned with the function's instruction array.
type FuncView struct {
	Fn     *sass.Function
	Stats  []sampling.PCStats
	Issued []int64
}

// FuncViews joins the profile's records against a module, producing one
// dense view per function that has any samples.
func (p *Profile) FuncViews(mod *sass.Module) (map[string]*FuncView, error) {
	views := map[string]*FuncView{}
	for _, rec := range p.Records {
		v := views[rec.Func]
		if v == nil {
			fn := mod.Function(rec.Func)
			if fn == nil {
				return nil, fmt.Errorf("profiler: profile references unknown function %q", rec.Func)
			}
			v = &FuncView{
				Fn:     fn,
				Stats:  make([]sampling.PCStats, len(fn.Instrs)),
				Issued: make([]int64, len(fn.Instrs)),
			}
			views[rec.Func] = v
		}
		idx := int(rec.PC) / sass.InstrBytes
		if idx < 0 || idx >= len(v.Stats) {
			return nil, fmt.Errorf("profiler: record pc 0x%x out of range for %q", rec.PC, rec.Func)
		}
		st := &v.Stats[idx]
		st.Total += rec.Total
		st.Active += rec.Active
		st.Latency += rec.Latency
		v.Issued[idx] += rec.Issued
		for name, n := range rec.Stalls {
			r, ok := reasonByName[name]
			if !ok {
				return nil, fmt.Errorf("profiler: unknown stall reason %q", name)
			}
			st.Stalls[r] += n
		}
		for name, n := range rec.LatencyStalls {
			r, ok := reasonByName[name]
			if !ok {
				return nil, fmt.Errorf("profiler: unknown stall reason %q", name)
			}
			st.LatencyStalls[r] += n
		}
	}
	return views, nil
}
