// Package apierr defines the typed error taxonomy of the public gpa
// API. Every error that crosses the API boundary wraps exactly one of
// these sentinels, so callers branch with errors.Is instead of string
// matching and cmd/gpad maps failures to HTTP status codes from the
// same table. The sentinels live in this leaf package (imported by
// arch, sass, gpusim, service, and the root gpa package alike) so the
// internal pipeline can tag errors at the point of failure without
// importing the public API; the root package re-exports them as
// gpa.ErrUnknownArch and friends. Relative to Figure 2 it is the
// failure-reporting spine running alongside every stage from
// measurement through advising: whichever stage fails, the caller sees
// the same small vocabulary.
package apierr

import (
	"context"
	"errors"
	"fmt"
	"time"
)

var (
	// ErrUnknownArch tags failures to resolve a GPU architecture model
	// (an unregistered name, alias, or CUBIN SM flag).
	ErrUnknownArch = errors.New("unknown architecture")
	// ErrBadKernel tags invalid kernels and launches: a missing entry
	// function, a malformed CUBIN container, an empty grid, or a launch
	// shape no SM configuration can host.
	ErrBadKernel = errors.New("bad kernel")
	// ErrAssemble tags SASS assembly failures (syntax errors, unknown
	// opcodes, undefined labels).
	ErrAssemble = errors.New("assembly failed")
	// ErrCanceled tags operations abandoned because their context was
	// canceled or its deadline expired. The wrapped chain retains the
	// original ctx.Err(), so errors.Is also matches context.Canceled or
	// context.DeadlineExceeded as appropriate.
	ErrCanceled = errors.New("operation canceled")
	// ErrQueueFull tags requests the serving engine rejected because its
	// admission queue was at capacity (load shedding; retry later).
	ErrQueueFull = errors.New("queue full")
	// ErrShuttingDown tags requests rejected because the engine is
	// draining for shutdown.
	ErrShuttingDown = errors.New("shutting down")
	// ErrQuotaExceeded tags requests shed because the tenant's
	// token-bucket quota is exhausted (HTTP 429; retry after the bucket
	// accrues a token). Carried by QuotaError, which adds the computed
	// Retry-After hint.
	ErrQuotaExceeded = errors.New("quota exceeded")
	// ErrOverloaded tags requests shed by the brownout controller: the
	// engine is saturated (queued-wait p99 over threshold) and is
	// degrading batch-lane work to protect interactive latency. Distinct
	// from ErrQueueFull so the 503 split between "queue at capacity" and
	// "deliberate overload shedding" stays visible in stats.
	ErrOverloaded = errors.New("overloaded")
	// ErrSimLimit tags simulations aborted by the runaway-cycle bound
	// (Config.MaxCycles), usually a livelocked kernel.
	ErrSimLimit = errors.New("simulation limit exceeded")
)

// CanceledError is the concrete type cancellation errors carry:
// errors.Is matches ErrCanceled and (through Cause) the original
// context error, and errors.As exposes the cause directly.
type CanceledError struct {
	// Cause is the context error that triggered the cancellation
	// (context.Canceled or context.DeadlineExceeded).
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("%v: %v", ErrCanceled, e.Cause)
}

// Is makes errors.Is(err, ErrCanceled) match without losing the cause.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the original context error to errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Canceled wraps cause (normally a ctx.Err()) so the result matches
// both ErrCanceled and the original context error under errors.Is,
// and surfaces the cause via errors.As on *CanceledError. A nil cause
// yields the bare sentinel.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return &CanceledError{Cause: cause}
}

// QuotaError is the concrete type quota sheds carry: errors.Is matches
// ErrQuotaExceeded, and errors.As exposes the tenant and the time until
// the tenant's bucket accrues its next token, which cmd/gpad turns into
// the 429 Retry-After header.
type QuotaError struct {
	// Tenant is the over-quota tenant (after default normalization).
	Tenant string
	// RetryAfter is how long until one token accrues at the tenant's
	// configured rate — the earliest moment a retry can succeed.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("%v: tenant %q (retry after %v)", ErrQuotaExceeded, e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQuotaExceeded) match.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// CtxErr returns nil while ctx is live, and the context's error
// wrapped in ErrCanceled once it is done. It is the cancel checkpoint
// every cancelable stage polls.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return Canceled(err)
	}
	return nil
}
