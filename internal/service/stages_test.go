package service

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"gpa/internal/arch"
	"gpa/internal/gpusim"
	"gpa/internal/store"
)

func TestStageKeysFactorThePipeline(t *testing.T) {
	base := testRequest(t, KindAdvise).normalized()
	sk, ok, err := base.stageKeys()
	if err != nil || !ok {
		t.Fatalf("stageKeys: %v, ok=%v", err, ok)
	}

	// Kind is excluded: a profile request over the same inputs shares
	// the profile artifact that feeds advise.
	prof := testRequest(t, KindProfile).normalized()
	skProf, _, err := prof.stageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if skProf.profile != sk.profile {
		t.Error("profile and advise requests must share the profile stage key")
	}
	if skProf.frontend != sk.frontend {
		t.Error("content-equal modules must share the frontend stage key")
	}

	// Parallelism is excluded everywhere (bit-identical results).
	par := testRequest(t, KindAdvise)
	par.Parallelism = 4
	np := par.normalized()
	skPar, _, err := np.stageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if skPar != sk {
		t.Error("parallelism changed a stage key")
	}

	// The sampling period feeds profile and advice but not measure.
	period := testRequest(t, KindAdvise)
	period.SamplePeriod = 128
	npd := period.normalized()
	skPeriod, _, err := npd.stageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if skPeriod.measure != sk.measure {
		t.Error("sampling period must not affect the measure stage key")
	}
	if skPeriod.profile == sk.profile || skPeriod.advice == sk.advice {
		t.Error("sampling period must change the profile and advice stage keys")
	}

	// Blamer options feed only the advice stage.
	bl := testRequest(t, KindAdvise)
	bl.Blamer.MaxSliceSteps = 3
	nbl := bl.normalized()
	skBl, _, err := nbl.stageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if skBl.profile != sk.profile || skBl.measure != sk.measure || skBl.frontend != sk.frontend {
		t.Error("blamer options must not affect upstream stage keys")
	}
	if skBl.advice == sk.advice {
		t.Error("blamer options must change the advice stage key")
	}

	// The architecture model feeds simulation but not the front-end.
	t4 := testRequest(t, KindAdvise)
	t4.GPU = arch.TuringT4()
	nt4 := t4.normalized()
	skT4, _, err := nt4.stageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if skT4.frontend != sk.frontend {
		t.Error("architecture must not affect the frontend stage key")
	}
	if skT4.measure == sk.measure || skT4.profile == sk.profile {
		t.Error("architecture must change the simulation stage keys")
	}

	// A workload without a key still has no stable identity.
	wl := testRequest(t, KindAdvise)
	prog, err := gpusim.Load(wl.Module)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := (&gpusim.Spec{}).Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	wl.Workload = bound
	nwl := wl.normalized()
	if _, ok, _ := nwl.stageKeys(); ok {
		t.Error("workload without key must be uncacheable for stages too")
	}
}

// TestSweepStructureAnalysisOnce pins the sweep-reuse contract: a
// concurrent sweep of one module across every registered architecture
// performs the arch-independent front-end (structure analysis) exactly
// once, while producing per-arch results byte-identical to isolated
// cold runs.
func TestSweepStructureAnalysisOnce(t *testing.T) {
	gpus := arch.All()
	if len(gpus) < 2 {
		t.Skip("needs at least two registered architectures")
	}

	// Cold per-arch baselines on stage-cache-free engines.
	want := make([]string, len(gpus))
	wantDigest := make([]string, len(gpus))
	for i, g := range gpus {
		e := New(Options{Workers: 1, StageEntries: -1})
		r := testRequest(t, KindAdvise)
		r.GPU = g
		resp, err := e.Do(context.Background(), r)
		if err != nil {
			t.Fatalf("%s: %v", arch.KeyOf(g), err)
		}
		want[i] = resp.Report
		wantDigest[i] = resp.ProfileDigest
		if st := e.Stats(); st.StructureBuilds != 1 {
			t.Fatalf("%s: stage-cache-free engine built structure %d times, want 1",
				arch.KeyOf(g), st.StructureBuilds)
		}
	}

	// The sweep: one engine, stage caching on, all archs concurrently.
	// Each request assembles its own content-equal module, so reuse
	// must come from content addressing, not pointer identity.
	e := New(Options{Workers: 4})
	var wg sync.WaitGroup
	resps := make([]*Response, len(gpus))
	errs := make([]error, len(gpus))
	for i, g := range gpus {
		wg.Add(1)
		go func(i int, g *arch.GPU) {
			defer wg.Done()
			r := testRequest(t, KindAdvise)
			r.GPU = g
			resps[i], errs[i] = e.Do(context.Background(), r)
		}(i, g)
	}
	wg.Wait()
	for i, g := range gpus {
		if errs[i] != nil {
			t.Fatalf("%s: %v", arch.KeyOf(g), errs[i])
		}
		if resps[i].Report != want[i] {
			t.Errorf("%s: sweep report differs from isolated cold run", arch.KeyOf(g))
		}
		if resps[i].ProfileDigest != wantDigest[i] {
			t.Errorf("%s: sweep profile digest differs from isolated cold run", arch.KeyOf(g))
		}
	}
	st := e.Stats()
	if st.StructureBuilds != 1 {
		t.Errorf("sweep built structure %d times for one module, want 1", st.StructureBuilds)
	}
	if st.Runs != int64(len(gpus)) {
		t.Errorf("sweep runs = %d, want %d (one per arch)", st.Runs, len(gpus))
	}
}

// TestProfileFeedsAdvise pins cross-kind stage reuse: an advise job
// arriving after a profile job over the same inputs reuses the stored
// profile instead of re-simulating.
func TestProfileFeedsAdvise(t *testing.T) {
	// The cold advise baseline (separate engine, no stage caching).
	cold := New(Options{Workers: 1, StageEntries: -1})
	coldResp, err := cold.Do(context.Background(), testRequest(t, KindAdvise))
	if err != nil {
		t.Fatal(err)
	}

	e := New(Options{Workers: 1})
	profResp, err := e.Do(context.Background(), testRequest(t, KindProfile))
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Sims != 1 {
		t.Fatalf("profile job: sims = %d, want 1", st.Sims)
	}
	advResp, err := e.Do(context.Background(), testRequest(t, KindAdvise))
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Sims != 1 {
		t.Errorf("advise after profile re-simulated: sims = %d, want 1", st.Sims)
	}
	if st.Runs != 2 {
		t.Errorf("runs = %d, want 2 (profile + advise-over-stored-profile)", st.Runs)
	}
	if advResp.ProfileDigest != profResp.ProfileDigest {
		t.Error("advise served a different profile than the profile job produced")
	}
	if advResp.Report != coldResp.Report {
		t.Error("advise over a stored profile differs from a cold advise run")
	}
	if advResp.ProfileDigest != coldResp.ProfileDigest {
		t.Error("stage-reused profile digest differs from cold run")
	}
	if advResp.Cycles != coldResp.Cycles {
		t.Errorf("cycles = %d, want %d", advResp.Cycles, coldResp.Cycles)
	}
}

// newDiskEngine builds an engine backed by an on-disk store at dir.
func newDiskEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Workers: 2, Disk: d})
}

// mustEqualServed asserts a store-served response matches the cold
// original in every result-bearing byte (the Cached flag is the one
// permitted difference; ElapsedMS replays the producing run's value).
func mustEqualServed(t *testing.T, label string, cold, warm *Response) {
	t.Helper()
	if !warm.Cached {
		t.Errorf("%s: store-served response not marked Cached", label)
	}
	if warm.Cycles != cold.Cycles {
		t.Errorf("%s: cycles = %d, want %d", label, warm.Cycles, cold.Cycles)
	}
	if warm.ElapsedMS != cold.ElapsedMS {
		t.Errorf("%s: elapsedMs = %v, want the producing run's %v", label, warm.ElapsedMS, cold.ElapsedMS)
	}
	if warm.ProfileDigest != cold.ProfileDigest {
		t.Errorf("%s: profile digest drifted across the store", label)
	}
	if warm.Report != cold.Report {
		t.Errorf("%s: report text drifted across the store", label)
	}
	if (warm.Profile == nil) != (cold.Profile == nil) {
		t.Errorf("%s: profile presence differs", label)
	}
	if warm.Profile != nil && cold.Profile != nil {
		wj, err1 := json.Marshal(warm.Profile)
		cj, err2 := json.Marshal(cold.Profile)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: marshal: %v, %v", label, err1, err2)
		}
		if string(wj) != string(cj) {
			t.Errorf("%s: profile JSON drifted across the store", label)
		}
	}
}

// TestDiskStoreRestartWarm pins the tentpole contract: a fresh engine
// on a populated store directory serves every kind with Runs==0 and
// Sims==0, byte-identical to the cold run.
func TestDiskStoreRestartWarm(t *testing.T) {
	dir := t.TempDir()
	kinds := []Kind{KindMeasure, KindProfile, KindAdvise}

	colds := make([]*Response, len(kinds))
	e1 := newDiskEngine(t, dir)
	for i, k := range kinds {
		resp, err := e1.Do(context.Background(), testRequest(t, k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		colds[i] = resp
	}

	// Restart: a brand-new engine over the same directory.
	e2 := newDiskEngine(t, dir)
	for i, k := range kinds {
		warm, err := e2.Do(context.Background(), testRequest(t, k))
		if err != nil {
			t.Fatalf("%v restart: %v", k, err)
		}
		mustEqualServed(t, k.String(), colds[i], warm)
	}
	st := e2.Stats()
	if st.Runs != 0 || st.Sims != 0 {
		t.Errorf("restarted engine ran: runs=%d sims=%d, want 0/0", st.Runs, st.Sims)
	}
	if st.StageServed != int64(len(kinds)) {
		t.Errorf("stageServed = %d, want %d", st.StageServed, len(kinds))
	}
	if st.StoreHits == 0 {
		t.Errorf("restart served without disk hits: %+v", st)
	}
}

// TestDiskStoreFaultInjectionRecomputes drives every corruption
// scenario through the ENGINE: a damaged blob of any stage must
// degrade to a recomputed miss whose output is byte-identical to the
// cold run, with the corruption counted, never an error.
func TestDiskStoreFaultInjectionRecomputes(t *testing.T) {
	// Store-free cold references, one per kind (the simulator is
	// deterministic, so these are THE right answers everywhere).
	coldEng := New(Options{Workers: 1, StageEntries: -1})
	cold, err := coldEng.Do(context.Background(), testRequest(t, KindAdvise))
	if err != nil {
		t.Fatal(err)
	}
	coldMeasure, err := coldEng.Do(context.Background(), testRequest(t, KindMeasure))
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func(t *testing.T, path, stage string, key store.Key){
		"truncated": func(t *testing.T, path, _ string, _ store.Key) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o666); err != nil {
				t.Fatal(err)
			}
		},
		"flipped-byte": func(t *testing.T, path, _ string, _ store.Key) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x04 // inside the payload
			if err := os.WriteFile(path, data, 0o666); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-schema": func(t *testing.T, path, stage string, key store.Key) {
			// A well-formed, checksum-valid blob framed under an alien
			// payload schema (as a build with a different encoding would
			// have written): rejected by the framing's schema check.
			blob := store.EncodeBlob("gpa-stage/0+ancient", stage, key, []byte(`{}`))
			if err := os.WriteFile(path, blob, 0o666); err != nil {
				t.Fatal(err)
			}
		},
		"unreadable": func(t *testing.T, path, _ string, _ store.Key) {
			// Root ignores permission bits, so force the read error
			// structurally: a directory where the blob should be.
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			if err := os.Mkdir(path, 0o777); err != nil {
				t.Fatal(err)
			}
		},
		"garbage-payload": func(t *testing.T, path, stage string, key store.Key) {
			// A checksum-valid blob whose payload is not a decodable
			// stage envelope: caught by artifact validation, not framing.
			blob := store.EncodeBlob(StoreSchema(), stage, key, []byte(`{"not":"an envelope"}`))
			if err := os.WriteFile(path, blob, 0o666); err != nil {
				t.Fatal(err)
			}
		},
	}

	for _, stage := range []string{store.StageMeasure, store.StageProfile, store.StageAdvice} {
		kind := KindAdvise
		if stage == store.StageMeasure {
			kind = KindMeasure
		}
		for name, mutate := range corruptions {
			t.Run(stage+"/"+name, func(t *testing.T) {
				dir := t.TempDir()
				d, err := OpenDisk(dir)
				if err != nil {
					t.Fatal(err)
				}
				// Populate.
				if _, err := New(Options{Workers: 1, Disk: d}).Do(context.Background(), testRequest(t, kind)); err != nil {
					t.Fatal(err)
				}
				n := testRequest(t, kind).normalized()
				sk, ok, err := n.stageKeys()
				if err != nil || !ok {
					t.Fatalf("stageKeys: %v, ok=%v", err, ok)
				}
				keys := map[string]store.Key{
					store.StageMeasure: sk.measure,
					store.StageProfile: sk.profile,
					store.StageAdvice:  sk.advice,
				}
				mutate(t, d.Path(stage, keys[stage]), stage, keys[stage])

				// A fresh engine over the damaged store must recompute and
				// still answer byte-identically.
				d2, err := OpenDisk(dir)
				if err != nil {
					t.Fatal(err)
				}
				e := New(Options{Workers: 1, Disk: d2})
				resp, err := e.Do(context.Background(), testRequest(t, kind))
				if err != nil {
					t.Fatalf("corrupted store surfaced an error: %v", err)
				}
				if kind == KindAdvise {
					if resp.Report != cold.Report {
						t.Error("recomputed report differs from cold run")
					}
					if resp.ProfileDigest != cold.ProfileDigest {
						t.Error("recomputed profile digest differs from cold run")
					}
				} else if resp.Cycles != coldMeasure.Cycles {
					t.Errorf("recomputed cycles = %d, want %d", resp.Cycles, coldMeasure.Cycles)
				}
				if st := e.Stats(); st.StoreCorrupt == 0 {
					t.Errorf("corruption not counted in storeCorrupt: %+v", st)
				}
				// The corruption healed: the recomputed artifact was
				// rewritten, so one more fresh engine serves it whole.
				d3, err := OpenDisk(dir)
				if err != nil {
					t.Fatal(err)
				}
				e3 := New(Options{Workers: 1, Disk: d3})
				healed, err := e3.Do(context.Background(), testRequest(t, kind))
				if err != nil {
					t.Fatal(err)
				}
				if !healed.Cached {
					t.Error("store did not heal: repeat restart still recomputes")
				}
				if kind == KindAdvise && healed.Report != cold.Report {
					t.Error("healed report differs from cold run")
				}
			})
		}
	}
}
