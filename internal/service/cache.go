package service

import "container/list"

// lruCache is a fixed-capacity least-recently-used response cache.
// It does its own locking through the owning engine's mutex discipline:
// all methods must be called with the engine's mu held.
type lruCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached response for key, promoting it to most
// recently used, or nil.
func (c *lruCache) get(key string) *Response {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp
}

// add inserts (or refreshes) key, evicting the least recently used
// entry when over capacity. It returns the number of evictions (0 or 1).
func (c *lruCache) add(key string, resp *Response) int {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	if c.order.Len() <= c.cap {
		return 0
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.entries, oldest.Value.(*lruEntry).key)
	return 1
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}
