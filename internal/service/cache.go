package service

import "container/list"

// lruCache is a fixed-capacity least-recently-used response cache.
// It does its own locking through the owning engine's mutex discipline:
// all methods must be called with the engine's mu held.
type lruCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[digestKey]*list.Element
}

type lruEntry struct {
	key  digestKey
	resp *Response
	// cached is the shallow copy with Cached set, built once at
	// insertion so every hit returns the same pointer without copying.
	cached *Response
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[digestKey]*list.Element, capacity),
	}
}

// get returns the cached (Cached=true) view of the response for key,
// promoting it to most recently used, or nil.
func (c *lruCache) get(key digestKey) *Response {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).cached
}

// add inserts (or refreshes) key, evicting the least recently used
// entry when over capacity. It returns the number of evictions (0 or 1).
func (c *lruCache) add(key digestKey, resp *Response) int {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		e.resp = resp
		e.cached = asCached(resp)
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, resp: resp, cached: asCached(resp)})
	if c.order.Len() <= c.cap {
		return 0
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.entries, oldest.Value.(*lruEntry).key)
	return 1
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}
