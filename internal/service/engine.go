// Package service is the serving subsystem in front of the Figure 2
// pipeline: a bounded worker-pool job engine with a content-addressed
// result cache. It turns the one-kernel-at-a-time advisor into
// something a long-running daemon (cmd/gpad) or a batch driver
// (gpa.Engine, cmd/gpa-bench) can push heavy traffic through.
//
// A Request names a kernel module, launch, architecture model, and the
// result-affecting options; its Digest — SHA-256 of the canonical
// module bytes plus every result-affecting field — is the cache key.
// The engine resolves each request in three tiers: an LRU result cache
// (hit: no simulation), a singleflight table (N identical concurrent
// requests share ONE simulation), and finally a semaphore-bounded run
// of the pipeline (simulate / profile / blame / advise via the same
// internal packages the gpa API composes).
//
// Determinism contract: the simulator is bit-identical at every
// parallelism level, and cached responses are stored verbatim, so a
// cache hit returns byte-identical report text to a cold sequential
// run. Parallelism is therefore excluded from the digest. Responses
// are shared between callers and must be treated as immutable.
package service

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/gpusim"
	"gpa/internal/profiler"
	"gpa/internal/sass"

	adv "gpa/internal/advisor"
)

// Kind selects which pipeline stage a request runs.
type Kind int

const (
	// KindMeasure simulates without sampling and reports cycles only.
	KindMeasure Kind = iota
	// KindProfile runs the sampling profiler and reports the profile.
	KindProfile
	// KindAdvise runs the full pipeline: profile, blame, optimizer
	// matching, estimation, ranking, and report rendering.
	KindAdvise
)

// String names the kind ("measure", "profile", "advise").
func (k Kind) String() string {
	switch k {
	case KindMeasure:
		return "measure"
	case KindProfile:
		return "profile"
	case KindAdvise:
		return "advise"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name; the empty string means advise.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "", "advise":
		return KindAdvise, nil
	case "profile":
		return KindProfile, nil
	case "measure":
		return KindMeasure, nil
	}
	return 0, fmt.Errorf("service: unknown kind %q (want advise, profile, or measure)", s)
}

// Request is one unit of work for the engine.
type Request struct {
	Kind   Kind
	Module *sass.Module
	// Prog optionally supplies the module's already-flattened program
	// (gpa.Kernel caches one); nil loads it on demand. It must belong
	// to Module.
	Prog   *gpusim.Program
	Launch gpusim.LaunchConfig
	// GPU is the architecture model (nil = the paper's V100).
	GPU *arch.GPU
	// SamplePeriod in cycles (0 = 64; ignored and normalized away for
	// KindMeasure, which never samples).
	SamplePeriod int
	// SimSMs bounds detailed SM simulation (0 = 4).
	SimSMs int
	Seed   uint64
	// Parallelism bounds concurrent SM simulation inside this one run
	// (0 = 1: the engine already supplies request-level concurrency and
	// nesting a GOMAXPROCS-wide SM pool under every worker would
	// oversubscribe the machine). Excluded from the digest — results
	// are identical at every level.
	Parallelism int
	// Blamer tunes the pruning/apportioning heuristics (KindAdvise).
	Blamer blamer.Options
	// Workload supplies branch trips and memory behaviour. Workloads
	// are opaque callbacks, so a request carrying one is uncacheable
	// unless WorkloadKey names it stably (same key ⇒ same behaviour).
	Workload    gpusim.Workload
	WorkloadKey string
}

// normalized returns a copy with defaults resolved, so the digest and
// the execution path can never disagree about what actually ran.
func (r *Request) normalized() Request {
	n := *r
	if n.GPU == nil {
		n.GPU = arch.VoltaV100()
	}
	if n.SimSMs == 0 {
		n.SimSMs = 4
	}
	if n.Kind == KindMeasure {
		n.SamplePeriod = 0 // measure never samples
	} else if n.SamplePeriod <= 0 {
		n.SamplePeriod = 64
	}
	if n.Parallelism == 0 {
		n.Parallelism = 1
	}
	return n
}

// Response is the result of one request. Responses are shared: a cache
// or singleflight hit returns the same inner pointers to every caller,
// so Profile, Advice, and Context must be treated as read-only.
type Response struct {
	// Key is the request digest ("" for uncacheable requests).
	Key string
	// Cached is true when the response was served without running a
	// simulation (result-cache hit or singleflight coalescing).
	Cached bool
	Kind   Kind
	// Cycles is the simulated kernel duration.
	Cycles int64
	// Profile is set for KindProfile and KindAdvise.
	Profile *profiler.Profile
	// ProfileDigest is the profile's stable content digest (drift
	// checking across builds and deployments).
	ProfileDigest string
	// Advice and Context are set for KindAdvise.
	Advice  *adv.Advice
	Context *adv.Context
	// Report is the rendered Figure 8-style report text (KindAdvise).
	// Byte-identical between a cache hit and a cold run.
	Report string
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	// Hits counts result-cache hits (no simulation, no waiting).
	Hits int64 `json:"hits"`
	// Misses counts requests that found neither a cached result nor an
	// in-flight duplicate and ran the pipeline themselves.
	Misses int64 `json:"misses"`
	// Coalesced counts requests that joined an identical in-flight
	// request (singleflight followers: N concurrent duplicates cost
	// Misses=1, Coalesced=N-1, Runs=1).
	Coalesced int64 `json:"coalesced"`
	// Bypass counts uncacheable requests (workload without a key).
	Bypass int64 `json:"bypass"`
	// Runs counts actual pipeline executions (simulations).
	Runs int64 `json:"runs"`
	// Errors counts failed pipeline executions (errors are not cached).
	Errors int64 `json:"errors"`
	// Evictions counts LRU cache evictions.
	Evictions int64 `json:"evictions"`
	// Inflight is the number of requests currently executing or queued
	// for a worker slot.
	Inflight int64 `json:"inflight"`
	// CacheEntries is the current number of cached responses.
	CacheEntries int `json:"cacheEntries"`
	// Workers is the engine's worker-pool bound.
	Workers int `json:"workers"`
}

// Options configures an engine.
type Options struct {
	// Workers bounds concurrent pipeline executions (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache (0 = 512, negative
	// disables caching; singleflight coalescing still applies).
	CacheEntries int
}

// Engine is the concurrent advice engine: a worker pool with a
// content-addressed result cache and singleflight deduplication. Safe
// for concurrent use.
type Engine struct {
	sem chan struct{}

	mu     sync.Mutex
	cache  *lruCache // nil when caching is disabled
	flight map[string]*flightCall

	stats struct {
		hits, misses, coalesced, bypass, runs, errors, evictions, inflight int64
	}
}

// flightCall tracks one in-flight execution joined by duplicates.
type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// New builds an engine.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = 512
	}
	return &Engine{
		sem:    make(chan struct{}, workers),
		cache:  newLRUCache(entries), // nil for entries < 0
		flight: make(map[string]*flightCall),
	}
}

// Do resolves one request: result cache, then singleflight, then a
// worker-bounded pipeline run. Errors are returned to every waiter of
// the failed flight and are never cached.
func (e *Engine) Do(req *Request) (*Response, error) {
	key, err := req.Digest()
	if err != nil {
		return nil, err
	}
	if key == "" {
		e.mu.Lock()
		e.stats.bypass++
		e.mu.Unlock()
		return e.run(req, key)
	}

	e.mu.Lock()
	if e.cache != nil {
		if resp := e.cache.get(key); resp != nil {
			e.stats.hits++
			e.mu.Unlock()
			return asCached(resp), nil
		}
	}
	if c, ok := e.flight[key]; ok {
		e.stats.coalesced++
		e.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		return asCached(c.resp), nil
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight[key] = c
	e.stats.misses++
	e.mu.Unlock()

	resp, err := e.run(req, key)
	c.resp, c.err = resp, err

	e.mu.Lock()
	delete(e.flight, key)
	if err == nil && e.cache != nil {
		e.stats.evictions += int64(e.cache.add(key, resp))
	}
	e.mu.Unlock()
	close(c.done)
	return resp, err
}

// DoAll resolves requests concurrently (one goroutine each; execution
// is bounded by the worker pool, and identical requests coalesce).
// Results are positionally aligned with reqs; each slot carries either
// a response or an error.
func (e *Engine) DoAll(reqs []*Request) ([]*Response, []error) {
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = e.Do(reqs[i])
		}(i)
	}
	wg.Wait()
	return resps, errs
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Hits:         e.stats.hits,
		Misses:       e.stats.misses,
		Coalesced:    e.stats.coalesced,
		Bypass:       e.stats.bypass,
		Runs:         e.stats.runs,
		Errors:       e.stats.errors,
		Evictions:    e.stats.evictions,
		Inflight:     e.stats.inflight,
		CacheEntries: e.cache.len(),
		Workers:      cap(e.sem),
	}
}

// asCached shallow-copies a response with the Cached flag set; the
// inner pointers stay shared (read-only by contract).
func asCached(r *Response) *Response {
	c := *r
	c.Cached = true
	return &c
}

// run executes the pipeline for one request under a worker slot.
func (e *Engine) run(req *Request, key string) (resp *Response, err error) {
	e.mu.Lock()
	e.stats.inflight++
	e.mu.Unlock()
	e.sem <- struct{}{}
	defer func() {
		<-e.sem
		e.mu.Lock()
		e.stats.runs++
		e.stats.inflight--
		if err != nil {
			e.stats.errors++
		}
		e.mu.Unlock()
	}()

	n := req.normalized()
	prog := n.Prog
	if prog == nil {
		prog, err = gpusim.Load(n.Module)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	resp = &Response{Key: key, Kind: n.Kind}

	if n.Kind == KindMeasure {
		res, err := gpusim.Run(prog, n.Launch, n.Workload, gpusim.Config{
			GPU:         n.GPU,
			SimSMs:      n.SimSMs,
			Seed:        n.Seed,
			Parallelism: n.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		resp.Cycles = res.Cycles
		return resp, nil
	}

	prof, err := profiler.CollectProgram(prog, n.Launch, n.Workload, profiler.Options{
		GPU:          n.GPU,
		SamplePeriod: n.SamplePeriod,
		SimSMs:       n.SimSMs,
		Seed:         n.Seed,
		Parallelism:  n.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	resp.Cycles = prof.Cycles
	resp.Profile = prof
	resp.ProfileDigest, err = prof.Digest()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if n.Kind == KindProfile {
		return resp, nil
	}

	ctx, err := adv.BuildContext(n.Module, prof, n.GPU, n.Blamer)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	advice := adv.Advise(ctx, adv.DefaultOptimizers()...)
	resp.Advice = advice
	resp.Context = ctx
	resp.Report = advice.String()
	return resp, nil
}
