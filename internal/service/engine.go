// Package service is the serving subsystem in front of the Figure 2
// pipeline: a bounded worker-pool job engine with a content-addressed
// result cache. It turns the one-kernel-at-a-time advisor into
// something a long-running daemon (cmd/gpad) or a batch driver
// (gpa.Engine, cmd/gpa-bench) can push heavy traffic through.
//
// A Request names a kernel module, launch, architecture model, and the
// result-affecting options; its Digest — SHA-256 of the canonical
// module bytes plus every result-affecting field — is the cache key.
// The engine resolves each request in three tiers: an LRU result cache
// (hit: no simulation), a singleflight table (N identical concurrent
// requests share ONE simulation), and finally a worker-bounded run
// of the pipeline (simulate / profile / blame / advise via the same
// internal packages the gpa API composes). Worker slots are granted by
// a tenant-aware admission scheduler (internal/qos): per-tenant queues
// under deficit-weighted round robin, an interactive lane that
// preempts queued batch work, per-tenant token-bucket quotas shedding
// over-quota callers with ErrQuotaExceeded, and a brownout controller
// shedding batch work first when queued-wait p99 says the engine is
// saturated. Tenant and lane are transport-only metadata: they decide
// who runs next, never what a run computes, and are excluded from the
// digest and every stage key exactly like TraceID.
//
// Cancellation contract: Do takes a context.Context and honors it at
// every tier. A caller abandoning a queued request detaches before a
// worker slot is spent; a caller abandoning a coalesced request
// detaches from the flight without killing the shared run (the other
// waiters still get the result), and the run itself is canceled only
// when its last waiter detaches. Per-request deadlines come from
// Request.Timeout (falling back to Options.DefaultTimeout), and a
// bounded admission queue sheds excess load with ErrQueueFull instead
// of queueing without limit. All cancellation errors wrap
// apierr.ErrCanceled plus the original ctx.Err().
//
// Determinism contract: the simulator is bit-identical at every
// parallelism level, and cached responses are stored verbatim, so a
// cache hit returns byte-identical report text to a cold sequential
// run. Parallelism is therefore excluded from the digest. Responses
// are shared between callers and must be treated as immutable.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/metrics"
	"strings"
	"sync"
	"time"

	"gpa/internal/apierr"
	"gpa/internal/arch"
	"gpa/internal/blamer"
	"gpa/internal/gpusim"
	"gpa/internal/obs"
	"gpa/internal/profiler"
	"gpa/internal/qos"
	"gpa/internal/sass"
	"gpa/internal/store"
	"gpa/internal/structure"

	adv "gpa/internal/advisor"
)

// Kind selects which pipeline stage a request runs.
type Kind int

const (
	// KindMeasure simulates without sampling and reports cycles only.
	KindMeasure Kind = iota
	// KindProfile runs the sampling profiler and reports the profile.
	KindProfile
	// KindAdvise runs the full pipeline: profile, blame, optimizer
	// matching, estimation, ranking, and report rendering.
	KindAdvise
)

// String names the kind ("measure", "profile", "advise").
func (k Kind) String() string {
	switch k {
	case KindMeasure:
		return "measure"
	case KindProfile:
		return "profile"
	case KindAdvise:
		return "advise"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name; the empty string means advise.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "", "advise":
		return KindAdvise, nil
	case "profile":
		return KindProfile, nil
	case "measure":
		return KindMeasure, nil
	}
	//gpa:lint-allow apierrlint gpad maps ParseKind failures to 400 bad_request at the call site, before taxonomy classification
	return 0, fmt.Errorf("service: unknown kind %q (want advise, profile, or measure)", s)
}

// Request is one unit of work for the engine.
type Request struct {
	Kind   Kind
	Module *sass.Module
	// Prog optionally supplies the module's already-flattened program
	// (gpa.Kernel caches one); nil loads it on demand. It must belong
	// to Module.
	Prog *gpusim.Program
	// ModuleHash optionally supplies the SHA-256 of the module's
	// canonical cubin encoding (gpa.Kernel caches one); zero means the
	// digest re-packs the module on demand. Supplying it keeps the
	// warm cache-hit path free of per-request module encoding.
	ModuleHash [32]byte
	Launch     gpusim.LaunchConfig
	// GPU is the architecture model (nil = the paper's V100).
	GPU *arch.GPU
	// SamplePeriod in cycles (0 = 64; ignored and normalized away for
	// KindMeasure, which never samples).
	SamplePeriod int
	// SimSMs bounds detailed SM simulation (0 = 4).
	SimSMs int
	Seed   uint64
	// Parallelism bounds concurrent SM simulation inside this one run
	// (0 = 1: the engine already supplies request-level concurrency and
	// nesting a GOMAXPROCS-wide SM pool under every worker would
	// oversubscribe the machine). Excluded from the digest — results
	// are identical at every level.
	Parallelism int
	// Timeout is this request's deadline, measured from admission
	// (0 = the engine's DefaultTimeout; negative = none even when a
	// default is set). Excluded from the digest — deadlines never
	// affect a completed result.
	Timeout time.Duration
	// Blamer tunes the pruning/apportioning heuristics (KindAdvise).
	Blamer blamer.Options
	// Workload supplies branch trips and memory behaviour. Workloads
	// are opaque callbacks, so a request carrying one is uncacheable
	// unless WorkloadKey names it stably (same key ⇒ same behaviour).
	Workload    gpusim.Workload
	WorkloadKey string
	// TraceID is the per-request trace identifier (accepted from the
	// client or minted by the server) that request logs and the v2
	// result schema echo. It is transport-level observability and is
	// deliberately excluded from the result digest and every stage key
	// — two requests differing only in TraceID share one cache entry,
	// one flight, and byte-identical responses, and drift-check output
	// can never depend on who asked. Pinned by
	// TestTraceIDExcludedFromDigest.
	TraceID string
	// Tenant identifies the requesting client class for admission
	// scheduling, quotas, and per-tenant accounting ("" = the default
	// tenant). Like TraceID it is transport-only metadata, deliberately
	// excluded from the result digest and every stage key: two tenants
	// requesting the same kernel share one cache entry and one flight
	// (the hit is billed to both quota buckets but simulated once), and
	// results can never depend on who asked. Pinned by
	// TestTenantExcludedFromDigest.
	Tenant string
	// Lane selects the admission priority lane (zero value =
	// interactive; cmd/gpad routes /v1/batch and /v1/sweep to
	// qos.LaneBatch). Excluded from the digest for the same reason as
	// Tenant: scheduling priority cannot affect a completed result.
	Lane qos.Lane
}

// defaultGPU is the shared default architecture model (the paper's
// V100). It is resolved once so every nil-GPU request digests and runs
// against one immutable instance instead of minting a fresh model per
// request; nothing in the pipeline mutates a Config's GPU.
var defaultGPU = arch.VoltaV100()

// normalized returns a copy with defaults resolved, so the digest and
// the execution path can never disagree about what actually ran.
func (r *Request) normalized() Request {
	n := *r
	if n.GPU == nil {
		n.GPU = defaultGPU
	}
	if n.SimSMs == 0 {
		n.SimSMs = 4
	}
	if n.Kind == KindMeasure {
		n.SamplePeriod = 0 // measure never samples
	} else if n.SamplePeriod <= 0 {
		n.SamplePeriod = 64
	}
	if n.Parallelism == 0 {
		n.Parallelism = 1
	} else if mp := runtime.GOMAXPROCS(0); n.Parallelism > mp {
		// gpusim.Run caps this too; normalizing here keeps the engine's
		// effective configuration honest in one place. Parallelism never
		// affects results and is excluded from the digest.
		n.Parallelism = mp
	}
	return n
}

// Response is the result of one request. Responses are shared: a cache
// or singleflight hit returns the same inner pointers to every caller,
// so Profile, Advice, and Context must be treated as read-only.
type Response struct {
	// Key is the request digest ("" for uncacheable requests).
	Key string
	// Cached is true when the response was served without running a
	// simulation (result-cache hit or singleflight coalescing).
	Cached bool
	Kind   Kind
	// Cycles is the simulated kernel duration.
	Cycles int64
	// ElapsedMS is the wall-clock cost in milliseconds of the pipeline
	// run that produced this response. Cache and singleflight hits
	// return the original run's value (the cost the cache avoided), so
	// a hit stays byte-identical to the run it shares.
	ElapsedMS float64
	// Profile is set for KindProfile and KindAdvise.
	Profile *profiler.Profile
	// ProfileDigest is the profile's stable content digest (drift
	// checking across builds and deployments).
	ProfileDigest string
	// Advice and Context are set for KindAdvise.
	Advice  *adv.Advice
	Context *adv.Context
	// Report is the rendered Figure 8-style report text (KindAdvise).
	// Byte-identical between a cache hit and a cold run.
	Report string

	// memo caches one caller-layer view of this response (see Memo).
	// It is a pointer so the cached shallow copy shares it.
	memo *respMemo
}

// respMemo holds a caller-built value derived from a response, built at
// most once per underlying response.
type respMemo struct {
	once sync.Once
	v    any
}

// Memo returns a value derived from this response, building it at most
// once per underlying response (cache hits and coalesced copies share
// the memo). The gpa layer uses it to avoid re-materializing its Report
// wrapper on every warm cache hit. Responses not produced by an engine
// run have no memo and just invoke build.
func (r *Response) Memo(build func() any) any {
	m := r.memo
	if m == nil {
		return build()
	}
	m.once.Do(func() { m.v = build() })
	return m.v
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	// Hits counts result-cache hits (no simulation, no waiting).
	Hits int64 `json:"hits"`
	// Misses counts requests that found neither a cached result nor an
	// in-flight duplicate and started a new pipeline run.
	Misses int64 `json:"misses"`
	// Coalesced counts requests that joined an identical in-flight
	// request (singleflight followers: N concurrent duplicates cost
	// Misses=1, Coalesced=N-1, Runs=1).
	Coalesced int64 `json:"coalesced"`
	// Bypass counts uncacheable requests (workload without a key).
	Bypass int64 `json:"bypass"`
	// Runs counts actual pipeline executions. A run may still reuse
	// individual stage artifacts (e.g. advise over a stored profile);
	// Sims counts the simulations that actually happened.
	Runs int64 `json:"runs"`
	// Sims counts actual simulator invocations (gpusim runs and
	// profile collections). Runs-with-stage-reuse keep Sims flat: a
	// freshly restarted engine serving from a warm on-disk store
	// reports Runs==0 and Sims==0.
	Sims int64 `json:"sims"`
	// StageServed counts requests satisfied entirely from stage
	// artifacts without a pipeline run (no Runs increment).
	StageServed int64 `json:"stageServed"`
	// StructureBuilds counts module front-end structure analyses. An
	// arch sweep over one module performs exactly one.
	StructureBuilds int64 `json:"structureBuilds"`
	// Errors counts failed pipeline executions (errors are not cached).
	Errors int64 `json:"errors"`
	// Canceled counts callers that abandoned a request — context
	// canceled or deadline expired — while it was queued, in flight, or
	// coalesced onto a shared flight.
	Canceled int64 `json:"canceled"`
	// Shed counts requests rejected with ErrQueueFull because the
	// admission queue was at capacity.
	Shed int64 `json:"shed"`
	// QuotaShed counts requests rejected with ErrQuotaExceeded because
	// the tenant's token bucket was empty (HTTP 429 at gpad).
	QuotaShed int64 `json:"quotaShed"`
	// BrownoutShed counts requests shed by the overload controller
	// (ErrOverloaded): the engine was saturated and degraded batch-lane
	// work to protect interactive latency.
	BrownoutShed int64 `json:"brownoutShed"`
	// QosDropped counts admitted waiters that left the queue ungranted:
	// the caller canceled while queued, or a drain abandoned queued
	// batch work.
	QosDropped int64 `json:"qosDropped"`
	// Evictions counts LRU cache evictions.
	Evictions int64 `json:"evictions"`
	// Inflight is the number of requests currently executing or queued
	// for a worker slot.
	Inflight int64 `json:"inflight"`
	// Queued is the number of admitted requests currently waiting for a
	// worker slot (Inflight minus the ones actually running).
	Queued int64 `json:"queued"`
	// QueueCapacity is the admission bound beyond the worker pool
	// (Options.MaxQueue; 0 = unbounded admission).
	QueueCapacity int64 `json:"queueCapacity"`
	// InteractiveQueued / BatchQueued split Queued by admission lane.
	InteractiveQueued int64 `json:"interactiveQueued"`
	BatchQueued       int64 `json:"batchQueued"`
	// BrownoutLevel is the overload controller's current level (0 =
	// healthy; at the configured MaxLevel all batch arrivals are shed).
	BrownoutLevel int64 `json:"brownoutLevel"`
	// CacheEntries is the current number of cached responses.
	CacheEntries int `json:"cacheEntries"`
	// Workers is the engine's worker-pool bound.
	Workers int `json:"workers"`
	// PoolGets / PoolHits are the simulator's per-run state-arena
	// counters (gpusim.PoolStats): how many arenas were acquired
	// process-wide and how many were recycled pool hits. A warm engine
	// should show PoolHits tracking PoolGets.
	PoolGets int64 `json:"poolGets"`
	PoolHits int64 `json:"poolHits"`
	// FFPeriodsDetected / FFCyclesSkipped / FFFallbacks are the
	// simulator's process-wide steady-state memoization counters
	// (gpusim.FFStats): periods locked and fast-forwarded, simulated
	// cycles skipped analytically instead of stepped, and detected
	// periods abandoned without skipping. Periodic workloads show
	// FFCyclesSkipped dwarfing stepped cycles; aperiodic ones show all
	// three near zero.
	FFPeriodsDetected int64 `json:"ffPeriodsDetected"`
	FFCyclesSkipped   int64 `json:"ffCyclesSkipped"`
	FFFallbacks       int64 `json:"ffFallbacks"`
	// StageHits / StageMisses / StageEvictions are the in-memory
	// artifact-store counters (per-stage LRU lookups).
	StageHits      int64 `json:"stageHits"`
	StageMisses    int64 `json:"stageMisses"`
	StageEvictions int64 `json:"stageEvictions"`
	// StoreHits / StoreMisses / StorePuts / StoreCorrupt / StoreErrors
	// are the on-disk artifact-store counters. StoreCorrupt counts
	// blobs rejected by verification (truncation, bit flips, wrong
	// schema, unreadable files) and degraded to recomputed misses.
	StoreHits    int64 `json:"storeHits"`
	StoreMisses  int64 `json:"storeMisses"`
	StorePuts    int64 `json:"storePuts"`
	StoreCorrupt int64 `json:"storeCorrupt"`
	StoreErrors  int64 `json:"storeErrors"`
	// AllocsPerJob is the mean number of heap allocations per served
	// job (hits, coalesced, bypassed, and executed alike) since the
	// engine was created, measured from runtime.MemStats.Mallocs. It is
	// process-wide, so concurrent non-engine work inflates it; on a
	// dedicated gpad it is the serving hot path's allocation rate.
	AllocsPerJob float64 `json:"allocsPerJob"`
	// Tenants is the per-tenant accounting snapshot (served, shed,
	// quota, queue depth) keyed by tenant ID. Cardinality is bounded by
	// the scheduler's MaxTenants overflow class, so gpad can render it
	// as labeled /metrics series within a closed label set.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's accounting snapshot (see qos.TenantStats).
type TenantStats = qos.TenantStats

// Options configures an engine.
type Options struct {
	// Workers bounds concurrent pipeline executions (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache (0 = 512, negative
	// disables caching; singleflight coalescing still applies).
	CacheEntries int
	// MaxQueue bounds how many pipeline runs may wait for a worker slot
	// beyond the Workers already running; a run arriving past the bound
	// is shed immediately with ErrQueueFull (0 = unbounded, the
	// pre-load-shedding behaviour; negative = no queue at all).
	MaxQueue int
	// DefaultTimeout is the per-request deadline applied to every
	// request whose own Timeout is zero (0 = none).
	DefaultTimeout time.Duration
	// StageEntries bounds each per-stage in-memory artifact cache of
	// the store layer (0 = 512 per stage; negative disables stage
	// caching entirely, leaving only the end-to-end result cache).
	StageEntries int
	// Disk is the persistent artifact backend (internal/store): stage
	// outputs survive restarts and are shared across engines pointed at
	// one directory. nil = in-memory stages only.
	Disk *store.Disk
	// QoS is the tenant-aware admission configuration (nil = one
	// default tenant, no quotas, no interactive reserve, brownout off —
	// the flat pre-tenancy behaviour plus FIFO fairness). It must be
	// Validate-clean; qos.ParseConfig and the qos builders guarantee
	// that, and New panics on an invalid config (a programmer error,
	// not a runtime condition).
	QoS *qos.Config
}

// Engine is the concurrent advice engine: a worker pool with a
// content-addressed result cache and singleflight deduplication. Safe
// for concurrent use.
type Engine struct {
	// adm is the tenant-aware admission scheduler (internal/qos): it
	// owns the worker-slot accounting, the per-tenant queues and
	// quotas, and the brownout controller that the engine's old flat
	// Workers+MaxQueue semaphore pair has been replaced by.
	adm            *qos.Scheduler
	defaultTimeout time.Duration

	// baseCtx parents every flight's run context, so Shutdown's hard
	// stop can cancel all in-flight simulations at once (with
	// ErrShuttingDown as the cause, so their failures surface as
	// shutdown, not as a client-side cancel).
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	// drainCh is closed when Shutdown begins: new requests are
	// rejected and queued (not yet running) runs are abandoned.
	drainCh chan struct{}

	// stages/disk are the per-stage artifact store backends (see
	// internal/store and stages.go): consulted before each pipeline
	// stage runs, written after it completes. stages is nil when stage
	// caching is disabled; disk is nil without a -store-dir.
	stages *store.Memory
	disk   *store.Disk

	mu       sync.Mutex
	draining bool
	cache    *lruCache // nil when caching is disabled
	flight   map[digestKey]*flightCall

	// baseMallocs is the process's cumulative heap-object allocation
	// count at engine creation (heapAllocObjects); Stats reports the
	// process-wide allocation delta per served job against it.
	baseMallocs uint64

	// lat records per-stage pipeline latencies (assemble, simulate,
	// blame, advise) for the /metrics histograms. Stages record only
	// when they actually execute, so the counts correlate with
	// runs/sims, not request volume.
	lat *obs.StageLatency

	stats struct {
		hits, misses, coalesced, bypass, runs, errors, canceled, shed, evictions, inflight int64
		sims, stageServed, structureBuilds                                                 int64
	}
}

// flightCall tracks one in-flight execution joined by duplicates.
// waiters is guarded by Engine.mu; when it drops to zero every caller
// has detached and cancel reclaims the run.
type flightCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	resp    *Response
	// cachedResp is the shared Cached=true view handed to coalesced
	// followers, built once when the run completes.
	cachedResp *Response
	err        error
}

// New builds an engine.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = 512
	}
	qosCfg := qos.Config{}
	if opts.QoS != nil {
		if err := opts.QoS.Validate(); err != nil {
			panic(fmt.Sprintf("service: invalid QoS config: %v", err))
		}
		qosCfg = *opts.QoS
	}
	//gpa:lint-allow ctxfirst engine-lifetime base context, not a per-call one; Shutdown cancels it and per-request ctxs layer on top
	baseCtx, baseCancel := context.WithCancelCause(context.Background())
	e := &Engine{
		adm:            qos.NewScheduler(workers, opts.MaxQueue, qosCfg),
		defaultTimeout: opts.DefaultTimeout,
		baseCtx:        baseCtx,
		baseCancel:     baseCancel,
		drainCh:        make(chan struct{}),
		cache:          newLRUCache(entries), // nil for entries < 0
		flight:         make(map[digestKey]*flightCall),
		stages:         store.NewMemory(opts.StageEntries), // nil for StageEntries < 0
		disk:           opts.Disk,
		baseMallocs:    heapAllocObjects(),
		lat:            obs.NewStageLatency(),
	}
	return e
}

// withDeadline applies the request's deadline (or the engine default)
// to ctx; the returned cancel must run even on the no-deadline path.
func (e *Engine) withDeadline(ctx context.Context, req *Request) (context.Context, context.CancelFunc) {
	timeout := req.Timeout
	if timeout == 0 {
		timeout = e.defaultTimeout
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// Do resolves one request: result cache, then singleflight, then a
// worker-bounded pipeline run. A canceled ctx detaches this caller
// wherever it is waiting — queued, running, or coalesced — and returns
// an error wrapping ErrCanceled; the shared run itself is canceled
// only when its last waiter detaches. Errors are returned to every
// waiter of the failed flight and are never cached.
func (e *Engine) Do(ctx context.Context, req *Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := apierr.CtxErr(ctx); err != nil {
		e.count(&e.stats.canceled)
		return nil, fmt.Errorf("service: %w", err)
	}
	select {
	case <-e.drainCh:
		return nil, fmt.Errorf("service: %w", apierr.ErrShuttingDown)
	default:
	}
	// Quota is charged before the cache and singleflight tiers: every
	// request costs its tenant one token — cache hits and coalesced
	// followers included, so a shared run is billed to every bucket
	// that asked for it — and over-quota work is shed before costing
	// anything.
	if err := e.adm.Charge(req.Tenant); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	ctx, cancel := e.withDeadline(ctx, req)
	defer cancel()

	key, cacheable, err := req.digest()
	if err != nil {
		return nil, err
	}
	if !cacheable {
		e.count(&e.stats.bypass)
		// Uncacheable requests cannot share a flight, but the caller's
		// ctx still cancels the run directly.
		resp, err := e.execute(ctx, req, "")
		if err == nil {
			e.adm.Served(req.Tenant)
		}
		return resp, err
	}

	e.mu.Lock()
	if e.cache != nil {
		if resp := e.cache.get(key); resp != nil {
			e.stats.hits++
			e.mu.Unlock()
			e.adm.Served(req.Tenant)
			// The cached view is prebuilt at insertion: the warm hit
			// path performs no allocation at all.
			return resp, nil
		}
	}
	c, joined := e.flight[key]
	if joined {
		c.waiters++
		e.stats.coalesced++
		e.mu.Unlock()
	} else {
		runCtx, cancelRun := context.WithCancel(e.baseCtx)
		c = &flightCall{done: make(chan struct{}), cancel: cancelRun, waiters: 1}
		e.flight[key] = c
		e.stats.misses++
		e.mu.Unlock()
		// The run is owned by the flight, not by this caller: it keeps
		// going if this caller detaches while other waiters remain, and
		// dies (via cancelRun) when the last waiter detaches. The
		// request is copied so the caller's Request (often stack-
		// allocated by the gpa layer) never escapes into the goroutine.
		reqCopy := *req
		keyCopy := key // keeps the caller's key off the heap on hit paths
		keyStr := hex.EncodeToString(key[:])
		go func() {
			resp, err := e.execute(runCtx, &reqCopy, keyStr)
			cancelRun()
			e.mu.Lock()
			// detach may already have removed an abandoned flight and a
			// fresh caller may have installed a new one under the same
			// key; only remove our own entry.
			if e.flight[keyCopy] == c {
				delete(e.flight, keyCopy)
			}
			c.resp, c.err = resp, err
			if resp != nil {
				c.cachedResp = asCached(resp)
			}
			if err == nil && e.cache != nil {
				e.stats.evictions += int64(e.cache.add(keyCopy, resp))
			}
			e.mu.Unlock()
			close(c.done)
		}()
	}

	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		e.adm.Served(req.Tenant)
		if joined {
			return c.cachedResp, nil
		}
		return c.resp, nil
	case <-ctx.Done():
		e.detach(key, c)
		return nil, fmt.Errorf("service: %w", apierr.Canceled(ctx.Err()))
	}
}

// detach removes one waiter from a flight; the last waiter out cancels
// the shared run (nobody is left to consume its result) and unlinks
// the flight immediately, so a fresh caller arriving while the
// canceled run unwinds starts a new run instead of inheriting the
// abandoned flight's cancellation error.
func (e *Engine) detach(key digestKey, c *flightCall) {
	e.mu.Lock()
	e.stats.canceled++
	c.waiters--
	last := c.waiters == 0
	if last && e.flight[key] == c {
		delete(e.flight, key)
	}
	e.mu.Unlock()
	if last {
		c.cancel()
	}
}

// count bumps one stats counter under the engine lock.
func (e *Engine) count(f *int64) {
	e.mu.Lock()
	*f++
	e.mu.Unlock()
}

// DoAll resolves requests concurrently (one goroutine each; execution
// is bounded by the worker pool, and identical requests coalesce).
// Results are positionally aligned with reqs; each slot carries either
// a response or an error. A canceled ctx abandons every unfinished
// request.
func (e *Engine) DoAll(ctx context.Context, reqs []*Request) ([]*Response, []error) {
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = e.Do(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return resps, errs
}

// Shutdown drains the engine: new requests are rejected with
// ErrShuttingDown, queued batch-lane runs are abandoned immediately,
// queued interactive-lane runs keep being scheduled (the
// latency-sensitive queue drains before the engine gives up), and
// in-flight simulations are given until ctx's deadline to finish.
// When the deadline expires first, every remaining simulation — and
// every still-queued interactive run — is canceled (the cancel
// checkpoints make them return promptly) and Shutdown keeps waiting
// for them to unwind before returning ctx's error. A nil error means
// the engine drained cleanly. Shutdown is idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.drainCh)
	}
	e.mu.Unlock()
	e.adm.Drain()

	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	hardStopped := false
	for {
		e.mu.Lock()
		idle := e.stats.inflight == 0
		e.mu.Unlock()
		if idle {
			if hardStopped {
				return fmt.Errorf("service: shutdown: %w", apierr.Canceled(ctx.Err()))
			}
			return nil
		}
		select {
		case <-ctx.Done():
			if !hardStopped {
				hardStopped = true
				// Cancel every in-flight simulation, tagging the cause so
				// their errors report "shutting down" rather than a
				// client-side cancel, and abandon any interactive work
				// still queued (its grace period is over).
				e.baseCancel(apierr.ErrShuttingDown)
				e.adm.Halt()
			}
		case <-tick.C:
		}
	}
}

// heapAllocObjects reads the process's cumulative heap-object
// allocation count via runtime/metrics, which — unlike
// runtime.ReadMemStats — does not stop the world, so scraping /statsz
// never pauses the serving hot path it monitors.
func heapAllocObjects() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}

// StageLatency exposes the engine's per-stage latency recorder so the
// serving layer (cmd/gpad) can render it at /metrics and fold its own
// assemble-time observations (kernel construction happens above the
// engine) into the same histograms.
func (e *Engine) StageLatency() *obs.StageLatency { return e.lat }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	allocs := heapAllocObjects()
	poolGets, poolHits := gpusim.PoolStats()
	ffPeriods, ffCycles, ffFallbacks := gpusim.FFStats()
	stageStats := e.stages.Stats() // nil-safe: zero Stats without stage caching
	var diskStats store.Stats
	if e.disk != nil {
		diskStats = e.disk.Stats()
	}
	adm := e.adm.Snapshot()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Hits:          e.stats.hits,
		Misses:        e.stats.misses,
		Coalesced:     e.stats.coalesced,
		Bypass:        e.stats.bypass,
		Runs:          e.stats.runs,
		Sims:          e.stats.sims,
		StageServed:   e.stats.stageServed,
		Errors:        e.stats.errors,
		Canceled:      e.stats.canceled,
		Shed:          e.stats.shed,
		QuotaShed:     adm.QuotaShed,
		BrownoutShed:  adm.BrownoutShed,
		QosDropped:    adm.Dropped,
		Evictions:     e.stats.evictions,
		Inflight:      e.stats.inflight,
		Queued:        adm.Queued,
		QueueCapacity: e.adm.QueueCapacity(),

		InteractiveQueued: adm.InteractiveQueued,
		BatchQueued:       adm.BatchQueued,
		BrownoutLevel:     int64(adm.BrownoutLevel),
		Tenants:           adm.Tenants,

		CacheEntries: e.cache.len(),
		Workers:      e.adm.Workers(),
		PoolGets:     poolGets,
		PoolHits:     poolHits,

		FFPeriodsDetected: ffPeriods,
		FFCyclesSkipped:   ffCycles,
		FFFallbacks:       ffFallbacks,

		StructureBuilds: e.stats.structureBuilds,
		StageHits:       stageStats.Hits,
		StageMisses:     stageStats.Misses,
		StageEvictions:  stageStats.Evictions,
		StoreHits:       diskStats.Hits,
		StoreMisses:     diskStats.Misses,
		StorePuts:       diskStats.Puts,
		StoreCorrupt:    diskStats.Corrupt,
		StoreErrors:     diskStats.Errors,
	}
	if jobs := st.Hits + st.Misses + st.Coalesced + st.Bypass; jobs > 0 {
		st.AllocsPerJob = float64(allocs-e.baseMallocs) / float64(jobs)
	}
	return st
}

// asCached shallow-copies a response with the Cached flag set; the
// inner pointers stay shared (read-only by contract).
func asCached(r *Response) *Response {
	c := *r
	c.Cached = true
	return &c
}

// execute runs the pipeline for one request: the per-stage artifact
// store first (a full-stage hit costs no admission slot and no run),
// then the admission queue, then a worker slot (abandoned early if ctx
// dies or the engine drains), then the pipeline itself under the run
// context — with each Figure 2 stage consulting the store before it
// runs and publishing its artifact after.
func (e *Engine) execute(ctx context.Context, req *Request, key string) (resp *Response, err error) {
	n := req.normalized()
	var sk stageKeys
	stageOK := false
	if e.stagesEnabled() {
		if k, ok, kerr := n.stageKeys(); kerr == nil && ok {
			sk, stageOK = k, true
		}
	}
	if stageOK {
		if resp := e.serveFromStore(&n, key, &sk); resp != nil {
			e.count(&e.stats.stageServed)
			return resp, nil
		}
	}
	e.count(&e.stats.inflight)
	defer func() {
		e.mu.Lock()
		e.stats.inflight--
		e.mu.Unlock()
	}()
	release, aerr := e.adm.Acquire(ctx, n.Tenant, n.Lane)
	if aerr != nil {
		switch {
		case errors.Is(aerr, apierr.ErrQueueFull):
			e.count(&e.stats.shed)
		case errors.Is(aerr, apierr.ErrCanceled) &&
			errors.Is(context.Cause(ctx), apierr.ErrShuttingDown):
			// Queued when the hard stop fired: the caller didn't give
			// up, the server went away.
			return nil, fmt.Errorf("service: %w: abandoned in queue", apierr.ErrShuttingDown)
		}
		return nil, fmt.Errorf("service: %w", aerr)
	}
	defer release()
	defer func() {
		e.mu.Lock()
		e.stats.runs++
		if err != nil {
			e.stats.errors++
		}
		e.mu.Unlock()
	}()
	// A run canceled by Shutdown's hard stop failed because the SERVER
	// is going away, not because the caller gave up; report it as such.
	defer func() {
		if err != nil && errors.Is(err, apierr.ErrCanceled) &&
			errors.Is(context.Cause(ctx), apierr.ErrShuttingDown) {
			err = fmt.Errorf("service: %w: in-flight run canceled by engine shutdown",
				apierr.ErrShuttingDown)
			resp = nil
		}
	}()
	if err := apierr.CtxErr(ctx); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}

	start := time.Now()
	// The front-end artifact shares one program + structure build per
	// module across every request and architecture; without stage
	// caching the front-end is rebuilt per request as before.
	var fa *frontendArtifact
	if stageOK {
		fa = e.frontendFor(&n, sk.frontend)
	}
	prog := n.Prog
	if prog == nil {
		assembleStart := time.Now()
		if fa != nil {
			prog, err = fa.programOf(nil)
		} else {
			prog, err = gpusim.Load(n.Module)
		}
		e.lat.Since(obs.StageAssemble, assembleStart)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	resp = &Response{Key: key, Kind: n.Kind, memo: &respMemo{}}

	if n.Kind == KindMeasure {
		simStart := time.Now()
		res, err := gpusim.Run(ctx, prog, n.Launch, n.Workload, gpusim.Config{
			GPU:         n.GPU,
			SimSMs:      n.SimSMs,
			Seed:        n.Seed,
			Parallelism: n.Parallelism,
		})
		e.lat.Since(obs.StageSimulate, simStart)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		e.count(&e.stats.sims)
		resp.Cycles = res.Cycles
		prog.Recycle(res)
		resp.ElapsedMS = elapsedMS(start)
		if stageOK {
			ma := &measureArtifact{Cycles: resp.Cycles, ElapsedMS: resp.ElapsedMS}
			e.stagePut(store.StageMeasure, sk.measure, ma,
				func() ([]byte, error) { return json.Marshal(ma) })
		}
		return resp, nil
	}

	// Profile stage: an advise run whose advice artifact missed may
	// still reuse a stored profile (e.g. a prior /v1/profile) and skip
	// the simulation entirely.
	var prof *profiler.Profile
	var profDigest string
	if stageOK && n.Kind == KindAdvise {
		if pa := e.profileArtifactGet(sk.profile); pa != nil {
			prof, profDigest = pa.prof, pa.digest
		}
	}
	if prof == nil {
		simStart := time.Now()
		prof, err = profiler.CollectProgram(ctx, prog, n.Launch, n.Workload, profiler.Options{
			GPU:          n.GPU,
			SamplePeriod: n.SamplePeriod,
			SimSMs:       n.SimSMs,
			Seed:         n.Seed,
			Parallelism:  n.Parallelism,
		})
		e.lat.Since(obs.StageSimulate, simStart)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		e.count(&e.stats.sims)
		// The canonical JSON encoding is hashed directly (identical to
		// Profile.Digest) and doubles as the artifact payload, so a
		// store round-trip reproduces this digest byte-for-byte.
		data, err := json.Marshal(prof)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		sum := sha256.Sum256(data)
		profDigest = hex.EncodeToString(sum[:])
		if stageOK {
			pe := elapsedMS(start)
			pa := &profileArtifact{prof: prof, digest: profDigest, elapsedMS: pe}
			e.stagePut(store.StageProfile, sk.profile, pa, func() ([]byte, error) {
				return json.Marshal(profileEnvelope{ElapsedMS: pe, Profile: data})
			})
			if n.Kind == KindProfile {
				resp.Cycles = prof.Cycles
				resp.Profile = prof
				resp.ProfileDigest = profDigest
				// The response replays the artifact's elapsed so a warm
				// store hit stays byte-identical to this cold run.
				resp.ElapsedMS = pe
				return resp, nil
			}
		}
	}
	resp.Cycles = prof.Cycles
	resp.Profile = prof
	resp.ProfileDigest = profDigest
	if n.Kind == KindProfile {
		resp.ElapsedMS = elapsedMS(start)
		return resp, nil
	}

	if err := apierr.CtxErr(ctx); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	// Advice stage: a stored blame/advise artifact (same profile, same
	// blamer options) serves verbatim over the profile above.
	if stageOK {
		if aa := e.adviceArtifactGet(sk.advice); aa != nil {
			resp.Advice = aa.advice
			resp.Report = aa.report
			resp.ElapsedMS = elapsedMS(start)
			return resp, nil
		}
	}
	blameStart := time.Now()
	var st *structure.Structure
	mod := n.Module
	if fa != nil {
		mod = fa.mod
		st, err = e.structureOf(fa)
	} else {
		e.count(&e.stats.structureBuilds)
		st, err = structure.Analyze(n.Module)
	}
	if err != nil {
		e.lat.Since(obs.StageBlame, blameStart)
		return nil, fmt.Errorf("service: %w", err)
	}
	actx, err := adv.BuildContextWithStructure(mod, st, prof, n.GPU, n.Blamer)
	e.lat.Since(obs.StageBlame, blameStart)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	adviseStart := time.Now()
	advice := adv.Advise(actx, adv.DefaultOptimizers()...)
	resp.Advice = advice
	resp.Context = actx
	resp.Report = advice.String()
	e.lat.Since(obs.StageAdvise, adviseStart)
	resp.ElapsedMS = elapsedMS(start)
	if stageOK {
		aa := &adviceArtifact{advice: advice, report: resp.Report, elapsedMS: resp.ElapsedMS}
		e.stagePut(store.StageAdvice, sk.advice, aa, func() ([]byte, error) {
			return json.Marshal(adviceEnvelope{ElapsedMS: aa.elapsedMS, Report: aa.report, Advice: advice})
		})
	}
	return resp, nil
}

// elapsedMS renders a stage duration in milliseconds with microsecond
// resolution (stable-width JSON, no sub-ns noise).
func elapsedMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
