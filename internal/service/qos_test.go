package service

// Tenant-fairness and admission contract tests: tenant/lane metadata
// never reaches a digest, two tenants share one flight but both get
// billed and counted, DWRR keeps a flooding tenant from starving an
// equal-weight one, quotas isolate tenants from each other, and
// Shutdown drains the interactive lane before abandoning batch work.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gpa/internal/apierr"
	"gpa/internal/qos"
)

func TestTenantExcludedFromDigest(t *testing.T) {
	a := testRequest(t, KindAdvise)
	b := testRequest(t, KindAdvise)
	b.Tenant = "tenant-b"
	b.Lane = qos.LaneBatch
	c := testRequest(t, KindAdvise)
	c.Tenant = "another-tenant-entirely"

	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da == "" {
		t.Fatal("empty digest for cacheable request")
	}
	if da != db || db != dc {
		t.Fatalf("tenant/lane leaked into the digest: %s / %s / %s", da, db, dc)
	}

	// Stage keys must exclude them too: one tenant's run warms the
	// artifacts every other tenant reads.
	na, nb := a.normalized(), b.normalized()
	ska, oka, err := na.stageKeys()
	if err != nil || !oka {
		t.Fatalf("stage keys: ok=%v err=%v", oka, err)
	}
	skb, okb, err := nb.stageKeys()
	if err != nil || !okb {
		t.Fatalf("stage keys: ok=%v err=%v", okb, err)
	}
	if ska != skb {
		t.Fatal("tenant/lane leaked into stage keys")
	}
}

// TestCrossTenantSingleflight: two tenants requesting the same kernel
// concurrently share ONE simulation — and both tenants' served
// accounting still sees their own request.
func TestCrossTenantSingleflight(t *testing.T) {
	e := New(Options{Workers: 2})
	base := testRequest(t, KindAdvise)

	var wg sync.WaitGroup
	resps := make([]*Response, 2)
	for i, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			r := *base
			r.Tenant = tenant
			resp, err := e.Do(context.Background(), &r)
			if err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
				return
			}
			resps[i] = resp
		}(i, tenant)
	}
	wg.Wait()

	st := e.Stats()
	if st.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (tenants must not split the flight)", st.Runs)
	}
	if resps[0] == nil || resps[1] == nil || resps[0].Report != resps[1].Report {
		t.Fatal("cross-tenant responses differ")
	}
	if a, b := st.Tenants["alpha"].Served, st.Tenants["beta"].Served; a != 1 || b != 1 {
		t.Fatalf("served alpha=%d beta=%d, want 1/1 (the shared run is credited to both)", a, b)
	}
}

// TestTenantFairnessUnderSaturation is the engine half of the ISSUE's
// fairness pin, run under -race by CI: a 10:1 offered-load imbalance
// between two equal-weight tenants on a saturated single worker
// completes ~1:1 while both are backlogged — tenant b's whole backlog
// finishes within a 1.5:1 tolerance (plus recording slack) instead of
// waiting behind tenant a's flood.
func TestTenantFairnessUnderSaturation(t *testing.T) {
	e := New(Options{Workers: 1})
	// Occupy the single worker slot directly at the scheduler so every
	// request below queues before any grant happens.
	release, err := e.adm.Acquire(context.Background(), "hog", qos.LaneInteractive)
	if err != nil {
		t.Fatal(err)
	}

	const aJobs, bJobs = 30, 3
	var mu sync.Mutex
	var completions []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, seedBase uint64, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := testRequest(t, KindMeasure)
				r.Seed = seed // distinct digest per job: no coalescing
				r.Tenant = tenant
				if _, err := e.Do(context.Background(), r); err != nil {
					t.Errorf("tenant %s: %v", tenant, err)
					return
				}
				mu.Lock()
				completions = append(completions, tenant)
				mu.Unlock()
			}(seedBase + uint64(i))
		}
	}
	enqueue("a", 1000, aJobs)
	waitForQueued(t, e, aJobs)
	enqueue("b", 2000, bJobs)
	waitForQueued(t, e, aJobs+bJobs)

	release()
	wg.Wait()

	aBeforeLastB, bSeen := 0, 0
	for _, tenant := range completions {
		if tenant == "b" {
			bSeen++
			if bSeen == bJobs {
				break
			}
		} else {
			aBeforeLastB++
		}
	}
	if bSeen != bJobs {
		t.Fatalf("tenant b completed %d of %d jobs", bSeen, bJobs)
	}
	// Strict DWRR alternation yields aBeforeLastB == bJobs; allow the
	// 1.5:1 ISSUE tolerance plus slack for completion-recording order.
	tolerance := 1.5
	if max := int(tolerance*bJobs) + 2; aBeforeLastB > max {
		t.Fatalf("tenant a completed %d jobs before tenant b's backlog of %d drained (want ≤ %d): offered load leaked into completions: %v",
			aBeforeLastB, bJobs, max, completions)
	}
}

// waitForQueued polls engine stats until the admission queue holds n.
func waitForQueued(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, e.Stats().Queued)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestQuotaIsolation: an over-quota tenant is shed with a usable
// Retry-After while an in-quota tenant is never shed — not once.
func TestQuotaIsolation(t *testing.T) {
	cfg, err := qos.NewConfig().
		Tenant("metered", qos.NewTenantConfig().Quota(0.001, 1)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, QoS: &cfg})

	r := testRequest(t, KindMeasure)
	r.Tenant = "metered"
	if _, err := e.Do(context.Background(), r); err != nil {
		t.Fatalf("first metered request (within burst): %v", err)
	}
	_, err = e.Do(context.Background(), r)
	if !errors.Is(err, apierr.ErrQuotaExceeded) {
		t.Fatalf("over-quota request: err=%v, want ErrQuotaExceeded", err)
	}
	var qe *apierr.QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("quota error carries no Retry-After: %v", err)
	}

	// The in-quota tenant keeps being served — cache hits included,
	// each one billed to ITS bucket, never metered's.
	for i := 0; i < 20; i++ {
		r2 := testRequest(t, KindMeasure)
		r2.Tenant = "free"
		if _, err := e.Do(context.Background(), r2); err != nil {
			t.Fatalf("in-quota tenant shed on request %d while another tenant was over quota: %v", i, err)
		}
	}
	st := e.Stats()
	if st.QuotaShed != 1 || st.Tenants["metered"].QuotaShed != 1 {
		t.Fatalf("quotaShed = %d (metered %d), want 1", st.QuotaShed, st.Tenants["metered"].QuotaShed)
	}
	if st.Shed != 0 || st.Tenants["free"].QuotaShed != 0 {
		t.Fatalf("in-quota tenant took collateral sheds: shed=%d freeQuotaShed=%d", st.Shed, st.Tenants["free"].QuotaShed)
	}
	if st.Tenants["free"].Served != 20 {
		t.Fatalf("free tenant served = %d, want 20", st.Tenants["free"].Served)
	}
}

// TestShutdownDrainsInteractiveAbandonsBatch pins the drain-ordering
// satellite: Shutdown fails queued batch work with ErrShuttingDown
// immediately but keeps scheduling queued interactive work until done.
func TestShutdownDrainsInteractiveAbandonsBatch(t *testing.T) {
	e := New(Options{Workers: 1})
	release, err := e.adm.Acquire(context.Background(), "hog", qos.LaneInteractive)
	if err != nil {
		t.Fatal(err)
	}

	batchErr := make(chan error, 1)
	go func() {
		r := testRequest(t, KindMeasure)
		r.Seed = 101
		r.Lane = qos.LaneBatch
		_, err := e.Do(context.Background(), r)
		batchErr <- err
	}()
	waitForQueued(t, e, 1)
	interactiveErr := make(chan error, 1)
	go func() {
		r := testRequest(t, KindMeasure)
		r.Seed = 102
		_, err := e.Do(context.Background(), r)
		interactiveErr <- err
	}()
	waitForQueued(t, e, 2)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- e.Shutdown(context.Background()) }()

	// The queued batch job is abandoned promptly, while the worker is
	// still occupied.
	select {
	case err := <-batchErr:
		if !errors.Is(err, apierr.ErrShuttingDown) {
			t.Fatalf("queued batch job: err=%v, want ErrShuttingDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued batch job was not abandoned by the drain")
	}
	select {
	case err := <-interactiveErr:
		t.Fatalf("queued interactive job resolved before the worker freed: %v", err)
	default:
	}

	release()
	if err := <-interactiveErr; err != nil {
		t.Fatalf("queued interactive job was abandoned instead of drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestBrownoutShedsBatchThroughEngine: with a hair-trigger brownout, a
// saturated engine starts refusing batch work with ErrOverloaded while
// interactive work keeps flowing.
func TestBrownoutShedsBatchThroughEngine(t *testing.T) {
	cfg, err := qos.NewConfig().Brownout(qos.BrownoutConfig{
		P99ThresholdMs:       1e-6, // any nonzero queued wait trips it
		Window:               64,
		ReevalEvery:          1,
		MaxLevel:             1,
		InteractiveShedDepth: 1000,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, QoS: &cfg})
	release, err := e.adm.Acquire(context.Background(), "hog", qos.LaneInteractive)
	if err != nil {
		t.Fatal(err)
	}
	// Two queued jobs whose grants record nonzero waits, driving the
	// level to its max of 1.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := testRequest(t, KindMeasure)
			r.Seed = 200 + uint64(i)
			if _, err := e.Do(context.Background(), r); err != nil {
				t.Errorf("queued interactive job %d: %v", i, err)
			}
		}(i)
	}
	waitForQueued(t, e, 2)
	release()
	wg.Wait()

	rb := testRequest(t, KindMeasure)
	rb.Seed = 300
	rb.Lane = qos.LaneBatch
	_, err = e.Do(context.Background(), rb)
	if !errors.Is(err, apierr.ErrOverloaded) {
		t.Fatalf("batch job under brownout: err=%v, want ErrOverloaded", err)
	}
	// Interactive work still flows: the brownout degrades batch first.
	ri := testRequest(t, KindMeasure)
	ri.Seed = 301
	if _, err := e.Do(context.Background(), ri); err != nil {
		t.Fatalf("interactive job under brownout: %v", err)
	}
	st := e.Stats()
	if st.BrownoutShed != 1 || st.BrownoutLevel != 1 {
		t.Fatalf("brownoutShed=%d level=%d, want 1/1", st.BrownoutShed, st.BrownoutLevel)
	}
}
