package service

import (
	"context"
	"sync"
	"testing"

	"gpa/internal/gpusim"
	"gpa/internal/sass"
)

const testKernelSrc = `
.module sm_70
.func vecscale global
.line vecscale.cu 5
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line vecscale.cu 7
	LDG.E.32 R4, [R2] {S:1, W:0}
.line vecscale.cu 8
	FMUL R5, R4, 2f {S:4, Q:0}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R5 {S:1, R:1}
	EXIT {Q:1}
`

func testRequest(t *testing.T, kind Kind) *Request {
	t.Helper()
	mod, err := sass.Assemble(testKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	return &Request{
		Kind:   kind,
		Module: mod,
		Launch: gpusim.LaunchConfig{
			Entry: "vecscale",
			Grid:  gpusim.Dim3{X: 160},
			Block: gpusim.Dim3{X: 256},
		},
		SimSMs: 1,
		Seed:   9,
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	base := testRequest(t, KindAdvise)
	key1, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	key2, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if key1 == "" || key1 != key2 {
		t.Fatalf("digest not stable: %q vs %q", key1, key2)
	}

	// Normalization: the explicit defaults digest like the zero values.
	norm := testRequest(t, KindAdvise)
	norm.SamplePeriod = 64
	if k, _ := norm.Digest(); k != key1 {
		t.Errorf("explicit default sample period changed the key")
	}
	// Parallelism never affects results, so it must not affect the key.
	par := testRequest(t, KindAdvise)
	par.Parallelism = 8
	if k, _ := par.Digest(); k != key1 {
		t.Errorf("parallelism changed the key")
	}

	// Every result-affecting field must change the key.
	mutations := map[string]func(*Request){
		"kind":     func(r *Request) { r.Kind = KindMeasure },
		"grid":     func(r *Request) { r.Launch.Grid.X = 320 },
		"block":    func(r *Request) { r.Launch.Block.X = 128 },
		"seed":     func(r *Request) { r.Seed = 10 },
		"simSMs":   func(r *Request) { r.SimSMs = 2 },
		"period":   func(r *Request) { r.SamplePeriod = 128 },
		"blamer":   func(r *Request) { r.Blamer.DisableOpcodePrune = true },
		"workload": func(r *Request) { r.WorkloadKey = "wl1" },
	}
	for name, mutate := range mutations {
		r := testRequest(t, KindAdvise)
		mutate(r)
		k, err := r.Digest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == key1 {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

func TestDigestModuleContent(t *testing.T) {
	r1 := testRequest(t, KindAdvise)
	k1, _ := r1.Digest()
	mod2, err := sass.Assemble(testKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	r2 := testRequest(t, KindAdvise)
	r2.Module = mod2 // distinct pointer, identical content
	k2, _ := r2.Digest()
	if k1 != k2 {
		t.Errorf("identical module content digests differently")
	}
}

func TestWorkloadWithoutKeyBypasses(t *testing.T) {
	r := testRequest(t, KindMeasure)
	r.Workload = gpusim.Workload(nil)
	// A genuinely non-nil workload: bind an empty spec.
	prog, err := gpusim.Load(r.Module)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := (&gpusim.Spec{}).Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	r.Workload = wl
	key, err := r.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		t.Fatalf("workload without key must be uncacheable, got key %q", key)
	}

	e := New(Options{Workers: 1})
	resp1, err := e.Do(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := e.Do(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.Cached || resp2.Cached {
		t.Error("bypass responses must not be marked cached")
	}
	st := e.Stats()
	if st.Bypass != 2 || st.Runs != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 bypasses and 2 runs", st)
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	e := New(Options{Workers: 2})
	cold, err := e.Do(context.Background(), testRequest(t, KindAdvise))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first run must be a miss")
	}
	if cold.Report == "" || cold.Advice == nil || cold.Profile == nil {
		t.Fatal("advise response incomplete")
	}
	warm, err := e.Do(context.Background(), testRequest(t, KindAdvise))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second run must hit the cache")
	}
	if warm.Report != cold.Report {
		t.Errorf("cached report differs from cold run")
	}
	if warm.ProfileDigest != cold.ProfileDigest {
		t.Errorf("cached profile digest differs from cold run")
	}
	if warm.Cycles != cold.Cycles {
		t.Errorf("cached cycles %d != cold %d", warm.Cycles, cold.Cycles)
	}
	st := e.Stats()
	if st.Runs != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 run, 1 hit, 1 miss", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	e := New(Options{Workers: 4})
	const n = 16
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = e.Do(context.Background(), testRequest(t, KindAdvise))
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	st := e.Stats()
	if st.Runs != 1 {
		t.Fatalf("%d identical concurrent requests ran %d simulations, want 1 (stats %+v)",
			n, st.Runs, st)
	}
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, n-1)
	}
	for i := 1; i < n; i++ {
		if resps[i].Report != resps[0].Report {
			t.Fatalf("response %d differs", i)
		}
	}
}

func TestDoAllMixedKinds(t *testing.T) {
	// Stage caching off: the runs==3 pin below requires that the
	// concurrent advise job can never ride the profile job's freshly
	// published profile-stage artifact.
	e := New(Options{StageEntries: -1})
	reqs := []*Request{
		testRequest(t, KindMeasure),
		testRequest(t, KindProfile),
		testRequest(t, KindAdvise),
	}
	resps, errs := e.DoAll(context.Background(), reqs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	if resps[0].Cycles <= 0 {
		t.Error("measure: no cycles")
	}
	if resps[1].Profile == nil || resps[1].ProfileDigest == "" {
		t.Error("profile: missing profile or digest")
	}
	if resps[2].Advice == nil || len(resps[2].Advice.Entries) == 0 {
		t.Error("advise: no ranked entries")
	}
	// Kinds digest differently, so all three simulated.
	if st := e.Stats(); st.Runs != 3 {
		t.Errorf("runs = %d, want 3", st.Runs)
	}
}

func TestErrorsNotCached(t *testing.T) {
	e := New(Options{Workers: 1})
	r := testRequest(t, KindMeasure)
	r.Launch.Entry = "missing"
	if _, err := e.Do(context.Background(), r); err == nil {
		t.Fatal("expected error for unknown entry")
	}
	if _, err := e.Do(context.Background(), r); err == nil {
		t.Fatal("expected error again (errors must not be cached)")
	}
	st := e.Stats()
	if st.Errors != 2 || st.Runs != 2 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want 2 uncached errors", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Stage caching off: this test pins RESULT-cache eviction, so the
	// evicted entry must genuinely re-run instead of being served from
	// the measure-stage artifact cache.
	e := New(Options{Workers: 1, CacheEntries: 2, StageEntries: -1})
	for i := 0; i < 3; i++ {
		r := testRequest(t, KindMeasure)
		r.Seed = uint64(i)
		if _, err := e.Do(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CacheEntries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	// Seed 0 was evicted (least recently used): a repeat re-runs.
	r := testRequest(t, KindMeasure)
	r.Seed = 0
	resp, err := e.Do(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry served from cache")
	}
	// Seed 2 is still resident.
	r2 := testRequest(t, KindMeasure)
	r2.Seed = 2
	resp2, err := e.Do(context.Background(), r2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Error("resident entry missed the cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	// Stage caching off too: with every cache layer disabled, repeats
	// must re-run and never report Cached.
	e := New(Options{Workers: 1, CacheEntries: -1, StageEntries: -1})
	for i := 0; i < 2; i++ {
		resp, err := e.Do(context.Background(), testRequest(t, KindMeasure))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Error("cache disabled but response marked cached")
		}
	}
	if st := e.Stats(); st.Runs != 2 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want 2 runs with no cache", st)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindMeasure, KindProfile, KindAdvise} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != KindAdvise {
		t.Errorf("empty kind must default to advise, got %v, %v", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind must fail")
	}
}

func TestParallelismMatchesSequential(t *testing.T) {
	seq := New(Options{Workers: 1})
	par := New(Options{Workers: 8})
	rseq := testRequest(t, KindAdvise)
	rpar := testRequest(t, KindAdvise)
	rpar.Parallelism = 4
	a, err := seq.Do(context.Background(), rseq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Do(context.Background(), rpar)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report || a.ProfileDigest != b.ProfileDigest {
		t.Error("parallel SM simulation changed the advise response")
	}
	if a.Key != b.Key {
		t.Error("parallelism leaked into the digest")
	}
}
