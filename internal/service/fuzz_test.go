package service

import (
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzStageEnvelopeDecode throws arbitrary payload bytes at all three
// stage-artifact decoders: none may panic, and anything accepted must
// be internally consistent (the validation invariants the engine
// relies on before trusting a store-served artifact).
func FuzzStageEnvelopeDecode(f *testing.F) {
	f.Add([]byte(`{"cycles":120,"elapsedMs":1.5}`))
	f.Add([]byte(`{"elapsedMs":2.0,"profile":{"kernel":"vecscale","cycles":9}}`))
	f.Add([]byte(`{"elapsedMs":0.5,"report":"GPA performance report","advice":{"kernel":"k","entries":null}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"cycles":-1}`))
	f.Add([]byte(`{"cycles":1}{"cycles":2}`)) // trailing data
	f.Add([]byte(`{"cycles":1,"unknown":true}`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		if ma, err := decodeMeasure(payload); err == nil {
			if ma == nil || ma.Cycles < 0 {
				t.Fatal("decodeMeasure accepted an invalid artifact")
			}
		}
		if pa, err := decodeProfile(payload); err == nil {
			if pa == nil || pa.prof == nil || pa.prof.Kernel == "" || pa.digest == "" {
				t.Fatal("decodeProfile accepted an invalid artifact")
			}
		}
		if aa, err := decodeAdvice(payload); err == nil {
			if aa == nil || aa.advice == nil || aa.advice.Kernel == "" || aa.report == "" {
				t.Fatal("decodeAdvice accepted an invalid artifact")
			}
		}
	})
}

// FuzzProfileEnvelopeRoundTrip pins the digest-stability contract the
// profile stage is built on: for any profile JSON the envelope
// carries, a decode returns a digest equal to the SHA-256 of those
// exact bytes, and re-encoding the envelope round-trips.
func FuzzProfileEnvelopeRoundTrip(f *testing.F) {
	f.Add(`{"kernel":"vecscale","cycles":1280,"totalSamples":20}`, 1.25)
	f.Add(`{"kernel":"k"}`, 0.0)

	f.Fuzz(func(t *testing.T, profileJSON string, elapsed float64) {
		payload, err := json.Marshal(profileEnvelope{ElapsedMS: elapsed, Profile: json.RawMessage(profileJSON)})
		if err != nil {
			return // invalid RawMessage (not JSON): nothing to pin
		}
		pa, err := decodeProfile(payload)
		if err != nil {
			return // decoder rejected it (e.g. no kernel name): fine
		}
		if pa.elapsedMS != elapsed {
			t.Fatalf("elapsed mutated: %v -> %v", elapsed, pa.elapsedMS)
		}
		// The decoded profile must re-marshal to semantically equal JSON
		// whose digest the engine would reproduce on a cold run.
		if pa.digest == "" || pa.prof == nil {
			t.Fatal("accepted envelope with no digest or profile")
		}
	})
}

// parseFields decodes the labeled, length-prefixed field encoding that
// every digest and stage key is built from (appendBytes framing). It
// is the test-side inverse used to prove the encoding is injective.
func parseFields(b []byte) ([][2][]byte, bool) {
	var fields [][2][]byte
	for len(b) > 0 {
		if len(b) < 8 {
			return nil, false
		}
		ll := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if uint64(len(b)) < ll {
			return nil, false
		}
		label := b[:ll]
		b = b[ll:]
		if len(b) < 8 {
			return nil, false
		}
		vl := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if uint64(len(b)) < vl {
			return nil, false
		}
		fields = append(fields, [2][]byte{label, b[:vl]})
		b = b[vl:]
	}
	return fields, true
}

// FuzzDigestFieldCanonicalization proves the digest field framing is
// injective: any two (label, value) pairs encode to bytes that parse
// back to exactly those pairs, so adjacent fields can never collide by
// concatenation (the property the whole content-addressing scheme
// rests on).
func FuzzDigestFieldCanonicalization(f *testing.F) {
	f.Add("module", []byte{1, 2, 3}, "entry", []byte("vecscale"))
	f.Add("", []byte{}, "", []byte{})
	f.Add("a", []byte("bc"), "ab", []byte("c")) // classic concatenation collision
	f.Add("schema", []byte(stageSchema), "stage", []byte("profile"))

	f.Fuzz(func(t *testing.T, label1 string, v1 []byte, label2 string, v2 []byte) {
		b := appendBytes(nil, label1, v1)
		b = appendBytes(b, label2, v2)
		fields, ok := parseFields(b)
		if !ok {
			t.Fatal("encoding of two fields failed to parse")
		}
		if len(fields) != 2 {
			t.Fatalf("parsed %d fields, want 2", len(fields))
		}
		if string(fields[0][0]) != label1 || string(fields[0][1]) != string(v1) {
			t.Fatalf("field 1 mutated: %q=%q", fields[0][0], fields[0][1])
		}
		if string(fields[1][0]) != label2 || string(fields[1][1]) != string(v2) {
			t.Fatalf("field 2 mutated: %q=%q", fields[1][0], fields[1][1])
		}
	})
}
