package service

// Observability contract tests: trace IDs are transport-level only —
// they never enter the result digest or any stage key, so two requests
// differing only in TraceID share one cache entry and byte-identical
// responses — and the per-stage latency histograms record exactly the
// stages a run executes.

import (
	"context"
	"testing"

	"gpa/internal/obs"
)

// obsTestRequest builds a cacheable advise request (testRequest lives
// in service_test.go).
func obsTestRequest(t *testing.T) *Request {
	t.Helper()
	return testRequest(t, KindAdvise)
}

func TestTraceIDExcludedFromDigest(t *testing.T) {
	a := obsTestRequest(t)
	b := obsTestRequest(t)
	b.TraceID = "trace-b-1234"
	c := obsTestRequest(t)
	c.TraceID = "another-trace-entirely"

	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da == "" {
		t.Fatal("empty digest for cacheable request")
	}
	if da != db || db != dc {
		t.Fatalf("trace ID leaked into the digest: %s / %s / %s", da, db, dc)
	}

	// Stage keys must exclude it too: a traced request warms the same
	// artifacts an untraced one reads.
	na, nb := a.normalized(), b.normalized()
	ska, oka, err := na.stageKeys()
	if err != nil || !oka {
		t.Fatalf("stage keys: ok=%v err=%v", oka, err)
	}
	skb, okb, err := nb.stageKeys()
	if err != nil || !okb {
		t.Fatalf("stage keys: ok=%v err=%v", okb, err)
	}
	if ska != skb {
		t.Fatal("trace ID leaked into stage keys")
	}
}

func TestTracedRequestsShareOneRun(t *testing.T) {
	e := New(Options{Workers: 1})
	ra := obsTestRequest(t)
	ra.TraceID = "first"
	rb := obsTestRequest(t)
	rb.TraceID = "second"

	respA, err := e.Do(context.Background(), ra)
	if err != nil {
		t.Fatal(err)
	}
	respB, err := e.Do(context.Background(), rb)
	if err != nil {
		t.Fatal(err)
	}
	if !respB.Cached {
		t.Fatal("second request with a different trace ID missed the cache")
	}
	if respA.Report != respB.Report || respA.ProfileDigest != respB.ProfileDigest {
		t.Fatal("traced responses differ")
	}
	if st := e.Stats(); st.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (trace IDs must not split the cache)", st.Runs)
	}
}

func TestStageLatencyRecorded(t *testing.T) {
	e := New(Options{Workers: 1})
	lat := e.StageLatency()
	if lat == nil {
		t.Fatal("engine without a stage latency recorder")
	}
	if _, err := e.Do(context.Background(), obsTestRequest(t)); err != nil {
		t.Fatal(err)
	}
	// A cold advise run executes assemble (no Prog supplied), simulate
	// (profile collection), blame, and advise exactly once each.
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if n := lat.Histogram(s).Snapshot().Count; n != 1 {
			t.Errorf("stage %s recorded %d observations after one cold run, want 1", s, n)
		}
	}
	// A warm hit executes nothing.
	if _, err := e.Do(context.Background(), obsTestRequest(t)); err != nil {
		t.Fatal(err)
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if n := lat.Histogram(s).Snapshot().Count; n != 1 {
			t.Errorf("stage %s recorded %d observations after a cache hit, want still 1", s, n)
		}
	}
}
