package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"

	"gpa/internal/arch"
	"gpa/internal/cubin"
)

// digestSchema versions the key layout: bump it whenever the set or
// order of digested fields changes, so stale keys from older layouts
// can never alias a new request.
const digestSchema = "gpa-service-key/1"

// Digest computes the request's content-addressed cache key: a SHA-256
// over the canonical module bytes (cubin container encoding), the
// launch configuration, the architecture model key, and every
// result-affecting option. Parallelism is deliberately excluded — the
// simulator is bit-identical at every parallelism level, so requests
// differing only in worker counts share one cache entry.
//
// A request carrying a Workload without a WorkloadKey has no stable
// identity (workloads are opaque callbacks); Digest returns "" and the
// engine bypasses the cache and singleflight for it.
func (r *Request) Digest() (string, error) {
	if r.Workload != nil && r.WorkloadKey == "" {
		return "", nil
	}
	blob, err := cubin.Pack(r.Module)
	if err != nil {
		return "", fmt.Errorf("service: digest: %w", err)
	}
	n := r.normalized()
	h := sha256.New()
	hs := fieldHasher{h: h}
	hs.str("schema", digestSchema)
	hs.i64("kind", int64(n.Kind))
	hs.bytes("module", blob)
	hs.str("entry", n.Launch.Entry)
	hs.i64("gridX", int64(n.Launch.Grid.X))
	hs.i64("gridY", int64(n.Launch.Grid.Y))
	hs.i64("gridZ", int64(n.Launch.Grid.Z))
	hs.i64("blockX", int64(n.Launch.Block.X))
	hs.i64("blockY", int64(n.Launch.Block.Y))
	hs.i64("blockZ", int64(n.Launch.Block.Z))
	hs.i64("regs", int64(n.Launch.RegsPerThread))
	hs.i64("shared", int64(n.Launch.SharedMemPerBlock))
	// The GPU model is digested by its full constant table, not just
	// its registry key: a mutated or re-registered model with the same
	// key must never alias another model's cached results. arch.GPU is
	// plain scalar data, so its JSON encoding is canonical.
	gpuBytes, err := json.Marshal(n.GPU)
	if err != nil {
		return "", fmt.Errorf("service: digest: %w", err)
	}
	hs.str("gpu", arch.KeyOf(n.GPU))
	hs.bytes("gpuModel", gpuBytes)
	hs.i64("period", int64(n.SamplePeriod))
	hs.i64("simSMs", int64(n.SimSMs))
	hs.i64("seed", int64(n.Seed))
	hs.bool("noOpcodePrune", n.Blamer.DisableOpcodePrune)
	hs.bool("noDominatorPrune", n.Blamer.DisableDominatorPrune)
	hs.bool("noLatencyPrune", n.Blamer.DisableLatencyPrune)
	hs.bool("noIssueWeight", n.Blamer.DisableIssueWeight)
	hs.bool("noPathWeight", n.Blamer.DisablePathWeight)
	hs.i64("maxSliceSteps", int64(n.Blamer.MaxSliceSteps))
	hs.str("workload", r.WorkloadKey)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fieldHasher writes labeled, length-prefixed fields so adjacent
// values can never collide by concatenation.
type fieldHasher struct{ h hash.Hash }

func (f fieldHasher) bytes(label string, b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(label)))
	f.h.Write(n[:])
	f.h.Write([]byte(label))
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	f.h.Write(n[:])
	f.h.Write(b)
}

func (f fieldHasher) str(label, s string) { f.bytes(label, []byte(s)) }

func (f fieldHasher) i64(label string, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	f.bytes(label, b[:])
}

func (f fieldHasher) bool(label string, v bool) {
	if v {
		f.i64(label, 1)
	} else {
		f.i64(label, 0)
	}
}
