package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"gpa/internal/arch"
	"gpa/internal/cubin"
)

// digestSchema versions the key layout: bump it whenever the set or
// order of digested fields changes, so stale keys from older layouts
// can never alias a new request. Layout /2 replaced the inline module
// bytes and GPU-model JSON with their SHA-256 digests so the per-
// request hash covers a few hundred fixed bytes instead of re-encoding
// the whole module, and moved key storage to a fixed [32]byte.
const digestSchema = "gpa-service-key/2"

// digestKey is the engine-internal cache key: a raw SHA-256. The zero
// value marks an uncacheable request. Fixed-size keys keep the warm
// lookup path free of string allocations; Response.Key carries the hex
// form for humans and HTTP clients.
type digestKey [32]byte

var zeroKey digestKey

// Digest computes the request's content-addressed cache key in hex: a
// SHA-256 over the canonical module bytes (cubin container encoding),
// the launch configuration, the architecture model, and every
// result-affecting option. Parallelism is deliberately excluded — the
// simulator is bit-identical at every parallelism level, so requests
// differing only in worker counts share one cache entry.
//
// A request carrying a Workload without a WorkloadKey has no stable
// identity (workloads are opaque callbacks); Digest returns "" and the
// engine bypasses the cache and singleflight for it.
func (r *Request) Digest() (string, error) {
	key, cacheable, err := r.digest()
	if err != nil || !cacheable {
		return "", err
	}
	return hex.EncodeToString(key[:]), nil
}

// digest is the allocation-free core of Digest: the labeled,
// length-prefixed field encoding lands in a stack buffer and one
// SHA-256 pass produces the fixed-size key. The two variable-size
// inputs — the module and the GPU model table — enter by their own
// cached digests (Request.ModuleHash and a per-model memo), so a warm
// engine never re-encodes either.
func (r *Request) digest() (key digestKey, cacheable bool, err error) {
	if r.Workload != nil && r.WorkloadKey == "" {
		return zeroKey, false, nil
	}
	mh := r.ModuleHash
	if mh == ([32]byte{}) {
		blob, err := cubin.Pack(r.Module)
		if err != nil {
			return zeroKey, false, fmt.Errorf("service: digest: %w", err)
		}
		mh = sha256.Sum256(blob)
	}
	n := r.normalized()
	// The GPU model is digested by its full constant table, not just
	// its registry key: a mutated or re-registered model with the same
	// key must never alias another model's cached results. arch.GPU is
	// plain scalar data, so its JSON encoding is canonical.
	gh, err := gpuModelHash(n.GPU)
	if err != nil {
		return zeroKey, false, err
	}
	var arr [1024]byte
	b := arr[:0]
	b = appendStr(b, "schema", digestSchema)
	b = appendI64(b, "kind", int64(n.Kind))
	b = appendBytes(b, "module", mh[:])
	b = appendStr(b, "entry", n.Launch.Entry)
	b = appendI64(b, "gridX", int64(n.Launch.Grid.X))
	b = appendI64(b, "gridY", int64(n.Launch.Grid.Y))
	b = appendI64(b, "gridZ", int64(n.Launch.Grid.Z))
	b = appendI64(b, "blockX", int64(n.Launch.Block.X))
	b = appendI64(b, "blockY", int64(n.Launch.Block.Y))
	b = appendI64(b, "blockZ", int64(n.Launch.Block.Z))
	b = appendI64(b, "regs", int64(n.Launch.RegsPerThread))
	b = appendI64(b, "shared", int64(n.Launch.SharedMemPerBlock))
	b = appendStr(b, "gpu", arch.KeyOf(n.GPU))
	b = appendBytes(b, "gpuModel", gh[:])
	b = appendI64(b, "period", int64(n.SamplePeriod))
	b = appendI64(b, "simSMs", int64(n.SimSMs))
	b = appendI64(b, "seed", int64(n.Seed))
	b = appendBool(b, "noOpcodePrune", n.Blamer.DisableOpcodePrune)
	b = appendBool(b, "noDominatorPrune", n.Blamer.DisableDominatorPrune)
	b = appendBool(b, "noLatencyPrune", n.Blamer.DisableLatencyPrune)
	b = appendBool(b, "noIssueWeight", n.Blamer.DisableIssueWeight)
	b = appendBool(b, "noPathWeight", n.Blamer.DisablePathWeight)
	b = appendI64(b, "maxSliceSteps", int64(n.Blamer.MaxSliceSteps))
	b = appendStr(b, "workload", r.WorkloadKey)
	return sha256.Sum256(b), true, nil
}

// gpuHashes memoizes the SHA-256 of each GPU model's JSON encoding,
// keyed by pointer. Models handed out by the arch registry or reused
// across requests (gpa.Engine jobs, gpad's per-name model cache) hit
// the memo; the size cap guards against callers that mint a fresh GPU
// per request degrading it into a leak.
var gpuHashes struct {
	sync.RWMutex
	m map[*arch.GPU][32]byte
}

const gpuHashCap = 4096

func gpuModelHash(g *arch.GPU) ([32]byte, error) {
	gpuHashes.RLock()
	h, ok := gpuHashes.m[g]
	gpuHashes.RUnlock()
	if ok {
		return h, nil
	}
	data, err := json.Marshal(g)
	if err != nil {
		return [32]byte{}, fmt.Errorf("service: digest: %w", err)
	}
	h = sha256.Sum256(data)
	gpuHashes.Lock()
	if gpuHashes.m == nil || len(gpuHashes.m) >= gpuHashCap {
		gpuHashes.m = make(map[*arch.GPU][32]byte, 16)
	}
	gpuHashes.m[g] = h
	gpuHashes.Unlock()
	return h, nil
}

// appendBytes writes a labeled, length-prefixed field so adjacent
// values can never collide by concatenation.
func appendBytes(b []byte, label string, v []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(label)))
	b = append(b, label...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(v)))
	return append(b, v...)
}

func appendStr(b []byte, label, v string) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(label)))
	b = append(b, label...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(v)))
	return append(b, v...)
}

func appendI64(b []byte, label string, v int64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return appendBytes(b, label, buf[:])
}

func appendBool(b []byte, label string, v bool) []byte {
	if v {
		return appendI64(b, label, 1)
	}
	return appendI64(b, label, 0)
}
