package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"gpa/internal/arch"
	"gpa/internal/cubin"
	"gpa/internal/gpusim"
	"gpa/internal/profiler"
	"gpa/internal/sass"
	"gpa/internal/store"
	"gpa/internal/structure"

	adv "gpa/internal/advisor"
)

// stageSchema versions the per-stage artifact keys AND the blob
// payload encodings together, anchored to digestSchema so any change
// to the canonical field encoding invalidates stage artifacts exactly
// like it invalidates result-cache keys. Blobs written under another
// schema are misses by construction (the framing rejects them), never
// misreads.
const stageSchema = "gpa-stage/1+" + digestSchema

// StoreSchema is the payload-schema string an on-disk artifact store
// must be opened with to serve this build's engine.
func StoreSchema() string { return stageSchema }

// OpenDisk opens (creating if needed) an on-disk artifact store at dir
// under this build's stage schema.
func OpenDisk(dir string) (*store.Disk, error) {
	return store.Open(dir, stageSchema)
}

// stageKeys holds the per-stage content-addressed keys for one
// normalized request. The Figure 2 pipeline factors into three
// dependency tiers, each keyed by exactly the inputs that can change
// its output:
//
//	frontend: module                         → Program, Structure
//	measure/profile: module+launch+arch+sim  → cycles / sampled profile
//	advice: profile key + blamer options     → ranked advice, report
//
// Kind is deliberately excluded everywhere: a profile request and an
// advise request over the same inputs share one profile artifact,
// which is what lets a stored /v1/profile feed /v1/advise without
// re-simulation. Parallelism is excluded for the same reason it is
// excluded from the result digest — results are bit-identical at
// every level.
type stageKeys struct {
	frontend store.Key
	measure  store.Key
	profile  store.Key
	advice   store.Key
}

// stageKeys derives the per-stage keys for an already-normalized
// request. ok=false marks a request with no stable identity (workload
// without a key): it must bypass the artifact store entirely.
func (r *Request) stageKeys() (sk stageKeys, ok bool, err error) {
	if r.Workload != nil && r.WorkloadKey == "" {
		return sk, false, nil
	}
	mh := r.ModuleHash
	if mh == ([32]byte{}) {
		blob, err := cubin.Pack(r.Module)
		if err != nil {
			return sk, false, fmt.Errorf("service: stage keys: %w", err)
		}
		mh = sha256.Sum256(blob)
	}
	gh, err := gpuModelHash(r.GPU)
	if err != nil {
		return sk, false, err
	}

	// Frontend: the arch-independent half — module content only.
	var fbuf [128]byte
	fb := appendStr(fbuf[:0], "schema", stageSchema)
	fb = appendStr(fb, "stage", store.StageFrontend)
	fb = appendBytes(fb, "module", mh[:])
	sk.frontend = sha256.Sum256(fb)

	// Shared simulation identity: everything that feeds gpusim.Run.
	var sbuf [1024]byte
	sim := appendStr(sbuf[:0], "schema", stageSchema)
	sim = appendBytes(sim, "module", mh[:])
	sim = appendStr(sim, "entry", r.Launch.Entry)
	sim = appendI64(sim, "gridX", int64(r.Launch.Grid.X))
	sim = appendI64(sim, "gridY", int64(r.Launch.Grid.Y))
	sim = appendI64(sim, "gridZ", int64(r.Launch.Grid.Z))
	sim = appendI64(sim, "blockX", int64(r.Launch.Block.X))
	sim = appendI64(sim, "blockY", int64(r.Launch.Block.Y))
	sim = appendI64(sim, "blockZ", int64(r.Launch.Block.Z))
	sim = appendI64(sim, "regs", int64(r.Launch.RegsPerThread))
	sim = appendI64(sim, "shared", int64(r.Launch.SharedMemPerBlock))
	sim = appendStr(sim, "gpu", arch.KeyOf(r.GPU))
	sim = appendBytes(sim, "gpuModel", gh[:])
	sim = appendI64(sim, "simSMs", int64(r.SimSMs))
	sim = appendI64(sim, "seed", int64(r.Seed))
	sim = appendStr(sim, "workload", r.WorkloadKey)

	var mbuf [1024 + 64]byte
	mb := append(mbuf[:0], sim...)
	mb = appendStr(mb, "stage", store.StageMeasure)
	sk.measure = sha256.Sum256(mb)

	// Profile adds the sampling period. For KindMeasure requests the
	// normalized period is 0 and the profile/advice keys go unused.
	var pbuf [1024 + 64]byte
	pb := append(pbuf[:0], sim...)
	pb = appendI64(pb, "period", int64(r.SamplePeriod))
	pb = appendStr(pb, "stage", store.StageProfile)
	sk.profile = sha256.Sum256(pb)

	// Advice depends on the profile it blames plus the blamer knobs.
	var abuf [512]byte
	ab := appendStr(abuf[:0], "schema", stageSchema)
	ab = appendStr(ab, "stage", store.StageAdvice)
	ab = appendBytes(ab, "profileKey", sk.profile[:])
	ab = appendBool(ab, "noOpcodePrune", r.Blamer.DisableOpcodePrune)
	ab = appendBool(ab, "noDominatorPrune", r.Blamer.DisableDominatorPrune)
	ab = appendBool(ab, "noLatencyPrune", r.Blamer.DisableLatencyPrune)
	ab = appendBool(ab, "noIssueWeight", r.Blamer.DisableIssueWeight)
	ab = appendBool(ab, "noPathWeight", r.Blamer.DisablePathWeight)
	ab = appendI64(ab, "maxSliceSteps", int64(r.Blamer.MaxSliceSteps))
	sk.advice = sha256.Sum256(ab)

	return sk, true, nil
}

// frontendArtifact is the memory-only stage artifact for the module
// front-end: the first module seen under a content hash plus its
// lazily-built flattened program and CFG/loop structure. The
// sync.Onces make "assemble once, analyze once per module" hold even
// under a concurrent arch sweep — every worker shares one build.
// Content-equal modules are interchangeable everywhere downstream (the
// whole pipeline is a pure function of module content), so building
// against the first-seen *sass.Module is sound.
type frontendArtifact struct {
	mod *sass.Module

	progOnce sync.Once
	prog     *gpusim.Program
	progErr  error

	stOnce sync.Once
	st     *structure.Structure
	stErr  error
}

// measureArtifact is the decoded measure-stage artifact; it doubles as
// its own blob payload encoding.
type measureArtifact struct {
	Cycles int64 `json:"cycles"`
	// ElapsedMS is the producing run's wall-clock cost: a store hit
	// replays it, mirroring the result cache's "cost the cache avoided"
	// contract so warm responses stay byte-identical to the cold run.
	ElapsedMS float64 `json:"elapsedMs"`
}

// profileArtifact is the decoded profile-stage artifact.
type profileArtifact struct {
	prof      *profiler.Profile
	digest    string
	elapsedMS float64
}

// profileEnvelope is the profile-stage blob payload. Profile rides as
// its exact canonical JSON bytes: the digest of a store-served profile
// is the SHA-256 of those bytes, byte-identical to Profile.Digest()
// on the profile that produced them.
type profileEnvelope struct {
	ElapsedMS float64         `json:"elapsedMs"`
	Profile   json.RawMessage `json:"profile"`
}

// adviceArtifact is the decoded advice-stage artifact.
type adviceArtifact struct {
	advice    *adv.Advice
	report    string
	elapsedMS float64
}

// adviceEnvelope is the advice-stage blob payload. The rendered report
// text is stored verbatim rather than re-rendered on load, so a
// store-served report is byte-identical to the cold run's by
// construction.
type adviceEnvelope struct {
	ElapsedMS float64     `json:"elapsedMs"`
	Report    string      `json:"report"`
	Advice    *adv.Advice `json:"advice"`
}

// decodeEnvelope strictly unmarshals a blob payload: unknown fields
// and trailing garbage are corruption, not forward compatibility —
// cross-version compatibility is the schema string's job.
//
//gpa:lint-allow apierrlint decode errors degrade to counted store-corrupt misses inside stageLookup; they never cross the service boundary
func decodeEnvelope(payload []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("service: trailing data after envelope")
	}
	return nil
}

// decodeMeasure validates a measure-stage payload.
//
//gpa:lint-allow apierrlint decode errors degrade to counted store-corrupt misses inside stageLookup; they never cross the service boundary
func decodeMeasure(payload []byte) (*measureArtifact, error) {
	var ma measureArtifact
	if err := decodeEnvelope(payload, &ma); err != nil {
		return nil, err
	}
	if ma.Cycles < 0 {
		return nil, fmt.Errorf("service: negative cycle count in measure artifact")
	}
	return &ma, nil
}

// decodeProfile validates a profile-stage payload and rebuilds the
// profile plus its content digest from the embedded canonical bytes.
//
//gpa:lint-allow apierrlint decode errors degrade to counted store-corrupt misses inside stageLookup; they never cross the service boundary
func decodeProfile(payload []byte) (*profileArtifact, error) {
	var env profileEnvelope
	if err := decodeEnvelope(payload, &env); err != nil {
		return nil, err
	}
	if len(env.Profile) == 0 {
		return nil, fmt.Errorf("service: empty profile in artifact")
	}
	var prof profiler.Profile
	if err := json.Unmarshal(env.Profile, &prof); err != nil {
		return nil, err
	}
	if prof.Kernel == "" {
		return nil, fmt.Errorf("service: profile artifact names no kernel")
	}
	sum := sha256.Sum256(env.Profile)
	return &profileArtifact{
		prof:      &prof,
		digest:    hex.EncodeToString(sum[:]),
		elapsedMS: env.ElapsedMS,
	}, nil
}

// decodeAdvice validates an advice-stage payload.
//
//gpa:lint-allow apierrlint decode errors degrade to counted store-corrupt misses inside stageLookup; they never cross the service boundary
func decodeAdvice(payload []byte) (*adviceArtifact, error) {
	var env adviceEnvelope
	if err := decodeEnvelope(payload, &env); err != nil {
		return nil, err
	}
	if env.Advice == nil || env.Advice.Kernel == "" {
		return nil, fmt.Errorf("service: advice artifact names no kernel")
	}
	if env.Report == "" {
		return nil, fmt.Errorf("service: advice artifact has no report")
	}
	return &adviceArtifact{advice: env.Advice, report: env.Report, elapsedMS: env.ElapsedMS}, nil
}

// stagesEnabled reports whether any artifact backend is configured.
func (e *Engine) stagesEnabled() bool {
	return e.stages != nil || e.disk != nil
}

// stageLookup resolves one stage artifact: memory first, then disk
// (decoding and re-warming memory on a disk hit). A disk blob whose
// payload fails artifact-level validation is reported corrupt and
// removed — checksum-valid framing proves the bytes survived, not that
// they decode to a well-formed artifact.
func (e *Engine) stageLookup(stage string, key store.Key, decode func([]byte) (any, error)) any {
	if v, ok := e.stages.Get(stage, key); ok {
		return v
	}
	if e.disk == nil {
		return nil
	}
	payload, ok := e.disk.Get(stage, key)
	if !ok {
		return nil
	}
	v, err := decode(payload)
	if err != nil {
		e.disk.NoteCorrupt(stage, key)
		return nil
	}
	return e.stages.Add(stage, key, v)
}

func (e *Engine) measureArtifactGet(key store.Key) *measureArtifact {
	v := e.stageLookup(store.StageMeasure, key, func(p []byte) (any, error) { return decodeMeasure(p) })
	if v == nil {
		return nil
	}
	return v.(*measureArtifact)
}

func (e *Engine) profileArtifactGet(key store.Key) *profileArtifact {
	v := e.stageLookup(store.StageProfile, key, func(p []byte) (any, error) { return decodeProfile(p) })
	if v == nil {
		return nil
	}
	return v.(*profileArtifact)
}

func (e *Engine) adviceArtifactGet(key store.Key) *adviceArtifact {
	v := e.stageLookup(store.StageAdvice, key, func(p []byte) (any, error) { return decodeAdvice(p) })
	if v == nil {
		return nil
	}
	return v.(*adviceArtifact)
}

// stagePut publishes a freshly-computed stage artifact to the memory
// backend and, when configured, the disk backend. Encoding failures
// only cost persistence, never the request.
func (e *Engine) stagePut(stage string, key store.Key, artifact any, encode func() ([]byte, error)) {
	e.stages.Add(stage, key, artifact)
	if e.disk == nil {
		return
	}
	payload, err := encode()
	if err != nil {
		return
	}
	e.disk.Put(stage, key, payload)
}

// frontendFor returns the shared front-end artifact for the request's
// module, creating it on first sight.
func (e *Engine) frontendFor(n *Request, key store.Key) *frontendArtifact {
	if v, ok := e.stages.Get(store.StageFrontend, key); ok {
		return v.(*frontendArtifact)
	}
	return e.stages.Add(store.StageFrontend, key, &frontendArtifact{mod: n.Module}).(*frontendArtifact)
}

// programOf returns the artifact's flattened program, building it at
// most once (seeded from the request when the caller already has one —
// gpa.Kernel memoizes programs too).
func (f *frontendArtifact) programOf(seed *gpusim.Program) (*gpusim.Program, error) {
	f.progOnce.Do(func() {
		if seed != nil {
			f.prog = seed
			return
		}
		f.prog, f.progErr = gpusim.Load(f.mod)
	})
	return f.prog, f.progErr
}

// structureOf returns the artifact's program structure, running
// structure.Analyze at most once per module and counting the build.
func (e *Engine) structureOf(f *frontendArtifact) (*structure.Structure, error) {
	f.stOnce.Do(func() {
		e.count(&e.stats.structureBuilds)
		f.st, f.stErr = structure.Analyze(f.mod)
	})
	return f.st, f.stErr
}

// serveFromStore attempts to satisfy the whole request from stage
// artifacts without running any pipeline stage. nil means at least one
// required stage is missing and the caller must execute. Store-served
// responses mirror the result cache's hit contract: Cached=true and
// the producing run's ElapsedMS.
func (e *Engine) serveFromStore(n *Request, key string, sk *stageKeys) *Response {
	switch n.Kind {
	case KindMeasure:
		ma := e.measureArtifactGet(sk.measure)
		if ma == nil {
			return nil
		}
		return &Response{
			Key: key, Cached: true, Kind: n.Kind,
			Cycles: ma.Cycles, ElapsedMS: ma.ElapsedMS, memo: &respMemo{},
		}
	case KindProfile:
		pa := e.profileArtifactGet(sk.profile)
		if pa == nil {
			return nil
		}
		return &Response{
			Key: key, Cached: true, Kind: n.Kind,
			Cycles: pa.prof.Cycles, ElapsedMS: pa.elapsedMS,
			Profile: pa.prof, ProfileDigest: pa.digest, memo: &respMemo{},
		}
	case KindAdvise:
		pa := e.profileArtifactGet(sk.profile)
		if pa == nil {
			return nil
		}
		aa := e.adviceArtifactGet(sk.advice)
		if aa == nil {
			return nil
		}
		// Context is not serializable (it is a pointer graph into the
		// module); store-served advise responses carry a nil Context.
		// Every in-repo consumer reads Advice/Report only.
		return &Response{
			Key: key, Cached: true, Kind: n.Kind,
			Cycles: pa.prof.Cycles, ElapsedMS: aa.elapsedMS,
			Profile: pa.prof, ProfileDigest: pa.digest,
			Advice: aa.advice, Report: aa.report, memo: &respMemo{},
		}
	}
	return nil
}
