// Package sampling implements the PC-sampling collection layer GPA's
// profiler uses, mirroring CUPTI's behaviour (Section 2.1 of the paper):
// each SM collects samples into its own fixed-size buffer, and when any
// SM's buffer fills, samples from all SMs are merged and transferred to
// the host. The package also aggregates raw samples into the per-PC
// counters (total / active / latency samples and per-reason stalls) that
// the dynamic analyzer consumes.
//
// In the Figure 2 pipeline this sits between the simulator and the
// profiler: input is the simulator's ordered gpusim.Sample stream
// (identical at every parallelism level and on every registered
// architecture), output the Aggregate the profiler serializes. The
// sample counts here are the T, A, and L quantities of Equations 2-5.
package sampling

import (
	"gpa/internal/gpusim"
)

// DefaultBufferCap is the default per-SM sample-buffer capacity.
const DefaultBufferCap = 2048

// Buffer is a gpusim.SampleSink with CUPTI-like per-SM buffering. Like
// every SampleSink it is fed from a single goroutine (the simulator
// serializes delivery even when SMs run concurrently), so it needs no
// locking.
type Buffer struct {
	cap     int
	perSM   [][]gpusim.Sample // indexed by SM id, grown on demand
	host    []gpusim.Sample
	Flushes int // number of full-buffer merge events
}

// NewBuffer returns a buffer with the given per-SM capacity (0 uses
// DefaultBufferCap).
func NewBuffer(capPerSM int) *Buffer {
	if capPerSM <= 0 {
		capPerSM = DefaultBufferCap
	}
	return &Buffer{cap: capPerSM}
}

// Reset clears the buffer for reuse with the given per-SM capacity
// (0 uses DefaultBufferCap), keeping every backing array so a recycled
// buffer collects a fresh run without allocating.
func (b *Buffer) Reset(capPerSM int) {
	if capPerSM <= 0 {
		capPerSM = DefaultBufferCap
	}
	b.cap = capPerSM
	for i := range b.perSM {
		b.perSM[i] = b.perSM[i][:0]
	}
	b.host = b.host[:0]
	b.Flushes = 0
}

// Record appends a sample to its SM's buffer, flushing all SMs to the
// host when the buffer fills.
func (b *Buffer) Record(s gpusim.Sample) {
	for s.SM >= len(b.perSM) {
		b.perSM = append(b.perSM, nil)
	}
	buf := append(b.perSM[s.SM], s)
	b.perSM[s.SM] = buf
	if len(buf) >= b.cap {
		b.flush()
	}
}

func (b *Buffer) flush() {
	b.Flushes++
	for sm := range b.perSM {
		b.host = append(b.host, b.perSM[sm]...)
		b.perSM[sm] = b.perSM[sm][:0]
	}
}

// Drain flushes any residual samples and returns everything collected.
func (b *Buffer) Drain() []gpusim.Sample {
	b.flush()
	b.Flushes-- // the final drain is not a full-buffer event
	return b.host
}

// PCStats aggregates the samples that landed on one PC.
type PCStats struct {
	// Total counts all samples at this PC.
	Total int64
	// Active counts samples whose scheduler issued that cycle AND whose
	// sampled warp was the issuer ("selected"): the paper's issued
	// samples, used by the blamer's issue-ratio heuristic.
	Active int64
	// Latency counts samples taken while the scheduler issued nothing.
	Latency int64
	// Stalls[r] counts samples carrying stall reason r (active or not):
	// the paper's stall samples.
	Stalls [gpusim.NumReasons]int64
	// LatencyStalls[r] counts latency samples carrying reason r; the
	// latency-hiding estimators consume these.
	LatencyStalls [gpusim.NumReasons]int64
}

// StallTotal sums stall samples across dependency-class reasons only.
func (s *PCStats) StallTotal() int64 {
	var t int64
	for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
		t += s.Stalls[r]
	}
	return t
}

// Aggregate is the whole-kernel sample summary.
type Aggregate struct {
	// PerPC is indexed by flat instruction index.
	PerPC []PCStats
	// Totals over all samples.
	Total, Active, Latency int64
	// Stalls[r] counts all samples with reason r.
	Stalls [gpusim.NumReasons]int64
	// LatencyStalls[r] restricts to latency samples.
	LatencyStalls [gpusim.NumReasons]int64
}

// IssueRatio returns RI, the per-warp issue-readiness ratio Equations 8
// and 9 of the paper consume: the fraction of sampled warps that were
// able to issue (they issued, or were ready but another warp was
// selected). Equation 8 ("a warp scheduler is issuing if at least one
// warp on the scheduler is ready") requires exactly this per-warp
// readiness probability.
func (a *Aggregate) IssueRatio() float64 {
	if a.Total == 0 {
		return 0
	}
	ready := a.Total - a.stallSampleCount() + a.Stalls[gpusim.ReasonNotSelected]
	return float64(ready) / float64(a.Total)
}

func (a *Aggregate) stallSampleCount() int64 {
	var t int64
	for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
		t += a.Stalls[r]
	}
	return t
}

// ActiveRatio returns the fraction of samples taken while the scheduler
// was issuing (Figure 1's active ratio).
func (a *Aggregate) ActiveRatio() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Active) / float64(a.Total)
}

// Reset clears the aggregate for reuse over a program with numPCs flat
// instructions, keeping the PerPC backing array when it is large
// enough.
func (a *Aggregate) Reset(numPCs int) {
	perPC := a.PerPC
	if cap(perPC) < numPCs {
		perPC = make([]PCStats, numPCs)
	} else {
		perPC = perPC[:numPCs]
		clear(perPC)
	}
	*a = Aggregate{PerPC: perPC}
}

// Aggregate folds raw samples into per-PC counters; numPCs is the flat
// program length.
func AggregateSamples(samples []gpusim.Sample, numPCs int) *Aggregate {
	a := &Aggregate{}
	AggregateSamplesInto(a, samples, numPCs)
	return a
}

// AggregateSamplesInto is AggregateSamples into a reusable aggregate
// (reset first), for callers that recycle their scratch state.
func AggregateSamplesInto(a *Aggregate, samples []gpusim.Sample, numPCs int) {
	a.Reset(numPCs)
	for _, s := range samples {
		if s.PC < 0 || s.PC >= numPCs {
			continue
		}
		st := &a.PerPC[s.PC]
		st.Total++
		a.Total++
		if s.Active {
			a.Active++
		} else {
			a.Latency++
			st.Latency++
		}
		if s.Reason == gpusim.ReasonNone {
			st.Active++
		} else {
			st.Stalls[s.Reason]++
			a.Stalls[s.Reason]++
			if !s.Active {
				st.LatencyStalls[s.Reason]++
				a.LatencyStalls[s.Reason]++
			}
		}
	}
}
