package sampling

import (
	"testing"

	"gpa/internal/gpusim"
)

func TestBufferFlushMergesAllSMs(t *testing.T) {
	b := NewBuffer(4)
	// Fill SM 0's buffer while SM 1 has two samples; the flush must
	// merge both (CUPTI merges samples from all SMs when any buffer
	// fills).
	for i := 0; i < 2; i++ {
		b.Record(gpusim.Sample{SM: 1, PC: 100 + i})
	}
	for i := 0; i < 4; i++ {
		b.Record(gpusim.Sample{SM: 0, PC: i})
	}
	if b.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", b.Flushes)
	}
	got := b.Drain()
	if len(got) != 6 {
		t.Fatalf("drained %d samples, want 6", len(got))
	}
	// Order after flush: SM 0 then SM 1.
	if got[0].SM != 0 || got[4].SM != 1 {
		t.Errorf("flush order wrong: %+v", got)
	}
}

func TestBufferDrainWithoutFill(t *testing.T) {
	b := NewBuffer(100)
	b.Record(gpusim.Sample{SM: 3, PC: 7})
	got := b.Drain()
	if len(got) != 1 || got[0].PC != 7 {
		t.Fatalf("Drain = %+v", got)
	}
	if b.Flushes != 0 {
		t.Errorf("Drain counted as a flush event: %d", b.Flushes)
	}
}

func TestDefaultCap(t *testing.T) {
	b := NewBuffer(0)
	if b.cap != DefaultBufferCap {
		t.Errorf("cap = %d, want %d", b.cap, DefaultBufferCap)
	}
}

// TestFigure1Accounting reproduces the mental model of Figure 1: six
// samples on one SM, three active and three latency; five carry stall
// reasons; stall ratio and active ratio are both 3/6.
func TestFigure1Accounting(t *testing.T) {
	mkSample := func(active bool, reason gpusim.StallReason) gpusim.Sample {
		return gpusim.Sample{PC: 0, Active: active, Reason: reason}
	}
	samples := []gpusim.Sample{
		mkSample(false, gpusim.ReasonMemoryDependency),   // N: latency, stall
		mkSample(true, gpusim.ReasonNone),                // 2N: active
		mkSample(true, gpusim.ReasonExecutionDependency), // 3N: active, stall
		mkSample(false, gpusim.ReasonMemoryDependency),   // 4N: latency, stall
		mkSample(true, gpusim.ReasonNotSelected),         // 5N: active, stall
		mkSample(false, gpusim.ReasonSync),               // 6N: latency, stall
	}
	a := AggregateSamples(samples, 1)
	if a.Total != 6 {
		t.Fatalf("total = %d, want 6", a.Total)
	}
	if a.Active != 3 || a.Latency != 3 {
		t.Errorf("active/latency = %d/%d, want 3/3", a.Active, a.Latency)
	}
	if got := a.ActiveRatio(); got != 0.5 {
		t.Errorf("active ratio = %v, want 0.5", got)
	}
	// 5 stall samples.
	var stalls int64
	for r := gpusim.StallReason(1); r < gpusim.NumReasons; r++ {
		stalls += a.Stalls[r]
	}
	if stalls != 5 {
		t.Errorf("stall samples = %d, want 5", stalls)
	}
	// One issued sample plus one ready-but-not-selected sample -> RI =
	// 2/6 (Equations 8-9 need the per-warp readiness probability).
	if got := a.IssueRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("issue ratio = %v, want 2/6", got)
	}
}

func TestAggregatePerPC(t *testing.T) {
	samples := []gpusim.Sample{
		{PC: 2, Active: true, Reason: gpusim.ReasonNone},
		{PC: 2, Active: false, Reason: gpusim.ReasonMemoryDependency},
		{PC: 2, Active: false, Reason: gpusim.ReasonMemoryDependency},
		{PC: 5, Active: true, Reason: gpusim.ReasonExecutionDependency},
		{PC: 99, Active: true, Reason: gpusim.ReasonNone}, // out of range
	}
	a := AggregateSamples(samples, 10)
	st := a.PerPC[2]
	if st.Total != 3 || st.Active != 1 || st.Latency != 2 {
		t.Errorf("pc2 stats = %+v", st)
	}
	if st.Stalls[gpusim.ReasonMemoryDependency] != 2 {
		t.Errorf("pc2 memory stalls = %d, want 2", st.Stalls[gpusim.ReasonMemoryDependency])
	}
	if st.LatencyStalls[gpusim.ReasonMemoryDependency] != 2 {
		t.Errorf("pc2 latency memory stalls = %d, want 2", st.LatencyStalls[gpusim.ReasonMemoryDependency])
	}
	st5 := a.PerPC[5]
	if st5.Stalls[gpusim.ReasonExecutionDependency] != 1 || st5.LatencyStalls[gpusim.ReasonExecutionDependency] != 0 {
		t.Errorf("pc5 stats = %+v", st5)
	}
	if st5.StallTotal() != 1 {
		t.Errorf("pc5 StallTotal = %d", st5.StallTotal())
	}
	// The out-of-range sample is dropped.
	if a.Total != 4 {
		t.Errorf("total = %d, want 4", a.Total)
	}
}
