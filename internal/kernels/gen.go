package kernels

import (
	"fmt"
	"strings"

	"gpa"
)

// Assembly-generation helpers shared by the benchmark kernels. Each
// builder produces a baseline/optimized source pair around one
// inefficiency pattern; the per-app files instantiate them with their
// own file names, line numbers, launch shapes, and workload knobs so
// every Table 3 row is a distinct kernel.

// asmBuilder accumulates assembly text.
type asmBuilder struct {
	sb   strings.Builder
	line int
	file string
}

func newAsm(file string) *asmBuilder {
	b := &asmBuilder{file: file}
	b.sb.WriteString(".module sm_70\n")
	return b
}

func (b *asmBuilder) fn(name, vis string) *asmBuilder {
	fmt.Fprintf(&b.sb, ".func %s %s\n", name, vis)
	return b
}

// at sets the current source line.
func (b *asmBuilder) at(line int) *asmBuilder {
	if line != b.line {
		fmt.Fprintf(&b.sb, ".line %s %d\n", b.file, line)
		b.line = line
	}
	return b
}

func (b *asmBuilder) ins(format string, args ...any) *asmBuilder {
	fmt.Fprintf(&b.sb, "\t"+format+"\n", args...)
	return b
}

func (b *asmBuilder) label(name string) *asmBuilder {
	fmt.Fprintf(&b.sb, "%s:\n", name)
	return b
}

func (b *asmBuilder) String() string { return b.sb.String() }

// ffmaChain emits n dependent-free FFMA instructions cycling registers
// r0..r0+k so they do not serialize.
func (b *asmBuilder) ffmaChain(n, base int) *asmBuilder {
	for i := 0; i < n; i++ {
		r := base + (i % 8)
		b.ins("FFMA R%d, R%d, R%d, R%d {S:2}", r, r, r+8, r)
	}
	return b
}

// loopHead emits the canonical counter/branch prologue registers. The
// loop counter lives in R0; the label BR0 marks the backward branch so
// workloads can attach trip counts.
func (b *asmBuilder) loopPrologue(line int) *asmBuilder {
	b.at(line)
	b.ins("MOV R0, 0x0 {S:2}")
	b.ins("S2R R1, SR_TID.X {S:2, W:5}")
	b.ins("IMAD R2, R1, 0x4, RZ {S:4, Q:5}")
	b.ins("IADD R2, R2, c[0x0][0x160] {S:2}")
	b.ins("MOV R3, 0x0 {S:2}")
	return b
}

// loopEpilogue emits counter increment, compare, and backward branch;
// brLabel names the branch site for workload binding.
func (b *asmBuilder) loopEpilogue(loopLabel, brLabel string, line int) *asmBuilder {
	b.at(line)
	b.ins("IADD R0, R0, 0x1 {S:4}")
	b.ins("ISETP P0, R0, 0x7fffff {S:4}")
	fmt.Fprintf(&b.sb, "%s:\t@P0 BRA %s {S:5}\n", brLabel, loopLabel)
	return b
}

// --- warp balance -----------------------------------------------------

type warpBalanceParams struct {
	file        string
	kernel      string
	loopLine    int
	barLine     int
	computeOps  int // FFMA count per iteration
	baseTrips   gpa.WorkloadSpec
	launch      gpa.Launch
	hiTrips     int
	loTrips     int
	hiWarpEvery int // every k-th warp is heavy
}

// warpBalanceAsm builds a compute loop with per-warp trip counts
// followed by a block-wide barrier and a post-barrier tail: imbalanced
// trips pile synchronization stalls on the barrier.
func warpBalanceAsm(p warpBalanceParams) string {
	b := newAsm(p.file)
	b.fn(p.kernel, "global")
	b.loopPrologue(p.loopLine - 2)
	b.label("LOOP").at(p.loopLine)
	b.ffmaChain(p.computeOps, 8)
	b.loopEpilogue("LOOP", "BR0", p.loopLine+2)
	b.at(p.barLine)
	b.ins("BAR.SYNC {S:2}")
	b.at(p.barLine + 1)
	b.ins("LDS.32 R20, [R1] {S:1, W:0}")
	b.ins("FFMA R21, R20, R21, R21 {S:4, Q:0}")
	b.ins("STS.32 [R1], R21 {S:1, R:1}")
	b.ins("EXIT {Q:1}")
	return b.String()
}

// warpBalancePair returns baseline (imbalanced) and optimized
// (balanced, same total work) variants.
func warpBalancePair(p warpBalanceParams) (Variant, Variant) {
	asm := warpBalanceAsm(p)
	site := gpa.Site{Func: p.kernel, Label: "BR0"}
	every := p.hiWarpEvery
	if every <= 0 {
		every = 4
	}
	hi, lo := p.hiTrips, p.loTrips
	base := Variant{
		Asm:    asm,
		Launch: p.launch,
		Spec: &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			site: func(w gpa.WarpCtx) int {
				if w.WarpInBlock%every == 0 {
					return hi
				}
				return lo
			},
		}},
	}
	// Balanced: every warp runs the mean trip count.
	mean := (hi + lo*(every-1)) / every
	opt := Variant{
		Asm:    asm,
		Launch: p.launch,
		Spec:   &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{site: gpa.UniformTrips(mean)}},
	}
	return base, opt
}

// --- strength reduction -----------------------------------------------

type strengthParams struct {
	file     string
	kernel   string
	loopLine int
	trips    int
	launch   gpa.Launch
	// useIDIV switches the long-latency pattern from F2F/DMUL
	// conversion chains (hotspot style) to integer division (ExaTENSOR
	// style).
	useIDIV bool
}

// strengthPair: baseline carries long-latency arithmetic in the loop
// body; the optimized variant replaces it with cheap FP32 work.
func strengthPair(p strengthParams) (Variant, Variant) {
	mk := func(optimized bool) string {
		b := newAsm(p.file)
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.label("LOOP").at(p.loopLine)
		b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
		b.at(p.loopLine + 1)
		switch {
		case optimized:
			// Constant typed as 32-bit float: single FMUL.
			b.ins("FMUL R10, R8, 2f {S:4, Q:0}")
			b.ins("FADD R12, R10, R12 {S:4}")
		case p.useIDIV:
			b.ins("IDIV R10, R8, R9 {S:1, W:1, Q:0}")
			b.ins("IADD R12, R10, R12 {S:4, Q:1}")
		default:
			// 2.0 promotes the operand to double and back (Listing 1).
			b.ins("F2F.F64.F32 R10, R8 {S:13, Q:0}")
			b.ins("DMUL R10, R10, R4 {S:10}")
			b.ins("F2F.F32.F64 R11, R10 {S:13}")
			b.ins("FADD R12, R11, R12 {S:4}")
		}
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", p.loopLine+3)
		b.ins("STG.E.32 [R2], R12 {S:1, R:1}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: p.kernel, Label: "BR0"}: gpa.UniformTrips(p.trips),
		}}
	}
	return Variant{Asm: mk(false), Launch: p.launch, Spec: spec()},
		Variant{Asm: mk(true), Launch: p.launch, Spec: spec()}
}

// --- loop unrolling ----------------------------------------------------

type unrollParams struct {
	file     string
	kernel   string
	loopLine int
	launch   gpa.Launch
	// trips per warp in the baseline (the optimized variant divides by
	// the unroll factor).
	trips gpa.TripFunc
	// unroll factor of the optimized variant.
	factor int
	// remainder adds per-iteration bookkeeping overhead to the
	// optimized variant (data-dependent bounds: the bfs case).
	remainder bool
	// compute is extra per-iteration FFMA work after the load use.
	compute int
	// transactions > 1 marks the loads uncoalesced (both variants).
	transactions int
	// chained makes the optimized variant's unrolled loads depend on
	// each other (pointer chasing), so unrolling adds no memory-level
	// parallelism — the bfs false-positive shape.
	chained bool
	// dualPath loads through one of two predicated paths (visited vs
	// frontier node): the consumer sees two same-class dependency
	// sources, which keeps bfs's single-dependency coverage low even
	// after pruning (Figure 7).
	dualPath bool
}

// unrollPair: baseline issues one load per iteration and consumes it
// immediately; the optimized variant issues `factor` independent loads
// before any use, raising memory-level parallelism.
func unrollPair(p unrollParams) (Variant, Variant) {
	baseAsm := func() string {
		b := newAsm(p.file)
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.label("LOOP").at(p.loopLine)
		if p.dualPath {
			b.ins("ISETP P1, R0, 0x10 {S:4}")
			b.label("LD0")
			b.ins("@P1 LDG.E.32 R8, [R2] {S:1, W:0}")
			b.ins("@!P1 LDG.E.32 R8, [R4] {S:1, W:0}")
		} else {
			b.label("LD0")
			b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
		}
		b.at(p.loopLine + 1)
		b.ins("FFMA R12, R8, R13, R12 {S:4, Q:0}")
		b.ffmaChain(p.compute, 16)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", p.loopLine+4)
		b.ins("STG.E.32 [R2], R12 {S:1, R:1}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	optAsm := func() string {
		b := newAsm(p.file)
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.label("LOOP").at(p.loopLine)
		for i := 0; i < p.factor; i++ {
			b.label(fmt.Sprintf("LD%d", i))
			if p.chained && i > 0 {
				// The next node's address comes from the previous load.
				b.ins("LDG.E.32 R%d, [R%d] {S:1, W:%d, Q:%d}", 8+i, 8+i-1, i%4, (i-1)%4)
			} else {
				b.ins("LDG.E.32 R%d, [R2+0x%x] {S:1, W:%d}", 8+i, i*4, i%4)
			}
		}
		b.at(p.loopLine + 1)
		for i := 0; i < p.factor; i++ {
			b.ins("FFMA R12, R%d, R13, R12 {S:4, Q:%d}", 8+i, i%4)
		}
		b.ffmaChain(p.compute*p.factor, 16)
		if p.remainder {
			// Data-dependent bounds force a remainder guard per
			// unrolled iteration.
			b.ins("ISETP P1, R0, R30 {S:4}")
			b.ins("ISETP P2, R0, R31 {S:4}")
			b.ins("SEL R14, R12, R14, P1 {S:4}")
		}
		b.ins("IADD R2, R2, 0x%x {S:4}", p.factor*4)
		b.loopEpilogue("LOOP", "BR0", p.loopLine+4)
		b.ins("STG.E.32 [R2], R12 {S:1, R:1}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	factor := p.factor
	trips := p.trips
	baseSpec := &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
		{Func: p.kernel, Label: "BR0"}: trips,
	}}
	optSpec := &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
		{Func: p.kernel, Label: "BR0"}: func(w gpa.WarpCtx) int {
			n := trips(w) / factor
			if n < 1 {
				n = 1
			}
			return n
		},
	}}
	if p.transactions > 1 {
		baseSpec.Transactions = map[gpa.Site]int{
			{Func: p.kernel, Label: "LD0"}: p.transactions,
		}
		optSpec.Transactions = map[gpa.Site]int{}
		for i := 0; i < p.factor; i++ {
			optSpec.Transactions[gpa.Site{Func: p.kernel, Label: fmt.Sprintf("LD%d", i)}] = p.transactions
		}
	}
	base := Variant{Asm: baseAsm(), Launch: p.launch, Spec: baseSpec}
	opt := Variant{Asm: optAsm(), Launch: p.launch, Spec: optSpec}
	return base, opt
}

// --- code reordering ---------------------------------------------------

type reorderParams struct {
	file     string
	kernel   string
	loopLine int
	trips    int
	launch   gpa.Launch
	// independent is the FFMA count available to move between the load
	// and its use.
	independent int
	// barrier places a BAR.SYNC between load and use that reordering
	// cannot cross (the pathfinder false-positive pattern): the
	// optimized variant only hoists the load past part of the
	// independent work.
	barrier bool
}

// reorderPair: baseline consumes a load immediately, with independent
// work after the use; the optimized variant interleaves the independent
// work between load and use.
func reorderPair(p reorderParams) (Variant, Variant) {
	mk := func(optimized bool) string {
		b := newAsm(p.file)
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.label("LOOP").at(p.loopLine)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		if p.barrier {
			// Pathfinder shape: data dependencies pin most code behind
			// the barrier; reordering can only hoist the load itself.
			if optimized {
				b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
				b.at(p.loopLine + 1)
				b.ins("BAR.SYNC {S:2}")
			} else {
				b.at(p.loopLine + 1)
				b.ins("BAR.SYNC {S:2}")
				b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
			}
			b.ffmaChain(p.independent, 16)
			b.at(p.loopLine + 2)
			b.ins("FFMA R12, R8, R13, R12 {S:4, Q:0}")
		} else if optimized {
			b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
			b.ffmaChain(p.independent, 16)
			b.at(p.loopLine + 2)
			b.ins("FFMA R12, R8, R13, R12 {S:4, Q:0}")
		} else {
			b.ins("LDG.E.32 R8, [R2] {S:1, W:0}")
			b.at(p.loopLine + 2)
			b.ins("FFMA R12, R8, R13, R12 {S:4, Q:0}")
			b.ffmaChain(p.independent, 16)
		}
		b.loopEpilogue("LOOP", "BR0", p.loopLine+4)
		b.ins("STG.E.32 [R2], R12 {S:1, R:1}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: p.kernel, Label: "BR0"}: gpa.UniformTrips(p.trips),
		}}
	}
	return Variant{Asm: mk(false), Launch: p.launch, Spec: spec()},
		Variant{Asm: mk(true), Launch: p.launch, Spec: spec()}
}

// --- fast math ----------------------------------------------------------

type fastMathParams struct {
	file     string
	kernel   string
	mathFn   string
	loopLine int
	trips    int
	launch   gpa.Launch
	// chain is the DFMA chain length of the precise math routine.
	chain int
	// extra is non-math FFMA work per loop iteration (dilutes the math
	// share).
	extra int
}

// fastMathPair: baseline calls a precise double-precision math routine
// per iteration; the optimized variant uses the short MUFU-based fast
// path (--use_fast_math).
func fastMathPair(p fastMathParams) (Variant, Variant) {
	baseAsm := func() string {
		b := newAsm(p.file)
		b.fn(p.mathFn, "device")
		b.at(9000)
		b.ins("MUFU.RCP R24, R24 {S:1, W:4}")
		b.ins("DMUL R26, R24, R24 {S:10, Q:4}")
		for i := 0; i < p.chain; i++ {
			b.ins("DFMA R26, R26, R24, R26 {S:10}")
		}
		b.ins("F2F.F32.F64 R22, R26 {S:13}")
		b.ins("RET {S:2}")
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.ins("LDG.E.32 R24, [R2] {S:1, W:0}")
		b.label("LOOP").at(p.loopLine)
		b.ins("CAL %s {S:2}", p.mathFn)
		b.ins("FADD R28, R22, R28 {S:4}")
		b.ffmaChain(p.extra, 16)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", p.loopLine+3)
		b.ins("STG.E.32 [R2], R28 {S:1, R:1, Q:0}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	optAsm := func() string {
		b := newAsm(p.file)
		b.fn(p.kernel, "global")
		b.loopPrologue(p.loopLine - 3)
		b.ins("LDG.E.32 R24, [R2] {S:1, W:0}")
		b.label("LOOP").at(p.loopLine)
		b.ins("MUFU.RCP R22, R24 {S:1, W:4}")
		b.ins("FFMA R22, R22, R24, R22 {S:4, Q:4}")
		b.ins("FADD R28, R22, R28 {S:4}")
		b.ffmaChain(p.extra, 16)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", p.loopLine+3)
		b.ins("STG.E.32 [R2], R28 {S:1, R:1, Q:0}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: p.kernel, Label: "BR0"}: gpa.UniformTrips(p.trips),
		}}
	}
	return Variant{Asm: baseAsm(), Launch: p.launch, Spec: spec()},
		Variant{Asm: optAsm(), Launch: p.launch, Spec: spec()}
}

// --- parallel (block / thread increase) ---------------------------------

type memComputeParams struct {
	file     string
	kernel   string
	loopLine int
	// loads and computes per iteration set the memory/compute balance
	// (computes raise RI, loads lower it).
	loads    int
	computes int
}

// memComputeAsm builds the generic loop used by the parallel-optimizer
// benchmarks.
func memComputeAsm(p memComputeParams) string {
	b := newAsm(p.file)
	b.fn(p.kernel, "global")
	b.loopPrologue(p.loopLine - 3)
	b.label("LOOP").at(p.loopLine)
	for i := 0; i < p.loads; i++ {
		b.ins("LDG.E.32 R%d, [R2+0x%x] {S:1, W:%d}", 8+i, i*4, i%4)
	}
	b.at(p.loopLine + 1)
	for i := 0; i < p.loads; i++ {
		b.ins("FFMA R12, R%d, R13, R12 {S:4, Q:%d}", 8+i, i%4)
	}
	b.ffmaChain(p.computes, 16)
	b.ins("IADD R2, R2, 0x%x {S:4}", p.loads*4)
	b.loopEpilogue("LOOP", "BR0", p.loopLine+3)
	b.ins("STG.E.32 [R2], R12 {S:1, R:1}")
	b.ins("EXIT {Q:1}")
	return b.String()
}
